// Package repro is a from-scratch Go reproduction of "Online
// Optimization of File Transfers in High-Speed Networks" (Falcon),
// Arifuzzaman & Arslan, SC '21.
//
// The implementation lives under internal/: the Falcon agent in
// internal/core, its utility functions in internal/utility, the search
// algorithms in internal/optimizer and internal/bayesopt, the simulated
// testbeds in internal/testbed (over internal/netsim, internal/iosim,
// internal/hostsim), the Globus/HARP comparators in internal/baselines,
// a real TCP transfer substrate in internal/ftp, and one runner per
// paper figure/table in internal/experiments.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; cmd/reproduce prints the same reports as a
// CLI. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
