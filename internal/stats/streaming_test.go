package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamingMatchesBatch folds random streams through Streaming and
// checks every summary against the batch functions on the same slice.
func TestStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 2, 3, 10, 1000} {
		xs := make([]float64, n)
		var s Streaming
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 7
			s.Add(xs[i])
		}
		if got, want := s.Count(), int64(n); got != want {
			t.Fatalf("n=%d: Count = %d", n, got)
		}
		if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: Mean = %v, batch %v", n, got, want)
		}
		if got, want := s.Variance(), Variance(xs); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: Variance = %v, batch %v", n, got, want)
		}
		if n > 0 {
			if got, want := s.Min(), Min(xs); got != want {
				t.Fatalf("n=%d: Min = %v, batch %v", n, got, want)
			}
			if got, want := s.Max(), Max(xs); got != want {
				t.Fatalf("n=%d: Max = %v, batch %v", n, got, want)
			}
		}
	}
}

// TestStreamingZeroValue pins the empty accumulator's conventions.
func TestStreamingZeroValue(t *testing.T) {
	var s Streaming
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("zero-value Streaming not all-zero: %+v", s)
	}
	s.Add(5)
	if s.Mean() != 5 || s.Variance() != 0 || s.Min() != 5 || s.Max() != 5 {
		t.Fatalf("single observation: %+v", s)
	}
}

// TestStreamingCatastrophicShift checks Welford's numerical robustness
// on a large-offset stream where the naive sum-of-squares formula
// loses all precision.
func TestStreamingCatastrophicShift(t *testing.T) {
	var s Streaming
	base := 1e9
	for i := 0; i < 1000; i++ {
		s.Add(base + float64(i%2)) // values 1e9 and 1e9+1, variance 0.25
	}
	if got := s.Variance(); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("Variance = %v, want 0.25", got)
	}
}
