// Package stats provides the statistical primitives shared across the
// repository: summary statistics, exponentially-weighted moving
// averages, Jain's fairness index (used to quantify fairness between
// competing transfers), percentiles, and least-squares regression (the
// substrate for the HARP baseline's historical throughput model).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// JainIndex computes Jain's fairness index over per-agent allocations:
//
//	J = (Σ xᵢ)² / (n · Σ xᵢ²)
//
// J is 1 when all allocations are equal and approaches 1/n under maximal
// unfairness. It returns 0 for an empty slice or an all-zero allocation.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// EWMA maintains an exponentially-weighted moving average with
// smoothing factor alpha in (0, 1]. A larger alpha weights recent
// observations more heavily. The zero value is not usable; construct
// with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
// It panics unless 0 < alpha ≤ 1.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of range (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds x into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average (0 before the first Update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether the EWMA has seen at least one sample.
func (e *EWMA) Initialized() bool { return e.init }

// LinearFit performs ordinary least squares for y = a + b·x and returns
// the intercept a and slope b. It returns an error when fewer than two
// points are supplied or when all x values coincide.
func LinearFit(xs, ys []float64) (intercept, slope float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("stats: LinearFit length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	num, den := 0.0, 0.0
	for i := range xs {
		dx := xs[i] - mx
		num += dx * (ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit degenerate x values")
	}
	slope = num / den
	intercept = my - slope*mx
	return intercept, slope, nil
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by solving
// the normal equations (Vandermonde ᵀ V c = Vᵀ y) with Gaussian
// elimination. The returned coefficients are ordered from the constant
// term upward: y ≈ c[0] + c[1]·x + … + c[degree]·x^degree.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: PolyFit length mismatch %d != %d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("stats: PolyFit negative degree %d", degree)
	}
	if len(xs) < degree+1 {
		return nil, fmt.Errorf("stats: PolyFit needs %d points for degree %d, got %d", degree+1, degree, len(xs))
	}
	n := degree + 1
	// Normal matrix M[i][j] = Σ x^(i+j); rhs[i] = Σ y·x^i.
	m := make([][]float64, n)
	rhs := make([]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for k := range xs {
		xp := make([]float64, 2*n-1)
		xp[0] = 1
		for i := 1; i < len(xp); i++ {
			xp[i] = xp[i-1] * xs[k]
		}
		for i := 0; i < n; i++ {
			rhs[i] += ys[k] * xp[i]
			for j := 0; j < n; j++ {
				m[i][j] += xp[i+j]
			}
		}
	}
	coef, err := gaussianSolve(m, rhs)
	if err != nil {
		return nil, fmt.Errorf("stats: PolyFit: %w", err)
	}
	return coef, nil
}

// PolyEval evaluates a polynomial with coefficients ordered from the
// constant term upward at x (Horner's method).
func PolyEval(coef []float64, x float64) float64 {
	y := 0.0
	for i := len(coef) - 1; i >= 0; i-- {
		y = y*x + coef[i]
	}
	return y
}

// gaussianSolve solves m·x = b in place with partial pivoting.
func gaussianSolve(m [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot: find the largest |entry| in this column.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to the inclusive range [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
