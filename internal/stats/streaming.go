package stats

import "math"

// Streaming accumulates count, mean, variance, min, and max of a value
// stream in constant space using Welford's online update — the
// substrate for fleet-scale telemetry where materializing a
// million-element slice per metric would defeat the memory diet.
//
// The zero value is ready to use.
type Streaming struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (s *Streaming) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Count returns the number of observations.
func (s *Streaming) Count() int64 { return s.n }

// Mean returns the running mean, or 0 before any observation.
func (s *Streaming) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the running population variance, or 0 when fewer
// than two observations have been added — matching Variance on a slice.
func (s *Streaming) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the running population standard deviation.
func (s *Streaming) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (s *Streaming) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 before any observation.
func (s *Streaming) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}
