package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of 1 element = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v", got)
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("P25 = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !approx(got, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(.., 101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{10, 10, 10}); !approx(got, 1, 1e-12) {
		t.Errorf("equal allocation J = %v, want 1", got)
	}
	// One agent takes everything: J = 1/n.
	if got := JainIndex([]float64{30, 0, 0}); !approx(got, 1.0/3, 1e-12) {
		t.Errorf("monopoly J = %v, want 1/3", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty J = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero J = %v, want 0", got)
	}
}

// Property: Jain index always lies in [1/n, 1] for non-negative,
// not-all-zero allocations, and is scale invariant.
func TestJainIndexProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if math.IsInf(v, 0) || math.IsNaN(v) || v > 1e100 {
				return true
			}
			xs = append(xs, v)
		}
		if Sum(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = 3.5 * x
		}
		return approx(JainIndex(scaled), j, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first update = %v, want 10", e.Value())
	}
	e.Update(20)
	if !approx(e.Value(), 15, 1e-12) {
		t.Fatalf("second update = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	if !approx(a, 3, 1e-12) || !approx(b, 2, 1e-12) {
		t.Fatalf("fit = (%v, %v), want (3, 2)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("LinearFit with one point did not error")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("LinearFit with constant x did not error")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("LinearFit with mismatched lengths did not error")
	}
}

func TestPolyFitExactQuadratic(t *testing.T) {
	// y = 1 - 2x + 0.5x²
	want := []float64{1, -2, 0.5}
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = PolyEval(want, x)
	}
	coef, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatalf("PolyFit: %v", err)
	}
	for i := range want {
		if !approx(coef[i], want[i], 1e-8) {
			t.Fatalf("coef = %v, want %v", coef, want)
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("PolyFit with too few points did not error")
	}
	if _, err := PolyFit([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("PolyFit with mismatched lengths did not error")
	}
	if _, err := PolyFit([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("PolyFit with negative degree did not error")
	}
}

// Property: PolyFit recovers a random cubic exactly when given exact
// samples at distinct points.
func TestPolyFitRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		coef := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		xs := []float64{-3, -2, -1, 0, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = PolyEval(coef, x)
		}
		got, err := PolyFit(xs, ys, 3)
		if err != nil {
			return false
		}
		for i := range coef {
			if !approx(got[i], coef[i], 1e-6) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 50; i++ {
		if !f() {
			t.Fatal("PolyFit failed to recover a random cubic")
		}
	}
}

func TestPolyEval(t *testing.T) {
	// 2 + 3x + x² at x=2 → 2+6+4 = 12
	if got := PolyEval([]float64{2, 3, 1}, 2); got != 12 {
		t.Fatalf("PolyEval = %v, want 12", got)
	}
	if got := PolyEval(nil, 5); got != 0 {
		t.Fatalf("PolyEval(nil) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := ClampInt(10, 1, 4); got != 4 {
		t.Errorf("ClampInt high = %v", got)
	}
	if got := ClampInt(0, 1, 4); got != 1 {
		t.Errorf("ClampInt low = %v", got)
	}
	if got := ClampInt(2, 1, 4); got != 2 {
		t.Errorf("ClampInt mid = %v", got)
	}
}
