// Package session implements the unified Falcon control loop — the
// paper's §3.2 cycle of sample → utility → search → apply — shared by
// the simulated testbeds (testbed.Scheduler orchestrates N sessions
// over the engine's virtual clock) and the real-time runner (core.Run
// drives one session on a wall clock). One Session owns the epoch
// cadence, warm-up discard, and decision flow for one participant, and
// emits a typed Event stream that timelines, live status endpoints,
// and CLI reporters consume.
//
// Determinism: a Session performs no time or randomness reads of its
// own. Drivers stamp every call with the current clock value, so a
// virtual-clock run is exactly reproducible and the simulated and real
// paths execute identical decision logic.
package session

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/transfer"
)

// Decider chooses the next transfer setting from the sample of the
// last decision epoch. Falcon agents, the Globus heuristic, and the
// HARP model all satisfy this interface.
type Decider interface {
	Decide(s transfer.Sample) transfer.Setting
}

// Env is the minimal contract a Session drives: reconfigure the
// transfer and report completion.
type Env interface {
	// Apply reconfigures the running transfer.
	Apply(s transfer.Setting) error
	// Done reports whether the transfer has completed.
	Done() bool
}

// Environment is a live transfer measured by blocking sampling — the
// wall-clock contract. Measure blocks for roughly d while the transfer
// proceeds, then returns the observed sample; the transfer continues
// throughout, Falcon's monitoring runs beside the data movement (§3.2).
// The real-FTP client and testbed.SimEnvironment (on simulated time)
// implement it.
type Environment interface {
	Env
	Measure(d time.Duration) (transfer.Sample, error)
}

// WindowEnv is a live transfer measured by cooperative windows — the
// virtual-time contract. The driver advances time externally (stepping
// the simulation engine); BeginWindow restarts measurement accumulation
// and TakeSample closes the window instantaneously.
type WindowEnv interface {
	Env
	BeginWindow()
	TakeSample() (transfer.Sample, error)
}

// Config parameterises one Session.
type Config struct {
	// ID names the session in events (usually the task ID). Empty
	// defaults to "session".
	ID string
	// Interval is the decision-epoch cadence in seconds. Values ≤ 0
	// default to 3 (the paper's LAN sample-transfer duration).
	Interval float64
	// Warmup is how long after a setting change the measurement window
	// is discarded before metrics accumulate, excluding the TCP ramp-up
	// transient (§3: performance is captured "once the sample transfer
	// is executed for a sufficient amount of time"). Values ≤ 0 disable
	// the discard.
	Warmup float64
	// Events, when non-nil, receives the session's event stream.
	Events Sink
	// OnSample, when non-nil, observes every (sample, next setting)
	// pair — the hook experiments and CLIs use for live reporting.
	OnSample func(s transfer.Sample, next transfer.Setting)
}

// Session runs the Falcon loop for one participant: it owns the epoch
// cadence, the warm-up discard, and the decision flow, independent of
// whether time is simulated or real. Drivers call Start once, then
// either Tick (virtual time, window environments) or Observe (wall
// clock, blocking environments) as time passes, and Finish/Leave when
// the transfer ends.
type Session struct {
	env Env
	win WindowEnv // non-nil when env supports cooperative windows
	dec Decider   // nil keeps the initial setting forever
	cfg Config

	started  bool
	finished bool
	// nextDecision is the time of the next decision epoch.
	nextDecision float64
	// resetAt is a pending measurement-window restart (warm-up expiry);
	// 0 means none pending.
	resetAt float64
	// epochs counts completed decision epochs.
	epochs int
}

// New builds a session over env. A nil Decider is allowed and keeps
// the environment's setting unchanged (the fixed-strategy baseline).
// It returns an error for a nil environment.
func New(env Env, dec Decider, cfg Config) (*Session, error) {
	s := new(Session)
	if err := Init(s, env, dec, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Init constructs a session in place, overwriting *s entirely. It is
// New for arena-allocated sessions: fleet-scale schedulers carve their
// sessions out of one flat slab instead of a million individual heap
// objects, and Init gives them New's exact validation and defaulting.
func Init(s *Session, env Env, dec Decider, cfg Config) error {
	if env == nil {
		return errors.New("session: nil environment")
	}
	if cfg.ID == "" {
		cfg.ID = "session"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 3
	}
	win, _ := env.(WindowEnv)
	*s = Session{env: env, win: win, dec: dec, cfg: cfg}
	return nil
}

// ID returns the session's event identifier.
func (s *Session) ID() string { return s.cfg.ID }

// Started reports whether Start has been called.
func (s *Session) Started() bool { return s.started }

// Finished reports whether the session has ended (Finish or Leave).
func (s *Session) Finished() bool { return s.finished }

// Epochs returns the number of completed decision epochs.
func (s *Session) Epochs() int { return s.epochs }

// Start joins the session at time now: the first measurement window
// opens (window environments), the first decision epoch is scheduled
// one interval out, and a Join event carrying the initial setting is
// emitted. Repeated calls are no-ops.
func (s *Session) Start(now float64, initial transfer.Setting) {
	if s.started {
		return
	}
	s.started = true
	s.nextDecision = now + s.cfg.Interval
	if s.win != nil {
		s.win.BeginWindow()
	}
	s.emit(Event{Kind: Join, Time: now, Setting: initial})
}

// NextDeadline returns the earliest future time at which Tick can act:
// the next decision epoch or a pending warm-up window restart,
// whichever comes first. Drivers that batch dead ticks (the testbed's
// event-horizon stepping) only need to call Tick at times ≥
// NextDeadline(); calling it earlier is a no-op by construction. It
// returns +Inf for sessions that have not started or have finished.
func (s *Session) NextDeadline() float64 {
	if !s.started || s.finished {
		return math.Inf(1)
	}
	d := s.nextDecision
	if s.resetAt > 0 && s.resetAt < d {
		d = s.resetAt
	}
	return d
}

// Tick executes the session's due actions at time now on a window
// environment: the decision epoch (sample → decide → apply) if one is
// due, then any pending warm-up window restart. The driver advances
// time between ticks by stepping the simulation. A failed sample (an
// empty window after a join race) is reported as an Error event and
// retried at the next epoch, not the next tick. Tick returns the apply
// error, if any.
func (s *Session) Tick(now float64) error {
	if !s.started || s.finished {
		return nil
	}
	if s.win == nil {
		return errors.New("session: Tick requires a window environment")
	}
	if now >= s.nextDecision && !s.env.Done() {
		sample, err := s.win.TakeSample()
		// Advance the epoch before handling the outcome, so a failed
		// sample waits a full interval instead of busy-retrying.
		s.nextDecision = now + s.cfg.Interval
		if err != nil {
			s.emit(Event{Kind: Error, Time: now, Err: err})
		} else if err := s.Observe(now, sample); err != nil {
			return err
		}
	}
	if s.resetAt > 0 && now >= s.resetAt {
		s.win.BeginWindow()
		s.resetAt = 0
	}
	return nil
}

// Observe runs the decision flow for one completed sample at time now:
// emit Sample, decide, emit Decision, apply, emit Apply, and schedule
// the warm-up discard. It is the shared heart of the virtual-clock
// (Tick) and wall-clock (Run) paths. The returned error is the apply
// failure, if any.
func (s *Session) Observe(now float64, sample transfer.Sample) error {
	s.epochs++
	s.emit(Event{Kind: Sample, Time: now, Sample: sample})
	next := sample.Setting
	if s.dec != nil {
		next = s.dec.Decide(sample)
	}
	s.emit(Event{Kind: Decision, Time: now, Sample: sample, Setting: next})
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(sample, next)
	}
	if s.dec != nil {
		if err := s.env.Apply(next); err != nil {
			err = fmt.Errorf("session: apply %v: %w", next, err)
			s.emit(Event{Kind: Error, Time: now, Err: err})
			return err
		}
		s.emit(Event{Kind: Apply, Time: now, Setting: next})
	}
	if s.cfg.Warmup > 0 {
		s.resetAt = now + s.cfg.Warmup
	}
	return nil
}

// Finish marks the transfer complete at time now and emits Finish.
// Repeated calls are no-ops.
func (s *Session) Finish(now float64) {
	if !s.started || s.finished {
		return
	}
	s.finished = true
	s.emit(Event{Kind: Finish, Time: now})
}

// Leave removes the session before completion (a departing competitor)
// and emits Leave. Repeated calls are no-ops.
func (s *Session) Leave(now float64) {
	if !s.started || s.finished {
		return
	}
	s.finished = true
	s.emit(Event{Kind: Leave, Time: now})
}

// Fail emits an Error event and ends the session. It is used by
// drivers when the environment itself fails.
func (s *Session) Fail(now float64, err error) {
	if !s.started || s.finished {
		return
	}
	s.emit(Event{Kind: Error, Time: now, Err: err})
	s.finished = true
}

func (s *Session) emit(e Event) {
	if s.cfg.Events == nil {
		return
	}
	e.Session = s.cfg.ID
	s.cfg.Events(e)
}

// Run drives a Decider against a blocking Environment until the
// transfer completes or the context is cancelled — the wall-clock
// instantiation of the session loop, used by core.Run and thereby the
// falconftp CLI. The clock is the environment's own (ClockSource) when
// it has one, or a wall clock started at the call.
//
// Run returns nil on completion, the context error on cancellation,
// and any Measure/Apply failure otherwise. Unlike the orchestrated
// virtual path, a nil decider is rejected: a fixed-setting real
// transfer needs no session loop at all.
func Run(ctx context.Context, env Environment, dec Decider, cfg Config) error {
	if env == nil {
		return errors.New("session: nil environment")
	}
	if dec == nil {
		return errors.New("session: nil decider")
	}
	sess, err := New(env, dec, cfg)
	if err != nil {
		return err
	}
	var clock Clock
	if cs, ok := env.(ClockSource); ok {
		clock = cs.Clock()
	} else {
		clock = NewWallClock()
	}
	var initial transfer.Setting
	if cur, ok := env.(interface{ Setting() transfer.Setting }); ok {
		initial = cur.Setting()
	}
	sess.Start(clock.Now(), initial)
	interval := time.Duration(sess.cfg.Interval * float64(time.Second))
	warmup := time.Duration(sess.cfg.Warmup * float64(time.Second))
	for !env.Done() {
		if err := ctx.Err(); err != nil {
			sess.Fail(clock.Now(), err)
			return err
		}
		if warmup > 0 {
			// Wall-clock warm-up discard: let the post-change transient
			// pass unmeasured, as the virtual path does via BeginWindow.
			if _, err := env.Measure(warmup); err != nil {
				sess.Fail(clock.Now(), err)
				return fmt.Errorf("session: measure: %w", err)
			}
			if env.Done() {
				break
			}
		}
		sample, err := env.Measure(interval)
		if err != nil {
			sess.Fail(clock.Now(), err)
			return fmt.Errorf("session: measure: %w", err)
		}
		if env.Done() {
			break
		}
		if err := sess.Observe(clock.Now(), sample); err != nil {
			return err
		}
	}
	sess.Finish(clock.Now())
	return nil
}
