package session

import (
	"math"
	"testing"

	"repro/internal/transfer"
)

// TestNextDeadline: the deadline a scheduler may batch up to is +Inf
// outside the session's lifetime, the next decision epoch while idle,
// and the pending warm-up expiry when that comes sooner — and a Tick
// strictly before the deadline must be a no-op, which is what licenses
// skipping it.
func TestNextDeadline(t *testing.T) {
	env := &winEnv{setting: transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}}
	var log []Event
	s := newTestSession(t, env, incDecider{}, Config{ID: "t", Interval: 3, Warmup: 1}, &log)

	if d := s.NextDeadline(); !math.IsInf(d, 1) {
		t.Errorf("unstarted NextDeadline = %v, want +Inf", d)
	}
	s.Start(0, env.setting)
	if d := s.NextDeadline(); d != 3 {
		t.Errorf("fresh NextDeadline = %v, want 3 (first epoch)", d)
	}

	// Ticks strictly before the deadline must not observe, decide, or
	// touch the environment.
	windows, events := env.windows, len(log)
	for now := 0.25; now < 3; now += 0.25 {
		if err := s.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	if env.windows != windows || env.samples != 0 || len(log) != events {
		t.Fatal("Tick before NextDeadline was not a no-op")
	}

	// The epoch at t=3 applies a new setting, scheduling a warm-up
	// restart at 4 — now the nearer deadline; once it fires, the next
	// epoch at 6 is.
	if err := s.Tick(3); err != nil {
		t.Fatal(err)
	}
	if d := s.NextDeadline(); d != 4 {
		t.Errorf("post-epoch NextDeadline = %v, want 4 (warm-up expiry)", d)
	}
	if err := s.Tick(4); err != nil {
		t.Fatal(err)
	}
	if d := s.NextDeadline(); d != 6 {
		t.Errorf("post-warm-up NextDeadline = %v, want 6 (second epoch)", d)
	}

	s.Finish(5)
	if d := s.NextDeadline(); !math.IsInf(d, 1) {
		t.Errorf("finished NextDeadline = %v, want +Inf", d)
	}
}
