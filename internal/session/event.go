package session

import "repro/internal/transfer"

// Kind classifies session events.
type Kind string

// The event taxonomy. Every session emits the same sequence shape on
// the simulated and the real-time path: Join, then per decision epoch
// Sample → Decision → Apply, and finally Finish (or Leave for a
// scheduled departure). Error marks a failed sample or apply.
const (
	// Join: the session attached to its environment and scheduled its
	// first decision epoch. Setting carries the initial configuration.
	Join Kind = "join"
	// Leave: the session was removed before its transfer drained (a
	// departing competitor).
	Leave Kind = "leave"
	// Sample: a measurement window closed. Sample carries the observation.
	Sample Kind = "sample"
	// Decision: the controller chose the next setting (Setting). For a
	// fixed/nil controller this echoes the sample's setting.
	Decision Kind = "decision"
	// Apply: the chosen setting was applied to the environment.
	Apply Kind = "apply"
	// Finish: the transfer completed.
	Finish Kind = "finish"
	// Error: a sample or apply failed. Err carries the cause.
	Error Kind = "error"
)

// Event is one typed occurrence in a session's lifetime. Consumers
// include the testbed timeline recorder, the web service's live
// progress tracker, and CLI reporters; the stream is also the hook
// point for future fault injection and metrics.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Session identifies the emitting session (the task ID).
	Session string
	// Time is the clock time in seconds (virtual or wall).
	Time float64
	// Sample is the observation for Sample and Decision events.
	Sample transfer.Sample
	// Setting is the configuration for Join (initial), Decision and
	// Apply (chosen next) events.
	Setting transfer.Setting
	// Err is the cause for Error events.
	Err error
}

// Sink consumes session events. Sinks are called synchronously from
// the session's driver; slow consumers should buffer on their own.
type Sink func(Event)

// MultiSink fans one event stream out to several sinks, skipping nil
// entries. It returns nil when every sink is nil, so drivers can test
// for "no consumer" cheaply.
func MultiSink(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, s := range live {
			s(e)
		}
	}
}
