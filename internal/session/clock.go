package session

import (
	"fmt"
	"time"
)

// Clock is the time base a session runtime runs on: seconds since the
// run began. The simulated testbeds expose their virtual engine time
// through it; real transfers use a WallClock. Sessions themselves never
// read a clock directly — drivers stamp every Tick/Observe call — so
// the same decision flow runs unchanged on either time base.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
}

// ClockSource is implemented by environments that carry their own time
// base (e.g. testbed.SimEnvironment, whose time is the engine's
// simulated clock). Run uses it instead of a wall clock, so event
// timestamps line up with the environment's notion of time.
type ClockSource interface {
	Clock() Clock
}

// WallClock reports real elapsed time since its creation.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a wall clock anchored at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the seconds elapsed since the clock was created.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() }

// VirtualClock is a manually advanced clock for simulations and tests.
// The zero value starts at t=0.
type VirtualClock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *VirtualClock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds. It panics on negative
// dt — virtual time never runs backwards.
func (c *VirtualClock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("session: VirtualClock.Advance(%v) negative", dt))
	}
	c.now += dt
}

// Set jumps the clock to t. It panics when t is in the past.
func (c *VirtualClock) Set(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("session: VirtualClock.Set(%v) before now %v", t, c.now))
	}
	c.now = t
}
