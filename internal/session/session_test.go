package session

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transfer"
)

// winEnv is a scripted WindowEnv for tick-driven session tests.
type winEnv struct {
	setting   transfer.Setting
	applied   []transfer.Setting
	windows   int
	samples   int
	sampleErr error // returned by TakeSample while non-nil
	done      bool
}

func (w *winEnv) Apply(s transfer.Setting) error { w.applied = append(w.applied, s); w.setting = s; return nil }
func (w *winEnv) Done() bool                     { return w.done }
func (w *winEnv) BeginWindow()                   { w.windows++ }
func (w *winEnv) Setting() transfer.Setting      { return w.setting }

func (w *winEnv) TakeSample() (transfer.Sample, error) {
	if w.sampleErr != nil {
		return transfer.Sample{}, w.sampleErr
	}
	w.samples++
	return transfer.Sample{Setting: w.setting, Duration: 1, Throughput: 1e9}, nil
}

// incDecider bumps concurrency by one each epoch.
type incDecider struct{}

func (incDecider) Decide(s transfer.Sample) transfer.Setting {
	n := s.Setting
	n.Concurrency++
	return n
}

func kinds(events []Event) []Kind {
	ks := make([]Kind, len(events))
	for i, e := range events {
		ks[i] = e.Kind
	}
	return ks
}

func newTestSession(t *testing.T, env Env, dec Decider, cfg Config, log *[]Event) *Session {
	t.Helper()
	cfg.Events = func(e Event) { *log = append(*log, e) }
	s, err := New(env, dec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Error("nil environment accepted")
	}
	s, err := New(&winEnv{}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != "session" {
		t.Errorf("default ID = %q, want session", s.ID())
	}
}

func TestSessionEpochCadence(t *testing.T) {
	env := &winEnv{setting: transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}}
	var log []Event
	s := newTestSession(t, env, incDecider{}, Config{ID: "t", Interval: 3, Warmup: 1}, &log)

	s.Start(0, env.setting)
	if env.windows != 1 {
		t.Fatalf("Start opened %d windows, want 1", env.windows)
	}
	for now := 0.0; now <= 10; now += 0.25 {
		if err := s.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	// Epochs at t=3, 6, 9.
	if s.Epochs() != 3 {
		t.Fatalf("epochs = %d, want 3", s.Epochs())
	}
	if len(env.applied) != 3 {
		t.Fatalf("applied %d settings, want 3", len(env.applied))
	}
	if got := env.applied[2].Concurrency; got != 5 {
		t.Fatalf("third decision concurrency = %d, want 5", got)
	}
	// Warm-up window restarts: one per epoch (at 4, 7, 10), beyond the
	// Start window and the TakeSample-internal restarts (winEnv does not
	// model those).
	if env.windows != 4 {
		t.Fatalf("windows = %d, want 4 (start + 3 warm-up restarts)", env.windows)
	}
	want := []Kind{Join, Sample, Decision, Apply, Sample, Decision, Apply, Sample, Decision, Apply}
	if fmt.Sprint(kinds(log)) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds(log), want)
	}
}

// TestFailedSampleWaitsFullEpoch is the regression test for the
// scheduler busy-retry bug: when TakeSample fails at a decision epoch,
// the epoch must advance so the entry retries one interval later, not
// on every tick.
func TestFailedSampleWaitsFullEpoch(t *testing.T) {
	boom := errors.New("empty window")
	env := &winEnv{setting: transfer.DefaultSetting(), sampleErr: boom}
	var log []Event
	s := newTestSession(t, env, incDecider{}, Config{ID: "t", Interval: 3}, &log)

	s.Start(0, env.setting)
	for now := 0.0; now <= 6; now += 0.25 {
		if err := s.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	// Epochs due at 3 and 6: exactly two failed attempts, not one per
	// tick (25 ticks).
	var errs int
	for _, e := range log {
		if e.Kind == Error && errors.Is(e.Err, boom) {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("failed-sample attempts = %d, want 2 (one per epoch)", errs)
	}

	// And the session recovers at the next epoch once sampling works.
	env.sampleErr = nil
	if err := s.Tick(9); err != nil {
		t.Fatal(err)
	}
	if s.Epochs() != 1 {
		t.Fatalf("epochs after recovery = %d, want 1", s.Epochs())
	}
}

func TestNilDeciderKeepsSettingAndSkipsApply(t *testing.T) {
	env := &winEnv{setting: transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1}}
	var log []Event
	s := newTestSession(t, env, nil, Config{ID: "fixed", Interval: 1}, &log)
	s.Start(0, env.setting)
	if err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if len(env.applied) != 0 {
		t.Fatalf("nil decider applied %d settings, want 0", len(env.applied))
	}
	want := []Kind{Join, Sample, Decision}
	if fmt.Sprint(kinds(log)) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds(log), want)
	}
	if got := log[2].Setting.Concurrency; got != 4 {
		t.Fatalf("decision echoed concurrency %d, want 4", got)
	}
}

func TestApplyErrorPropagatesFromTick(t *testing.T) {
	env := &failApplyEnv{winEnv{setting: transfer.DefaultSetting()}}
	var log []Event
	s, err := New(env, incDecider{}, Config{Interval: 1, Events: func(e Event) { log = append(log, e) }})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(0, transfer.DefaultSetting())
	err = s.Tick(1)
	if err == nil || !errors.Is(err, errApply) {
		t.Fatalf("Tick err = %v, want wrapped errApply", err)
	}
	var sawError bool
	for _, e := range log {
		if e.Kind == Error && errors.Is(e.Err, errApply) {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no Error event for failed apply")
	}
}

var errApply = errors.New("apply refused")

type failApplyEnv struct{ winEnv }

func (f *failApplyEnv) Apply(transfer.Setting) error { return errApply }

func TestLifecycleIdempotence(t *testing.T) {
	env := &winEnv{setting: transfer.DefaultSetting()}
	var log []Event
	s := newTestSession(t, env, nil, Config{ID: "x", Interval: 1}, &log)
	s.Start(0, env.setting)
	s.Start(5, env.setting) // no-op
	s.Finish(10)
	s.Finish(11) // no-op
	s.Leave(12)  // no-op after finish
	if err := s.Tick(20); err != nil {
		t.Fatal(err)
	}
	want := []Kind{Join, Finish}
	if fmt.Sprint(kinds(log)) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds(log), want)
	}
	if !s.Finished() {
		t.Fatal("session not finished")
	}
}

func TestTickRequiresWindowEnv(t *testing.T) {
	env := &blockEnv{}
	s, err := New(env, incDecider{}, Config{Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(0, transfer.DefaultSetting())
	if err := s.Tick(2); err == nil {
		t.Fatal("Tick on a non-window environment accepted")
	}
}

// blockEnv is a minimal blocking Environment for Run tests.
type blockEnv struct {
	measures int
	doneAt   int
	applied  []transfer.Setting
	cancel   context.CancelFunc // when non-nil, called during Measure
}

func (b *blockEnv) Apply(s transfer.Setting) error { b.applied = append(b.applied, s); return nil }
func (b *blockEnv) Done() bool                     { return b.doneAt > 0 && b.measures >= b.doneAt }
func (b *blockEnv) Measure(time.Duration) (transfer.Sample, error) {
	b.measures++
	if b.cancel != nil {
		b.cancel()
	}
	return transfer.Sample{Setting: transfer.DefaultSetting(), Duration: 1, Throughput: 1e8}, nil
}

func TestRunValidatesInputs(t *testing.T) {
	if err := Run(context.Background(), nil, incDecider{}, Config{}); err == nil {
		t.Error("nil environment accepted")
	}
	if err := Run(context.Background(), &blockEnv{doneAt: 1}, nil, Config{}); err == nil {
		t.Error("nil decider accepted")
	}
}

// TestRunCancellationBetweenMeasureAndApply: a context cancelled while
// Measure is in flight still lets the already-measured epoch complete
// (decide + apply), and the loop exits with the context error on the
// next iteration.
func TestRunCancellationBetweenMeasureAndApply(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	env := &blockEnv{cancel: cancel}
	var log []Event
	err := Run(ctx, env, incDecider{}, Config{Interval: 0.001, Events: func(e Event) { log = append(log, e) }})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(env.applied) != 1 {
		t.Fatalf("applied %d settings, want 1 (the pre-cancel epoch)", len(env.applied))
	}
	// The stream ends with the cancellation error, not a finish.
	last := log[len(log)-1]
	if last.Kind != Error || !errors.Is(last.Err, context.Canceled) {
		t.Fatalf("last event = %+v, want Error(context.Canceled)", last)
	}
}

func TestRunEmitsLifecycleEvents(t *testing.T) {
	env := &blockEnv{doneAt: 3}
	var log []Event
	err := Run(context.Background(), env, incDecider{}, Config{ID: "r", Interval: 0.001, Events: func(e Event) { log = append(log, e) }})
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Join, Sample, Decision, Apply, Sample, Decision, Apply, Finish}
	if fmt.Sprint(kinds(log)) != fmt.Sprint(want) {
		t.Fatalf("event kinds = %v, want %v", kinds(log), want)
	}
	for _, e := range log {
		if e.Session != "r" {
			t.Fatalf("event session = %q, want r", e.Session)
		}
	}
}

func TestVirtualClock(t *testing.T) {
	var c VirtualClock
	c.Advance(2.5)
	c.Set(4)
	if c.Now() != 4 {
		t.Fatalf("Now = %v, want 4", c.Now())
	}
	for _, f := range []func(){func() { c.Advance(-1) }, func() { c.Set(1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMultiSink(t *testing.T) {
	if MultiSink(nil, nil) != nil {
		t.Fatal("all-nil MultiSink should be nil")
	}
	var a, b int
	sink := MultiSink(func(Event) { a++ }, nil, func(Event) { b++ })
	sink(Event{Kind: Join})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out counts a=%d b=%d, want 1/1", a, b)
	}
}

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock()
	t0 := c.Now()
	time.Sleep(2 * time.Millisecond)
	if c.Now() <= t0 {
		t.Fatal("wall clock did not advance")
	}
}
