package baselines

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func TestNewGlobusValidation(t *testing.T) {
	if _, err := NewGlobus(nil); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewGlobus(&dataset.Dataset{Label: "empty"}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestGlobusHeuristicBrackets(t *testing.T) {
	cases := []struct {
		name  string
		ds    *dataset.Dataset
		wantP int
		wantQ int
	}{
		{"small files", dataset.Uniform("s", 100, 1*dataset.MiB), 2, 20},
		{"medium files", dataset.Uniform("m", 100, 100*dataset.MiB), 4, 5},
		{"large files", dataset.Uniform("l", 100, int64(dataset.GB)), 8, 1},
	}
	for _, c := range cases {
		g, err := NewGlobus(c.ds)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		s := g.Setting()
		if s.Concurrency != 2 {
			t.Errorf("%s: concurrency = %d, want the conservative 2", c.name, s.Concurrency)
		}
		if s.Parallelism != c.wantP || s.Pipelining != c.wantQ {
			t.Errorf("%s: setting = %v, want p=%d q=%d", c.name, s, c.wantP, c.wantQ)
		}
	}
}

func TestGlobusNeverAdapts(t *testing.T) {
	g, err := NewGlobus(dataset.Main())
	if err != nil {
		t.Fatal(err)
	}
	first := g.Decide(transfer.Sample{Throughput: 1e9})
	second := g.Decide(transfer.Sample{Throughput: 100e9, Loss: 0.5})
	if first != second || first != g.Setting() {
		t.Fatal("Globus changed its setting")
	}
}

func TestHistoryValidation(t *testing.T) {
	bad := []*History{
		{},
		{Entries: []LogEntry{{Concurrency: 0, Throughput: 1}}},
		{Entries: []LogEntry{{Concurrency: 1, Throughput: 0}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: invalid history accepted", i)
		}
	}
}

func TestHistoryCapAndPerProc(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	if got := h.Cap(); got != 10e9 {
		t.Fatalf("Cap = %v, want 10e9", got)
	}
	if got := h.PerProc(); got != 1e9 {
		t.Fatalf("PerProc = %v, want 1e9", got)
	}
}

func TestHistoryOptimalConcurrency(t *testing.T) {
	// Saturation at n=10 → optimal ≈10.
	h := SyntheticHistory(1e9, 10e9, 30)
	if got := h.OptimalConcurrency(); got < 9 || got > 12 {
		t.Fatalf("OptimalConcurrency = %d, want ≈10", got)
	}
	// Few entries (no regression path).
	h2 := &History{Entries: []LogEntry{
		{Concurrency: 2, Throughput: 2e9},
		{Concurrency: 4, Throughput: 4e9},
	}}
	if got := h2.OptimalConcurrency(); got != 4 {
		t.Fatalf("OptimalConcurrency = %d, want 4", got)
	}
}

func TestNewHARPValidation(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	if _, err := NewHARP(nil, 32); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := NewHARP(h, 0); err == nil {
		t.Error("maxN 0 accepted")
	}
	if _, err := NewHARP(&History{}, 32); err == nil {
		t.Error("empty history accepted")
	}
}

func TestHARPStartsAtHistoricalOptimum(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	harp, err := NewHARP(h, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cc := harp.Setting().Concurrency; cc < 9 || cc > 12 {
		t.Fatalf("initial concurrency = %d, want ≈10", cc)
	}
}

func TestHARPGreedyRecalibration(t *testing.T) {
	// HARP believes the capacity is 10 Gbps. When a probe shows only
	// 0.5 Gbps per process (a competitor holds a share), it escalates
	// concurrency toward cap/perProc = 20 — the late-comer advantage.
	h := SyntheticHistory(1e9, 10e9, 20)
	harp, err := NewHARP(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := harp.Decide(transfer.Sample{
		Setting:    transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1},
		Duration:   5,
		Throughput: 5e9, // 0.5 Gbps per process
	})
	if s.Concurrency != 20 {
		t.Fatalf("recalibrated concurrency = %d, want 20", s.Concurrency)
	}
}

func TestHARPCapsAtMaxN(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	harp, _ := NewHARP(h, 16)
	s := harp.Decide(transfer.Sample{
		Setting:    transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1},
		Duration:   5,
		Throughput: 1e9, // 0.1 Gbps per process → wants 100
	})
	if s.Concurrency != 16 {
		t.Fatalf("concurrency = %d, want clamp at 16", s.Concurrency)
	}
}

func TestHARPIgnoresZeroThroughputProbe(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	harp, _ := NewHARP(h, 32)
	before := harp.Setting()
	s := harp.Decide(transfer.Sample{
		Setting:  transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1},
		Duration: 5,
	})
	if s != before {
		t.Fatalf("zero-throughput probe changed setting to %v", s)
	}
}

func TestHARPHoldsBetweenRecalibrations(t *testing.T) {
	h := SyntheticHistory(1e9, 10e9, 20)
	harp, _ := NewHARP(h, 64)
	sample := transfer.Sample{
		Setting:    transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1},
		Duration:   5,
		Throughput: 10e9,
	}
	first := harp.Decide(sample) // epoch 1: recalibrates
	held := true
	for i := 0; i < harp.Recalibrate-2; i++ {
		if harp.Decide(sample) != first {
			held = false
		}
	}
	if !held {
		t.Fatal("HARP changed setting between recalibration epochs")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(testbed.Emulab(10e6), 1, 0, 1); err == nil {
		t.Error("maxN 0 accepted")
	}
	if _, err := Train(testbed.Emulab(10e6), 1, 4, 0); err == nil {
		t.Error("reps 0 accepted")
	}
	bad := testbed.Emulab(10e6)
	bad.RTT = -1
	if _, err := Train(bad, 1, 2, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTrainProducesFaithfulHistory(t *testing.T) {
	// Training on Emulab (10 Mbps per process, 100 Mbps link) must
	// yield logs whose derived optimal concurrency ≈ 10 and capacity
	// ≈ 100 Mbps — HARP then starts correctly *in that network*.
	h, err := Train(testbed.Emulab(10e6), 1, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 32 {
		t.Fatalf("entries = %d, want 16×2", len(h.Entries))
	}
	if opt := h.OptimalConcurrency(); opt < 9 || opt > 12 {
		t.Fatalf("trained optimal concurrency = %d, want ≈10", opt)
	}
	if cap := h.Cap(); cap < 90e6 || cap > 115e6 {
		t.Fatalf("trained capacity = %v, want ≈100 Mbps", cap)
	}
	harp, err := NewHARP(h, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cc := harp.Setting().Concurrency; cc < 9 || cc > 12 {
		t.Fatalf("HARP initial concurrency = %d, want ≈10", cc)
	}
}

// Integration: HARP trained on 10G logs underperforms on a faster
// network (Figure 2a's mechanism).
func TestHARPWrongNetworkCapsThroughput(t *testing.T) {
	cfg := testbed.HPCLab() // ≈27 Gbps achievable
	cfg.NoiseStdDev = 0
	eng, err := testbed.NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := testbed.NewScheduler(eng, 1)
	// Trained in a 10 Gbps network: believes cap = 9.5 Gbps.
	harp, err := NewHARP(SyntheticHistory(1.2e9, 9.5e9, 16), 64)
	if err != nil {
		t.Fatal(err)
	}
	task, err := transfer.NewTask("harp", dataset.Uniform("harp", 5000, int64(dataset.GB)), harp.Setting())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(testbed.Participant{Task: task, Controller: harp}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(180, 0.25)
	tput := tl.MeanThroughputGbps("harp", 90, 180)
	// HPCLab can do ≈27 Gbps; HARP should sit way below (its belief is
	// 9.5), i.e. roughly half or less of the achievable rate.
	if tput > 18 {
		t.Fatalf("HARP = %v Gbps; wrong-network training should cap it well below max", tput)
	}
	if tput < 5 {
		t.Fatalf("HARP = %v Gbps; should still move data", tput)
	}
}
