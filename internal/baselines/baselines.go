// Package baselines implements the two state-of-the-art comparators of
// the paper's evaluation: the Globus transfer service's fixed heuristic
// [9] and HARP's historical-analysis model [10, 11]. Both satisfy
// testbed.Controller, so experiments can race them against Falcon
// agents on identical simulated testbeds (Figures 2, 14, 16).
package baselines

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// Globus reproduces the Globus heuristic: a fixed (concurrency,
// parallelism, pipelining) triple chosen once from dataset statistics
// and never adapted. The rules follow the published heuristic's spirit:
// concurrency stays conservative (2) to avoid congestion, parallelism
// rises for large files, pipelining rises for small files. The paper
// observes exactly this in §4.5: "it selects the concurrency value of
// 2".
type Globus struct {
	setting transfer.Setting
}

// NewGlobus derives the fixed setting from the dataset's mean file
// size. It returns an error for a nil or empty dataset.
func NewGlobus(ds *dataset.Dataset) (*Globus, error) {
	if ds == nil || len(ds.Files) == 0 {
		return nil, fmt.Errorf("baselines: Globus needs a non-empty dataset")
	}
	mean := ds.MeanFileSize()
	var s transfer.Setting
	switch {
	case mean < 50*dataset.MiB: // lots of small files
		s = transfer.Setting{Concurrency: 2, Parallelism: 2, Pipelining: 20}
	case mean < 250*dataset.MiB:
		s = transfer.Setting{Concurrency: 2, Parallelism: 4, Pipelining: 5}
	default: // large files
		s = transfer.Setting{Concurrency: 2, Parallelism: 8, Pipelining: 1}
	}
	return &Globus{setting: s}, nil
}

// Setting returns the fixed setting.
func (g *Globus) Setting() transfer.Setting { return g.setting }

// Decide implements testbed.Controller: Globus never adapts.
func (g *Globus) Decide(transfer.Sample) transfer.Setting { return g.setting }

// LogEntry is one historical transfer observation HARP trains on.
type LogEntry struct {
	// Concurrency used during the logged transfer.
	Concurrency int
	// Throughput achieved, in bits/s.
	Throughput float64
}

// History is a set of historical transfer logs from one network.
type History struct {
	Entries []LogEntry
}

// Validate checks the log set.
func (h *History) Validate() error {
	if len(h.Entries) == 0 {
		return fmt.Errorf("baselines: empty history")
	}
	for i, e := range h.Entries {
		if e.Concurrency < 1 {
			return fmt.Errorf("baselines: history entry %d has concurrency %d", i, e.Concurrency)
		}
		if e.Throughput <= 0 {
			return fmt.Errorf("baselines: history entry %d has throughput %v", i, e.Throughput)
		}
	}
	return nil
}

// Cap returns the highest throughput in the logs — HARP's belief about
// the network's capacity.
func (h *History) Cap() float64 {
	best := 0.0
	for _, e := range h.Entries {
		if e.Throughput > best {
			best = e.Throughput
		}
	}
	return best
}

// PerProc estimates single-process throughput: the mean logged
// throughput at the lowest concurrency, scaled down by that
// concurrency.
func (h *History) PerProc() float64 {
	minCC := math.MaxInt
	for _, e := range h.Entries {
		if e.Concurrency < minCC {
			minCC = e.Concurrency
		}
	}
	var vals []float64
	for _, e := range h.Entries {
		if e.Concurrency == minCC {
			vals = append(vals, e.Throughput/float64(e.Concurrency))
		}
	}
	return stats.Mean(vals)
}

// OptimalConcurrency returns the concurrency HARP's view of the logs
// considers optimal: the smallest logged concurrency whose mean
// throughput is within 5 % of the logged capacity. (HARP's published
// model is a regression over (cc, p, q); against the saturating
// throughput curves all these testbeds exhibit, the regression's argmax
// reduces to exactly this knee.)
func (h *History) OptimalConcurrency() int {
	byCC := map[int][]float64{}
	for _, e := range h.Entries {
		byCC[e.Concurrency] = append(byCC[e.Concurrency], e.Throughput)
	}
	ccs := make([]int, 0, len(byCC))
	for cc := range byCC {
		ccs = append(ccs, cc)
	}
	sort.Ints(ccs)
	best := 0.0
	means := make([]float64, len(ccs))
	for i, cc := range ccs {
		means[i] = stats.Mean(byCC[cc])
		if means[i] > best {
			best = means[i]
		}
	}
	for i, m := range means {
		if m >= 0.95*best {
			return ccs[i]
		}
	}
	return ccs[len(ccs)-1]
}

// HARP reproduces the historical-analysis-plus-real-time-probing model:
// it opens at the historically optimal concurrency, then after one
// probe epoch recalibrates greedily — it measures the per-process
// throughput it is *currently* getting and picks the concurrency its
// model says maximises its own throughput: ceil(historicalCap /
// observedPerProc). Two consequences the paper demonstrates:
//
//   - Trained in the wrong network, its capacity belief caps its
//     performance (Figure 2a: ≈50 % of maximum).
//   - As a late-comer it sees depressed per-process throughput (the
//     incumbent holds a share) and compensates with *more* concurrency,
//     seizing an unfair share (Figure 2b) — precisely the throughput-
//     greedy behaviour a concave utility would forbid.
type HARP struct {
	// MaxN bounds the concurrency HARP will request.
	MaxN int
	// Recalibrate is the number of epochs between greedy
	// recalibrations; HARP tunes after the first probe and then every
	// Recalibrate epochs (0 disables further recalibration, matching
	// HARP's tune-once-at-start description in §2).
	Recalibrate int

	hist    *History
	epoch   int
	setting transfer.Setting
}

// NewHARP builds a HARP controller from historical logs. It returns an
// error for invalid logs or maxN < 1.
func NewHARP(hist *History, maxN int) (*HARP, error) {
	if maxN < 1 {
		return nil, fmt.Errorf("baselines: HARP maxN %d must be ≥ 1", maxN)
	}
	if hist == nil {
		return nil, fmt.Errorf("baselines: HARP needs history")
	}
	if err := hist.Validate(); err != nil {
		return nil, err
	}
	start := hist.OptimalConcurrency()
	if start > maxN {
		start = maxN
	}
	return &HARP{
		MaxN:        maxN,
		Recalibrate: 6,
		hist:        hist,
		setting:     transfer.Setting{Concurrency: start, Parallelism: 1, Pipelining: 1},
	}, nil
}

// Setting returns HARP's current setting.
func (h *HARP) Setting() transfer.Setting { return h.setting }

// Decide implements testbed.Controller.
func (h *HARP) Decide(s transfer.Sample) transfer.Setting {
	h.epoch++
	recal := h.epoch == 1 || (h.Recalibrate > 0 && h.epoch%h.Recalibrate == 0)
	if !recal {
		return h.setting
	}
	perProc := s.PerConnThroughput()
	if perProc <= 0 {
		return h.setting
	}
	want := int(math.Ceil(h.hist.Cap() / perProc))
	if want < 1 {
		want = 1
	}
	if want > h.MaxN {
		want = h.MaxN
	}
	h.setting.Concurrency = want
	return h.setting
}

// SyntheticHistory fabricates logs for a network whose aggregate
// throughput saturates at cap with perProc per process — the shape
// every testbed in this repository exhibits. Used to train HARP "in a
// 10 Gbps network" (Figure 2a) without running a real collection
// campaign, which the paper notes takes weeks to months.
func SyntheticHistory(perProc, cap float64, maxN int) *History {
	h := &History{}
	thr := func(n int) float64 {
		t := perProc * float64(n)
		if t > cap {
			return cap
		}
		return t
	}
	for n := 1; n <= maxN; n++ {
		h.Entries = append(h.Entries, LogEntry{Concurrency: n, Throughput: thr(n)})
	}
	return h
}

// Train collects a transfer-log history by actually running measurement
// transfers on a testbed — the data-collection campaign HARP depends
// on, compressed from the weeks-to-months the paper describes into
// simulated minutes. Each concurrency in 1..maxN is measured `reps`
// times with distinct noise seeds.
func Train(cfg testbed.Config, seed int64, maxN, reps int) (*History, error) {
	if maxN < 1 || reps < 1 {
		return nil, fmt.Errorf("baselines: Train needs maxN ≥ 1 and reps ≥ 1, got %d, %d", maxN, reps)
	}
	h := &History{}
	values := make([]int, maxN)
	for i := range values {
		values[i] = i + 1
	}
	mk := func() *transfer.Task {
		t, err := transfer.NewTask("train", dataset.Uniform("train", 50000, int64(dataset.GB)), transfer.DefaultSetting())
		if err != nil {
			panic(err) // static inputs
		}
		return t
	}
	for rep := 0; rep < reps; rep++ {
		tputs, _, err := testbed.SweepConcurrency(cfg, seed+int64(rep)*1007, mk, values, 12, 6)
		if err != nil {
			return nil, err
		}
		for i, n := range values {
			h.Entries = append(h.Entries, LogEntry{Concurrency: n, Throughput: tputs[i] * 1e9})
		}
	}
	return h, nil
}
