package optimizer

import (
	"math/rand"
	"testing"
)

// driveMemoizable checks the Snapshot contract along a random
// trajectory: at every step, restoring the snapshot into a fresh
// searcher and feeding both the same observation must yield the same
// proposal and equal successor snapshots.
func driveMemoizable(t *testing.T, mk func() Search, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	live := mk()
	lm := live.(Memoizable)
	n := 1
	for step := 0; step < 400; step++ {
		snap, ok := lm.MemoSnapshot()
		if !ok {
			t.Fatalf("step %d: snapshot not representable", step)
		}
		twin := mk()
		tm := twin.(Memoizable)
		tm.RestoreMemo(snap)
		if resnap, ok := tm.MemoSnapshot(); !ok || resnap != snap {
			t.Fatalf("step %d: restore/re-snapshot mismatch: %+v vs %+v", step, resnap, snap)
		}
		obs := Observation{N: n, Utility: rng.NormFloat64()}
		a, b := live.Next(obs), twin.Next(obs)
		if a != b {
			t.Fatalf("step %d: live proposed %d, restored twin %d", step, a, b)
		}
		sa, _ := lm.MemoSnapshot()
		sb, _ := tm.MemoSnapshot()
		if sa != sb {
			t.Fatalf("step %d: successor snapshots diverged: %+v vs %+v", step, sa, sb)
		}
		n = a
	}
}

func TestHillClimbingSnapshotRoundTrip(t *testing.T) {
	driveMemoizable(t, func() Search { return NewHillClimbing(16) }, 1)
}

func TestGradientDescentSnapshotRoundTrip(t *testing.T) {
	driveMemoizable(t, func() Search { return NewGradientDescent(16) }, 2)
}

func TestSnapshotKindsDistinct(t *testing.T) {
	hs, _ := NewHillClimbing(8).MemoSnapshot()
	gs, _ := NewGradientDescent(8).MemoSnapshot()
	if hs.Kind == gs.Kind {
		t.Fatalf("hill-climbing and gradient-descent share snapshot kind %d", hs.Kind)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("restoring a gradient snapshot into a climber did not panic")
		}
	}()
	NewHillClimbing(8).RestoreMemo(gs)
}

func TestSnapshotRejectsHugeBounds(t *testing.T) {
	h := NewHillClimbing(8)
	h.MaxN = 1 << 40
	if _, ok := h.MemoSnapshot(); ok {
		t.Fatal("snapshot accepted MaxN beyond int32")
	}
}

// TestSnapshotDistinguishesState guards against dropped fields: two
// searchers that have seen different histories (and would propose
// differently) must not share a snapshot.
func TestSnapshotDistinguishesState(t *testing.T) {
	a, b := NewGradientDescent(16), NewGradientDescent(16)
	a.Next(Observation{N: 2, Utility: 1.0})
	a.Next(Observation{N: 1, Utility: 0.5})
	b.Next(Observation{N: 2, Utility: 1.0})
	b.Next(Observation{N: 1, Utility: 2.5})
	sa, _ := a.MemoSnapshot()
	sb, _ := b.MemoSnapshot()
	if sa == sb {
		t.Fatal("different probe utilities produced identical snapshots")
	}
}
