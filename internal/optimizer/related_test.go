package optimizer

import (
	"testing"
	"testing/quick"
)

func TestNewDirectSearchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDirectSearch(0) did not panic")
		}
	}()
	NewDirectSearch(0)
}

func TestNewSPSAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSPSA(0, 1) did not panic")
		}
	}()
	NewSPSA(0, 1)
}

func TestRelatedSearchNames(t *testing.T) {
	if NewDirectSearch(8).Name() != "direct-search" {
		t.Error("wrong DirectSearch name")
	}
	if NewSPSA(8, 1).Name() != "spsa" {
		t.Error("wrong SPSA name")
	}
}

func TestDirectSearchFindsOptimum(t *testing.T) {
	util := emulabUtility(10e6, 100e6) // optimum 10
	ds := NewDirectSearch(32)
	visited := drive(ds, util, 2, 80)
	// The incumbent must settle near 10.
	if c := ds.Center(); c < 8 || c > 13 {
		t.Fatalf("DirectSearch center = %d, want ≈10 (visits %v)", c, visited[:20])
	}
	// Fully contracted: the tail keeps polling near the optimum.
	for _, v := range visited[60:] {
		if v < 6 || v > 15 {
			t.Fatalf("tail excursion to %d", v)
		}
	}
}

func TestDirectSearchLargeOptimum(t *testing.T) {
	util := emulabUtility(20.83e6, 1e9) // optimum ≈48
	ds := NewDirectSearch(100)
	drive(ds, util, 2, 120)
	if c := ds.Center(); c < 40 || c > 58 {
		t.Fatalf("DirectSearch center = %d, want ≈48", c)
	}
}

func TestSPSADriftsTowardOptimum(t *testing.T) {
	util := emulabUtility(10e6, 100e6) // optimum 10
	spsa := NewSPSA(32, 7)
	drive(spsa, util, 2, 300)
	if c := spsa.Center(); c < 7 || c > 14 {
		t.Fatalf("SPSA center = %d, want ≈10", c)
	}
}

func TestSPSASlowerThanGD(t *testing.T) {
	// The §5 critique of stochastic approximation: far more samples to
	// converge than GD's confidence-accelerated steps.
	util := emulabUtility(20.83e6, 1e9) // optimum ≈48
	reach := func(s Search, start, maxSteps int) int {
		n := start
		for i := 0; i < maxSteps; i++ {
			n = s.Next(Observation{N: n, Utility: util(n)})
			if n >= 43 && n <= 56 {
				return i
			}
		}
		return maxSteps
	}
	gdSteps := reach(NewGradientDescent(100), 2, 600)
	spsaSteps := reach(NewSPSA(100, 3), 2, 600)
	if gdSteps >= 600 {
		t.Fatal("GD never reached the optimum")
	}
	if spsaSteps < 2*gdSteps {
		t.Fatalf("SPSA (%d samples) should be ≫ slower than GD (%d)", spsaSteps, gdSteps)
	}
}

// Property: both related searches stay in bounds under arbitrary
// utility streams.
func TestRelatedSearchBoundsProperty(t *testing.T) {
	f := func(utils []float64, maxN8 uint8) bool {
		maxN := int(maxN8%50) + 1
		ds := NewDirectSearch(maxN)
		sp := NewSPSA(maxN, 5)
		n1, n2 := 1, 1
		for _, u := range utils {
			n1 = ds.Next(Observation{N: n1, Utility: u})
			n2 = sp.Next(Observation{N: n2, Utility: u})
			if n1 < 1 || n1 > maxN || n2 < 1 || n2 > maxN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
