package optimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/utility"
)

// emulabUtility returns the Eq 4 utility for a testbed where aggregate
// throughput grows by perProc per concurrent transfer and saturates at
// capacity (the analytical model of Figure 6).
func emulabUtility(perProc, capacity float64) func(n int) float64 {
	thr := utility.SaturatingThroughput(perProc, capacity)
	return func(n int) float64 {
		return utility.Nonlinear(n, thr(n)/float64(n), 0, utility.DefaultB, utility.DefaultK)
	}
}

// drive runs a Search against a utility oracle for `steps` sample
// transfers, starting from `start`, and returns the visited settings.
func drive(s Search, util func(int) float64, start, steps int) []int {
	n := start
	visited := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		n = s.Next(Observation{N: n, Utility: util(n)})
		visited = append(visited, n)
	}
	return visited
}

// stepsToReach returns the index of the first visit within ±tol of
// target, or -1.
func stepsToReach(visited []int, target, tol int) int {
	for i, v := range visited {
		if v >= target-tol && v <= target+tol {
			return i
		}
	}
	return -1
}

func TestHillClimbingPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHillClimbing(0) did not panic")
		}
	}()
	NewHillClimbing(0)
}

func TestHillClimbingName(t *testing.T) {
	if NewHillClimbing(10).Name() != "hill-climbing" {
		t.Fatal("wrong name")
	}
	if NewGradientDescent(10).Name() != "gradient-descent" {
		t.Fatal("wrong name")
	}
	if NewConjugateGD([]int{1}, []int{4}).Name() != "conjugate-gd" {
		t.Fatal("wrong name")
	}
}

func TestHillClimbingClimbsToOptimum(t *testing.T) {
	util := emulabUtility(10e6, 100e6) // optimum 10
	hc := NewHillClimbing(32)
	visited := drive(hc, util, 1, 60)
	hit := stepsToReach(visited, 10, 1)
	if hit < 0 {
		t.Fatalf("never reached 10: %v", visited)
	}
	// Fixed unit steps: needs ≈9 moves from n=1.
	if hit < 7 || hit > 15 {
		t.Fatalf("reached optimum after %d steps, want ≈9", hit)
	}
	// After convergence it oscillates around the peak.
	tail := visited[hit+5:]
	for _, v := range tail {
		if v < 7 || v > 13 {
			t.Fatalf("post-convergence excursion to %d: %v", v, tail)
		}
	}
}

func TestHillClimbingStaysInBounds(t *testing.T) {
	util := func(n int) float64 { return float64(n) } // ever-increasing
	hc := NewHillClimbing(8)
	visited := drive(hc, util, 1, 40)
	for _, v := range visited {
		if v < 1 || v > 8 {
			t.Fatalf("out-of-bounds visit %d", v)
		}
	}
	// Must press against the max bound since utility keeps growing.
	if got := stepsToReach(visited, 8, 0); got < 0 {
		t.Fatal("never reached the max bound")
	}
}

func TestGradientDescentFasterThanHillClimbing(t *testing.T) {
	// Figure 7's core claim: when the optimum is 48, GD reaches it
	// several times faster than HC's unit steps.
	util := emulabUtility(20.83e6, 1e9) // optimum ≈48
	gd := NewGradientDescent(100)
	hc := NewHillClimbing(100)
	gdVisits := drive(gd, util, 2, 200)
	hcVisits := drive(hc, util, 1, 200)
	gdHit := stepsToReach(gdVisits, 48, 3)
	hcHit := stepsToReach(hcVisits, 48, 3)
	if gdHit < 0 {
		t.Fatalf("GD never reached 48: %v", gdVisits[:40])
	}
	if hcHit < 0 {
		t.Fatalf("HC never reached 48: %v", hcVisits[:60])
	}
	// Figure 7 reports ≈7× in wall-clock time; in sample counts the
	// separation is smaller because HC takes one sample per move while
	// GD takes two per epoch. Require a clear multiple.
	if hcHit < 2*gdHit {
		t.Fatalf("HC (%d samples) should be ≳2× slower than GD (%d samples)", hcHit, gdHit)
	}
}

func TestGradientDescentConvergesAndOscillatesNearOptimum(t *testing.T) {
	util := emulabUtility(10e6, 100e6) // optimum 10
	gd := NewGradientDescent(50)
	visited := drive(gd, util, 2, 120)
	// §4.1: upon convergence the concurrency bounces around the
	// optimum (the paper reports 9–11; slope smoothing widens the band
	// slightly).
	tail := visited[60:]
	mean := 0.0
	for _, v := range tail {
		if v < 6 || v > 16 {
			t.Fatalf("GD tail excursion to %d: %v", v, tail)
		}
		mean += float64(v)
	}
	mean /= float64(len(tail))
	if mean < 8.5 || mean > 12.5 {
		t.Fatalf("GD tail mean = %v, want ≈10", mean)
	}
}

func TestGradientDescentCenterAccessor(t *testing.T) {
	gd := NewGradientDescent(50)
	if gd.Center() != 2 {
		t.Fatalf("initial center = %d, want 2", gd.Center())
	}
	util := emulabUtility(10e6, 100e6)
	drive(gd, util, 2, 60)
	if c := gd.Center(); c < 8 || c > 12 {
		t.Fatalf("converged center = %d, want ≈10", c)
	}
}

func TestGradientDescentRobustToNoise(t *testing.T) {
	util := emulabUtility(10e6, 100e6)
	rng := rand.New(rand.NewSource(5))
	noisy := func(n int) float64 {
		return util(n) * (1 + 0.02*rng.NormFloat64())
	}
	gd := NewGradientDescent(50)
	visited := drive(gd, noisy, 2, 150)
	tail := visited[90:]
	mean := 0.0
	for _, v := range tail {
		mean += float64(v)
	}
	mean /= float64(len(tail))
	if mean < 7 || mean > 14 {
		t.Fatalf("noisy GD mean tail = %v, want ≈10", mean)
	}
}

func TestGradientDescentPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGradientDescent(0) did not panic")
		}
	}()
	NewGradientDescent(0)
}

func TestGradientDescentBounded(t *testing.T) {
	util := func(n int) float64 { return float64(n) }
	gd := NewGradientDescent(12)
	visited := drive(gd, util, 2, 100)
	for _, v := range visited {
		if v < 1 || v > 12 {
			t.Fatalf("out-of-bounds visit %d", v)
		}
	}
}

func TestGradientDescentMaxStepLimitsJumps(t *testing.T) {
	// A pathological utility with a huge slope cannot cause a jump
	// larger than MaxStep per epoch.
	util := func(n int) float64 { return math.Exp(float64(n)) }
	gd := NewGradientDescent(1000)
	prevCenter := gd.Center()
	n := 2
	for i := 0; i < 30; i++ {
		n = gd.Next(Observation{N: n, Utility: util(n)})
		c := gd.Center()
		if diff := c - prevCenter; float64(diff) > gd.MaxStep*gd.theta+1 {
			t.Fatalf("center jumped by %d with theta %v", diff, gd.theta)
		}
		prevCenter = c
	}
}

// Property: HC and GD proposals always stay within [1, maxN] for any
// bounded utility sequence.
func TestSearchBoundsProperty(t *testing.T) {
	f := func(utils []float64, maxN8 uint8) bool {
		maxN := int(maxN8%50) + 1
		hc := NewHillClimbing(maxN)
		gd := NewGradientDescent(maxN)
		n1, n2 := 1, clampInt(2, 1, maxN)
		for _, u := range utils {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				u = 0
			}
			n1 = hc.Next(Observation{N: n1, Utility: u})
			n2 = gd.Next(Observation{N: n2, Utility: u})
			if n1 < 1 || n1 > maxN || n2 < 1 || n2 > maxN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConjugateGDPanicsOnBadBounds(t *testing.T) {
	cases := [][2][]int{
		{{}, {}},
		{{1, 1}, {4}},
		{{0}, {4}},
		{{5}, {4}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewConjugateGD(%v, %v) did not panic", c[0], c[1])
				}
			}()
			NewConjugateGD(c[0], c[1])
		}()
	}
}

// wanUtility2D models the §4.4 search space: concurrency and
// parallelism jointly determine throughput; total connections are
// penalised via Eq 7. Aggregate throughput saturates when n·p streams
// of streamRate fill the capacity, and per-file throughput is capped by
// perProc.
func wanUtility2D(streamRate, perProc, capacity float64) func(x []int) float64 {
	return func(x []int) float64 {
		n, p := x[0], x[1]
		perFile := math.Min(perProc, streamRate*float64(p))
		agg := math.Min(capacity, perFile*float64(n))
		return utility.MultiParamAggregate(n, p, agg, 0, utility.DefaultB, utility.DefaultK)
	}
}

func driveVec(s VecSearch, util func([]int) float64, start []int, steps int) [][]int {
	x := start
	var visited [][]int
	for i := 0; i < steps; i++ {
		x = s.NextVec(VecObservation{X: x, Utility: util(x)})
		visited = append(visited, x)
	}
	return visited
}

func TestConjugateGDFindsGoodRegion2D(t *testing.T) {
	// streamRate 0.5, perProc 2 → parallelism 4 saturates a file;
	// capacity 20 → n=10 files saturate the path. Optimal region is
	// around (10, 4) with 40 connections.
	util := wanUtility2D(0.5, 2, 20)
	cgd := NewConjugateGD([]int{1, 1}, []int{64, 16})
	visited := driveVec(cgd, util, []int{2, 2}, 400)

	bestSeen := math.Inf(-1)
	for _, x := range visited {
		if u := util(x); u > bestSeen {
			bestSeen = u
		}
	}
	// The global optimum in this model.
	optimum := math.Inf(-1)
	for n := 1; n <= 64; n++ {
		for p := 1; p <= 16; p++ {
			if u := util([]int{n, p}); u > optimum {
				optimum = u
			}
		}
	}
	if bestSeen < 0.85*optimum {
		t.Fatalf("best utility found %v, want ≥85%% of optimum %v", bestSeen, optimum)
	}
	// The final center must be in a high-utility region too.
	c := cgd.Center()
	if u := util(c); u < 0.7*optimum {
		t.Fatalf("final center %v has utility %v, want ≥70%% of %v", c, u, optimum)
	}
}

func TestConjugateGDStaysInBounds(t *testing.T) {
	util := wanUtility2D(0.5, 2, 20)
	cgd := NewConjugateGD([]int{1, 1}, []int{8, 4})
	visited := driveVec(cgd, util, []int{2, 2}, 200)
	for _, x := range visited {
		if x[0] < 1 || x[0] > 8 || x[1] < 1 || x[1] > 4 {
			t.Fatalf("out-of-bounds visit %v", x)
		}
	}
}

func TestConjugateGDCenterIsCopy(t *testing.T) {
	cgd := NewConjugateGD([]int{1, 1}, []int{8, 4})
	c := cgd.Center()
	c[0] = 99
	if cgd.Center()[0] == 99 {
		t.Fatal("Center exposed internal state")
	}
}

func TestClampInt(t *testing.T) {
	if clampInt(5, 1, 3) != 3 || clampInt(0, 1, 3) != 1 || clampInt(2, 1, 3) != 2 {
		t.Fatal("clampInt wrong")
	}
}
