package optimizer

import "math"

// Snapshot is a compact, comparable image of a searcher's complete
// decision state. Two searchers with equal snapshots are bitwise
// replicas: feeding both the same observation yields the same proposal
// and equal successor snapshots. That property is what lets a fleet
// memoize decisions across sessions (core.DecisionMemo): the snapshot
// is the canonical observation-history signature — whatever sample
// sequence led here, only the folded state can influence future
// decisions.
//
// Snapshot is a value type usable as a map key. Kind discriminates the
// searcher; the fixed I/F arrays hold the searcher's integer and float
// state in a documented per-kind layout. Unused slots stay zero so
// equal states compare equal.
type Snapshot struct {
	Kind  uint8
	Flags uint8
	I     [6]int32
	F     [8]float64
}

// Snapshot kinds.
const (
	snapHillClimbing uint8 = 1
	snapGradient     uint8 = 2
)

// Memoizable is implemented by searchers whose full decision state can
// be captured and restored. Stochastic or unbounded-state searchers
// (e.g. the GP-backed bayesopt.Search, whose factor state exceeds any
// fixed-size image) do not implement it; they memoize at their own
// layer instead.
type Memoizable interface {
	// MemoSnapshot captures the current decision state. ok is false
	// when the state cannot be represented (e.g. bounds exceeding
	// int32), in which case callers must fall back to the live path.
	MemoSnapshot() (snap Snapshot, ok bool)
	// RestoreMemo overwrites the decision state from a snapshot
	// previously produced by the same searcher kind. Restoring a
	// snapshot from a different kind is a programming error and panics.
	RestoreMemo(snap Snapshot)
}

func fitsInt32(vs ...int) bool {
	for _, v := range vs {
		if v > math.MaxInt32 || v < math.MinInt32 {
			return false
		}
	}
	return true
}

// MemoSnapshot implements Memoizable.
func (h *HillClimbing) MemoSnapshot() (Snapshot, bool) {
	if !fitsInt32(h.MaxN, h.cur, h.dir) {
		return Snapshot{}, false
	}
	s := Snapshot{Kind: snapHillClimbing}
	if h.started {
		s.Flags |= 1
	}
	s.I[0] = int32(h.MaxN)
	s.I[1] = int32(h.cur)
	s.I[2] = int32(h.dir)
	s.F[0] = h.Threshold
	s.F[1] = h.prevU
	return s, true
}

// RestoreMemo implements Memoizable.
func (h *HillClimbing) RestoreMemo(s Snapshot) {
	if s.Kind != snapHillClimbing {
		panic("optimizer: HillClimbing.RestoreMemo: wrong snapshot kind")
	}
	h.started = s.Flags&1 != 0
	h.MaxN = int(s.I[0])
	h.cur = int(s.I[1])
	h.dir = int(s.I[2])
	h.Threshold = s.F[0]
	h.prevU = s.F[1]
}

// MemoSnapshot implements Memoizable.
func (g *GradientDescent) MemoSnapshot() (Snapshot, bool) {
	if !fitsInt32(g.MaxN, g.Epsilon, g.center, g.lastDir, g.phase) {
		return Snapshot{}, false
	}
	s := Snapshot{Kind: snapGradient}
	if g.started {
		s.Flags |= 1
	}
	if g.lowFirst {
		s.Flags |= 2
	}
	if g.hasEWMA {
		s.Flags |= 4
	}
	s.I[0] = int32(g.MaxN)
	s.I[1] = int32(g.Epsilon)
	s.I[2] = int32(g.center)
	s.I[3] = int32(g.lastDir)
	s.I[4] = int32(g.phase)
	s.F[0] = g.Gain
	s.F[1] = g.MaxStep
	s.F[2] = g.Smoothing
	s.F[3] = g.theta
	s.F[4] = g.firstU
	s.F[5] = g.relEWMA
	return s, true
}

// RestoreMemo implements Memoizable.
func (g *GradientDescent) RestoreMemo(s Snapshot) {
	if s.Kind != snapGradient {
		panic("optimizer: GradientDescent.RestoreMemo: wrong snapshot kind")
	}
	g.started = s.Flags&1 != 0
	g.lowFirst = s.Flags&2 != 0
	g.hasEWMA = s.Flags&4 != 0
	g.MaxN = int(s.I[0])
	g.Epsilon = int(s.I[1])
	g.center = int(s.I[2])
	g.lastDir = int(s.I[3])
	g.phase = int(s.I[4])
	g.Gain = s.F[0]
	g.MaxStep = s.F[1]
	g.Smoothing = s.F[2]
	g.theta = s.F[3]
	g.firstU = s.F[4]
	g.relEWMA = s.F[5]
}
