package optimizer

import "testing"

// BenchmarkGradientDescentNext measures one GD decision step.
func BenchmarkGradientDescentNext(b *testing.B) {
	util := emulabUtility(10e6, 100e6)
	gd := NewGradientDescent(64)
	n := 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n = gd.Next(Observation{N: n, Utility: util(n)})
	}
}

// BenchmarkHillClimbingNext measures one HC decision step.
func BenchmarkHillClimbingNext(b *testing.B) {
	util := emulabUtility(10e6, 100e6)
	hc := NewHillClimbing(64)
	n := 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n = hc.Next(Observation{N: n, Utility: util(n)})
	}
}

// BenchmarkConjugateGDNextVec measures one multi-parameter decision.
func BenchmarkConjugateGDNextVec(b *testing.B) {
	util := wanUtility2D(0.5, 2, 20)
	cgd := NewConjugateGD([]int{1, 1}, []int{64, 16})
	x := []int{2, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = cgd.NextVec(VecObservation{X: x, Utility: util(x)})
	}
}
