// Package optimizer implements Falcon's online search algorithms
// (§3.2): Hill Climbing and Online Gradient Descent for single-
// parameter (concurrency) tuning, and Conjugate Gradient Descent for
// the multi-parameter extension of §4.4. Bayesian Optimization lives in
// the sibling package bayesopt and satisfies the same Search interface.
//
// A Search is a sequential decision process: every call to Next
// delivers the utility observed for the previously proposed setting and
// returns the next setting to evaluate with a sample transfer. All
// searches keep exploring after convergence — the optimum drifts with
// background traffic and competing transfers, so the paper configures
// every algorithm to re-probe the neighbourhood indefinitely.
package optimizer

import (
	"fmt"
	"math"
)

// Observation is the outcome of evaluating one concurrency value.
type Observation struct {
	// N is the concurrency that was active during the sample transfer.
	N int
	// Utility is the utility-function value computed from the sample.
	Utility float64
}

// Search proposes concurrency values, one per sample transfer.
type Search interface {
	// Next consumes the latest observation and returns the concurrency
	// to evaluate next, always within the search bounds.
	Next(obs Observation) int
	// Name identifies the algorithm in reports.
	Name() string
}

// Bounds clamps v into [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HillClimbing is the fixed-step-size sequential search of §3.2: move
// one concurrency unit at a time in the current direction while the
// utility keeps improving by more than Threshold; reverse otherwise.
// Its 1-unit step is why convergence takes ≈7× longer than Gradient
// Descent when the optimum is far from the start (Figure 7).
type HillClimbing struct {
	// MaxN bounds the search space (inclusive). Required ≥ 1.
	MaxN int
	// Threshold is the relative utility improvement required to keep
	// the current direction. The paper quotes 3 % as its default, but
	// with Eq 4 the marginal relative gain of one more concurrent
	// transfer is ≈ 1/n − ln K, which falls below 3 % long before a
	// distant optimum (n ≈ 20 for K = 1.02) and would stall the climb;
	// we therefore treat the threshold purely as a measurement-noise
	// guard and default it to 0 (reverse on any non-improvement).
	Threshold float64

	cur, dir int
	prevU    float64
	started  bool
}

// NewHillClimbing returns a climber over [1, maxN].
// It panics if maxN < 1.
func NewHillClimbing(maxN int) *HillClimbing {
	if maxN < 1 {
		panic(fmt.Sprintf("optimizer: HillClimbing maxN %d must be ≥ 1", maxN))
	}
	return &HillClimbing{MaxN: maxN, Threshold: 0, cur: 1, dir: 1}
}

// Name implements Search.
func (h *HillClimbing) Name() string { return "hill-climbing" }

// Next implements Search.
func (h *HillClimbing) Next(obs Observation) int {
	if !h.started {
		h.started = true
		h.prevU = obs.Utility
		h.cur = clampInt(obs.N+h.dir, 1, h.MaxN)
		return h.cur
	}
	denom := math.Abs(h.prevU)
	if denom < 1e-12 {
		denom = 1e-12
	}
	gamma := (obs.Utility - h.prevU) / denom
	if gamma <= h.Threshold {
		// Improvement stalled or regressed: reverse direction. The
		// climber keeps oscillating around the optimum, which doubles
		// as the periodic re-exploration the paper requires.
		h.dir = -h.dir
	}
	h.prevU = obs.Utility
	next := clampInt(obs.N+h.dir, 1, h.MaxN)
	if next == obs.N { // pinned at a bound: turn around
		h.dir = -h.dir
		next = clampInt(obs.N+h.dir, 1, h.MaxN)
	}
	h.cur = next
	return next
}

// GradientDescent is the online gradient method of §3.2 (ascent on the
// concave utility; the paper converts to a cost by negation). Each
// epoch evaluates n−ε and n+ε with sample transfers (ε=1), estimates
// the relative slope, and moves by θ·Δ where the confidence factor θ
// grows by one for every consecutive epoch moving in the same
// direction and resets on a direction change.
type GradientDescent struct {
	// MaxN bounds the search space (inclusive).
	MaxN int
	// Epsilon is the probe offset (the paper uses 1).
	Epsilon int
	// Gain scales the step Δ = Gain·n·relativeSlope. Default 3.
	Gain float64
	// MaxStep bounds a single move, guarding against sampling-error
	// jumps. Default 8.
	MaxStep float64
	// Smoothing is the EWMA factor applied to the relative-slope
	// estimate in (0, 1]; 1 disables smoothing. Default 0.5. Competing
	// transfers perturb throughput between the two probe samples of an
	// epoch, so raw slope estimates carry drift contamination that
	// smoothing (together with probe-order alternation) averages out.
	Smoothing float64

	center   int
	theta    float64
	lastDir  int
	phase    int // 0: need first probe result; 1: need second probe result
	firstU   float64
	lowFirst bool // probe order this epoch (alternates to cancel drift)
	relEWMA  float64
	hasEWMA  bool
	started  bool
}

// NewGradientDescent returns a GD searcher over [1, maxN] starting at
// the paper's initial concurrency of 2. It panics if maxN < 1.
func NewGradientDescent(maxN int) *GradientDescent {
	if maxN < 1 {
		panic(fmt.Sprintf("optimizer: GradientDescent maxN %d must be ≥ 1", maxN))
	}
	return &GradientDescent{MaxN: maxN, Epsilon: 1, Gain: 3, MaxStep: 8, Smoothing: 0.5, center: 2, theta: 1, lowFirst: true}
}

// Name implements Search.
func (g *GradientDescent) Name() string { return "gradient-descent" }

// low and high return the probe points around the current center,
// degenerating gracefully at the bounds.
func (g *GradientDescent) low() int  { return clampInt(g.center-g.Epsilon, 1, g.MaxN) }
func (g *GradientDescent) high() int { return clampInt(g.center+g.Epsilon, 1, g.MaxN) }

// firstProbe and secondProbe return this epoch's probe points in order.
func (g *GradientDescent) firstProbe() int {
	if g.lowFirst {
		return g.low()
	}
	return g.high()
}

func (g *GradientDescent) secondProbe() int {
	if g.lowFirst {
		return g.high()
	}
	return g.low()
}

// Next implements Search.
func (g *GradientDescent) Next(obs Observation) int {
	if !g.started {
		// The very first observation is the initial setting's sample;
		// begin the first epoch with its first probe.
		g.started = true
		g.phase = 1
		return g.firstProbe()
	}
	switch g.phase {
	case 1: // obs is the first probe; ask for the second
		g.firstU = obs.Utility
		g.phase = 2
		return g.secondProbe()
	default: // obs is the second probe; move the center
		uLow, uHigh := g.firstU, obs.Utility
		if !g.lowFirst {
			uLow, uHigh = uHigh, uLow
		}
		denom := math.Abs(uLow)
		if denom < 1e-12 {
			denom = 1e-12
		}
		span := float64(g.high() - g.low())
		if span == 0 {
			span = 1
		}
		rel := (uHigh - uLow) / denom / span // relative slope per unit n

		// Smooth the slope: background drift between the two probe
		// samples (competing transfers adjusting their settings)
		// contaminates individual estimates; alternating the probe
		// order flips the contamination's sign so the EWMA cancels it.
		alpha := g.Smoothing
		if alpha <= 0 || alpha > 1 {
			alpha = 1
		}
		if g.hasEWMA {
			g.relEWMA = alpha*rel + (1-alpha)*g.relEWMA
		} else {
			g.relEWMA = rel
			g.hasEWMA = true
		}
		g.lowFirst = !g.lowFirst

		delta := g.Gain * float64(g.center) * g.relEWMA
		dir := 0
		if delta > 0 {
			dir = 1
		} else if delta < 0 {
			dir = -1
		}
		if dir != 0 && dir == g.lastDir {
			g.theta++
		} else {
			g.theta = 1
		}
		g.lastDir = dir
		// The confidence factor accelerates the move, but the final
		// step stays bounded by MaxStep: unbounded θ·Δ slams the
		// search between the bounds once competing transfers perturb
		// the slope estimates.
		step := g.theta * delta
		if step > g.MaxStep {
			step = g.MaxStep
		}
		if step < -g.MaxStep {
			step = -g.MaxStep
		}
		move := int(math.Round(step))
		if move == 0 && dir != 0 {
			move = dir // always react to a definite slope
		}
		g.center = clampInt(g.center+move, 1, g.MaxN)
		g.phase = 1
		return g.firstProbe()
	}
}

// Center returns the searcher's current concurrency estimate (the
// midpoint of the probe pair).
func (g *GradientDescent) Center() int { return g.center }

// VecObservation is the outcome of evaluating one multi-parameter
// setting.
type VecObservation struct {
	// X is the setting that was active, e.g. [concurrency,
	// parallelism, pipelining].
	X []int
	// Utility is the Eq 7 utility computed from the sample.
	Utility float64
}

// VecSearch proposes multi-parameter settings, one per sample transfer.
type VecSearch interface {
	NextVec(obs VecObservation) []int
	Name() string
}

// ConjugateGD is the multi-parameter searcher of §4.4. Each epoch
// probes ±1 along every dimension (2·dims sample transfers — the reason
// multi-parameter optimization converges up to 3× slower, as the paper
// reports) and assembles a finite-difference gradient. A Polak–Ribière
// conjugate direction supplies the sign of movement per dimension,
// while each dimension keeps its own adaptive step size that grows
// while its direction stays consistent and resets on a flip — the
// multi-dimensional analogue of GradientDescent's confidence factor θ.
type ConjugateGD struct {
	// Lo and Hi bound each dimension (inclusive).
	Lo, Hi []int
	// StepGrowth multiplies a dimension's step while its direction is
	// stable. Default 1.5.
	StepGrowth float64
	// MaxStep bounds per-dimension movement per epoch. Default 8.
	MaxStep float64

	center   []int
	grad     []float64
	prevGrad []float64
	dirVec   []float64
	stepSize []float64
	lastSign []int

	dim     int // dimension currently being probed
	side    int // 0: need low probe, 1: need high probe
	uLow    float64
	started bool
}

// NewConjugateGD returns a conjugate-gradient searcher with the given
// per-dimension bounds, starting at the low bounds plus one. It panics
// on malformed bounds.
func NewConjugateGD(lo, hi []int) *ConjugateGD {
	if len(lo) == 0 || len(lo) != len(hi) {
		panic("optimizer: ConjugateGD bounds length mismatch")
	}
	center := make([]int, len(lo))
	steps := make([]float64, len(lo))
	for i := range lo {
		if lo[i] < 1 || hi[i] < lo[i] {
			panic(fmt.Sprintf("optimizer: ConjugateGD bad bounds dim %d: [%d, %d]", i, lo[i], hi[i]))
		}
		center[i] = clampInt(lo[i]+1, lo[i], hi[i])
		steps[i] = 1
	}
	return &ConjugateGD{
		Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...),
		StepGrowth: 1.5, MaxStep: 8,
		center:   center,
		grad:     make([]float64, len(lo)),
		dirVec:   make([]float64, len(lo)),
		stepSize: steps,
		lastSign: make([]int, len(lo)),
	}
}

// Name implements VecSearch.
func (c *ConjugateGD) Name() string { return "conjugate-gd" }

// Center returns the current multi-parameter estimate.
func (c *ConjugateGD) Center() []int { return append([]int(nil), c.center...) }

// probe returns the center shifted by delta along dim, clamped.
func (c *ConjugateGD) probe(dim, delta int) []int {
	x := append([]int(nil), c.center...)
	x[dim] = clampInt(x[dim]+delta, c.Lo[dim], c.Hi[dim])
	return x
}

// NextVec implements VecSearch.
func (c *ConjugateGD) NextVec(obs VecObservation) []int {
	if !c.started {
		c.started = true
		c.dim, c.side = 0, 0
		return c.probe(0, -1)
	}
	if c.side == 0 {
		c.uLow = obs.Utility
		c.side = 1
		return c.probe(c.dim, +1)
	}
	// High probe arrived: finish this dimension's slope.
	uHigh := obs.Utility
	denom := math.Abs(c.uLow)
	if denom < 1e-12 {
		denom = 1e-12
	}
	span := float64(c.probe(c.dim, +1)[c.dim] - c.probe(c.dim, -1)[c.dim])
	if span == 0 {
		span = 1
	}
	c.grad[c.dim] = (uHigh - c.uLow) / denom / span
	c.dim++
	c.side = 0
	if c.dim < len(c.center) {
		return c.probe(c.dim, -1)
	}

	// Full gradient assembled: Polak–Ribière conjugate direction.
	beta := 0.0
	if c.prevGrad != nil {
		num, den := 0.0, 0.0
		for i := range c.grad {
			num += c.grad[i] * (c.grad[i] - c.prevGrad[i])
			den += c.prevGrad[i] * c.prevGrad[i]
		}
		if den > 1e-18 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0 // PR+ restart
		}
	}
	for i := range c.grad {
		c.dirVec[i] = c.grad[i] + beta*c.dirVec[i]
	}
	// Per-dimension adaptive move: the conjugate direction supplies the
	// sign, the step size adapts to sign stability.
	const deadband = 1e-4 // slopes below this are "flat": hold position
	for i := range c.center {
		sign := 0
		if c.dirVec[i] > deadband {
			sign = 1
		} else if c.dirVec[i] < -deadband {
			sign = -1
		}
		if sign == 0 {
			c.stepSize[i] = 1
			c.lastSign[i] = 0
			continue
		}
		if sign == c.lastSign[i] {
			c.stepSize[i] *= c.StepGrowth
			if c.stepSize[i] > c.MaxStep {
				c.stepSize[i] = c.MaxStep
			}
		} else {
			c.stepSize[i] = 1
		}
		c.lastSign[i] = sign
		mv := sign * int(math.Round(c.stepSize[i]))
		c.center[i] = clampInt(c.center[i]+mv, c.Lo[i], c.Hi[i])
	}
	if c.prevGrad == nil {
		c.prevGrad = make([]float64, len(c.grad))
	}
	copy(c.prevGrad, c.grad)

	// Start the next epoch.
	c.dim, c.side = 0, 0
	return c.probe(0, -1)
}
