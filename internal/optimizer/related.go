package optimizer

import (
	"fmt"
	"math"
	"math/rand"
)

// DirectSearch implements a compass/pattern direct search in the spirit
// of Balaprakash et al. [14] (§5 related work): evaluate the pattern
// points around the incumbent with a step size that expands on success
// and contracts on failure, using only utility comparisons — no
// gradients. It converges without tuning but slower than GD/BO, which
// is why the paper positions online convex methods above it.
type DirectSearch struct {
	// MaxN bounds the search space (inclusive).
	MaxN int
	// InitialStep is the opening pattern radius. Default 4.
	InitialStep int

	center  int
	bestU   float64
	hasBest bool
	step    int
	side    int // -1: just probed left; +1: just probed right; 0: at center
	started bool
}

var _ Search = (*DirectSearch)(nil)

// NewDirectSearch returns a direct searcher over [1, maxN].
// It panics if maxN < 1.
func NewDirectSearch(maxN int) *DirectSearch {
	if maxN < 1 {
		panic(fmt.Sprintf("optimizer: DirectSearch maxN %d must be ≥ 1", maxN))
	}
	return &DirectSearch{MaxN: maxN, InitialStep: 4, center: 2, step: 4, side: -1}
}

// Name implements Search.
func (d *DirectSearch) Name() string { return "direct-search" }

// Next implements Search.
func (d *DirectSearch) Next(obs Observation) int {
	if !d.started {
		d.started = true
		d.bestU = obs.Utility
		d.hasBest = true
		d.center = obs.N
		d.side = -1
		return clampInt(d.center-d.step, 1, d.MaxN)
	}
	if obs.Utility > d.bestU {
		// Success: move the incumbent to the probed point and expand.
		d.center = obs.N
		d.bestU = obs.Utility
		d.step *= 2
		if d.step > d.MaxN/2 {
			d.step = d.MaxN / 2
		}
		if d.step < 1 {
			d.step = 1
		}
		d.side = -1
		return clampInt(d.center-d.step, 1, d.MaxN)
	}
	// Failure at this pattern point: try the other side, then contract.
	if d.side == -1 {
		d.side = 1
		return clampInt(d.center+d.step, 1, d.MaxN)
	}
	d.side = -1
	if d.step > 1 {
		d.step /= 2
	} else {
		// Fully contracted: keep polling ±1 forever — the continuous
		// re-exploration every online method needs. Refresh the
		// incumbent utility so drifting conditions do not pin us to a
		// stale best.
		d.bestU = math.Max(d.bestU*0.98, obs.Utility)
	}
	return clampInt(d.center-d.step, 1, d.MaxN)
}

// Center returns the incumbent.
func (d *DirectSearch) Center() int { return d.center }

// SPSA implements simultaneous-perturbation stochastic approximation in
// the spirit of ProbData [48] (§5): perturb the setting by ±c, estimate
// the gradient from the two noisy evaluations, and take a diminishing
// a/(k+A) step. The diminishing gains give asymptotic convergence but
// need many iterations — the paper's critique that ProbData "takes
// several hours to converge" shows up here as a much longer tail than
// GD/BO.
type SPSA struct {
	// MaxN bounds the search space (inclusive).
	MaxN int
	// A0 is the numerator of the step gain a_k = A0/(k+Stability).
	// Default 40.
	A0 float64
	// Stability is SPSA's A parameter. Default 10.
	Stability float64
	// C is the perturbation radius. Default 2.
	C int

	rng     *rand.Rand
	center  float64
	k       int
	delta   int // ±1 direction of the current perturbation
	phase   int // 0: need minus probe; 1: need plus probe
	uMinus  float64
	started bool
}

var _ Search = (*SPSA)(nil)

// NewSPSA returns an SPSA searcher over [1, maxN] with a deterministic
// seed. It panics if maxN < 1.
func NewSPSA(maxN int, seed int64) *SPSA {
	if maxN < 1 {
		panic(fmt.Sprintf("optimizer: SPSA maxN %d must be ≥ 1", maxN))
	}
	return &SPSA{
		MaxN: maxN, A0: 40, Stability: 10, C: 2,
		rng: rand.New(rand.NewSource(seed)), center: 2,
	}
}

// Name implements Search.
func (s *SPSA) Name() string { return "spsa" }

// minus and plus are the current perturbed evaluation points.
func (s *SPSA) minus() int {
	return clampInt(int(math.Round(s.center))-s.delta*s.C, 1, s.MaxN)
}
func (s *SPSA) plus() int {
	return clampInt(int(math.Round(s.center))+s.delta*s.C, 1, s.MaxN)
}

// Next implements Search.
func (s *SPSA) Next(obs Observation) int {
	if !s.started {
		s.started = true
		s.newDirection()
		s.phase = 1
		return s.minus()
	}
	if s.phase == 1 {
		s.uMinus = obs.Utility
		s.phase = 2
		return s.plus()
	}
	// Gradient estimate from the perturbation pair.
	uPlus := obs.Utility
	span := float64(s.plus() - s.minus())
	if span == 0 {
		span = 1
	}
	scale := math.Max(math.Abs(s.uMinus), 1e-12)
	ghat := (uPlus - s.uMinus) / span / scale // relative slope
	s.k++
	ak := s.A0 / (float64(s.k) + s.Stability)
	s.center += ak * ghat * s.center
	s.center = math.Max(1, math.Min(float64(s.MaxN), s.center))
	s.newDirection()
	s.phase = 1
	return s.minus()
}

func (s *SPSA) newDirection() {
	if s.rng.Intn(2) == 0 {
		s.delta = -1
	} else {
		s.delta = 1
	}
}

// Center returns the current (continuous) iterate, rounded.
func (s *SPSA) Center() int { return int(math.Round(s.center)) }
