package probe

import (
	"math"
	"strings"
	"testing"

	"repro/internal/testbed"
)

func TestProfileEmulab(t *testing.T) {
	r, err := Profile(testbed.Emulab(10e6), Options{MaxConcurrency: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.SingleStream-10e6) > 1e6 {
		t.Fatalf("single stream = %v, want ≈10 Mbps (per-process throttle)", r.SingleStream)
	}
	if math.Abs(r.PathCapacity-100e6) > 8e6 {
		t.Fatalf("path capacity = %v, want ≈100 Mbps", r.PathCapacity)
	}
	if r.SaturationConcurrency < 9 || r.SaturationConcurrency > 11 {
		t.Fatalf("saturation cc = %d, want ≈10", r.SaturationConcurrency)
	}
	if r.LossAtDouble <= r.LossAtSaturation {
		t.Fatalf("doubling concurrency should raise loss: %v vs %v", r.LossAtDouble, r.LossAtSaturation)
	}
}

func TestProfileHPCLab(t *testing.T) {
	r, err := Profile(testbed.HPCLab(), Options{MaxConcurrency: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.PathCapacity < 24e9 || r.PathCapacity > 28e9 {
		t.Fatalf("path capacity = %v, want ≈27 Gbps (write bottleneck)", r.PathCapacity)
	}
	if r.SaturationConcurrency < 8 || r.SaturationConcurrency > 11 {
		t.Fatalf("saturation cc = %d, want ≈9 (§4.1)", r.SaturationConcurrency)
	}
	// Sender-limited: no meaningful loss even past saturation.
	if r.LossAtDouble > 0.005 {
		t.Fatalf("loss at 2x = %v, want ≈0 on a loss-free bottleneck", r.LossAtDouble)
	}
}

func TestProfileRejectsInvalidConfig(t *testing.T) {
	cfg := testbed.Emulab(10e6)
	cfg.RTT = -1
	if _, err := Profile(cfg, Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Testbed: "x", SingleStream: 1e9, PathCapacity: 10e9, SaturationConcurrency: 10, LossAtSaturation: 0.001, LossAtDouble: 0.02}
	s := r.String()
	for _, want := range []string{"x:", "1.00 Gbps", "10.00 Gbps", "cc=10"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestBottleneckClassification(t *testing.T) {
	cases := []struct {
		cfg  testbed.Config
		want string
	}{
		{testbed.Emulab(10e6), "Network"},
		{testbed.XSEDE(), "Disk Read"},
		{testbed.HPCLab(), "Disk Write"},
		{testbed.CampusCluster(), "NIC"},
	}
	for _, c := range cases {
		if got := Bottleneck(c.cfg, Report{}); got != c.want {
			t.Errorf("%s: Bottleneck = %q, want %q", c.cfg.Name, got, c.want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.MaxConcurrency != 64 || o.Tolerance != 0.03 || o.SettleTime != 12 || o.MeasureTime != 6 {
		t.Fatalf("defaults = %+v", o)
	}
}
