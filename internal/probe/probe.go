// Package probe implements the capacity-profiling methodology of the
// paper's §4: before running experiments, the authors used Iperf and
// bonnie++ to capture the "true" capacity of network and storage
// resources and thereby identify each testbed's bottleneck (Table 1).
//
// The probes here do the same against a simulated testbed — purely by
// running measurement transfers through the engine, never by reading
// the configuration — so they validate that the simulator's observable
// behaviour matches its declared capacities, and they supply the
// ground-truth "optimal concurrency" used by convergence analyses.
package probe

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// Report is the outcome of profiling one testbed.
type Report struct {
	// Testbed is the profiled configuration's name.
	Testbed string
	// SingleStream is the throughput of one connection in bits/s —
	// what a single-stream Iperf run would report.
	SingleStream float64
	// PathCapacity is the end-to-end capacity with ample parallelism,
	// in bits/s — a multi-stream Iperf run.
	PathCapacity float64
	// SaturationConcurrency is the smallest concurrency within tol of
	// PathCapacity — the environment's optimal concurrency.
	SaturationConcurrency int
	// LossAtSaturation is the packet-loss fraction observed at the
	// saturating concurrency.
	LossAtSaturation float64
	// LossAtDouble is the loss at twice the saturating concurrency —
	// the congestion cost of overshooting (Figure 4's regime).
	LossAtDouble float64
}

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%s: single %.2f Gbps, path %.2f Gbps, saturation cc=%d, loss %.2f%%→%.2f%%",
		r.Testbed, r.SingleStream/1e9, r.PathCapacity/1e9,
		r.SaturationConcurrency, r.LossAtSaturation*100, r.LossAtDouble*100)
}

// Options tunes a profiling run.
type Options struct {
	// MaxConcurrency bounds the sweep. Default 64.
	MaxConcurrency int
	// Tolerance is the relative shortfall from peak throughput treated
	// as saturated. Default 0.03.
	Tolerance float64
	// SettleTime and MeasureTime control each sample, in simulated
	// seconds. Defaults 12 and 6.
	SettleTime, MeasureTime float64
	// Seed feeds the engine's noise.
	Seed int64
}

func (o *Options) defaults() {
	if o.MaxConcurrency <= 0 {
		o.MaxConcurrency = 64
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 0.03
	}
	if o.SettleTime <= 0 {
		o.SettleTime = 12
	}
	if o.MeasureTime <= 0 {
		o.MeasureTime = 6
	}
}

// Profile sweeps concurrency on the testbed and derives the report.
// It uses a doubling sweep (1, 2, 4, …) to find the plateau, then
// refines the knee with a linear scan — the strategy keeps sample
// counts near 2·log₂(max) + knee width rather than max.
func Profile(cfg testbed.Config, opts Options) (Report, error) {
	opts.defaults()
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	cfg.NoiseStdDev = 0 // profiling tools average out noise; so do we

	mk := func() *transfer.Task {
		t, err := transfer.NewTask("probe", dataset.Uniform("probe", 50000, int64(dataset.GB)), transfer.DefaultSetting())
		if err != nil {
			panic(err) // static inputs
		}
		return t
	}
	measure := func(ns []int) ([]float64, []float64, error) {
		return testbed.SweepConcurrency(cfg, opts.Seed, mk, ns, opts.SettleTime, opts.MeasureTime)
	}

	// Doubling sweep to find the plateau.
	var ns []int
	for n := 1; n <= opts.MaxConcurrency; n *= 2 {
		ns = append(ns, n)
	}
	tputs, _, err := measure(ns)
	if err != nil {
		return Report{}, err
	}
	peak := 0.0
	for _, t := range tputs {
		peak = math.Max(peak, t)
	}
	report := Report{
		Testbed:      cfg.Name,
		SingleStream: tputs[0] * 1e9,
		PathCapacity: peak * 1e9,
	}

	// Bracket the knee: the first doubling point within tolerance.
	hi := ns[len(ns)-1]
	lo := 1
	for i, t := range tputs {
		if t >= peak*(1-opts.Tolerance) {
			hi = ns[i]
			if i > 0 {
				lo = ns[i-1]
			}
			break
		}
	}
	// Linear refinement within (lo, hi].
	knee := hi
	if hi > lo+1 {
		var scan []int
		for n := lo + 1; n <= hi; n++ {
			scan = append(scan, n)
		}
		scanT, _, err := measure(scan)
		if err != nil {
			return Report{}, err
		}
		for i, t := range scanT {
			if t >= peak*(1-opts.Tolerance) {
				knee = scan[i]
				break
			}
		}
	}
	report.SaturationConcurrency = knee

	// Loss at the knee and at 2× the knee.
	double := knee * 2
	if double > opts.MaxConcurrency {
		double = opts.MaxConcurrency
	}
	_, losses, err := measure([]int{knee, double})
	if err != nil {
		return Report{}, err
	}
	report.LossAtSaturation = losses[0]
	report.LossAtDouble = losses[1]
	return report, nil
}

// Bottleneck classifies the binding constraint from a report and the
// configuration's declared capacities — the inference the paper makes
// from its Iperf/bonnie++ numbers in Table 1.
func Bottleneck(cfg testbed.Config, r Report) string {
	type cand struct {
		name string
		cap  float64
	}
	cands := []cand{
		{"Disk Read", cfg.SrcStore.AggregateCap},
		{"Disk Write", cfg.DstStore.AggregateCap},
		{"NIC", math.Min(cfg.SrcHost.NICCap, cfg.DstHost.NICCap)},
		{"Network", cfg.LinkCapacity},
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cap < cands[j].cap })
	// The measured path capacity should sit at the narrowest declared
	// resource; report that resource's class.
	return cands[0].name
}
