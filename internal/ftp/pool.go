package ftp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// dataConn is one established data connection with its buffered ends.
type dataConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// connPool reuses data connections across stripes. GridFTP caches data
// channels for exactly this reason: connection establishment costs a
// round trip plus slow start (§3.2 footnote 2), which dominates when
// transferring many small files.
type connPool struct {
	addr string
	max  int

	mu     sync.Mutex
	idle   []*dataConn
	closed bool
}

// newConnPool builds a pool dialing addr, keeping at most max idle
// connections.
func newConnPool(addr string, max int) *connPool {
	if max < 1 {
		max = 1
	}
	return &connPool{addr: addr, max: max}
}

// get returns an idle connection or dials a fresh one.
func (p *connPool) get() (*dataConn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		dc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return dc, nil
	}
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("ftp: pool closed")
	}
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("dial data: %w", err)
	}
	dc := &dataConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriterSize(conn, segBufSize)}
	if _, err := fmt.Fprintf(dc.w, "%s\n", hdrData); err != nil {
		conn.Close()
		return nil, err
	}
	return dc, nil
}

// put returns a healthy connection for reuse, or retires it politely if
// the pool is full or closed.
func (p *connPool) put(dc *dataConn) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.max {
		p.idle = append(p.idle, dc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.retire(dc)
}

// discard closes a connection that failed mid-stripe (it must not be
// reused: the stream is in an unknown state).
func (p *connPool) discard(dc *dataConn) {
	dc.conn.Close()
}

// retire ends the protocol session and closes the connection.
func (p *connPool) retire(dc *dataConn) {
	fmt.Fprintf(dc.w, "%s\n", hdrEnd)
	dc.w.Flush()
	dc.conn.Close()
}

// close retires every idle connection and stops new dials.
func (p *connPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, dc := range idle {
		p.retire(dc)
	}
}
