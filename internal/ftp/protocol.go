// Package ftp implements a small GridFTP-flavoured file transfer
// protocol over real TCP sockets, exercising the same application-layer
// knobs Falcon tunes: concurrency (files in flight), parallelism
// (striped data connections per file), and pipelining (control-channel
// command prefetch). The client satisfies core.Environment, so a Falcon
// agent can tune a live transfer over loopback — the repository's
// real-socket demonstration of the paper's system.
//
// Wire protocol (all headers are single LF-terminated ASCII lines):
//
//	control connection:  "CTRL"
//	                     "FILE <id> <size>"     (client, pipelined ≤ q ahead)
//	                     "ACK <id>"             (server)
//	                     "QUIT"                 (client)
//	data connection:     "DATA"
//	                     "SEG <id> <offset> <length>" + <length raw bytes>
//	                     "SUM <id> <offset> <crc32>"  (client trailer)
//	                     "DONE <id> <offset>"   (server: checksum verified)
//	                     "BAD <id> <offset>"    (server: checksum mismatch)
//	                     "END"                  (client)
//
// Every stripe carries a CRC-32 (Castagnoli) trailer; the server
// verifies it against the received payload before acknowledging, and
// the client retries a stripe on BAD, a dropped connection, or a dial
// failure (up to Client.RetryLimit attempts) — the integrity
// verification and transient-failure recovery every production transfer
// tool provides.
//
// Loopback has neither queuing loss nor meaningful command latency, so
// two knobs substitute for the paper's WAN conditions (documented in
// DESIGN.md): Server.CommandDelay emulates control-channel RTT (making
// pipelining matter) and Client.PerProcRate emulates the per-process
// I/O throttle of a parallel file system (making concurrency matter).
// Packet loss is not observable at the application layer on loopback;
// samples report zero loss — the paper's sender-limited case.
package ftp

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Protocol header words.
const (
	hdrCtrl = "CTRL"
	hdrData = "DATA"
	hdrFile = "FILE"
	hdrAck  = "ACK"
	hdrSeg  = "SEG"
	hdrSum  = "SUM"
	hdrDone = "DONE"
	hdrBad  = "BAD"
	hdrEnd  = "END"
	hdrQuit = "QUIT"
)

// maxLineLen bounds header lines against malformed peers.
const maxLineLen = 256

// readLine reads one LF-terminated header line, rejecting oversized or
// malformed input.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("ftp: header line exceeds %d bytes", maxLineLen)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// parseFields splits a header and checks the verb and field count.
func parseFields(line, verb string, want int) ([]string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[0] != verb {
		return nil, fmt.Errorf("ftp: expected %s header, got %q", verb, line)
	}
	if len(fields) != want {
		return nil, fmt.Errorf("ftp: %s header has %d fields, want %d: %q", verb, len(fields), want, line)
	}
	return fields, nil
}

// parseInt64 parses a non-negative int64 header field.
func parseInt64(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ftp: bad integer field %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("ftp: negative integer field %d", v)
	}
	return v, nil
}
