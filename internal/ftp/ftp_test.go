package ftp

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// startServer launches a server on an ephemeral loopback port.
func startServer(t *testing.T, sink Sink, cmdDelay time.Duration) *Server {
	t.Helper()
	srv := &Server{Sink: sink, CommandDelay: cmdDelay}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func files(n int, size int64) []dataset.File {
	fs := make([]dataset.File, n)
	for i := range fs {
		fs[i] = dataset.File{Name: fmt.Sprintf("f%d", i), Size: size}
	}
	return fs
}

func TestServerNeedsSink(t *testing.T) {
	srv := &Server{}
	if err := srv.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("server without sink accepted")
	}
}

func TestClientStartValidation(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	good := transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1}
	cases := []struct {
		name string
		c    *Client
		s    transfer.Setting
	}{
		{"invalid setting", &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(1, 10)}, transfer.Setting{}},
		{"nil source", &Client{Addr: srv.Addr(), Files: files(1, 10)}, good},
		{"no files", &Client{Addr: srv.Addr(), Source: PatternSource{}}, good},
		{"zero-size file", &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: []dataset.File{{Name: "x", Size: 0}}}, good},
		{"concurrency over pool", &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(1, 10), MaxWorkers: 2}, transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1}},
	}
	for _, c := range cases {
		if err := c.c.Start(c.s); err == nil {
			t.Errorf("%s: Start did not error", c.name)
			c.c.Close()
		}
	}
}

func TestTransferDeliversAllBytes(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(20, 64*1024)}
	if err := c.Start(transfer.Setting{Concurrency: 4, Parallelism: 2, Pipelining: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	want := int64(20 * 64 * 1024)
	if got := c.BytesSent(); got != want {
		t.Fatalf("BytesSent = %d, want %d", got, want)
	}
	if got := sink.Bytes(); got != want {
		t.Fatalf("sink received %d, want %d", got, want)
	}
	if !c.Done() {
		t.Fatal("Done() false after Wait")
	}
}

func TestTransferToDirSinkRoundTrips(t *testing.T) {
	dir := t.TempDir()
	sink := &DirSink{Dir: dir}
	defer sink.Close()
	srv := startServer(t, sink, 0)

	// Build a source file with known content.
	srcPath := filepath.Join(dir, "src.bin")
	content := make([]byte, 100_000)
	for i := range content {
		content[i] = byte(i * 31)
	}
	if err := os.WriteFile(srcPath, content, 0o644); err != nil {
		t.Fatal(err)
	}
	src := &DirSource{}
	src.Register(0, srcPath)

	c := &Client{Addr: srv.Addr(), Source: src, Files: []dataset.File{{Name: "src.bin", Size: int64(len(content))}}}
	if err := c.Start(transfer.Setting{Concurrency: 1, Parallelism: 3, Pipelining: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	got, err := os.ReadFile(filepath.Join(dir, "recv-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(content) {
		t.Fatalf("received %d bytes, want %d", len(got), len(content))
	}
	for i := range got {
		if got[i] != content[i] {
			t.Fatalf("byte %d differs: %d vs %d (striped reassembly broken)", i, got[i], content[i])
		}
	}
}

func TestApplyChangesConcurrencyMidFlight(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:       files(200, 256*1024),
		PerProcRate: 50e6, // 50 Mbps per file keeps the transfer alive
	}
	if err := c.Start(transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 8}); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s1, err := c.Measure(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(transfer.Setting{Concurrency: 8, Parallelism: 1, Pipelining: 8}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let new workers spin up
	s2, err := c.Measure(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Throughput < 3*s1.Throughput {
		t.Fatalf("concurrency 8 gave %v bps vs %v at 1; want ≥3×", s2.Throughput, s1.Throughput)
	}
	if s2.Setting.Concurrency != 8 {
		t.Fatalf("sample setting = %+v", s2.Setting)
	}
}

func TestPipeliningHidesCommandLatency(t *testing.T) {
	// With a 20 ms command delay and 2 KiB files, q=1 serialises
	// announcements against completions; q=16 overlaps them.
	run := func(q int) time.Duration {
		sink := &DiscardSink{}
		srv := startServer(t, sink, 20*time.Millisecond)
		c := &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(30, 2048)}
		start := time.Now()
		if err := c.Start(transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: q}); err != nil {
			t.Fatal(err)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	slow := run(1)
	fast := run(16)
	if fast >= slow {
		t.Fatalf("pipelining did not help: q=1 %v vs q=16 %v", slow, fast)
	}
	if slow < 2*fast {
		t.Fatalf("expected ≥2× speedup from pipelining: q=1 %v vs q=16 %v", slow, fast)
	}
}

func TestPerProcRateThrottles(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:       files(1, 2*1024*1024),
		PerProcRate: 8e6, // 1 MiB/s → ≈2 s for 2 MiB
	}
	start := time.Now()
	if err := c.Start(transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 1500*time.Millisecond {
		t.Fatalf("throttled transfer finished in %v, want ≈2s", e)
	}
}

func TestMeasureBeforeStart(t *testing.T) {
	c := &Client{}
	if _, err := c.Measure(time.Millisecond); err == nil {
		t.Fatal("Measure before Start did not error")
	}
	if c.Done() {
		t.Fatal("Done before Start")
	}
	if err := c.Wait(); err == nil {
		t.Fatal("Wait before Start did not error")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(50, 1024*1024), PerProcRate: 20e6}
	set := transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1}
	if err := c.Start(set); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Start(set); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestCloseAbortsTransfer(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{Addr: srv.Addr(), Source: PatternSource{}, Files: files(100, 1024*1024), PerProcRate: 10e6}
	if err := c.Start(transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 2}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s")
	}
	if c.Err() == nil {
		t.Fatal("aborted client has no error")
	}
}

func TestFalconRunnerTunesRealTransfer(t *testing.T) {
	// End-to-end: a Falcon GD agent tunes a real loopback transfer whose
	// per-file rate is throttled to 40 Mbps. Starting at concurrency 1,
	// the agent must raise concurrency and multiply throughput.
	if testing.Short() {
		t.Skip("timing-sensitive loopback test")
	}
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	c := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:       files(4000, 512*1024),
		PerProcRate: 40e6,
		MaxWorkers:  32,
	}
	if err := c.Start(transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 16}); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	agent := core.NewGDAgent(16)
	if err := agent.SetFixedKnobs(1, 16); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var mu sync.Mutex
	var lastTputs []float64
	err := core.Run(ctx, c, agent, core.RunConfig{
		SampleInterval: 400 * time.Millisecond,
		OnSample: func(s transfer.Sample, next transfer.Setting) {
			mu.Lock()
			lastTputs = append(lastTputs, s.Throughput)
			mu.Unlock()
		},
	})
	if err != nil && ctx.Err() == nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lastTputs) < 6 {
		t.Fatalf("too few samples: %d", len(lastTputs))
	}
	first := lastTputs[0]
	best := 0.0
	for _, v := range lastTputs {
		if v > best {
			best = v
		}
	}
	if best < 3*first {
		t.Fatalf("Falcon did not improve real transfer: first %v, best %v", first, best)
	}
}

func TestResizableSemaphore(t *testing.T) {
	sem := newResizableSemaphore(2)
	stop := make(chan struct{})
	if !sem.Acquire(stop) || !sem.Acquire(stop) {
		t.Fatal("could not acquire up to capacity")
	}
	acquired := make(chan struct{})
	go func() {
		if sem.Acquire(stop) {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("third acquire should block at capacity 2")
	case <-time.After(50 * time.Millisecond):
	}
	sem.Resize(3)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Resize did not wake the waiter")
	}
	if sem.Capacity() != 3 {
		t.Fatalf("Capacity = %d", sem.Capacity())
	}
	sem.Release()
	// Stop unblocks pending acquires.
	blocked := make(chan bool)
	sem.Resize(0)
	go func() { blocked <- sem.Acquire(stop) }()
	close(stop)
	select {
	case got := <-blocked:
		if got {
			t.Fatal("Acquire returned true after stop")
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not observe stop")
	}
}

func TestPatternSourceDeterministic(t *testing.T) {
	a := make([]byte, 100)
	b := make([]byte, 100)
	if err := (PatternSource{}).ReadAt(3, 50, a); err != nil {
		t.Fatal(err)
	}
	if err := (PatternSource{}).ReadAt(3, 50, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PatternSource not deterministic")
		}
	}
	// Offset consistency: reading [50,150) must agree with [0,200).
	full := make([]byte, 200)
	if err := (PatternSource{}).ReadAt(3, 0, full); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != full[50+i] {
			t.Fatal("PatternSource offset inconsistency")
		}
	}
}

func TestDirSourceUnregistered(t *testing.T) {
	s := &DirSource{}
	if err := s.ReadAt(0, 0, make([]byte, 1)); err == nil {
		t.Fatal("unregistered file read did not error")
	}
}

// steadyDecider keeps the observed setting — a fixed strategy that
// still exercises the full decide/apply flow each epoch.
type steadyDecider struct{}

func (steadyDecider) Decide(s transfer.Sample) transfer.Setting { return s.Setting }

// TestSimAndRealShareSessionLoop proves the simulator and the real FTP
// stack are driven by the same session loop: core.Run over a
// testbed.SimEnvironment and over a loopback ftp.Client emit the same
// canonical event stream — Join, then one (Sample, Decision, Apply)
// triple per epoch, then Finish — differing only in epoch count.
func TestSimAndRealShareSessionLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive loopback test")
	}
	collect := func(env core.Environment, id string, interval time.Duration) []session.Kind {
		t.Helper()
		var mu sync.Mutex
		var ks []session.Kind
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		err := core.Run(ctx, env, steadyDecider{}, core.RunConfig{
			ID:             id,
			SampleInterval: interval,
			Events: func(e session.Event) {
				mu.Lock()
				ks = append(ks, e.Kind)
				mu.Unlock()
			},
		})
		if err != nil && ctx.Err() == nil {
			t.Fatalf("%s: %v", id, err)
		}
		return ks
	}
	// epochs validates the canonical grammar and returns the epoch count.
	epochs := func(id string, ks []session.Kind) int {
		t.Helper()
		if len(ks) < 2 || ks[0] != session.Join || ks[len(ks)-1] != session.Finish {
			t.Fatalf("%s: stream %v lacks Join…Finish framing", id, ks)
		}
		mid := ks[1 : len(ks)-1]
		if len(mid)%3 != 0 {
			t.Fatalf("%s: %d mid-stream events not in epoch triples: %v", id, len(mid), ks)
		}
		for i := 0; i < len(mid); i += 3 {
			if mid[i] != session.Sample || mid[i+1] != session.Decision || mid[i+2] != session.Apply {
				t.Fatalf("%s: epoch %d is %v, want [sample decision apply]", id, i/3, mid[i:i+3])
			}
		}
		return len(mid) / 3
	}

	// Simulated path: a draining task on the engine's virtual clock.
	eng, err := testbed.NewEngine(testbed.Emulab(10e6), 1)
	if err != nil {
		t.Fatal(err)
	}
	set := transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1}
	task, err := transfer.NewTask("sim", dataset.Uniform("sim", 4, 5_000_000), set)
	if err != nil {
		t.Fatal(err)
	}
	simEnv, err := testbed.NewSimEnvironment(eng, task)
	if err != nil {
		t.Fatal(err)
	}
	simKinds := collect(simEnv, "sim", time.Second)

	// Real path: a throttled loopback FTP transfer on the wall clock.
	srv := startServer(t, &DiscardSink{}, 0)
	c := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:       files(32, 256*1024),
		PerProcRate: 40e6,
	}
	if err := c.Start(set); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	realKinds := collect(c, "real", 200*time.Millisecond)

	nSim, nReal := epochs("sim", simKinds), epochs("real", realKinds)
	if nSim < 2 || nReal < 2 {
		t.Fatalf("too few epochs to compare: sim=%d real=%d", nSim, nReal)
	}
	// Identical per-event sequence up to the shorter run's length.
	n := 1 + 3*min(nSim, nReal)
	for i := 0; i < n; i++ {
		if simKinds[i] != realKinds[i] {
			t.Fatalf("event %d differs: sim %v, real %v", i, simKinds[i], realKinds[i])
		}
	}
}
