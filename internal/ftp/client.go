package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// Client uploads a dataset to a Server, exposing the three Falcon knobs
// live: Apply changes concurrency (active file workers), parallelism
// (stripes per file), and pipelining (control-channel command prefetch)
// while the transfer runs. Client satisfies core.Environment.
type Client struct {
	// Addr is the server address.
	Addr string
	// Source provides file contents. Required.
	Source Source
	// Files is the dataset to send. Required, non-empty.
	Files []dataset.File
	// PerProcRate, when positive, throttles each file's aggregate send
	// rate (bits/s) — the per-process I/O cap that makes concurrency
	// worthwhile on loopback.
	PerProcRate float64
	// MaxWorkers is the worker-pool size and thus the maximum
	// concurrency Apply can set. Default 64.
	MaxWorkers int
	// RetryLimit is how many times a failed stripe (dropped
	// connection, dial failure, checksum mismatch) is retried before
	// the transfer aborts. Default 3.
	RetryLimit int
	// SkipCompleted marks file IDs already delivered by a previous
	// session (see Checkpoint): workers complete them instantly
	// without sending bytes — transfer resume.
	SkipCompleted map[int64]bool

	mu      sync.Mutex
	setting transfer.Setting
	sem     *resizableSemaphore

	nextFile  atomic.Int64
	completed atomic.Int64
	announced atomic.Int64
	bytesSent atomic.Int64
	retries   atomic.Int64

	acks     []chan struct{}
	ctrl     net.Conn
	ctrlW    *bufio.Writer
	ctrlMu   sync.Mutex
	announce chan struct{} // kicks the announcer
	pool     *connPool

	doneMu    sync.Mutex
	doneFiles map[int64]bool

	winMu    sync.Mutex
	winBytes int64     // bytesSent at the last BeginWindow
	winStart time.Time // wall time of the last BeginWindow

	started  bool
	done     chan struct{}
	doneOnce sync.Once
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	errMu    sync.Mutex
	firstErr error
}

// Start validates the configuration, connects the control channel, and
// launches the transfer with the given initial setting. It returns
// immediately; use Wait, Done, and Measure to follow progress.
func (c *Client) Start(initial transfer.Setting) error {
	if err := initial.Validate(); err != nil {
		return err
	}
	if c.Source == nil {
		return errors.New("ftp: client needs a source")
	}
	if len(c.Files) == 0 {
		return errors.New("ftp: client needs files")
	}
	for i, f := range c.Files {
		if f.Size <= 0 {
			return fmt.Errorf("ftp: file %d has size %d", i, f.Size)
		}
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 64
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 3
	}
	if initial.Concurrency > c.MaxWorkers {
		return fmt.Errorf("ftp: concurrency %d exceeds MaxWorkers %d", initial.Concurrency, c.MaxWorkers)
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return errors.New("ftp: client already started")
	}
	c.started = true
	c.setting = initial
	c.mu.Unlock()

	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return fmt.Errorf("ftp: dial control: %w", err)
	}
	c.ctrl = conn
	c.ctrlW = bufio.NewWriter(conn)
	if _, err := fmt.Fprintf(c.ctrlW, "%s\n", hdrCtrl); err != nil {
		conn.Close()
		return err
	}
	if err := c.ctrlW.Flush(); err != nil {
		conn.Close()
		return err
	}

	c.done = make(chan struct{})
	c.stop = make(chan struct{})
	c.BeginWindow()
	c.announce = make(chan struct{}, 1)
	c.sem = newResizableSemaphore(initial.Concurrency)
	c.pool = newConnPool(c.Addr, c.MaxWorkers)
	c.doneFiles = make(map[int64]bool, len(c.SkipCompleted))
	c.acks = make([]chan struct{}, len(c.Files))
	for i := range c.acks {
		c.acks[i] = make(chan struct{})
	}

	c.wg.Add(2)
	go c.ackReader()
	go c.announcer()
	for w := 0; w < c.MaxWorkers; w++ {
		c.wg.Add(1)
		go c.worker()
	}
	return nil
}

// Apply implements core.Environment: it retunes the live transfer.
func (c *Client) Apply(s transfer.Setting) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Concurrency > c.MaxWorkers {
		return fmt.Errorf("ftp: concurrency %d exceeds MaxWorkers %d", s.Concurrency, c.MaxWorkers)
	}
	c.mu.Lock()
	c.setting = s
	c.mu.Unlock()
	c.sem.Resize(s.Concurrency)
	c.kickAnnouncer()
	return nil
}

// Setting returns the currently applied setting.
func (c *Client) Setting() transfer.Setting {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setting
}

// Measure implements core.Environment: it observes throughput over
// roughly d (cut short if the transfer finishes) and reports zero loss
// — the application layer on loopback is sender-limited (§3.1's L=0
// case).
func (c *Client) Measure(d time.Duration) (transfer.Sample, error) {
	if c.done == nil {
		return transfer.Sample{}, errors.New("ftp: Measure before Start")
	}
	startBytes := c.bytesSent.Load()
	startT := time.Now()
	select {
	case <-time.After(d):
	case <-c.done:
	}
	elapsed := time.Since(startT).Seconds()
	if elapsed <= 0 {
		elapsed = d.Seconds()
	}
	bytes := c.bytesSent.Load() - startBytes
	return transfer.Sample{
		Setting:    c.Setting(),
		Duration:   elapsed,
		Throughput: float64(bytes) * 8 / elapsed,
		Loss:       0,
		Time:       float64(time.Now().UnixNano()) / 1e9,
	}, c.Err()
}

// BeginWindow implements session.WindowEnv: it restarts measurement
// accumulation, so the next TakeSample excludes everything sent before
// this instant (e.g. a post-Apply warm-up transient).
func (c *Client) BeginWindow() {
	c.winMu.Lock()
	c.winBytes = c.bytesSent.Load()
	c.winStart = time.Now()
	c.winMu.Unlock()
}

// TakeSample implements session.WindowEnv: it closes the measurement
// window opened by the last BeginWindow (or Start, implicitly) and
// returns the observed sample, then begins a new window. Unlike
// Measure it never blocks — drivers own the cadence.
func (c *Client) TakeSample() (transfer.Sample, error) {
	if c.done == nil {
		return transfer.Sample{}, errors.New("ftp: TakeSample before Start")
	}
	c.winMu.Lock()
	start, startBytes := c.winStart, c.winBytes
	c.winMu.Unlock()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return transfer.Sample{}, errors.New("ftp: empty measurement window")
	}
	bytes := c.bytesSent.Load() - startBytes
	s := transfer.Sample{
		Setting:    c.Setting(),
		Duration:   elapsed,
		Throughput: float64(bytes) * 8 / elapsed,
		Loss:       0,
		Time:       float64(time.Now().UnixNano()) / 1e9,
	}
	c.BeginWindow()
	return s, c.Err()
}

// Done implements core.Environment.
func (c *Client) Done() bool {
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the transfer completes or fails and returns the
// first error, if any.
func (c *Client) Wait() error {
	if c.done == nil {
		return errors.New("ftp: Wait before Start")
	}
	<-c.done
	c.shutdown()
	return c.Err()
}

// BytesSent returns the number of payload bytes sent so far (including
// any bytes resent by stripe retries).
func (c *Client) BytesSent() int64 { return c.bytesSent.Load() }

// Retries returns the number of stripe retry attempts so far.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Checkpoint returns the IDs of files fully delivered so far (including
// files skipped via SkipCompleted). Feeding the result into a new
// client's SkipCompleted resumes an interrupted transfer without
// resending finished files.
func (c *Client) Checkpoint() map[int64]bool {
	c.doneMu.Lock()
	defer c.doneMu.Unlock()
	out := make(map[int64]bool, len(c.doneFiles))
	for id := range c.doneFiles {
		out[id] = true
	}
	return out
}

// Err returns the first transfer error, or nil.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// Close aborts the transfer, releasing all goroutines and connections.
func (c *Client) Close() error {
	if c.done == nil {
		return nil
	}
	c.fail(errors.New("ftp: client closed"))
	c.shutdown()
	return nil
}

// shutdown stops goroutines and closes the control connection.
func (c *Client) shutdown() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.sem.Resize(c.MaxWorkers) // unblock workers so they can exit
	})
	if c.pool != nil {
		c.pool.close()
	}
	if c.ctrl != nil {
		c.ctrlMu.Lock()
		fmt.Fprintf(c.ctrlW, "%s\n", hdrQuit)
		c.ctrlW.Flush()
		c.ctrlMu.Unlock()
		c.ctrl.Close()
	}
	c.wg.Wait()
}

// fail records the first error and finishes the transfer.
func (c *Client) fail(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
	c.finish()
}

func (c *Client) finish() {
	c.doneOnce.Do(func() { close(c.done) })
}

func (c *Client) kickAnnouncer() {
	select {
	case c.announce <- struct{}{}:
	default:
	}
}

// announcer sends FILE commands, keeping at most `pipelining`
// announcements outstanding beyond the completed-file count — the
// command prefetch that hides the per-file control round trip.
func (c *Client) announcer() {
	defer c.wg.Done()
	next := int64(0)
	total := int64(len(c.Files))
	for next < total {
		q := int64(c.Setting().Pipelining)
		if next < c.completed.Load()+q {
			c.ctrlMu.Lock()
			_, err := fmt.Fprintf(c.ctrlW, "%s %d %d\n", hdrFile, next, c.Files[next].Size)
			if err == nil {
				err = c.ctrlW.Flush()
			}
			c.ctrlMu.Unlock()
			if err != nil {
				if !c.Done() {
					c.fail(fmt.Errorf("ftp: announce file %d: %w", next, err))
				}
				return
			}
			c.announced.Store(next + 1)
			next++
			continue
		}
		select {
		case <-c.announce:
		case <-c.stop:
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// ackReader closes each file's ack channel as ACKs arrive.
func (c *Client) ackReader() {
	defer c.wg.Done()
	r := bufio.NewReader(c.ctrl)
	for {
		line, err := readLine(r)
		if err != nil {
			if !c.Done() {
				select {
				case <-c.stop:
				default:
					c.fail(fmt.Errorf("ftp: control read: %w", err))
				}
			}
			return
		}
		fields, err := parseFields(line, hdrAck, 2)
		if err != nil {
			c.fail(err)
			return
		}
		id, err := parseInt64(fields[1])
		if err != nil || id >= int64(len(c.acks)) {
			c.fail(fmt.Errorf("ftp: bad ack %q", line))
			return
		}
		select {
		case <-c.acks[id]: // duplicate ACK: protocol violation
			c.fail(fmt.Errorf("ftp: duplicate ack for file %d", id))
			return
		default:
			close(c.acks[id])
		}
	}
}

// worker claims files and transfers them while it can hold a
// concurrency token.
func (c *Client) worker() {
	defer c.wg.Done()
	for {
		if !c.sem.Acquire(c.stop) {
			return
		}
		idx := c.nextFile.Add(1) - 1
		if idx >= int64(len(c.Files)) {
			c.sem.Release()
			return
		}
		var err error
		if !c.SkipCompleted[idx] {
			err = c.transferFile(idx)
		}
		c.sem.Release()
		if err != nil {
			c.fail(fmt.Errorf("ftp: file %d: %w", idx, err))
			return
		}
		c.doneMu.Lock()
		c.doneFiles[idx] = true
		c.doneMu.Unlock()
		if c.completed.Add(1) == int64(len(c.Files)) {
			c.finish()
			return
		}
		c.kickAnnouncer()
	}
}

// transferFile waits for the file's ACK, then sends it as `parallelism`
// stripes over parallel data connections sharing the file's rate
// budget.
func (c *Client) transferFile(idx int64) error {
	select {
	case <-c.acks[idx]:
	case <-c.stop:
		return errors.New("stopped")
	}
	set := c.Setting()
	p := set.Parallelism
	size := c.Files[idx].Size
	if int64(p) > size {
		p = int(size)
	}
	limiter := newRateLimiter(c.PerProcRate)

	stripe := size / int64(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for s := 0; s < p; s++ {
		offset := int64(s) * stripe
		length := stripe
		if s == p-1 {
			length = size - offset
		}
		wg.Add(1)
		go func(i int, off, ln int64) {
			defer wg.Done()
			errs[i] = c.sendStripeWithRetry(idx, off, ln, limiter)
		}(s, offset, length)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// errChecksum marks a server-reported integrity failure (retryable).
var errChecksum = errors.New("ftp: stripe checksum rejected")

// sendStripeWithRetry retries transient stripe failures up to
// RetryLimit times. Aborts (client stop) are not retried.
func (c *Client) sendStripeWithRetry(idx, offset, length int64, limiter *rateLimiter) error {
	var last error
	for attempt := 0; attempt < c.RetryLimit; attempt++ {
		select {
		case <-c.stop:
			return errors.New("stopped")
		default:
		}
		last = c.sendStripe(idx, offset, length, limiter)
		if last == nil {
			return nil
		}
		c.retries.Add(1)
	}
	return fmt.Errorf("stripe [%d+%d) failed after %d attempts: %w", offset, length, c.RetryLimit, last)
}

// sendStripe ships [offset, offset+length) over a pooled data
// connection, appending a CRC-32C trailer that the server must
// acknowledge. Healthy connections return to the pool for the next
// stripe; failed ones are discarded.
func (c *Client) sendStripe(idx, offset, length int64, limiter *rateLimiter) (err error) {
	dc, err := c.pool.get()
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			c.pool.discard(dc)
		} else {
			c.pool.put(dc)
		}
	}()
	if _, err = fmt.Fprintf(dc.w, "%s %d %d %d\n", hdrSeg, idx, offset, length); err != nil {
		return err
	}
	sum := crc32.New(castagnoli)
	buf := make([]byte, 128*1024)
	pos := offset
	remaining := length
	for remaining > 0 {
		select {
		case <-c.stop:
			return errors.New("stopped")
		default:
		}
		chunk := buf
		if remaining < int64(len(chunk)) {
			chunk = chunk[:remaining]
		}
		if err = c.Source.ReadAt(idx, pos, chunk); err != nil {
			return fmt.Errorf("source read: %w", err)
		}
		limiter.wait(len(chunk))
		if _, err = dc.w.Write(chunk); err != nil {
			return err
		}
		sum.Write(chunk)
		c.bytesSent.Add(int64(len(chunk)))
		pos += int64(len(chunk))
		remaining -= int64(len(chunk))
	}
	if _, err = fmt.Fprintf(dc.w, "%s %d %d %d\n", hdrSum, idx, offset, sum.Sum32()); err != nil {
		return err
	}
	if err = dc.w.Flush(); err != nil {
		return err
	}
	// Wait for the server's verdict: DONE confirms verified delivery,
	// BAD demands a retry.
	line, err := readLine(dc.r)
	if err != nil {
		return fmt.Errorf("awaiting DONE: %w", err)
	}
	if splitVerb(line) == hdrBad {
		return errChecksum
	}
	if _, err = parseFields(line, hdrDone, 3); err != nil {
		return err
	}
	return nil
}

// splitVerb returns a header line's first word.
func splitVerb(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			return line[:i]
		}
	}
	return line
}

// resizableSemaphore is a counting semaphore whose capacity can change
// at runtime — the mechanism that lets Apply raise or lower the number
// of active file workers mid-transfer.
type resizableSemaphore struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	used     int
}

func newResizableSemaphore(capacity int) *resizableSemaphore {
	s := &resizableSemaphore{capacity: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until a token is available or stop is closed; it
// reports whether a token was obtained.
func (s *resizableSemaphore) Acquire(stop <-chan struct{}) bool {
	// A watcher goroutine converts stop-closure into a broadcast so
	// blocked waiters re-check.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			s.cond.Broadcast()
		case <-done:
		}
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.used >= s.capacity {
		select {
		case <-stop:
			return false
		default:
		}
		s.cond.Wait()
	}
	select {
	case <-stop:
		return false
	default:
	}
	s.used++
	return true
}

// Release returns a token.
func (s *resizableSemaphore) Release() {
	s.mu.Lock()
	s.used--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Resize changes the capacity, waking waiters if it grew.
func (s *resizableSemaphore) Resize(capacity int) {
	s.mu.Lock()
	s.capacity = capacity
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Capacity returns the current capacity.
func (s *resizableSemaphore) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity
}
