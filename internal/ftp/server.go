package ftp

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// segBufSize is the read buffer for segment payloads.
const segBufSize = 256 * 1024

// maxSegLen bounds a single SEG payload against malicious headers.
const maxSegLen int64 = 1 << 30

// Server accepts control and data connections and feeds received bytes
// to a Sink. One goroutine serves each connection.
type Server struct {
	// Sink receives the data. Required.
	Sink Sink
	// CommandDelay, when positive, delays each FILE acknowledgement,
	// emulating the control-channel round trip of a wide-area transfer
	// (loopback RTT is otherwise too small for pipelining to matter).
	CommandDelay time.Duration
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)

	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// Serve starts listening on addr ("127.0.0.1:0" for an ephemeral port)
// and returns once the listener is ready. Connections are handled in
// background goroutines until Close.
func (s *Server) Serve(addr string) error {
	if s.Sink == nil {
		return errors.New("ftp: server needs a sink")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ftp: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the listener address (valid after Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.isClosed() {
				s.logf("ftp: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) && !s.isClosed() {
				s.logf("ftp: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// handle dispatches a connection by its first header line.
func (s *Server) handle(conn net.Conn) error {
	r := bufio.NewReaderSize(conn, segBufSize)
	kind, err := readLine(r)
	if err != nil {
		return err
	}
	switch kind {
	case hdrCtrl:
		return s.handleControl(conn, r)
	case hdrData:
		return s.handleData(conn, r)
	default:
		return fmt.Errorf("ftp: unknown connection type %q", kind)
	}
}

// handleControl processes FILE announcements. CommandDelay models the
// control channel's *propagation* latency (a WAN round trip): each ACK
// is emitted CommandDelay after its FILE arrives, but commands overlap
// — pipelined announcements do not queue behind each other's delay,
// matching how command pipelining hides RTT on real links.
func (s *Server) handleControl(conn net.Conn, r *bufio.Reader) error {
	var wmu sync.Mutex
	w := bufio.NewWriter(conn)
	var acks sync.WaitGroup
	defer acks.Wait()
	sendAck := func(id int64) {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := fmt.Fprintf(w, "%s %d\n", hdrAck, id); err != nil {
			return
		}
		if err := w.Flush(); err != nil && !s.isClosed() {
			s.logf("ftp: ack %d: %v", id, err)
		}
	}
	for {
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if line == hdrQuit {
			return nil
		}
		fields, err := parseFields(line, hdrFile, 3)
		if err != nil {
			return err
		}
		id, err := parseInt64(fields[1])
		if err != nil {
			return err
		}
		if _, err := parseInt64(fields[2]); err != nil { // size, validated only
			return err
		}
		if s.CommandDelay > 0 {
			acks.Add(1)
			time.AfterFunc(s.CommandDelay, func() {
				defer acks.Done()
				sendAck(id)
			})
		} else {
			sendAck(id)
		}
	}
}

// handleData receives SEG payloads until END, verifying each stripe's
// CRC-32 trailer before acknowledging it.
func (s *Server) handleData(conn net.Conn, r *bufio.Reader) error {
	w := bufio.NewWriter(conn)
	buf := make([]byte, segBufSize)
	for {
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if line == hdrEnd {
			return nil
		}
		fields, err := parseFields(line, hdrSeg, 4)
		if err != nil {
			return err
		}
		id, err := parseInt64(fields[1])
		if err != nil {
			return err
		}
		offset, err := parseInt64(fields[2])
		if err != nil {
			return err
		}
		length, err := parseInt64(fields[3])
		if err != nil {
			return err
		}
		if length > maxSegLen {
			return fmt.Errorf("ftp: segment length %d exceeds limit", length)
		}
		sum := crc32.New(castagnoli)
		remaining := length
		pos := offset
		for remaining > 0 {
			chunk := buf
			if remaining < int64(len(chunk)) {
				chunk = chunk[:remaining]
			}
			n, err := io.ReadFull(r, chunk)
			if err != nil {
				return fmt.Errorf("ftp: short segment read: %w", err)
			}
			sum.Write(chunk[:n])
			if err := s.Sink.WriteAt(id, pos, chunk[:n]); err != nil {
				return fmt.Errorf("ftp: sink write: %w", err)
			}
			pos += int64(n)
			remaining -= int64(n)
		}
		// Checksum trailer.
		trailer, err := readLine(r)
		if err != nil {
			return fmt.Errorf("ftp: reading SUM trailer: %w", err)
		}
		tf, err := parseFields(trailer, hdrSum, 4)
		if err != nil {
			return err
		}
		want, err := parseInt64(tf[3])
		if err != nil {
			return err
		}
		verdict := hdrDone
		if uint32(want) != sum.Sum32() {
			verdict = hdrBad
			s.logf("ftp: checksum mismatch for file %d offset %d", id, offset)
		}
		if _, err := fmt.Fprintf(w, "%s %d %d\n", verdict, id, offset); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
}

// castagnoli is the CRC-32C table shared by client and server.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)
