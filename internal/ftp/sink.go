package ftp

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives transferred file data on the server side.
type Sink interface {
	// WriteAt stores a segment of the file with the given transfer ID.
	// Implementations must be safe for concurrent use (stripes of one
	// file arrive on parallel connections).
	WriteAt(fileID int64, offset int64, data []byte) error
}

// DiscardSink counts received bytes and drops them — the benchmarking
// sink, equivalent to writing to /dev/null.
type DiscardSink struct {
	bytes atomic.Int64
}

// WriteAt implements Sink.
func (d *DiscardSink) WriteAt(_, _ int64, data []byte) error {
	d.bytes.Add(int64(len(data)))
	return nil
}

// Bytes returns the total bytes received.
func (d *DiscardSink) Bytes() int64 { return d.bytes.Load() }

// DirSink writes each file ID to "<dir>/recv-<id>" using WriteAt, so
// parallel stripes land at their offsets.
type DirSink struct {
	Dir string

	mu    sync.Mutex
	files map[int64]*os.File
}

// WriteAt implements Sink.
func (s *DirSink) WriteAt(fileID, offset int64, data []byte) error {
	f, err := s.file(fileID)
	if err != nil {
		return err
	}
	_, err = f.WriteAt(data, offset)
	return err
}

func (s *DirSink) file(fileID int64) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.files == nil {
		s.files = make(map[int64]*os.File)
	}
	if f, ok := s.files[fileID]; ok {
		return f, nil
	}
	f, err := os.OpenFile(filepath.Join(s.Dir, fmt.Sprintf("recv-%d", fileID)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	s.files[fileID] = f
	return f, nil
}

// Close closes every open file.
func (s *DirSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = nil
	return first
}

// Source provides file contents on the client side.
type Source interface {
	// ReadAt fills buf with the file's bytes starting at offset.
	ReadAt(fileID int64, offset int64, buf []byte) error
}

// PatternSource synthesises deterministic file contents without disk
// I/O: byte i of file f is a cheap mix of f and i. Used by tests,
// benchmarks, and the loopback examples.
type PatternSource struct{}

// ReadAt implements Source.
func (PatternSource) ReadAt(fileID, offset int64, buf []byte) error {
	for i := range buf {
		pos := offset + int64(i)
		buf[i] = byte(fileID*131 + pos*7)
	}
	return nil
}

// DirSource reads file contents from paths registered per file ID.
type DirSource struct {
	mu    sync.Mutex
	paths map[int64]string
}

// Register associates a file ID with a filesystem path.
func (s *DirSource) Register(fileID int64, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paths == nil {
		s.paths = make(map[int64]string)
	}
	s.paths[fileID] = path
}

// ReadAt implements Source.
func (s *DirSource) ReadAt(fileID, offset int64, buf []byte) error {
	s.mu.Lock()
	path, ok := s.paths[fileID]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("ftp: no path registered for file %d", fileID)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.ReadAt(buf, offset); err != nil && err != io.EOF {
		return err
	}
	return nil
}

// rateLimiter enforces an approximate bits-per-second budget across
// concurrent users via a token bucket refilled on demand.
type rateLimiter struct {
	mu       sync.Mutex
	rate     float64 // bytes per second
	tokens   float64
	lastFill time.Time
}

// newRateLimiter builds a limiter for rateBits bits/s; nil (unlimited)
// when rateBits ≤ 0.
func newRateLimiter(rateBits float64) *rateLimiter {
	if rateBits <= 0 {
		return nil
	}
	return &rateLimiter{rate: rateBits / 8, lastFill: time.Now()}
}

// wait blocks until n bytes of budget are available and consumes them.
func (l *rateLimiter) wait(n int) {
	if l == nil {
		return
	}
	for {
		l.mu.Lock()
		now := time.Now()
		l.tokens += now.Sub(l.lastFill).Seconds() * l.rate
		l.lastFill = now
		// Cap the burst at 100 ms of budget — but never below the
		// request itself, or a chunk larger than the burst would spin
		// forever.
		maxBurst := l.rate * 0.1
		if maxBurst < float64(n) {
			maxBurst = float64(n)
		}
		if l.tokens > maxBurst {
			l.tokens = maxBurst
		}
		if l.tokens >= float64(n) {
			l.tokens -= float64(n)
			l.mu.Unlock()
			return
		}
		deficit := float64(n) - l.tokens
		l.mu.Unlock()
		sleep := time.Duration(deficit / l.rate * float64(time.Second))
		if sleep < 200*time.Microsecond {
			sleep = 200 * time.Microsecond
		}
		if sleep > 50*time.Millisecond {
			sleep = 50 * time.Millisecond
		}
		// Add tiny jitter so many limiters do not thundering-herd.
		time.Sleep(sleep + time.Duration(rand.Int63n(50))*time.Microsecond)
	}
}
