package ftp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CheckpointFile is the serialisable form of a transfer checkpoint.
type CheckpointFile struct {
	// Completed lists fully delivered file IDs, sorted ascending.
	Completed []int64 `json:"completed"`
	// TotalFiles records the dataset size for sanity checking on load.
	TotalFiles int `json:"total_files"`
}

// SaveCheckpoint serialises the client's progress to w as JSON.
func SaveCheckpoint(w io.Writer, c *Client) error {
	done := c.Checkpoint()
	cf := CheckpointFile{TotalFiles: len(c.Files)}
	for id := range done {
		cf.Completed = append(cf.Completed, id)
	}
	sort.Slice(cf.Completed, func(i, j int) bool { return cf.Completed[i] < cf.Completed[j] })
	enc := json.NewEncoder(w)
	return enc.Encode(cf)
}

// LoadCheckpoint parses a checkpoint and returns the skip set for a
// resuming client. totalFiles guards against applying a checkpoint to
// the wrong dataset.
func LoadCheckpoint(r io.Reader, totalFiles int) (map[int64]bool, error) {
	var cf CheckpointFile
	if err := json.NewDecoder(r).Decode(&cf); err != nil {
		return nil, fmt.Errorf("ftp: parsing checkpoint: %w", err)
	}
	if cf.TotalFiles != totalFiles {
		return nil, fmt.Errorf("ftp: checkpoint is for %d files, dataset has %d", cf.TotalFiles, totalFiles)
	}
	skip := make(map[int64]bool, len(cf.Completed))
	for _, id := range cf.Completed {
		if id < 0 || id >= int64(totalFiles) {
			return nil, fmt.Errorf("ftp: checkpoint references file %d outside dataset", id)
		}
		skip[id] = true
	}
	return skip, nil
}
