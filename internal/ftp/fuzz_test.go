package ftp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// FuzzParseFields hardens header parsing against arbitrary peer input.
func FuzzParseFields(f *testing.F) {
	f.Add("SEG 1 2 3", "SEG", 4)
	f.Add("ACK 7", "ACK", 2)
	f.Add("", "FILE", 3)
	f.Add("SEG 1 2 3 4 5 6 7 8", "SEG", 4)
	f.Add("ACK\t7", "ACK", 2)
	f.Fuzz(func(t *testing.T, line, verb string, want int) {
		if want < 0 || want > 16 {
			return
		}
		fields, err := parseFields(line, verb, want)
		if err == nil {
			if len(fields) != want {
				t.Fatalf("parseFields(%q) returned %d fields without error, want %d", line, len(fields), want)
			}
			if fields[0] != verb {
				t.Fatalf("parseFields(%q) verb = %q, want %q", line, fields[0], verb)
			}
		}
	})
}

// FuzzParseInt64 checks integer-field validation never accepts
// negatives or garbage.
func FuzzParseInt64(f *testing.F) {
	f.Add("0")
	f.Add("-1")
	f.Add("99999999999999999999")
	f.Add("1e9")
	f.Add("0x10")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := parseInt64(s)
		if err == nil && v < 0 {
			t.Fatalf("parseInt64(%q) accepted negative %d", s, v)
		}
	})
}

// FuzzServerData throws arbitrary bytes at a live data connection; the
// server must never acknowledge (DONE) without a valid SEG+payload+SUM
// sequence and must never hang.
func FuzzServerData(f *testing.F) {
	f.Add([]byte("SEG 0 0 5\nhelloSUM 0 0 1\n"))
	f.Add([]byte("SEG 0 0 0\nSUM 0 0 0\n"))
	f.Add([]byte("END\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Add([]byte("SEG 0 0 99999999999\n"))

	sink := &DiscardSink{}
	srv := &Server{Sink: sink}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })

	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<16 {
			return
		}
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Skip("dial failed under fuzz load")
		}
		defer conn.Close()
		fmt.Fprintf(conn, "%s\n", hdrData)
		conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		r := bufio.NewReader(conn)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			// A DONE is only legitimate if the payload embedded a
			// complete, checksum-valid stripe — rare under fuzzing but
			// possible from the seed corpus; a BAD is always fine.
			if strings.HasPrefix(line, hdrDone) && !strings.Contains(string(payload), hdrSum) {
				t.Fatalf("server acknowledged garbage %q", payload)
			}
		}
	})
}
