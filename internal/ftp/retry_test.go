package ftp

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transfer"
)

// TestServerRejectsCorruptStripe speaks the data protocol directly with
// a wrong checksum and expects a BAD verdict.
func TestServerRejectsCorruptStripe(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("hello, falcon")
	fmt.Fprintf(conn, "%s\n", hdrData)
	fmt.Fprintf(conn, "%s 0 0 %d\n", hdrSeg, len(payload))
	conn.Write(payload)
	fmt.Fprintf(conn, "%s 0 0 %d\n", hdrSum, crc32.Checksum(payload, castagnoli)+1) // wrong
	line, err := readLine(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, hdrBad) {
		t.Fatalf("verdict = %q, want BAD", line)
	}
}

// TestServerAcceptsCorrectStripe is the happy-path twin.
func TestServerAcceptsCorrectStripe(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("hello, falcon")
	fmt.Fprintf(conn, "%s\n", hdrData)
	fmt.Fprintf(conn, "%s 0 0 %d\n", hdrSeg, len(payload))
	conn.Write(payload)
	fmt.Fprintf(conn, "%s 0 0 %d\n", hdrSum, crc32.Checksum(payload, castagnoli))
	line, err := readLine(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, hdrDone) {
		t.Fatalf("verdict = %q, want DONE", line)
	}
	if sink.Bytes() != int64(len(payload)) {
		t.Fatalf("sink got %d bytes, want %d", sink.Bytes(), len(payload))
	}
}

// TestServerRejectsMalformedHeaders exercises the server's input
// validation against malformed peers.
func TestServerRejectsMalformedHeaders(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	try := func(name string, lines ...string) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for _, l := range lines {
			fmt.Fprintf(conn, "%s\n", l)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		// The server must close the connection without a DONE.
		buf := make([]byte, 64)
		n, _ := conn.Read(buf)
		if strings.HasPrefix(string(buf[:n]), hdrDone) {
			t.Errorf("%s: server acknowledged malformed input", name)
		}
	}
	try("unknown kind", "WAT")
	try("bad SEG fields", hdrData, "SEG 1 2")
	try("negative offset", hdrData, "SEG 1 -5 10")
	try("oversized segment", hdrData, fmt.Sprintf("SEG 1 0 %d", int64(2)<<30))
	try("bad FILE fields", hdrCtrl, "FILE 1")
	try("non-numeric id", hdrCtrl, "FILE abc 10")
}

// killingProxy forwards TCP connections to a target but severs selected
// connections after a byte budget — injected transient network failure.
type killingProxy struct {
	ln       net.Listener
	target   string
	connIdx  atomic.Int64
	killIdx  map[int64]bool // connection indices to sever
	killWait int64          // bytes forwarded before severing
}

func newKillingProxy(t *testing.T, target string, kill map[int64]bool, killWait int64) *killingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killingProxy{ln: ln, target: target, killIdx: kill, killWait: killWait}
	go p.loop()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *killingProxy) addr() string { return p.ln.Addr().String() }

func (p *killingProxy) loop() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.connIdx.Add(1) - 1
		go p.forward(in, idx)
	}
}

func (p *killingProxy) forward(in net.Conn, idx int64) {
	defer in.Close()
	out, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer out.Close()
	kill := p.killIdx[idx]
	go io.Copy(in, out) // server → client
	if !kill {
		io.Copy(out, in)
		return
	}
	// Forward killWait bytes, then sever both directions.
	io.CopyN(out, in, p.killWait)
	in.Close()
	out.Close()
}

func TestClientRetriesSeveredDataConnections(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	// Connection 0 is the control channel; sever data connections 1
	// and 3 partway through their stripes.
	proxy := newKillingProxy(t, srv.Addr(), map[int64]bool{1: true, 3: true}, 8*1024)

	c := &Client{
		Addr:   proxy.addr(),
		Source: PatternSource{},
		Files:  files(6, 64*1024),
	}
	if err := c.Start(transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("transfer failed despite retries: %v", err)
	}
	if got := c.Retries(); got < 2 {
		t.Fatalf("Retries = %d, want ≥2 (two severed stripes)", got)
	}
	// Every byte must still arrive (severed stripes resent in full).
	if sink.Bytes() < int64(6*64*1024) {
		t.Fatalf("sink received %d bytes, want ≥ %d", sink.Bytes(), 6*64*1024)
	}
}

func TestClientGivesUpAfterRetryLimit(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	// Sever every data connection: the transfer can never complete.
	kill := map[int64]bool{}
	for i := int64(1); i < 64; i++ {
		kill[i] = true
	}
	proxy := newKillingProxy(t, srv.Addr(), kill, 1024)
	c := &Client{
		Addr:       proxy.addr(),
		Source:     PatternSource{},
		Files:      files(2, 64*1024),
		RetryLimit: 2,
	}
	if err := c.Start(transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 2}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("transfer succeeded through a fully-severed path")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not give up within 10s")
	}
}
