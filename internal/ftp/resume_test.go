package ftp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/transfer"
)

func TestCheckpointResume(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	// Throttled so the first session cannot finish before we abort it.
	c1 := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:       files(40, 256*1024),
		PerProcRate: 20e6,
	}
	if err := c1.Start(transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 8}); err != nil {
		t.Fatal(err)
	}
	// Let a few files complete, then abort.
	deadline := time.Now().Add(20 * time.Second)
	for len(c1.Checkpoint()) < 5 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	c1.Close()
	done := c1.Checkpoint()
	if len(done) < 5 {
		t.Fatalf("only %d files completed before abort", len(done))
	}
	if len(done) >= 40 {
		t.Fatal("transfer finished before abort; cannot test resume")
	}

	// Round-trip the checkpoint through its JSON form.
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, c1); err != nil {
		t.Fatal(err)
	}
	skip, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != len(done) {
		t.Fatalf("checkpoint round trip lost entries: %d vs %d", len(skip), len(done))
	}

	// Resume: the second session must finish and send only the
	// remaining files' bytes.
	c2 := &Client{
		Addr: srv.Addr(), Source: PatternSource{},
		Files:         files(40, 256*1024),
		SkipCompleted: skip,
	}
	if err := c2.Start(transfer.Setting{Concurrency: 8, Parallelism: 1, Pipelining: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(40-len(skip)) * 256 * 1024
	if got := c2.BytesSent(); got != wantBytes {
		t.Fatalf("resumed session sent %d bytes, want %d (skipping %d files)", got, wantBytes, len(skip))
	}
	if got := len(c2.Checkpoint()); got != 40 {
		t.Fatalf("final checkpoint has %d files, want 40", got)
	}
}

func TestLoadCheckpointValidation(t *testing.T) {
	if _, err := LoadCheckpoint(strings.NewReader("not json"), 10); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader(`{"completed":[1],"total_files":5}`), 10); err == nil {
		t.Error("wrong-dataset checkpoint accepted")
	}
	if _, err := LoadCheckpoint(strings.NewReader(`{"completed":[99],"total_files":10}`), 10); err == nil {
		t.Error("out-of-range file ID accepted")
	}
	skip, err := LoadCheckpoint(strings.NewReader(`{"completed":[0,3],"total_files":10}`), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !skip[0] || !skip[3] || len(skip) != 2 {
		t.Fatalf("skip = %v", skip)
	}
}

func TestConnPoolReuse(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	p := newConnPool(srv.Addr(), 2)
	a, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	p.put(a)
	b, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("pool did not reuse the idle connection")
	}
	p.put(b)
	p.close()
	if _, err := p.get(); err == nil {
		t.Fatal("closed pool handed out a connection")
	}
}

func TestConnPoolCapBounded(t *testing.T) {
	sink := &DiscardSink{}
	srv := startServer(t, sink, 0)
	p := newConnPool(srv.Addr(), 1)
	a, _ := p.get()
	b, _ := p.get()
	p.put(a)
	p.put(b) // over capacity: retired, not pooled
	p.mu.Lock()
	n := len(p.idle)
	p.mu.Unlock()
	if n != 1 {
		t.Fatalf("idle = %d, want 1", n)
	}
	p.close()
}
