package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachNCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 100
		counts := make([]int32, n)
		ForEachN(n, workers, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachNZeroAndNegative(t *testing.T) {
	ran := false
	ForEachN(0, 4, func(int) { ran = true })
	ForEachN(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for non-positive n")
	}
}

func TestSetWorkersClamps(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", Workers())
	}
	SetWorkers(7)
	if Workers() != 7 {
		t.Fatalf("Workers() = %d, want 7", Workers())
	}
}

func TestForEachNPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	ForEachN(10, 4, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}
