// Package parallel provides the deterministic worker pool behind the
// experiment harness. Work items are identified by index; callers write
// results into index-addressed slots, so the assembled output is
// independent of goroutine scheduling and byte-identical to a serial
// run. Each item's own computation must be self-contained (its own
// engine, its own RNG seeded from the item index) — the pool adds no
// synchronisation between items.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the pool width used by ForEach. It defaults to
// GOMAXPROCS and is adjusted by SetWorkers (the -parallel CLI flag).
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// Workers returns the current default pool width.
func Workers() int { return int(defaultWorkers.Load()) }

// SetWorkers sets the default pool width. Values below 1 are clamped
// to 1 (a serial pool).
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	defaultWorkers.Store(int64(n))
}

// ForEach runs fn(0) … fn(n-1) across the default number of workers
// and returns when all calls have finished.
func ForEach(n int, fn func(i int)) { ForEachN(n, Workers(), fn) }

// ForEachN runs fn(0) … fn(n-1) across at most workers goroutines and
// returns when all calls have finished. With workers ≤ 1 (or n == 1)
// it runs fn inline, so serial execution has no goroutine overhead and
// an identical call stack. If any fn panics, ForEachN re-panics with
// the first recovered value after all workers have stopped.
func ForEachN(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("parallel: worker panic on item %d: %v", i, r))
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}
