package testbed

import (
	"fmt"
	"time"

	"repro/internal/session"
	"repro/internal/transfer"
)

// SimEnvironment adapts one task on an Engine to the session
// environment contracts, so the simulator and the real FTP stack are
// driven by literally the same session loop:
//
//   - session.WindowEnv: cooperative measurement windows on virtual
//     time, used by the Scheduler's tick-driven orchestration.
//   - session.Environment (Apply/Measure/Done): blocking sampling on
//     simulated time, used to run core.Run against the simulator.
//     Measure advances the shared engine itself, so this path is for
//     single-session runs only.
//
// Constructing a SimEnvironment registers the task with the engine.
type SimEnvironment struct {
	eng  *Engine
	task *transfer.Task

	// Tick is the Step granularity Measure uses when advancing
	// simulated time. Values ≤ 0 default to 0.25 s.
	Tick float64
}

// NewSimEnvironment registers task with eng and returns its session
// environment. It returns an error for duplicate or nil tasks.
func NewSimEnvironment(eng *Engine, task *transfer.Task) (*SimEnvironment, error) {
	if err := eng.AddTask(task); err != nil {
		return nil, err
	}
	return &SimEnvironment{eng: eng, task: task}, nil
}

// Task returns the adapted task.
func (e *SimEnvironment) Task() *transfer.Task { return e.task }

// Apply implements session.Env: it retunes the simulated transfer.
func (e *SimEnvironment) Apply(s transfer.Setting) error { return e.task.SetSetting(s) }

// Done implements session.Env.
func (e *SimEnvironment) Done() bool { return e.task.Done() }

// Setting returns the task's current setting (the session loop stamps
// it on Join events).
func (e *SimEnvironment) Setting() transfer.Setting { return e.task.Setting() }

// BeginWindow implements session.WindowEnv: it restarts the task's
// measurement window.
func (e *SimEnvironment) BeginWindow() { e.eng.BeginWindow(e.task.ID()) }

// TakeSample implements session.WindowEnv: it closes the measurement
// window and returns the observed sample.
func (e *SimEnvironment) TakeSample() (transfer.Sample, error) {
	return e.eng.TakeSample(e.task.ID())
}

// Clock implements session.ClockSource: the environment's time base is
// the engine's simulated clock.
func (e *SimEnvironment) Clock() session.Clock { return engineClock{e.eng} }

// Measure implements session.Environment on simulated time: it opens a
// fresh window, advances the shared engine by d (cut short if the
// transfer drains), and returns the observed sample. Only one session
// may drive the engine this way; orchestrating several sessions is the
// Scheduler's job.
func (e *SimEnvironment) Measure(d time.Duration) (transfer.Sample, error) {
	if d <= 0 {
		return transfer.Sample{}, fmt.Errorf("testbed: Measure(%v) must be positive", d)
	}
	tick := e.Tick
	if tick <= 0 {
		tick = 0.25
	}
	e.BeginWindow()
	target := e.eng.Now() + d.Seconds()
	for e.eng.Now() < target && !e.task.Done() {
		if rem := target - e.eng.Now(); rem < tick {
			e.eng.Step(rem)
			continue
		}
		// Full ticks run as one macro-step; RunTicks returns at any
		// file-count event, so the done check stays per-event accurate.
		// Only whole ticks are counted — the trailing partial step is
		// taken by the branch above on a later iteration.
		u, k := e.eng.Now(), 0
		for target-u >= tick {
			u += tick
			k++
		}
		e.eng.RunTicks(k, tick)
	}
	return e.TakeSample()
}

// engineClock exposes an Engine's simulated time as a session.Clock.
type engineClock struct{ eng *Engine }

func (c engineClock) Now() float64 { return c.eng.Now() }
