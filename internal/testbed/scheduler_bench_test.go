package testbed

import (
	"fmt"
	"testing"
)

// benchScheduler builds a three-agent scenario on a fresh engine: the
// same orchestration shape cmd/reproduce's timeline figures run, with
// endless transfers so the run measures steady-state orchestration
// rather than completion bookkeeping.
func benchScheduler(b *testing.B, exact bool) *Scheduler {
	b.Helper()
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetExact(exact)
	s := NewScheduler(eng, 1)
	for i := 0; i < 3; i++ {
		if err := s.Add(Participant{Task: bigTask(fmt.Sprintf("t%d", i), 8)}); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSchedulerRun measures a full 300-simulated-second scheduler
// run on the default event-horizon stepping path: session ticks only at
// decision and warm-up deadlines, engine ticks batched up to the next
// horizon and replayed by fastTick.
func BenchmarkSchedulerRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchScheduler(b, false)
		b.StartTimer()
		s.Run(300, 0.25)
	}
}

// BenchmarkSchedulerRunExact measures the identical run on the exact
// always-tick path (-exact): every session ticked and a full engine
// Step taken on every 0.25 s tick. The ratio to BenchmarkSchedulerRun
// is the stepping layer's speedup; the outputs are byte-identical (see
// TestEventHorizonSteppingIsTransparent).
func BenchmarkSchedulerRunExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchScheduler(b, true)
		b.StartTimer()
		s.Run(300, 0.25)
	}
}
