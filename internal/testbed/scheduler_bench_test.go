package testbed

import (
	"fmt"
	"testing"
)

// benchScheduler builds a three-agent scenario on a fresh engine: the
// same orchestration shape cmd/reproduce's timeline figures run, with
// endless transfers so the run measures steady-state orchestration
// rather than completion bookkeeping.
func benchScheduler(b *testing.B, exact bool) *Scheduler {
	b.Helper()
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	eng.SetExact(exact)
	s := NewScheduler(eng, 1)
	for i := 0; i < 3; i++ {
		if err := s.Add(Participant{Task: bigTask(fmt.Sprintf("t%d", i), 8)}); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// benchSteadyRun drives the three-agent scenario in the steady state,
// following BenchmarkSchedulerRunMinute: the scheduler and run are
// built untimed and stepped past the join and warm-up epochs, so an op
// is 300 s of pure orchestration plus simulation with every per-run
// structure (horizon heap, live list, session/environment arenas,
// presized series) already in place — the op must stay at zero
// allocs/op.
func benchSteadyRun(b *testing.B, exact bool) {
	type fixture struct {
		eng *Engine
		run *queueRun
	}
	// A day of simulated headroom per fixture; the run is rebuilt
	// (untimed) when the horizon drains mid-benchmark.
	const until = 86400.0
	build := func() fixture {
		s := benchScheduler(b, exact)
		r := s.newQueueRun(until, 0.25)
		for s.eng.Now() < 20 {
			r.step()
		}
		return fixture{eng: s.eng, run: r}
	}
	f := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.eng.Now()+300 > until {
			b.StopTimer()
			f = build()
			b.StartTimer()
		}
		target := f.eng.Now() + 300
		for f.eng.Now() < target {
			if !f.run.step() {
				b.Fatal("run drained mid-benchmark")
			}
		}
	}
}

// BenchmarkSchedulerRun measures 300 simulated seconds of the
// three-agent scenario on the default event-horizon stepping path:
// session ticks only at decision and warm-up deadlines, engine ticks
// batched up to the next horizon and replayed by fastTick.
func BenchmarkSchedulerRun(b *testing.B) {
	benchSteadyRun(b, false)
}

// BenchmarkSchedulerRunExact measures the identical 300 s on the exact
// always-tick path (-exact): every session ticked and a full engine
// Step taken on every 0.25 s tick. The ratio to BenchmarkSchedulerRun
// is the stepping layer's speedup; the outputs are byte-identical (see
// TestEventHorizonSteppingIsTransparent).
func BenchmarkSchedulerRunExact(b *testing.B) {
	benchSteadyRun(b, true)
}
