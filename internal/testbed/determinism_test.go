package testbed

import (
	"reflect"
	"testing"

	"repro/internal/transfer"
)

// cycler is a controller that walks concurrency through a fixed cycle,
// exercising both memo hits (repeated settings) and misses (changes).
type cycler struct {
	vals []int
	i    *int
}

func (c cycler) Decide(transfer.Sample) transfer.Setting {
	v := c.vals[*c.i%len(c.vals)]
	*c.i++
	return transfer.Setting{Concurrency: v, Parallelism: 1, Pipelining: 1}
}

// TestAllocMemoIsTransparent: the memoized allocator is a pure cache —
// a scenario with competing tasks, joins, leaves, and a concurrency-
// cycling controller must produce exactly the same timeline with the
// memo on (default) and off.
func TestAllocMemoIsTransparent(t *testing.T) {
	run := func(memo bool) *Timeline {
		eng, err := NewEngine(HPCLab(), 7)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetAllocMemo(memo)
		s := NewScheduler(eng, 1)
		i := 0
		parts := []Participant{
			{Task: bigTask("t1", 2), Controller: cycler{vals: []int{2, 2, 5, 5, 3}, i: &i}},
			{Task: bigTask("t2", 4)},
			{Task: bigTask("t3", 1), JoinAt: 40, LeaveAt: 110},
		}
		for _, p := range parts {
			if err := s.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		return s.Run(150, 0.25)
	}
	with := run(true)
	without := run(false)
	if !reflect.DeepEqual(with, without) {
		t.Fatal("memoized allocator changed the timeline vs unmemoized run")
	}
}
