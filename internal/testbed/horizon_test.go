package testbed

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

// TestEventHorizonSteppingIsTransparent: event-horizon stepping is a
// pure fast path — a scenario with a concurrency-cycling controller, a
// task that drains mid-run, and a competitor that joins between two
// horizons (at a time that is neither a tick boundary nor any session
// deadline) and later leaves must produce a timeline and a session
// event stream identical, event for event, to the exact always-tick
// path.
func TestEventHorizonSteppingIsTransparent(t *testing.T) {
	type outcome struct {
		tl     *Timeline
		events []session.Event
	}
	run := func(exact bool) outcome {
		eng, err := NewEngine(HPCLab(), 7)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetExact(exact)
		s := NewScheduler(eng, 1)
		var events []session.Event
		s.SetEventSink(func(e session.Event) { events = append(events, e) })
		i := 0
		t2, err := transfer.NewTask("t2", dataset.Uniform("t2", 40, int64(dataset.GB)),
			transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1})
		if err != nil {
			t.Fatal(err)
		}
		parts := []Participant{
			{Task: bigTask("t1", 2), Controller: cycler{vals: []int{2, 2, 5, 5, 3}, i: &i}},
			{Task: t2},
			{Task: bigTask("t3", 1), JoinAt: 40.1, LeaveAt: 110},
		}
		for _, p := range parts {
			if err := s.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		return outcome{tl: s.Run(150, 0.25), events: events}
	}
	exact := run(true)
	batched := run(false)

	if _, ok := exact.tl.Finished["t2"]; !ok {
		t.Fatal("scenario did not exercise completion: t2 never finished")
	}
	if !reflect.DeepEqual(exact.tl, batched.tl) {
		t.Error("batched timeline differs from exact always-tick timeline")
	}
	if len(exact.events) != len(batched.events) {
		t.Fatalf("event count: exact %d, batched %d", len(exact.events), len(batched.events))
	}
	for i := range exact.events {
		if !reflect.DeepEqual(exact.events[i], batched.events[i]) {
			t.Fatalf("event %d differs:\nexact:   %+v\nbatched: %+v", i, exact.events[i], batched.events[i])
		}
	}
}

// TestStepUntilMatchesStepLoop: StepUntil must be bit-identical to the
// per-tick Step loop it replaces — same final clock, same smoothed
// rates, same byte counts.
func TestStepUntilMatchesStepLoop(t *testing.T) {
	build := func() *Engine {
		eng, err := NewEngine(HPCLab(), 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []string{"a", "b"} {
			if err := eng.AddTask(bigTask(id, 4)); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}
	loop, macro := build(), build()
	const until, tick = 37.5, 0.25
	for loop.Now() < until {
		loop.Step(tick)
	}
	macro.StepUntil(until, tick)

	if loop.Now() != macro.Now() {
		t.Errorf("clock: loop %v, macro %v", loop.Now(), macro.Now())
	}
	for _, id := range []string{"a", "b"} {
		if lr, mr := loop.CurrentRate(id), macro.CurrentRate(id); lr != mr {
			t.Errorf("%s rate: loop %v, macro %v", id, lr, mr)
		}
		if lb, mb := loop.Task(id).BytesDone(), macro.Task(id).BytesDone(); lb != mb {
			t.Errorf("%s bytes: loop %d, macro %d", id, lb, mb)
		}
	}
}

// TestRunTicksReturnsAtFileHorizon: RunTicks must hand control back on
// the tick that changes a task's ActiveFiles count, not run its full
// budget past the event.
func TestRunTicksReturnsAtFileHorizon(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		t.Fatal(err)
	}
	task, err := transfer.NewTask("rt", dataset.Uniform("rt", 2, int64(dataset.GB)),
		transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	const budget = 10000
	consumed := eng.RunTicks(budget, 0.25)
	if consumed >= budget {
		t.Fatalf("RunTicks ran its full %d-tick budget without yielding at the file event", budget)
	}
	if got := task.ActiveFiles(); got == 2 {
		t.Errorf("ActiveFiles still 2 after early return at tick %d", consumed)
	}
	if want := float64(consumed) * 0.25; eng.Now() != want {
		t.Errorf("clock %v after %d ticks, want %v", eng.Now(), consumed, want)
	}
}

// TestSubByteRatesComplete: a transfer whose per-tick byte quota is
// below one byte must still finish — the carry accumulator hands whole
// bytes to Advance once the remainder adds up (pre-fix, int64
// truncation dropped the fraction every tick and the transfer stalled
// forever).
func TestSubByteRatesComplete(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.LinkCapacity = 16 // bits/s → at most 0.5 bytes per 0.25 s tick
	eng, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	task, err := transfer.NewTask("tiny", dataset.Uniform("tiny", 1, 40),
		transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	eng.StepUntil(300, 0.25)
	if !task.Done() {
		t.Fatalf("sub-byte-rate transfer stalled: %d of 40 bytes after %v s", task.BytesDone(), eng.Now())
	}
	if task.BytesDone() != 40 {
		t.Errorf("BytesDone = %d, want 40", task.BytesDone())
	}
}

// TestNextEvent: no tasks (or a drained engine) has no horizon in
// sight; an active task yields a finite estimate that is never in the
// past.
func TestNextEvent(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if h := eng.NextEvent(); !math.IsInf(h, 1) {
		t.Errorf("empty engine NextEvent = %v, want +Inf", h)
	}
	task, err := transfer.NewTask("ne", dataset.Uniform("ne", 3, int64(dataset.GB)),
		transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	// Before the first Step the rate is zero: no horizon yet.
	if h := eng.NextEvent(); !math.IsInf(h, 1) {
		t.Errorf("zero-rate NextEvent = %v, want +Inf", h)
	}
	eng.Step(0.25)
	h := eng.NextEvent()
	if math.IsInf(h, 1) || h < eng.Now() {
		t.Errorf("active NextEvent = %v (now %v), want finite and ≥ now", h, eng.Now())
	}
}
