package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netsim"
	"repro/internal/transfer"
)

// Resource IDs used in the engine's network model.
const (
	resSrcStore = "src-store"
	resDstStore = "dst-store"
	resSrcNIC   = "src-nic"
	resDstNIC   = "dst-nic"
	resSrcCPU   = "src-cpu"
	resDstCPU   = "dst-cpu"
	resLink     = "link"
)

// taskState is the engine's per-task dynamic state.
type taskState struct {
	task *transfer.Task
	// rate is the smoothed aggregate rate in bits/s (ramping toward the
	// equilibrium allocation).
	rate float64
	// loss is the most recent equilibrium loss estimate.
	loss float64
	// Measurement-window accumulators.
	windowStart   float64
	windowBytes   float64
	windowLossSum float64 // time-weighted loss integral
	windowDur     float64
}

// demandKey is the memo key contribution of one demand. Together with
// the contention-dependent capacities it fully determines the
// allocation: resource path and RTT are fixed at engine construction.
type demandKey struct {
	id     string
	cap    float64
	weight int
}

// Engine advances a set of transfer tasks through a Config's resources
// in simulated time. It is deterministic for a given seed.
type Engine struct {
	cfg   Config
	net   *netsim.Network
	rng   *rand.Rand
	now   float64
	state map[string]*taskState
	order []string // deterministic task iteration order

	// Step scratch buffers, reused every tick so the steady-state hot
	// path performs no heap allocations.
	path    []string
	active  []*taskState
	demands []netsim.Demand
	alloc   netsim.Allocation

	// Allocator memo: between optimizer decisions the demand set and
	// contention counts are unchanged for many consecutive ticks, so
	// the equilibrium allocation in e.alloc can be reused instead of
	// re-running water-filling. memoKey/memoCaps record the inputs the
	// cached allocation was computed for; netsim.Allocate is stateless
	// and deterministic, so replaying the cached result is exactly what
	// a re-run would produce.
	memoOff  bool
	memoOK   bool
	memoKey  []demandKey
	memoCaps [4]float64
}

// NewEngine validates cfg and returns an engine seeded for
// deterministic noise.
func NewEngine(cfg Config, seed int64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := netsim.New()
	n.AddResource(netsim.Resource{ID: resSrcStore, Kind: netsim.Storage, Capacity: cfg.SrcStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resDstStore, Kind: netsim.Storage, Capacity: cfg.DstStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resSrcNIC, Kind: netsim.NIC, Capacity: cfg.SrcHost.NICCap})
	n.AddResource(netsim.Resource{ID: resDstNIC, Kind: netsim.NIC, Capacity: cfg.DstHost.NICCap})
	n.AddResource(netsim.Resource{ID: resSrcCPU, Kind: netsim.CPU, Capacity: cfg.SrcHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resDstCPU, Kind: netsim.CPU, Capacity: cfg.DstHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resLink, Kind: netsim.Link, Capacity: cfg.LinkCapacity})
	if cfg.Congestion == "bbr" {
		n.SetLossModel(netsim.BBRLossModel())
	}
	return &Engine{
		cfg:   cfg,
		net:   n,
		rng:   rand.New(rand.NewSource(seed)),
		state: make(map[string]*taskState),
		path:  []string{resSrcStore, resSrcCPU, resSrcNIC, resLink, resDstNIC, resDstCPU, resDstStore},
	}, nil
}

// SetAllocMemo enables or disables allocator memoization (enabled by
// default). Disabling forces every Step to re-run water-filling; the
// determinism regression tests use it to check that the memoized and
// unmemoized paths produce identical results.
func (e *Engine) SetAllocMemo(enabled bool) {
	e.memoOff = !enabled
	e.memoOK = false
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// AddTask registers a task. The task starts transferring on the next
// Step. It returns an error on duplicate IDs.
func (e *Engine) AddTask(t *transfer.Task) error {
	if t == nil {
		return fmt.Errorf("testbed: nil task")
	}
	if _, dup := e.state[t.ID()]; dup {
		return fmt.Errorf("testbed: duplicate task %q", t.ID())
	}
	e.state[t.ID()] = &taskState{task: t, windowStart: e.now}
	e.order = append(e.order, t.ID())
	return nil
}

// RemoveTask deregisters a task (e.g. a departing competitor). Removing
// an unknown ID is a no-op.
func (e *Engine) RemoveTask(id string) {
	if _, ok := e.state[id]; !ok {
		return
	}
	delete(e.state, id)
	for i, tid := range e.order {
		if tid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// Task returns the task with the given ID, or nil.
func (e *Engine) Task(id string) *transfer.Task {
	if st, ok := e.state[id]; ok {
		return st.task
	}
	return nil
}

// TaskIDs returns the registered task IDs in insertion order.
func (e *Engine) TaskIDs() []string {
	return append([]string(nil), e.order...)
}

// CurrentRate returns the task's instantaneous (smoothed) throughput in
// bits/s, or 0 for unknown tasks.
func (e *Engine) CurrentRate(id string) float64 {
	if st, ok := e.state[id]; ok {
		return st.rate
	}
	return 0
}

// CurrentLoss returns the task's latest loss estimate.
func (e *Engine) CurrentLoss(id string) float64 {
	if st, ok := e.state[id]; ok {
		return st.loss
	}
	return 0
}

// AggregateRate returns the sum of all tasks' instantaneous rates.
func (e *Engine) AggregateRate() float64 {
	sum := 0.0
	for _, st := range e.state {
		sum += st.rate
	}
	return sum
}

// activeStates returns states of unfinished tasks in deterministic
// order. The returned slice is an engine-owned scratch buffer valid
// until the next call.
func (e *Engine) activeStates() []*taskState {
	e.active = e.active[:0]
	for _, id := range e.order {
		st := e.state[id]
		if !st.task.Done() {
			e.active = append(e.active, st)
		}
	}
	return e.active
}

// Step advances the simulation by dt seconds. It panics on
// non-positive dt (a driver bug).
func (e *Engine) Step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: Step(%v) must be positive", dt))
	}
	active := e.activeStates()
	if len(active) == 0 {
		e.now += dt
		return
	}

	// Contention-dependent capacities from the global thread and
	// connection counts.
	srcThreads, dstThreads, conns := 0, 0, 0
	for _, st := range active {
		srcThreads += st.task.ActiveFiles()
		dstThreads += st.task.ActiveFiles()
		conns += st.task.ActiveConnections()
	}
	srcStoreCap := e.cfg.SrcStore.EffectiveAggregate(srcThreads)
	dstStoreCap := e.cfg.DstStore.EffectiveAggregate(dstThreads)
	srcCPUCap := e.cfg.SrcHost.EffectiveCPU(conns)
	dstCPUCap := e.cfg.DstHost.EffectiveCPU(conns)
	e.net.SetCapacity(resSrcStore, srcStoreCap)
	e.net.SetCapacity(resDstStore, dstStoreCap)
	e.net.SetCapacity(resSrcCPU, srcCPUCap)
	e.net.SetCapacity(resDstCPU, dstCPUCap)

	// One weighted demand per task: all n×p connections of a task are
	// identical TCP flows with the same per-connection cap.
	demands := e.demands[:0]
	for _, st := range active {
		set := st.task.Setting()
		m := st.task.ActiveConnections()
		if m == 0 {
			continue
		}
		demands = append(demands, netsim.Demand{
			FlowID:    st.task.ID(),
			Resources: e.path,
			Cap:       e.perConnCap(set),
			RTT:       e.cfg.RTT,
			Weight:    m,
		})
	}
	e.demands = demands

	caps := [4]float64{srcStoreCap, dstStoreCap, srcCPUCap, dstCPUCap}
	if !e.memoValid(demands, caps) {
		if err := e.net.AllocateInto(&e.alloc, demands); err != nil {
			// Demands are constructed internally; an error is a bug.
			panic(fmt.Sprintf("testbed: allocation failed: %v", err))
		}
		e.memoRecord(demands, caps)
	}
	alloc := &e.alloc

	// Fold the per-connection allocation into per-task equilibrium
	// rates and losses, apply pipelining efficiency and ramping, and
	// advance the tasks.
	for _, st := range active {
		set := st.task.Setting()
		m := st.task.ActiveConnections()
		eq := alloc.Rate[st.task.ID()] * float64(m)
		loss := alloc.Loss[st.task.ID()]
		if m > 0 {
			perFileRate := eq / float64(st.task.ActiveFiles())
			eff := transfer.PipelineEfficiency(st.task.RemainingMeanFileSize(), perFileRate, e.cfg.RTT, set.Pipelining)
			eq *= eff
		}

		// Exponential approach to equilibrium. Rate reductions (losing
		// a share to a newcomer, dropping connections) take effect
		// faster than slow-start growth: congestion control backs off
		// within a few RTTs.
		tau := e.cfg.rampTau()
		if eq < st.rate {
			tau /= 3
		}
		st.rate += (eq - st.rate) * (1 - math.Exp(-dt/tau))
		if st.rate < 0 {
			st.rate = 0
		}
		st.loss = loss

		bytes := st.rate * dt / 8
		st.windowBytes += bytes
		st.windowLossSum += loss * dt
		st.windowDur += dt
		st.task.Advance(int64(bytes), dt)
	}
	e.now += dt
}

// memoValid reports whether the cached allocation in e.alloc was
// computed for exactly these demands and capacities. Resource paths,
// RTT, and the loss model are fixed at construction, so (FlowID, Cap,
// Weight) per demand plus the contention-dependent capacities fully
// determine the allocator's output.
func (e *Engine) memoValid(demands []netsim.Demand, caps [4]float64) bool {
	if e.memoOff || !e.memoOK || caps != e.memoCaps || len(demands) != len(e.memoKey) {
		return false
	}
	for i := range demands {
		k := &e.memoKey[i]
		if demands[i].FlowID != k.id || demands[i].Cap != k.cap || demands[i].Weight != k.weight {
			return false
		}
	}
	return true
}

// memoRecord snapshots the inputs the just-computed allocation in
// e.alloc corresponds to.
func (e *Engine) memoRecord(demands []netsim.Demand, caps [4]float64) {
	if e.memoOff {
		return
	}
	e.memoKey = e.memoKey[:0]
	for i := range demands {
		e.memoKey = append(e.memoKey, demandKey{id: demands[i].FlowID, cap: demands[i].Cap, weight: demands[i].Weight})
	}
	e.memoCaps = caps
	e.memoOK = true
}

// perConnCap returns the intrinsic per-connection rate cap for a task
// using the given setting: the per-process I/O limit split across the
// file's p streams, and the per-stream TCP window limit.
func (e *Engine) perConnCap(set transfer.Setting) float64 {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	cap := perProc / float64(set.Parallelism)
	if sc := e.streamCap(); sc > 0 && sc < cap {
		cap = sc
	}
	return cap
}

// streamCap returns the per-TCP-stream rate bound from the bandwidth-
// delay product with a 8 MiB socket buffer — the classic long-fat-
// network limitation that makes parallel streams worthwhile (§4.4).
// Negligible at sub-millisecond RTT.
func (e *Engine) streamCap() float64 {
	if e.cfg.RTT < 0.001 {
		return 0
	}
	const bufferBits = 8 * (1 << 20) * 8
	return bufferBits / e.cfg.RTT
}

// BeginWindow resets the task's measurement window. Unknown IDs are a
// no-op.
func (e *Engine) BeginWindow(id string) {
	if st, ok := e.state[id]; ok {
		st.windowStart = e.now
		st.windowBytes = 0
		st.windowLossSum = 0
		st.windowDur = 0
	}
}

// TakeSample closes the task's measurement window and returns the
// observed sample with measurement noise applied, then begins a new
// window. It returns an error for unknown tasks or empty windows.
func (e *Engine) TakeSample(id string) (transfer.Sample, error) {
	st, ok := e.state[id]
	if !ok {
		return transfer.Sample{}, fmt.Errorf("testbed: unknown task %q", id)
	}
	if st.windowDur <= 0 {
		return transfer.Sample{}, fmt.Errorf("testbed: empty measurement window for %q", id)
	}
	tput := st.windowBytes * 8 / st.windowDur
	if e.cfg.NoiseStdDev > 0 {
		factor := 1 + e.cfg.NoiseStdDev*e.rng.NormFloat64()
		if factor < 0.5 {
			factor = 0.5
		}
		if factor > 1.5 {
			factor = 1.5
		}
		tput *= factor
	}
	loss := st.windowLossSum / st.windowDur
	s := transfer.Sample{
		Setting:    st.task.Setting(),
		Duration:   st.windowDur,
		Throughput: tput,
		Loss:       loss,
		Time:       e.now,
	}
	e.BeginWindow(id)
	return s, nil
}

// SaturationConcurrency estimates the concurrency needed to reach the
// testbed's end-to-end capacity with parallelism 1: the number of
// per-process-capped streams required to fill the narrowest aggregate
// resource. This is the "optimal concurrency" profiling tools would
// report (Table 1 context), available to experiments as ground truth.
func (e *Engine) SaturationConcurrency() int {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	if sc := e.streamCap(); sc > 0 && sc < perProc {
		perProc = sc
	}
	bottleneck := e.EndToEndCapacity()
	return int(math.Ceil(bottleneck / perProc))
}

// EndToEndCapacity returns the narrowest aggregate capacity along the
// path at low contention — the maximum achievable transfer rate.
func (e *Engine) EndToEndCapacity() float64 {
	caps := []float64{
		e.cfg.SrcStore.AggregateCap,
		e.cfg.DstStore.AggregateCap,
		e.cfg.SrcHost.NICCap,
		e.cfg.DstHost.NICCap,
		e.cfg.SrcHost.CPUCap,
		e.cfg.DstHost.CPUCap,
		e.cfg.LinkCapacity,
	}
	sort.Float64s(caps)
	return caps[0]
}
