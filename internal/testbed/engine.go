package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netsim"
	"repro/internal/transfer"
)

// Resource IDs used in the engine's network model.
const (
	resSrcStore = "src-store"
	resDstStore = "dst-store"
	resSrcNIC   = "src-nic"
	resDstNIC   = "dst-nic"
	resSrcCPU   = "src-cpu"
	resDstCPU   = "dst-cpu"
	resLink     = "link"
)

// taskState is the engine's per-task dynamic state.
type taskState struct {
	task *transfer.Task
	// rate is the smoothed aggregate rate in bits/s (ramping toward the
	// equilibrium allocation).
	rate float64
	// loss is the most recent equilibrium loss estimate.
	loss float64
	// carry is the sub-byte remainder of rate·dt/8 not yet handed to
	// Advance, so long transfers don't undercount one byte per tick.
	carry float64
	// Measurement-window accumulators.
	windowStart   float64
	windowBytes   float64
	windowLossSum float64 // time-weighted loss integral
	windowDur     float64

	// Fast-path cache, refreshed by every full Step: the per-connection
	// allocation and the allocation inputs it was derived from. While
	// these inputs are unchanged the per-tick update is pure arithmetic
	// on them (see fastTick), with no demand rebuild or map traffic.
	eqRate float64 // alloc.Rate[id], bits/s per connection
	eqLoss float64 // alloc.Loss[id]
	files  int     // ActiveFiles at allocation time
	conns  int     // ActiveConnections at allocation time
	q      int     // Setting().Pipelining at allocation time
	gen    int     // task.Generation() at allocation time
}

// demandKey is the memo key contribution of one demand. Together with
// the contention-dependent capacities it fully determines the
// allocation: resource path and RTT are fixed at engine construction.
type demandKey struct {
	id     string
	cap    float64
	weight int
}

// Engine advances a set of transfer tasks through a Config's resources
// in simulated time. It is deterministic for a given seed.
type Engine struct {
	cfg   Config
	net   *netsim.Network
	rng   *rand.Rand
	now   float64
	state map[string]*taskState
	order []string // deterministic task iteration order

	// Step scratch buffers, reused every tick so the steady-state hot
	// path performs no heap allocations.
	path    []string
	active  []*taskState
	demands []netsim.Demand
	alloc   netsim.DenseAllocation

	// Allocator memo: between optimizer decisions the demand set and
	// contention counts are unchanged for many consecutive ticks, so
	// the equilibrium allocation in e.alloc can be reused instead of
	// re-running water-filling. memoKey/memoCaps record the inputs the
	// cached allocation was computed for; netsim.Allocate is stateless
	// and deterministic, so replaying the cached result is exactly what
	// a re-run would produce.
	memoOff  bool
	memoOK   bool
	memoKey  []demandKey
	memoCaps [4]float64
	// memoGen is the network's capacity generation the cached
	// allocation was computed under. Contention capacities are covered
	// by memoCaps, but the link (and any capacity touched by an
	// environment mutation) is not — the generation counter makes a
	// stale fill impossible even if a mutation path forgets to clear
	// memoOK. Idempotent per-tick capacity refreshes don't advance it.
	memoGen uint64

	// Event-horizon fast path (RunTicks). factive snapshots the active
	// states the cached allocation covers; fastOK reports that their
	// cached inputs still match the engine, so ticks can be replayed by
	// fastTick without rebuilding demands; stepChanged records whether
	// the last tick crossed a file-count horizon (a macro-step boundary
	// callers must observe). exact forces the always-tick path for A/B
	// verification (-exact on the cmds).
	exact       bool
	fastOK      bool
	stepChanged bool
	factive     []*taskState

	// Timed environment mutations (see mutation.go): muts[:mutNext] is
	// the applied prefix, muts[mutNext:] the pending schedule sorted by
	// (At, seq), mutSeq the next tie-break sequence number.
	muts    []Mutation
	mutNext int
	mutSeq  int

	// drained lists the IDs of tasks that completed their dataset during
	// the most recent public advance (Step or RunTicks call), in
	// deterministic task order. The engine already detects the
	// file-count horizon crossing per tick, so completion consumers
	// (the scheduler's event-queue path) read this list instead of
	// polling every task's Done() — see Drained.
	drained []string
}

// defaultExact seeds every new engine's stepping mode. Commands set it
// once at startup (the -exact flag) before building engines; it is not
// safe to toggle concurrently with engine construction.
var defaultExact bool

// enginePath is the fixed end-to-end resource path every engine's
// demands traverse. It is read-only and shared across engines, so
// construction doesn't re-allocate it.
var enginePath = []string{resSrcStore, resSrcCPU, resSrcNIC, resLink, resDstNIC, resDstCPU, resDstStore}

// SetDefaultExact makes engines built afterwards start in exact
// (always-tick) stepping mode — the A/B verification path behind the
// cmds' -exact flags. Call before constructing engines.
func SetDefaultExact(v bool) { defaultExact = v }

// NewEngine validates cfg and returns an engine seeded for
// deterministic noise.
func NewEngine(cfg Config, seed int64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := netsim.New()
	n.AddResource(netsim.Resource{ID: resSrcStore, Kind: netsim.Storage, Capacity: cfg.SrcStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resDstStore, Kind: netsim.Storage, Capacity: cfg.DstStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resSrcNIC, Kind: netsim.NIC, Capacity: cfg.SrcHost.NICCap})
	n.AddResource(netsim.Resource{ID: resDstNIC, Kind: netsim.NIC, Capacity: cfg.DstHost.NICCap})
	n.AddResource(netsim.Resource{ID: resSrcCPU, Kind: netsim.CPU, Capacity: cfg.SrcHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resDstCPU, Kind: netsim.CPU, Capacity: cfg.DstHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resLink, Kind: netsim.Link, Capacity: cfg.LinkCapacity})
	if cfg.Congestion == "bbr" {
		n.SetLossModel(netsim.BBRLossModel())
	}
	return &Engine{
		cfg:   cfg,
		net:   n,
		rng:   rand.New(rand.NewSource(seed)),
		state: make(map[string]*taskState),
		path:  enginePath,
		exact: defaultExact,
	}, nil
}

// SetExact forces (true) or lifts (false) exact always-tick stepping:
// with it set, RunTicks and StepUntil degrade to per-tick full Steps.
// The batched path is bit-identical by construction; the flag exists so
// that claim stays checkable end to end.
func (e *Engine) SetExact(v bool) {
	e.exact = v
	e.fastOK = false
}

// Exact reports whether the engine is in exact always-tick mode.
func (e *Engine) Exact() bool { return e.exact }

// SetAllocMemo enables or disables allocator memoization (enabled by
// default). Disabling forces every Step to re-run water-filling; the
// determinism regression tests use it to check that the memoized and
// unmemoized paths produce identical results.
func (e *Engine) SetAllocMemo(enabled bool) {
	e.memoOff = !enabled
	e.memoOK = false
	e.fastOK = false
}

// SetClassAlloc enables or disables the allocator's flow-class
// aggregation (enabled by default). Disabling forces per-flow
// water-filling — bit-identical by construction; the transparency
// tests use the flag to keep that claim checkable end to end.
func (e *Engine) SetClassAlloc(enabled bool) {
	e.net.SetClassAggregation(enabled)
	e.memoOK = false
	e.fastOK = false
}

// AllocClasses returns the number of distinct flow classes in the
// engine's most recent allocation: tasks running the same parallelism
// setting collapse into one class each.
func (e *Engine) AllocClasses() int { return e.net.Classes() }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// AddTask registers a task. The task starts transferring on the next
// Step. It returns an error on duplicate IDs.
func (e *Engine) AddTask(t *transfer.Task) error {
	if t == nil {
		return fmt.Errorf("testbed: nil task")
	}
	if _, dup := e.state[t.ID()]; dup {
		return fmt.Errorf("testbed: duplicate task %q", t.ID())
	}
	e.state[t.ID()] = &taskState{task: t, windowStart: e.now}
	e.order = append(e.order, t.ID())
	e.fastOK = false
	return nil
}

// RemoveTask deregisters a task (e.g. a departing competitor). Removing
// an unknown ID is a no-op.
func (e *Engine) RemoveTask(id string) {
	if _, ok := e.state[id]; !ok {
		return
	}
	delete(e.state, id)
	for i, tid := range e.order {
		if tid == id {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.fastOK = false
}

// Task returns the task with the given ID, or nil.
func (e *Engine) Task(id string) *transfer.Task {
	if st, ok := e.state[id]; ok {
		return st.task
	}
	return nil
}

// TaskIDs returns the registered task IDs in insertion order.
func (e *Engine) TaskIDs() []string {
	return append([]string(nil), e.order...)
}

// CurrentRate returns the task's instantaneous (smoothed) throughput in
// bits/s, or 0 for unknown tasks.
func (e *Engine) CurrentRate(id string) float64 {
	if st, ok := e.state[id]; ok {
		return st.rate
	}
	return 0
}

// CurrentLoss returns the task's latest loss estimate.
func (e *Engine) CurrentLoss(id string) float64 {
	if st, ok := e.state[id]; ok {
		return st.loss
	}
	return 0
}

// AggregateRate returns the sum of all tasks' instantaneous rates.
func (e *Engine) AggregateRate() float64 {
	sum := 0.0
	for _, st := range e.state {
		sum += st.rate
	}
	return sum
}

// activeStates returns states of unfinished tasks in deterministic
// order. The returned slice is an engine-owned scratch buffer valid
// until the next call.
func (e *Engine) activeStates() []*taskState {
	e.active = e.active[:0]
	for _, id := range e.order {
		st := e.state[id]
		if !st.task.Done() {
			e.active = append(e.active, st)
		}
	}
	return e.active
}

// Step advances the simulation by dt seconds. It panics on
// non-positive dt (a driver bug).
func (e *Engine) Step(dt float64) {
	e.drained = e.drained[:0]
	e.step(dt)
}

// Drained returns the IDs of tasks that drained their dataset during
// the most recent Step or RunTicks call, in deterministic task order.
// The slice is engine-owned and valid until the next advance.
func (e *Engine) Drained() []string { return e.drained }

// step is one full tick: rebuild demands, allocate (or replay the
// memo), and advance every active task.
func (e *Engine) step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: Step(%v) must be positive", dt))
	}
	if e.mutationDue() {
		// Apply before demands are rebuilt so this tick already runs
		// under the mutated environment; fastReady refuses to replay a
		// tick with a due mutation, so batched and exact stepping both
		// land here at the same tick.
		e.applyDueMutations()
	}
	active := e.activeStates()
	if len(active) == 0 {
		e.now += dt
		// A drained engine has no allocation inputs left to change:
		// fastTick over an empty snapshot just advances the clock, so
		// batching stays engaged.
		e.factive = e.factive[:0]
		e.fastOK = true
		e.stepChanged = false
		return
	}

	// Contention-dependent capacities from the global thread and
	// connection counts.
	srcThreads, dstThreads, conns := 0, 0, 0
	for _, st := range active {
		srcThreads += st.task.ActiveFiles()
		dstThreads += st.task.ActiveFiles()
		conns += st.task.ActiveConnections()
	}
	srcStoreCap := e.cfg.SrcStore.EffectiveAggregate(srcThreads)
	dstStoreCap := e.cfg.DstStore.EffectiveAggregate(dstThreads)
	srcCPUCap := e.cfg.SrcHost.EffectiveCPU(conns)
	dstCPUCap := e.cfg.DstHost.EffectiveCPU(conns)
	e.net.SetCapacity(resSrcStore, srcStoreCap)
	e.net.SetCapacity(resDstStore, dstStoreCap)
	e.net.SetCapacity(resSrcCPU, srcCPUCap)
	e.net.SetCapacity(resDstCPU, dstCPUCap)

	// One weighted demand per task: all n×p connections of a task are
	// identical TCP flows with the same per-connection cap.
	demands := e.demands[:0]
	for _, st := range active {
		set := st.task.Setting()
		m := st.task.ActiveConnections()
		if m == 0 {
			continue
		}
		demands = append(demands, netsim.Demand{
			FlowID:    st.task.ID(),
			Resources: e.path,
			Cap:       e.perConnCap(set),
			RTT:       e.cfg.RTT,
			Weight:    m,
		})
	}
	e.demands = demands

	caps := [4]float64{srcStoreCap, dstStoreCap, srcCPUCap, dstCPUCap}
	if !e.memoValid(demands, caps) {
		if err := e.net.AllocateDense(&e.alloc, demands); err != nil {
			// Demands are constructed internally; an error is a bug.
			panic(fmt.Sprintf("testbed: allocation failed: %v", err))
		}
		e.memoRecord(demands, caps)
	}
	alloc := &e.alloc

	// Fold the per-connection allocation into per-task equilibrium
	// rates and losses, apply pipelining efficiency and ramping, and
	// advance the tasks. Along the way, snapshot the allocation inputs
	// per task so subsequent ticks can be replayed by fastTick while
	// nothing observable changes.
	changed := false
	e.factive = e.factive[:0]
	di := 0 // demand index: demands were appended in active order, skipping m == 0
	for _, st := range active {
		set := st.task.Setting()
		m := st.task.ActiveConnections()
		files := st.task.ActiveFiles()
		var eqRate, loss float64
		if m > 0 {
			eqRate = alloc.Rate[di]
			loss = alloc.Loss[di]
			di++
		}
		eq := eqRate * float64(m)
		if m > 0 {
			perFileRate := eq / float64(files)
			eff := transfer.PipelineEfficiency(st.task.RemainingMeanFileSize(), perFileRate, e.cfg.RTT, set.Pipelining)
			eq *= eff
		}

		// Exponential approach to equilibrium. Rate reductions (losing
		// a share to a newcomer, dropping connections) take effect
		// faster than slow-start growth: congestion control backs off
		// within a few RTTs.
		tau := e.cfg.rampTau()
		if eq < st.rate {
			tau /= 3
		}
		st.rate += (eq - st.rate) * (1 - math.Exp(-dt/tau))
		if st.rate < 0 {
			st.rate = 0
		}
		st.loss = loss

		bytes := st.rate * dt / 8
		st.windowBytes += bytes
		st.windowLossSum += loss * dt
		st.windowDur += dt
		whole := bytes + st.carry
		n := int64(whole)
		st.carry = whole - float64(n)
		st.task.Advance(n, dt)

		st.eqRate = eqRate
		st.eqLoss = loss
		st.files = files
		st.conns = m
		st.q = set.Pipelining
		st.gen = st.task.Generation()
		e.factive = append(e.factive, st)
		if st.task.ActiveFiles() != files {
			changed = true
			if st.task.Done() {
				e.drained = append(e.drained, st.task.ID())
			}
		}
	}
	e.now += dt
	e.stepChanged = changed
	// The cached allocation and snapshots describe the current state
	// only if the allocator memo is live and this tick crossed no file
	// horizon.
	e.fastOK = !e.memoOff && e.memoOK && !changed
}

// fastReady reports whether the next tick can be replayed by fastTick:
// the last full Step left a live allocation snapshot and no task has
// been retuned behind the engine's back since (generation check — a
// session Apply between macro-steps lands here).
func (e *Engine) fastReady() bool {
	if e.exact || !e.fastOK {
		return false
	}
	if e.mutationDue() {
		return false
	}
	for _, st := range e.factive {
		if st.gen != st.task.Generation() {
			return false
		}
	}
	return true
}

// fastTick replays one Step over the cached allocation snapshot: the
// identical per-task arithmetic (pipelining efficiency, ramp, window
// accumulation, byte advance) with the demand rebuild, capacity
// recomputation, memo comparison, and allocation-map lookups skipped.
// It reports whether the tick crossed a file-count horizon, which
// invalidates the snapshot for the next tick.
func (e *Engine) fastTick(dt float64) bool {
	if len(e.factive) == 0 {
		e.now += dt
		return false
	}
	// Hoist the ramp factors: dt and tau are tick-invariant, and
	// math.Exp is deterministic, so these are bit-identical to the
	// inline per-task computation in Step.
	tau := e.cfg.rampTau()
	fUp := 1 - math.Exp(-dt/tau)
	fDown := 1 - math.Exp(-dt/(tau/3))
	changed := false
	for _, st := range e.factive {
		eq := st.eqRate * float64(st.conns)
		if st.conns > 0 {
			perFileRate := eq / float64(st.files)
			eff := transfer.PipelineEfficiency(st.task.RemainingMeanFileSize(), perFileRate, e.cfg.RTT, st.q)
			eq *= eff
		}
		f := fUp
		if eq < st.rate {
			f = fDown
		}
		st.rate += (eq - st.rate) * f
		if st.rate < 0 {
			st.rate = 0
		}
		st.loss = st.eqLoss

		bytes := st.rate * dt / 8
		st.windowBytes += bytes
		st.windowLossSum += st.eqLoss * dt
		st.windowDur += dt
		whole := bytes + st.carry
		n := int64(whole)
		st.carry = whole - float64(n)
		st.task.Advance(n, dt)
		if st.task.ActiveFiles() != st.files {
			changed = true
			if st.task.Done() {
				e.drained = append(e.drained, st.task.ID())
			}
		}
	}
	e.now += dt
	if changed {
		e.fastOK = false
	}
	e.stepChanged = changed
	return changed
}

// RunTicks advances up to k ticks of dt seconds each, using the fast
// replay path whenever the allocation snapshot is live and falling
// back to a full Step otherwise. It returns after the tick on which a
// file-count horizon is crossed (a task finished a file in a way that
// changes its ActiveFiles, or completed), so drivers can run their
// per-event bookkeeping at exactly the time the always-tick loop
// would; the return value is the number of ticks actually executed.
// The tick sequence — and every per-task float operation within it —
// is identical to calling Step(dt) k times. It panics on non-positive
// dt (a driver bug); k ≤ 0 executes nothing.
func (e *Engine) RunTicks(k int, dt float64) int {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: RunTicks(dt=%v) must be positive", dt))
	}
	e.drained = e.drained[:0]
	consumed := 0
	for consumed < k {
		if e.fastReady() {
			if e.fastTick(dt) {
				return consumed + 1
			}
			consumed++
			continue
		}
		e.step(dt)
		consumed++
		if e.stepChanged {
			return consumed
		}
	}
	return consumed
}

// StepUntil advances the engine in ticks of dt until Now() ≥ t, the
// macro-step equivalent of `for e.Now() < t { e.Step(dt) }` (the final
// tick may overshoot t, exactly as that loop does). The remaining tick
// count is derived by replaying the clock accumulation, so boundary
// comparisons match the per-tick loop bit for bit.
func (e *Engine) StepUntil(t, dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: StepUntil(dt=%v) must be positive", dt))
	}
	for e.now < t {
		u, k := e.now, 0
		for u < t {
			u += dt
			k++
		}
		e.RunTicks(k, dt)
	}
}

// NextEvent returns a conservative estimate of the earliest simulated
// time at which the engine's allocation inputs can change on their
// own: a task crossing the file boundary that alters its ActiveFiles
// count, including completing outright. The estimate divides each
// task's horizon bytes by the larger of its current smoothed rate and
// its equilibrium target, so a still-ramping transfer (whose rate only
// grows toward equilibrium) can make the estimate early but never
// late-beyond-the-event in steady state; RunTicks re-verifies every
// tick regardless, so the estimate affects macro-step sizing only,
// never correctness. Pending environment mutations bound the estimate
// too: the allocation inputs change at the mutation's tick. Returns
// +Inf when nothing is in sight (no active tasks, or all rates zero).
func (e *Engine) NextEvent() float64 {
	h := e.NextMutation()
	for _, id := range e.order {
		st := e.state[id]
		if st.task.Done() {
			continue
		}
		bound := st.rate
		if eq := st.eqRate * float64(st.conns); eq > bound {
			bound = eq
		}
		if bound <= 0 {
			continue
		}
		if t := e.now + float64(st.task.HorizonBytes())*8/bound; t < h {
			h = t
		}
	}
	return h
}

// memoValid reports whether the cached allocation in e.alloc was
// computed for exactly these demands and capacities. Resource paths,
// RTT, and the loss model are fixed at construction, so (FlowID, Cap,
// Weight) per demand plus the contention-dependent capacities fully
// determine the allocator's output.
func (e *Engine) memoValid(demands []netsim.Demand, caps [4]float64) bool {
	if e.memoOff || !e.memoOK || caps != e.memoCaps || len(demands) != len(e.memoKey) {
		return false
	}
	if e.net.CapacityGeneration() != e.memoGen {
		return false
	}
	for i := range demands {
		k := &e.memoKey[i]
		if demands[i].FlowID != k.id || demands[i].Cap != k.cap || demands[i].Weight != k.weight {
			return false
		}
	}
	return true
}

// memoRecord snapshots the inputs the just-computed allocation in
// e.alloc corresponds to.
func (e *Engine) memoRecord(demands []netsim.Demand, caps [4]float64) {
	if e.memoOff {
		return
	}
	e.memoKey = e.memoKey[:0]
	for i := range demands {
		e.memoKey = append(e.memoKey, demandKey{id: demands[i].FlowID, cap: demands[i].Cap, weight: demands[i].Weight})
	}
	e.memoCaps = caps
	e.memoGen = e.net.CapacityGeneration()
	e.memoOK = true
}

// perConnCap returns the intrinsic per-connection rate cap for a task
// using the given setting: the per-process I/O limit split across the
// file's p streams, and the per-stream TCP window limit.
func (e *Engine) perConnCap(set transfer.Setting) float64 {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	cap := perProc / float64(set.Parallelism)
	if sc := e.streamCap(); sc > 0 && sc < cap {
		cap = sc
	}
	return cap
}

// streamCap returns the per-TCP-stream rate bound from the bandwidth-
// delay product with a 8 MiB socket buffer — the classic long-fat-
// network limitation that makes parallel streams worthwhile (§4.4).
// Negligible at sub-millisecond RTT.
func (e *Engine) streamCap() float64 {
	if e.cfg.RTT < 0.001 {
		return 0
	}
	const bufferBits = 8 * (1 << 20) * 8
	return bufferBits / e.cfg.RTT
}

// BeginWindow resets the task's measurement window. Unknown IDs are a
// no-op.
func (e *Engine) BeginWindow(id string) {
	if st, ok := e.state[id]; ok {
		st.windowStart = e.now
		st.windowBytes = 0
		st.windowLossSum = 0
		st.windowDur = 0
	}
}

// TakeSample closes the task's measurement window and returns the
// observed sample with measurement noise applied, then begins a new
// window. It returns an error for unknown tasks or empty windows.
func (e *Engine) TakeSample(id string) (transfer.Sample, error) {
	st, ok := e.state[id]
	if !ok {
		return transfer.Sample{}, fmt.Errorf("testbed: unknown task %q", id)
	}
	if st.windowDur <= 0 {
		return transfer.Sample{}, fmt.Errorf("testbed: empty measurement window for %q", id)
	}
	tput := st.windowBytes * 8 / st.windowDur
	if e.cfg.NoiseStdDev > 0 {
		factor := 1 + e.cfg.NoiseStdDev*e.rng.NormFloat64()
		if factor < 0.5 {
			factor = 0.5
		}
		if factor > 1.5 {
			factor = 1.5
		}
		tput *= factor
	}
	loss := st.windowLossSum / st.windowDur
	s := transfer.Sample{
		Setting:    st.task.Setting(),
		Duration:   st.windowDur,
		Throughput: tput,
		Loss:       loss,
		Time:       e.now,
	}
	e.BeginWindow(id)
	return s, nil
}

// SaturationConcurrency estimates the concurrency needed to reach the
// testbed's end-to-end capacity with parallelism 1: the number of
// per-process-capped streams required to fill the narrowest aggregate
// resource. This is the "optimal concurrency" profiling tools would
// report (Table 1 context), available to experiments as ground truth.
func (e *Engine) SaturationConcurrency() int {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	if sc := e.streamCap(); sc > 0 && sc < perProc {
		perProc = sc
	}
	bottleneck := e.EndToEndCapacity()
	return int(math.Ceil(bottleneck / perProc))
}

// EndToEndCapacity returns the narrowest aggregate capacity along the
// path at low contention — the maximum achievable transfer rate.
func (e *Engine) EndToEndCapacity() float64 {
	caps := []float64{
		e.cfg.SrcStore.AggregateCap,
		e.cfg.DstStore.AggregateCap,
		e.cfg.SrcHost.NICCap,
		e.cfg.DstHost.NICCap,
		e.cfg.SrcHost.CPUCap,
		e.cfg.DstHost.CPUCap,
		e.cfg.LinkCapacity,
	}
	sort.Float64s(caps)
	return caps[0]
}
