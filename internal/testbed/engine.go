package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netsim"
	"repro/internal/transfer"
)

// Resource IDs used in the engine's network model.
const (
	resSrcStore = "src-store"
	resDstStore = "dst-store"
	resSrcNIC   = "src-nic"
	resDstNIC   = "dst-nic"
	resSrcCPU   = "src-cpu"
	resDstCPU   = "dst-cpu"
	resLink     = "link"
)

// taskSoA is the engine's per-task dynamic state in struct-of-arrays
// layout: one slot per registered task, every field a parallel slice
// indexed by that slot. The hot loops (the fold in step and the whole
// of fastTick) walk these arrays positionally — the same contiguous-
// array discipline the allocator's DenseAllocation boundary follows —
// instead of chasing per-task heap objects, which at fleet scale (10k+
// tasks) is the difference between streaming cache lines and a pointer
// miss per task per tick.
type taskSoA struct {
	task []*transfer.Task

	// rate is the smoothed aggregate rate in bits/s (ramping toward
	// the equilibrium allocation); loss the most recent equilibrium
	// loss estimate; carry the sub-byte remainder of rate·dt/8 not yet
	// handed to Advance, so long transfers don't undercount one byte
	// per tick.
	rate  []float64
	loss  []float64
	carry []float64

	// Measurement-window accumulators.
	windowStart   []float64
	windowBytes   []float64
	windowLossSum []float64 // time-weighted loss integral
	windowDur     []float64

	// Fast-path cache, refreshed by every full Step: the per-connection
	// allocation and the allocation inputs it was derived from. While
	// these inputs are unchanged the per-tick update is pure arithmetic
	// on them (see fastTick), with no demand rebuild or map traffic.
	eqRate []float64 // alloc.Rate[di], bits/s per connection
	eqLoss []float64 // alloc.Loss[di]
	files  []int32   // ActiveFiles at allocation time
	conns  []int32   // ActiveConnections at allocation time
	q      []int32   // Setting().Pipelining at allocation time
	cc     []int32   // Setting().Concurrency at allocation time
	gen    []int32   // task.Generation() at allocation time

	// Positional mirrors of the task's progress counters, kept exact
	// by folding Advance's completed-file count back in: remBytes is
	// BytesRemaining, remFiles is RemainingFiles. fastTick derives the
	// remaining mean file size and the post-advance ActiveFiles from
	// these instead of calling back into the task.
	remBytes []int64
	remFiles []int32
}

// add appends a slot for t and returns its index.
func (s *taskSoA) add(t *transfer.Task, now float64) int32 {
	s.task = append(s.task, t)
	s.rate = append(s.rate, 0)
	s.loss = append(s.loss, 0)
	s.carry = append(s.carry, 0)
	s.windowStart = append(s.windowStart, now)
	s.windowBytes = append(s.windowBytes, 0)
	s.windowLossSum = append(s.windowLossSum, 0)
	s.windowDur = append(s.windowDur, 0)
	s.eqRate = append(s.eqRate, 0)
	s.eqLoss = append(s.eqLoss, 0)
	s.files = append(s.files, 0)
	s.conns = append(s.conns, 0)
	s.q = append(s.q, 0)
	s.cc = append(s.cc, 0)
	s.gen = append(s.gen, 0)
	s.remBytes = append(s.remBytes, 0)
	s.remFiles = append(s.remFiles, 0)
	return int32(len(s.task) - 1)
}

// move copies slot j's fields into slot i (swap-remove support).
func (s *taskSoA) move(i, j int32) {
	s.task[i] = s.task[j]
	s.rate[i] = s.rate[j]
	s.loss[i] = s.loss[j]
	s.carry[i] = s.carry[j]
	s.windowStart[i] = s.windowStart[j]
	s.windowBytes[i] = s.windowBytes[j]
	s.windowLossSum[i] = s.windowLossSum[j]
	s.windowDur[i] = s.windowDur[j]
	s.eqRate[i] = s.eqRate[j]
	s.eqLoss[i] = s.eqLoss[j]
	s.files[i] = s.files[j]
	s.conns[i] = s.conns[j]
	s.q[i] = s.q[j]
	s.cc[i] = s.cc[j]
	s.gen[i] = s.gen[j]
	s.remBytes[i] = s.remBytes[j]
	s.remFiles[i] = s.remFiles[j]
}

// truncate drops the last slot (which must have been moved or removed).
func (s *taskSoA) truncate() {
	last := len(s.task) - 1
	s.task[last] = nil // release the pointer for GC
	s.task = s.task[:last]
	s.rate = s.rate[:last]
	s.loss = s.loss[:last]
	s.carry = s.carry[:last]
	s.windowStart = s.windowStart[:last]
	s.windowBytes = s.windowBytes[:last]
	s.windowLossSum = s.windowLossSum[:last]
	s.windowDur = s.windowDur[:last]
	s.eqRate = s.eqRate[:last]
	s.eqLoss = s.eqLoss[:last]
	s.files = s.files[:last]
	s.conns = s.conns[:last]
	s.q = s.q[:last]
	s.cc = s.cc[:last]
	s.gen = s.gen[:last]
	s.remBytes = s.remBytes[:last]
	s.remFiles = s.remFiles[:last]
}

// len returns the number of occupied slots.
func (s *taskSoA) len() int { return len(s.task) }

// demandKey is the memo key contribution of one demand. Together with
// the contention-dependent capacities it fully determines the
// allocation: resource path and RTT are fixed at engine construction.
type demandKey struct {
	id     string
	cap    float64
	weight int
}

// Engine advances a set of transfer tasks through a Config's resources
// in simulated time. It is deterministic for a given seed.
type Engine struct {
	cfg  Config
	net  *netsim.Network
	rng  *rand.Rand
	now  float64
	soa  taskSoA
	slot map[string]int32 // task ID -> slot in soa
	order []string        // deterministic task iteration order

	// Step scratch buffers, reused every tick so the steady-state hot
	// path performs no heap allocations.
	path    []string
	active  []int32
	demands []netsim.Demand
	alloc   netsim.DenseAllocation

	// Allocator memo: between optimizer decisions the demand set and
	// contention counts are unchanged for many consecutive ticks, so
	// the equilibrium allocation in e.alloc can be reused instead of
	// re-running water-filling. memoKey/memoCaps record the inputs the
	// cached allocation was computed for; netsim.Allocate is stateless
	// and deterministic, so replaying the cached result is exactly what
	// a re-run would produce.
	memoOff  bool
	memoOK   bool
	memoKey  []demandKey
	memoCaps [4]float64
	// memoGen is the network's capacity generation the cached
	// allocation was computed under. Contention capacities are covered
	// by memoCaps, but the link (and any capacity touched by an
	// environment mutation) is not — the generation counter makes a
	// stale fill impossible even if a mutation path forgets to clear
	// memoOK. Idempotent per-tick capacity refreshes don't advance it.
	memoGen uint64

	// Event-horizon fast path (RunTicks). factive snapshots the active
	// slots the cached allocation covers; fastOK reports that their
	// cached inputs still match the engine, so ticks can be replayed by
	// fastTick without rebuilding demands; stepChanged records whether
	// the last tick crossed a file-count horizon (a macro-step boundary
	// callers must observe). exact forces the always-tick path for A/B
	// verification (-exact on the cmds).
	exact       bool
	fastOK      bool
	stepChanged bool
	factive     []int32

	// Timed environment mutations (see mutation.go): muts[:mutNext] is
	// the applied prefix, muts[mutNext:] the pending schedule sorted by
	// (At, seq), mutSeq the next tie-break sequence number.
	muts    []Mutation
	mutNext int
	mutSeq  int

	// drained lists the IDs of tasks that completed their dataset during
	// the most recent public advance (Step or RunTicks call), in
	// deterministic task order. The engine already detects the
	// file-count horizon crossing per tick, so completion consumers
	// (the scheduler's event-queue path) read this list instead of
	// polling every task's Done() — see Drained.
	drained []string
}

// defaultExact seeds every new engine's stepping mode. Commands set it
// once at startup (the -exact flag) before building engines; it is not
// safe to toggle concurrently with engine construction.
var defaultExact bool

// enginePath is the fixed end-to-end resource path every engine's
// demands traverse. It is read-only and shared across engines, so
// construction doesn't re-allocate it.
var enginePath = []string{resSrcStore, resSrcCPU, resSrcNIC, resLink, resDstNIC, resDstCPU, resDstStore}

// SetDefaultExact makes engines built afterwards start in exact
// (always-tick) stepping mode — the A/B verification path behind the
// cmds' -exact flags. Call before constructing engines.
func SetDefaultExact(v bool) { defaultExact = v }

// NewEngine validates cfg and returns an engine seeded for
// deterministic noise.
func NewEngine(cfg Config, seed int64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := netsim.New()
	n.AddResource(netsim.Resource{ID: resSrcStore, Kind: netsim.Storage, Capacity: cfg.SrcStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resDstStore, Kind: netsim.Storage, Capacity: cfg.DstStore.AggregateCap})
	n.AddResource(netsim.Resource{ID: resSrcNIC, Kind: netsim.NIC, Capacity: cfg.SrcHost.NICCap})
	n.AddResource(netsim.Resource{ID: resDstNIC, Kind: netsim.NIC, Capacity: cfg.DstHost.NICCap})
	n.AddResource(netsim.Resource{ID: resSrcCPU, Kind: netsim.CPU, Capacity: cfg.SrcHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resDstCPU, Kind: netsim.CPU, Capacity: cfg.DstHost.CPUCap})
	n.AddResource(netsim.Resource{ID: resLink, Kind: netsim.Link, Capacity: cfg.LinkCapacity})
	if cfg.Congestion == "bbr" {
		n.SetLossModel(netsim.BBRLossModel())
	}
	return &Engine{
		cfg:   cfg,
		net:   n,
		rng:   rand.New(rand.NewSource(seed)),
		slot:  make(map[string]int32),
		path:  enginePath,
		exact: defaultExact,
	}, nil
}

// SetExact forces (true) or lifts (false) exact always-tick stepping:
// with it set, RunTicks and StepUntil degrade to per-tick full Steps.
// The batched path is bit-identical by construction; the flag exists so
// that claim stays checkable end to end.
func (e *Engine) SetExact(v bool) {
	e.exact = v
	e.fastOK = false
}

// Exact reports whether the engine is in exact always-tick mode.
func (e *Engine) Exact() bool { return e.exact }

// SetAllocMemo enables or disables allocator memoization (enabled by
// default). Disabling forces every Step to re-run water-filling; the
// determinism regression tests use it to check that the memoized and
// unmemoized paths produce identical results.
func (e *Engine) SetAllocMemo(enabled bool) {
	e.memoOff = !enabled
	e.memoOK = false
	e.fastOK = false
}

// SetClassAlloc enables or disables the allocator's flow-class
// aggregation (enabled by default). Disabling forces per-flow
// water-filling — bit-identical by construction; the transparency
// tests use the flag to keep that claim checkable end to end.
func (e *Engine) SetClassAlloc(enabled bool) {
	e.net.SetClassAggregation(enabled)
	e.memoOK = false
	e.fastOK = false
}

// AllocClasses returns the number of distinct flow classes in the
// engine's most recent allocation: tasks running the same parallelism
// setting collapse into one class each.
func (e *Engine) AllocClasses() int { return e.net.Classes() }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// AddTask registers a task. The task starts transferring on the next
// Step. It returns an error on duplicate IDs.
func (e *Engine) AddTask(t *transfer.Task) error {
	if t == nil {
		return fmt.Errorf("testbed: nil task")
	}
	if _, dup := e.slot[t.ID()]; dup {
		return fmt.Errorf("testbed: duplicate task %q", t.ID())
	}
	e.slot[t.ID()] = e.soa.add(t, e.now)
	e.order = append(e.order, t.ID())
	e.fastOK = false
	return nil
}

// RemoveTask deregisters a task (e.g. a departing competitor). Removing
// an unknown ID is a no-op. The last slot is swapped into the vacated
// one, so the arrays stay dense; iteration order is owned by e.order,
// which is spliced independently.
func (e *Engine) RemoveTask(id string) {
	i, ok := e.slot[id]
	if !ok {
		return
	}
	delete(e.slot, id)
	if last := int32(e.soa.len() - 1); i != last {
		e.soa.move(i, last)
		e.slot[e.soa.task[i].ID()] = i
	}
	e.soa.truncate()
	for j, tid := range e.order {
		if tid == id {
			e.order = append(e.order[:j], e.order[j+1:]...)
			break
		}
	}
	e.fastOK = false
}

// Task returns the task with the given ID, or nil.
func (e *Engine) Task(id string) *transfer.Task {
	if i, ok := e.slot[id]; ok {
		return e.soa.task[i]
	}
	return nil
}

// TaskIDs returns the registered task IDs in insertion order.
func (e *Engine) TaskIDs() []string {
	return append([]string(nil), e.order...)
}

// CurrentRate returns the task's instantaneous (smoothed) throughput in
// bits/s, or 0 for unknown tasks.
func (e *Engine) CurrentRate(id string) float64 {
	if i, ok := e.slot[id]; ok {
		return e.soa.rate[i]
	}
	return 0
}

// CurrentLoss returns the task's latest loss estimate.
func (e *Engine) CurrentLoss(id string) float64 {
	if i, ok := e.slot[id]; ok {
		return e.soa.loss[i]
	}
	return 0
}

// AggregateRate returns the sum of all tasks' instantaneous rates,
// accumulated in slot order so the float fold is deterministic.
func (e *Engine) AggregateRate() float64 {
	sum := 0.0
	for _, r := range e.soa.rate {
		sum += r
	}
	return sum
}

// activeSlots returns the slots of unfinished tasks in deterministic
// order. The returned slice is an engine-owned scratch buffer valid
// until the next call.
func (e *Engine) activeSlots() []int32 {
	e.active = e.active[:0]
	for _, id := range e.order {
		i := e.slot[id]
		if !e.soa.task[i].Done() {
			e.active = append(e.active, i)
		}
	}
	return e.active
}

// Step advances the simulation by dt seconds. It panics on
// non-positive dt (a driver bug).
func (e *Engine) Step(dt float64) {
	e.drained = e.drained[:0]
	e.step(dt)
}

// Drained returns the IDs of tasks that drained their dataset during
// the most recent Step or RunTicks call, in deterministic task order.
// The slice is engine-owned and valid until the next advance.
func (e *Engine) Drained() []string { return e.drained }

// step is one full tick: rebuild demands, allocate (or replay the
// memo), and advance every active task.
func (e *Engine) step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: Step(%v) must be positive", dt))
	}
	if e.mutationDue() {
		// Apply before demands are rebuilt so this tick already runs
		// under the mutated environment; the fast path refuses to replay
		// a tick with a due mutation, so batched and exact stepping both
		// land here at the same tick.
		e.applyDueMutations()
	}
	active := e.activeSlots()
	if len(active) == 0 {
		e.now += dt
		// A drained engine has no allocation inputs left to change:
		// fastTick over an empty snapshot just advances the clock, so
		// batching stays engaged.
		e.factive = e.factive[:0]
		e.fastOK = true
		e.stepChanged = false
		return
	}

	// Contention-dependent capacities from the global thread and
	// connection counts.
	srcThreads, dstThreads, conns := 0, 0, 0
	for _, i := range active {
		t := e.soa.task[i]
		srcThreads += t.ActiveFiles()
		dstThreads += t.ActiveFiles()
		conns += t.ActiveConnections()
	}
	srcStoreCap := e.cfg.SrcStore.EffectiveAggregate(srcThreads)
	dstStoreCap := e.cfg.DstStore.EffectiveAggregate(dstThreads)
	srcCPUCap := e.cfg.SrcHost.EffectiveCPU(conns)
	dstCPUCap := e.cfg.DstHost.EffectiveCPU(conns)
	e.net.SetCapacity(resSrcStore, srcStoreCap)
	e.net.SetCapacity(resDstStore, dstStoreCap)
	e.net.SetCapacity(resSrcCPU, srcCPUCap)
	e.net.SetCapacity(resDstCPU, dstCPUCap)

	// One weighted demand per task: all n×p connections of a task are
	// identical TCP flows with the same per-connection cap.
	demands := e.demands[:0]
	for _, i := range active {
		t := e.soa.task[i]
		set := t.Setting()
		m := t.ActiveConnections()
		if m == 0 {
			continue
		}
		demands = append(demands, netsim.Demand{
			FlowID:    t.ID(),
			Resources: e.path,
			Cap:       e.perConnCap(set),
			RTT:       e.cfg.RTT,
			Weight:    m,
		})
	}
	e.demands = demands

	caps := [4]float64{srcStoreCap, dstStoreCap, srcCPUCap, dstCPUCap}
	if !e.memoValid(demands, caps) {
		if err := e.net.AllocateDense(&e.alloc, demands); err != nil {
			// Demands are constructed internally; an error is a bug.
			panic(fmt.Sprintf("testbed: allocation failed: %v", err))
		}
		e.memoRecord(demands, caps)
	}
	alloc := &e.alloc

	// Fold the per-connection allocation into per-task equilibrium
	// rates and losses, apply pipelining efficiency and ramping, and
	// advance the tasks. Along the way, snapshot the allocation inputs
	// per slot so subsequent ticks can be replayed by fastTick while
	// nothing observable changes.
	changed := false
	e.factive = e.factive[:0]
	s := &e.soa
	di := 0 // demand index: demands were appended in active order, skipping m == 0
	for _, i := range active {
		t := s.task[i]
		set := t.Setting()
		m := t.ActiveConnections()
		files := t.ActiveFiles()
		var eqRate, loss float64
		if m > 0 {
			eqRate = alloc.Rate[di]
			loss = alloc.Loss[di]
			di++
		}
		eq := eqRate * float64(m)
		if m > 0 {
			perFileRate := eq / float64(files)
			eff := transfer.PipelineEfficiency(t.RemainingMeanFileSize(), perFileRate, e.cfg.RTT, set.Pipelining)
			eq *= eff
		}

		// Exponential approach to equilibrium. Rate reductions (losing
		// a share to a newcomer, dropping connections) take effect
		// faster than slow-start growth: congestion control backs off
		// within a few RTTs.
		tau := e.cfg.rampTau()
		if eq < s.rate[i] {
			tau /= 3
		}
		s.rate[i] += (eq - s.rate[i]) * (1 - math.Exp(-dt/tau))
		if s.rate[i] < 0 {
			s.rate[i] = 0
		}
		s.loss[i] = loss

		bytes := s.rate[i] * dt / 8
		s.windowBytes[i] += bytes
		s.windowLossSum[i] += loss * dt
		s.windowDur[i] += dt
		whole := bytes + s.carry[i]
		n := int64(whole)
		s.carry[i] = whole - float64(n)
		t.Advance(n, dt)

		s.eqRate[i] = eqRate
		s.eqLoss[i] = loss
		s.files[i] = int32(files)
		s.conns[i] = int32(m)
		s.q[i] = int32(set.Pipelining)
		s.cc[i] = int32(set.Concurrency)
		s.gen[i] = int32(t.Generation())
		s.remBytes[i] = t.BytesRemaining()
		s.remFiles[i] = int32(t.RemainingFiles())
		e.factive = append(e.factive, i)
		if t.ActiveFiles() != files {
			changed = true
			if t.Done() {
				e.drained = append(e.drained, t.ID())
			}
		}
	}
	e.now += dt
	e.stepChanged = changed
	// The cached allocation and snapshots describe the current state
	// only if the allocator memo is live and this tick crossed no file
	// horizon.
	e.fastOK = !e.memoOff && e.memoOK && !changed
}

// gensLive reports whether every snapshotted task's generation still
// matches the live task — no session Apply or dataset extension has
// retuned a task behind the engine's back since the snapshot was taken.
// RunTicks checks it once per fast-path window rather than per tick:
// between the ticks of a single RunTicks call no external code runs,
// so generations cannot change mid-call.
func (e *Engine) gensLive() bool {
	for _, i := range e.factive {
		if e.soa.gen[i] != int32(e.soa.task[i].Generation()) {
			return false
		}
	}
	return true
}

// fastTick replays one Step over the cached allocation snapshot: the
// identical per-task arithmetic (pipelining efficiency, ramp, window
// accumulation, byte advance) with the demand rebuild, capacity
// recomputation, memo comparison, and allocation lookups skipped. All
// task state it reads — remaining bytes and files, the cached
// allocation inputs — comes positionally from the SoA arrays; the only
// call back into the task is Advance, whose completed-file count folds
// straight back into the mirrors. It reports whether the tick crossed
// a file-count horizon, which invalidates the snapshot for the next
// tick.
func (e *Engine) fastTick(dt float64) bool {
	if len(e.factive) == 0 {
		e.now += dt
		return false
	}
	// Hoist the ramp factors: dt and tau are tick-invariant, and
	// math.Exp is deterministic, so these are bit-identical to the
	// inline per-task computation in Step.
	tau := e.cfg.rampTau()
	fUp := 1 - math.Exp(-dt/tau)
	fDown := 1 - math.Exp(-dt/(tau/3))
	changed := false
	s := &e.soa
	for _, i := range e.factive {
		conns := s.conns[i]
		eq := s.eqRate[i] * float64(conns)
		if conns > 0 {
			perFileRate := eq / float64(s.files[i])
			// Remaining mean file size from the positional mirrors:
			// identical to Task.RemainingMeanFileSize, which divides the
			// same int64 counters.
			var mean float64
			if s.remFiles[i] > 0 {
				mean = float64(s.remBytes[i]) / float64(s.remFiles[i])
			}
			eff := transfer.PipelineEfficiency(mean, perFileRate, e.cfg.RTT, int(s.q[i]))
			eq *= eff
		}
		f := fUp
		if eq < s.rate[i] {
			f = fDown
		}
		s.rate[i] += (eq - s.rate[i]) * f
		if s.rate[i] < 0 {
			s.rate[i] = 0
		}
		s.loss[i] = s.eqLoss[i]

		bytes := s.rate[i] * dt / 8
		s.windowBytes[i] += bytes
		s.windowLossSum[i] += s.eqLoss[i] * dt
		s.windowDur[i] += dt
		whole := bytes + s.carry[i]
		n := int64(whole)
		s.carry[i] = whole - float64(n)
		if done := s.task[i].Advance(n, dt); done > 0 {
			s.remFiles[i] -= int32(done)
		}
		if n >= s.remBytes[i] {
			s.remBytes[i] = 0
		} else {
			s.remBytes[i] -= n
		}
		af := s.remFiles[i]
		if s.cc[i] < af {
			af = s.cc[i]
		}
		if af != s.files[i] {
			changed = true
			if af == 0 { // min(cc, remaining) == 0 ⇔ the task drained
				e.drained = append(e.drained, s.task[i].ID())
			}
		}
	}
	e.now += dt
	if changed {
		e.fastOK = false
	}
	e.stepChanged = changed
	return changed
}

// RunTicks advances up to k ticks of dt seconds each, using the fast
// replay path whenever the allocation snapshot is live and falling
// back to a full Step otherwise. It returns after the tick on which a
// file-count horizon is crossed (a task finished a file in a way that
// changes its ActiveFiles, or completed), so drivers can run their
// per-event bookkeeping at exactly the time the always-tick loop
// would; the return value is the number of ticks actually executed.
// The tick sequence — and every per-task float operation within it —
// is identical to calling Step(dt) k times. It panics on non-positive
// dt (a driver bug); k ≤ 0 executes nothing.
func (e *Engine) RunTicks(k int, dt float64) int {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: RunTicks(dt=%v) must be positive", dt))
	}
	e.drained = e.drained[:0]
	consumed := 0
	// Generations are validated once per fast-path window: a full step
	// re-snapshots them, and nothing can retune a task between the
	// ticks of one RunTicks call.
	gensOK := false
	for consumed < k {
		if !e.exact && e.fastOK && !e.mutationDue() && (gensOK || e.gensLive()) {
			gensOK = true
			if e.fastTick(dt) {
				return consumed + 1
			}
			consumed++
			continue
		}
		e.step(dt)
		gensOK = true
		consumed++
		if e.stepChanged {
			return consumed
		}
	}
	return consumed
}

// StepUntil advances the engine in ticks of dt until Now() ≥ t, the
// macro-step equivalent of `for e.Now() < t { e.Step(dt) }` (the final
// tick may overshoot t, exactly as that loop does). The remaining tick
// count is derived by replaying the clock accumulation, so boundary
// comparisons match the per-tick loop bit for bit.
func (e *Engine) StepUntil(t, dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("testbed: StepUntil(dt=%v) must be positive", dt))
	}
	for e.now < t {
		u, k := e.now, 0
		for u < t {
			u += dt
			k++
		}
		e.RunTicks(k, dt)
	}
}

// NextEvent returns a conservative estimate of the earliest simulated
// time at which the engine's allocation inputs can change on their
// own: a task crossing the file boundary that alters its ActiveFiles
// count, including completing outright. The estimate divides each
// task's horizon bytes by the larger of its current smoothed rate and
// its equilibrium target, so a still-ramping transfer (whose rate only
// grows toward equilibrium) can make the estimate early but never
// late-beyond-the-event in steady state; RunTicks re-verifies every
// tick regardless, so the estimate affects macro-step sizing only,
// never correctness. Pending environment mutations bound the estimate
// too: the allocation inputs change at the mutation's tick. Returns
// +Inf when nothing is in sight (no active tasks, or all rates zero).
func (e *Engine) NextEvent() float64 {
	h := e.NextMutation()
	for _, id := range e.order {
		i := e.slot[id]
		t := e.soa.task[i]
		if t.Done() {
			continue
		}
		bound := e.soa.rate[i]
		if eq := e.soa.eqRate[i] * float64(e.soa.conns[i]); eq > bound {
			bound = eq
		}
		if bound <= 0 {
			continue
		}
		if at := e.now + float64(t.HorizonBytes())*8/bound; at < h {
			h = at
		}
	}
	return h
}

// memoValid reports whether the cached allocation in e.alloc was
// computed for exactly these demands and capacities. Resource paths,
// RTT, and the loss model are fixed at construction, so (FlowID, Cap,
// Weight) per demand plus the contention-dependent capacities fully
// determine the allocator's output.
func (e *Engine) memoValid(demands []netsim.Demand, caps [4]float64) bool {
	if e.memoOff || !e.memoOK || caps != e.memoCaps || len(demands) != len(e.memoKey) {
		return false
	}
	if e.net.CapacityGeneration() != e.memoGen {
		return false
	}
	for i := range demands {
		k := &e.memoKey[i]
		if demands[i].FlowID != k.id || demands[i].Cap != k.cap || demands[i].Weight != k.weight {
			return false
		}
	}
	return true
}

// memoRecord snapshots the inputs the just-computed allocation in
// e.alloc corresponds to.
func (e *Engine) memoRecord(demands []netsim.Demand, caps [4]float64) {
	if e.memoOff {
		return
	}
	e.memoKey = e.memoKey[:0]
	for i := range demands {
		e.memoKey = append(e.memoKey, demandKey{id: demands[i].FlowID, cap: demands[i].Cap, weight: demands[i].Weight})
	}
	e.memoCaps = caps
	e.memoGen = e.net.CapacityGeneration()
	e.memoOK = true
}

// perConnCap returns the intrinsic per-connection rate cap for a task
// using the given setting: the per-process I/O limit split across the
// file's p streams, and the per-stream TCP window limit.
func (e *Engine) perConnCap(set transfer.Setting) float64 {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	cap := perProc / float64(set.Parallelism)
	if sc := e.streamCap(); sc > 0 && sc < cap {
		cap = sc
	}
	return cap
}

// streamCap returns the per-TCP-stream rate bound from the bandwidth-
// delay product with a 8 MiB socket buffer — the classic long-fat-
// network limitation that makes parallel streams worthwhile (§4.4).
// Negligible at sub-millisecond RTT.
func (e *Engine) streamCap() float64 {
	if e.cfg.RTT < 0.001 {
		return 0
	}
	const bufferBits = 8 * (1 << 20) * 8
	return bufferBits / e.cfg.RTT
}

// BeginWindow resets the task's measurement window. Unknown IDs are a
// no-op.
func (e *Engine) BeginWindow(id string) {
	if i, ok := e.slot[id]; ok {
		e.soa.windowStart[i] = e.now
		e.soa.windowBytes[i] = 0
		e.soa.windowLossSum[i] = 0
		e.soa.windowDur[i] = 0
	}
}

// TakeSample closes the task's measurement window and returns the
// observed sample with measurement noise applied, then begins a new
// window. It returns an error for unknown tasks or empty windows.
func (e *Engine) TakeSample(id string) (transfer.Sample, error) {
	i, ok := e.slot[id]
	if !ok {
		return transfer.Sample{}, fmt.Errorf("testbed: unknown task %q", id)
	}
	if e.soa.windowDur[i] <= 0 {
		return transfer.Sample{}, fmt.Errorf("testbed: empty measurement window for %q", id)
	}
	tput := e.soa.windowBytes[i] * 8 / e.soa.windowDur[i]
	if e.cfg.NoiseStdDev > 0 {
		factor := 1 + e.cfg.NoiseStdDev*e.rng.NormFloat64()
		if factor < 0.5 {
			factor = 0.5
		}
		if factor > 1.5 {
			factor = 1.5
		}
		tput *= factor
	}
	loss := e.soa.windowLossSum[i] / e.soa.windowDur[i]
	s := transfer.Sample{
		Setting:    e.soa.task[i].Setting(),
		Duration:   e.soa.windowDur[i],
		Throughput: tput,
		Loss:       loss,
		Time:       e.now,
	}
	e.BeginWindow(id)
	return s, nil
}

// SaturationConcurrency estimates the concurrency needed to reach the
// testbed's end-to-end capacity with parallelism 1: the number of
// per-process-capped streams required to fill the narrowest aggregate
// resource. This is the "optimal concurrency" profiling tools would
// report (Table 1 context), available to experiments as ground truth.
func (e *Engine) SaturationConcurrency() int {
	perProc := math.Min(e.cfg.SrcStore.PerProcCap, e.cfg.DstStore.PerProcCap)
	if sc := e.streamCap(); sc > 0 && sc < perProc {
		perProc = sc
	}
	bottleneck := e.EndToEndCapacity()
	return int(math.Ceil(bottleneck / perProc))
}

// EndToEndCapacity returns the narrowest aggregate capacity along the
// path at low contention — the maximum achievable transfer rate.
func (e *Engine) EndToEndCapacity() float64 {
	caps := []float64{
		e.cfg.SrcStore.AggregateCap,
		e.cfg.DstStore.AggregateCap,
		e.cfg.SrcHost.NICCap,
		e.cfg.DstHost.NICCap,
		e.cfg.SrcHost.CPUCap,
		e.cfg.DstHost.CPUCap,
		e.cfg.LinkCapacity,
	}
	sort.Float64s(caps)
	return caps[0]
}
