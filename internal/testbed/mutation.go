package testbed

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// MutationKind enumerates the dynamic-network disturbances an Engine
// can apply mid-run: the elastic conditions (competing traffic, link
// degradation, growing datasets) that motivate online rather than
// offline tuning.
type MutationKind int

const (
	// MutLinkCapacity sets the network path capacity to Capacity
	// bits/s. Cross-traffic waves compile to a set/restore pair of
	// these.
	MutLinkCapacity MutationKind = iota
	// MutRTT sets the end-to-end round-trip time to RTT seconds. Safe
	// mid-run because the allocator's flow-class key carries an RTT
	// signature, so classes re-partition on the next allocation.
	MutRTT
	// MutSrcStore adjusts the source store: Capacity replaces the
	// aggregate cap and PerProc the per-process cap; zero keeps the
	// current value.
	MutSrcStore
	// MutDstStore adjusts the destination store the same way.
	MutDstStore
	// MutGrowDataset appends Files to task Task's dataset mid-transfer
	// (copy-on-write; other tasks sharing the dataset are unaffected).
	// Growing a task that already finished or left is a no-op.
	MutGrowDataset
)

// String names the kind for error messages and logs.
func (k MutationKind) String() string {
	switch k {
	case MutLinkCapacity:
		return "link-capacity"
	case MutRTT:
		return "rtt"
	case MutSrcStore:
		return "src-store"
	case MutDstStore:
		return "dst-store"
	case MutGrowDataset:
		return "grow-dataset"
	}
	return fmt.Sprintf("MutationKind(%d)", int(k))
}

// Mutation is one timed change to the engine's environment. Mutations
// are applied at the top of the first full step whose start time has
// reached At — before demands are rebuilt — so the tick covering
// [At, At+tick) already runs under the new conditions, identically in
// batched and exact stepping (a due mutation disqualifies the fast
// replay path, forcing that full step).
type Mutation struct {
	// At is the simulated time in seconds at which the change takes
	// effect.
	At float64
	// Kind selects which fields below are meaningful.
	Kind MutationKind
	// Capacity is the new link capacity (MutLinkCapacity) or store
	// aggregate capacity (MutSrcStore/MutDstStore; 0 keeps current) in
	// bits/s.
	Capacity float64
	// PerProc is the new store per-process cap in bits/s
	// (MutSrcStore/MutDstStore; 0 keeps current).
	PerProc float64
	// RTT is the new round-trip time in seconds (MutRTT).
	RTT float64
	// Task is the target task ID (MutGrowDataset).
	Task string
	// Files are the appended files (MutGrowDataset).
	Files []dataset.File

	// seq breaks At ties by scheduling order, so equal-time mutations
	// apply deterministically in the order they were scheduled.
	seq int
}

// validate checks a mutation's fields for its kind.
func (m *Mutation) validate() error {
	if math.IsNaN(m.At) || math.IsInf(m.At, 0) || m.At < 0 {
		return fmt.Errorf("testbed: mutation at %v must be a finite non-negative time", m.At)
	}
	switch m.Kind {
	case MutLinkCapacity:
		if m.Capacity <= 0 || math.IsNaN(m.Capacity) || math.IsInf(m.Capacity, 0) {
			return fmt.Errorf("testbed: link-capacity mutation at %v: capacity %v must be positive and finite", m.At, m.Capacity)
		}
	case MutRTT:
		if m.RTT <= 0 || math.IsNaN(m.RTT) || math.IsInf(m.RTT, 0) {
			return fmt.Errorf("testbed: rtt mutation at %v: rtt %v must be positive and finite", m.At, m.RTT)
		}
	case MutSrcStore, MutDstStore:
		if m.Capacity == 0 && m.PerProc == 0 {
			return fmt.Errorf("testbed: %s mutation at %v changes nothing", m.Kind, m.At)
		}
		if m.Capacity < 0 || math.IsNaN(m.Capacity) || math.IsInf(m.Capacity, 0) {
			return fmt.Errorf("testbed: %s mutation at %v: aggregate capacity %v must be non-negative and finite", m.Kind, m.At, m.Capacity)
		}
		if m.PerProc < 0 || math.IsNaN(m.PerProc) || math.IsInf(m.PerProc, 0) {
			return fmt.Errorf("testbed: %s mutation at %v: per-process cap %v must be non-negative and finite", m.Kind, m.At, m.PerProc)
		}
	case MutGrowDataset:
		if m.Task == "" {
			return fmt.Errorf("testbed: grow-dataset mutation at %v has no task", m.At)
		}
		if len(m.Files) == 0 {
			return fmt.Errorf("testbed: grow-dataset mutation at %v for %q has no files", m.At, m.Task)
		}
		for _, f := range m.Files {
			if f.Name == "" {
				return fmt.Errorf("testbed: grow-dataset mutation at %v for %q has a file with empty name", m.At, m.Task)
			}
			if f.Size <= 0 {
				return fmt.Errorf("testbed: grow-dataset mutation at %v for %q: file %q size %d must be positive", m.At, m.Task, f.Name, f.Size)
			}
		}
	default:
		return fmt.Errorf("testbed: unknown mutation kind %d", int(m.Kind))
	}
	return nil
}

// ScheduleMutation queues a timed environment change. Mutations may be
// scheduled before or during a run, in any order; the engine applies
// them sorted by (At, scheduling order). A mutation whose time has
// already passed applies at the top of the next full step. It returns
// an error for invalid fields and leaves the schedule unchanged.
func (e *Engine) ScheduleMutation(m Mutation) error {
	if err := m.validate(); err != nil {
		return err
	}
	m.seq = e.mutSeq
	e.mutSeq++
	// Insert into the pending region keeping (At, seq) order; the
	// consumed prefix muts[:mutNext] is never revisited.
	i := e.mutNext + sort.Search(len(e.muts)-e.mutNext, func(j int) bool {
		return e.muts[e.mutNext+j].At > m.At
	})
	e.muts = append(e.muts, Mutation{})
	copy(e.muts[i+1:], e.muts[i:])
	e.muts[i] = m
	// A newly due mutation must disqualify any live fast-path snapshot
	// so the next tick is a full step that applies it.
	if m.At <= e.now {
		e.fastOK = false
	}
	return nil
}

// NextMutation returns the simulated time of the earliest pending
// mutation, or +Inf when none remain.
func (e *Engine) NextMutation() float64 {
	if e.mutNext < len(e.muts) {
		return e.muts[e.mutNext].At
	}
	return math.Inf(1)
}

// PendingMutations returns how many scheduled mutations have not yet
// applied.
func (e *Engine) PendingMutations() int { return len(e.muts) - e.mutNext }

// mutationDue reports whether a pending mutation's time has been
// reached. Checked by fastReady so a due mutation forces the next tick
// through the full step path, where applyDueMutations runs.
func (e *Engine) mutationDue() bool {
	return e.mutNext < len(e.muts) && e.muts[e.mutNext].At <= e.now
}

// applyDueMutations applies every pending mutation whose time has been
// reached, in (At, scheduling) order, and invalidates the allocator
// memo and fast-path snapshot so the current step recomputes the
// allocation under the new conditions.
func (e *Engine) applyDueMutations() {
	applied := false
	for e.mutNext < len(e.muts) && e.muts[e.mutNext].At <= e.now {
		m := &e.muts[e.mutNext]
		e.mutNext++
		applied = true
		switch m.Kind {
		case MutLinkCapacity:
			e.cfg.LinkCapacity = m.Capacity
			e.net.SetCapacity(resLink, m.Capacity)
		case MutRTT:
			e.cfg.RTT = m.RTT
		case MutSrcStore:
			if m.Capacity > 0 {
				e.cfg.SrcStore.AggregateCap = m.Capacity
			}
			if m.PerProc > 0 {
				e.cfg.SrcStore.PerProcCap = m.PerProc
			}
		case MutDstStore:
			if m.Capacity > 0 {
				e.cfg.DstStore.AggregateCap = m.Capacity
			}
			if m.PerProc > 0 {
				e.cfg.DstStore.PerProcCap = m.PerProc
			}
		case MutGrowDataset:
			i, ok := e.slot[m.Task]
			if !ok {
				// The task finished or left before the growth arrived;
				// scenario semantics make this a no-op, not an error.
				continue
			}
			if err := e.soa.task[i].Extend(m.Files); err != nil {
				// Scenario validation rejects colliding file names up
				// front, so a failure here is a driver bug.
				panic(fmt.Sprintf("testbed: grow-dataset mutation at %v for %q: %v", m.At, m.Task, err))
			}
		}
	}
	if applied {
		e.memoOK = false
		e.fastOK = false
	}
}
