package testbed

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/transfer"
)

// bigTask returns a task over a dataset large enough never to finish
// within test horizons.
func bigTask(id string, concurrency int) *transfer.Task {
	t, err := transfer.NewTask(id, dataset.Uniform(id, 5000, int64(dataset.GB)),
		transfer.Setting{Concurrency: concurrency, Parallelism: 1, Pipelining: 1})
	if err != nil {
		panic(err)
	}
	return t
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range append(Table1(), EmulabGigabit(20e6), StampedeCometWAN()) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := Emulab(10e6)
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = Emulab(10e6)
	bad.RTT = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero RTT accepted")
	}
	bad = Emulab(10e6)
	bad.LinkCapacity = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative link capacity accepted")
	}
	bad = Emulab(10e6)
	bad.SampleInterval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sample interval accepted")
	}
	bad = Emulab(10e6)
	bad.NoiseStdDev = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("excessive noise accepted")
	}
}

func TestNewEngineRejectsBadConfig(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.RTT = -1
	if _, err := NewEngine(cfg, 1); err == nil {
		t.Fatal("NewEngine accepted invalid config")
	}
}

func TestEngineTaskManagement(t *testing.T) {
	eng, err := NewEngine(Emulab(10e6), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := bigTask("a", 1), bigTask("b", 1)
	if err := eng.AddTask(a); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(b); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(a); err == nil {
		t.Fatal("duplicate task accepted")
	}
	if err := eng.AddTask(nil); err == nil {
		t.Fatal("nil task accepted")
	}
	if got := eng.TaskIDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("TaskIDs = %v", got)
	}
	if eng.Task("a") != a || eng.Task("ghost") != nil {
		t.Fatal("Task lookup wrong")
	}
	eng.RemoveTask("a")
	eng.RemoveTask("ghost") // no-op
	if got := eng.TaskIDs(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("TaskIDs after remove = %v", got)
	}
	if eng.CurrentRate("ghost") != 0 || eng.CurrentLoss("ghost") != 0 {
		t.Fatal("unknown task has nonzero state")
	}
}

func TestStepPanicsOnBadDt(t *testing.T) {
	eng, _ := NewEngine(Emulab(10e6), 1)
	defer func() {
		if recover() == nil {
			t.Error("Step(0) did not panic")
		}
	}()
	eng.Step(0)
}

func TestEngineIdleAdvancesTime(t *testing.T) {
	eng, _ := NewEngine(Emulab(10e6), 1)
	eng.Step(2.5)
	if eng.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", eng.Now())
	}
	if eng.AggregateRate() != 0 {
		t.Fatal("idle engine has nonzero rate")
	}
}

func TestRatesRampTowardEquilibrium(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	eng, _ := NewEngine(cfg, 1)
	task := bigTask("t", 10)
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	eng.Step(0.25)
	early := eng.CurrentRate("t")
	for eng.Now() < 15 {
		eng.Step(0.25)
	}
	late := eng.CurrentRate("t")
	if early >= late {
		t.Fatalf("rate did not ramp: early %v, late %v", early, late)
	}
	// 10 × 10 Mbps across a 100 Mbps link: equilibrium ≈ 100 Mbps.
	if math.Abs(late-100e6) > 5e6 {
		t.Fatalf("steady rate = %v, want ≈100 Mbps", late)
	}
}

func TestEmulabConcurrencySweepShape(t *testing.T) {
	// Figure 4: throughput rises ~linearly to the saturation point
	// (n=10 at 10 Mbps per process over a 100 Mbps link), then
	// plateaus; loss is near zero below saturation and grows steeply
	// beyond it.
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	mk := func() *transfer.Task { return bigTask("sweep", 1) }
	values := []int{1, 2, 4, 8, 10, 16, 24, 32}
	tputs, losses, err := SweepConcurrency(cfg, 1, mk, values, 15, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Linear region: n=4 ≈ 4× n=1.
	if r := tputs[2] / tputs[0]; r < 3.3 || r > 4.7 {
		t.Fatalf("throughput(4)/throughput(1) = %v, want ≈4", r)
	}
	// Plateau at ≈0.1 Gbps from n=10.
	for i, n := range values {
		if n >= 10 {
			if math.Abs(tputs[i]-0.1) > 0.015 {
				t.Fatalf("throughput(%d) = %v Gbps, want ≈0.1", n, tputs[i])
			}
		}
	}
	// Loss shape: <2% at 10, ≥5% at 32, monotone in between.
	if losses[4] > 0.02 {
		t.Fatalf("loss(10) = %v, want <2%%", losses[4])
	}
	if losses[7] < 0.05 {
		t.Fatalf("loss(32) = %v, want ≥5%%", losses[7])
	}
	if !(losses[5] < losses[6] && losses[6] < losses[7]) {
		t.Fatalf("loss not increasing past saturation: %v", losses[5:])
	}
}

func TestHPCLabWriteBottleneck(t *testing.T) {
	// §4.1: HPCLab needs ≈9 concurrent transfers for ≈27 Gbps; a single
	// transfer is far slower (Figure 1a: <8 Gbps).
	cfg := HPCLab()
	cfg.NoiseStdDev = 0
	mk := func() *transfer.Task { return bigTask("t", 1) }
	tputs, losses, err := SweepConcurrency(cfg, 1, mk, []int{1, 9}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tputs[0] > 8 {
		t.Fatalf("single-stream HPCLab = %v Gbps, want <8", tputs[0])
	}
	if tputs[1] < 22 {
		t.Fatalf("9-way HPCLab = %v Gbps, want >22", tputs[1])
	}
	// Sender-limited: no meaningful loss.
	if losses[1] > 0.005 {
		t.Fatalf("HPCLab loss = %v, want ≈0", losses[1])
	}
}

func TestCampusNICBottleneck(t *testing.T) {
	cfg := CampusCluster()
	cfg.NoiseStdDev = 0
	mk := func() *transfer.Task { return bigTask("t", 1) }
	tputs, _, err := SweepConcurrency(cfg, 1, mk, []int{8}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1 reports ≈9.2 Gbps on the 10G NIC.
	if tputs[0] < 8.5 || tputs[0] > 10 {
		t.Fatalf("campus = %v Gbps, want ≈9.2", tputs[0])
	}
}

func TestXSEDEDiskReadBottleneck(t *testing.T) {
	cfg := XSEDE()
	cfg.NoiseStdDev = 0
	mk := func() *transfer.Task { return bigTask("t", 1) }
	tputs, _, err := SweepConcurrency(cfg, 1, mk, []int{10}, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	// §4.1 reports ≈5.4 Gbps (below the 10G network: disk read binds).
	if tputs[0] < 4.5 || tputs[0] > 6.5 {
		t.Fatalf("xsede = %v Gbps, want ≈5.4", tputs[0])
	}
}

func TestCompetingTasksShareFairlyPerConnection(t *testing.T) {
	// Raw TCP behaviour: equal connection counts → equal task shares.
	cfg := HPCLab()
	cfg.NoiseStdDev = 0
	eng, _ := NewEngine(cfg, 1)
	a, b := bigTask("a", 8), bigTask("b", 8)
	if err := eng.AddTask(a); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddTask(b); err != nil {
		t.Fatal(err)
	}
	for eng.Now() < 30 {
		eng.Step(0.25)
	}
	ra, rb := eng.CurrentRate("a"), eng.CurrentRate("b")
	if j := stats.JainIndex([]float64{ra, rb}); j < 0.99 {
		t.Fatalf("Jain index = %v for equal settings, want ≈1 (rates %v, %v)", j, ra, rb)
	}
}

func TestTakeSampleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) float64 {
		eng, _ := NewEngine(Emulab(10e6), seed)
		task := bigTask("t", 5)
		if err := eng.AddTask(task); err != nil {
			t.Fatal(err)
		}
		eng.BeginWindow("t")
		for eng.Now() < 6 {
			eng.Step(0.25)
		}
		s, err := eng.TakeSample("t")
		if err != nil {
			t.Fatal(err)
		}
		return s.Throughput
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different samples")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds produced identical noisy samples")
	}
}

func TestTakeSampleErrors(t *testing.T) {
	eng, _ := NewEngine(Emulab(10e6), 1)
	if _, err := eng.TakeSample("ghost"); err == nil {
		t.Fatal("sample of unknown task accepted")
	}
	task := bigTask("t", 1)
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TakeSample("t"); err == nil {
		t.Fatal("empty window sample accepted")
	}
}

func TestSampleIncludesSettingAndLoss(t *testing.T) {
	cfg := Emulab(10e6)
	eng, _ := NewEngine(cfg, 3)
	task := bigTask("t", 32) // deep into the lossy regime
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	for eng.Now() < 20 {
		eng.Step(0.25)
	}
	eng.BeginWindow("t")
	for eng.Now() < 25 {
		eng.Step(0.25)
	}
	s, err := eng.TakeSample("t")
	if err != nil {
		t.Fatal(err)
	}
	if s.Setting.Concurrency != 32 {
		t.Fatalf("sample setting = %+v", s.Setting)
	}
	if s.Loss < 0.03 {
		t.Fatalf("loss = %v, want heavy at cc=32", s.Loss)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
}

func TestSchedulerJoinLeaveAndFairShare(t *testing.T) {
	// Two fixed-setting tasks: the second joins at t=60. The first's
	// throughput must drop to ≈ half after the join.
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	eng, _ := NewEngine(cfg, 1)
	s := NewScheduler(eng, 1)
	a := bigTask("a", 20)
	b := bigTask("b", 20)
	if err := s.Add(Participant{Task: a, Controller: FixedController{S: a.Setting()}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Participant{Task: b, Controller: FixedController{S: b.Setting()}, JoinAt: 60, LeaveAt: 120}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(180, 0.25)

	alone := tl.MeanThroughputGbps("a", 40, 60)
	shared := tl.MeanThroughputGbps("a", 80, 118)
	after := tl.MeanThroughputGbps("a", 150, 180)
	if alone < 0.09 {
		t.Fatalf("alone throughput = %v Gbps, want ≈0.1", alone)
	}
	if shared > 0.7*alone {
		t.Fatalf("shared throughput = %v, want ≈half of %v", shared, alone)
	}
	if after < 0.9*alone {
		t.Fatalf("post-departure throughput = %v, want to recover to ≈%v", after, alone)
	}
	bShare := tl.MeanThroughputGbps("b", 80, 118)
	if j := stats.JainIndex([]float64{shared, bShare}); j < 0.98 {
		t.Fatalf("Jain = %v during competition, want ≈1", j)
	}
}

func TestSchedulerValidation(t *testing.T) {
	eng, _ := NewEngine(Emulab(10e6), 1)
	s := NewScheduler(eng, 0)
	if err := s.Add(Participant{}); err == nil {
		t.Fatal("nil task accepted")
	}
	a := bigTask("a", 1)
	if err := s.Add(Participant{Task: a, JoinAt: -1}); err == nil {
		t.Fatal("negative JoinAt accepted")
	}
	if err := s.Add(Participant{Task: a, JoinAt: 10, LeaveAt: 5}); err == nil {
		t.Fatal("LeaveAt before JoinAt accepted")
	}
	if err := s.Add(Participant{Task: a}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Participant{Task: bigTask("a", 1)}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestSchedulerRecordsCompletion(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	eng, _ := NewEngine(cfg, 1)
	s := NewScheduler(eng, 1)
	// 60 MB at ~100 Mbps ≈ 5 s after ramp.
	small, err := transfer.NewTask("small", dataset.Uniform("small", 6, 10_000_000),
		transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Participant{Task: small}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(120, 0.25)
	done, ok := tl.Finished["small"]
	if !ok {
		t.Fatal("task did not finish")
	}
	if done < 3 || done > 60 {
		t.Fatalf("finish time = %v, want a handful of seconds", done)
	}
}

func TestControllerDrivesSetting(t *testing.T) {
	// A controller that always returns concurrency 7 must be applied.
	cfg := Emulab(10e6)
	eng, _ := NewEngine(cfg, 1)
	s := NewScheduler(eng, 1)
	task := bigTask("t", 1)
	ctrl := FixedController{S: transfer.Setting{Concurrency: 7, Parallelism: 1, Pipelining: 1}}
	if err := s.Add(Participant{Task: task, Controller: ctrl}); err != nil {
		t.Fatal(err)
	}
	s.Run(10, 0.25)
	if got := task.Setting().Concurrency; got != 7 {
		t.Fatalf("concurrency = %d, want 7", got)
	}
}

func TestSaturationConcurrency(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
		tol  int
	}{
		{Emulab(10e6), 10, 0},
		{EmulabGigabit(20.83e6), 48, 1},
		{HPCLab(), 9, 1},
	}
	for _, c := range cases {
		eng, err := NewEngine(c.cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := eng.SaturationConcurrency()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s: SaturationConcurrency = %d, want %d±%d", c.cfg.Name, got, c.want, c.tol)
		}
	}
}

func TestEndToEndCapacity(t *testing.T) {
	eng, _ := NewEngine(Emulab(10e6), 1)
	if got := eng.EndToEndCapacity(); got != 100e6 {
		t.Fatalf("Emulab capacity = %v, want 100 Mbps", got)
	}
	eng2, _ := NewEngine(HPCLab(), 1)
	if got := eng2.EndToEndCapacity(); got != 27e9 {
		t.Fatalf("HPCLab capacity = %v, want 27 Gbps (write bottleneck)", got)
	}
}

func TestParallelismHelpsOnLongFatNetwork(t *testing.T) {
	// §4.4: on the 60 ms WAN, a single stream is window-bound; p=4
	// raises per-file throughput.
	cfg := StampedeCometWAN()
	cfg.NoiseStdDev = 0
	run := func(p int) float64 {
		eng, _ := NewEngine(cfg, 1)
		task, err := transfer.NewTask("t", dataset.Uniform("t", 2000, int64(dataset.GB)),
			transfer.Setting{Concurrency: 4, Parallelism: p, Pipelining: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			t.Fatal(err)
		}
		for eng.Now() < 30 {
			eng.Step(0.25)
		}
		return eng.CurrentRate("t")
	}
	if r1, r4 := run(1), run(4); r4 < 1.5*r1 {
		t.Fatalf("parallelism gain = %v/%v, want ≥1.5×", r4, r1)
	}
}

func TestPipeliningHelpsSmallFiles(t *testing.T) {
	// §4.4: pipelining matters for datasets of tiny files on the WAN.
	cfg := StampedeCometWAN()
	cfg.NoiseStdDev = 0
	run := func(q int) float64 {
		eng, _ := NewEngine(cfg, 1)
		task, err := transfer.NewTask("t", dataset.Uniform("t", 400_000, int64(dataset.MiB)),
			transfer.Setting{Concurrency: 8, Parallelism: 1, Pipelining: q})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			t.Fatal(err)
		}
		for eng.Now() < 30 {
			eng.Step(0.25)
		}
		return eng.CurrentRate("t")
	}
	if r1, r16 := run(1), run(16); r16 < 2*r1 {
		t.Fatalf("pipelining gain = %v vs %v, want ≥2×", r16, r1)
	}
}
