package testbed

import "math"

// horizonHeap is an indexed binary min-heap of event horizons keyed by
// simulated time. Handles are small dense integers chosen by the
// caller (the scheduler derives them from part indexes), so membership
// and heap position live in flat arrays instead of maps and every
// operation after init is allocation-free. Ties break toward the lower
// handle, which the scheduler arranges to mean "lower part index
// first, lifecycle before deadline" — the order the scan loop visits
// parts — so identically-timed events stay deterministic.
type horizonHeap struct {
	key  []float64 // key[h]: horizon time of handle h, valid while pos[h] >= 0
	heap []int32   // handles in heap order
	pos  []int32   // pos[h]: index of h in heap, -1 when absent
}

// init sizes the heap for handles 0..n-1 and marks all absent.
func (h *horizonHeap) init(n int) {
	h.key = make([]float64, n)
	h.heap = make([]int32, 0, n)
	h.pos = make([]int32, n)
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *horizonHeap) len() int { return len(h.heap) }

// less orders entries by (key, handle).
func (h *horizonHeap) less(a, b int32) bool {
	ka, kb := h.key[a], h.key[b]
	return ka < kb || (ka == kb && a < b)
}

// push inserts handle with the given key, or re-keys it if present.
func (h *horizonHeap) push(handle int32, key float64) {
	if h.pos[handle] >= 0 {
		h.update(handle, key)
		return
	}
	h.key[handle] = key
	h.pos[handle] = int32(len(h.heap))
	h.heap = append(h.heap, handle)
	h.up(h.pos[handle])
}

// update re-keys a present handle and restores heap order.
func (h *horizonHeap) update(handle int32, key float64) {
	h.key[handle] = key
	i := h.pos[handle]
	if !h.up(i) {
		h.down(i)
	}
}

// remove deletes handle if present; absent handles are a no-op (a
// session may finish with no pending leave entry, say).
func (h *horizonHeap) remove(handle int32) {
	i := h.pos[handle]
	if i < 0 {
		return
	}
	last := int32(len(h.heap) - 1)
	if i != last {
		h.swap(i, last)
	}
	h.heap = h.heap[:last]
	h.pos[handle] = -1
	if i != last {
		if !h.up(i) {
			h.down(i)
		}
	}
}

// minKey returns the smallest key, or +Inf on an empty heap.
func (h *horizonHeap) minKey() float64 {
	if len(h.heap) == 0 {
		return math.Inf(1)
	}
	return h.key[h.heap[0]]
}

// popDue removes every handle whose key is ≤ now and appends it to
// buf. The returned handles are in heap pop order — callers that need
// part order sort them.
func (h *horizonHeap) popDue(now float64, buf []int32) []int32 {
	for len(h.heap) > 0 {
		top := h.heap[0]
		if h.key[top] > now {
			break
		}
		buf = append(buf, top)
		h.remove(top)
	}
	return buf
}

func (h *horizonHeap) up(i int32) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			break
		}
		h.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

func (h *horizonHeap) down(i int32) {
	n := int32(len(h.heap))
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			m = r
		}
		if !h.less(h.heap[m], h.heap[i]) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *horizonHeap) swap(i, j int32) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}
