package testbed

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// wideTask is bigTask with an explicit parallelism: distinct
// parallelism means a distinct per-connection cap, hence a distinct
// flow class.
func wideTask(id string, concurrency, parallelism int) *transfer.Task {
	task, err := transfer.NewTask(id, dataset.Uniform(id, 5000, int64(dataset.GB)),
		transfer.Setting{Concurrency: concurrency, Parallelism: parallelism, Pipelining: 1})
	if err != nil {
		panic(err)
	}
	return task
}

// TestClassAllocIsTransparent: flow-class aggregation is a pure
// restructuring of the water-fill — a scenario with mixed parallelism
// settings (several distinct per-connection caps, so multiple classes
// coexist), joins, leaves, and a concurrency-cycling controller must
// produce exactly the same timeline with aggregation on (default) and
// off.
func TestClassAllocIsTransparent(t *testing.T) {
	run := func(classes bool) *Timeline {
		eng, err := NewEngine(HPCLab(), 7)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetClassAlloc(classes)
		s := NewScheduler(eng, 1)
		i := 0
		parts := []Participant{
			{Task: bigTask("t1", 2), Controller: cycler{vals: []int{2, 2, 5, 5, 3}, i: &i}},
			{Task: wideTask("t2", 4, 2)},
			{Task: wideTask("t3", 4, 2)}, // same setting as t2: one shared class
			{Task: wideTask("t4", 1, 4), JoinAt: 40, LeaveAt: 110},
		}
		for _, p := range parts {
			if err := s.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		return s.Run(150, 0.25)
	}
	with := run(true)
	without := run(false)
	if !reflect.DeepEqual(with, without) {
		t.Fatal("class-aggregated allocator changed the timeline vs per-flow run")
	}
}

// TestAllocClassesCollapse: tasks at identical settings share one flow
// class, so a fleet of same-setting transfers presents O(1) classes to
// the water-fill regardless of task count.
func TestAllocClassesCollapse(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("t%d", i)
		task, err := transfer.NewTask(id, dataset.Uniform(id, 100, int64(dataset.GB)),
			transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	eng.Step(0.25)
	if got := eng.AllocClasses(); got != 1 {
		t.Fatalf("AllocClasses() = %d for 30 identical tasks, want 1", got)
	}
	// A concurrency-only retune keeps the per-connection cap, so the
	// task stays in the shared class with a different weight.
	if err := eng.Task("t0").SetSetting(transfer.Setting{Concurrency: 9, Parallelism: 1, Pipelining: 1}); err != nil {
		t.Fatal(err)
	}
	eng.Step(0.25)
	if got := eng.AllocClasses(); got != 1 {
		t.Fatalf("AllocClasses() = %d after concurrency retune, want 1", got)
	}
	// A parallelism retune changes the per-connection cap: the task
	// splits into its own class.
	if err := eng.Task("t0").SetSetting(transfer.Setting{Concurrency: 9, Parallelism: 2, Pipelining: 1}); err != nil {
		t.Fatal(err)
	}
	eng.Step(0.25)
	if got := eng.AllocClasses(); got != 2 {
		t.Fatalf("AllocClasses() = %d after parallelism retune, want 2", got)
	}
}

// BenchmarkFleetStep measures the per-tick cost at fleet scale: 256
// concurrent tasks drawn from four settings (four flow classes) with
// the allocator memo off, so every tick pays the full demand-build +
// class water-fill. This is the regime cmd/fleet runs in between
// decision epochs.
func BenchmarkFleetStep(b *testing.B) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	settings := []int{2, 4, 6, 8}
	for i := 0; i < 256; i++ {
		id := fmt.Sprintf("t%d", i)
		task, err := transfer.NewTask(id, dataset.Uniform(id, 20000, 400*int64(dataset.TB)),
			transfer.Setting{Concurrency: settings[i%len(settings)], Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		eng.Step(0.25)
	}
	eng.SetAllocMemo(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}
