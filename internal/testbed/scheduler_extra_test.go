package testbed

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

func TestSchedulerLogf(t *testing.T) {
	cfg := Emulab(10e6)
	eng, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(eng, 1)
	var lines []string
	s.SetLogf(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	small, err := transfer.NewTask("tiny", dataset.Uniform("tiny", 2, 5_000_000),
		transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Participant{Task: small}); err != nil {
		t.Fatal(err)
	}
	s.Run(60, 0.25)
	joined, finished := false, false
	for _, l := range lines {
		if strings.Contains(l, "joins") {
			joined = true
		}
		if strings.Contains(l, "finished") {
			finished = true
		}
	}
	if !joined || !finished {
		t.Fatalf("log lines missing join/finish: %v", lines)
	}
}

// TestFailedSampleRetriesNextEpoch pins the busy-retry fix at the
// testbed layer: when TakeSample fails at a decision epoch (here the
// task vanished behind the session's back), the session must wait a
// full interval before retrying instead of hammering every tick.
func TestFailedSampleRetriesNextEpoch(t *testing.T) {
	cfg := Emulab(10e6)
	eng, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	task := bigTask("ghost", 2)
	env, err := NewSimEnvironment(eng, task)
	if err != nil {
		t.Fatal(err)
	}
	var errs int
	sess, err := session.New(env, FixedController{S: task.Setting()}, session.Config{
		ID:       "ghost",
		Interval: 2,
		Events: func(e session.Event) {
			if e.Kind == session.Error {
				errs++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Start(0, task.Setting())
	eng.RemoveTask("ghost") // sampling now fails with "unknown task"
	for eng.Now() < 6 {
		if err := sess.Tick(eng.Now()); err != nil {
			t.Fatal(err)
		}
		eng.Step(0.25)
	}
	// Epochs due at t=2 and 4 within [0,6): exactly two failed attempts
	// across 24 ticks, one per epoch.
	if errs != 2 {
		t.Fatalf("failed-sample attempts = %d, want 2 (one per epoch, not per tick)", errs)
	}
}

func TestOptimalConcurrencyHelper(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	mk := func() *transfer.Task { return bigTask("opt", 1) }
	opt, err := OptimalConcurrency(cfg, 1, mk, 16, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if opt < 9 || opt > 11 {
		t.Fatalf("OptimalConcurrency = %d, want ≈10", opt)
	}
}

func TestSweepRejectsBadTimes(t *testing.T) {
	cfg := Emulab(10e6)
	mk := func() *transfer.Task { return bigTask("s", 1) }
	if _, _, err := SweepConcurrency(cfg, 1, mk, []int{1}, 0, 5); err == nil {
		t.Error("zero settle time accepted")
	}
	if _, _, err := SweepConcurrency(cfg, 1, mk, []int{1}, 5, 0); err == nil {
		t.Error("zero measure time accepted")
	}
}

func TestCurrentLossReflectsCongestion(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.NoiseStdDev = 0
	eng, err := NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	task := bigTask("t", 32) // lossy regime
	if err := eng.AddTask(task); err != nil {
		t.Fatal(err)
	}
	for eng.Now() < 20 {
		eng.Step(0.25)
	}
	if loss := eng.CurrentLoss("t"); loss < 0.03 {
		t.Fatalf("CurrentLoss = %v, want heavy at cc=32", loss)
	}
	if agg := eng.AggregateRate(); agg < 80e6 {
		t.Fatalf("AggregateRate = %v, want ≈100 Mbps", agg)
	}
}

func TestConfigBBRValidation(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.Congestion = "bbr"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("bbr rejected: %v", err)
	}
	cfg.Congestion = "reno-turbo"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown congestion model accepted")
	}
}

func TestBBRRampFasterThanCubic(t *testing.T) {
	cubic := StampedeCometWAN()
	bbr := StampedeCometWAN()
	bbr.Congestion = "bbr"
	if bbr.rampTau() >= cubic.rampTau() {
		t.Fatalf("BBR tau %v should be below Cubic's %v at WAN RTT", bbr.rampTau(), cubic.rampTau())
	}
}

func TestExplicitRampTauWins(t *testing.T) {
	cfg := Emulab(10e6)
	cfg.RampTau = 7
	if got := cfg.rampTau(); got != 7 {
		t.Fatalf("rampTau = %v, want explicit 7", got)
	}
}
