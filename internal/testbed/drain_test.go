package testbed

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

// TestEngineDrainedMatchesOracle drives a bare engine through a seeded
// random churn of adds, mid-run removals, and advances, and checks
// after every advance that Drained() reports exactly the tasks whose
// Done() flipped during it — the polling oracle the drained list
// replaced. Tiny datasets make some tasks drain on the very tick they
// were added (the same-tick join+finish edge), and the whole run is
// replayed to pin that the drained sequence is deterministic,
// including its order.
func TestEngineDrainedMatchesOracle(t *testing.T) {
	run := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		eng, err := NewEngine(HPCLab(), seed)
		if err != nil {
			t.Fatal(err)
		}
		live := map[string]*transfer.Task{}
		var liveIDs []string // sorted for deterministic random picks
		var drainedLog []string
		nextID := 0
		for iter := 0; iter < 400; iter++ {
			// Churn: add a task (sometimes tiny, draining within a
			// tick; sometimes large), occasionally remove one mid-run.
			if len(live) < 12 && rng.Intn(3) > 0 {
				id := fmt.Sprintf("dr%03d", nextID)
				nextID++
				size := int64(1_000_000_000)
				files := 40
				if rng.Intn(3) == 0 {
					size, files = 1000, 1 // drains on the next tick
				}
				task, err := transfer.NewTask(id, dataset.Uniform(id, files, size),
					transfer.Setting{Concurrency: 1 + rng.Intn(4), Parallelism: 1, Pipelining: 1})
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.AddTask(task); err != nil {
					t.Fatal(err)
				}
				live[id] = task
				liveIDs = append(liveIDs, id)
				sort.Strings(liveIDs)
			}
			if len(liveIDs) > 0 && rng.Intn(6) == 0 {
				id := liveIDs[rng.Intn(len(liveIDs))]
				eng.RemoveTask(id)
				delete(live, id)
				liveIDs = remove(liveIDs, id)
			}

			before := map[string]bool{}
			for id, task := range live {
				before[id] = task.Done()
			}
			eng.RunTicks(1+rng.Intn(4), 0.25)

			var want []string
			for id, task := range live {
				if !before[id] && task.Done() {
					want = append(want, id)
				}
			}
			sort.Strings(want)
			got := append([]string(nil), eng.Drained()...)
			sorted := append([]string(nil), got...)
			sort.Strings(sorted)
			if !reflect.DeepEqual(sorted, want) {
				t.Fatalf("seed %d iter %d: Drained() = %v, polling oracle = %v", seed, iter, sorted, want)
			}
			drainedLog = append(drainedLog, got...)
			// Finished tasks leave the engine, as the scheduler would
			// remove them; they must not be reported again.
			for _, id := range got {
				eng.RemoveTask(id)
				delete(live, id)
				liveIDs = remove(liveIDs, id)
			}
		}
		if len(drainedLog) == 0 {
			t.Fatalf("seed %d: churn never drained a task", seed)
		}
		return drainedLog
	}
	for _, seed := range []int64{3, 17, 99} {
		first := run(seed)
		if again := run(seed); !reflect.DeepEqual(first, again) {
			t.Fatalf("seed %d: drained sequence differs between identical runs:\n%v\n%v", seed, first, again)
		}
	}
}

func remove(ids []string, id string) []string {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// TestQueueLiveListUnderChurn is the scheduler-level property test for
// the intrusive live-session list: a seeded roster heavy on the edges
// that mutate the list — tasks that finish on the very tick they join,
// leaves landing mid-run and in identical-time clusters, joins out of
// part order — must produce timelines and event streams identical to
// the linear-scan loop, which re-polls every participant each step and
// so cannot have list corruption. Batched and exact stepping both run.
func TestQueueLiveListUnderChurn(t *testing.T) {
	build := func(rng *rand.Rand, s *Scheduler) {
		for i := 0; i < 70; i++ {
			id := fmt.Sprintf("ch%03d", i)
			var (
				task *transfer.Task
				err  error
			)
			switch i % 4 {
			case 0:
				// Finishes within a tick of joining: join and finish
				// land on the same macro-step.
				task, err = transfer.NewTask(id, dataset.Uniform(id, 1, 1000),
					transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1})
			default:
				task, err = transfer.NewTask(id, dataset.Uniform(id, 50, 2_000_000_000),
					transfer.Setting{Concurrency: 1 + rng.Intn(3), Parallelism: 1, Pipelining: 1})
			}
			if err != nil {
				t.Fatal(err)
			}
			// Joins deliberately not in part order, with repeats.
			p := Participant{Task: task, JoinAt: float64(rng.Intn(20)) * 2}
			if i%5 == 2 {
				p.LeaveAt = p.JoinAt + 10 + float64(rng.Intn(3))*10
			}
			if err := s.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, seed := range []int64{5, 23} {
		for _, exact := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d/exact=%v", seed, exact), func(t *testing.T) {
				type outcome struct {
					tl     *Timeline
					events []session.Event
				}
				run := func(queue bool) outcome {
					eng, err := NewEngine(HPCLab(), seed)
					if err != nil {
						t.Fatal(err)
					}
					eng.SetExact(exact)
					s := NewScheduler(eng, 1)
					s.SetEventQueue(queue)
					var events []session.Event
					s.SetEventSink(func(e session.Event) { events = append(events, e) })
					build(rand.New(rand.NewSource(seed)), s)
					return outcome{tl: s.Run(100, 0.25), events: events}
				}
				queue, scan := run(true), run(false)
				if len(queue.tl.Finished) == 0 {
					t.Fatal("churn roster never finished a task")
				}
				leaves := 0
				for _, e := range queue.events {
					if e.Kind == session.Leave {
						leaves++
					}
				}
				if leaves == 0 {
					t.Fatal("churn roster never left mid-run")
				}
				if !reflect.DeepEqual(queue.tl, scan.tl) {
					t.Error("queue timeline differs from scan timeline under churn")
				}
				if !reflect.DeepEqual(queue.events, scan.events) {
					t.Error("queue event stream differs from scan event stream under churn")
				}
			})
		}
	}
}
