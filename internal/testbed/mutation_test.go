package testbed

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

// flapMutations is a representative schedule touching every mutation
// kind: a capacity drop and restore, an RTT shift, a store change, and
// a dataset that grows mid-transfer.
func flapMutations(growTask string) []Mutation {
	return []Mutation{
		{At: 40, Kind: MutLinkCapacity, Capacity: 10e9},
		{At: 80, Kind: MutLinkCapacity, Capacity: 40e9},
		{At: 55, Kind: MutRTT, RTT: 0.002},
		{At: 65, Kind: MutSrcStore, Capacity: 30e9, PerProc: 5e9},
		{At: 70, Kind: MutGrowDataset, Task: growTask,
			Files: []dataset.File{{Name: "extra-0", Size: 1e9}, {Name: "extra-1", Size: 1e9}}},
	}
}

// runMutated runs a three-task scenario with the full mutation schedule
// under the given stepping/orchestration modes and returns the timeline
// plus the captured event stream.
func runMutated(t *testing.T, exact, queue, memo bool) (*Timeline, []session.Event) {
	t.Helper()
	eng, err := NewEngine(HPCLab(), 11)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetExact(exact)
	eng.SetAllocMemo(memo)
	for _, m := range flapMutations("t1") {
		if err := eng.ScheduleMutation(m); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(eng, 1)
	s.SetEventQueue(queue)
	var events []session.Event
	s.SetEventSink(func(e session.Event) { events = append(events, e) })
	i := 0
	parts := []Participant{
		{Task: bigTask("t1", 2), Controller: cycler{vals: []int{2, 4, 4, 6, 3}, i: &i}},
		{Task: bigTask("t2", 4)},
		{Task: bigTask("t3", 1), JoinAt: 30, LeaveAt: 110},
	}
	for _, p := range parts {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return s.Run(150, 0.25), events
}

// TestMutationsTransparentAcrossModes: a mutation schedule must produce
// byte-identical timelines and event streams in all four stepping ×
// orchestration combinations (event-horizon/exact × queue/scan). This
// is the determinism contract that lets -scenario runs A/B between
// modes: mutations are applied at the top of the engine step for their
// tick, and the batched fast path refuses to leap over a due mutation.
func TestMutationsTransparentAcrossModes(t *testing.T) {
	refTL, refEv := runMutated(t, true, false, true)
	for _, mode := range []struct {
		name         string
		exact, queue bool
	}{
		{"batched-scan", false, false},
		{"batched-queue", false, true},
		{"exact-queue", true, true},
	} {
		tl, ev := runMutated(t, mode.exact, mode.queue, true)
		if !reflect.DeepEqual(tl, refTL) {
			t.Errorf("%s: timeline differs from exact-scan reference", mode.name)
		}
		if !reflect.DeepEqual(ev, refEv) {
			t.Errorf("%s: event stream differs from exact-scan reference", mode.name)
		}
	}
}

// TestMutationsMemoTransparent: the allocator memo must be invalidated
// by capacity mutations — a mutated run with the memo on equals the
// same run with the memo off.
func TestMutationsMemoTransparent(t *testing.T) {
	with, _ := runMutated(t, false, true, true)
	without, _ := runMutated(t, false, true, false)
	if !reflect.DeepEqual(with, without) {
		t.Fatal("memoized allocator changed a mutated timeline vs unmemoized run")
	}
}

// TestMutationCapacityApplied: a link-capacity drop must actually bind
// the fleet. Two fixed-setting tasks on a network-bottlenecked path see
// aggregate throughput halve after the link halves.
func TestMutationCapacityApplied(t *testing.T) {
	cfg := StampedeCometWAN()
	eng, err := NewEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ScheduleMutation(Mutation{At: 100, Kind: MutLinkCapacity, Capacity: cfg.LinkCapacity / 4}); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(eng, 1)
	for i := 0; i < 2; i++ {
		if err := s.Add(Participant{Task: bigTask(fmt.Sprintf("t%d", i), 16)}); err != nil {
			t.Fatal(err)
		}
	}
	tl := s.Run(200, 0.25)
	before := tl.MeanThroughputGbps("t0", 60, 100) + tl.MeanThroughputGbps("t1", 60, 100)
	after := tl.MeanThroughputGbps("t0", 120, 200) + tl.MeanThroughputGbps("t1", 120, 200)
	if before < 30 {
		t.Fatalf("fleet should saturate the 40 Gbps link before the drop, got %.1f Gbps", before)
	}
	if after > before/2 {
		t.Fatalf("aggregate %.1f Gbps after quartering the link from %.1f — mutation not applied", after, before)
	}
}

// TestMutationGrowDatasetExtendsRun: growing a task's dataset
// mid-transfer keeps it busy past the point where it would otherwise
// have drained.
func TestMutationGrowDatasetExtendsRun(t *testing.T) {
	run := func(grow bool) float64 {
		cfg := HPCLab()
		eng, err := NewEngine(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		if grow {
			files := make([]dataset.File, 200)
			for i := range files {
				files[i] = dataset.File{Name: fmt.Sprintf("grown-%03d", i), Size: 1e9}
			}
			if err := eng.ScheduleMutation(Mutation{At: 10, Kind: MutGrowDataset, Task: "small", Files: files}); err != nil {
				t.Fatal(err)
			}
		}
		// A dataset tiny enough to drain in seconds at ~27 Gbps.
		ds := dataset.Uniform("tiny-grow", 1, 8e9)
		task, err := transfer.NewTask("small", ds, transfer.Setting{Concurrency: 8, Parallelism: 1, Pipelining: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(eng, 1)
		if err := s.Add(Participant{Task: task}); err != nil {
			t.Fatal(err)
		}
		tl := s.Run(60, 0.25)
		return tl.MeanThroughputGbps("small", 30, 60)
	}
	if tail := run(false); tail > 1 {
		t.Fatalf("ungrown task still moving %.1f Gbps in the final half; dataset too big for the test", tail)
	}
	if tail := run(true); tail < 1 {
		t.Fatalf("grown task idle in the final half (%.3f Gbps); grow mutation not applied", tail)
	}
}

// TestScheduleMutationValidation: malformed mutations are rejected at
// scheduling time, before they can corrupt a run.
func TestScheduleMutationValidation(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Mutation{
		{At: -1, Kind: MutLinkCapacity, Capacity: 1e9},
		{At: math.NaN(), Kind: MutLinkCapacity, Capacity: 1e9},
		{At: 10, Kind: MutLinkCapacity, Capacity: 0},
		{At: 10, Kind: MutLinkCapacity, Capacity: math.Inf(1)},
		{At: 10, Kind: MutRTT, RTT: -0.1},
		{At: 10, Kind: MutSrcStore},
		{At: 10, Kind: MutDstStore, Capacity: -1},
		{At: 10, Kind: MutGrowDataset, Task: "", Files: []dataset.File{{Name: "f", Size: 1}}},
		{At: 10, Kind: MutGrowDataset, Task: "t"},
		{At: 10, Kind: MutGrowDataset, Task: "t", Files: []dataset.File{{Name: "", Size: 1}}},
		{At: 10, Kind: MutGrowDataset, Task: "t", Files: []dataset.File{{Name: "f", Size: 0}}},
		{At: 10, Kind: MutationKind(99), Capacity: 1e9},
	}
	for i, m := range bad {
		if err := eng.ScheduleMutation(m); err == nil {
			t.Errorf("mutation %d (%+v) accepted, want error", i, m)
		}
	}
	if got := eng.PendingMutations(); got != 0 {
		t.Fatalf("%d rejected mutations still pending", got)
	}
	// Valid ones are accepted regardless of scheduling order, and
	// NextMutation reports the earliest.
	for _, at := range []float64{30, 10, 20, 10} {
		if err := eng.ScheduleMutation(Mutation{At: at, Kind: MutLinkCapacity, Capacity: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.PendingMutations(); got != 4 {
		t.Fatalf("PendingMutations = %d, want 4", got)
	}
	if eng.NextMutation() != 10 {
		t.Fatalf("NextMutation = %v, want 10", eng.NextMutation())
	}
}

// TestMutationGrowAfterDrainRevives: a grow mutation that lands after
// the engine dropped the drained task is a no-op rather than a panic,
// and one landing on a live task revives its flows.
func TestMutationGrowAfterLeaveIsNoop(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ScheduleMutation(Mutation{At: 100, Kind: MutGrowDataset, Task: "gone",
		Files: []dataset.File{{Name: "late", Size: 1e9}}}); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(eng, 1)
	if err := s.Add(Participant{Task: bigTask("gone", 2), LeaveAt: 50}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Participant{Task: bigTask("stays", 2)}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(150, 0.25) // must not panic at t=100
	if tput := tl.MeanThroughputGbps("stays", 100, 150); tput <= 0 {
		t.Fatalf("surviving task stalled (%.3f Gbps) after no-op grow", tput)
	}
}
