package testbed

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/session"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// Controller decides the next transfer setting from the sample of the
// last decision epoch. Falcon agents, the Globus heuristic, and the
// HARP model all satisfy this interface. It is an alias of
// session.Decider: any controller that drives the simulator also
// drives a real transfer through core.Run, and vice versa.
type Controller = session.Decider

// FixedController always returns the same setting (the Globus-style
// "fixed strategy" of §2, and the knob-sweep experiments).
type FixedController struct{ S transfer.Setting }

// Decide returns the fixed setting.
func (f FixedController) Decide(transfer.Sample) transfer.Setting { return f.S }

// Participant couples a task with its controller and schedule.
type Participant struct {
	// Task is the transfer to run. Its initial setting is used for the
	// first epoch.
	Task *transfer.Task
	// Controller chooses each subsequent epoch's setting. A nil
	// controller keeps the task's initial setting forever.
	Controller Controller
	// JoinAt is the simulation time at which the task starts.
	JoinAt float64
	// LeaveAt, when positive, removes the task at that time even if it
	// has data left (a departing competitor).
	LeaveAt float64
	// SampleInterval overrides the testbed's default sample-transfer
	// duration when positive.
	SampleInterval float64
}

// Timeline is the recorded outcome of a Scheduler run. For every task
// it holds a throughput series (Gbps, sampled every RecordInterval), a
// concurrency series, and a loss series (recorded at decision epochs).
type Timeline struct {
	// Throughput, Concurrency, Loss are keyed by task ID in their
	// series names ("<id>/throughput" etc.) within each TimeSet.
	Throughput  trace.TimeSet
	Concurrency trace.TimeSet
	Loss        trace.TimeSet
	// Finished maps task ID to completion time for tasks that drained
	// their dataset before the run ended.
	Finished map[string]float64
}

// MeanThroughputGbps returns a task's average recorded throughput in
// Gbps between t0 and t1.
func (tl *Timeline) MeanThroughputGbps(id string, t0, t1 float64) float64 {
	s := tl.Throughput.Lookup(id)
	if s == nil {
		return 0
	}
	return s.Between(t0, t1).Mean()
}

// Sink returns an event consumer that records session events into the
// timeline: Sample events append to the loss series, Decision events
// to the concurrency series, and Finish events mark completion times.
// The trace timelines are thereby just one consumer of the session
// event stream, alongside live status endpoints and CLI reporters.
func (tl *Timeline) Sink() session.Sink {
	return func(e session.Event) {
		switch e.Kind {
		case session.Sample:
			tl.Loss.Append(e.Session, e.Time, e.Sample.Loss)
		case session.Decision:
			tl.Concurrency.Append(e.Session, e.Time, float64(e.Setting.Concurrency))
		case session.Finish:
			if tl.Finished == nil {
				tl.Finished = make(map[string]float64)
			}
			if _, seen := tl.Finished[e.Session]; !seen {
				tl.Finished[e.Session] = e.Time
			}
		}
	}
}

// Scheduler orchestrates N session loops over an Engine's shared
// virtual clock: it admits participants at their join times, ticks
// every live session each simulation step (the sessions own epoch
// cadence, warm-up, and decision flow), and records timelines by
// consuming the sessions' event streams.
type Scheduler struct {
	eng     *Engine
	parts   []schedEntry
	byID    map[string]int // task ID → index in parts
	record  float64        // recording interval, seconds
	verbose func(format string, args ...any)
	events  session.Sink // optional external event consumer
	queue   bool         // event-queue orchestration (default); false = legacy scan loop

	// recMode/recorder select what a run writes down (see RecordMode);
	// the cadence — and therefore the simulation — is mode-invariant.
	recMode  RecordMode
	recorder Recorder

	// Warmup is how long after a setting change the measurement window
	// is discarded before metrics accumulate, excluding the TCP
	// ramp-up transient — the paper captures performance "once the
	// sample transfer is executed for a sufficient amount of time"
	// (§3). Default 1 s; negative disables.
	Warmup float64
}

type schedEntry struct {
	p        Participant
	interval float64
	sess     *session.Session // created at join time, arena-backed per run
	rec      int32            // Recorder handle (RecordAggregate), set at join
}

// defaultEventQueue seeds every new scheduler's orchestration mode.
// Commands flip it once at startup (the -scan flags) before building
// schedulers, mirroring defaultExact.
var defaultEventQueue = true

// SetDefaultEventQueue makes schedulers built afterwards start with
// (true) or without (false) event-queue orchestration. The scan loop
// is the A/B and transparency baseline; both produce byte-identical
// timelines and event streams. Call before constructing schedulers.
func SetDefaultEventQueue(v bool) { defaultEventQueue = v }

// SetEventQueue enables (true) or disables (false) event-queue
// orchestration for this scheduler. Must be called before Run.
func (s *Scheduler) SetEventQueue(v bool) { s.queue = v }

// NewScheduler wraps an engine. recordInterval controls the granularity
// of the throughput timeline (seconds); values ≤ 0 default to 1 s.
func NewScheduler(eng *Engine, recordInterval float64) *Scheduler {
	if recordInterval <= 0 {
		recordInterval = 1
	}
	return &Scheduler{eng: eng, record: recordInterval, Warmup: 1, queue: defaultEventQueue}
}

// smallFleet is the participant count below which the scheduler keeps
// linear ID lookups instead of building its byID index.
const smallFleet = 16

// partIndex returns the parts index of the given task ID.
func (s *Scheduler) partIndex(id string) (int, bool) {
	if s.byID != nil {
		i, ok := s.byID[id]
		return i, ok
	}
	for i := range s.parts {
		if s.parts[i].p.Task.ID() == id {
			return i, true
		}
	}
	return 0, false
}

// Reserve pre-sizes the participant table (and, past the smallFleet
// threshold, the ID index) for n additions, so a million Adds do not
// pay incremental growth copies.
func (s *Scheduler) Reserve(n int) {
	if extra := n - (cap(s.parts) - len(s.parts)); extra > 0 {
		grown := make([]schedEntry, len(s.parts), len(s.parts)+n)
		copy(grown, s.parts)
		s.parts = grown
	}
	if s.byID == nil && len(s.parts)+n > smallFleet {
		s.byID = make(map[string]int, len(s.parts)+n)
		for i := range s.parts {
			s.byID[s.parts[i].p.Task.ID()] = i
		}
	}
}

// SetLogf installs an optional progress logger.
func (s *Scheduler) SetLogf(f func(format string, args ...any)) { s.verbose = f }

// SetEventSink installs an external consumer for every session's event
// stream — live status endpoints, metrics, and (future) fault
// injectors hook in here. It must be called before Run.
func (s *Scheduler) SetEventSink(sink session.Sink) { s.events = sink }

// Add registers a participant. It returns an error for nil tasks,
// duplicate IDs, or negative schedule times.
func (s *Scheduler) Add(p Participant) error {
	if p.Task == nil {
		return fmt.Errorf("testbed: participant with nil task")
	}
	if p.JoinAt < 0 {
		return fmt.Errorf("testbed: participant %q negative JoinAt %v", p.Task.ID(), p.JoinAt)
	}
	if p.LeaveAt != 0 && p.LeaveAt <= p.JoinAt {
		return fmt.Errorf("testbed: participant %q LeaveAt %v not after JoinAt %v", p.Task.ID(), p.LeaveAt, p.JoinAt)
	}
	if _, dup := s.partIndex(p.Task.ID()); dup {
		return fmt.Errorf("testbed: duplicate participant %q", p.Task.ID())
	}
	interval := p.SampleInterval
	if interval <= 0 {
		interval = s.eng.Config().SampleInterval
	}
	if s.byID == nil && len(s.parts)+1 > smallFleet {
		s.byID = make(map[string]int, 2*len(s.parts))
		for i := range s.parts {
			s.byID[s.parts[i].p.Task.ID()] = i
		}
	}
	if s.byID != nil {
		s.byID[p.Task.ID()] = len(s.parts)
	}
	s.parts = append(s.parts, schedEntry{p: p, interval: interval})
	return nil
}

// Run advances the simulation until the given time (seconds) with the
// given tick, orchestrating one session loop per participant over the
// shared virtual clock: joins and leaves at their scheduled times,
// session Ticks at their decision and warm-up deadlines (epoch
// cadence, warm-up, and decision flow are session-owned), completion
// sweeps, and periodic throughput recording. It returns the timeline
// recorded from the sessions' event streams.
//
// Between those boundaries nothing observable can happen, so Run
// advances the engine in one macro-step per loop iteration
// (Engine.RunTicks) rather than regaining control every tick; with the
// engine in exact mode every tick is a full Step and every live
// session is Ticked every step — the original always-tick loop. Both
// paths execute identical per-tick arithmetic and produce identical
// timelines and event streams.
//
// By default the loop is orchestrated by an event queue (see
// eventqueue.go): an indexed min-heap of horizons pops only the
// sessions whose deadlines are actually due each macro-step, so
// per-step orchestration cost scales with the due set rather than the
// fleet size. SetEventQueue(false) (or the cmds' -scan flags) selects
// the legacy linear-scan loop, the A/B baseline the transparency tests
// pin the heap path against — both produce byte-identical timelines
// and event streams. Run panics on non-positive tick or horizon —
// driver bugs.
func (s *Scheduler) Run(until, tick float64) *Timeline {
	if tick <= 0 || until <= 0 {
		panic(fmt.Sprintf("testbed: Run(until=%v, tick=%v) invalid", until, tick))
	}
	if s.queue {
		r := s.newQueueRun(until, tick)
		for r.step() {
		}
		return r.tl
	}
	r := s.newScanRun(until, tick)
	for r.step() {
	}
	return r.tl
}

// scanRun is one Run invocation on the legacy scan path: every
// macro-step visits every participant. Retained behind
// SetEventQueue(false) as the A/B and transparency baseline for the
// event-queue orchestrator.
type scanRun struct {
	s          *Scheduler
	until      float64
	tick       float64
	exact      bool
	tl         *Timeline
	sink       session.Sink
	nextRecord float64

	// sessions/envs are the run's arenas: two flat slabs indexed by
	// part, instead of two heap objects per join.
	sessions []session.Session
	envs     []SimEnvironment
}

func (s *Scheduler) newScanRun(until, tick float64) *scanRun {
	tl := &Timeline{Finished: make(map[string]float64)}
	return &scanRun{
		s:        s,
		until:    until,
		tick:     tick,
		exact:    s.eng.Exact(),
		tl:       tl,
		sink:     s.runSink(tl),
		sessions: make([]session.Session, len(s.parts)),
		envs:     make([]SimEnvironment, len(s.parts)),
	}
}

// runSink assembles a run's session-event sink. Outside RecordFull the
// timeline consumer is dropped — no per-session series accumulate —
// while the progress log and any external sink still see every event.
func (s *Scheduler) runSink(tl *Timeline) session.Sink {
	if s.recMode == RecordFull {
		return session.MultiSink(tl.Sink(), s.logSink(), s.events)
	}
	return session.MultiSink(s.logSink(), s.events)
}

// join constructs part e's environment and session in the supplied
// arena slots and attaches the aggregate recorder — the construction
// half of a join, shared verbatim by the scan and queue orchestrators.
// The caller wires the session into its own bookkeeping and calls
// Start.
func (s *Scheduler) join(e *schedEntry, env *SimEnvironment, sess *session.Session, sink session.Sink) {
	id := e.p.Task.ID()
	if err := initSimEnvironment(env, s.eng, e.p.Task); err != nil {
		panic(fmt.Sprintf("testbed: join %q: %v", id, err))
	}
	if err := session.Init(sess, env, e.p.Controller, session.Config{
		ID:       id,
		Interval: e.interval,
		Warmup:   s.Warmup,
		Events:   sink,
	}); err != nil {
		panic(fmt.Sprintf("testbed: session %q: %v", id, err))
	}
	e.sess = sess
	if s.recMode == RecordAggregate {
		e.rec = s.recorder.Attach(id)
	}
}

// reserveSeries pre-sizes a joining participant's timeline series for
// the remaining horizon (RecordFull only): one throughput point per
// recording interval and one concurrency/loss point per decision
// epoch, so the run loop's appends never reallocate.
func (s *Scheduler) reserveSeries(tl *Timeline, e *schedEntry, now, until float64) {
	end := until
	if e.p.LeaveAt > 0 && e.p.LeaveAt < end {
		end = e.p.LeaveAt
	}
	if remaining := end - now; remaining > 0 {
		id := e.p.Task.ID()
		epochs := int(remaining/e.interval) + 2
		tl.Throughput.Get(id).Grow(int(remaining/s.record) + 2)
		tl.Concurrency.Get(id).Grow(epochs)
		tl.Loss.Get(id).Grow(epochs)
	}
}

// step executes one macro-step of the scan loop; it reports false once
// the horizon is reached.
func (r *scanRun) step() bool {
	s := r.s
	if s.eng.Now() >= r.until {
		return false
	}
	now := s.eng.Now()

	// Joins and leaves.
	for i := range s.parts {
		e := &s.parts[i]
		if e.sess == nil && now >= e.p.JoinAt {
			s.join(e, &r.envs[i], &r.sessions[i], r.sink)
			// The horizon fixes how many points this session can
			// record: one throughput sample per recording interval
			// and one concurrency/loss point per decision epoch.
			// Reserving them now keeps the append path in the run
			// loop allocation-free.
			if s.recMode == RecordFull {
				s.reserveSeries(r.tl, e, now, r.until)
			}
			e.sess.Start(now, e.p.Task.Setting())
		}
		if e.sess != nil && !e.sess.Finished() && e.p.LeaveAt > 0 && now >= e.p.LeaveAt {
			s.eng.RemoveTask(e.p.Task.ID())
			e.sess.Leave(now)
		}
	}

	// Decision epochs and warm-up expiry, owned by each session. A
	// Tick before the session's deadline is a no-op by construction,
	// so the batched path skips the call entirely.
	for i := range s.parts {
		e := &s.parts[i]
		if e.sess == nil || e.sess.Finished() {
			continue
		}
		if !r.exact && now < e.sess.NextDeadline() {
			continue
		}
		if err := e.sess.Tick(now); err != nil {
			panic(fmt.Sprintf("testbed: controller for %q produced invalid setting: %v", e.p.Task.ID(), err))
		}
	}

	if r.exact {
		s.eng.Step(r.tick)
	} else {
		s.eng.RunTicks(s.batchTicks(now, r.until, r.tick, r.nextRecord), r.tick)
	}

	// Completion bookkeeping.
	for i := range s.parts {
		e := &s.parts[i]
		if e.sess != nil && !e.sess.Finished() && e.p.Task.Done() {
			s.eng.RemoveTask(e.p.Task.ID())
			e.sess.Finish(s.eng.Now())
		}
	}

	// Recording. The boundary advances in every mode — it bounds the
	// macro-step sizing above — only what gets written differs.
	if s.eng.Now() >= r.nextRecord {
		switch s.recMode {
		case RecordFull:
			for i := range s.parts {
				e := &s.parts[i]
				if e.sess != nil && !e.sess.Finished() {
					id := e.p.Task.ID()
					r.tl.Throughput.Append(id, s.eng.Now(), s.eng.CurrentRate(id)/1e9)
				}
			}
		case RecordAggregate:
			for i := range s.parts {
				e := &s.parts[i]
				if e.sess != nil && !e.sess.Finished() {
					s.recorder.Record(e.rec, s.eng.Now(), s.eng.CurrentRate(e.p.Task.ID())/1e9)
				}
			}
		}
		r.nextRecord = s.eng.Now() + s.record
	}
	return true
}

// batchTicks sizes one macro-step: the number of consecutive ticks the
// engine may take before the orchestration loop must regain control at
// the next event horizon — a pending join or leave, a live session's
// decision or warm-up deadline, the recording point, the run's end, or
// the engine's own estimate of the next file-count event. Pre-step
// horizons (joins, leaves, deadlines, the engine estimate) bound the
// loop-head times; the recording point fires after a step, so it stops
// the batch right after the tick that crosses it. Head times are
// replayed with the same additions the engine clock performs, so every
// boundary comparison is bit-identical to the always-tick loop's; the
// engine estimate can only shorten a batch (RunTicks re-verifies each
// tick), never change results.
func (s *Scheduler) batchTicks(now, until, tick, nextRecord float64) int {
	h := s.eng.NextEvent()
	for i := range s.parts {
		e := &s.parts[i]
		if e.sess == nil {
			if e.p.JoinAt < h {
				h = e.p.JoinAt
			}
			continue
		}
		if e.sess.Finished() {
			continue
		}
		if d := e.sess.NextDeadline(); d < h {
			h = d
		}
		if e.p.LeaveAt > 0 && e.p.LeaveAt < h {
			h = e.p.LeaveAt
		}
	}
	k, t := 0, now
	for t < until && t < h {
		t += tick
		k++
		if t >= nextRecord {
			break
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// logSink translates lifecycle events into the legacy progress-log
// lines, or nil when no logger is installed.
func (s *Scheduler) logSink() session.Sink {
	return logEventSink(s.verbose)
}

// logEventSink renders lifecycle events through verbose as the
// progress-log lines, or nil when verbose is nil. Shared between the
// scheduler's live logger and the shard merger's post-run replay so
// sharded and unsharded runs print identical lines.
func logEventSink(verbose func(format string, args ...any)) session.Sink {
	if verbose == nil {
		return nil
	}
	return func(e session.Event) {
		switch e.Kind {
		case session.Join:
			verbose("t=%.0fs: %s joins (%s)", e.Time, e.Session, e.Setting)
		case session.Leave:
			verbose("t=%.0fs: %s leaves", e.Time, e.Session)
		case session.Finish:
			verbose("t=%.0fs: %s finished", e.Time, e.Session)
		}
	}
}

// SweepConcurrency measures steady-state throughput (Gbps) and loss for
// each concurrency value in values, running each as a fresh single
// transfer for settleTime seconds and measuring over the final
// measureTime seconds. It is the workhorse behind Figures 1(a) and 4.
//
// Sweep points share no engine: each runs on its own Engine seeded
// seed+i, so the points execute across the parallel worker pool with
// results assembled by index — identical to a serial sweep. The ds
// factory is called once per point, possibly concurrently, and must
// not share mutable state between calls.
func SweepConcurrency(cfg Config, seed int64, ds func() *transfer.Task, values []int, settleTime, measureTime float64) ([]float64, []float64, error) {
	if settleTime <= 0 || measureTime <= 0 {
		return nil, nil, fmt.Errorf("testbed: sweep times must be positive")
	}
	tputs := make([]float64, len(values))
	losses := make([]float64, len(values))
	errs := make([]error, len(values))
	parallel.ForEach(len(values), func(i int) {
		eng, err := NewEngine(cfg, seed+int64(i))
		if err != nil {
			errs[i] = err
			return
		}
		task := ds()
		set := task.Setting()
		set.Concurrency = values[i]
		if err := task.SetSetting(set); err != nil {
			errs[i] = err
			return
		}
		if err := eng.AddTask(task); err != nil {
			errs[i] = err
			return
		}
		const tick = 0.25
		eng.StepUntil(settleTime, tick)
		eng.BeginWindow(task.ID())
		eng.StepUntil(settleTime+measureTime, tick)
		sample, err := eng.TakeSample(task.ID())
		if err != nil {
			errs[i] = err
			return
		}
		tputs[i] = sample.Throughput / 1e9
		losses[i] = sample.Loss
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return tputs, losses, nil
}

// OptimalConcurrency exhaustively profiles concurrency values 1..maxN
// and returns the smallest n whose steady-state throughput is within
// tol (relative) of the best observed — the ground-truth "optimal
// concurrency" used by Figure 1(b) and convergence analyses.
func OptimalConcurrency(cfg Config, seed int64, ds func() *transfer.Task, maxN int, tol float64) (int, error) {
	values := make([]int, maxN)
	for i := range values {
		values[i] = i + 1
	}
	tputs, _, err := SweepConcurrency(cfg, seed, ds, values, 12, 6)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, t := range tputs {
		best = math.Max(best, t)
	}
	for i, t := range tputs {
		if t >= best*(1-tol) {
			return values[i], nil
		}
	}
	return values[len(values)-1], nil
}
