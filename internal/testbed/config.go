// Package testbed composes the network, storage, and host substrates
// into the named environments of the paper's Table 1 and drives
// multiple independent transfer tasks through them in simulated time.
//
// A Config captures the static properties of an end-to-end path
// (source store → source host → network → destination host →
// destination store). The Engine advances simulated time in small
// ticks, computing each tick's max-min fair allocation across every
// active connection of every task, applying TCP slow-start ramping and
// pipelining efficiency, and accumulating transferred bytes. The
// Scheduler layers decision epochs on top: at each task's sample
// interval it assembles a transfer.Sample (noisy throughput + loss) and
// asks the task's Controller — a Falcon agent or a baseline — for the
// next setting.
package testbed

import (
	"fmt"

	"repro/internal/hostsim"
	"repro/internal/iosim"
)

// Config describes one end-to-end transfer environment.
type Config struct {
	// Name identifies the testbed ("emulab", "xsede", …).
	Name string
	// SrcStore and DstStore are the storage endpoints.
	SrcStore, DstStore iosim.Store
	// SrcHost and DstHost are the data transfer nodes.
	SrcHost, DstHost hostsim.Host
	// LinkCapacity is the network path capacity in bits/s.
	LinkCapacity float64
	// RTT is the end-to-end round-trip time in seconds.
	RTT float64
	// SampleInterval is the default duration of one sample transfer in
	// seconds (3 s for LAN, 5 s for WAN per §4).
	SampleInterval float64
	// NoiseStdDev is the relative standard deviation of throughput
	// measurement noise (e.g. 0.015 → 1.5 %).
	NoiseStdDev float64
	// RampTau is the time constant, in seconds, of the exponential
	// approach of a task's rate to its equilibrium allocation (TCP
	// slow start plus connection establishment). Zero means a default
	// derived from the RTT.
	RampTau float64
	// Bottleneck documents the intended binding constraint, as in
	// Table 1 ("Network", "Disk Read", "Disk Write", "NIC").
	Bottleneck string
	// Congestion selects the transport's congestion-control behaviour:
	// "" or "cubic" uses the loss-based default; "bbr" uses the
	// model-based approximation (§6 future work) — near-zero loss at
	// saturation and a faster ramp.
	Congestion string
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("testbed: empty name")
	}
	if err := c.SrcStore.Validate(); err != nil {
		return fmt.Errorf("testbed %q src store: %w", c.Name, err)
	}
	if err := c.DstStore.Validate(); err != nil {
		return fmt.Errorf("testbed %q dst store: %w", c.Name, err)
	}
	if err := c.SrcHost.Validate(); err != nil {
		return fmt.Errorf("testbed %q src host: %w", c.Name, err)
	}
	if err := c.DstHost.Validate(); err != nil {
		return fmt.Errorf("testbed %q dst host: %w", c.Name, err)
	}
	if c.LinkCapacity <= 0 {
		return fmt.Errorf("testbed %q link capacity %v must be positive", c.Name, c.LinkCapacity)
	}
	if c.RTT <= 0 {
		return fmt.Errorf("testbed %q RTT %v must be positive", c.Name, c.RTT)
	}
	if c.SampleInterval <= 0 {
		return fmt.Errorf("testbed %q sample interval %v must be positive", c.Name, c.SampleInterval)
	}
	if c.NoiseStdDev < 0 || c.NoiseStdDev > 0.5 {
		return fmt.Errorf("testbed %q noise %v outside [0, 0.5]", c.Name, c.NoiseStdDev)
	}
	if c.RampTau < 0 {
		return fmt.Errorf("testbed %q negative ramp tau %v", c.Name, c.RampTau)
	}
	switch c.Congestion {
	case "", "cubic", "bbr":
	default:
		return fmt.Errorf("testbed %q unknown congestion model %q", c.Name, c.Congestion)
	}
	return nil
}

// rampTau returns the effective ramp time constant.
func (c *Config) rampTau() float64 {
	if c.RampTau > 0 {
		return c.RampTau
	}
	// Slow start needs ~log2(W) RTTs plus process/connection spin-up;
	// 1 s floor models connection establishment cost (§3.2 footnote 2).
	// BBR's explicit bandwidth probing reaches the fair share in fewer
	// RTTs than loss-based slow start.
	mult := 25.0
	if c.Congestion == "bbr" {
		mult = 10
	}
	tau := mult * c.RTT
	if tau < 1 {
		tau = 1
	}
	return tau
}

// Emulab returns the emulated testbed of Figures 3–4: 1 Gbps
// bottleneck link, 30 ms RTT, direct-attached disk with the per-process
// read throughput throttled to perProcIO bits/s. With perProcIO = 10
// Mbps, ten concurrent transfers saturate the link (§2); with ≈20.8
// Mbps, 48 are required (§4.1, §4.2).
func Emulab(perProcIO float64) Config {
	return Config{
		Name:     "emulab",
		SrcStore: iosim.EmulabDisk(perProcIO),
		// Destination writes to local disk at full speed; not binding.
		DstStore:       iosim.Store{Name: "emulab-dst", PerProcCap: 1e9, AggregateCap: 2e9},
		SrcHost:        hostsim.DTN("emulab-src", 1e9),
		DstHost:        hostsim.DTN("emulab-dst", 1e9),
		LinkCapacity:   100e6, // the Figure 3 bottleneck link
		RTT:            0.030,
		SampleInterval: 3,
		NoiseStdDev:    0.01,
		Bottleneck:     "Network",
	}
}

// EmulabGigabit returns the Emulab variant whose bottleneck link is the
// full 1 Gbps (used in §4.1/§4.2 where 48–50 concurrent transfers are
// needed at ≈20 Mbps per process).
func EmulabGigabit(perProcIO float64) Config {
	c := Emulab(perProcIO)
	c.Name = "emulab-1g"
	c.LinkCapacity = 1e9
	return c
}

// XSEDE returns the OSG–Comet production path: Lustre storage whose
// aggregate *read* capacity (≈5.8 Gbps) is below the 10 Gbps network,
// 40 ms RTT.
func XSEDE() Config {
	return Config{
		Name:           "xsede",
		SrcStore:       iosim.LustreXSEDE(),
		DstStore:       iosim.Store{Name: "comet-lustre", PerProcCap: 2e9, AggregateCap: 24e9, ContentionRate: 0.003},
		SrcHost:        hostsim.DTN("osg-dtn", 10e9),
		DstHost:        hostsim.DTN("comet-dtn", 10e9),
		LinkCapacity:   10e9,
		RTT:            0.040,
		SampleInterval: 5,
		NoiseStdDev:    0.02,
		Bottleneck:     "Disk Read",
	}
}

// HPCLab returns the isolated lab cluster: 40 Gbps LAN, 0.1 ms RTT,
// NVMe RAID whose aggregate *write* capacity (~27 Gbps, reached with ≈9
// writers) is the bottleneck.
func HPCLab() Config {
	return Config{
		Name:           "hpclab",
		SrcStore:       iosim.Store{Name: "hpclab-src", PerProcCap: 6e9, AggregateCap: 38e9, ContentionRate: 0.003},
		DstStore:       iosim.NVMeRAIDHPCLab(),
		SrcHost:        hostsim.DTN("hpclab-src", 40e9),
		DstHost:        hostsim.DTN("hpclab-dst", 40e9),
		LinkCapacity:   40e9,
		RTT:            0.0001,
		SampleInterval: 3,
		NoiseStdDev:    0.015,
		Bottleneck:     "Disk Write",
	}
}

// CampusCluster returns the campus GPFS cluster: storage exceeds the
// 10 Gbps NIC, so the NIC binds (§4.1 reports ≈9.2 Gbps).
func CampusCluster() Config {
	return Config{
		Name:           "campus",
		SrcStore:       iosim.GPFSCampus(),
		DstStore:       iosim.Store{Name: "gpfs-campus-dst", PerProcCap: 2.5e9, AggregateCap: 16e9, ContentionRate: 0.003},
		SrcHost:        hostsim.DTN("campus-src", 10e9),
		DstHost:        hostsim.DTN("campus-dst", 10e9),
		LinkCapacity:   20e9, // LAN fabric above the NIC
		RTT:            0.0001,
		SampleInterval: 3,
		NoiseStdDev:    0.015,
		Bottleneck:     "NIC",
	}
}

// StampedeCometWAN returns the 40 Gbps, 60 ms wide-area path between
// Stampede2 and Comet used by §4.4 (multi-parameter optimization) and
// §4.5 (friendliness). Petascale Lustre on both ends leaves the WAN
// path as the eventual bottleneck; per-stream rates are TCP-window
// bound, making parallelism useful for large files.
func StampedeCometWAN() Config {
	return Config{
		Name:           "stampede-comet",
		SrcStore:       iosim.LustrePetascale(),
		DstStore:       iosim.LustrePetascale(),
		SrcHost:        hostsim.DTN("stampede-dtn", 40e9),
		DstHost:        hostsim.DTN("comet-dtn", 40e9),
		LinkCapacity:   40e9,
		RTT:            0.060,
		SampleInterval: 5,
		NoiseStdDev:    0.02,
		Bottleneck:     "Network",
	}
}

// Table1 returns the four evaluation testbeds in the order of the
// paper's Table 1. Emulab uses the 10 Mbps per-process throttle (ten
// concurrent transfers saturate the 100 Mbps link — Figures 9a/10a).
func Table1() []Config {
	return []Config{Emulab(10e6), XSEDE(), HPCLab(), CampusCluster()}
}
