package testbed

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// fleetBench is the 10k-session orchestration workload: a fleet of
// endless transfers (one shared huge-file dataset, so no completion
// events and negligible memory) with staggered joins and sample
// intervals spread over 3–15 s, so each 0.25 s tick has a few hundred
// deadlines due out of the full fleet — the regime where the scan
// loop's O(sessions) per-step passes dwarf the due set.
type fleetBench struct {
	eng *Engine
	s   *Scheduler
	run interface{ step() bool }
}

func newFleetBench(b *testing.B, n int, queue bool, seed int64) *fleetBench {
	b.Helper()
	eng, err := NewEngine(HPCLab(), seed)
	if err != nil {
		b.Fatal(err)
	}
	s := NewScheduler(eng, 5)
	s.SetEventQueue(queue)
	ds := dataset.Uniform("fleet-bench", 64, 400*int64(dataset.TB))
	settings := []int{2, 4, 6, 8}
	for i := 0; i < n; i++ {
		task, err := transfer.NewTask(fmt.Sprintf("t%d", i), ds,
			transfer.Setting{Concurrency: settings[i%len(settings)], Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Add(Participant{
			Task:           task,
			JoinAt:         float64(i%12) * 0.25,
			SampleInterval: 3 + 0.25*float64(i%49),
		}); err != nil {
			b.Fatal(err)
		}
	}
	f := &fleetBench{eng: eng, s: s}
	const until = 600
	if queue {
		f.run = s.newQueueRun(until, 0.25)
	} else {
		f.run = s.newScanRun(until, 0.25)
	}
	// Drive past every join and the first decision epochs so the timed
	// loop measures the steady state, not session construction.
	for eng.Now() < 20 {
		f.run.step()
	}
	return f
}

// benchFleetStep times one scheduler macro-step at fleet scale. The
// run is rebuilt (untimed) whenever the 600 s horizon drains.
func benchFleetStep(b *testing.B, n int, queue bool) {
	f := newFleetBench(b, n, queue, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.run.step() {
			b.StopTimer()
			f = newFleetBench(b, n, queue, 1)
			b.StartTimer()
			f.run.step()
		}
	}
}

// BenchmarkFleetStep10k is the tentpole number: per-macro-step cost of
// the event-queue scheduler over 10k sessions. Must run at 0 allocs/op
// — the orchestration loop touches only preallocated heap, list, and
// series storage.
func BenchmarkFleetStep10k(b *testing.B) { benchFleetStep(b, 10000, true) }

// BenchmarkFleetStep10kScan is the A/B baseline: the same workload on
// the legacy linear-scan loop.
func BenchmarkFleetStep10kScan(b *testing.B) { benchFleetStep(b, 10000, false) }

// BenchmarkFleetStep1k / BenchmarkFleetStep1kScan pin the scaling
// story: the queue path's overhead above the engine grows with the due
// set, the scan path's with the fleet.
func BenchmarkFleetStep1k(b *testing.B) { benchFleetStep(b, 1000, true) }

func BenchmarkFleetStep1kScan(b *testing.B) { benchFleetStep(b, 1000, false) }

// BenchmarkFleetStep100k is the sharded-fleet number: one macro-step of
// every shard of a 100k-session fleet partitioned into 10 independent
// 10k-session bottleneck domains — the 10 × 10 Gbps multi-bottleneck
// deliverable. Each shard runs its own engine and event-queue run
// (distinct seeds, as ShardSet builds them); one op advances the whole
// fleet by one macro-step per shard. Steady state must stay at
// 0 allocs/op — the shard layer adds no per-step heap traffic over the
// single-engine loop.
func BenchmarkFleetStep100k(b *testing.B) {
	const shards, perShard = 10, 10000
	build := func() []*fleetBench {
		fs := make([]*fleetBench, shards)
		for s := range fs {
			fs[s] = newFleetBench(b, perShard, true, int64(1+s))
		}
		return fs
	}
	fs := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fs {
			if !f.run.step() {
				b.StopTimer()
				fs = build()
				b.StartTimer()
				break
			}
		}
	}
}

// BenchmarkFleetEngine10k is the floor under both scheduler paths: the
// bare engine advancing the same 10k tasks one tick per op, no
// orchestration at all. Scheduler overhead is the Step benchmarks
// minus this.
func BenchmarkFleetEngine10k(b *testing.B) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.Uniform("fleet-bench", 64, 400*int64(dataset.TB))
	settings := []int{2, 4, 6, 8}
	for i := 0; i < 10000; i++ {
		task, err := transfer.NewTask(fmt.Sprintf("t%d", i), ds,
			transfer.Setting{Concurrency: settings[i%len(settings)], Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		eng.Step(0.25)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}
