package testbed

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/session"
)

// ShardSpec describes one independent contention domain of a fleet: the
// participants routed over one bottleneck, the environment they share,
// and the mutations that touch it. Tasks in different shards never
// contend, so each shard runs on its own Engine (with its own
// event-queue scheduler and horizon heap) and the shards can be stepped
// concurrently.
type ShardSpec struct {
	// Key identifies the shard's contention domain — for scenario-built
	// fleets the route signature (the ordered link IDs the shard's
	// agents traverse). Diagnostic only; merge order is slice order.
	Key string
	// Config is the shard's environment. LinkCapacity and RTT describe
	// the shard's own routed path.
	Config Config
	// Seed seeds the shard engine's noise stream.
	Seed int64
	// Mutations is the shard's compiled mutation schedule.
	Mutations []Mutation
	// Parts are the shard's participants. Task IDs must be unique
	// across the whole ShardSet, not just within a shard.
	Parts []Participant
}

// ShardSet runs K independent shards and merges their results
// deterministically: timelines concatenate in shard order (task IDs are
// globally unique), and event streams interleave by (virtual time,
// shard index, per-shard emission order) — so the merged output is
// byte-identical no matter how many workers step the shards, matching
// the house rule enforced for -parallel.
type ShardSet struct {
	shards  []ShardSpec
	record  float64
	events  session.Sink
	logf    func(format string, args ...any)
	workers int

	// recMode/recorder are forwarded to every shard scheduler. The
	// Recorder sees concurrent Attach/Record calls from shard worker
	// goroutines (never for the same session); see Recorder.
	recMode  RecordMode
	recorder Recorder

	// Warmup is forwarded to every shard scheduler (see
	// Scheduler.Warmup). Default 1 s.
	Warmup float64
}

// NewShardSet builds a sharded run over the given shard specs.
// recordInterval matches NewScheduler's. It returns an error for an
// empty shard list or task IDs duplicated across shards.
func NewShardSet(shards []ShardSpec, recordInterval float64) (*ShardSet, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("testbed: shard set with no shards")
	}
	total := 0
	for i := range shards {
		total += len(shards[i].Parts)
	}
	seen := make(map[string]int, total)
	for i := range shards {
		for _, p := range shards[i].Parts {
			if p.Task == nil {
				return nil, fmt.Errorf("testbed: shard %d (%s) has a participant with nil task", i, shards[i].Key)
			}
			id := p.Task.ID()
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("testbed: task %q appears in shards %d and %d", id, prev, i)
			}
			seen[id] = i
		}
	}
	return &ShardSet{shards: shards, record: recordInterval, Warmup: 1}, nil
}

// SetEventSink installs an external consumer for the merged session
// event stream. With more than one shard, events are buffered per shard
// and delivered after the run in merged order; single-shard sets pass
// the sink straight through, so live consumers (progress endpoints)
// keep streaming. Must be called before Run.
func (ss *ShardSet) SetEventSink(sink session.Sink) { ss.events = sink }

// SetLogf installs an optional progress logger, fed from the merged
// event stream (join/leave/finish lines in merged order).
func (ss *ShardSet) SetLogf(f func(format string, args ...any)) { ss.logf = f }

// SetRecording selects every shard scheduler's record mode (see
// Scheduler.SetRecording). Must be called before Run.
func (ss *ShardSet) SetRecording(mode RecordMode, rec Recorder) {
	if mode == RecordAggregate && rec == nil {
		panic("testbed: RecordAggregate requires a Recorder")
	}
	ss.recMode = mode
	ss.recorder = rec
}

// SetWorkers bounds how many shards step concurrently (the -shards
// flag). Values ≤ 1 run the shards serially; 0 keeps the parallel
// harness default. Worker width never affects output, only wall time.
func (ss *ShardSet) SetWorkers(n int) { ss.workers = n }

// Shards returns the number of shards.
func (ss *ShardSet) Shards() int { return len(ss.shards) }

// Run steps every shard to the given horizon and returns the merged
// timeline. Each shard builds its own Engine (inheriting the
// process-wide exact/event-queue defaults), schedules its mutations,
// and runs its participants on its own scheduler; shards execute on the
// parallel worker pool and results merge by shard index, so output is
// independent of worker count and interleaving.
func (ss *ShardSet) Run(until, tick float64) (*Timeline, error) {
	if len(ss.shards) == 1 {
		// One shard is exactly the unsharded run: drive it directly so
		// external event consumers stay live and output is trivially
		// identical to a plain Scheduler run.
		sched, err := ss.build(&ss.shards[0], ss.events, ss.logf)
		if err != nil {
			return nil, err
		}
		return sched.Run(until, tick), nil
	}

	tls := make([]*Timeline, len(ss.shards))
	bufs := make([][]session.Event, len(ss.shards))
	errs := make([]error, len(ss.shards))
	capture := ss.events != nil || ss.logf != nil
	parallel.ForEachN(len(ss.shards), ss.workers, func(i int) {
		var sink session.Sink
		if capture {
			buf := &bufs[i]
			sink = func(e session.Event) { *buf = append(*buf, e) }
		}
		sched, err := ss.build(&ss.shards[i], sink, nil)
		if err != nil {
			errs[i] = err
			return
		}
		tls[i] = sched.Run(until, tick)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if capture {
		sink := session.MultiSink(ss.events, logEventSink(ss.logf))
		mergeEvents(bufs, sink)
	}
	return mergeTimelines(tls), nil
}

// build assembles one shard's engine and scheduler.
func (ss *ShardSet) build(sh *ShardSpec, sink session.Sink, logf func(format string, args ...any)) (*Scheduler, error) {
	eng, err := NewEngine(sh.Config, sh.Seed)
	if err != nil {
		return nil, fmt.Errorf("testbed: shard %s: %w", sh.Key, err)
	}
	for _, m := range sh.Mutations {
		if err := eng.ScheduleMutation(m); err != nil {
			return nil, fmt.Errorf("testbed: shard %s: %w", sh.Key, err)
		}
	}
	sched := NewScheduler(eng, ss.record)
	sched.Warmup = ss.Warmup
	sched.SetRecording(ss.recMode, ss.recorder)
	if sink != nil {
		sched.SetEventSink(sink)
	}
	if logf != nil {
		sched.SetLogf(logf)
	}
	sched.Reserve(len(sh.Parts))
	for _, p := range sh.Parts {
		if err := sched.Add(p); err != nil {
			return nil, fmt.Errorf("testbed: shard %s: %w", sh.Key, err)
		}
	}
	return sched, nil
}

// mergeEvents interleaves the per-shard event buffers into sink by
// (Time, shard index); within a shard the emission order is preserved.
// Per-shard streams are time-nondecreasing (events are emitted as the
// shard's clock advances), so a head-of-stream merge is a total order.
func mergeEvents(bufs [][]session.Event, sink session.Sink) {
	idx := make([]int, len(bufs))
	for {
		best := -1
		for s := range bufs {
			if idx[s] >= len(bufs[s]) {
				continue
			}
			if best < 0 || bufs[s][idx[s]].Time < bufs[best][idx[best]].Time {
				best = s
			}
		}
		if best < 0 {
			return
		}
		sink(bufs[best][idx[best]])
		idx[best]++
	}
}

// mergeTimelines concatenates shard timelines in shard order. Task IDs
// are unique across shards, so series never collide; series order in
// the merged sets is (shard index, creation order within shard), a pure
// function of the shard specs.
func mergeTimelines(tls []*Timeline) *Timeline {
	out := &Timeline{Finished: make(map[string]float64)}
	nT, nC, nL := 0, 0, 0
	for _, tl := range tls {
		nT += len(tl.Throughput.Series)
		nC += len(tl.Concurrency.Series)
		nL += len(tl.Loss.Series)
	}
	out.Throughput.Reserve(nT)
	out.Concurrency.Reserve(nC)
	out.Loss.Reserve(nL)
	for _, tl := range tls {
		out.Throughput.Series = append(out.Throughput.Series, tl.Throughput.Series...)
		out.Concurrency.Series = append(out.Concurrency.Series, tl.Concurrency.Series...)
		out.Loss.Series = append(out.Loss.Series, tl.Loss.Series...)
		for id, t := range tl.Finished {
			out.Finished[id] = t
		}
	}
	return out
}
