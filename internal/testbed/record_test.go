package testbed

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/session"
	"repro/internal/trace"
)

// captureRecorder is a Recorder that keeps every streamed point, keyed
// by the attached session ID, so tests can compare the aggregate-mode
// stream against full-mode timelines point for point.
type captureRecorder struct {
	ids    []string
	points map[string][]trace.Point
}

func newCaptureRecorder() *captureRecorder {
	return &captureRecorder{points: make(map[string][]trace.Point)}
}

func (c *captureRecorder) Attach(id string) int32 {
	c.ids = append(c.ids, id)
	return int32(len(c.ids) - 1)
}

func (c *captureRecorder) Record(h int32, t, gbps float64) {
	id := c.ids[h]
	c.points[id] = append(c.points[id], trace.Point{Time: t, Value: gbps})
}

// TestRecordModesEngineTransparent pins the RecordMode contract: the
// simulation itself — every session event, in order, with bitwise-equal
// times and samples — is identical in full, aggregate, and off modes,
// because the recording cadence still bounds every macro-step and only
// what gets written differs. It further requires the aggregate stream
// to reproduce the full-mode throughput series bitwise, and non-full
// timelines to stay empty. Both orchestrators are exercised, since each
// has its own recording loop.
func TestRecordModesEngineTransparent(t *testing.T) {
	const n, horizon = 45, 120
	type outcome struct {
		tl     *Timeline
		events []session.Event
		rec    *captureRecorder
	}
	run := func(queue bool, mode RecordMode) outcome {
		eng, err := NewEngine(HPCLab(), 11)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(eng, 1)
		s.SetEventQueue(queue)
		var rec *captureRecorder
		if mode == RecordAggregate {
			rec = newCaptureRecorder()
			s.SetRecording(mode, rec)
		} else {
			s.SetRecording(mode, nil)
		}
		var events []session.Event
		s.SetEventSink(func(e session.Event) { events = append(events, e) })
		fleetScenario(t, s, n)
		return outcome{tl: s.Run(horizon, 0.25), events: events, rec: rec}
	}

	for _, queue := range []bool{true, false} {
		t.Run(fmt.Sprintf("queue=%v", queue), func(t *testing.T) {
			full := run(queue, RecordFull)
			agg := run(queue, RecordAggregate)
			off := run(queue, RecordOff)

			if len(full.tl.Finished) == 0 {
				t.Fatal("scenario did not exercise completion")
			}
			for name, o := range map[string]outcome{"aggregate": agg, "off": off} {
				if len(o.events) != len(full.events) {
					t.Fatalf("%s mode: %d events, full mode %d", name, len(o.events), len(full.events))
				}
				for i := range o.events {
					if !reflect.DeepEqual(o.events[i], full.events[i]) {
						t.Fatalf("%s mode event %d differs:\n  full: %+v\n  %s:  %+v",
							name, i, full.events[i], name, o.events[i])
					}
				}
				if got := len(o.tl.Throughput.Names()); got != 0 {
					t.Fatalf("%s mode recorded %d throughput series, want 0", name, got)
				}
				if got := len(o.tl.Finished); got != 0 {
					t.Fatalf("%s mode recorded %d finish times, want 0", name, got)
				}
			}

			// The aggregate stream must be the full-mode series, point for
			// point. (Compared element-wise: full mode pre-sizes series at
			// join, so a session that finishes before its first recording
			// boundary has an empty-but-allocated series, while the
			// recorder map simply has no points for it.)
			for _, name := range full.tl.Throughput.Names() {
				s := full.tl.Throughput.Lookup(name)
				got := agg.rec.points[name]
				if len(got) != len(s.Points) {
					t.Fatalf("aggregate stream for %q has %d points, full mode %d", name, len(got), len(s.Points))
				}
				for i := range got {
					if got[i] != s.Points[i] {
						t.Fatalf("aggregate stream for %q point %d = %+v, full mode %+v", name, i, got[i], s.Points[i])
					}
				}
				delete(agg.rec.points, name)
			}
			for name := range agg.rec.points {
				if len(agg.rec.points[name]) > 0 {
					t.Fatalf("aggregate stream has points for %q, absent from full mode", name)
				}
			}
		})
	}
}

// TestSetRecordingRequiresRecorder pins the nil-recorder guard.
func TestSetRecordingRequiresRecorder(t *testing.T) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(eng, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRecording(RecordAggregate, nil) did not panic")
		}
	}()
	s.SetRecording(RecordAggregate, nil)
}

// TestParseRecordMode covers the string round trip.
func TestParseRecordMode(t *testing.T) {
	for _, m := range []RecordMode{RecordFull, RecordAggregate, RecordOff} {
		got, err := ParseRecordMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseRecordMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseRecordMode("bogus"); err == nil {
		t.Fatal("ParseRecordMode accepted bogus mode")
	}
}
