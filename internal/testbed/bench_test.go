package testbed

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// BenchmarkEngineStepThreeTasks measures one simulation tick with three
// active multi-connection tasks — the inner loop of every experiment.
func BenchmarkEngineStepThreeTasks(b *testing.B) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		task, err := transfer.NewTask(fmt.Sprintf("t%d", i),
			dataset.Uniform(fmt.Sprintf("t%d", i), 100000, int64(dataset.GB)),
			transfer.Setting{Concurrency: 16, Parallelism: 2, Pipelining: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}

// BenchmarkSchedulerRunMinute measures a full scheduled minute of
// simulated time with a fixed controller.
func BenchmarkSchedulerRunMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(Emulab(10e6), 1)
		if err != nil {
			b.Fatal(err)
		}
		s := NewScheduler(eng, 1)
		task, err := transfer.NewTask("t", dataset.Uniform("t", 10000, int64(dataset.GB)),
			transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Add(Participant{Task: task, Controller: FixedController{S: task.Setting()}}); err != nil {
			b.Fatal(err)
		}
		s.Run(60, 0.25)
	}
}
