package testbed

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// BenchmarkEngineStepThreeTasks measures one simulation tick with three
// active multi-connection tasks — the inner loop of every experiment.
func BenchmarkEngineStepThreeTasks(b *testing.B) {
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		task, err := transfer.NewTask(fmt.Sprintf("t%d", i),
			dataset.Uniform(fmt.Sprintf("t%d", i), 100000, int64(dataset.GB)),
			transfer.Setting{Concurrency: 16, Parallelism: 2, Pipelining: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}

// BenchmarkSchedulerRunMinute measures one scheduled minute of
// simulated time with a fixed controller, in the steady state: the
// engine, scheduler, and run are built untimed and driven past the
// join and warm-up epochs, so an op is 60 s of pure orchestration plus
// simulation. The per-run state (horizon heap, live list, timeline
// name index, event buffers) is presized by newQueueRun, so the op
// must stay at single-digit allocs/op — what remains is amortized
// growth of the recorded series.
func BenchmarkSchedulerRunMinute(b *testing.B) {
	type fixture struct {
		eng *Engine
		run *queueRun
	}
	// A day of simulated headroom per fixture; the run is rebuilt
	// (untimed) when the horizon drains mid-benchmark.
	const until = 86400.0
	build := func() fixture {
		eng, err := NewEngine(Emulab(10e6), 1)
		if err != nil {
			b.Fatal(err)
		}
		s := NewScheduler(eng, 1)
		task, err := transfer.NewTask("t", dataset.Uniform("t", 10000, int64(dataset.GB)),
			transfer.Setting{Concurrency: 10, Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Add(Participant{Task: task, Controller: FixedController{S: task.Setting()}}); err != nil {
			b.Fatal(err)
		}
		r := s.newQueueRun(until, 0.25)
		for eng.Now() < 20 {
			r.step()
		}
		return fixture{eng: eng, run: r}
	}
	f := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.eng.Now()+60 > until {
			b.StopTimer()
			f = build()
			b.StartTimer()
		}
		target := f.eng.Now() + 60
		for f.eng.Now() < target {
			if !f.run.step() {
				b.Fatal("run drained mid-benchmark")
			}
		}
	}
}
