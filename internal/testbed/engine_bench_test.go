package testbed

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/transfer"
)

// benchEngine builds an engine with k concurrent endless transfers at
// the given concurrency, stepped past the ramp so Step runs in steady
// state — the regime cmd/reproduce spends nearly all its time in.
func benchEngine(b *testing.B, k, n int) *Engine {
	b.Helper()
	eng, err := NewEngine(HPCLab(), 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("t%d", i)
		// 400 TB per file: the tasks cannot drain within any b.N, so
		// every iteration measures the steady-state tick.
		task, err := transfer.NewTask(id, dataset.Uniform(id, 20000, 400*int64(dataset.TB)),
			transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.AddTask(task); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		eng.Step(0.25)
	}
	return eng
}

// BenchmarkStep measures the per-tick cost of the simulation hot path:
// demand construction, max-min allocation, and task advancement for
// four tasks totalling 32 connections. Between optimizer decisions the
// demand set is unchanged, so the allocator memo should make the
// steady-state tick allocation-free.
func BenchmarkStep(b *testing.B) {
	eng := benchEngine(b, 4, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}

// BenchmarkStepNoMemo measures the same tick with allocator memoization
// disabled: every Step re-runs water-filling, isolating the cost of the
// max-min computation itself.
func BenchmarkStepNoMemo(b *testing.B) {
	eng := benchEngine(b, 4, 8)
	eng.SetAllocMemo(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(0.25)
	}
}
