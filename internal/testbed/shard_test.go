package testbed

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

// shardFixture builds K shard specs with disjoint rosters: staggered
// joins, mid-run leaves, small tasks that finish inside the horizon,
// and per-shard configs/seeds that differ so cross-shard mixups cannot
// cancel out. Tasks are stateful, so every call builds fresh specs.
func shardFixture(t *testing.T, k int) []ShardSpec {
	t.Helper()
	specs := make([]ShardSpec, k)
	for s := 0; s < k; s++ {
		cfg := HPCLab()
		cfg.LinkCapacity = float64(4+s) * 1e9 // distinct per shard
		spec := ShardSpec{
			Key:    fmt.Sprintf("route%d", s),
			Config: cfg,
			Seed:   100 + int64(s),
			Mutations: []Mutation{
				{At: 30 + float64(s), Kind: MutLinkCapacity, Capacity: float64(3+s) * 1e9},
			},
		}
		for i := 0; i < 8; i++ {
			id := fmt.Sprintf("sh%d-t%d", s, i)
			files, size := 40, int64(2_000_000_000)
			if i%3 == 0 {
				files, size = 2, 50_000_000 // finishes mid-run
			}
			task, err := transfer.NewTask(id, dataset.Uniform(id, files, size),
				transfer.Setting{Concurrency: 1 + i%3, Parallelism: 1, Pipelining: 1})
			if err != nil {
				t.Fatal(err)
			}
			p := Participant{Task: task, JoinAt: float64((i*3 + s) % 11)}
			if i%4 == 1 {
				p.LeaveAt = 45
			}
			spec.Parts = append(spec.Parts, p)
		}
		specs[s] = spec
	}
	return specs
}

// TestShardSetMatchesIndependentRuns: a sharded run is exactly its
// shards run one at a time on plain schedulers — same series, in shard
// order; same finishes; and an event stream that is the per-shard
// streams interleaved by (time, shard index) with per-shard order
// preserved.
func TestShardSetMatchesIndependentRuns(t *testing.T) {
	const until, tick = 90.0, 0.25

	// Independent baseline: one plain scheduler per shard spec.
	type indep struct {
		tl     *Timeline
		events []session.Event
	}
	base := make([]indep, 3)
	for s, spec := range shardFixture(t, 3) {
		eng, err := NewEngine(spec.Config, spec.Seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range spec.Mutations {
			if err := eng.ScheduleMutation(m); err != nil {
				t.Fatal(err)
			}
		}
		sched := NewScheduler(eng, 1)
		sched.SetEventSink(func(e session.Event) { base[s].events = append(base[s].events, e) })
		for _, p := range spec.Parts {
			if err := sched.Add(p); err != nil {
				t.Fatal(err)
			}
		}
		base[s].tl = sched.Run(until, tick)
	}

	ss, err := NewShardSet(shardFixture(t, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	ss.SetWorkers(4)
	var merged []session.Event
	ss.SetEventSink(func(e session.Event) { merged = append(merged, e) })
	tl, err := ss.Run(until, tick)
	if err != nil {
		t.Fatal(err)
	}

	// Timeline: series concatenate in shard order, finishes union.
	var wantSeries []string
	for _, b := range base {
		for _, s := range b.tl.Throughput.Series {
			wantSeries = append(wantSeries, s.Name)
		}
	}
	var gotSeries []string
	for _, s := range tl.Throughput.Series {
		gotSeries = append(gotSeries, s.Name)
	}
	if !reflect.DeepEqual(gotSeries, wantSeries) {
		t.Errorf("merged series order = %v, want shard-order concat %v", gotSeries, wantSeries)
	}
	wantFinished := map[string]float64{}
	for s, b := range base {
		if len(b.tl.Finished) == 0 {
			t.Fatalf("shard %d fixture never finished a task", s)
		}
		for id, at := range b.tl.Finished {
			wantFinished[id] = at
		}
		for _, ser := range b.tl.Throughput.Series {
			got := tl.Throughput.Get(ser.Name)
			if !reflect.DeepEqual(got.Points, ser.Points) {
				t.Errorf("merged series %q differs from its independent run", ser.Name)
			}
		}
	}
	if !reflect.DeepEqual(tl.Finished, wantFinished) {
		t.Errorf("merged Finished = %v, want %v", tl.Finished, wantFinished)
	}

	// Events: per-shard subsequences survive intact, and the merged
	// stream is time-nondecreasing with ties in shard order.
	owner := map[string]int{}
	for s, spec := range shardFixture(t, 3) {
		for _, p := range spec.Parts {
			owner[p.Task.ID()] = s
		}
	}
	perShard := make([][]session.Event, 3)
	for _, e := range merged {
		s := owner[e.Session]
		perShard[s] = append(perShard[s], e)
	}
	for s, b := range base {
		if !reflect.DeepEqual(perShard[s], b.events) {
			t.Errorf("shard %d event subsequence differs from its independent run", s)
		}
	}
	for i := 1; i < len(merged); i++ {
		p, q := merged[i-1], merged[i]
		if q.Time < p.Time {
			t.Fatalf("merged events out of order: %v after %v", q.Time, p.Time)
		}
		if q.Time == p.Time && owner[q.Session] < owner[p.Session] {
			t.Fatalf("t=%v: shard %d event after shard %d event", q.Time, owner[q.Session], owner[p.Session])
		}
	}
}

// TestShardSetWorkerWidthInvariant: worker width is a throughput knob
// only — 1, 2, and 8 workers must produce identical timelines and
// event streams.
func TestShardSetWorkerWidthInvariant(t *testing.T) {
	type outcome struct {
		tl     *Timeline
		events []session.Event
	}
	run := func(workers int) outcome {
		ss, err := NewShardSet(shardFixture(t, 4), 1)
		if err != nil {
			t.Fatal(err)
		}
		ss.SetWorkers(workers)
		var events []session.Event
		ss.SetEventSink(func(e session.Event) { events = append(events, e) })
		tl, err := ss.Run(60, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{tl: tl, events: events}
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if !reflect.DeepEqual(got.tl, ref.tl) {
			t.Errorf("workers=%d timeline differs from serial", w)
		}
		if !reflect.DeepEqual(got.events, ref.events) {
			t.Errorf("workers=%d event stream differs from serial", w)
		}
	}
}

// TestShardSetSingleShardMatchesScheduler: a one-shard set is the
// plain scheduler run, byte for byte (live sinks, same timeline).
func TestShardSetSingleShardMatchesScheduler(t *testing.T) {
	spec := shardFixture(t, 1)[0]
	eng, err := NewEngine(spec.Config, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range spec.Mutations {
		if err := eng.ScheduleMutation(m); err != nil {
			t.Fatal(err)
		}
	}
	sched := NewScheduler(eng, 1)
	var want []session.Event
	sched.SetEventSink(func(e session.Event) { want = append(want, e) })
	for _, p := range spec.Parts {
		if err := sched.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	wantTL := sched.Run(90, 0.25)

	ss, err := NewShardSet(shardFixture(t, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []session.Event
	ss.SetEventSink(func(e session.Event) { got = append(got, e) })
	gotTL, err := ss.Run(90, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTL, wantTL) {
		t.Error("single-shard timeline differs from plain scheduler")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("single-shard event stream differs from plain scheduler")
	}
}

// TestNewShardSetRejects pins the construction errors: empty sets, nil
// tasks, and task IDs duplicated across shards.
func TestNewShardSetRejects(t *testing.T) {
	if _, err := NewShardSet(nil, 1); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := NewShardSet([]ShardSpec{{Key: "a", Parts: []Participant{{}}}}, 1); err == nil {
		t.Error("nil task accepted")
	}
	mk := func(id string) Participant {
		task, err := transfer.NewTask(id, dataset.Uniform(id, 2, 1000),
			transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1})
		if err != nil {
			t.Fatal(err)
		}
		return Participant{Task: task}
	}
	specs := []ShardSpec{
		{Key: "a", Config: HPCLab(), Parts: []Participant{mk("dup")}},
		{Key: "b", Config: HPCLab(), Parts: []Participant{mk("dup")}},
	}
	if _, err := NewShardSet(specs, 1); err == nil {
		t.Error("cross-shard duplicate task ID accepted")
	}
}
