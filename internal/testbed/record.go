package testbed

import (
	"fmt"

	"repro/internal/transfer"
)

// RecordMode selects what a Scheduler run records. The default,
// RecordFull, keeps the original behaviour: per-session trace.Series
// for throughput, concurrency, and loss — O(sessions × samples) memory,
// which is the right fidelity for the pinned reproduce experiments and
// small fleets but dominates the footprint of a million-session run.
// RecordAggregate drops the per-session timelines and instead streams
// every throughput recording point into a caller-supplied Recorder
// (constant space per session); RecordOff records nothing.
//
// The recording cadence is identical in every mode — nextRecord
// boundaries still bound each macro-step — so the engine's stepping,
// and therefore every simulated number, is bitwise independent of the
// mode. Only what gets written down differs.
type RecordMode uint8

const (
	// RecordFull records per-session throughput/concurrency/loss
	// series and completion times into the run's Timeline.
	RecordFull RecordMode = iota
	// RecordAggregate streams throughput recording points into the
	// attached Recorder; the returned Timeline stays empty.
	RecordAggregate
	// RecordOff records nothing; the returned Timeline stays empty.
	RecordOff
)

// String implements fmt.Stringer.
func (m RecordMode) String() string {
	switch m {
	case RecordFull:
		return "full"
	case RecordAggregate:
		return "aggregate"
	case RecordOff:
		return "off"
	default:
		return fmt.Sprintf("RecordMode(%d)", uint8(m))
	}
}

// ParseRecordMode parses "full", "aggregate", or "off".
func ParseRecordMode(s string) (RecordMode, error) {
	switch s {
	case "full":
		return RecordFull, nil
	case "aggregate":
		return RecordAggregate, nil
	case "off":
		return RecordOff, nil
	default:
		return RecordFull, fmt.Errorf("testbed: unknown record mode %q (want full, aggregate, or off)", s)
	}
}

// Recorder consumes streaming throughput recordings in RecordAggregate
// mode. Attach is called once per session at join time and returns the
// handle Record is keyed by; Record receives the session's current
// rate (Gbps) at each recording boundary while the session is live —
// the same (time, value) points RecordFull would append to the
// session's throughput series.
//
// Sharded runs call Attach and Record concurrently from shard worker
// goroutines, but never for the same session from two goroutines;
// implementations must be safe under that access pattern (e.g. flat
// per-session slots, no shared mutable lookup state in Attach).
type Recorder interface {
	Attach(id string) int32
	Record(handle int32, t, gbps float64)
}

// SetRecording selects the scheduler's record mode. A Recorder is
// required for RecordAggregate and ignored otherwise. Must be called
// before Run.
func (s *Scheduler) SetRecording(mode RecordMode, rec Recorder) {
	if mode == RecordAggregate && rec == nil {
		panic("testbed: RecordAggregate requires a Recorder")
	}
	s.recMode = mode
	s.recorder = rec
}

// initSimEnvironment is NewSimEnvironment constructing in place: it
// registers task with eng and overwrites *e. Fleet-scale runs carve
// their environments out of one flat slab instead of a million heap
// objects.
func initSimEnvironment(e *SimEnvironment, eng *Engine, task *transfer.Task) error {
	if err := eng.AddTask(task); err != nil {
		return err
	}
	*e = SimEnvironment{eng: eng, task: task}
	return nil
}
