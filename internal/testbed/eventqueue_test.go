package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/transfer"
)

// fleetScenario builds a mixed fleet designed to stress every ordering
// decision the event-queue scheduler makes: staggered joins with many
// identical join times, departures at identical leave times, small
// tasks that drain mid-run, sessions sharing the default sample
// interval (identical decision deadlines every epoch), and a few
// off-cadence intervals so deadlines also interleave.
func fleetScenario(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	shared := dataset.Uniform("eq-fleet", 5000, int64(dataset.GB))
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("eq%04d", i)
		var task *transfer.Task
		var err error
		if i%7 == 3 {
			// Finisher: drains well inside the horizon at any fleet
			// size (≈2 Gb against a ≥80 Mbps max-min share).
			task, err = transfer.NewTask(id, dataset.Uniform(id, 4, 64_000_000),
				transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
		} else {
			task, err = transfer.NewTask(id, shared,
				transfer.Setting{Concurrency: 1 + i%4, Parallelism: 1, Pipelining: 1})
		}
		if err != nil {
			t.Fatal(err)
		}
		p := Participant{Task: task, JoinAt: float64(i%5) * 7}
		if i%3 == 0 {
			ci := new(int)
			p.Controller = cycler{vals: []int{2, 4, 4, 3, 5}, i: ci}
		}
		if i%11 == 5 {
			// Departures in identical-time clusters (60, 70, 80 s).
			p.LeaveAt = 60 + float64(i%3)*10
		}
		if i%13 == 8 {
			p.SampleInterval = 2.5
		}
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEventQueueSchedulerIsTransparent: the event-queue orchestrator is
// a pure fast path — on a fleet with mixed joins, leaves, mid-run
// finishes, and identically-timed deadlines it must produce a timeline
// and a session event stream identical, event for event, to the legacy
// linear-scan loop, at both a small (45) and a large (500) fleet and in
// both exact and batched stepping modes.
func TestEventQueueSchedulerIsTransparent(t *testing.T) {
	type outcome struct {
		tl     *Timeline
		events []session.Event
	}
	run := func(n int, horizon float64, queue, exact bool) outcome {
		eng, err := NewEngine(HPCLab(), 11)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetExact(exact)
		s := NewScheduler(eng, 1)
		s.SetEventQueue(queue)
		var events []session.Event
		s.SetEventSink(func(e session.Event) { events = append(events, e) })
		fleetScenario(t, s, n)
		return outcome{tl: s.Run(horizon, 0.25), events: events}
	}
	for _, tc := range []struct {
		n       int
		horizon float64
	}{
		{n: 45, horizon: 120},
		{n: 500, horizon: 90},
	} {
		for _, exact := range []bool{false, true} {
			name := fmt.Sprintf("n=%d/exact=%v", tc.n, exact)
			t.Run(name, func(t *testing.T) {
				queue := run(tc.n, tc.horizon, true, exact)
				scan := run(tc.n, tc.horizon, false, exact)

				if len(queue.tl.Finished) == 0 {
					t.Fatal("scenario did not exercise completion: no task finished")
				}
				sawLeave := false
				for _, e := range queue.events {
					if e.Kind == session.Leave {
						sawLeave = true
						break
					}
				}
				if !sawLeave {
					t.Fatal("scenario did not exercise departure: no Leave event")
				}
				if !reflect.DeepEqual(queue.tl, scan.tl) {
					t.Error("event-queue timeline differs from linear-scan timeline")
				}
				if len(queue.events) != len(scan.events) {
					t.Fatalf("event counts differ: queue %d, scan %d", len(queue.events), len(scan.events))
				}
				for i := range queue.events {
					if !reflect.DeepEqual(queue.events[i], scan.events[i]) {
						t.Fatalf("event %d differs:\n  queue: %+v\n  scan:  %+v", i, queue.events[i], scan.events[i])
					}
				}
			})
		}
	}
}

// heapOracle mirrors a horizonHeap as a flat membership table; due and
// min queries sort (key, handle) pairs the slow, obvious way.
type heapOracle struct {
	key []float64
	in  []bool
}

func (o *heapOracle) sortedDue(now float64) []int32 {
	var due []int32
	for h, in := range o.in {
		if in && o.key[h] <= now {
			due = append(due, int32(h))
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		return o.key[a] < o.key[b] || (o.key[a] == o.key[b] && a < b)
	})
	return due
}

func (o *heapOracle) min() (float64, bool) {
	best, ok := math.Inf(1), false
	for h, in := range o.in {
		if in && (!ok || o.key[h] < best) {
			best, ok = o.key[h], true
		}
	}
	return best, ok
}

func (o *heapOracle) size() int {
	n := 0
	for _, in := range o.in {
		if in {
			n++
		}
	}
	return n
}

// TestHorizonHeapProperty drives the indexed heap with a seeded random
// sequence of push/update/remove/popDue operations against the
// sorted-slice oracle. Keys are drawn from a small discrete set so key
// ties are frequent and the (key, handle) tie-break is exercised on
// nearly every pop.
func TestHorizonHeapProperty(t *testing.T) {
	const handles = 96
	rng := rand.New(rand.NewSource(20260808))
	var h horizonHeap
	h.init(handles)
	o := heapOracle{key: make([]float64, handles), in: make([]bool, handles)}

	checkInvariants := func(step int) {
		t.Helper()
		if h.len() != o.size() {
			t.Fatalf("step %d: heap len %d, oracle size %d", step, h.len(), o.size())
		}
		for hd := int32(0); hd < handles; hd++ {
			p := h.pos[hd]
			if (p >= 0) != o.in[hd] {
				t.Fatalf("step %d: handle %d membership: heap %v, oracle %v", step, hd, p >= 0, o.in[hd])
			}
			if p >= 0 {
				if h.heap[p] != hd {
					t.Fatalf("step %d: pos[%d]=%d but heap[%d]=%d", step, hd, p, p, h.heap[p])
				}
				if h.key[hd] != o.key[hd] {
					t.Fatalf("step %d: handle %d key: heap %v, oracle %v", step, hd, h.key[hd], o.key[hd])
				}
			}
		}
		for i := 1; i < len(h.heap); i++ {
			parent := h.heap[(i-1)/2]
			if h.less(h.heap[i], parent) {
				t.Fatalf("step %d: heap order violated at index %d", step, i)
			}
		}
		want, ok := o.min()
		if got := h.minKey(); ok && got != want {
			t.Fatalf("step %d: minKey %v, oracle %v", step, got, want)
		} else if !ok && !math.IsInf(got, 1) {
			t.Fatalf("step %d: minKey on empty heap = %v, want +Inf", step, got)
		}
	}

	randKey := func() float64 { return float64(rng.Intn(24)) / 4 }
	var buf []int32
	for step := 0; step < 6000; step++ {
		hd := int32(rng.Intn(handles))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // push (insert or re-key)
			k := randKey()
			h.push(hd, k)
			o.key[hd], o.in[hd] = k, true
		case 4: // update only if present, matching caller discipline
			if h.pos[hd] >= 0 {
				k := randKey()
				h.update(hd, k)
				o.key[hd] = k
			}
		case 5, 6: // remove (absent handles must be a no-op)
			h.remove(hd)
			o.in[hd] = false
		default: // popDue at a random cutoff
			now := randKey()
			buf = h.popDue(now, buf[:0])
			want := o.sortedDue(now)
			if !reflect.DeepEqual(append([]int32{}, buf...), append([]int32{}, want...)) {
				t.Fatalf("step %d: popDue(%v) = %v, oracle %v", step, now, buf, want)
			}
			for _, d := range want {
				o.in[d] = false
			}
		}
		if step%97 == 0 {
			checkInvariants(step)
		}
	}
	checkInvariants(6000)

	// Drain completely: the pop sequence must be the oracle's full
	// (key, handle) sort, and the heap must end empty.
	buf = h.popDue(math.Inf(1), buf[:0])
	want := o.sortedDue(math.Inf(1))
	if !reflect.DeepEqual(append([]int32{}, buf...), append([]int32{}, want...)) {
		t.Fatalf("final drain = %v, oracle %v", buf, want)
	}
	if h.len() != 0 || h.minKey() != math.Inf(1) {
		t.Fatalf("heap not empty after drain: len %d", h.len())
	}
}
