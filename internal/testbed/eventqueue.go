package testbed

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/session"
)

// queueRun is one Run invocation on the event-queue path. Instead of
// scanning every participant at every macro-step, it keeps an indexed
// min-heap of horizons — pending joins, pending leaves, each live
// session's next decision/warm-up deadline, and the engine's
// NextEvent estimate — and pops only what is due at each loop head.
// Completion bookkeeping consumes the engine's drained-task list, and
// recording walks an intrusive list of live sessions, so steady-state
// orchestration cost scales with the due set, not the fleet size.
//
// Handle scheme: part i owns handle 2i for its lifecycle horizon
// (JoinAt until joined, then LeaveAt while a leave is pending) and
// handle 2i+1 for its session deadline; handle 2·len(parts) is the
// engine's NextEvent estimate. Because the heap breaks key ties by
// handle and the due set is sorted before processing, identically-
// timed events are handled in ascending part order with lifecycle
// before deadline — exactly the scan loop's visit order, which keeps
// the two paths byte-identical.
type queueRun struct {
	s          *Scheduler
	until      float64
	tick       float64
	exact      bool
	tl         *Timeline
	sink       session.Sink
	nextRecord float64

	hz   horizonHeap
	hint int32 // handle of the engine's NextEvent estimate

	due  []int32 // scratch: handles due at the current loop head
	done []int32 // scratch: part indexes to sweep for completion

	// Live-session set: intrusive doubly-linked list over part
	// indexes, kept in ascending order, with the sentinel at
	// len(parts). Completion and recording walk it instead of parts.
	next []int32
	prev []int32

	// sessions/envs are the run's arenas: two flat slabs indexed by
	// part, instead of two heap objects per join.
	sessions []session.Session
	envs     []SimEnvironment
}

func (s *Scheduler) newQueueRun(until, tick float64) *queueRun {
	n := len(s.parts)
	finishedHint := n
	if s.recMode != RecordFull {
		finishedHint = 0
	}
	tl := &Timeline{Finished: make(map[string]float64, finishedHint)}
	if s.recMode == RecordFull {
		// Reserving the series maps and the heap/list storage up front
		// keeps the steady-state orchestration loop allocation-free.
		// Outside full mode no series accumulate, so the maps stay empty.
		tl.Throughput.Reserve(n)
		tl.Concurrency.Reserve(n)
		tl.Loss.Reserve(n)
	}
	r := &queueRun{
		s:        s,
		until:    until,
		tick:     tick,
		exact:    s.eng.Exact(),
		tl:       tl,
		sink:     s.runSink(tl),
		hint:     int32(2 * n),
		sessions: make([]session.Session, n),
		envs:     make([]SimEnvironment, n),
	}
	// All int32 storage — heap order and positions, due/done scratch,
	// live-list links — lives in one backing block, so a Run costs two
	// fixed allocations of orchestration state regardless of fleet
	// size. Append-bounded sub-slices are capped (three-index slicing)
	// so growth can never bleed into a neighbour.
	m := 2*n + 1
	ints := make([]int32, 3*m+n+2*(n+1))
	r.hz.key = make([]float64, m)
	r.hz.heap = ints[0:0:m]
	r.hz.pos = ints[m : 2*m]
	for i := range r.hz.pos {
		r.hz.pos[i] = -1
	}
	r.due = ints[2*m : 2*m : 3*m]
	r.done = ints[3*m : 3*m : 3*m+n]
	r.next = ints[3*m+n : 3*m+2*n+1]
	r.prev = ints[3*m+2*n+1:]
	r.next[n], r.prev[n] = int32(n), int32(n)
	for i := range s.parts {
		r.hz.push(int32(2*i), s.parts[i].p.JoinAt)
	}
	if !r.exact {
		// The estimate starts due so the first macro-step computes it;
		// exact mode steps one tick at a time and never consults it.
		r.hz.push(r.hint, math.Inf(-1))
	}
	return r
}

// step executes one macro-step of the event-queue loop; it reports
// false once the horizon is reached. The phase order — lifecycle,
// session ticks, engine advance, completion sweep, recording — and
// every boundary comparison mirror scanRun.step exactly.
func (r *queueRun) step() bool {
	s := r.s
	eng := s.eng
	if eng.Now() >= r.until {
		return false
	}
	now := eng.Now()

	// Pop every horizon due at this head, then sort: the heap yields
	// (time, handle) order, the scan loop processes parts in index
	// order, and ascending handle order is exactly ascending part
	// order with lifecycle before deadline.
	r.due = r.hz.popDue(now, r.due[:0])
	slices.Sort(r.due)
	hintDue := false
	if m := len(r.due); m > 0 && r.due[m-1] == r.hint {
		r.due = r.due[:m-1]
		hintDue = true
	}

	// Joins and leaves.
	for _, h := range r.due {
		if h&1 == 0 {
			r.lifecycle(int(h>>1), now)
		}
	}

	// Decision epochs and warm-up expiry, owned by each session. The
	// popped deadline handles are exactly the sessions the scan loop's
	// deadline check would not skip; exact mode ticks every live
	// session every step, as the always-tick loop does.
	if r.exact {
		sen := int32(len(s.parts))
		for i := r.next[sen]; i != sen; i = r.next[i] {
			r.tickSession(int(i), now)
		}
	} else {
		for _, h := range r.due {
			if h&1 == 1 {
				r.tickSession(int(h>>1), now)
			}
		}
	}

	if r.exact {
		eng.Step(r.tick)
	} else {
		if hintDue {
			// Refresh the engine estimate lazily: it is advisory
			// (RunTicks re-verifies every tick and stops at real
			// file-count events), so a stale value can only change how
			// often the loop regains control, never what it observes.
			r.hz.push(r.hint, eng.NextEvent())
		}
		eng.RunTicks(r.batch(now), r.tick)
	}

	// Completion bookkeeping: the engine reports which tasks drained
	// during the advance; tasks that were already done when they
	// joined were queued by lifecycle. Sorting recovers the scan
	// loop's part-order sweep.
	for _, id := range eng.Drained() {
		if i, ok := s.partIndex(id); ok {
			r.done = append(r.done, int32(i))
		}
	}
	if len(r.done) > 0 {
		slices.Sort(r.done)
		end := eng.Now()
		last := int32(-1)
		for _, i := range r.done {
			if i == last {
				continue
			}
			last = i
			e := &s.parts[i]
			if e.sess != nil && !e.sess.Finished() && e.p.Task.Done() {
				eng.RemoveTask(e.p.Task.ID())
				e.sess.Finish(end)
				r.hz.remove(2*i + 1)
				r.hz.remove(2 * i)
				r.unlink(i)
			}
		}
		r.done = r.done[:0]
	}

	// Recording. The boundary advances in every mode — it bounds the
	// macro-step sizing — only what gets written differs.
	if eng.Now() >= r.nextRecord {
		t := eng.Now()
		sen := int32(len(s.parts))
		switch s.recMode {
		case RecordFull:
			for i := r.next[sen]; i != sen; i = r.next[i] {
				id := s.parts[i].p.Task.ID()
				r.tl.Throughput.Append(id, t, eng.CurrentRate(id)/1e9)
			}
		case RecordAggregate:
			for i := r.next[sen]; i != sen; i = r.next[i] {
				e := &s.parts[i]
				s.recorder.Record(e.rec, t, eng.CurrentRate(e.p.Task.ID())/1e9)
			}
		}
		r.nextRecord = t + s.record
	}
	return true
}

// lifecycle handles part i's due lifecycle horizon: its join if the
// session does not exist yet, a pending leave otherwise. The body is
// the scan loop's join/leave block verbatim.
func (r *queueRun) lifecycle(i int, now float64) {
	s := r.s
	e := &s.parts[i]
	if e.sess == nil {
		s.join(e, &r.envs[i], &r.sessions[i], r.sink)
		if s.recMode == RecordFull {
			s.reserveSeries(r.tl, e, now, r.until)
		}
		r.link(int32(i))
		e.sess.Start(now, e.p.Task.Setting())
		if !r.exact {
			r.hz.push(int32(2*i+1), e.sess.NextDeadline())
		}
		if e.p.Task.Done() {
			// Joined already drained (empty horizon): the scan loop's
			// completion sweep catches this right after the advance.
			r.done = append(r.done, int32(i))
		}
		if e.p.LeaveAt > 0 {
			if now >= e.p.LeaveAt {
				r.leave(i, now)
			} else {
				r.hz.push(int32(2*i), e.p.LeaveAt)
			}
		}
		return
	}
	if !e.sess.Finished() && e.p.LeaveAt > 0 && now >= e.p.LeaveAt {
		r.leave(i, now)
	}
}

// leave removes part i's task and closes its session, dropping all of
// its heap entries and its live-list node.
func (r *queueRun) leave(i int, now float64) {
	e := &r.s.parts[i]
	r.s.eng.RemoveTask(e.p.Task.ID())
	e.sess.Leave(now)
	r.hz.remove(int32(2*i + 1))
	r.hz.remove(int32(2 * i))
	r.unlink(int32(i))
}

// tickSession ticks part i's session and re-arms its deadline horizon.
func (r *queueRun) tickSession(i int, now float64) {
	e := &r.s.parts[i]
	if e.sess == nil || e.sess.Finished() {
		return
	}
	if err := e.sess.Tick(now); err != nil {
		panic(fmt.Sprintf("testbed: controller for %q produced invalid setting: %v", e.p.Task.ID(), err))
	}
	if !r.exact {
		r.hz.push(int32(2*i+1), e.sess.NextDeadline())
	}
}

// batch sizes one macro-step from the heap minimum — the same
// replayed-clock loop as the scan path's batchTicks with the O(parts)
// horizon scan replaced by the heap root. At this point the heap holds
// every pending join and leave, every live session's post-Tick
// deadline, and the engine estimate, so the bound matches batchTicks'
// up to estimate staleness, which is advisory only.
func (r *queueRun) batch(now float64) int {
	h := r.hz.minKey()
	k, t := 0, now
	for t < r.until && t < h {
		t += r.tick
		k++
		if t >= r.nextRecord {
			break
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// link inserts part i into the live list keeping ascending index
// order. Fleets join in part order, so the common case is an O(1)
// tail append; out-of-order joins walk back from the tail.
func (r *queueRun) link(i int32) {
	sen := int32(len(r.s.parts))
	p := r.prev[sen]
	for p != sen && p > i {
		p = r.prev[p]
	}
	nx := r.next[p]
	r.prev[i], r.next[i] = p, nx
	r.next[p], r.prev[nx] = i, i
}

func (r *queueRun) unlink(i int32) {
	p, nx := r.prev[i], r.next[i]
	r.next[p], r.prev[nx] = nx, p
}
