package iosim

import (
	"testing"
	"testing/quick"
)

func validStore() Store {
	return Store{Name: "s", PerProcCap: 1e8, AggregateCap: 1e9, ContentionRate: 0.01}
}

func TestValidateAcceptsPresets(t *testing.T) {
	for _, s := range []Store{
		EmulabDisk(10e6),
		LustreXSEDE(),
		NVMeRAIDHPCLab(),
		GPFSCampus(),
		LustrePetascale(),
		validStore(),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", s.Name, err)
		}
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Store)
	}{
		{"empty name", func(s *Store) { s.Name = "" }},
		{"zero per-proc", func(s *Store) { s.PerProcCap = 0 }},
		{"zero aggregate", func(s *Store) { s.AggregateCap = 0 }},
		{"aggregate below per-proc", func(s *Store) { s.AggregateCap = s.PerProcCap / 2 }},
		{"negative knee", func(s *Store) { s.ContentionKnee = -1 }},
		{"contention rate 1", func(s *Store) { s.ContentionRate = 1 }},
		{"negative contention", func(s *Store) { s.ContentionRate = -0.1 }},
		{"max degradation 1", func(s *Store) { s.MaxDegradation = 1 }},
	}
	for _, c := range cases {
		s := validStore()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate did not error", c.name)
		}
	}
}

func TestEffectiveAggregateBelowKnee(t *testing.T) {
	s := validStore() // knee = ceil(1e9/1e8) = 10
	for _, n := range []int{0, 1, 5, 10} {
		if got := s.EffectiveAggregate(n); got != 1e9 {
			t.Errorf("EffectiveAggregate(%d) = %v, want 1e9", n, got)
		}
	}
}

func TestEffectiveAggregateContention(t *testing.T) {
	s := validStore()
	at20 := s.EffectiveAggregate(20) // 10 past knee: 1e9/(1+0.1)
	want := 1e9 / 1.1
	if diff := at20 - want; diff > 1 || diff < -1 {
		t.Fatalf("EffectiveAggregate(20) = %v, want %v", at20, want)
	}
	if s.EffectiveAggregate(30) >= at20 {
		t.Fatal("capacity should keep decreasing past the knee")
	}
}

func TestEffectiveAggregateFloor(t *testing.T) {
	s := validStore()
	s.ContentionRate = 0.5
	// Massive contention still bounded by the 50% default floor.
	if got := s.EffectiveAggregate(10000); got != 0.5e9 {
		t.Fatalf("floored capacity = %v, want 5e8", got)
	}
	s.MaxDegradation = 0.2
	if got := s.EffectiveAggregate(10000); got != 0.8e9 {
		t.Fatalf("floored capacity = %v, want 8e8", got)
	}
}

func TestEffectiveAggregateNoContention(t *testing.T) {
	s := validStore()
	s.ContentionRate = 0
	if got := s.EffectiveAggregate(1000); got != 1e9 {
		t.Fatalf("no-contention capacity = %v, want 1e9", got)
	}
}

func TestEffectiveAggregateNegativePanics(t *testing.T) {
	s := validStore()
	defer func() {
		if recover() == nil {
			t.Error("EffectiveAggregate(-1) did not panic")
		}
	}()
	s.EffectiveAggregate(-1)
}

func TestSaturationThreads(t *testing.T) {
	cases := []struct {
		store Store
		want  int
	}{
		{Store{Name: "a", PerProcCap: 10e6, AggregateCap: 100e6}, 10},
		{Store{Name: "b", PerProcCap: 3e6, AggregateCap: 10e6}, 4}, // ceil
		{EmulabDisk(10e6), 100},
		{EmulabDisk(20e6), 50},
	}
	for _, c := range cases {
		if got := c.store.SaturationThreads(); got != c.want {
			t.Errorf("%s.SaturationThreads() = %d, want %d", c.store.Name, got, c.want)
		}
	}
}

func TestExplicitKneeOverridesDefault(t *testing.T) {
	s := validStore()
	s.ContentionKnee = 5
	// Threads 6..10 are past the explicit knee even though the device
	// is not yet saturated.
	if got := s.EffectiveAggregate(6); got >= 1e9 {
		t.Fatalf("EffectiveAggregate(6) = %v, want < 1e9 with knee 5", got)
	}
}

// Property: effective capacity is monotonically non-increasing in the
// thread count and always within [(1-maxDeg)·Agg, Agg].
func TestEffectiveAggregateMonotoneProperty(t *testing.T) {
	f := func(rate8 uint8, knee8 uint8) bool {
		s := validStore()
		s.ContentionRate = float64(rate8%50) / 100
		s.ContentionKnee = int(knee8 % 40)
		prev := s.EffectiveAggregate(0)
		for n := 1; n <= 128; n++ {
			cur := s.EffectiveAggregate(n)
			if cur > prev+1e-9 {
				return false
			}
			if cur > s.AggregateCap || cur < (1-s.maxDegradation())*s.AggregateCap-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetBottlenecks(t *testing.T) {
	// The presets must reflect the paper's Table 1 bottlenecks.
	if n := NVMeRAIDHPCLab().SaturationThreads(); n < 8 || n > 10 {
		t.Errorf("HPCLab saturation threads = %d, want ≈9 (§4.1)", n)
	}
	if agg := LustreXSEDE().AggregateCap; agg > 10e9 {
		t.Errorf("XSEDE aggregate %v should be below the 10G network (disk-read bottleneck)", agg)
	}
	if agg := GPFSCampus().AggregateCap; agg < 10e9 {
		t.Errorf("Campus aggregate %v should exceed the 10G NIC (NIC bottleneck)", agg)
	}
	if agg := LustrePetascale().AggregateCap; agg < 40e9 {
		t.Errorf("Petascale aggregate %v should exceed the 40G WAN", agg)
	}
}
