// Package iosim models the storage side of a data transfer node: a
// per-process (per I/O thread) rate limit, an aggregate device or file
// system capacity, and a contention penalty at high thread counts.
//
// The per-process limit is the reason concurrency matters at all: on a
// parallel file system (Lustre, GPFS) or a RAID array, a single
// reader/writer cannot saturate the device, so aggregate I/O grows
// roughly linearly with thread count up to a knee (the paper's Figure
// 1: 3–15× throughput gain from concurrency). Past the knee, additional
// threads add seek/metadata contention and slightly *reduce* effective
// aggregate capacity — the overhead that Falcon's utility function is
// designed to avoid paying for.
package iosim

import (
	"fmt"
	"math"
)

// Store describes one storage endpoint.
type Store struct {
	// Name identifies the store in diagnostics ("lustre", "nvme-raid").
	Name string
	// PerProcCap is the maximum throughput of a single I/O thread, in
	// bits/s.
	PerProcCap float64
	// AggregateCap is the device's total capacity with ideal parallel
	// access, in bits/s.
	AggregateCap float64
	// ContentionKnee is the thread count beyond which contention
	// begins to erode aggregate capacity. Zero means
	// ceil(AggregateCap/PerProcCap) — contention starts exactly when
	// the device is saturated.
	ContentionKnee int
	// ContentionRate is the fractional capacity loss per thread beyond
	// the knee (e.g. 0.004 → 0.4 % per extra thread). Zero disables
	// contention.
	ContentionRate float64
	// MaxDegradation bounds the contention penalty: effective capacity
	// never drops below (1-MaxDegradation)·AggregateCap. Zero means a
	// default of 0.5.
	MaxDegradation float64
}

// Validate checks the configuration.
func (s Store) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("iosim: store with empty name")
	}
	if s.PerProcCap <= 0 {
		return fmt.Errorf("iosim: store %q PerProcCap %v must be positive", s.Name, s.PerProcCap)
	}
	if s.AggregateCap <= 0 {
		return fmt.Errorf("iosim: store %q AggregateCap %v must be positive", s.Name, s.AggregateCap)
	}
	if s.AggregateCap < s.PerProcCap {
		return fmt.Errorf("iosim: store %q AggregateCap %v below PerProcCap %v", s.Name, s.AggregateCap, s.PerProcCap)
	}
	if s.ContentionKnee < 0 {
		return fmt.Errorf("iosim: store %q negative ContentionKnee %d", s.Name, s.ContentionKnee)
	}
	if s.ContentionRate < 0 || s.ContentionRate >= 1 {
		return fmt.Errorf("iosim: store %q ContentionRate %v outside [0,1)", s.Name, s.ContentionRate)
	}
	if s.MaxDegradation < 0 || s.MaxDegradation >= 1 {
		return fmt.Errorf("iosim: store %q MaxDegradation %v outside [0,1)", s.Name, s.MaxDegradation)
	}
	return nil
}

// knee returns the effective contention knee.
func (s Store) knee() int {
	if s.ContentionKnee > 0 {
		return s.ContentionKnee
	}
	return int(math.Ceil(s.AggregateCap / s.PerProcCap))
}

// maxDegradation returns the effective degradation bound.
func (s Store) maxDegradation() float64 {
	if s.MaxDegradation > 0 {
		return s.MaxDegradation
	}
	return 0.5
}

// EffectiveAggregate returns the device-wide capacity available when
// `threads` I/O threads are active across all transfer tasks sharing
// the store. Below the knee it equals AggregateCap; beyond it,
// capacity decays smoothly:
//
//	cap(n) = AggregateCap / (1 + rate·(n-knee))   for n > knee
//
// bounded below by (1-MaxDegradation)·AggregateCap.
func (s Store) EffectiveAggregate(threads int) float64 {
	if threads < 0 {
		panic(fmt.Sprintf("iosim: negative thread count %d", threads))
	}
	capv := s.AggregateCap
	k := s.knee()
	if s.ContentionRate > 0 && threads > k {
		capv = s.AggregateCap / (1 + s.ContentionRate*float64(threads-k))
	}
	if floor := (1 - s.maxDegradation()) * s.AggregateCap; capv < floor {
		capv = floor
	}
	return capv
}

// SaturationThreads returns the minimum number of threads needed to
// reach AggregateCap assuming each thread achieves PerProcCap — the
// "optimal concurrency" of a transfer bottlenecked by this store.
func (s Store) SaturationThreads() int {
	return int(math.Ceil(s.AggregateCap / s.PerProcCap))
}

// Preset stores mirroring Table 1 of the paper. Capacities are the
// "true" capacities a profiling tool (bonnie++) would report; the
// effective behaviour under concurrency comes from EffectiveAggregate.

// EmulabDisk returns the Emulab direct-attached disk with per-process
// read throttled to perProc bits/s (the paper throttles to 10 or
// 20 Mbps per process to emulate parallel-file-system behaviour).
func EmulabDisk(perProc float64) Store {
	return Store{
		Name:       "emulab-disk",
		PerProcCap: perProc,
		// 1 Gbps hardware limit per the paper's Figure 3 description.
		AggregateCap:   1e9,
		ContentionRate: 0.002,
	}
}

// LustreXSEDE returns the XSEDE Lustre store; disk read is the
// transfer bottleneck (~5.4 Gbps observed aggregate read in §4.1).
func LustreXSEDE() Store {
	return Store{
		Name:           "lustre-xsede",
		PerProcCap:     0.75e9,
		AggregateCap:   5.8e9,
		ContentionRate: 0.004,
	}
}

// NVMeRAIDHPCLab returns the HPCLab RAID-0 NVMe array; disk write is
// the bottleneck, needing ≈9 concurrent writers for ~27 Gbps (§4.1).
func NVMeRAIDHPCLab() Store {
	return Store{
		Name:           "nvme-hpclab",
		PerProcCap:     3.2e9,
		AggregateCap:   27e9,
		ContentionRate: 0.004,
	}
}

// GPFSCampus returns the Campus Cluster GPFS store (NIC-bottlenecked
// testbed: storage comfortably exceeds the 10 Gbps NIC).
func GPFSCampus() Store {
	return Store{
		Name:           "gpfs-campus",
		PerProcCap:     2.5e9,
		AggregateCap:   16e9,
		ContentionRate: 0.003,
	}
}

// LustrePetascale returns a Stampede2/Comet-class Lustre store used by
// the WAN multi-parameter experiments (§4.4): high aggregate capacity
// so the 40 Gbps network path is the eventual bottleneck.
func LustrePetascale() Store {
	return Store{
		Name:           "lustre-petascale",
		PerProcCap:     2.2e9,
		AggregateCap:   48e9,
		ContentionRate: 0.003,
	}
}
