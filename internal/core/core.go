// Package core implements Falcon itself — the paper's contribution: an
// online transfer-optimization agent that evaluates sample transfers
// with a game-theory-inspired utility function (package utility) and
// proposes new settings through an online search algorithm (packages
// optimizer and bayesopt).
//
// The Agent is a pure decision process: one call per sample transfer,
// no clocks or goroutines, which makes it drivable both by the
// simulated testbeds (testbed.Scheduler) and by the real-time Runner in
// this package. Because every Falcon agent maximises the same strictly
// concave utility, competing agents converge to a fair Nash equilibrium
// (§3.1) — reproduced by the Figure 11–13 experiments.
package core

import (
	"fmt"

	"repro/internal/bayesopt"
	"repro/internal/optimizer"
	"repro/internal/transfer"
	"repro/internal/utility"
)

// Algorithm names accepted by NewAgentByName.
const (
	AlgoHillClimbing = "hc"
	AlgoGradient     = "gd"
	AlgoBayesian     = "bo"
	// AlgoDirectSearch and AlgoSPSA are related-work comparators
	// (§5: Balaprakash et al.'s direct search; ProbData's stochastic
	// approximation), not Falcon algorithms.
	AlgoDirectSearch = "direct"
	AlgoSPSA         = "spsa"
)

// Agent tunes the concurrency of one transfer task online. It
// satisfies testbed.Controller.
type Agent struct {
	search optimizer.Search
	params utility.Params

	// fixed values for the knobs a single-parameter agent does not tune
	parallelism int
	pipelining  int

	// utilFn overrides the default Eq 4 utility when non-nil (the
	// Figure 6 experiments swap in the linear-regret Eq 3).
	utilFn UtilityFunc

	history   []Decision
	noHistory bool

	// memo caches decisions across agents sharing a shard; memoSearch
	// is the search's Memoizable facet, asserted once at attach time.
	memo       *DecisionMemo
	memoSearch optimizer.Memoizable
}

// UtilityFunc maps one sample's observables to a utility value:
// concurrency n, parallelism p, aggregate throughput (bits/s), and
// loss rate.
type UtilityFunc func(n, p int, aggregate, loss float64) float64

// Decision records one optimization step for diagnostics.
type Decision struct {
	// Sample is the observation that triggered the decision.
	Sample transfer.Sample
	// Utility is the computed utility of the sample.
	Utility float64
	// Next is the concurrency chosen for the next epoch.
	Next int
}

// NewAgent builds an agent around a search algorithm and utility
// parameters. It returns an error for a nil search or invalid params.
func NewAgent(search optimizer.Search, params utility.Params) (*Agent, error) {
	if search == nil {
		return nil, fmt.Errorf("core: nil search")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Agent{search: search, params: params, parallelism: 1, pipelining: 1}, nil
}

// NewGDAgent returns a Falcon agent using Online Gradient Descent over
// concurrency [1, maxN] with default utility parameters.
func NewGDAgent(maxN int) *Agent {
	a, err := NewAgent(optimizer.NewGradientDescent(maxN), utility.DefaultParams())
	if err != nil {
		panic(err) // unreachable: inputs are valid by construction
	}
	return a
}

// NewBOAgent returns a Falcon agent using Bayesian Optimization over
// concurrency [1, maxN] with default utility parameters.
func NewBOAgent(maxN int, seed int64) *Agent {
	a, err := NewAgent(bayesopt.New(maxN, seed), utility.DefaultParams())
	if err != nil {
		panic(err)
	}
	return a
}

// NewHCAgent returns a Falcon agent using Hill Climbing over
// concurrency [1, maxN] with default utility parameters.
func NewHCAgent(maxN int) *Agent {
	a, err := NewAgent(optimizer.NewHillClimbing(maxN), utility.DefaultParams())
	if err != nil {
		panic(err)
	}
	return a
}

// NewAgentByName builds an agent from an algorithm name ("hc", "gd",
// "bo"). The seed only affects "bo".
func NewAgentByName(algo string, maxN int, seed int64) (*Agent, error) {
	switch algo {
	case AlgoHillClimbing:
		return NewHCAgent(maxN), nil
	case AlgoGradient:
		return NewGDAgent(maxN), nil
	case AlgoBayesian:
		return NewBOAgent(maxN, seed), nil
	case AlgoDirectSearch:
		return NewAgent(optimizer.NewDirectSearch(maxN), utility.DefaultParams())
	case AlgoSPSA:
		return NewAgent(optimizer.NewSPSA(maxN, seed), utility.DefaultParams())
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (want hc, gd, bo, direct, or spsa)", algo)
	}
}

// SetFixedKnobs fixes the parallelism and pipelining the agent attaches
// to every decision (a single-parameter agent tunes only concurrency).
// It returns an error for values below 1.
func (a *Agent) SetFixedKnobs(parallelism, pipelining int) error {
	if parallelism < 1 || pipelining < 1 {
		return fmt.Errorf("core: fixed knobs p=%d q=%d must be ≥ 1", parallelism, pipelining)
	}
	a.parallelism = parallelism
	a.pipelining = pipelining
	return nil
}

// AlgorithmName returns the underlying search algorithm's name.
func (a *Agent) AlgorithmName() string { return a.search.Name() }

// SetUtilityFunc replaces the agent's utility function (nil restores
// the default Eq 4 evaluation). The Figure 6 experiments use it to
// compare linear and nonlinear concurrency regret.
func (a *Agent) SetUtilityFunc(f UtilityFunc) { a.utilFn = f }

// Decide implements the Falcon control loop for one epoch: compute the
// sample's utility, feed it to the search, and return the setting for
// the next sample transfer.
func (a *Agent) Decide(s transfer.Sample) transfer.Setting {
	var u float64
	if a.utilFn != nil {
		u = a.utilFn(s.Setting.Concurrency, s.Setting.Parallelism, s.Throughput, s.Loss)
	} else {
		u = a.params.Evaluate(s.Setting.Concurrency, s.Setting.Parallelism, s.Throughput, s.Loss)
	}
	var next int
	if a.memo != nil {
		next = a.memoDecide(s.Setting.Concurrency, u)
	} else {
		next = a.search.Next(optimizer.Observation{N: s.Setting.Concurrency, Utility: u})
	}
	if !a.noHistory {
		a.history = append(a.history, Decision{Sample: s, Utility: u, Next: next})
	}
	return transfer.Setting{Concurrency: next, Parallelism: a.parallelism, Pipelining: a.pipelining}
}

// History returns a copy of the recorded decisions, so callers can
// hold or mutate the slice without aliasing the agent's live log.
func (a *Agent) History() []Decision {
	return append([]Decision(nil), a.history...)
}

// posteriorSweeper is the optional batched-posterior capability a
// search algorithm can provide (bayesopt.Search does): one call fills
// the whole candidate grid instead of one scalar predict per point.
type posteriorSweeper interface {
	PosteriorSweep(means, stds []float64) bool
}

// PosteriorSweep writes the agent's surrogate posterior over its
// candidate grid into means and stds (each sized to the grid, e.g.
// maxN for a BO agent) and reports whether a posterior exists. It
// returns false for agents whose search has no surrogate (hill
// climbing, gradient descent) and before the BO agent's first fit.
// Multi-agent servers use it to amortise one batched sweep per agent
// per epoch instead of issuing per-point predictions.
func (a *Agent) PosteriorSweep(means, stds []float64) bool {
	ps, ok := a.search.(posteriorSweeper)
	if !ok {
		return false
	}
	return ps.PosteriorSweep(means, stds)
}

// MultiAgent tunes concurrency, parallelism, and pipelining together
// (§4.4, "Falcon_MP") using the Eq 7 utility and a conjugate-gradient
// vector search. It satisfies testbed.Controller.
type MultiAgent struct {
	search optimizer.VecSearch
	params utility.Params
}

// NewMultiAgent builds a multi-parameter agent. It returns an error for
// a nil search or invalid params.
func NewMultiAgent(search optimizer.VecSearch, params utility.Params) (*MultiAgent, error) {
	if search == nil {
		return nil, fmt.Errorf("core: nil vector search")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &MultiAgent{search: search, params: params}, nil
}

// NewDefaultMultiAgent returns a Falcon_MP agent over concurrency
// [1, maxN], parallelism [1, maxP], and pipelining [1, maxQ].
func NewDefaultMultiAgent(maxN, maxP, maxQ int) *MultiAgent {
	m, err := NewMultiAgent(
		optimizer.NewConjugateGD([]int{1, 1, 1}, []int{maxN, maxP, maxQ}),
		utility.DefaultParams(),
	)
	if err != nil {
		panic(err)
	}
	return m
}

// Decide implements testbed.Controller for the multi-parameter agent.
// Pipelining carries no regret term (Eq 7): it is "merely command
// caching" with negligible overhead, so it influences utility only
// through the throughput it unlocks.
func (m *MultiAgent) Decide(s transfer.Sample) transfer.Setting {
	u := utility.MultiParamAggregate(
		s.Setting.Concurrency, s.Setting.Parallelism,
		s.Throughput, s.Loss, m.params.B, m.params.K,
	)
	x := m.search.NextVec(optimizer.VecObservation{
		X:       []int{s.Setting.Concurrency, s.Setting.Parallelism, s.Setting.Pipelining},
		Utility: u,
	})
	return transfer.Setting{Concurrency: x[0], Parallelism: x[1], Pipelining: x[2]}
}
