package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
	"repro/internal/utility"
)

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, utility.DefaultParams()); err == nil {
		t.Error("nil search accepted")
	}
	if _, err := NewAgent(optimizer.NewGradientDescent(10), utility.Params{K: 1}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestNewAgentByName(t *testing.T) {
	for _, algo := range []string{AlgoHillClimbing, AlgoGradient, AlgoBayesian} {
		a, err := NewAgentByName(algo, 32, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if a.AlgorithmName() == "" {
			t.Fatalf("%s: empty algorithm name", algo)
		}
	}
	if _, err := NewAgentByName("nope", 32, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSetFixedKnobs(t *testing.T) {
	a := NewGDAgent(16)
	if err := a.SetFixedKnobs(0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if err := a.SetFixedKnobs(1, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if err := a.SetFixedKnobs(4, 8); err != nil {
		t.Fatal(err)
	}
	s := a.Decide(transfer.Sample{
		Setting:  transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1},
		Duration: 3, Throughput: 1e9,
	})
	if s.Parallelism != 4 || s.Pipelining != 8 {
		t.Fatalf("fixed knobs not applied: %+v", s)
	}
}

func TestAgentRecordsHistory(t *testing.T) {
	a := NewGDAgent(16)
	for i := 0; i < 5; i++ {
		a.Decide(transfer.Sample{
			Setting:  transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1},
			Duration: 3, Throughput: 1e9,
		})
	}
	h := a.History()
	if len(h) != 5 {
		t.Fatalf("history length = %d, want 5", len(h))
	}
	if h[0].Utility == 0 {
		t.Fatal("utility not recorded")
	}
	if h[0].Next < 1 || h[0].Next > 16 {
		t.Fatalf("recorded next %d out of bounds", h[0].Next)
	}
	// History hands out a copy: callers must not be able to corrupt the
	// agent's record, and later decisions must not mutate under them.
	h[0].Utility = -1
	if a.History()[0].Utility == -1 {
		t.Fatal("History aliases the agent's internal slice")
	}
}

func TestAgentPosteriorSweep(t *testing.T) {
	const maxN = 16
	bo := NewBOAgent(maxN, 3)
	means := make([]float64, maxN)
	stds := make([]float64, maxN)

	// No surrogate before the BO search's first fit (random phase).
	if bo.PosteriorSweep(means, stds) {
		t.Fatal("PosteriorSweep reported a posterior before any fit")
	}
	n := 2
	for i := 0; i < 10; i++ {
		set := bo.Decide(transfer.Sample{
			Setting:  transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1},
			Duration: 3, Throughput: float64(1+n%5) * 1e8,
		})
		n = set.Concurrency
	}
	if !bo.PosteriorSweep(means, stds) {
		t.Fatal("PosteriorSweep reported no posterior after 10 decisions")
	}
	for j := range means {
		if math.IsNaN(means[j]) || math.IsNaN(stds[j]) || stds[j] < 0 {
			t.Fatalf("grid point %d: invalid posterior (mean %v, std %v)", j+1, means[j], stds[j])
		}
	}

	// Searches without a surrogate simply decline.
	if NewGDAgent(maxN).PosteriorSweep(means, stds) {
		t.Fatal("gradient-descent agent claimed a posterior sweep")
	}
}

func TestNewMultiAgentValidation(t *testing.T) {
	if _, err := NewMultiAgent(nil, utility.DefaultParams()); err == nil {
		t.Error("nil search accepted")
	}
	if _, err := NewMultiAgent(optimizer.NewConjugateGD([]int{1, 1, 1}, []int{4, 4, 4}), utility.Params{K: 0.5}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMultiAgentDecideShape(t *testing.T) {
	m := NewDefaultMultiAgent(16, 8, 32)
	s := m.Decide(transfer.Sample{
		Setting:  transfer.Setting{Concurrency: 2, Parallelism: 2, Pipelining: 2},
		Duration: 5, Throughput: 5e9,
	})
	if err := s.Validate(); err != nil {
		t.Fatalf("multi-agent produced invalid setting: %v", err)
	}
	if s.Concurrency > 16 || s.Parallelism > 8 || s.Pipelining > 32 {
		t.Fatalf("setting out of bounds: %+v", s)
	}
}

// --- Integration with the simulated testbeds ---

func bigTask(id string, n int) *transfer.Task {
	task, err := transfer.NewTask(id, dataset.Uniform(id, 5000, int64(dataset.GB)),
		transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1})
	if err != nil {
		panic(err)
	}
	return task
}

// runSingle drives one agent on a testbed for `horizon` seconds and
// returns the timeline.
func runSingle(t *testing.T, cfg testbed.Config, agent testbed.Controller, horizon float64) *testbed.Timeline {
	t.Helper()
	eng, err := testbed.NewEngine(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := testbed.NewScheduler(eng, 1)
	task := bigTask("falcon", 2)
	if err := s.Add(testbed.Participant{Task: task, Controller: agent}); err != nil {
		t.Fatal(err)
	}
	return s.Run(horizon, 0.25)
}

func TestGDAgentConvergesOnEmulab(t *testing.T) {
	// Figure 9(a): Emulab, 10 Mbps per process, 100 Mbps link → optimal
	// concurrency 10, ≈0.1 Gbps.
	tl := runSingle(t, testbed.Emulab(10e6), NewGDAgent(32), 300)
	cc := tl.Concurrency.Lookup("falcon")
	if cc == nil {
		t.Fatal("no concurrency series")
	}
	// Post-convergence concurrency must hover around 10 (the paper
	// reports bouncing between 9 and 11).
	tailMean := cc.MeanAfter(120)
	if tailMean < 8 || tailMean > 13 {
		t.Fatalf("tail concurrency = %v, want ≈10", tailMean)
	}
	tput := tl.MeanThroughputGbps("falcon", 120, 300)
	if tput < 0.085 {
		t.Fatalf("converged throughput = %v Gbps, want ≈0.1", tput)
	}
}

func TestBOAgentConvergesOnEmulab(t *testing.T) {
	tl := runSingle(t, testbed.Emulab(10e6), NewBOAgent(32, 42), 300)
	tput := tl.MeanThroughputGbps("falcon", 120, 300)
	if tput < 0.08 {
		t.Fatalf("BO converged throughput = %v Gbps, want ≈0.1", tput)
	}
}

func TestGDAgentConvergesOnHPCLab(t *testing.T) {
	// §4.1: both GD and BO reach >25 Gbps in HPCLab (optimum ≈9).
	tl := runSingle(t, testbed.HPCLab(), NewGDAgent(32), 240)
	tput := tl.MeanThroughputGbps("falcon", 120, 240)
	if tput < 22 {
		t.Fatalf("HPCLab GD throughput = %v Gbps, want >22", tput)
	}
}

func TestHCAgentSlowerThanGDOnLargeOptimum(t *testing.T) {
	// Figures 7–8: with the optimum at ≈48, HC needs far longer than GD.
	cfg := testbed.EmulabGigabit(20.83e6)
	reach := func(agent testbed.Controller) float64 {
		eng, err := testbed.NewEngine(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := testbed.NewScheduler(eng, 1)
		task := bigTask("a", 2)
		if err := s.Add(testbed.Participant{Task: task, Controller: agent}); err != nil {
			t.Fatal(err)
		}
		tl := s.Run(600, 0.25)
		cc := tl.Concurrency.Lookup("a")
		for _, p := range cc.Points {
			if p.Value >= 43 {
				return p.Time
			}
		}
		return math.Inf(1)
	}
	gdTime := reach(NewGDAgent(100))
	hcTime := reach(NewHCAgent(100))
	if math.IsInf(gdTime, 1) {
		t.Fatal("GD never approached 48")
	}
	if math.IsInf(hcTime, 1) {
		t.Fatal("HC never approached 48 within 600s")
	}
	if hcTime < 2.5*gdTime {
		t.Fatalf("HC (%vs) should be much slower than GD (%vs)", hcTime, gdTime)
	}
}

func TestCompetingGDAgentsShareFairly(t *testing.T) {
	// Figure 11: two GD agents on the same testbed converge to
	// near-identical throughput (Jain ≈ 1) while keeping utilization
	// high.
	cfg := testbed.Emulab(10e6)
	eng, err := testbed.NewEngine(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := testbed.NewScheduler(eng, 1)
	if err := s.Add(testbed.Participant{Task: bigTask("a", 2), Controller: NewGDAgent(32)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(testbed.Participant{Task: bigTask("b", 2), Controller: NewGDAgent(32), JoinAt: 120}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(480, 0.25)

	ta := tl.MeanThroughputGbps("a", 300, 480)
	tb := tl.MeanThroughputGbps("b", 300, 480)
	if j := stats.JainIndex([]float64{ta, tb}); j < 0.95 {
		t.Fatalf("Jain index = %v (a=%v, b=%v Gbps), want ≥0.95", j, ta, tb)
	}
	// Aggregate utilization stays high (≥80% of the 0.1 Gbps capacity).
	if ta+tb < 0.08 {
		t.Fatalf("aggregate = %v Gbps, want ≥0.08", ta+tb)
	}
}

func TestAgentsReduceConcurrencyWhenCompetitorJoins(t *testing.T) {
	// Figure 13's mechanism: a solo agent converges near the optimum;
	// when a second Falcon agent joins, the first backs off its
	// concurrency rather than fighting.
	cfg := testbed.Emulab(10e6)
	eng, err := testbed.NewEngine(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := testbed.NewScheduler(eng, 1)
	if err := s.Add(testbed.Participant{Task: bigTask("first", 2), Controller: NewGDAgent(32)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(testbed.Participant{Task: bigTask("second", 2), Controller: NewGDAgent(32), JoinAt: 180}); err != nil {
		t.Fatal(err)
	}
	tl := s.Run(480, 0.25)
	cc := tl.Concurrency.Lookup("first")
	solo := cc.Between(100, 180).Mean()
	contested := cc.Between(320, 480).Mean()
	if contested >= solo {
		t.Fatalf("first agent did not back off: solo %v, contested %v", solo, contested)
	}
}

func TestRunnerIsExercisedBySimEnv(t *testing.T) {
	// The Runner loop is tested against the ftp package's loopback
	// environment in internal/ftp; here we check its input validation.
	if err := Run(nil, nil, nil, RunConfig{}); err == nil {
		t.Fatal("Run accepted nil environment")
	}
}
