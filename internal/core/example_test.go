package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// ExampleAgent_Decide shows a single Falcon decision epoch: a sample
// transfer's observables go in, the next setting comes out.
func ExampleAgent_Decide() {
	agent := core.NewGDAgent(32)
	next := agent.Decide(transfer.Sample{
		Setting:    transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1},
		Duration:   3,
		Throughput: 2e9, // 2 Gbps aggregate
		Loss:       0,
	})
	fmt.Println(next.Concurrency >= 1 && next.Concurrency <= 32)
	// Output: true
}

// Example_simulatedTransfer tunes a transfer on the Emulab testbed and
// reports where Falcon converges.
func Example_simulatedTransfer() {
	cfg := testbed.Emulab(10e6) // optimal concurrency: 10
	cfg.NoiseStdDev = 0
	eng, err := testbed.NewEngine(cfg, 1)
	if err != nil {
		panic(err)
	}
	task, err := transfer.NewTask("demo", dataset.Uniform("demo", 2000, int64(dataset.GB)),
		transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		panic(err)
	}
	sched := testbed.NewScheduler(eng, 1)
	if err := sched.Add(testbed.Participant{Task: task, Controller: core.NewGDAgent(32)}); err != nil {
		panic(err)
	}
	tl := sched.Run(240, 0.25)
	cc := tl.Concurrency.Lookup("demo").MeanAfter(120)
	fmt.Println(cc > 7 && cc < 13)
	// Output: true
}
