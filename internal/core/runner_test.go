package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transfer"
)

// fakeEnv is a scripted Environment for Runner unit tests.
type fakeEnv struct {
	applied    []transfer.Setting
	samples    []transfer.Sample
	measureErr error
	applyErr   error
	doneAfter  int // Done() returns true after this many Measure calls
	measures   int
}

func (f *fakeEnv) Apply(s transfer.Setting) error {
	if f.applyErr != nil {
		return f.applyErr
	}
	f.applied = append(f.applied, s)
	return nil
}

func (f *fakeEnv) Measure(time.Duration) (transfer.Sample, error) {
	if f.measureErr != nil {
		return transfer.Sample{}, f.measureErr
	}
	f.measures++
	i := f.measures - 1
	if i >= len(f.samples) {
		i = len(f.samples) - 1
	}
	return f.samples[i], nil
}

func (f *fakeEnv) Done() bool { return f.measures >= f.doneAfter }

func sampleAt(n int, tput float64) transfer.Sample {
	return transfer.Sample{
		Setting:    transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1},
		Duration:   1,
		Throughput: tput,
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(context.Background(), nil, NewGDAgent(4), RunConfig{}); err == nil {
		t.Error("nil environment accepted")
	}
	env := &fakeEnv{samples: []transfer.Sample{sampleAt(1, 1e9)}, doneAfter: 1}
	if err := Run(context.Background(), env, nil, RunConfig{}); err == nil {
		t.Error("nil decider accepted")
	}
}

func TestRunCompletesAndAppliesDecisions(t *testing.T) {
	env := &fakeEnv{
		samples:   []transfer.Sample{sampleAt(2, 1e9), sampleAt(3, 1.5e9), sampleAt(4, 2e9)},
		doneAfter: 4,
	}
	agent := NewGDAgent(16)
	var observed int
	err := Run(context.Background(), env, agent, RunConfig{
		SampleInterval: time.Millisecond,
		OnSample:       func(transfer.Sample, transfer.Setting) { observed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.applied) == 0 {
		t.Fatal("no settings applied")
	}
	if observed != len(env.applied) {
		t.Fatalf("OnSample fired %d times for %d applies", observed, len(env.applied))
	}
	for _, s := range env.applied {
		if err := s.Validate(); err != nil {
			t.Fatalf("applied invalid setting: %v", err)
		}
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	env := &fakeEnv{samples: []transfer.Sample{sampleAt(2, 1e9)}, doneAfter: 1 << 30}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Run(ctx, env, NewGDAgent(8), RunConfig{SampleInterval: time.Millisecond})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPropagatesMeasureError(t *testing.T) {
	boom := errors.New("boom")
	env := &fakeEnv{measureErr: boom, doneAfter: 1 << 30}
	err := Run(context.Background(), env, NewGDAgent(8), RunConfig{SampleInterval: time.Millisecond})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunPropagatesApplyError(t *testing.T) {
	boom := errors.New("nope")
	env := &fakeEnv{
		samples:   []transfer.Sample{sampleAt(2, 1e9)},
		applyErr:  boom,
		doneAfter: 1 << 30,
	}
	err := Run(context.Background(), env, NewGDAgent(8), RunConfig{SampleInterval: time.Millisecond})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunReturnsNilWhenDoneDuringMeasure(t *testing.T) {
	env := &fakeEnv{samples: []transfer.Sample{sampleAt(2, 1e9)}, doneAfter: 1}
	if err := Run(context.Background(), env, NewGDAgent(8), RunConfig{SampleInterval: time.Millisecond}); err != nil {
		t.Fatalf("err = %v, want nil on completion", err)
	}
	if len(env.applied) != 0 {
		t.Fatal("should not apply after completion")
	}
}

func TestRunDefaultsSampleInterval(t *testing.T) {
	// A zero interval must default rather than busy-loop; completing
	// after one measure keeps the test fast.
	env := &fakeEnv{samples: []transfer.Sample{sampleAt(2, 1e9)}, doneAfter: 1}
	if err := Run(context.Background(), env, NewGDAgent(8), RunConfig{}); err != nil {
		t.Fatal(err)
	}
}

// bumpDecider raises concurrency by one each epoch — deterministic, so
// ordering tests can predict every decision.
type bumpDecider struct{}

func (bumpDecider) Decide(s transfer.Sample) transfer.Setting {
	n := s.Setting
	n.Concurrency++
	return n
}

func TestRunOnSampleOrdering(t *testing.T) {
	env := &fakeEnv{
		samples:   []transfer.Sample{sampleAt(2, 1e9), sampleAt(3, 1.5e9), sampleAt(4, 2e9)},
		doneAfter: 4,
	}
	var seen []int
	var nexts []transfer.Setting
	err := Run(context.Background(), env, bumpDecider{}, RunConfig{
		SampleInterval: time.Millisecond,
		OnSample: func(s transfer.Sample, next transfer.Setting) {
			seen = append(seen, s.Setting.Concurrency)
			// The hook runs before the decision is applied: the apply
			// log must still be one behind.
			if len(env.applied) != len(seen)-1 {
				t.Errorf("OnSample %d fired after apply (%d applied)", len(seen), len(env.applied))
			}
			nexts = append(nexts, next)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("OnSample saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("OnSample order %v, want %v", seen, want)
		}
	}
	// Every next handed to the hook is exactly what was applied, in order.
	if len(env.applied) != len(nexts) {
		t.Fatalf("%d applies for %d hooks", len(env.applied), len(nexts))
	}
	for i := range nexts {
		if env.applied[i] != nexts[i] {
			t.Fatalf("apply %d = %v, hook saw %v", i, env.applied[i], nexts[i])
		}
	}
}
