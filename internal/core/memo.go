package core

import (
	"math"

	"repro/internal/bayesopt"
	"repro/internal/fastrand"
	"repro/internal/optimizer"
	"repro/internal/utility"
)

// DecisionMemo caches (searcher state, observation) → (proposal,
// successor state) for snapshot-able searchers (hill climbing, gradient
// descent). Staggered fleets contain many sessions running the same
// algorithm under the same bounds; once measurement noise is off, those
// sessions observe identical sample sequences and their searchers walk
// identical state trajectories — the session-level analogue of the
// netsim flow classes, where one representative's work answers for the
// whole equivalence class.
//
// The memo is transparent by construction: the key embeds the
// searcher's complete decision state (optimizer.Snapshot) plus the
// exact observation, and a hit restores the stored successor state, so
// a memoized agent is bitwise indistinguishable from an unmemoized one
// (TestDecisionMemoTransparent). A memo must only be shared by agents
// stepped from a single goroutine (one memo per fleet shard); it
// performs no locking.
type DecisionMemo struct {
	entries map[decisionKey]decisionVal
	limit   int
	hits    uint64
	lookups uint64
}

type decisionKey struct {
	snap optimizer.Snapshot
	n    int32
	u    float64
}

type decisionVal struct {
	next  int32
	after optimizer.Snapshot
}

// DefaultDecisionMemoEntries bounds a memo built with size ≤ 0. An
// entry is ~200 B, so the default costs at most a few MiB per shard.
const DefaultDecisionMemoEntries = 1 << 14

// NewDecisionMemo returns a memo holding at most size entries
// (DefaultDecisionMemoEntries if size ≤ 0). When full, the memo is
// cleared wholesale — fleet decision states recur within an epoch or
// two, so a cleared memo repopulates almost immediately, and wholesale
// clearing keeps the hit path free of eviction bookkeeping.
func NewDecisionMemo(size int) *DecisionMemo {
	if size <= 0 {
		size = DefaultDecisionMemoEntries
	}
	return &DecisionMemo{entries: make(map[decisionKey]decisionVal), limit: size}
}

// Stats returns the number of cache hits and total lookups so far.
func (m *DecisionMemo) Stats() (hits, lookups uint64) { return m.hits, m.lookups }

func (m *DecisionMemo) lookup(k decisionKey) (decisionVal, bool) {
	m.lookups++
	v, ok := m.entries[k]
	if ok {
		m.hits++
	}
	return v, ok
}

func (m *DecisionMemo) store(k decisionKey, v decisionVal) {
	if len(m.entries) >= m.limit {
		clear(m.entries)
	}
	m.entries[k] = v
}

// SetDecisionMemo attaches a shared decision memo to the agent and
// reports whether the agent's searcher supports memoization (only
// snapshot-able searchers do; BO memoizes at the GP layer instead —
// see Agent.SetSweepMemo). A nil memo detaches.
func (a *Agent) SetDecisionMemo(m *DecisionMemo) bool {
	if m == nil {
		a.memo, a.memoSearch = nil, nil
		return false
	}
	ms, ok := a.search.(optimizer.Memoizable)
	if !ok {
		return false
	}
	a.memo, a.memoSearch = m, ms
	return true
}

// SetSweepMemo attaches a shared GP fit/sweep memo to a BO agent and
// reports whether the agent's searcher is BO-backed. A nil memo
// detaches. Like DecisionMemo, a SweepMemo must only be shared within
// one scheduling goroutine (one per fleet shard).
func (a *Agent) SetSweepMemo(m *bayesopt.SweepMemo) bool {
	bs, ok := a.search.(*bayesopt.Search)
	if !ok {
		return false
	}
	bs.SetSweepMemo(m)
	return true
}

// DisableHistory stops the agent from appending to its diagnostic
// decision log. The log is the one per-agent allocation that grows
// without bound (one Decision per epoch); fleet runs with a million
// agents disable it and rely on the timeline/aggregate recorders
// instead.
func (a *Agent) DisableHistory() { a.noHistory = true }

// memoDecide is Decide's search step with the memo consulted first.
// Correctness argument: searchers implementing optimizer.Memoizable are
// pure functions of (snapshot, observation) — equal keys therefore
// imply the live path would produce exactly the stored proposal and
// successor state, so restoring them is indistinguishable from running
// the search. NaN utilities never hit (NaN compares unequal to itself
// as a map key), so they bypass the memo entirely.
func (a *Agent) memoDecide(n int, u float64) int {
	obs := optimizer.Observation{N: n, Utility: u}
	if math.IsNaN(u) || n < math.MinInt32 || n > math.MaxInt32 {
		return a.search.Next(obs)
	}
	snap, ok := a.memoSearch.MemoSnapshot()
	if !ok {
		return a.search.Next(obs)
	}
	key := decisionKey{snap: snap, n: int32(n), u: u}
	if v, hit := a.memo.lookup(key); hit {
		a.memoSearch.RestoreMemo(v.after)
		return int(v.next)
	}
	next := a.search.Next(obs)
	if after, ok := a.memoSearch.MemoSnapshot(); ok && next >= 0 && next <= math.MaxInt32 {
		a.memo.store(key, decisionVal{next: int32(next), after: after})
	}
	return next
}

// NewFleetAgent builds an agent for fleet-scale runs: the same decision
// arithmetic as NewAgentByName, but with the per-agent footprint pared
// down — the diagnostic decision history is off, and the seeded BO
// searcher draws from 8-byte fastrand sources instead of math/rand's
// ~4.9 KiB table sources (two tables per BO agent ≈ 9.8 KiB, which
// alone is ~3 GiB across a million sessions). The BO random stream
// therefore differs from NewAgentByName's; the pinned reproduce
// experiments keep the math/rand constructors.
func NewFleetAgent(algo string, maxN int, seed int64) (*Agent, error) {
	var a *Agent
	var err error
	if algo == AlgoBayesian {
		a, err = NewAgent(
			bayesopt.NewWithSources(maxN, fastrand.New(seed), fastrand.New(seed+1)),
			utility.DefaultParams(),
		)
	} else {
		a, err = NewAgentByName(algo, maxN, seed)
	}
	if err != nil {
		return nil, err
	}
	a.DisableHistory()
	return a, nil
}
