package core

import (
	"math"
	"testing"

	"repro/internal/transfer"
)

// sampleFor builds a deterministic noise-free sample whose throughput
// follows a concave curve in n — enough structure for every searcher
// to produce a nontrivial trajectory.
func sampleFor(n int, t float64) transfer.Sample {
	tput := 1e9 * (math.Log(float64(n)+1) - 0.02*float64(n) + 1)
	return transfer.Sample{
		Setting:    transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1},
		Duration:   3,
		Throughput: tput,
		Loss:       0.001 * float64(n),
		Time:       t,
	}
}

// TestDecisionMemoTransparent drives memoized and unmemoized agents of
// each snapshot-able algorithm through identical sample sequences and
// requires identical decisions, then replays a staggered twin against
// the warm memo and requires hits.
func TestDecisionMemoTransparent(t *testing.T) {
	for _, algo := range []string{AlgoHillClimbing, AlgoGradient} {
		t.Run(algo, func(t *testing.T) {
			memo := NewDecisionMemo(0)
			warm, err := NewFleetAgent(algo, 16, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.SetDecisionMemo(memo) {
				t.Fatalf("%s agent rejected decision memo", algo)
			}
			plain, _ := NewAgentByName(algo, 16, 1)

			var trace []int
			n1, n2 := 2, 2
			for step := 0; step < 200; step++ {
				now := float64(step) * 3
				a := plain.Decide(sampleFor(n1, now))
				b := warm.Decide(sampleFor(n2, now))
				if a.Concurrency != b.Concurrency {
					t.Fatalf("step %d: plain chose %d, memoized %d", step, a.Concurrency, b.Concurrency)
				}
				trace = append(trace, a.Concurrency)
				n1, n2 = a.Concurrency, b.Concurrency
			}

			twin, _ := NewFleetAgent(algo, 16, 1)
			twin.SetDecisionMemo(memo)
			h0, _ := memo.Stats()
			n := 2
			for step := 0; step < 200; step++ {
				got := twin.Decide(sampleFor(n, float64(step)*3)).Concurrency
				if got != trace[step] {
					t.Fatalf("twin step %d: chose %d, trace has %d", step, got, trace[step])
				}
				n = got
			}
			h1, l1 := memo.Stats()
			if h1-h0 != 200 {
				t.Fatalf("twin replay hit %d/200 steps (lookups %d)", h1-h0, l1)
			}
		})
	}
}

// TestDecisionMemoRejectsBO checks that BO agents decline the
// state-snapshot memo (they memoize at the GP layer) but accept the
// sweep memo, and vice versa for hc.
func TestDecisionMemoRejectsBO(t *testing.T) {
	bo, err := NewFleetAgent(AlgoBayesian, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bo.SetDecisionMemo(NewDecisionMemo(0)) {
		t.Fatal("BO agent accepted a decision memo")
	}
	if !bo.SetSweepMemo(nil) {
		t.Fatal("BO agent rejected a sweep memo attach")
	}
	hc, _ := NewFleetAgent(AlgoHillClimbing, 16, 1)
	if hc.SetSweepMemo(nil) {
		t.Fatal("hc agent accepted a sweep memo")
	}
}

// TestFleetAgentHistoryOff pins the fleet constructor's memory diet:
// no decision history accumulates.
func TestFleetAgentHistoryOff(t *testing.T) {
	a, err := NewFleetAgent(AlgoHillClimbing, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	for step := 0; step < 50; step++ {
		n = a.Decide(sampleFor(n, float64(step)*3)).Concurrency
	}
	if h := a.History(); len(h) != 0 {
		t.Fatalf("fleet agent recorded %d history entries, want 0", len(h))
	}
}

// TestFleetAgentMatchesByNameForSeedless pins that hc/gd fleet agents
// decide exactly like their NewAgentByName counterparts (only BO's rng
// source differs).
func TestFleetAgentMatchesByNameForSeedless(t *testing.T) {
	for _, algo := range []string{AlgoHillClimbing, AlgoGradient} {
		fa, err := NewFleetAgent(algo, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		ba, _ := NewAgentByName(algo, 16, 1)
		n1, n2 := 2, 2
		for step := 0; step < 100; step++ {
			now := float64(step) * 3
			a := fa.Decide(sampleFor(n1, now)).Concurrency
			b := ba.Decide(sampleFor(n2, now)).Concurrency
			if a != b {
				t.Fatalf("%s step %d: fleet %d != byname %d", algo, step, a, b)
			}
			n1, n2 = a, b
		}
	}
}
