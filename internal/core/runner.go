package core

import (
	"context"
	"time"

	"repro/internal/session"
	"repro/internal/transfer"
)

// Decider is the decision interface shared by Agent and MultiAgent
// (and by the baselines package): one setting per sample transfer. It
// is an alias of session.Decider — the simulated scheduler and the
// real-time runner accept exactly the same controllers.
type Decider = session.Decider

// Environment is a live transfer whose knobs Falcon can change and
// whose performance it can measure. The real-FTP adapter (package ftp)
// implements it on the wall clock; testbed.SimEnvironment implements
// it on simulated time.
type Environment = session.Environment

// RunConfig parameterises Run.
type RunConfig struct {
	// SampleInterval is the duration of each sample transfer. Values
	// ≤ 0 default to 3 s (the paper's LAN setting).
	SampleInterval time.Duration
	// Warmup, when positive, discards that long a measurement after
	// every setting change before the next sample accumulates —
	// the wall-clock counterpart of the scheduler's warm-up window.
	Warmup time.Duration
	// ID names the session in emitted events. Empty defaults to
	// "session".
	ID string
	// Events, when non-nil, receives the session's typed event stream
	// (join, sample, decision, apply, finish, error).
	Events session.Sink
	// OnSample, when non-nil, observes every (sample, next setting)
	// pair — the hook experiments and CLIs use for live reporting.
	OnSample func(s transfer.Sample, next transfer.Setting)
}

// Run drives a Decider against a live Environment until the transfer
// completes or the context is cancelled. It returns nil on completion,
// the context error on cancellation, and any Apply/Measure failure
// otherwise.
//
// Run is a thin wall-clock instantiation of the session loop: the
// epoch cadence, decision flow, and event stream are the same code the
// simulated testbeds execute (testbed.Scheduler orchestrates the
// identical session.Session over the engine's virtual clock).
func Run(ctx context.Context, env Environment, d Decider, cfg RunConfig) error {
	return session.Run(ctx, env, d, session.Config{
		ID:       cfg.ID,
		Interval: cfg.SampleInterval.Seconds(),
		Warmup:   cfg.Warmup.Seconds(),
		Events:   cfg.Events,
		OnSample: cfg.OnSample,
	})
}
