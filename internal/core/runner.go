package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/transfer"
)

// Decider is the decision interface shared by Agent and MultiAgent
// (and by the baselines package): one setting per sample transfer.
type Decider interface {
	Decide(s transfer.Sample) transfer.Setting
}

// Environment is a live transfer whose knobs Falcon can change and
// whose performance it can measure. The real-FTP adapter (package ftp)
// and any future GridFTP/bbcp integration implement it.
type Environment interface {
	// Apply reconfigures the running transfer.
	Apply(s transfer.Setting) error
	// Measure blocks for roughly d while the transfer proceeds, then
	// returns the observed sample. The transfer continues throughout —
	// Falcon's monitoring runs beside the data movement, never pausing
	// it (§3.2).
	Measure(d time.Duration) (transfer.Sample, error)
	// Done reports whether the transfer has completed.
	Done() bool
}

// RunConfig parameterises Run.
type RunConfig struct {
	// SampleInterval is the duration of each sample transfer. Values
	// ≤ 0 default to 3 s (the paper's LAN setting).
	SampleInterval time.Duration
	// OnSample, when non-nil, observes every (sample, next setting)
	// pair — the hook experiments and CLIs use for live reporting.
	OnSample func(s transfer.Sample, next transfer.Setting)
}

// Run drives a Decider against a live Environment until the transfer
// completes or the context is cancelled. It returns nil on completion,
// the context error on cancellation, and any Apply/Measure failure
// otherwise.
func Run(ctx context.Context, env Environment, d Decider, cfg RunConfig) error {
	if env == nil {
		return errors.New("core: nil environment")
	}
	if d == nil {
		return errors.New("core: nil decider")
	}
	interval := cfg.SampleInterval
	if interval <= 0 {
		interval = 3 * time.Second
	}
	for !env.Done() {
		if err := ctx.Err(); err != nil {
			return err
		}
		sample, err := env.Measure(interval)
		if err != nil {
			return fmt.Errorf("core: measure: %w", err)
		}
		if env.Done() {
			return nil
		}
		next := d.Decide(sample)
		if cfg.OnSample != nil {
			cfg.OnSample(sample, next)
		}
		if err := env.Apply(next); err != nil {
			return fmt.Errorf("core: apply %v: %w", next, err)
		}
	}
	return nil
}
