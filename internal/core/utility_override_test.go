package core

import (
	"testing"

	"repro/internal/transfer"
	"repro/internal/utility"
)

func TestSetUtilityFuncOverridesDefault(t *testing.T) {
	a := NewGDAgent(16)
	called := 0
	a.SetUtilityFunc(func(n, p int, agg, loss float64) float64 {
		called++
		return utility.LinearPenalty(n, agg/float64(n), loss, 10, 0.01)
	})
	sample := transfer.Sample{
		Setting:    transfer.Setting{Concurrency: 4, Parallelism: 1, Pipelining: 1},
		Duration:   3,
		Throughput: 1e9,
	}
	a.Decide(sample)
	if called != 1 {
		t.Fatalf("override called %d times, want 1", called)
	}
	// The recorded utility must be the override's value, not Eq 4's.
	want := utility.LinearPenalty(4, 0.25e9, 0, 10, 0.01)
	if got := a.History()[0].Utility; got != want {
		t.Fatalf("recorded utility %v, want %v", got, want)
	}
	// Restoring the default switches back to Eq 4.
	a.SetUtilityFunc(nil)
	a.Decide(sample)
	eq4 := utility.DefaultParams().Evaluate(4, 1, 1e9, 0)
	if got := a.History()[1].Utility; got != eq4 {
		t.Fatalf("restored utility %v, want Eq4 %v", got, eq4)
	}
}

func TestRelatedWorkAgentsByName(t *testing.T) {
	for _, algo := range []string{AlgoDirectSearch, AlgoSPSA} {
		a, err := NewAgentByName(algo, 16, 3)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		s := a.Decide(transfer.Sample{
			Setting:    transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1},
			Duration:   3,
			Throughput: 1e9,
		})
		if err := s.Validate(); err != nil {
			t.Fatalf("%s produced invalid setting: %v", algo, err)
		}
	}
}
