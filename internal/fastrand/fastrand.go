// Package fastrand provides a compact deterministic rand.Source64 for
// fleet-scale construction. math/rand's default source carries a
// 607-word lagged-Fibonacci table (~4.9 KiB) — negligible for one
// agent, but two sources per Bayesian-optimization searcher across a
// million-session fleet is gigabytes of rng state alone. Source is an
// 8-byte SplitMix64 generator: statistically strong for simulation
// workloads, trivially seedable, and cheap to construct in bulk.
//
// The pinned reproduce experiments keep math/rand (their outputs are
// byte-frozen against the paper figures); only fleet-scale constructors
// (core.NewFleetAgent) draw from this package.
package fastrand

import "math/rand"

// Source is a SplitMix64 pseudo-random source. It implements
// rand.Source64, so rand.New(fastrand.New(seed)) is a drop-in for
// rand.New(rand.NewSource(seed)) with an ~600× smaller footprint (and
// a different, unrelated stream).
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// New returns a source seeded with seed.
func New(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64: one SplitMix64 step (Steele,
// Lea & Flood 2014 — the golden-gamma Weyl sequence passed through a
// variant of the MurmurHash3 finalizer).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }
