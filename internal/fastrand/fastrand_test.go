package fastrand

import (
	"math/rand"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if got := s.Uint64(); got != first {
		t.Fatalf("after reseed got %d, want %d", got, first)
	}
}

// TestRandAdapter drives the source through math/rand's façade: Intn
// stays in range and Float64 in [0, 1), the two draws the BO searcher
// and the Hedge portfolio make.
func TestRandAdapter(t *testing.T) {
	r := rand.New(New(3))
	for i := 0; i < 10000; i++ {
		if n := r.Intn(8); n < 0 || n >= 8 {
			t.Fatalf("Intn(8) = %d out of range", n)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

// TestRoughUniformity sanity-checks the adapter's Intn distribution —
// fleet init phases draw uniform concurrencies from it.
func TestRoughUniformity(t *testing.T) {
	r := rand.New(New(11))
	const draws, buckets = 80000, 8
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d: %d draws, want ≈%d", b, c, want)
		}
	}
}
