// Package utility implements Falcon's game-theory-inspired utility
// functions (§3.1 of the paper) and the analysis that justifies them.
//
// A utility function maps the observables of one sample transfer —
// concurrency n, average per-transfer throughput t, and packet-loss
// rate L — to a scalar score. The paper develops four forms:
//
//	Eq 2:  u = n·t − n·t·L·B                 (loss regret only)
//	Eq 3:  u = n·t − n·t·L·B − n·t·n·C       (linear concurrency regret)
//	Eq 4:  u = n·t/Kⁿ − n·t·L·B              (nonlinear concurrency regret)
//	Eq 7:  u = (n·p)·t/K^(n·p) − n·t·L·B     (multi-parameter form)
//
// Only Eq 4 delivers both high single-transfer performance and fair,
// optimal convergence under competition; its strict concavity (for
// n < 2/ln K, Eq 5) is what guarantees Nash equilibrium between
// competing Falcon agents.
package utility

import (
	"fmt"
	"math"
)

// Default coefficients from §3.1.
const (
	// DefaultB is the packet-loss punishment coefficient; B = 10 keeps
	// loss below 1 % while achieving >95 % utilization with common TCP
	// variants.
	DefaultB = 10.0
	// DefaultK is the nonlinear concurrency-regret base: each extra
	// concurrent transfer must buy ≥2 % more throughput. The paper
	// selects 1.02 as the balance between stability and the concave
	// region's upper limit (n ≤ 2/ln 1.02 ≈ 198).
	DefaultK = 1.02
)

// Params configures a utility function.
type Params struct {
	// B is the loss-regret coefficient (Eq 2–4, 7).
	B float64
	// C is the linear concurrency-regret coefficient (Eq 3 only).
	C float64
	// K is the nonlinear concurrency-regret base (Eq 4, 7); must be >1.
	K float64
}

// DefaultParams returns the paper's defaults (B=10, K=1.02).
func DefaultParams() Params { return Params{B: DefaultB, K: DefaultK} }

// Validate checks coefficient sanity for the nonlinear forms.
func (p Params) Validate() error {
	if p.B < 0 {
		return fmt.Errorf("utility: negative B %v", p.B)
	}
	if p.C < 0 {
		return fmt.Errorf("utility: negative C %v", p.C)
	}
	if p.K <= 1 {
		return fmt.Errorf("utility: K %v must exceed 1", p.K)
	}
	return nil
}

// LossRegret evaluates Eq 2: u = n·t − n·t·L·B.
//
// n is the number of concurrent transfers, t the average throughput of
// each (so n·t is the task's aggregate throughput), L the packet loss
// rate in [0,1], and B the loss punishment coefficient.
func LossRegret(n int, t, L, B float64) float64 {
	nt := float64(n) * t
	return nt - nt*L*B
}

// LinearPenalty evaluates Eq 3: u = n·t − n·t·L·B − n·t·n·C.
//
// The linear concurrency regret C either caps throughput prematurely
// (large C) or destabilises multi-agent convergence (small C) — the
// failure modes of Figure 6 that motivate the nonlinear form.
func LinearPenalty(n int, t, L, B, C float64) float64 {
	nt := float64(n) * t
	return nt - nt*L*B - nt*float64(n)*C
}

// Nonlinear evaluates Eq 4: u = n·t/Kⁿ − n·t·L·B — Falcon's utility.
func Nonlinear(n int, t, L, B, K float64) float64 {
	nt := float64(n) * t
	return nt/math.Pow(K, float64(n)) - nt*L*B
}

// MultiParam evaluates Eq 7 for concurrency n and parallelism p:
//
//	u = (n·p)·t/K^(n·p) − n·t·L·B
//
// following the paper's notation literally: t is the throughput of a
// single network connection, so (n·p)·t is the task's aggregate
// throughput and the regret exponent counts total connections n·p.
func MultiParam(n, p int, t, L, B, K float64) float64 {
	np := float64(n * p)
	return np*t/math.Pow(K, np) - float64(n)*t*L*B
}

// Evaluate applies the Params' nonlinear utility (Eq 4, or Eq 7 when
// parallelism > 1) to a sample's observables.
func (p Params) Evaluate(n, parallelism int, aggregateThroughput, loss float64) float64 {
	if n < 1 {
		return 0
	}
	t := aggregateThroughput / float64(n)
	if parallelism <= 1 {
		return Nonlinear(n, t, loss, p.B, p.K)
	}
	return MultiParamAggregate(n, parallelism, aggregateThroughput, loss, p.B, p.K)
}

// MultiParamAggregate is MultiParam expressed in terms of the task's
// aggregate throughput (n·t) rather than per-transfer throughput.
func MultiParamAggregate(n, p int, aggregate, L, B, K float64) float64 {
	np := float64(n * p)
	return aggregate/math.Pow(K, np) - aggregate*L*B
}

// SecondDerivative evaluates Eq 5, the second derivative of
// f(n) = n·t/Kⁿ with respect to n:
//
//	f''(n) = t·K⁻ⁿ·ln K·(−2 + n·ln K)
//
// Strict concavity requires f”(n) < 0, i.e. n < 2/ln K.
func SecondDerivative(n, t, K float64) float64 {
	lnK := math.Log(K)
	return t * math.Pow(K, -n) * lnK * (-2 + n*lnK)
}

// ConcaveLimit returns the upper bound 2/ln K on concurrency for which
// Eq 4 remains strictly concave (≈198 for K=1.02, ≈200 for K=1.01 as
// discussed in §3.1).
func ConcaveLimit(K float64) float64 {
	if K <= 1 {
		return math.Inf(1)
	}
	return 2 / math.Log(K)
}

// Curve tabulates a utility function over concurrency values 1..maxN
// using a throughput model: thr(n) is the aggregate throughput obtained
// with n concurrent transfers. It returns utilities indexed by n-1.
// This generates the *estimated* utility curves of Figure 6(a).
func Curve(maxN int, thr func(n int) float64, u func(n int, aggregate float64) float64) []float64 {
	out := make([]float64, maxN)
	for n := 1; n <= maxN; n++ {
		out[n-1] = u(n, thr(n))
	}
	return out
}

// ArgmaxCurve returns the concurrency (1-based) with the highest value
// in a Curve result. It panics on an empty slice.
func ArgmaxCurve(curve []float64) int {
	if len(curve) == 0 {
		panic("utility: empty curve")
	}
	best, bestN := curve[0], 1
	for i, v := range curve[1:] {
		if v > best {
			best, bestN = v, i+2
		}
	}
	return bestN
}

// SaturatingThroughput returns the throughput model used throughout the
// paper's analytical figures: aggregate throughput grows linearly at
// perProc per concurrent transfer until it saturates at capacity.
func SaturatingThroughput(perProc, capacity float64) func(n int) float64 {
	return func(n int) float64 {
		t := perProc * float64(n)
		if t > capacity {
			return capacity
		}
		return t
	}
}
