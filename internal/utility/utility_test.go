package utility

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Params{
		{B: -1, K: 1.02},
		{B: 10, C: -0.1, K: 1.02},
		{B: 10, K: 1},
		{B: 10, K: 0.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) did not error", p)
		}
	}
}

func TestLossRegretZeroLossIsAggregate(t *testing.T) {
	// With no loss, Eq 2 reduces to aggregate throughput n·t.
	if got := LossRegret(4, 2.5, 0, 10); got != 10 {
		t.Fatalf("LossRegret = %v, want 10", got)
	}
}

func TestLossRegretPenalty(t *testing.T) {
	// 1% loss with B=10 removes 10% of utility.
	base := LossRegret(4, 2.5, 0, 10)
	withLoss := LossRegret(4, 2.5, 0.01, 10)
	if !approx(withLoss, base*0.9, 1e-12) {
		t.Fatalf("1%% loss: %v, want %v", withLoss, base*0.9)
	}
	// 10% loss with B=10 drives utility to zero.
	if got := LossRegret(4, 2.5, 0.1, 10); !approx(got, 0, 1e-12) {
		t.Fatalf("10%% loss: %v, want 0", got)
	}
}

func TestLinearPenalty(t *testing.T) {
	// Eq 3 at C=0 equals Eq 2.
	if got, want := LinearPenalty(4, 2.5, 0.01, 10, 0), LossRegret(4, 2.5, 0.01, 10); got != want {
		t.Fatalf("C=0: %v != %v", got, want)
	}
	// Each unit of concurrency at C=0.01 costs n·t·n·C.
	got := LinearPenalty(4, 2.5, 0, 10, 0.01)
	want := 10 - 10*4*0.01
	if !approx(got, want, 1e-12) {
		t.Fatalf("LinearPenalty = %v, want %v", got, want)
	}
}

func TestNonlinearMatchesHandComputation(t *testing.T) {
	// u = n·t/K^n − n·t·L·B with n=10, t=1, K=1.02, L=0.005, B=10.
	nt := 10.0
	want := nt/math.Pow(1.02, 10) - nt*0.005*10
	if got := Nonlinear(10, 1, 0.005, 10, 1.02); !approx(got, want, 1e-12) {
		t.Fatalf("Nonlinear = %v, want %v", got, want)
	}
}

func TestMultiParamReducesToNonlinearAtP1(t *testing.T) {
	got := MultiParam(8, 1, 1.5, 0.002, 10, 1.02)
	want := Nonlinear(8, 1.5, 0.002, 10, 1.02)
	if !approx(got, want, 1e-12) {
		t.Fatalf("MultiParam(p=1) = %v, want %v", got, want)
	}
}

func TestMultiParamPenalisesTotalConnections(t *testing.T) {
	// Same aggregate throughput, more connections → lower utility.
	// n=4, p=4 (16 conns) at per-conn t=1 vs n=16, p=1 at t=1: identical
	// aggregate and exponent; now raise p with aggregate fixed.
	lowConn := MultiParamAggregate(4, 1, 16, 0, 10, 1.02)
	highConn := MultiParamAggregate(4, 4, 16, 0, 10, 1.02)
	if highConn >= lowConn {
		t.Fatalf("more connections should cost utility: %v vs %v", highConn, lowConn)
	}
}

func TestEvaluateDispatch(t *testing.T) {
	p := DefaultParams()
	agg := 12.0
	if got, want := p.Evaluate(6, 1, agg, 0.001), Nonlinear(6, 2, 0.001, p.B, p.K); !approx(got, want, 1e-12) {
		t.Fatalf("Evaluate p=1: %v, want %v", got, want)
	}
	if got, want := p.Evaluate(6, 2, agg, 0.001), MultiParamAggregate(6, 2, agg, 0.001, p.B, p.K); !approx(got, want, 1e-12) {
		t.Fatalf("Evaluate p=2: %v, want %v", got, want)
	}
	if got := p.Evaluate(0, 1, agg, 0); got != 0 {
		t.Fatalf("Evaluate n=0 = %v, want 0", got)
	}
}

func TestSecondDerivativeEq5(t *testing.T) {
	// Hand evaluation of Eq 5 at n=10, t=1, K=1.02.
	lnK := math.Log(1.02)
	want := math.Pow(1.02, -10) * lnK * (-2 + 10*lnK)
	if got := SecondDerivative(10, 1, 1.02); !approx(got, want, 1e-15) {
		t.Fatalf("SecondDerivative = %v, want %v", got, want)
	}
	if want >= 0 {
		t.Fatal("f'' should be negative inside the concave region")
	}
}

func TestConcaveLimit(t *testing.T) {
	// §3.1: K=1.01 → limit ≈ 200; K=1.02 → ≈ 198/2 ≈ 101... the paper
	// quotes "less than or equal to 200" for K=1.01.
	if got := ConcaveLimit(1.01); math.Abs(got-201) > 1 {
		t.Fatalf("ConcaveLimit(1.01) = %v, want ≈201", got)
	}
	if got := ConcaveLimit(1.02); math.Abs(got-101) > 1 {
		t.Fatalf("ConcaveLimit(1.02) = %v, want ≈101", got)
	}
	if got := ConcaveLimit(1.0); !math.IsInf(got, 1) {
		t.Fatalf("ConcaveLimit(1.0) = %v, want +Inf", got)
	}
}

// Property: the sign of SecondDerivative flips exactly at ConcaveLimit.
func TestConcavityBoundaryProperty(t *testing.T) {
	f := func(kMilli uint8) bool {
		K := 1.005 + float64(kMilli%90)/1000 // K in [1.005, 1.095]
		limit := ConcaveLimit(K)
		inside := SecondDerivative(limit*0.9, 1, K)
		outside := SecondDerivative(limit*1.1, 1, K)
		return inside < 0 && outside > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure6aLinearVsNonlinearPeaks(t *testing.T) {
	// The Figure 6(a) scenario: optimum concurrency 48 (per-process
	// throughput 1 unit saturating at 48).
	thr := SaturatingThroughput(1, 48)

	// Linear regret with C=0.02 peaks near 25 — below the optimum.
	linear02 := Curve(100, thr, func(n int, agg float64) float64 {
		return LinearPenalty(n, agg/float64(n), 0, 10, 0.02)
	})
	if peak := ArgmaxCurve(linear02); peak < 20 || peak > 30 {
		t.Fatalf("linear C=0.02 peak = %d, want ≈25", peak)
	}

	// Linear regret with C=0.01 peaks at the optimum for a single
	// transfer (the instability appears only under competition).
	linear01 := Curve(100, thr, func(n int, agg float64) float64 {
		return LinearPenalty(n, agg/float64(n), 0, 10, 0.01)
	})
	if peak := ArgmaxCurve(linear01); peak < 44 || peak > 52 {
		t.Fatalf("linear C=0.01 peak = %d, want ≈48", peak)
	}

	// Nonlinear regret (K=1.02) peaks at the optimum.
	nonlinear := Curve(100, thr, func(n int, agg float64) float64 {
		return Nonlinear(n, agg/float64(n), 0, 10, 1.02)
	})
	if peak := ArgmaxCurve(nonlinear); peak < 44 || peak > 50 {
		t.Fatalf("nonlinear peak = %d, want ≈48", peak)
	}
}

func TestNonlinearPrefersJustEnoughConcurrency(t *testing.T) {
	// Beyond saturation, aggregate throughput is flat but Kⁿ keeps
	// growing: utility must strictly decrease.
	thr := SaturatingThroughput(10e6, 100e6) // optimum 10
	curve := Curve(32, thr, func(n int, agg float64) float64 {
		return Nonlinear(n, agg/float64(n), 0, 10, 1.02)
	})
	peak := ArgmaxCurve(curve)
	if peak != 10 {
		t.Fatalf("peak = %d, want 10", peak)
	}
	for n := 11; n <= 32; n++ {
		if curve[n-1] >= curve[n-2] {
			t.Fatalf("utility not decreasing past the optimum at n=%d", n)
		}
	}
}

// Property: with zero loss, Nonlinear is positive and increasing in the
// linear-throughput region below the concave limit.
func TestNonlinearMonotoneBelowOptimumProperty(t *testing.T) {
	f := func(perProcMbps uint8) bool {
		perProc := float64(perProcMbps%50+1) * 1e6
		capacity := perProc * 40 // optimum at n=40
		thr := SaturatingThroughput(perProc, capacity)
		prev := math.Inf(-1)
		for n := 1; n <= 40; n++ {
			u := Nonlinear(n, thr(n)/float64(n), 0, 10, 1.02)
			if u <= prev {
				return false
			}
			prev = u
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCurveAndArgmax(t *testing.T) {
	curve := Curve(5, func(n int) float64 { return float64(n) }, func(n int, agg float64) float64 {
		return -math.Abs(float64(n) - 3) // peak at n=3
	})
	if len(curve) != 5 {
		t.Fatalf("curve len = %d", len(curve))
	}
	if got := ArgmaxCurve(curve); got != 3 {
		t.Fatalf("ArgmaxCurve = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("ArgmaxCurve(empty) did not panic")
		}
	}()
	ArgmaxCurve(nil)
}

func TestSaturatingThroughput(t *testing.T) {
	thr := SaturatingThroughput(10, 100)
	if thr(5) != 50 {
		t.Fatalf("thr(5) = %v", thr(5))
	}
	if thr(10) != 100 {
		t.Fatalf("thr(10) = %v", thr(10))
	}
	if thr(50) != 100 {
		t.Fatalf("thr(50) = %v, want saturated", thr(50))
	}
}

// Property: the loss-regret term is linear in B: doubling B doubles the
// penalty relative to the zero-loss utility.
func TestLossPenaltyLinearityProperty(t *testing.T) {
	f := func(lossPct uint8) bool {
		L := float64(lossPct%100) / 1000 // [0, 0.099]
		base := Nonlinear(10, 1, 0, 0, 1.02)
		u1 := Nonlinear(10, 1, L, 10, 1.02)
		u2 := Nonlinear(10, 1, L, 20, 1.02)
		return approx(base-u2, 2*(base-u1), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
