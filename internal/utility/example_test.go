package utility_test

import (
	"fmt"

	"repro/internal/utility"
)

// ExampleNonlinear evaluates Falcon's Eq 4 utility at two concurrency
// levels around a saturation point: the higher level moves no more data
// but pays more regret.
func ExampleNonlinear() {
	perProc, capacity := 10e6, 100e6 // saturation at n = 10
	thr := utility.SaturatingThroughput(perProc, capacity)
	u10 := utility.Nonlinear(10, thr(10)/10, 0, utility.DefaultB, utility.DefaultK)
	u20 := utility.Nonlinear(20, thr(20)/20, 0, utility.DefaultB, utility.DefaultK)
	fmt.Println(u10 > u20)
	// Output: true
}

// ExampleConcaveLimit shows the concurrency bound for Nash-equilibrium
// guarantees at the paper's default K.
func ExampleConcaveLimit() {
	fmt.Printf("%.0f\n", utility.ConcaveLimit(1.02))
	// Output: 101
}
