package transfer

import "fmt"

// Sample is the outcome of one sample transfer: the performance
// observed while a particular setting was active for a measurement
// window. It is the only information Falcon's black-box optimizer sees
// — throughput and packet loss, exactly as §3 of the paper describes.
type Sample struct {
	// Setting is the configuration that was active during the window.
	Setting Setting
	// Duration is the window length in seconds.
	Duration float64
	// Throughput is the task's aggregate throughput in bits/s
	// (the paper's n·t).
	Throughput float64
	// Loss is the measured packet-loss fraction in [0, 1].
	Loss float64
	// Time is the simulation or wall-clock timestamp at the end of the
	// window, in seconds.
	Time float64
}

// PerConnThroughput returns the average throughput per concurrent file
// transfer — the paper's t_i — derived from the aggregate and the
// concurrency in force.
func (s Sample) PerConnThroughput() float64 {
	if s.Setting.Concurrency <= 0 {
		return 0
	}
	return s.Throughput / float64(s.Setting.Concurrency)
}

// Validate checks sample plausibility (used by defensive consumers).
func (s Sample) Validate() error {
	if err := s.Setting.Validate(); err != nil {
		return err
	}
	if s.Duration <= 0 {
		return fmt.Errorf("transfer: sample duration %v must be positive", s.Duration)
	}
	if s.Throughput < 0 {
		return fmt.Errorf("transfer: negative sample throughput %v", s.Throughput)
	}
	if s.Loss < 0 || s.Loss > 1 {
		return fmt.Errorf("transfer: sample loss %v outside [0,1]", s.Loss)
	}
	return nil
}
