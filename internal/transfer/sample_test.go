package transfer

import (
	"testing"
	"testing/quick"
)

func validSample() Sample {
	return Sample{
		Setting:    Setting{Concurrency: 4, Parallelism: 2, Pipelining: 1},
		Duration:   3,
		Throughput: 8e9,
		Loss:       0.01,
		Time:       42,
	}
}

func TestSamplePerConnThroughput(t *testing.T) {
	s := validSample()
	// t_i = aggregate / concurrency = 8e9 / 4.
	if got := s.PerConnThroughput(); got != 2e9 {
		t.Fatalf("PerConnThroughput = %v, want 2e9", got)
	}
	s.Setting.Concurrency = 0
	if got := s.PerConnThroughput(); got != 0 {
		t.Fatalf("degenerate PerConnThroughput = %v, want 0", got)
	}
}

func TestSampleValidate(t *testing.T) {
	if err := validSample().Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Sample)
	}{
		{"invalid setting", func(s *Sample) { s.Setting.Concurrency = 0 }},
		{"zero duration", func(s *Sample) { s.Duration = 0 }},
		{"negative throughput", func(s *Sample) { s.Throughput = -1 }},
		{"loss above 1", func(s *Sample) { s.Loss = 1.5 }},
		{"negative loss", func(s *Sample) { s.Loss = -0.1 }},
	}
	for _, c := range cases {
		s := validSample()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate did not error", c.name)
		}
	}
}

// Property: PerConnThroughput × concurrency reconstructs the aggregate.
func TestPerConnThroughputConsistencyProperty(t *testing.T) {
	f := func(cc uint8, tput uint32) bool {
		n := int(cc%32) + 1
		s := Sample{
			Setting:    Setting{Concurrency: n, Parallelism: 1, Pipelining: 1},
			Duration:   1,
			Throughput: float64(tput),
		}
		recon := s.PerConnThroughput() * float64(n)
		diff := recon - s.Throughput
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*(s.Throughput+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskAccessors(t *testing.T) {
	ds := smallDS()
	task, err := NewTask("t", ds, DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	if task.Dataset() != ds {
		t.Fatal("Dataset accessor wrong")
	}
	if task.Elapsed() != 0 {
		t.Fatal("fresh task has elapsed time")
	}
	task.Advance(100, 2.5)
	if task.Elapsed() != 2.5 {
		t.Fatalf("Elapsed = %v, want 2.5", task.Elapsed())
	}
	if task.MeanThroughput() != 100*8/2.5 {
		t.Fatalf("MeanThroughput = %v", task.MeanThroughput())
	}
}

func TestMeanThroughputBeforeTime(t *testing.T) {
	task, _ := NewTask("t", smallDS(), DefaultSetting())
	if got := task.MeanThroughput(); got != 0 {
		t.Fatalf("MeanThroughput with no elapsed time = %v, want 0", got)
	}
}
