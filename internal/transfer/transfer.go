// Package transfer defines the application-layer semantics of a bulk
// file transfer: the tunable setting (concurrency, parallelism,
// pipelining), the bookkeeping of a running task over a dataset, and
// the pipelining efficiency model that makes command caching matter
// for small files (§4.4 of the paper).
//
// The three knobs follow GridFTP terminology exactly as the paper uses
// them:
//
//   - Concurrency (n): how many files are transferred simultaneously,
//     each with its own I/O thread (process).
//   - Parallelism (p): how many TCP streams carry each file, so a task
//     opens n×p connections in total.
//   - Pipelining (q): how many transfer commands are queued
//     back-to-back on the control channel, hiding the per-file
//     round-trip gap between consecutive files.
package transfer

import (
	"fmt"

	"repro/internal/dataset"
)

// Setting is one point in Falcon's search space.
type Setting struct {
	// Concurrency is the number of files in flight (n ≥ 1).
	Concurrency int
	// Parallelism is the number of streams per file (p ≥ 1).
	Parallelism int
	// Pipelining is the command-queue depth (q ≥ 1).
	Pipelining int
}

// DefaultSetting returns the baseline configuration the paper measures
// first: one file at a time, one stream, no pipelining.
func DefaultSetting() Setting { return Setting{Concurrency: 1, Parallelism: 1, Pipelining: 1} }

// Validate checks that all knobs are at least one.
func (s Setting) Validate() error {
	if s.Concurrency < 1 {
		return fmt.Errorf("transfer: concurrency %d must be ≥ 1", s.Concurrency)
	}
	if s.Parallelism < 1 {
		return fmt.Errorf("transfer: parallelism %d must be ≥ 1", s.Parallelism)
	}
	if s.Pipelining < 1 {
		return fmt.Errorf("transfer: pipelining %d must be ≥ 1", s.Pipelining)
	}
	return nil
}

// Connections returns the total TCP connections the setting opens (n×p).
func (s Setting) Connections() int { return s.Concurrency * s.Parallelism }

// String renders the setting as "cc=4 p=2 q=8".
func (s Setting) String() string {
	return fmt.Sprintf("cc=%d p=%d q=%d", s.Concurrency, s.Parallelism, s.Pipelining)
}

// PipelineEfficiency returns the fraction of wall-clock time a transfer
// channel spends moving bytes rather than waiting between files.
//
// Each file costs one control-channel exchange (≈ one RTT) before its
// data flows. With pipelining depth q, commands for the next q files
// are sent back-to-back, so the expected idle gap per file shrinks to
// RTT/q. A channel moving files of mean size S at rate r therefore has
// duty cycle
//
//	eff = (S/r) / (S/r + RTT/q)
//
// Large files (S/r ≫ RTT) are insensitive to q; datasets of 1 KiB–10 MiB
// files over a 60 ms WAN are dominated by it — the paper's motivation
// for tuning pipelining on the "small" and "mixed" datasets.
func PipelineEfficiency(meanFileBytes float64, perFileRate float64, rtt float64, pipelining int) float64 {
	if meanFileBytes <= 0 || perFileRate <= 0 {
		return 1
	}
	if pipelining < 1 {
		pipelining = 1
	}
	if rtt <= 0 {
		return 1
	}
	transferTime := meanFileBytes * 8 / perFileRate
	gap := rtt / float64(pipelining)
	return transferTime / (transferTime + gap)
}

// Task tracks the progress of one transfer job over a dataset. It is
// the pure bookkeeping core shared by the simulated testbeds and the
// real FTP engine: bytes flow in via Advance, files complete in order,
// and the task reports when it is done.
type Task struct {
	id      string
	ds      *dataset.Dataset
	setting Setting
	gen     int // bumped on every SetSetting

	totalBytes int64   // cached dataset size (datasets are immutable)
	nextFile   int     // index of the first file not yet fully sent
	fileSent   int64   // bytes already sent of the file at nextFile
	bytesDone  int64   // total bytes completed
	elapsed    float64 // seconds of active transfer time
}

// NewTask creates a task over ds with the given initial setting.
// It returns an error for an invalid setting, a nil or invalid dataset,
// or an empty ID.
func NewTask(id string, ds *dataset.Dataset, s Setting) (*Task, error) {
	if id == "" {
		return nil, fmt.Errorf("transfer: empty task ID")
	}
	if ds == nil {
		return nil, fmt.Errorf("transfer: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("transfer: %w", err)
	}
	if len(ds.Files) == 0 {
		return nil, fmt.Errorf("transfer: dataset %q has no files", ds.Label)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Task{id: id, ds: ds, setting: s, totalBytes: ds.TotalBytes()}, nil
}

// ID returns the task identifier.
func (t *Task) ID() string { return t.id }

// Dataset returns the dataset being transferred.
func (t *Task) Dataset() *dataset.Dataset { return t.ds }

// Setting returns the task's current setting.
func (t *Task) Setting() Setting { return t.setting }

// SetSetting changes the task's knobs mid-flight (the optimizer's
// action). It returns an error for invalid settings.
func (t *Task) SetSetting(s Setting) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t.setting = s
	t.gen++
	return nil
}

// Generation returns a counter bumped on every SetSetting. Engines use
// it to detect out-of-band retunes between macro-steps without
// comparing whole settings.
func (t *Task) Generation() int { return t.gen }

// Extend appends files to the task's dataset mid-transfer — the
// "dataset grows while the transfer runs" disturbance of dynamic
// scenarios. Datasets are immutable and may be shared across tasks, so
// the task switches to a private copy-on-write dataset holding the old
// files plus the new ones; other tasks sharing the original are
// unaffected. A task that had drained its dataset becomes active again
// and resumes with the first appended file. It returns an error for
// empty input, files with empty names or non-positive sizes, or names
// duplicating the task's existing files.
func (t *Task) Extend(files []dataset.File) error {
	if len(files) == 0 {
		return fmt.Errorf("transfer: Extend with no files")
	}
	seen := make(map[string]bool, len(t.ds.Files)+len(files))
	for _, f := range t.ds.Files {
		seen[f.Name] = true
	}
	for _, f := range files {
		if f.Name == "" {
			return fmt.Errorf("transfer: Extend file with empty name")
		}
		if f.Size <= 0 {
			return fmt.Errorf("transfer: Extend file %q has non-positive size %d", f.Name, f.Size)
		}
		if seen[f.Name] {
			return fmt.Errorf("transfer: Extend duplicates file name %q", f.Name)
		}
		seen[f.Name] = true
	}
	grown := &dataset.Dataset{Label: t.ds.Label}
	grown.Files = make([]dataset.File, 0, len(t.ds.Files)+len(files))
	grown.Files = append(grown.Files, t.ds.Files...)
	grown.Files = append(grown.Files, files...)
	t.ds = grown
	t.totalBytes = grown.TotalBytes()
	// An extension changes ActiveFiles and HorizonBytes out of band, the
	// same way a retune does; the generation bump lets engines detect it
	// between macro-steps.
	t.gen++
	return nil
}

// Done reports whether every byte of the dataset has been sent.
func (t *Task) Done() bool { return t.nextFile >= len(t.ds.Files) }

// BytesDone returns the total bytes completed so far.
func (t *Task) BytesDone() int64 { return t.bytesDone }

// BytesRemaining returns the bytes not yet sent.
func (t *Task) BytesRemaining() int64 { return t.totalBytes - t.bytesDone }

// Elapsed returns the accumulated active transfer time in seconds.
func (t *Task) Elapsed() float64 { return t.elapsed }

// ActiveFiles returns how many files the task would transfer
// simultaneously right now: the configured concurrency, bounded by the
// number of files remaining.
func (t *Task) ActiveFiles() int {
	remaining := len(t.ds.Files) - t.nextFile
	if remaining < 0 {
		remaining = 0
	}
	if t.setting.Concurrency < remaining {
		return t.setting.Concurrency
	}
	return remaining
}

// ActiveConnections returns ActiveFiles×parallelism — the TCP
// connections currently open.
func (t *Task) ActiveConnections() int { return t.ActiveFiles() * t.setting.Parallelism }

// RemainingFiles returns the number of files not yet fully sent.
func (t *Task) RemainingFiles() int {
	remaining := len(t.ds.Files) - t.nextFile
	if remaining < 0 {
		remaining = 0
	}
	return remaining
}

// RemainingMeanFileSize returns the mean size in bytes of files not yet
// completed, used by the pipelining efficiency model. Returns 0 when
// the task is done. Computed in O(1) from the byte counters — this runs
// on every simulation tick.
func (t *Task) RemainingMeanFileSize() float64 {
	remaining := len(t.ds.Files) - t.nextFile
	if remaining <= 0 {
		return 0
	}
	sum := t.totalBytes - t.bytesDone
	return float64(sum) / float64(remaining)
}

// Advance records that the task moved `bytes` bytes during `dt` seconds
// of transfer, completing files in order. Partial progress within a
// file is retained. It returns the number of files completed by this
// call, so engines mirroring task state positionally (struct-of-arrays
// layouts) can update their remaining-file counters without re-reading
// the task. It panics on negative arguments (a simulation bug).
func (t *Task) Advance(bytes int64, dt float64) int {
	if bytes < 0 || dt < 0 {
		panic(fmt.Sprintf("transfer: Advance(%d, %v) negative argument", bytes, dt))
	}
	if t.Done() {
		return 0
	}
	t.elapsed += dt
	completed := 0
	for bytes > 0 && t.nextFile < len(t.ds.Files) {
		need := t.ds.Files[t.nextFile].Size - t.fileSent
		if bytes < need {
			t.fileSent += bytes
			t.bytesDone += bytes
			return completed
		}
		bytes -= need
		t.bytesDone += need
		t.fileSent = 0
		t.nextFile++
		completed++
	}
	return completed
}

// HorizonBytes returns how many more bytes must complete before the
// task's ActiveFiles count can change: while more than Concurrency
// files remain, finishing a file swaps a queued one in and the count is
// stable, so the horizon is the boundary where only Concurrency files
// are left; once inside that tail, every file completion shrinks the
// count, so the horizon is the head file's remaining bytes. Divided by
// a rate this yields the time-to-next-file-completion event the
// simulator's event-horizon stepping batches up to. Returns 0 when the
// task is done.
func (t *Task) HorizonBytes() int64 {
	remaining := len(t.ds.Files) - t.nextFile
	if remaining <= 0 {
		return 0
	}
	if remaining <= t.setting.Concurrency {
		return t.ds.Files[t.nextFile].Size - t.fileSent
	}
	// Distance to the remaining == Concurrency boundary: everything but
	// the final Concurrency files. O(Concurrency), not O(files).
	var tail int64
	for i := len(t.ds.Files) - t.setting.Concurrency; i < len(t.ds.Files); i++ {
		tail += t.ds.Files[i].Size
	}
	return t.totalBytes - tail - t.bytesDone
}

// Progress returns the completed fraction in [0, 1].
func (t *Task) Progress() float64 {
	if t.totalBytes == 0 {
		return 1
	}
	return float64(t.bytesDone) / float64(t.totalBytes)
}

// MeanThroughput returns the task's lifetime average throughput in
// bits/s, or 0 before any time has elapsed.
func (t *Task) MeanThroughput() float64 {
	if t.elapsed == 0 {
		return 0
	}
	return float64(t.bytesDone) * 8 / t.elapsed
}
