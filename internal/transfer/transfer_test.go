package transfer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func smallDS() *dataset.Dataset {
	return dataset.Uniform("t", 5, 1000) // 5 files × 1000 bytes
}

func TestSettingValidate(t *testing.T) {
	if err := DefaultSetting().Validate(); err != nil {
		t.Fatalf("DefaultSetting invalid: %v", err)
	}
	bad := []Setting{
		{Concurrency: 0, Parallelism: 1, Pipelining: 1},
		{Concurrency: 1, Parallelism: 0, Pipelining: 1},
		{Concurrency: 1, Parallelism: 1, Pipelining: 0},
		{Concurrency: -3, Parallelism: 1, Pipelining: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) did not error", s)
		}
	}
}

func TestSettingConnectionsAndString(t *testing.T) {
	s := Setting{Concurrency: 5, Parallelism: 4, Pipelining: 8}
	if s.Connections() != 20 {
		t.Fatalf("Connections = %d, want 20 (paper's example: cc=5, p=4 → 20)", s.Connections())
	}
	if got := s.String(); got != "cc=5 p=4 q=8" {
		t.Fatalf("String = %q", got)
	}
}

func TestPipelineEfficiencyLargeFilesInsensitive(t *testing.T) {
	// 1 GB file at 1 Gbps over 60ms RTT: 8s transfer vs 60ms gap.
	e1 := PipelineEfficiency(1e9, 1e9, 0.06, 1)
	e8 := PipelineEfficiency(1e9, 1e9, 0.06, 8)
	if e1 < 0.99 {
		t.Fatalf("large-file efficiency at q=1 = %v, want ≈1", e1)
	}
	if e8-e1 > 0.01 {
		t.Fatalf("pipelining should not matter for large files: %v vs %v", e1, e8)
	}
}

func TestPipelineEfficiencySmallFilesSensitive(t *testing.T) {
	// 1 MiB files at 1 Gbps over 60 ms RTT: 8.4 ms transfer vs 60 ms gap.
	e1 := PipelineEfficiency(1<<20, 1e9, 0.06, 1)
	e16 := PipelineEfficiency(1<<20, 1e9, 0.06, 16)
	if e1 > 0.2 {
		t.Fatalf("small-file efficiency at q=1 = %v, want < 0.2", e1)
	}
	if e16 < 3*e1 {
		t.Fatalf("pipelining should strongly help small files: %v vs %v", e1, e16)
	}
}

func TestPipelineEfficiencyEdgeCases(t *testing.T) {
	if got := PipelineEfficiency(0, 1e9, 0.06, 4); got != 1 {
		t.Errorf("zero size eff = %v, want 1", got)
	}
	if got := PipelineEfficiency(1e6, 0, 0.06, 4); got != 1 {
		t.Errorf("zero rate eff = %v, want 1", got)
	}
	if got := PipelineEfficiency(1e6, 1e9, 0, 4); got != 1 {
		t.Errorf("zero rtt eff = %v, want 1", got)
	}
	// q < 1 treated as 1.
	if got, want := PipelineEfficiency(1e6, 1e9, 0.06, 0), PipelineEfficiency(1e6, 1e9, 0.06, 1); got != want {
		t.Errorf("q=0 eff = %v, want same as q=1 (%v)", got, want)
	}
}

// Property: efficiency is in (0,1] and monotonically non-decreasing in q.
func TestPipelineEfficiencyMonotoneProperty(t *testing.T) {
	f := func(sizeKB uint16, rttMS uint8) bool {
		size := float64(sizeKB%10000+1) * 1024
		rtt := float64(rttMS%200) / 1000
		prev := 0.0
		for q := 1; q <= 64; q *= 2 {
			e := PipelineEfficiency(size, 1e9, rtt, q)
			if e <= 0 || e > 1 || e < prev-1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTaskValidation(t *testing.T) {
	ds := smallDS()
	if _, err := NewTask("", ds, DefaultSetting()); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewTask("t", nil, DefaultSetting()); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewTask("t", &dataset.Dataset{Label: "x"}, DefaultSetting()); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewTask("t", ds, Setting{}); err == nil {
		t.Error("invalid setting accepted")
	}
	bad := &dataset.Dataset{Label: "bad", Files: []dataset.File{{Name: "", Size: 1}}}
	if _, err := NewTask("t", bad, DefaultSetting()); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestTaskLifecycle(t *testing.T) {
	task, err := NewTask("t1", smallDS(), Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	if task.ID() != "t1" || task.Done() || task.Progress() != 0 {
		t.Fatal("fresh task state wrong")
	}
	if task.ActiveFiles() != 2 {
		t.Fatalf("ActiveFiles = %d, want 2", task.ActiveFiles())
	}

	task.Advance(1500, 1) // finishes file 0, half of file 1
	if task.BytesDone() != 1500 {
		t.Fatalf("BytesDone = %d", task.BytesDone())
	}
	if task.Done() {
		t.Fatal("task done too early")
	}
	if p := task.Progress(); math.Abs(p-0.3) > 1e-12 {
		t.Fatalf("Progress = %v, want 0.3", p)
	}

	task.Advance(3500, 2) // all remaining bytes
	if !task.Done() {
		t.Fatal("task should be done")
	}
	if task.BytesRemaining() != 0 {
		t.Fatalf("BytesRemaining = %d", task.BytesRemaining())
	}
	if task.ActiveFiles() != 0 || task.ActiveConnections() != 0 {
		t.Fatal("done task should have no active files/connections")
	}
	if got := task.MeanThroughput(); math.Abs(got-5000*8/3.0) > 1e-9 {
		t.Fatalf("MeanThroughput = %v, want %v", got, 5000*8/3.0)
	}

	// Advancing a finished task is a no-op.
	task.Advance(1000, 1)
	if task.BytesDone() != 5000 {
		t.Fatal("Advance after done changed bytes")
	}
}

func TestTaskAdvanceOverflowIsClamped(t *testing.T) {
	task, err := NewTask("t", smallDS(), DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	task.Advance(1_000_000, 1) // far more than the dataset holds
	if !task.Done() {
		t.Fatal("task should be done")
	}
	if task.BytesDone() != 5000 {
		t.Fatalf("BytesDone = %d, want exactly dataset size", task.BytesDone())
	}
}

func TestTaskAdvanceNegativePanics(t *testing.T) {
	task, _ := NewTask("t", smallDS(), DefaultSetting())
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1, 0) did not panic")
		}
	}()
	task.Advance(-1, 0)
}

func TestActiveFilesBoundedByRemaining(t *testing.T) {
	task, _ := NewTask("t", smallDS(), Setting{Concurrency: 10, Parallelism: 2, Pipelining: 1})
	if task.ActiveFiles() != 5 {
		t.Fatalf("ActiveFiles = %d, want 5 (only 5 files)", task.ActiveFiles())
	}
	if task.ActiveConnections() != 10 {
		t.Fatalf("ActiveConnections = %d, want 10", task.ActiveConnections())
	}
	task.Advance(3000, 1) // 3 files done
	if task.ActiveFiles() != 2 {
		t.Fatalf("ActiveFiles = %d, want 2", task.ActiveFiles())
	}
}

func TestSetSetting(t *testing.T) {
	task, _ := NewTask("t", smallDS(), DefaultSetting())
	if err := task.SetSetting(Setting{Concurrency: 3, Parallelism: 2, Pipelining: 4}); err != nil {
		t.Fatal(err)
	}
	if task.Setting().Concurrency != 3 {
		t.Fatal("SetSetting did not apply")
	}
	if err := task.SetSetting(Setting{}); err == nil {
		t.Fatal("invalid setting accepted")
	}
	if task.Setting().Concurrency != 3 {
		t.Fatal("failed SetSetting modified the task")
	}
}

func TestRemainingMeanFileSize(t *testing.T) {
	ds := &dataset.Dataset{Label: "mix", Files: []dataset.File{
		{Name: "a", Size: 100},
		{Name: "b", Size: 300},
	}}
	task, _ := NewTask("t", ds, DefaultSetting())
	if got := task.RemainingMeanFileSize(); got != 200 {
		t.Fatalf("mean = %v, want 200", got)
	}
	task.Advance(100, 1) // file a done
	if got := task.RemainingMeanFileSize(); got != 300 {
		t.Fatalf("mean = %v, want 300", got)
	}
	task.Advance(300, 1)
	if got := task.RemainingMeanFileSize(); got != 0 {
		t.Fatalf("mean after done = %v, want 0", got)
	}
}

// Property: bytesDone is conserved — the sum of Advance amounts (clamped
// to dataset size) equals BytesDone, and Progress stays in [0,1].
func TestTaskConservationProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		task, err := NewTask("t", smallDS(), DefaultSetting())
		if err != nil {
			return false
		}
		var fed int64
		for _, s := range steps {
			amt := int64(s % 1200)
			if !task.Done() {
				// Only count what the task can still absorb.
				room := task.BytesRemaining()
				if amt > room {
					fed += room
				} else {
					fed += amt
				}
			}
			task.Advance(amt, 0.1)
			if p := task.Progress(); p < 0 || p > 1 {
				return false
			}
		}
		return task.BytesDone() == fed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
