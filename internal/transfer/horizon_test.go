package transfer

import (
	"testing"

	"repro/internal/dataset"
)

// TestHorizonBytes walks a 5×1000-byte dataset at concurrency 2
// through its file-count horizons: first the boundary where only the
// final two files remain (ActiveFiles can start shrinking), then the
// head file's remaining bytes, then zero at completion.
func TestHorizonBytes(t *testing.T) {
	task, err := NewTask("h", smallDS(), Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 5 files remain > concurrency 2: horizon is everything but the
	// final two files, 5000 − 2000.
	if got := task.HorizonBytes(); got != 3000 {
		t.Errorf("fresh task HorizonBytes = %d, want 3000", got)
	}
	// 3500 bytes in: 3 files done, 500 into the 4th. Two files remain
	// (≤ concurrency), so the horizon is the head file's last 500.
	task.Advance(3500, 1)
	if got := task.HorizonBytes(); got != 500 {
		t.Errorf("mid-tail HorizonBytes = %d, want 500", got)
	}
	task.Advance(1500, 1)
	if !task.Done() {
		t.Fatal("task should have drained")
	}
	if got := task.HorizonBytes(); got != 0 {
		t.Errorf("done HorizonBytes = %d, want 0", got)
	}
}

// TestGeneration: every SetSetting bumps the generation counter —
// including a retune to the same values — so engines can detect
// out-of-band Apply calls between macro-steps without comparing
// settings.
func TestGeneration(t *testing.T) {
	task, err := NewTask("g", dataset.Uniform("g", 2, 100), DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	g0 := task.Generation()
	if err := task.SetSetting(Setting{Concurrency: 3, Parallelism: 1, Pipelining: 1}); err != nil {
		t.Fatal(err)
	}
	if task.Generation() != g0+1 {
		t.Errorf("generation after retune = %d, want %d", task.Generation(), g0+1)
	}
	if err := task.SetSetting(task.Setting()); err != nil {
		t.Fatal(err)
	}
	if task.Generation() != g0+2 {
		t.Errorf("generation after same-value retune = %d, want %d", task.Generation(), g0+2)
	}
	if err := task.SetSetting(Setting{Concurrency: 0}); err == nil {
		t.Fatal("invalid setting accepted")
	}
	if task.Generation() != g0+2 {
		t.Errorf("generation bumped by rejected setting: %d, want %d", task.Generation(), g0+2)
	}
}
