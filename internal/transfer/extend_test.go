package transfer

import (
	"testing"

	"repro/internal/dataset"
)

// TestExtendGrowsPrivately: Extend switches the task to a private
// copy-on-write dataset — totals grow, the generation bumps, and other
// tasks sharing the original interned dataset are untouched.
func TestExtendGrowsPrivately(t *testing.T) {
	shared := dataset.Uniform("extend-shared", 5, 1000)
	a, err := NewTask("a", shared, DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTask("b", shared, DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	gen := a.Generation()
	if err := a.Extend([]dataset.File{{Name: "x0", Size: 500}, {Name: "x1", Size: 500}}); err != nil {
		t.Fatal(err)
	}
	if a.Generation() != gen+1 {
		t.Fatalf("generation = %d, want %d", a.Generation(), gen+1)
	}
	if got := a.BytesRemaining(); got != 6000 {
		t.Fatalf("a remaining = %d, want 6000", got)
	}
	if got := b.BytesRemaining(); got != 5000 {
		t.Fatalf("b remaining = %d after a's Extend, want 5000 — shared dataset mutated", got)
	}
	if len(shared.Files) != 5 {
		t.Fatalf("interned dataset grew to %d files", len(shared.Files))
	}
}

// TestExtendRevivesDrainedTask: a task that finished its dataset
// becomes active again with the appended files.
func TestExtendRevivesDrainedTask(t *testing.T) {
	ds := dataset.Uniform("extend-drain", 2, 1000)
	task, err := NewTask("d", ds, Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drain: 2000 bytes at 8000 bits/s (1000 B/s) takes 2 s.
	task.Advance(1e9, 10)
	if !task.Done() || task.ActiveFiles() != 0 {
		t.Fatalf("task not drained: done=%v active=%d", task.Done(), task.ActiveFiles())
	}
	if err := task.Extend([]dataset.File{{Name: "new", Size: 4000}}); err != nil {
		t.Fatal(err)
	}
	if task.Done() {
		t.Fatal("task still done after Extend")
	}
	if task.ActiveFiles() != 1 {
		t.Fatalf("ActiveFiles = %d, want 1", task.ActiveFiles())
	}
	if got := task.BytesRemaining(); got != 4000 {
		t.Fatalf("remaining = %d, want 4000", got)
	}
}

// TestExtendRejectsBadInput: empty batches, unnamed files, non-positive
// sizes, and duplicate names are errors that leave the task unchanged.
func TestExtendRejectsBadInput(t *testing.T) {
	task, err := NewTask("r", dataset.Uniform("extend-bad", 3, 1000), DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	gen, rem := task.Generation(), task.BytesRemaining()
	cases := [][]dataset.File{
		nil,
		{},
		{{Name: "", Size: 1}},
		{{Name: "ok", Size: 0}},
		{{Name: "ok", Size: -5}},
		{{Name: "extend-bad-000001.dat", Size: 1}}, // duplicates a base file
		{{Name: "twice", Size: 1}, {Name: "twice", Size: 1}},
	}
	for i, files := range cases {
		if err := task.Extend(files); err == nil {
			t.Errorf("case %d: Extend(%v) succeeded", i, files)
		}
	}
	if task.Generation() != gen || task.BytesRemaining() != rem {
		t.Fatal("rejected Extend mutated the task")
	}
}
