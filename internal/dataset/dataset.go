// Package dataset describes and synthesises the file collections used
// throughout the paper's evaluation: the main 1000×1 GB dataset, and
// the small / large / mixed datasets of §4.4 (multi-parameter
// optimization). Datasets carry only metadata — file names and sizes —
// which is what both the simulated and the real transfer substrates
// consume; the real-FTP example materialises files on disk on demand.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Common size units in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40

	// GB and TB are the decimal units the paper uses for its main
	// "1000 × 1 GB" dataset.
	GB = 1e9
	TB = 1e12
)

// File is one transferable file: a name and a size in bytes.
type File struct {
	Name string
	Size int64
}

// Dataset is an ordered collection of files. Datasets are treated as
// immutable once built: the synthesizers in this package may return
// the same *Dataset to multiple callers (and to concurrent sweep
// workers), so callers must not modify Label or Files after
// construction.
type Dataset struct {
	// Label identifies the dataset in experiment output (e.g. "small").
	Label string
	Files []File

	// total and validated memoize TotalBytes and Validate. They are
	// written only while a dataset is being constructed inside this
	// package (before the pointer is published), so concurrent readers
	// need no locking; a Dataset assembled by hand leaves them zero and
	// pays the linear cost. Task construction runs on simulation hot
	// paths (one task per sweep point), which is why these are worth
	// memoizing at all.
	total     int64
	validated bool
}

// TotalBytes returns the sum of all file sizes.
func (d *Dataset) TotalBytes() int64 {
	if d.total > 0 {
		return d.total
	}
	var t int64
	for _, f := range d.Files {
		t += f.Size
	}
	return t
}

// Count returns the number of files.
func (d *Dataset) Count() int { return len(d.Files) }

// MeanFileSize returns the average file size in bytes, or 0 when empty.
func (d *Dataset) MeanFileSize() float64 {
	if len(d.Files) == 0 {
		return 0
	}
	return float64(d.TotalBytes()) / float64(len(d.Files))
}

// MedianFileSize returns the median file size in bytes, or 0 when empty.
func (d *Dataset) MedianFileSize() int64 {
	if len(d.Files) == 0 {
		return 0
	}
	sizes := make([]int64, len(d.Files))
	for i, f := range d.Files {
		sizes[i] = f.Size
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes[len(sizes)/2]
}

// Validate checks structural invariants: a non-empty label, and every
// file having a unique non-empty name and positive size. Datasets from
// this package's synthesizers are valid by construction and return
// immediately.
func (d *Dataset) Validate() error {
	if d.validated {
		return nil
	}
	if d.Label == "" {
		return fmt.Errorf("dataset: empty label")
	}
	seen := make(map[string]bool, len(d.Files))
	for i, f := range d.Files {
		if f.Name == "" {
			return fmt.Errorf("dataset %q: file %d has empty name", d.Label, i)
		}
		if f.Size <= 0 {
			return fmt.Errorf("dataset %q: file %q has non-positive size %d", d.Label, f.Name, f.Size)
		}
		if seen[f.Name] {
			return fmt.Errorf("dataset %q: duplicate file name %q", d.Label, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// seal memoizes a constructor-built dataset's total size and marks it
// valid by construction. It must run before the dataset pointer is
// published (shared datasets are read concurrently without locks).
func (d *Dataset) seal() *Dataset {
	var t int64
	for _, f := range d.Files {
		t += f.Size
	}
	d.total = t
	d.validated = true
	return d
}

// fileName renders "<label>-NNNNNN.dat" (six digits, zero-padded)
// without fmt: dataset synthesis runs once per sweep point and the
// Sprintf per file dominated reproduce profiles.
func fileName(label string, i int) string {
	b := make([]byte, 0, len(label)+12)
	b = append(b, label...)
	b = append(b, '-')
	if i < 1000000 {
		var digits [6]byte
		v := i
		for j := 5; j >= 0; j-- {
			digits[j] = byte('0' + v%10)
			v /= 10
		}
		b = append(b, digits[:]...)
	} else {
		b = append(b, fmt.Sprintf("%06d", i)...)
	}
	b = append(b, ".dat"...)
	return string(b)
}

// uniformKey identifies one Uniform result for interning.
type uniformKey struct {
	label string
	count int
	size  int64
}

// uniformCache interns Uniform datasets: sweeps and scenario builders
// request the same (label, count, size) collection thousands of times
// per reproduce run, and datasets are immutable, so one copy serves
// them all — including concurrent sweep workers.
var uniformCache sync.Map // uniformKey -> *Dataset

// Uniform returns a dataset of count files, each of the given size.
// Results are interned: repeated calls with the same arguments return
// the same (immutable) dataset.
func Uniform(label string, count int, size int64) *Dataset {
	if count <= 0 {
		panic(fmt.Sprintf("dataset: Uniform count %d must be positive", count))
	}
	if size <= 0 {
		panic(fmt.Sprintf("dataset: Uniform size %d must be positive", size))
	}
	key := uniformKey{label, count, size}
	if v, ok := uniformCache.Load(key); ok {
		return v.(*Dataset)
	}
	d := &Dataset{Label: label, Files: make([]File, count)}
	for i := range d.Files {
		d.Files[i] = File{Name: fileName(label, i), Size: size}
	}
	d.seal()
	v, _ := uniformCache.LoadOrStore(key, d)
	return v.(*Dataset)
}

// Main returns the paper's principal evaluation dataset: 1000 × 1 GB.
func Main() *Dataset { return Uniform("main", 1000, int64(GB)) }

// randomSized builds count files with sizes drawn log-uniformly from
// [minSize, maxSize], then rescales so the total matches totalBytes.
func randomSized(label string, rng *rand.Rand, count int, minSize, maxSize, totalBytes int64) *Dataset {
	d := &Dataset{Label: label, Files: make([]File, count)}
	var sum int64
	logMin, logMax := float64(minSize), float64(maxSize)
	for i := range d.Files {
		// Log-uniform: heavy representation of small sizes, as real
		// scientific datasets exhibit.
		u := rng.Float64()
		size := int64(logMin * math.Pow(logMax/logMin, u))
		if size < minSize {
			size = minSize
		}
		if size > maxSize {
			size = maxSize
		}
		d.Files[i] = File{Name: fileName(label, i), Size: size}
		sum += size
	}
	// Rescale to hit the requested total while respecting bounds.
	scale := float64(totalBytes) / float64(sum)
	var rescaled int64
	for i := range d.Files {
		s := int64(float64(d.Files[i].Size) * scale)
		if s < minSize {
			s = minSize
		}
		if s > maxSize {
			s = maxSize
		}
		d.Files[i].Size = s
		rescaled += s
	}
	return d.seal()
}

// seededKey identifies one seeded synthesizer result for interning.
type seededKey struct {
	kind string
	seed int64
}

// seededCache interns the seeded synthesizers' results: generation is
// deterministic per seed and the outputs are immutable, so trials that
// share a seed share the dataset instead of regenerating tens of
// thousands of files.
var seededCache sync.Map // seededKey -> *Dataset

func internSeeded(kind string, seed int64, build func() *Dataset) *Dataset {
	key := seededKey{kind, seed}
	if v, ok := seededCache.Load(key); ok {
		return v.(*Dataset)
	}
	v, _ := seededCache.LoadOrStore(key, build())
	return v.(*Dataset)
}

// Small returns the §4.4 "small" dataset: files 1 KiB – 10 MiB,
// ~120 GiB total. The seed makes generation deterministic.
func Small(seed int64) *Dataset {
	return internSeeded("small", seed, func() *Dataset {
		rng := rand.New(rand.NewSource(seed))
		// 120 GiB of files averaging ~2.4 MiB each → ~50k files. That is
		// representative (the paper stresses "lots of small files") while
		// staying cheap to simulate.
		return randomSized("small", rng, 50000, 1*KiB, 10*MiB, 120*GiB)
	})
}

// Large returns the §4.4 "large" dataset: files 100 MiB – 10 GiB,
// ~1 TiB total.
func Large(seed int64) *Dataset {
	return internSeeded("large", seed, func() *Dataset {
		rng := rand.New(rand.NewSource(seed))
		return randomSized("large", rng, 700, 100*MiB, 10*GiB, 1*TiB)
	})
}

// Mixed returns the §4.4 "mixed" dataset: the union of Small and Large
// (~1.2 TiB total).
func Mixed(seed int64) *Dataset {
	return internSeeded("mixed", seed, func() *Dataset {
		s := Small(seed)
		l := Large(seed + 1)
		d := &Dataset{Label: "mixed"}
		d.Files = append(d.Files, s.Files...)
		for _, f := range l.Files {
			d.Files = append(d.Files, File{Name: "mixed-" + f.Name, Size: f.Size})
		}
		for i := range s.Files {
			d.Files[i].Name = "mixed-" + d.Files[i].Name
		}
		return d.seal()
	})
}

// Friendliness returns the §4.5 dataset: 1.1 TiB of files between
// 100 MiB and 10 GiB.
func Friendliness(seed int64) *Dataset {
	return internSeeded("friendliness", seed, func() *Dataset {
		rng := rand.New(rand.NewSource(seed))
		return randomSized("friendliness", rng, 770, 100*MiB, 10*GiB, 1100*GiB)
	})
}
