// Package dataset describes and synthesises the file collections used
// throughout the paper's evaluation: the main 1000×1 GB dataset, and
// the small / large / mixed datasets of §4.4 (multi-parameter
// optimization). Datasets carry only metadata — file names and sizes —
// which is what both the simulated and the real transfer substrates
// consume; the real-FTP example materialises files on disk on demand.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Common size units in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40

	// GB and TB are the decimal units the paper uses for its main
	// "1000 × 1 GB" dataset.
	GB = 1e9
	TB = 1e12
)

// File is one transferable file: a name and a size in bytes.
type File struct {
	Name string
	Size int64
}

// Dataset is an ordered collection of files.
type Dataset struct {
	// Label identifies the dataset in experiment output (e.g. "small").
	Label string
	Files []File
}

// TotalBytes returns the sum of all file sizes.
func (d *Dataset) TotalBytes() int64 {
	var t int64
	for _, f := range d.Files {
		t += f.Size
	}
	return t
}

// Count returns the number of files.
func (d *Dataset) Count() int { return len(d.Files) }

// MeanFileSize returns the average file size in bytes, or 0 when empty.
func (d *Dataset) MeanFileSize() float64 {
	if len(d.Files) == 0 {
		return 0
	}
	return float64(d.TotalBytes()) / float64(len(d.Files))
}

// MedianFileSize returns the median file size in bytes, or 0 when empty.
func (d *Dataset) MedianFileSize() int64 {
	if len(d.Files) == 0 {
		return 0
	}
	sizes := make([]int64, len(d.Files))
	for i, f := range d.Files {
		sizes[i] = f.Size
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes[len(sizes)/2]
}

// Validate checks structural invariants: a non-empty label, and every
// file having a unique non-empty name and positive size.
func (d *Dataset) Validate() error {
	if d.Label == "" {
		return fmt.Errorf("dataset: empty label")
	}
	seen := make(map[string]bool, len(d.Files))
	for i, f := range d.Files {
		if f.Name == "" {
			return fmt.Errorf("dataset %q: file %d has empty name", d.Label, i)
		}
		if f.Size <= 0 {
			return fmt.Errorf("dataset %q: file %q has non-positive size %d", d.Label, f.Name, f.Size)
		}
		if seen[f.Name] {
			return fmt.Errorf("dataset %q: duplicate file name %q", d.Label, f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Uniform returns a dataset of count files, each of the given size.
func Uniform(label string, count int, size int64) *Dataset {
	if count <= 0 {
		panic(fmt.Sprintf("dataset: Uniform count %d must be positive", count))
	}
	if size <= 0 {
		panic(fmt.Sprintf("dataset: Uniform size %d must be positive", size))
	}
	d := &Dataset{Label: label, Files: make([]File, count)}
	for i := range d.Files {
		d.Files[i] = File{Name: fmt.Sprintf("%s-%06d.dat", label, i), Size: size}
	}
	return d
}

// Main returns the paper's principal evaluation dataset: 1000 × 1 GB.
func Main() *Dataset { return Uniform("main", 1000, int64(GB)) }

// randomSized builds count files with sizes drawn log-uniformly from
// [minSize, maxSize], then rescales so the total matches totalBytes.
func randomSized(label string, rng *rand.Rand, count int, minSize, maxSize, totalBytes int64) *Dataset {
	d := &Dataset{Label: label, Files: make([]File, count)}
	var sum int64
	logMin, logMax := float64(minSize), float64(maxSize)
	for i := range d.Files {
		// Log-uniform: heavy representation of small sizes, as real
		// scientific datasets exhibit.
		u := rng.Float64()
		size := int64(logMin * math.Pow(logMax/logMin, u))
		if size < minSize {
			size = minSize
		}
		if size > maxSize {
			size = maxSize
		}
		d.Files[i] = File{Name: fmt.Sprintf("%s-%06d.dat", label, i), Size: size}
		sum += size
	}
	// Rescale to hit the requested total while respecting bounds.
	scale := float64(totalBytes) / float64(sum)
	var rescaled int64
	for i := range d.Files {
		s := int64(float64(d.Files[i].Size) * scale)
		if s < minSize {
			s = minSize
		}
		if s > maxSize {
			s = maxSize
		}
		d.Files[i].Size = s
		rescaled += s
	}
	return d
}

// Small returns the §4.4 "small" dataset: files 1 KiB – 10 MiB,
// ~120 GiB total. The seed makes generation deterministic.
func Small(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// 120 GiB of files averaging ~2.4 MiB each → ~50k files. That is
	// representative (the paper stresses "lots of small files") while
	// staying cheap to simulate.
	return randomSized("small", rng, 50000, 1*KiB, 10*MiB, 120*GiB)
}

// Large returns the §4.4 "large" dataset: files 100 MiB – 10 GiB,
// ~1 TiB total.
func Large(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	return randomSized("large", rng, 700, 100*MiB, 10*GiB, 1*TiB)
}

// Mixed returns the §4.4 "mixed" dataset: the union of Small and Large
// (~1.2 TiB total).
func Mixed(seed int64) *Dataset {
	s := Small(seed)
	l := Large(seed + 1)
	d := &Dataset{Label: "mixed"}
	d.Files = append(d.Files, s.Files...)
	for _, f := range l.Files {
		d.Files = append(d.Files, File{Name: "mixed-" + f.Name, Size: f.Size})
	}
	for i := range s.Files {
		d.Files[i].Name = "mixed-" + d.Files[i].Name
	}
	return d
}

// Friendliness returns the §4.5 dataset: 1.1 TiB of files between
// 100 MiB and 10 GiB.
func Friendliness(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := randomSized("friendliness", rng, 770, 100*MiB, 10*GiB, 1100*GiB)
	return d
}
