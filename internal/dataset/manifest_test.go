package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	orig := Uniform("rt", 25, 3*MiB)
	var buf bytes.Buffer
	if err := WriteManifest(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != orig.Count() || got.TotalBytes() != orig.TotalBytes() {
		t.Fatalf("round trip changed dataset: %d/%d files, %d/%d bytes",
			got.Count(), orig.Count(), got.TotalBytes(), orig.TotalBytes())
	}
	for i := range got.Files {
		if got.Files[i] != orig.Files[i] {
			t.Fatalf("file %d differs: %+v vs %+v", i, got.Files[i], orig.Files[i])
		}
	}
}

func TestWriteManifestValidation(t *testing.T) {
	if err := WriteManifest(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil dataset accepted")
	}
	bad := &Dataset{Label: "b", Files: []File{{Name: "", Size: 1}}}
	if err := WriteManifest(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestReadManifestErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad size", "name,bytes\nf1,notanumber\n"},
		{"zero size", "name,bytes\nf1,0\n"},
		{"duplicate", "name,bytes\nf1,10\nf1,20\n"},
		{"wrong columns", "a,b,c\n1,2,3\n"},
	}
	for _, c := range cases {
		if _, err := ReadManifest(strings.NewReader(c.in), "x"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadManifestWithoutHeader(t *testing.T) {
	d, err := ReadManifest(strings.NewReader("f1,100\nf2,200\n"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 2 || d.TotalBytes() != 300 {
		t.Fatalf("dataset = %d files, %d bytes", d.Count(), d.TotalBytes())
	}
}
