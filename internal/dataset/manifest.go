package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Manifest I/O: real transfer tools describe datasets as file lists.
// WriteManifest and ReadManifest round-trip a dataset through the
// two-column CSV form `name,bytes`, so cmd tools can operate on
// externally supplied workloads instead of only synthetic generators.

// WriteManifest emits the dataset as CSV with a header row.
func WriteManifest(w io.Writer, d *Dataset) error {
	if d == nil {
		return fmt.Errorf("dataset: nil dataset")
	}
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "bytes"}); err != nil {
		return err
	}
	for _, f := range d.Files {
		if err := cw.Write([]string{f.Name, strconv.FormatInt(f.Size, 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadManifest parses a CSV manifest into a dataset with the given
// label and validates it.
func ReadManifest(r io.Reader, label string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading manifest: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty manifest")
	}
	start := 0
	if records[0][0] == "name" && records[0][1] == "bytes" {
		start = 1
	}
	d := &Dataset{Label: label}
	for i, rec := range records[start:] {
		size, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: manifest row %d: bad size %q", i+start+1, rec[1])
		}
		d.Files = append(d.Files, File{Name: rec[0], Size: size})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
