package dataset

import (
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	d := Uniform("u", 10, 1*GiB)
	if d.Count() != 10 {
		t.Fatalf("Count = %d, want 10", d.Count())
	}
	if d.TotalBytes() != 10*GiB {
		t.Fatalf("TotalBytes = %d, want %d", d.TotalBytes(), int64(10*GiB))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.MeanFileSize() != float64(GiB) {
		t.Fatalf("MeanFileSize = %v, want %v", d.MeanFileSize(), float64(GiB))
	}
	if d.MedianFileSize() != GiB {
		t.Fatalf("MedianFileSize = %v, want %v", d.MedianFileSize(), int64(GiB))
	}
}

func TestUniformPanics(t *testing.T) {
	for _, c := range []struct{ n, size int64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Uniform(%d,%d) did not panic", c.n, c.size)
				}
			}()
			Uniform("x", int(c.n), c.size)
		}()
	}
}

func TestMainDataset(t *testing.T) {
	d := Main()
	if d.Count() != 1000 {
		t.Fatalf("Main count = %d, want 1000", d.Count())
	}
	if d.TotalBytes() != int64(1000*GB) {
		t.Fatalf("Main total = %d, want 1 TB", d.TotalBytes())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSmallDataset(t *testing.T) {
	d := Small(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	total := d.TotalBytes()
	// Within 25% of 120 GiB (rescaling respects per-file bounds, so the
	// total is approximate).
	if total < 90*GiB || total > 150*GiB {
		t.Fatalf("Small total = %d GiB, want ≈120 GiB", total/GiB)
	}
	for _, f := range d.Files {
		if f.Size < 1*KiB || f.Size > 10*MiB {
			t.Fatalf("Small file size %d outside [1KiB, 10MiB]", f.Size)
		}
	}
}

func TestLargeDataset(t *testing.T) {
	d := Large(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	total := d.TotalBytes()
	if total < 700*GiB || total > 1300*GiB {
		t.Fatalf("Large total = %d GiB, want ≈1 TiB", total/GiB)
	}
	for _, f := range d.Files {
		if f.Size < 100*MiB || f.Size > 10*GiB {
			t.Fatalf("Large file size %d outside [100MiB, 10GiB]", f.Size)
		}
	}
}

func TestMixedDataset(t *testing.T) {
	d := Mixed(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s, l := Small(1), Large(2)
	if d.Count() != s.Count()+l.Count() {
		t.Fatalf("Mixed count = %d, want %d", d.Count(), s.Count()+l.Count())
	}
}

func TestFriendlinessDataset(t *testing.T) {
	d := Friendliness(1)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	total := d.TotalBytes()
	if total < 800*GiB || total > 1400*GiB {
		t.Fatalf("Friendliness total = %d GiB, want ≈1.1 TiB", total/GiB)
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a, b := Small(42), Small(42)
	if a.Count() != b.Count() {
		t.Fatal("same seed produced different counts")
	}
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatalf("same seed produced different file %d: %+v vs %+v", i, a.Files[i], b.Files[i])
		}
	}
	c := Small(43)
	same := true
	for i := range a.Files {
		if a.Files[i].Size != c.Files[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	cases := []struct {
		name string
		d    Dataset
	}{
		{"empty label", Dataset{Files: []File{{Name: "a", Size: 1}}}},
		{"empty file name", Dataset{Label: "x", Files: []File{{Name: "", Size: 1}}}},
		{"zero size", Dataset{Label: "x", Files: []File{{Name: "a", Size: 0}}}},
		{"duplicate name", Dataset{Label: "x", Files: []File{{Name: "a", Size: 1}, {Name: "a", Size: 2}}}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: Validate did not error", c.name)
		}
	}
}

func TestEmptyDatasetAccessors(t *testing.T) {
	d := &Dataset{Label: "empty"}
	if d.TotalBytes() != 0 || d.Count() != 0 || d.MeanFileSize() != 0 || d.MedianFileSize() != 0 {
		t.Fatal("empty dataset accessors should all be zero")
	}
}

// Property: for any valid seed, generated datasets validate and sizes
// stay within the documented bounds.
func TestDatasetBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := Large(seed)
		if d.Validate() != nil {
			return false
		}
		for _, file := range d.Files {
			if file.Size < 100*MiB || file.Size > 10*GiB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
