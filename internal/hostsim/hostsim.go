// Package hostsim models the end hosts of a transfer: NIC capacity and
// the CPU cost of driving many simultaneous connections.
//
// The paper's §2 ("Overburdened Network and End Hosts") observes that
// very high concurrency "overwhelm[s] end system ... resources by
// creating too many processes and network connections" even when it no
// longer increases throughput. We model that as a host CPU resource
// whose effective capacity shrinks gently with the number of active
// connections: context-switch and interrupt overhead consume cycles
// that would otherwise move bytes. This is what makes "just enough"
// concurrency strictly better than "as much as possible" on testbeds
// where packet loss stays zero (the sender-limited case of §3.1).
package hostsim

import "fmt"

// Host describes one end host (data transfer node).
type Host struct {
	// Name identifies the host in diagnostics.
	Name string
	// NICCap is the network interface capacity in bits/s.
	NICCap float64
	// CPUCap is the host's peak data-movement capacity with a handful
	// of connections, in bits/s. Typically above NICCap so the NIC is
	// the binding constraint at sane concurrency.
	CPUCap float64
	// ConnOverhead is the fractional CPU capacity consumed per active
	// connection (e.g. 0.003 → 0.3 % per connection). Zero disables
	// the CPU model.
	ConnOverhead float64
	// MaxDegradation bounds the CPU penalty; effective capacity never
	// drops below (1-MaxDegradation)·CPUCap. Zero means 0.6.
	MaxDegradation float64
}

// Validate checks the configuration.
func (h Host) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("hostsim: host with empty name")
	}
	if h.NICCap <= 0 {
		return fmt.Errorf("hostsim: host %q NICCap %v must be positive", h.Name, h.NICCap)
	}
	if h.CPUCap <= 0 {
		return fmt.Errorf("hostsim: host %q CPUCap %v must be positive", h.Name, h.CPUCap)
	}
	if h.ConnOverhead < 0 || h.ConnOverhead >= 1 {
		return fmt.Errorf("hostsim: host %q ConnOverhead %v outside [0,1)", h.Name, h.ConnOverhead)
	}
	if h.MaxDegradation < 0 || h.MaxDegradation >= 1 {
		return fmt.Errorf("hostsim: host %q MaxDegradation %v outside [0,1)", h.Name, h.MaxDegradation)
	}
	return nil
}

func (h Host) maxDegradation() float64 {
	if h.MaxDegradation > 0 {
		return h.MaxDegradation
	}
	return 0.6
}

// EffectiveCPU returns the host's data-movement capacity when `conns`
// connections are active across all tasks using this host:
//
//	cpu(m) = CPUCap / (1 + overhead·m)
//
// bounded below by (1-MaxDegradation)·CPUCap.
func (h Host) EffectiveCPU(conns int) float64 {
	if conns < 0 {
		panic(fmt.Sprintf("hostsim: negative connection count %d", conns))
	}
	capv := h.CPUCap
	if h.ConnOverhead > 0 {
		capv = h.CPUCap / (1 + h.ConnOverhead*float64(conns))
	}
	if floor := (1 - h.maxDegradation()) * h.CPUCap; capv < floor {
		capv = floor
	}
	return capv
}

// DTN returns a typical data transfer node with the given NIC capacity:
// CPU headroom of 1.5× the NIC and 0.3 % per-connection overhead.
func DTN(name string, nicCap float64) Host {
	return Host{
		Name:         name,
		NICCap:       nicCap,
		CPUCap:       1.5 * nicCap,
		ConnOverhead: 0.003,
	}
}
