package hostsim

import (
	"testing"
	"testing/quick"
)

func validHost() Host {
	return Host{Name: "h", NICCap: 10e9, CPUCap: 15e9, ConnOverhead: 0.003}
}

func TestValidate(t *testing.T) {
	h := validHost()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Host)
	}{
		{"empty name", func(h *Host) { h.Name = "" }},
		{"zero nic", func(h *Host) { h.NICCap = 0 }},
		{"zero cpu", func(h *Host) { h.CPUCap = 0 }},
		{"overhead 1", func(h *Host) { h.ConnOverhead = 1 }},
		{"negative overhead", func(h *Host) { h.ConnOverhead = -0.1 }},
		{"degradation 1", func(h *Host) { h.MaxDegradation = 1 }},
	}
	for _, c := range cases {
		h := validHost()
		c.mutate(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("%s: Validate did not error", c.name)
		}
	}
}

func TestEffectiveCPUZeroConnections(t *testing.T) {
	h := validHost()
	if got := h.EffectiveCPU(0); got != 15e9 {
		t.Fatalf("EffectiveCPU(0) = %v, want CPUCap", got)
	}
}

func TestEffectiveCPUDecreases(t *testing.T) {
	h := validHost()
	at100 := h.EffectiveCPU(100) // 15e9 / 1.3
	want := 15e9 / 1.3
	if diff := at100 - want; diff > 1 || diff < -1 {
		t.Fatalf("EffectiveCPU(100) = %v, want %v", at100, want)
	}
	if h.EffectiveCPU(200) >= at100 {
		t.Fatal("capacity should decrease with more connections")
	}
}

func TestEffectiveCPUFloor(t *testing.T) {
	h := validHost()
	// Default 60% max degradation.
	if got := h.EffectiveCPU(1_000_000); got != 0.4*15e9 {
		t.Fatalf("floored CPU = %v, want %v", got, 0.4*15e9)
	}
	h.MaxDegradation = 0.25
	if got := h.EffectiveCPU(1_000_000); got != 0.75*15e9 {
		t.Fatalf("floored CPU = %v, want %v", got, 0.75*15e9)
	}
}

func TestEffectiveCPUDisabled(t *testing.T) {
	h := validHost()
	h.ConnOverhead = 0
	if got := h.EffectiveCPU(10_000); got != h.CPUCap {
		t.Fatalf("disabled overhead: EffectiveCPU = %v, want CPUCap", got)
	}
}

func TestEffectiveCPUNegativePanics(t *testing.T) {
	h := validHost()
	defer func() {
		if recover() == nil {
			t.Error("EffectiveCPU(-1) did not panic")
		}
	}()
	h.EffectiveCPU(-1)
}

func TestDTNPreset(t *testing.T) {
	h := DTN("dtn", 40e9)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.NICCap != 40e9 || h.CPUCap != 60e9 {
		t.Fatalf("DTN caps = %v/%v, want 40e9/60e9", h.NICCap, h.CPUCap)
	}
	// With few connections the NIC must bind, not the CPU.
	if h.EffectiveCPU(8) <= h.NICCap {
		t.Fatal("CPU should exceed NIC at low connection counts")
	}
}

// Property: EffectiveCPU is non-increasing and bounded.
func TestEffectiveCPUMonotoneProperty(t *testing.T) {
	f := func(ov uint8) bool {
		h := validHost()
		h.ConnOverhead = float64(ov%100) / 1000
		prev := h.EffectiveCPU(0)
		for m := 1; m <= 256; m *= 2 {
			cur := h.EffectiveCPU(m)
			if cur > prev+1e-9 || cur > h.CPUCap || cur < (1-h.maxDegradation())*h.CPUCap-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
