package loadgen

import (
	"net/http/httptest"
	"testing"

	"repro/internal/webservice"
)

// TestLoadgenAgainstInProcessService drives a small mixed workload at
// an httptest service and checks the measurement invariants: every
// request accounted, no errors, nonzero throughput, the hot mixture
// producing cache or coalesce hits, and every duplicate group
// resolving to exactly one simulation with bitwise-equal results.
func TestLoadgenAgainstInProcessService(t *testing.T) {
	svc := webservice.NewWithOptions(webservice.Options{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.BeginDrain()
		svc.Close()
	}()

	res, err := Run(Options{
		BaseURL:     ts.URL,
		Requests:    48,
		Concurrency: 8,
		HotWeight:   0.4, UniqueWeight: 0.2, DupWeight: 0.4,
		DupWidth:    4,
		SSEFraction: 0.3,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 48 {
		t.Fatalf("requests = %d, want 48", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.RequestsPerSec <= 0 || res.Seconds <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("latency percentiles implausible: p50=%v p99=%v", res.P50Ms, res.P99Ms)
	}
	if res.CacheHits+res.CoalesceHits == 0 {
		t.Fatal("hot mixture produced no cache or coalesce hits")
	}
	if res.Simulated == 0 {
		t.Fatal("no request simulated")
	}
	if res.DupGroups == 0 {
		t.Fatal("no duplicate groups issued")
	}
	if !res.DupSingleRun {
		t.Fatal("a duplicate group ran more than one simulation")
	}
	if !res.DupBitwiseEqual {
		t.Fatal("duplicate-group results not bitwise equal")
	}
	if res.SSEStreams == 0 {
		t.Fatal("no request followed over SSE")
	}
	if res.CacheHits+res.CoalesceHits+res.Simulated != res.Requests {
		t.Fatalf("accounting mismatch: %+v", res)
	}
}
