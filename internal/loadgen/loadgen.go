// Package loadgen drives the Falcon web service with configurable
// mixtures of scenario requests and reports serving throughput — the
// load half of ROADMAP item 4's "load-tested throughput". It speaks
// only the public HTTP API, so it can target an in-process service
// (cmd/falconload -inproc, used by simbench and the CI load smoke) or
// any running falconweb.
//
// A workload is a deterministic sequence of request units drawn from
// three kinds:
//
//   - hot: every request POSTs the same document, so after the first
//     completes the rest are content-addressed cache hits.
//   - unique: every request POSTs a document with a fresh seed, so
//     each one simulates.
//   - dup: a group of Width identical requests with a fresh seed
//     POSTed concurrently, exercising single-flight coalescing — the
//     group must resolve with exactly one simulation and bitwise-equal
//     results for every member.
//
// Each request is followed to completion either by polling the JSON
// endpoint or by holding the SSE event stream, per SSEFraction.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fastrand"
)

// Options configures one load run.
type Options struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of scenario submissions (a dup
	// group of Width counts as Width requests).
	Requests int
	// Concurrency is the worker count driving request units. A dup
	// group occupies one worker but issues its Width POSTs
	// concurrently, so peak connection concurrency can exceed this.
	Concurrency int
	// HotWeight, UniqueWeight, and DupWeight set the request mixture;
	// they are normalised over their sum (all zero = all hot).
	HotWeight    float64
	UniqueWeight float64
	DupWeight    float64
	// DupWidth is the size of each duplicate-in-flight group (min 2).
	DupWidth int
	// SSEFraction of requests follow their scenario over the SSE
	// stream; the rest poll the JSON endpoint.
	SSEFraction float64
	// Testbed and DurationSeconds shape the simulated scenario
	// (defaults "emulab", 30 s — the cheapest accepted simulation).
	Testbed         string
	DurationSeconds float64
	// DupAgents is the agent count for duplicate-group scenarios
	// (default 8). Duplicate groups deliberately use a heavier
	// document than the hot/unique mixtures: the simulator is
	// event-driven, so a single-agent scenario completes in ~1 ms of
	// wall time and the leader can finish before concurrent waiters
	// are even scheduled — a wide in-flight window needs event volume,
	// not simulated seconds.
	DupAgents int
	// Seed makes the workload sequence and seed assignment
	// deterministic.
	Seed int64
	// PollInterval is the JSON-poll cadence (default 2 ms).
	PollInterval time.Duration
}

// Result is the measured outcome of one load run.
type Result struct {
	Requests       int     `json:"requests"`
	Errors         int     `json:"errors"`
	Seconds        float64 `json:"seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	// P50Ms and P99Ms are percentiles of per-request completion
	// latency: POST issued → terminal status observed.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// CacheHits and CoalesceHits count terminal responses whose
	// cached/coalesced flags were set; Simulated counts the rest.
	CacheHits       int     `json:"cache_hits"`
	CoalesceHits    int     `json:"coalesce_hits"`
	Simulated       int     `json:"simulated"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	// DupGroups is the number of duplicate-in-flight groups issued.
	DupGroups int `json:"dup_groups"`
	// DupSingleRun reports that every dup group resolved with exactly
	// one simulated member (the rest coalesced or hit the cache).
	DupSingleRun bool `json:"dup_single_run"`
	// DupBitwiseEqual reports that within every dup group all members
	// observed byte-identical results and equal Jain indices.
	DupBitwiseEqual bool `json:"dup_bitwise_equal"`
	// SSEStreams counts requests followed over the event stream.
	SSEStreams int `json:"sse_streams"`
}

// scenarioStatus is the subset of the scenario view the generator
// inspects. Results stays raw so bitwise comparison is exact.
type scenarioStatus struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"`
	Error     string          `json:"error"`
	Results   json.RawMessage `json:"results"`
	JainIndex float64         `json:"jain_index"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced"`
}

type taskKind int

const (
	taskHot taskKind = iota
	taskUnique
	taskDup
)

type task struct {
	kind taskKind
	// seed is the scenario seed for unique requests and dup groups.
	seed int64
	// sse marks the request (or, for dup groups, the whole group) to
	// follow via the event stream.
	sse bool
}

// Run executes the workload and reports the measurements.
func Run(o Options) (Result, error) {
	if o.Requests < 1 {
		return Result{}, fmt.Errorf("loadgen: requests must be ≥1")
	}
	if o.Concurrency < 1 {
		o.Concurrency = 1
	}
	if o.DupWidth < 2 {
		o.DupWidth = 2
	}
	if o.DupAgents == 0 {
		o.DupAgents = 8
	}
	if o.Testbed == "" {
		o.Testbed = "emulab"
	}
	if o.DurationSeconds == 0 {
		o.DurationSeconds = 30
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	base := strings.TrimRight(o.BaseURL, "/")

	tasks := buildTasks(o)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Concurrency*o.DupWidth + 16,
		MaxIdleConnsPerHost: o.Concurrency*o.DupWidth + 16,
	}}

	g := &generator{opts: o, base: base, client: client}
	queue := make(chan task)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range queue {
				g.runTask(t)
			}
		}()
	}
	for _, t := range tasks {
		queue <- t
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	g.mu.Lock()
	defer g.mu.Unlock()
	res := g.result
	res.Seconds = elapsed
	if elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / elapsed
	}
	if res.Requests > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(res.Requests)
		res.CoalesceHitRate = float64(res.CoalesceHits) / float64(res.Requests)
	}
	res.P50Ms, res.P99Ms = percentiles(g.latencies)
	res.DupSingleRun = res.DupGroups > 0 && g.dupMultiRun == 0
	res.DupBitwiseEqual = res.DupGroups > 0 && g.dupMismatch == 0
	return res, g.firstErr
}

// buildTasks lays out the deterministic workload: per-kind counts by
// weight (dup rounded to whole groups), then a seeded shuffle so the
// kinds interleave.
func buildTasks(o Options) []task {
	wsum := o.HotWeight + o.UniqueWeight + o.DupWeight
	if wsum <= 0 {
		wsum, o.HotWeight = 1, 1
	}
	nDupReq := int(float64(o.Requests) * o.DupWeight / wsum)
	nGroups := nDupReq / o.DupWidth
	nDupReq = nGroups * o.DupWidth
	nUnique := int(float64(o.Requests) * o.UniqueWeight / wsum)
	if nUnique > o.Requests-nDupReq {
		nUnique = o.Requests - nDupReq
	}
	nHot := o.Requests - nDupReq - nUnique

	rng := rand.New(fastrand.New(o.Seed))
	var tasks []task
	for i := 0; i < nHot; i++ {
		tasks = append(tasks, task{kind: taskHot, seed: o.Seed})
	}
	for i := 0; i < nUnique; i++ {
		tasks = append(tasks, task{kind: taskUnique, seed: o.Seed + 1000 + int64(i)})
	}
	for g := 0; g < nGroups; g++ {
		tasks = append(tasks, task{kind: taskDup, seed: o.Seed + 500000 + int64(g)})
	}
	rng.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
	// Assign SSE follows on a deterministic stride over the shuffled
	// order so both follow modes hit every kind.
	if o.SSEFraction > 0 {
		period := int(1 / o.SSEFraction)
		if period < 1 {
			period = 1
		}
		for i := range tasks {
			if i%period == 0 {
				tasks[i].sse = true
			}
		}
	}
	return tasks
}

// generator accumulates measurements across workers.
type generator struct {
	opts   Options
	base   string
	client *http.Client

	mu          sync.Mutex
	result      Result
	latencies   []float64 // milliseconds
	dupMultiRun int
	dupMismatch int
	firstErr    error
}

func (g *generator) body(seed int64) string {
	return fmt.Sprintf(`{"testbed":%q,"algorithm":"gd","duration_seconds":%g,"seed":%d}`,
		g.opts.Testbed, g.opts.DurationSeconds, seed)
}

// dupBody is the duplicate-group scenario: many agents over a long
// horizon so the simulation's wall time comfortably exceeds request
// scheduling skew and concurrent duplicates land inside the leader's
// in-flight window.
func (g *generator) dupBody(seed int64) string {
	return fmt.Sprintf(`{"testbed":%q,"algorithm":"gd","agents":%d,"stagger_seconds":30,"duration_seconds":3600,"seed":%d}`,
		g.opts.Testbed, g.opts.DupAgents, seed)
}

func (g *generator) runTask(t task) {
	switch t.kind {
	case taskDup:
		g.runDupGroup(t)
	default:
		st, ms, err := g.oneRequest(g.body(t.seed), t.sse)
		g.record(st, ms, err, t.sse)
	}
}

// runDupGroup issues Width identical POSTs concurrently and, once all
// resolve, checks the coalescing invariants: exactly one member
// simulated, every member's results byte-identical.
func (g *generator) runDupGroup(t task) {
	width := g.opts.DupWidth
	body := g.dupBody(t.seed)
	sts := make([]*scenarioStatus, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, ms, err := g.oneRequest(body, t.sse)
			g.record(st, ms, err, t.sse)
			sts[i] = st
		}(i)
	}
	wg.Wait()

	simulated := 0
	mismatch := false
	var ref *scenarioStatus
	for _, st := range sts {
		if st == nil || st.Status != "done" {
			mismatch = true
			continue
		}
		if !st.Cached && !st.Coalesced {
			simulated++
		}
		if ref == nil {
			ref = st
		} else if !bytes.Equal(ref.Results, st.Results) || ref.JainIndex != st.JainIndex {
			mismatch = true
		}
	}
	g.mu.Lock()
	g.result.DupGroups++
	if simulated != 1 {
		g.dupMultiRun++
	}
	if mismatch {
		g.dupMismatch++
	}
	g.mu.Unlock()
}

func (g *generator) record(st *scenarioStatus, ms float64, err error, sse bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.result.Requests++
	if sse {
		g.result.SSEStreams++
	}
	if err != nil {
		g.result.Errors++
		if g.firstErr == nil {
			g.firstErr = err
		}
		return
	}
	g.latencies = append(g.latencies, ms)
	switch {
	case st.Cached:
		g.result.CacheHits++
	case st.Coalesced:
		g.result.CoalesceHits++
	default:
		g.result.Simulated++
	}
}

// oneRequest POSTs a scenario and follows it to a terminal status,
// returning the final view and the completion latency in ms.
func (g *generator) oneRequest(body string, sse bool) (*scenarioStatus, float64, error) {
	start := time.Now()
	resp, err := g.client.Post(g.base+"/api/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	var created struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, 0, fmt.Errorf("POST /api/scenarios: status %d (%s)", resp.StatusCode, created.Error)
	}
	var st *scenarioStatus
	if sse {
		st, err = g.followSSE(created.ID)
	} else {
		st, err = g.poll(created.ID)
	}
	if err != nil {
		return nil, 0, err
	}
	if st.Status == "failed" {
		return nil, 0, fmt.Errorf("scenario %s failed: %s", created.ID, st.Error)
	}
	return st, float64(time.Since(start).Microseconds()) / 1000, nil
}

func (g *generator) poll(id string) (*scenarioStatus, error) {
	url := g.base + "/api/scenarios/" + id
	for {
		resp, err := g.client.Get(url)
		if err != nil {
			return nil, err
		}
		var st scenarioStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if st.Status == "done" || st.Status == "failed" {
			return &st, nil
		}
		time.Sleep(g.opts.PollInterval)
	}
}

// followSSE holds the scenario's event stream until the terminal
// "done" event and decodes its data as the final scenario view.
func (g *generator) followSSE(id string) (*scenarioStatus, error) {
	resp, err := g.client.Get(g.base + "/api/scenarios/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET events: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == "done" {
				var st scenarioStatus
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
					return nil, err
				}
				return &st, nil
			}
			if event == "shutdown" {
				return nil, fmt.Errorf("scenario %s: server drained mid-stream", id)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("scenario %s: event stream ended without done", id)
}

// percentiles returns the p50 and p99 of the latency sample.
func percentiles(ms []float64) (p50, p99 float64) {
	if len(ms) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99)
}
