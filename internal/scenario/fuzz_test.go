package scenario

import (
	"path/filepath"
	"testing"
)

// FuzzParse: the parser/validator must return errors on malformed
// input — malformed JSON, negative times, unknown references,
// overlapping mutations — and never panic. Valid documents must be
// canonical fixed points: re-parsing the canonical encoding yields the
// same hash.
func FuzzParse(f *testing.F) {
	// Every checked-in example is a seed.
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range files {
		d, err := ParseFile(path)
		if err != nil {
			f.Fatalf("%s: %v", path, err)
		}
		canon, err := d.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(canon)
	}
	// Malformed shapes the validator must reject without panicking.
	for _, s := range []string{
		``,
		`{`,
		`null`,
		`[]`,
		`{"version":-1}`,
		`{"preset":"emulab","agents":[{}]}{}`,
		`{"preset":"emulab","agents":[{"join_at":-1}]}`,
		`{"preset":"emulab","agents":[{"count":-5}]}`,
		`{"preset":"emulab","duration_seconds":1e308,"agents":[{}]}`,
		`{"preset":"emulab","agents":[{}],"mutations":[{"at":-3,"kind":"rtt","rtt":0.1}]}`,
		`{"preset":"emulab","agents":[{}],"mutations":[{"at":1,"kind":"grow-dataset","agent":"ghost"}]}`,
		`{"preset":"fleet","agents":[{}],"topology":{"nodes":["a"],"links":[{"id":"l","a":"a","b":"zz","capacity":1,"latency":0}],"src":"a","dst":"zz"}}`,
		`{"preset":"fleet","agents":[{}],"topology":{"dumbbell":{"hosts":1,"access_cap":1,"bottleneck_cap":1}},"mutations":[{"at":1,"kind":"cross-traffic","link":"bottleneck","rate":1,"duration_seconds":5},{"at":3,"kind":"cross-traffic","link":"bottleneck","rate":1,"duration_seconds":5}]}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(data) // must never panic
		if err != nil {
			return
		}
		// A document Parse accepts must be internally consistent:
		// canonicalisable, hashable, and a canonical fixed point.
		h1, err := d.Hash()
		if err != nil {
			t.Fatalf("valid document failed to hash: %v", err)
		}
		canon, err := d.Canonical()
		if err != nil {
			t.Fatalf("valid document failed to canonicalise: %v", err)
		}
		d2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v", err)
		}
		h2, err := d2.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("canonical round-trip changed the hash: %s vs %s", h1, h2)
		}
	})
}
