package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// presetNames lists the built-in environments in canonical order.
var presetNames = []string{"emulab", "emulab-1g", "xsede", "hpclab", "campus", "wan", "fleet"}

// Presets returns the built-in environment names.
func Presets() []string { return append([]string(nil), presetNames...) }

// PresetConfig resolves a named environment: the paper's Table 1
// testbeds plus the WAN path and the fleet-contention bottleneck. It
// is the single lookup behind cmd/falconsim, cmd/fleet, the
// webservice, and experiments, so the name space is identical
// everywhere; the golden tests pin the checked-in scenario files in
// examples/scenarios/ to these configs.
func PresetConfig(name string) (testbed.Config, bool) {
	switch name {
	case "emulab":
		return testbed.Emulab(10e6), true
	case "emulab-1g":
		return testbed.EmulabGigabit(20.83e6), true
	case "xsede":
		return testbed.XSEDE(), true
	case "hpclab":
		return testbed.HPCLab(), true
	case "campus":
		return testbed.CampusCluster(), true
	case "wan":
		return testbed.StampedeCometWAN(), true
	case "fleet":
		return fleetConfig(), true
	}
	return testbed.Config{}, false
}

// fleetConfig is the shared-bottleneck fleet environment: a 10 Gbps
// WAN-ish path whose storage and hosts are provisioned far above the
// link, so every session contends for the same network resource.
// experiments.FleetTestbed delegates here.
func fleetConfig() testbed.Config {
	return testbed.Config{
		Name:           "fleet",
		SrcStore:       StoreSpec{Name: "fleet-src", PerProcCap: 400e6, AggregateCap: 400e9}.Store(),
		DstStore:       StoreSpec{Name: "fleet-dst", PerProcCap: 400e6, AggregateCap: 400e9}.Store(),
		SrcHost:        HostSpec{Name: "fleet-src", NICCap: 100e9, CPUCap: 150e9, ConnOverhead: 0.003}.Host(),
		DstHost:        HostSpec{Name: "fleet-dst", NICCap: 100e9, CPUCap: 150e9, ConnOverhead: 0.003}.Host(),
		LinkCapacity:   10e9,
		RTT:            0.030,
		SampleInterval: 3,
		NoiseStdDev:    0.01,
		Bottleneck:     "Network",
	}
}

// Run is a compiled scenario: the environment config, the expanded
// participant roster (tasks already constructed), and the mutation
// schedule as engine horizons. Tasks are stateful, so a Run drives at
// most one execution; Build again for another.
type Run struct {
	// Doc is the normalised source document.
	Doc *Document
	// Config is the compiled environment.
	Config testbed.Config
	// AgentIDs is the expanded roster in join-spec order.
	AgentIDs []string
	// Participants couple each agent's task, controller, and schedule.
	Participants []testbed.Participant
	// Mutations is the compiled schedule, sorted by time, lowered onto
	// the default src→dst route. Legacy consumers driving Config +
	// NewEngine directly use it; sharded execution uses the per-shard
	// schedules in Shards.
	Mutations []testbed.Mutation
	// Shards partitions the roster into independent contention
	// domains, in first-appearance order. Always at least one; for
	// documents without pinned links it is exactly one shard holding
	// everyone, and Execute behaves as the unsharded run.
	Shards []ShardPlan

	used bool
}

// Build compiles the document: resolve the environment (preset or
// explicit, with topology-derived link capacity and RTT), expand the
// roster into participants with constructed controllers and tasks, and
// compile the mutation schedule — cross-traffic waves become absolute
// capacity set/restore pairs, topology link changes become path-
// bottleneck changes. The document is normalised and validated first,
// so Build returns errors rather than panicking on bad input.
func (d *Document) Build() (*Run, error) {
	if err := d.Normalise(); err != nil {
		return nil, err
	}
	cfg, err := d.buildConfig()
	if err != nil {
		return nil, err
	}
	r := &Run{Doc: d, Config: cfg, AgentIDs: d.AgentIDs()}
	n := 0
	for i := range d.Agents {
		a := &d.Agents[i]
		for j := 0; j < a.Count; j++ {
			id := r.AgentIDs[n]
			seed := d.Seed + int64(n)
			n++
			ctrl, err := buildController(a.Algorithm, a.MaxConcurrency, seed)
			if err != nil {
				return nil, fmt.Errorf("scenario: agent %q: %w", id, err)
			}
			label := a.Dataset.Label
			if label == "" {
				label = id
			}
			initial := transfer.Setting{
				Concurrency: a.Initial.Concurrency,
				Parallelism: a.Initial.Parallelism,
				Pipelining:  a.Initial.Pipelining,
			}
			task, err := transfer.NewTask(id, dataset.Uniform(label, a.Dataset.Count, a.Dataset.Size), initial)
			if err != nil {
				return nil, fmt.Errorf("scenario: agent %q: %w", id, err)
			}
			r.Participants = append(r.Participants, testbed.Participant{
				Task:           task,
				Controller:     ctrl,
				JoinAt:         a.JoinAt + float64(j)*a.JoinStagger,
				LeaveAt:        a.LeaveAt,
				SampleInterval: a.SampleInterval,
			})
		}
	}
	if err := d.partition(r, d.baseConfig()); err != nil {
		return nil, err
	}
	r.Mutations, err = d.compileMutations(cfg)
	if err != nil {
		return nil, err
	}
	// Per-shard schedules: same replay, lowered onto each shard's own
	// route, growths delivered to the owning shard.
	routes := make([][]string, len(r.Shards))
	for k := range r.Shards {
		routes[k] = r.Shards[k].Links
	}
	shardOfAgent := make(map[string]int, len(r.AgentIDs))
	for k := range r.Shards {
		for _, idx := range r.Shards[k].Participants {
			shardOfAgent[r.AgentIDs[idx]] = k
		}
	}
	perShard, err := d.compileMutationsFor(cfg, routes, shardOfAgent)
	if err != nil {
		return nil, err
	}
	for k := range r.Shards {
		r.Shards[k].Mutations = perShard[k]
	}
	return r, nil
}

// baseConfig resolves the preset or explicit environment, before any
// route-derived capacity/RTT is applied.
func (d *Document) baseConfig() testbed.Config {
	if d.Preset != "" {
		cfg, _ := PresetConfig(d.Preset)
		return cfg
	}
	return d.Environment.Config()
}

// buildConfig resolves preset/environment and applies the topology's
// routed link capacity and RTT.
func (d *Document) buildConfig() (testbed.Config, error) {
	cfg := d.baseConfig()
	if d.Topology != nil {
		_, bottleneck, rtt, err := d.routeState()
		if err != nil {
			return cfg, err
		}
		cfg.LinkCapacity = bottleneck
		cfg.RTT = rtt
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario: %w", err)
	}
	return cfg, nil
}

// buildTopology constructs the netsim graph and route endpoints.
// Validation has already checked every reference, so the netsim
// construction panics cannot fire.
func (d *Document) buildTopology() (t *netsim.Topology, src, dst string) {
	ts := d.Topology
	if ts.Dumbbell != nil {
		db := ts.Dumbbell
		t = netsim.Dumbbell(db.Hosts, db.AccessCap, db.BottleneckCap, db.BottleneckLatency)
		src, dst = ts.Src, ts.Dst
		if src == "" {
			src = "src0"
		}
		if dst == "" {
			dst = "dst0"
		}
		return t, src, dst
	}
	t = netsim.NewTopology()
	for _, n := range ts.Nodes {
		t.AddNode(n)
	}
	for _, l := range ts.Links {
		t.AddLink(l.ID, l.A, l.B, l.Capacity, l.Latency)
	}
	return t, ts.Src, ts.Dst
}

// routeState routes the topology and returns the transfer path's link
// IDs in order, the path bottleneck capacity, and the path RTT.
func (d *Document) routeState() (links []string, bottleneck, rtt float64, err error) {
	t, src, dst := d.buildTopology()
	links, rtt, err = t.Route(src, dst)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("scenario: topology: %w", err)
	}
	if len(links) == 0 {
		return nil, 0, 0, fmt.Errorf("scenario: topology: empty route from %q to %q", src, dst)
	}
	capOf := make(map[string]float64)
	for _, r := range t.Resources() {
		capOf[r.ID] = r.Capacity
	}
	bottleneck = math.Inf(1)
	for _, id := range links {
		if capOf[id] < bottleneck {
			bottleneck = capOf[id]
		}
	}
	return links, bottleneck, rtt, nil
}

// linkCapacities returns the initial capacity of every topology link,
// or the single flat link when the document has no topology (keyed "").
func (d *Document) linkCapacities(cfg testbed.Config) map[string]float64 {
	caps := make(map[string]float64)
	if d.Topology == nil {
		caps[""] = cfg.LinkCapacity
		return caps
	}
	t, _, _ := d.buildTopology()
	for _, r := range t.Resources() {
		caps[r.ID] = r.Capacity
	}
	return caps
}

// compileMutations lowers the declarative schedule onto the default
// src→dst route, for legacy consumers driving Run.Config + NewEngine
// directly. It is the single-route case of compileMutationsFor.
func (d *Document) compileMutations(cfg testbed.Config) ([]testbed.Mutation, error) {
	route := []string{""}
	if d.Topology != nil {
		var err error
		route, _, _, err = d.routeState()
		if err != nil {
			return nil, err
		}
	}
	out, err := d.compileMutationsFor(cfg, [][]string{route}, nil)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// compileMutationsFor lowers the declarative schedule onto a set of
// routes: every event is replayed in time order over one shared
// per-link capacity state, and whenever a route's bottleneck value
// changes a testbed.MutLinkCapacity horizon is emitted to that route's
// schedule with the new absolute capacity. Cross-traffic waves are a
// claim/restore pair over the shared state; changes to links off a
// route track state but emit nothing there (they cannot affect that
// path). RTT and store mutations lower onto every schedule (they
// describe the shared endpoints); grow-dataset mutations lower onto
// the schedule shardOfAgent maps the target agent to (every schedule
// gets index 0 when shardOfAgent is nil).
func (d *Document) compileMutationsFor(cfg testbed.Config, routes [][]string, shardOfAgent map[string]int) ([][]testbed.Mutation, error) {
	out := make([][]testbed.Mutation, len(routes))
	if len(d.Mutations) == 0 {
		return out, nil
	}
	caps := d.linkCapacities(cfg)
	minOf := func(k int) float64 {
		b := math.Inf(1)
		for _, id := range routes[k] {
			if caps[id] < b {
				b = caps[id]
			}
		}
		return b
	}
	cur := make([]float64, len(routes))
	for k := range routes {
		cur[k] = minOf(k)
	}

	// One event per point mutation, two per cross-traffic wave.
	type event struct {
		at   float64
		idx  int // source mutation index (tie-break)
		end  bool
		spec *MutationSpec
	}
	events := make([]event, 0, len(d.Mutations))
	for i := range d.Mutations {
		m := &d.Mutations[i]
		events = append(events, event{at: m.At, idx: i, spec: m})
		if m.Kind == KindCrossTraffic {
			events = append(events, event{at: m.At + m.DurationSeconds, idx: i, end: true, spec: m})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].idx < events[b].idx
	})

	waveSaved := make(map[int]float64, len(events))
	emitLink := func(at float64) {
		for k := range routes {
			if b := minOf(k); b != cur[k] {
				cur[k] = b
				out[k] = append(out[k], testbed.Mutation{At: at, Kind: testbed.MutLinkCapacity, Capacity: b})
			}
		}
	}
	emitAll := func(m testbed.Mutation) {
		for k := range out {
			out[k] = append(out[k], m)
		}
	}
	for _, ev := range events {
		m := ev.spec
		switch m.Kind {
		case KindLinkCapacity:
			caps[m.Link] = m.Capacity
			emitLink(ev.at)
		case KindCrossTraffic:
			if ev.end {
				caps[m.Link] = waveSaved[ev.idx]
				emitLink(ev.at)
				break
			}
			have := caps[m.Link]
			if m.Rate >= have {
				return nil, fmt.Errorf("scenario: mutation %d cross-traffic rate %g ≥ link capacity %g at t=%g",
					ev.idx, m.Rate, have, ev.at)
			}
			waveSaved[ev.idx] = have
			caps[m.Link] = have - m.Rate
			emitLink(ev.at)
		case KindRTT:
			emitAll(testbed.Mutation{At: ev.at, Kind: testbed.MutRTT, RTT: m.RTT})
		case KindSrcStore:
			emitAll(testbed.Mutation{At: ev.at, Kind: testbed.MutSrcStore, Capacity: m.Capacity, PerProc: m.PerProc})
		case KindDstStore:
			emitAll(testbed.Mutation{At: ev.at, Kind: testbed.MutDstStore, Capacity: m.Capacity, PerProc: m.PerProc})
		case KindGrowDataset:
			files := make([]dataset.File, m.Grow.Count)
			for j := range files {
				// Names are namespaced by the mutation index so repeated
				// growths of one agent can never collide with each other
				// or with the base "<label>-NNNNNN.dat" files.
				files[j] = dataset.File{Name: fmt.Sprintf("%s-grow%d-%06d.dat", m.Agent, ev.idx, j), Size: m.Grow.Size}
			}
			k := 0
			if shardOfAgent != nil {
				k = shardOfAgent[m.Agent]
			}
			out[k] = append(out[k], testbed.Mutation{At: ev.at, Kind: testbed.MutGrowDataset, Task: m.Agent, Files: files})
		}
	}
	return out, nil
}

// buildController constructs the agent's decision maker; the name
// space matches cmd/falconsim's -algo flag.
func buildController(algo string, maxN int, seed int64) (testbed.Controller, error) {
	switch {
	case algo == "gd" || algo == "bo" || algo == "hc":
		return core.NewAgentByName(algo, maxN, seed)
	case algo == "globus":
		return baselines.NewGlobus(dataset.Main())
	case algo == "harp":
		return baselines.NewHARP(baselines.SyntheticHistory(1.2e9, 9.5e9, 16), maxN)
	case strings.HasPrefix(algo, "fixed:"):
		n, err := strconv.Atoi(strings.TrimPrefix(algo, "fixed:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fixed concurrency %q", algo)
		}
		return testbed.FixedController{S: transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1}}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", algo)
}

// NewEngine constructs the run's engine with every compiled mutation
// scheduled as a horizon.
func (r *Run) NewEngine() (*testbed.Engine, error) {
	eng, err := testbed.NewEngine(r.Config, r.Doc.Seed)
	if err != nil {
		return nil, err
	}
	for _, m := range r.Mutations {
		if err := eng.ScheduleMutation(m); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// ExecOptions hook observers into an execution.
type ExecOptions struct {
	// Logf receives progress lines (joins, leaves, completions).
	Logf func(format string, args ...any)
	// Events receives the typed session event stream. Single-shard
	// runs deliver events live; multi-shard runs deliver them after
	// the run in merged (time, shard) order.
	Events session.Sink
	// Workers bounds how many shards step concurrently: ≤1 serial, 0
	// the parallel harness default. Output never depends on it.
	Workers int
}

// ShardSpecs converts the compiled shard plans into testbed shard
// specs, resolving participant indices. Participants are stateful, so
// the specs drive at most one ShardSet run.
func (r *Run) ShardSpecs() []testbed.ShardSpec {
	specs := make([]testbed.ShardSpec, len(r.Shards))
	for k := range r.Shards {
		sp := &r.Shards[k]
		parts := make([]testbed.Participant, len(sp.Participants))
		for i, idx := range sp.Participants {
			parts[i] = r.Participants[idx]
		}
		specs[k] = testbed.ShardSpec{
			Key:       sp.Key,
			Config:    sp.Config,
			Seed:      sp.Seed,
			Mutations: sp.Mutations,
			Parts:     parts,
		}
	}
	return specs
}

// Execute runs the scenario end to end — one engine and session loop
// per shard, mutation horizons scheduled per shard — and returns the
// merged timeline. Single-shard plans (every document without pinned
// links) run exactly as the unsharded scheduler did, with live event
// delivery. A Run's tasks accumulate state, so Execute refuses a
// second call; Build the document again instead.
func (r *Run) Execute(opt ExecOptions) (*testbed.Timeline, error) {
	if r.used {
		return nil, fmt.Errorf("scenario: run %q already executed; Build again", r.Doc.Name)
	}
	r.used = true
	ss, err := testbed.NewShardSet(r.ShardSpecs(), r.Doc.RecordSeconds)
	if err != nil {
		return nil, err
	}
	if opt.Logf != nil {
		ss.SetLogf(opt.Logf)
	}
	if opt.Events != nil {
		ss.SetEventSink(opt.Events)
	}
	ss.SetWorkers(opt.Workers)
	return ss.Run(r.Doc.DurationSeconds, r.Doc.TickSeconds)
}
