package scenario

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/netsim"
	"repro/internal/testbed"
)

// ShardPlan is one independent contention domain of a compiled
// scenario: the agents whose transfers route over the same link
// sequence, the environment that route implies, and the slice of the
// mutation schedule that touches it. Shards never contend with each
// other, so each runs on its own engine and the set can be stepped in
// parallel (testbed.ShardSet).
type ShardPlan struct {
	// Key is the route signature: the ordered link IDs joined with
	// ">" ("" for documents without a topology). Shard identity and
	// merge order both derive from it via first appearance in the
	// roster.
	Key string
	// Links is the route's ordered link IDs.
	Links []string
	// Bottleneck is the link that sets the route capacity — the
	// narrowest along the route, the first such link on ties. Empty
	// without a topology.
	Bottleneck string
	// Config is the shard's environment: the document's base
	// environment with the route's bottleneck capacity and RTT
	// applied.
	Config testbed.Config
	// Seed seeds the shard engine's noise stream: Doc.Seed + shard
	// index, so a single-shard plan matches the unsharded engine.
	Seed int64
	// Mutations is the shard's compiled schedule (absolute capacities
	// against this shard's route).
	Mutations []testbed.Mutation
	// Participants indexes Run.Participants, in roster order.
	Participants []int
}

// routeOf resolves one agent spec's route: the default src→dst route
// when the spec pins no link, otherwise the minimum-latency simple
// path through the pinned link.
func routeOf(t *netsim.Topology, src, dst string, a *AgentSpec) (links []string, rtt float64, err error) {
	if a.Link == "" {
		return t.Route(src, dst)
	}
	return t.RouteVia(src, dst, a.Link)
}

// bottleneckOf returns the route's narrowest link (first on ties) and
// its capacity.
func bottleneckOf(links []string, capOf map[string]float64) (string, float64) {
	id, cap := "", math.Inf(1)
	for _, l := range links {
		if capOf[l] < cap {
			id, cap = l, capOf[l]
		}
	}
	return id, cap
}

// partition groups the expanded roster into shards by route
// signature. Documents without a topology compile to one shard holding
// everyone. Shard order is first appearance in the roster; shard k is
// seeded Seed+k. Two shards may share non-bottleneck links (the engine
// models only the path bottleneck, so such sharing was never modeled),
// but a link that is some shard's bottleneck appearing on any other
// shard's route would be real, unmodeled contention — that partition
// is rejected.
func (d *Document) partition(r *Run, base testbed.Config) error {
	if d.Topology == nil {
		all := make([]int, len(r.Participants))
		for i := range all {
			all[i] = i
		}
		r.Shards = []ShardPlan{{
			Key:          "",
			Links:        []string{""},
			Config:       r.Config,
			Seed:         d.Seed,
			Participants: all,
		}}
		return nil
	}
	t, src, dst := d.buildTopology()
	capOf := make(map[string]float64)
	for _, res := range t.Resources() {
		capOf[res.ID] = res.Capacity
	}
	type routeInfo struct {
		links []string
		rtt   float64
		shard int
	}
	byLink := make(map[string]*routeInfo) // route cache by pinned link ("" = default)
	n := 0
	for i := range d.Agents {
		a := &d.Agents[i]
		ri, ok := byLink[a.Link]
		if !ok {
			links, rtt, err := routeOf(t, src, dst, a)
			if err != nil {
				return fmt.Errorf("scenario: %s: %w", agentRef(i, a, n+1), err)
			}
			if len(links) == 0 {
				return fmt.Errorf("scenario: %s: empty route from %q to %q", agentRef(i, a, n+1), src, dst)
			}
			ri = &routeInfo{links: links, rtt: rtt, shard: -1}
			byLink[a.Link] = ri
		}
		if ri.shard < 0 {
			// Distinct pinned links can resolve to the same route (a
			// pin already on the default path); the signature, not the
			// pin, defines the shard.
			key := strings.Join(ri.links, ">")
			found := -1
			for k := range r.Shards {
				if r.Shards[k].Key == key {
					found = k
					break
				}
			}
			if found < 0 {
				bLink, bCap := bottleneckOf(ri.links, capOf)
				cfg := base
				cfg.LinkCapacity = bCap
				cfg.RTT = ri.rtt
				if err := cfg.Validate(); err != nil {
					return fmt.Errorf("scenario: %s: route %s: %w", agentRef(i, a, n+1), key, err)
				}
				found = len(r.Shards)
				r.Shards = append(r.Shards, ShardPlan{
					Key:        key,
					Links:      ri.links,
					Bottleneck: bLink,
					Config:     cfg,
					Seed:       d.Seed + int64(found),
				})
			}
			ri.shard = found
		}
		for j := 0; j < a.Count; j++ {
			r.Shards[ri.shard].Participants = append(r.Shards[ri.shard].Participants, n)
			n++
		}
	}
	// Independence check: a shard's bottleneck link on another shard's
	// route means the shards really contend, which the per-shard
	// engines cannot model.
	owner := make(map[string]int, len(r.Shards))
	for k := range r.Shards {
		owner[r.Shards[k].Bottleneck] = k
	}
	for k := range r.Shards {
		for _, l := range r.Shards[k].Links {
			if o, ok := owner[l]; ok && o != k {
				return fmt.Errorf("scenario: shards %q and %q share bottleneck link %q; cross-shard contention is not modeled — route them over disjoint bottlenecks",
					r.Shards[o].Key, r.Shards[k].Key, l)
			}
		}
	}
	return nil
}
