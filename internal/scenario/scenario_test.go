package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/testbed"
)

// minimal returns the smallest valid document.
func minimal() *Document {
	return &Document{Preset: "emulab", Agents: []AgentSpec{{}}}
}

func TestNormaliseDefaults(t *testing.T) {
	d := minimal()
	if err := d.Normalise(); err != nil {
		t.Fatal(err)
	}
	if d.Version != Version || d.Seed != 1 || d.DurationSeconds != 300 ||
		d.TickSeconds != 0.25 || d.RecordSeconds != 1 || d.Name != "emulab" {
		t.Fatalf("defaults not applied: %+v", d)
	}
	a := d.Agents[0]
	if a.Count != 1 || a.Algorithm != "gd" || a.MaxConcurrency != 64 {
		t.Fatalf("agent defaults not applied: %+v", a)
	}
	if a.Initial == nil || a.Initial.Concurrency != 2 || a.Initial.Parallelism != 1 || a.Initial.Pipelining != 1 {
		t.Fatalf("initial setting default = %+v", a.Initial)
	}
	if a.Dataset == nil || a.Dataset.Count != 20000 || a.Dataset.Size != 1e9 {
		t.Fatalf("dataset default = %+v", a.Dataset)
	}
	// fixed:N starts at N.
	d2 := &Document{Preset: "emulab", Agents: []AgentSpec{{Algorithm: "fixed:7"}}}
	if err := d2.Normalise(); err != nil {
		t.Fatal(err)
	}
	if d2.Agents[0].Initial.Concurrency != 7 {
		t.Fatalf("fixed:7 initial concurrency = %d", d2.Agents[0].Initial.Concurrency)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"bad json", `{`, "scenario:"},
		{"unknown field", `{"preset":"emulab","agents":[{}],"bogus":1}`, "bogus"},
		{"trailing data", `{"preset":"emulab","agents":[{}]} {}`, "trailing"},
		{"bad version", `{"version":9,"preset":"emulab","agents":[{}]}`, "version"},
		{"no agents", `{"preset":"emulab"}`, "no agents"},
		{"no environment", `{"agents":[{}]}`, "need a preset or an environment"},
		{"unknown preset", `{"preset":"ornl","agents":[{}]}`, "unknown preset"},
		{"negative duration", `{"preset":"emulab","duration_seconds":-5,"agents":[{}]}`, "duration"},
		{"negative join", `{"preset":"emulab","agents":[{"join_at":-1}]}`, "join_at"},
		{"leave before join", `{"preset":"emulab","agents":[{"join_at":50,"leave_at":10}]}`, "leave_at"},
		{"unknown algorithm", `{"preset":"emulab","agents":[{"algorithm":"rl"}]}`, "algorithm"},
		{"duplicate ids", `{"preset":"emulab","agents":[{"id":"a"},{"id":"a"}]}`, "duplicate agent"},
		{"collision with expansion", `{"preset":"emulab","agents":[{},{"id":"agent1"}]}`, "duplicate agent"},
		{"mutation past horizon", `{"preset":"emulab","duration_seconds":100,"agents":[{}],
			"mutations":[{"at":100,"kind":"rtt","rtt":0.05}]}`, "past"},
		{"negative mutation time", `{"preset":"emulab","agents":[{}],
			"mutations":[{"at":-1,"kind":"rtt","rtt":0.05}]}`, "non-negative"},
		{"unknown mutation kind", `{"preset":"emulab","agents":[{}],
			"mutations":[{"at":1,"kind":"teleport"}]}`, "unknown kind"},
		{"grow unknown agent", `{"preset":"emulab","agents":[{"id":"a"}],
			"mutations":[{"at":1,"kind":"grow-dataset","agent":"b","grow":{"count":1,"size":1}}]}`, "unknown agent"},
		{"link without topology", `{"preset":"emulab","agents":[{}],
			"mutations":[{"at":1,"kind":"link-capacity","link":"l0","capacity":1e9}]}`, "no topology"},
		{"unknown link", `{"preset":"fleet","agents":[{}],
			"topology":{"dumbbell":{"hosts":1,"access_cap":1e9,"bottleneck_cap":1e9}},
			"mutations":[{"at":1,"kind":"link-capacity","link":"ghost","capacity":1e9}]}`, "unknown link"},
		{"overlapping point mutations", `{"preset":"emulab","agents":[{}],
			"mutations":[{"at":10,"kind":"rtt","rtt":0.05},{"at":10,"kind":"rtt","rtt":0.06}]}`, "overlap"},
		{"wave overlaps point", `{"preset":"fleet","agents":[{}],
			"topology":{"dumbbell":{"hosts":1,"access_cap":40e9,"bottleneck_cap":10e9}},
			"mutations":[{"at":10,"kind":"cross-traffic","link":"bottleneck","rate":1e9,"duration_seconds":50},
			             {"at":30,"kind":"link-capacity","link":"bottleneck","capacity":5e9}]}`, "overlap"},
		{"dumbbell and explicit graph", `{"preset":"fleet","agents":[{}],
			"topology":{"dumbbell":{"hosts":1,"access_cap":1e9,"bottleneck_cap":1e9},"nodes":["a"]}}`, "mutually exclusive"},
		{"graph without endpoints", `{"preset":"fleet","agents":[{}],
			"topology":{"nodes":["a","b"],"links":[{"id":"l","a":"a","b":"b","capacity":1e9,"latency":0.001}]}}`, "src and dst"},
		{"link to unknown node", `{"preset":"fleet","agents":[{}],
			"topology":{"nodes":["a","b"],"src":"a","dst":"b",
			"links":[{"id":"l","a":"a","b":"ghost","capacity":1e9,"latency":0.001}]}}`, "unknown node"},
		{"preset and environment", `{"preset":"emulab","agents":[{}],
			"environment":{"name":"x","src_store":{"name":"s","per_proc_cap":1,"aggregate_cap":1},
			"dst_store":{"name":"s","per_proc_cap":1,"aggregate_cap":1},
			"src_host":{"name":"h","nic_cap":1,"cpu_cap":1},"dst_host":{"name":"h","nic_cap":1,"cpu_cap":1},
			"link_capacity":1,"rtt":0.01,"sample_interval":1,"noise_std_dev":0}}`, "mutually exclusive"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: Parse accepted invalid document", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAgentIDsExpansion(t *testing.T) {
	d := &Document{Preset: "fleet", Agents: []AgentSpec{
		{Count: 2},             // unnamed → global numbering
		{ID: "solo"},           // named single
		{ID: "gd", Count: 3},   // named group → suffixed
		{Count: 1},             // numbering continues across specs
	}}
	want := []string{"agent1", "agent2", "solo", "gd1", "gd2", "gd3", "agent7"}
	if got := d.AgentIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AgentIDs = %v, want %v", got, want)
	}
}

// TestHashSeparatesMutationSchedules is the cache-key regression: two
// documents identical except for their mutation schedule must hash
// differently, and the hash must be stable across parse→canonical
// round-trips.
func TestHashSeparatesMutationSchedules(t *testing.T) {
	base := `{"preset":"fleet","duration_seconds":600,"agents":[{"count":4}]}`
	flap := `{"preset":"fleet","duration_seconds":600,"agents":[{"count":4}],
		"mutations":[{"at":300,"kind":"cross-traffic","rate":7.5e9,"duration_seconds":120}]}`
	flap2 := `{"preset":"fleet","duration_seconds":600,"agents":[{"count":4}],
		"mutations":[{"at":300,"kind":"cross-traffic","rate":7.5e9,"duration_seconds":240}]}`
	h := func(s string) string {
		d, err := Parse([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		sum, err := d.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	hBase, hFlap, hFlap2 := h(base), h(flap), h(flap2)
	if hBase == hFlap {
		t.Fatal("document with a mutation schedule hashes like its mutation-free twin")
	}
	if hFlap == hFlap2 {
		t.Fatal("documents differing only in wave duration hash alike")
	}

	// Canonical is a fixed point: re-parsing the canonical encoding
	// yields the same hash, and explicit defaults don't change it.
	d, err := Parse([]byte(flap))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if h(string(canon)) != hFlap {
		t.Fatal("canonical encoding is not a hash fixed point")
	}
	explicit := `{"version":1,"name":"fleet","preset":"fleet","seed":1,"duration_seconds":600,
		"tick_seconds":0.25,"record_seconds":1,"agents":[{"count":4}],
		"mutations":[{"at":300,"kind":"cross-traffic","rate":7.5e9,"duration_seconds":120}]}`
	if h(explicit) != hFlap {
		t.Fatal("explicit defaults changed the hash vs implied defaults")
	}
}

// TestPresetConfigsMatchConstructors pins the preset table to the
// legacy testbed constructors byte for byte — the delegation that keeps
// reproduce output identical now that every consumer resolves
// environments through the scenario subsystem.
func TestPresetConfigsMatchConstructors(t *testing.T) {
	want := map[string]testbed.Config{
		"emulab":    testbed.Emulab(10e6),
		"emulab-1g": testbed.EmulabGigabit(20.83e6),
		"xsede":     testbed.XSEDE(),
		"hpclab":    testbed.HPCLab(),
		"campus":    testbed.CampusCluster(),
		"wan":       testbed.StampedeCometWAN(),
	}
	for name, w := range want {
		got, ok := PresetConfig(name)
		if !ok {
			t.Errorf("preset %q missing", name)
			continue
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("preset %q diverged from its constructor:\n got %+v\nwant %+v", name, got, w)
		}
	}
	if _, ok := PresetConfig("fleet"); !ok {
		t.Error("preset fleet missing")
	}
	if _, ok := PresetConfig("nope"); ok {
		t.Error("unknown preset resolved")
	}
	if got := Presets(); len(got) != 7 {
		t.Errorf("Presets() = %v", got)
	}
}

// TestExampleEnvironmentsMatchConstructors is the golden-file test for
// the checked-in Table 1 scenarios: the explicit environment documents
// in examples/scenarios/ must compile to reflect.DeepEqual copies of
// the legacy constructors, so scenario-built environments and the
// hard-coded ones are interchangeable.
func TestExampleEnvironmentsMatchConstructors(t *testing.T) {
	cases := []struct {
		file string
		want testbed.Config
	}{
		{"emulab.json", testbed.Emulab(10e6)},
		{"xsede.json", testbed.XSEDE()},
		{"hpclab.json", testbed.HPCLab()},
		{"campus.json", testbed.CampusCluster()},
	}
	for _, c := range cases {
		d, err := ParseFile(filepath.Join("..", "..", "examples", "scenarios", c.file))
		if err != nil {
			t.Errorf("%s: %v", c.file, err)
			continue
		}
		if d.Environment == nil {
			t.Errorf("%s: no explicit environment", c.file)
			continue
		}
		if got := d.Environment.Config(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s compiles to a different config than the constructor:\n got %+v\nwant %+v", c.file, got, c.want)
		}
		// Round-trip: EnvFromConfig of the constructor equals the spec.
		if spec := EnvFromConfig(c.want); !reflect.DeepEqual(spec.Config(), c.want) {
			t.Errorf("%s: EnvFromConfig round-trip diverged", c.file)
		}
		run, err := d.Build()
		if err != nil {
			t.Errorf("%s: Build: %v", c.file, err)
			continue
		}
		if !reflect.DeepEqual(run.Config, c.want) {
			t.Errorf("%s: built config diverged from constructor", c.file)
		}
	}
}

// TestExampleScenariosBuild: every checked-in scenario parses and
// compiles (the same gate make verify runs via falconsim -validate).
func TestExampleScenariosBuild(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("only %d example scenarios found: %v", len(files), files)
	}
	for _, f := range files {
		d, err := ParseFile(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, err := d.Build(); err != nil {
			t.Errorf("%s: Build: %v", f, err)
		}
	}
}
