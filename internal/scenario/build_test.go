package scenario

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/testbed"
)

// TestBuildRoster: expansion order, join staggering, and per-agent
// seeding feed through to the participants.
func TestBuildRoster(t *testing.T) {
	d := &Document{Preset: "fleet", Agents: []AgentSpec{
		{ID: "hc", Count: 3, Algorithm: "hc", JoinStagger: 3, MaxConcurrency: 8},
		{ID: "solo", Algorithm: "fixed:5", JoinAt: 10, LeaveAt: 200},
	}}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"hc1", "hc2", "hc3", "solo"}; !reflect.DeepEqual(run.AgentIDs, want) {
		t.Fatalf("AgentIDs = %v, want %v", run.AgentIDs, want)
	}
	if len(run.Participants) != 4 {
		t.Fatalf("%d participants", len(run.Participants))
	}
	for i, wantJoin := range []float64{0, 3, 6, 10} {
		if got := run.Participants[i].JoinAt; got != wantJoin {
			t.Errorf("participant %d JoinAt = %v, want %v", i, got, wantJoin)
		}
	}
	if run.Participants[3].LeaveAt != 200 {
		t.Errorf("solo LeaveAt = %v", run.Participants[3].LeaveAt)
	}
	if run.Participants[3].Task.Setting().Concurrency != 5 {
		t.Errorf("fixed:5 initial concurrency = %d", run.Participants[3].Task.Setting().Concurrency)
	}
	for i, p := range run.Participants {
		if p.Task.ID() != run.AgentIDs[i] {
			t.Errorf("participant %d task %q ≠ agent ID %q", i, p.Task.ID(), run.AgentIDs[i])
		}
	}
}

// TestCompileCrossTrafficWave: a wave lowers to an absolute capacity
// drop at its start and a restore at its end.
func TestCompileCrossTrafficWave(t *testing.T) {
	d := &Document{Preset: "fleet", DurationSeconds: 600, Agents: []AgentSpec{{Count: 2}},
		Mutations: []MutationSpec{{At: 300, Kind: KindCrossTraffic, Rate: 7.5e9, DurationSeconds: 120}}}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []testbed.Mutation{
		{At: 300, Kind: testbed.MutLinkCapacity, Capacity: 2.5e9},
		{At: 420, Kind: testbed.MutLinkCapacity, Capacity: 10e9},
	}
	if !reflect.DeepEqual(run.Mutations, want) {
		t.Fatalf("compiled = %+v, want %+v", run.Mutations, want)
	}

	// A wave claiming the whole link is a build error, not a zero cap.
	d2 := &Document{Preset: "fleet", DurationSeconds: 600, Agents: []AgentSpec{{}},
		Mutations: []MutationSpec{{At: 300, Kind: KindCrossTraffic, Rate: 10e9, DurationSeconds: 60}}}
	if _, err := d2.Build(); err == nil {
		t.Fatal("wave rate ≥ capacity built without error")
	}
}

// TestCompileTopologyMutations: link changes re-derive the routed
// path's bottleneck; off-route links track state but emit nothing.
func TestCompileTopologyMutations(t *testing.T) {
	d := &Document{
		Preset:          "fleet",
		DurationSeconds: 600,
		Topology: &TopologySpec{Dumbbell: &DumbbellSpec{
			Hosts: 2, AccessCap: 40e9, BottleneckCap: 10e9, BottleneckLatency: 0.015}},
		Agents: []AgentSpec{{Count: 2}},
		Mutations: []MutationSpec{
			// Off the src0→dst0 route: tracked, no horizon emitted.
			{At: 50, Kind: KindLinkCapacity, Link: "access-src1", Capacity: 1e9},
			// On-route access link, still above the 10 G bottleneck: no
			// bottleneck change, no horizon.
			{At: 100, Kind: KindLinkCapacity, Link: "access-src0", Capacity: 20e9},
			// Access link dips below the middle hop: bottleneck moves.
			{At: 200, Kind: KindLinkCapacity, Link: "access-src0", Capacity: 4e9},
			// Wave on the middle hop while the access link binds at 4G:
			// 10-6=4 G does not change the 4 G bottleneck → only the
			// restore... neither end changes it.
			{At: 300, Kind: KindCrossTraffic, Link: "bottleneck", Rate: 6e9, DurationSeconds: 50},
			// Deeper wave: 10-9=1 G binds.
			{At: 400, Kind: KindCrossTraffic, Link: "bottleneck", Rate: 9e9, DurationSeconds: 50},
		},
	}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	// RTT derived from the route: 2 × (0.0005 + 0.015 + 0.0005).
	if want := 0.032; math.Abs(run.Config.RTT-want) > 1e-12 {
		t.Fatalf("routed RTT = %v, want %v", run.Config.RTT, want)
	}
	if run.Config.LinkCapacity != 10e9 {
		t.Fatalf("routed link capacity = %v, want 10e9", run.Config.LinkCapacity)
	}
	want := []testbed.Mutation{
		{At: 200, Kind: testbed.MutLinkCapacity, Capacity: 4e9},
		{At: 400, Kind: testbed.MutLinkCapacity, Capacity: 1e9},
		{At: 450, Kind: testbed.MutLinkCapacity, Capacity: 4e9},
	}
	if !reflect.DeepEqual(run.Mutations, want) {
		t.Fatalf("compiled = %+v\nwant %+v", run.Mutations, want)
	}
}

// TestCompileGrowDataset: grow mutations name files that cannot collide
// with the base dataset or with other growths.
func TestCompileGrowDataset(t *testing.T) {
	d := &Document{Preset: "emulab", Agents: []AgentSpec{{ID: "a"}},
		Mutations: []MutationSpec{
			{At: 10, Kind: KindGrowDataset, Agent: "a", Grow: &GrowSpec{Count: 2, Size: 5}},
			{At: 20, Kind: KindGrowDataset, Agent: "a", Grow: &GrowSpec{Count: 1, Size: 7}},
		}}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Mutations) != 2 {
		t.Fatalf("%d compiled mutations", len(run.Mutations))
	}
	seen := map[string]bool{}
	for _, m := range run.Mutations {
		if m.Kind != testbed.MutGrowDataset || m.Task != "a" {
			t.Fatalf("unexpected mutation %+v", m)
		}
		for _, f := range m.Files {
			if seen[f.Name] {
				t.Fatalf("duplicate grown file name %q", f.Name)
			}
			seen[f.Name] = true
		}
	}
	if !seen["a-grow0-000000.dat"] || !seen["a-grow1-000000.dat"] {
		t.Fatalf("grown names not namespaced by mutation index: %v", seen)
	}
}

// TestExecuteSingleUse: tasks are stateful, so a Run refuses a second
// execution.
func TestExecuteSingleUse(t *testing.T) {
	d := &Document{Preset: "emulab", DurationSeconds: 10, Agents: []AgentSpec{{Algorithm: "fixed:2"}}}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := run.Execute(ExecOptions{}); err == nil {
		t.Fatal("second Execute succeeded")
	}
	// Building the document again yields a fresh run.
	run2, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run2.Execute(ExecOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioExecutionDeterministic: two runs built from the same
// document produce identical timelines, and mutation horizons do not
// disturb that.
func TestScenarioExecutionDeterministic(t *testing.T) {
	doc := func() *Document {
		return &Document{Preset: "fleet", DurationSeconds: 120, Agents: []AgentSpec{
			{Count: 3, Algorithm: "gd", JoinStagger: 2, MaxConcurrency: 8}},
			Mutations: []MutationSpec{{At: 60, Kind: KindCrossTraffic, Rate: 7.5e9, DurationSeconds: 30}}}
	}
	exec := func() *testbed.Timeline {
		run, err := doc().Build()
		if err != nil {
			t.Fatal(err)
		}
		tl, err := run.Execute(ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	if !reflect.DeepEqual(exec(), exec()) {
		t.Fatal("same document, different timelines")
	}
}
