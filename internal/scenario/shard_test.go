package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/testbed"
)

// multiLinkDoc is a two-switch topology with four parallel 10 Gbps
// links, each pinned by one group of agents — four independent
// contention domains behind wide access links.
func multiLinkDoc() *Document {
	return &Document{
		Preset:          "fleet",
		Seed:            5,
		DurationSeconds: 60,
		Topology: &TopologySpec{
			Nodes: []string{"src", "sw1", "sw2", "dst"},
			Src:   "src",
			Dst:   "dst",
			Links: []LinkSpec{
				{ID: "access-src", A: "src", B: "sw1", Capacity: 100e9, Latency: 0.001},
				{ID: "lnk0", A: "sw1", B: "sw2", Capacity: 10e9, Latency: 0.005},
				{ID: "lnk1", A: "sw1", B: "sw2", Capacity: 10e9, Latency: 0.005},
				{ID: "lnk2", A: "sw1", B: "sw2", Capacity: 10e9, Latency: 0.005},
				{ID: "lnk3", A: "sw1", B: "sw2", Capacity: 10e9, Latency: 0.005},
				{ID: "access-dst", A: "sw2", B: "dst", Capacity: 100e9, Latency: 0.001},
			},
		},
		Agents: []AgentSpec{
			{ID: "a", Count: 3, Link: "lnk0", JoinStagger: 1, Dataset: &DatasetSpec{Label: "shared"}},
			{ID: "b", Count: 3, Link: "lnk1", JoinStagger: 1, Dataset: &DatasetSpec{Label: "shared"}},
			{ID: "c", Count: 3, Link: "lnk2", JoinStagger: 1, Dataset: &DatasetSpec{Label: "shared"}},
			{ID: "d", Count: 3, Link: "lnk3", JoinStagger: 1, Dataset: &DatasetSpec{Label: "shared"}},
		},
	}
}

// TestPartitionByPinnedLink: four pinned links produce four shards in
// first-appearance order, each with its own route, bottleneck, config,
// seed, and participant block.
func TestPartitionByPinnedLink(t *testing.T) {
	run, err := multiLinkDoc().Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Shards) != 4 {
		t.Fatalf("got %d shards, want 4: %+v", len(run.Shards), run.Shards)
	}
	for k, sp := range run.Shards {
		wantKey := "access-src>lnk" + string(rune('0'+k)) + ">access-dst"
		if sp.Key != wantKey {
			t.Errorf("shard %d key = %q, want %q", k, sp.Key, wantKey)
		}
		if want := "lnk" + string(rune('0'+k)); sp.Bottleneck != want {
			t.Errorf("shard %d bottleneck = %q, want %q", k, sp.Bottleneck, want)
		}
		if sp.Config.LinkCapacity != 10e9 {
			t.Errorf("shard %d capacity = %v, want 10e9", k, sp.Config.LinkCapacity)
		}
		if sp.Seed != 5+int64(k) {
			t.Errorf("shard %d seed = %d, want %d", k, sp.Seed, 5+int64(k))
		}
		if len(sp.Participants) != 3 {
			t.Errorf("shard %d has %d participants, want 3", k, len(sp.Participants))
		}
	}
	// Participant indices must tile the roster exactly.
	seen := map[int]bool{}
	for _, sp := range run.Shards {
		for _, idx := range sp.Participants {
			if seen[idx] {
				t.Fatalf("participant %d assigned twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != len(run.Participants) {
		t.Fatalf("%d participants assigned, roster has %d", len(seen), len(run.Participants))
	}
}

// TestPartitionDefaultRouteSingleShard: documents without pinned links
// — with or without a topology — compile to exactly one shard that
// matches the legacy Config/Mutations, so sharded execution is the
// unsharded run.
func TestPartitionDefaultRouteSingleShard(t *testing.T) {
	d := multiLinkDoc()
	for i := range d.Agents {
		d.Agents[i].Link = ""
	}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Shards) != 1 {
		t.Fatalf("got %d shards, want 1", len(run.Shards))
	}
	sp := run.Shards[0]
	if !reflect.DeepEqual(sp.Config, run.Config) {
		t.Error("single shard config differs from legacy Run.Config")
	}
	if sp.Seed != d.Seed {
		t.Errorf("single shard seed = %d, want document seed %d", sp.Seed, d.Seed)
	}
	if len(sp.Participants) != len(run.Participants) {
		t.Errorf("single shard holds %d of %d participants", len(sp.Participants), len(run.Participants))
	}

	flat := FleetFlapLikeDoc()
	run2, err := flat.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(run2.Shards) != 1 || run2.Shards[0].Key != "" {
		t.Fatalf("topology-free doc: got %+v, want one shard with empty key", run2.Shards)
	}
	if !reflect.DeepEqual(run2.Shards[0].Mutations, run2.Mutations) {
		t.Error("topology-free single shard mutations differ from legacy schedule")
	}
}

// FleetFlapLikeDoc is a small topology-free document with a mutation,
// for the single-shard equivalence check.
func FleetFlapLikeDoc() *Document {
	return &Document{
		Preset:          "fleet",
		Seed:            2,
		DurationSeconds: 60,
		Agents:          []AgentSpec{{Count: 4, JoinStagger: 1}},
		Mutations: []MutationSpec{
			{At: 30, Kind: KindCrossTraffic, Rate: 5e9, DurationSeconds: 10},
		},
	}
}

// TestAgentLinkValidation pins satellite requirement: an agent
// referencing an undefined link fails with a field-qualified error
// naming the agent, and pinning a link without a topology is rejected.
func TestAgentLinkValidation(t *testing.T) {
	d := multiLinkDoc()
	d.Agents[2].Link = "lnk9"
	_, err := d.Build()
	if err == nil {
		t.Fatal("undefined pinned link accepted")
	}
	for _, want := range []string{`agents[2]`, `(id "c")`, `"lnk9"`, "not defined in the topology"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}

	flat := FleetFlapLikeDoc()
	flat.Agents[0].Link = "lnk0"
	_, err = flat.Build()
	if err == nil {
		t.Fatal("pinned link without topology accepted")
	}
	if !strings.Contains(err.Error(), "agents[0]") || !strings.Contains(err.Error(), "no topology") {
		t.Errorf("error %q is not field-qualified", err)
	}
}

// TestPartitionRejectsSharedBottleneck: when one shard's bottleneck
// link lies on another shard's route, the partition is unsound (real
// cross-shard contention) and Build must refuse.
func TestPartitionRejectsSharedBottleneck(t *testing.T) {
	d := &Document{
		Preset:          "fleet",
		DurationSeconds: 60,
		Topology: &TopologySpec{
			Nodes: []string{"src", "sw1", "sw2", "dst"},
			Src:   "src",
			Dst:   "dst",
			Links: []LinkSpec{
				{ID: "access-src", A: "src", B: "sw1", Capacity: 100e9, Latency: 0.001},
				{ID: "lnk0", A: "sw1", B: "sw2", Capacity: 10e9, Latency: 0.005},
				{ID: "lnk1", A: "sw1", B: "sw2", Capacity: 8e9, Latency: 0.005},
				// "wide" is misnamed on purpose: at 9 Gbps it is the
				// bottleneck of the lnk0 route (10 > 9) while sitting on
				// the lnk1 route too (whose bottleneck is lnk1 at 8).
				{ID: "wide", A: "sw2", B: "dst", Capacity: 9e9, Latency: 0.001},
			},
		},
		Agents: []AgentSpec{
			{ID: "a", Link: "lnk0"},
			{ID: "b", Link: "lnk1"},
		},
	}
	_, err := d.Build()
	if err == nil {
		t.Fatal("shared bottleneck accepted")
	}
	if !strings.Contains(err.Error(), "share bottleneck link") || !strings.Contains(err.Error(), `"wide"`) {
		t.Errorf("unexpected error %q", err)
	}
}

// TestPerShardMutationLowering: link mutations reach only the shards
// whose route they touch, RTT reaches every shard, grow-dataset
// reaches the owning shard.
func TestPerShardMutationLowering(t *testing.T) {
	d := multiLinkDoc()
	d.Mutations = []MutationSpec{
		{At: 10, Kind: KindLinkCapacity, Link: "lnk1", Capacity: 4e9},
		{At: 20, Kind: KindRTT, RTT: 0.05},
		{At: 30, Kind: KindGrowDataset, Agent: "c2", Grow: &GrowSpec{Count: 2, Size: 1000}},
	}
	run, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	kinds := func(k int) []testbed.MutationKind {
		var out []testbed.MutationKind
		for _, m := range run.Shards[k].Mutations {
			out = append(out, m.Kind)
		}
		return out
	}
	want := [][]testbed.MutationKind{
		{testbed.MutRTT},
		{testbed.MutLinkCapacity, testbed.MutRTT},
		{testbed.MutRTT, testbed.MutGrowDataset},
		{testbed.MutRTT},
	}
	for k := range run.Shards {
		if !reflect.DeepEqual(kinds(k), want[k]) {
			t.Errorf("shard %d mutations = %v, want %v", k, kinds(k), want[k])
		}
	}
	if got := run.Shards[1].Mutations[0].Capacity; got != 4e9 {
		t.Errorf("shard 1 link mutation capacity = %v, want 4e9", got)
	}
}

// TestExecuteShardedWorkerInvariant: executing a pinned-link document
// serially and with a wide worker pool produces identical timelines.
func TestExecuteShardedWorkerInvariant(t *testing.T) {
	exec := func(workers int) *testbed.Timeline {
		run, err := multiLinkDoc().Build()
		if err != nil {
			t.Fatal(err)
		}
		tl, err := run.Execute(ExecOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	serial := exec(1)
	if len(serial.Throughput.Series) == 0 {
		t.Fatal("sharded execution recorded nothing")
	}
	if wide := exec(4); !reflect.DeepEqual(wide, serial) {
		t.Error("workers=4 timeline differs from serial execution")
	}
}
