// Package scenario owns the description of a simulated transfer run:
// a versioned, validated, declarative document covering the
// environment (a named preset or explicit stores/hosts/link, or a
// routed topology), the agent roster (searcher type, join/leave
// schedule, knobs, datasets), and a timed mutation schedule — link
// capacity drops and flaps, cross-traffic waves, RTT shifts, and
// datasets that grow mid-transfer.
//
// The document is pure data: parsing and validation never construct
// engines, and malformed input always returns an error, never panics.
// Build (build.go) compiles a validated document into testbed
// participants and mutation horizons; cmd/falconsim, cmd/fleet, the
// webservice POST API, and experiments all consume documents through
// it, so one JSON file describes the same run everywhere.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hostsim"
	"repro/internal/iosim"
	"repro/internal/testbed"
)

// Version is the schema version this package reads and writes.
const Version = 1

// Document is one complete scenario description. All capacities are
// bits/s and all times seconds, matching the Go simulation structs, so
// a document round-trips to a testbed.Config without unit conversion.
type Document struct {
	// Version pins the schema; Parse rejects anything but Version.
	// Normalise fills it in when zero.
	Version int `json:"version"`
	// Name labels the scenario in output. Defaults to the preset name
	// or "scenario".
	Name string `json:"name,omitempty"`
	// Preset names a built-in environment: emulab, emulab-1g, xsede,
	// hpclab, campus, wan, fleet. Mutually exclusive with Environment.
	Preset string `json:"preset,omitempty"`
	// Environment describes the end-to-end path explicitly.
	Environment *EnvSpec `json:"environment,omitempty"`
	// Topology, when present, derives the link capacity and RTT from a
	// routed node/link graph instead of the environment's flat values.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Seed is the base random seed; agent i is seeded Seed+i. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// DurationSeconds is the simulated horizon. Default 300.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// TickSeconds is the simulation tick. Default 0.25.
	TickSeconds float64 `json:"tick_seconds,omitempty"`
	// RecordSeconds is the throughput-recording interval. Default 1.
	RecordSeconds float64 `json:"record_seconds,omitempty"`
	// Agents is the roster; each entry may expand to Count sessions.
	Agents []AgentSpec `json:"agents"`
	// Mutations is the timed schedule of environment changes.
	Mutations []MutationSpec `json:"mutations,omitempty"`
}

// StoreSpec mirrors iosim.Store.
type StoreSpec struct {
	Name           string  `json:"name"`
	PerProcCap     float64 `json:"per_proc_cap"`
	AggregateCap   float64 `json:"aggregate_cap"`
	ContentionKnee int     `json:"contention_knee,omitempty"`
	ContentionRate float64 `json:"contention_rate,omitempty"`
	MaxDegradation float64 `json:"max_degradation,omitempty"`
}

// Store converts the spec to the simulation struct.
func (s StoreSpec) Store() iosim.Store {
	return iosim.Store{
		Name:           s.Name,
		PerProcCap:     s.PerProcCap,
		AggregateCap:   s.AggregateCap,
		ContentionKnee: s.ContentionKnee,
		ContentionRate: s.ContentionRate,
		MaxDegradation: s.MaxDegradation,
	}
}

// HostSpec mirrors hostsim.Host.
type HostSpec struct {
	Name           string  `json:"name"`
	NICCap         float64 `json:"nic_cap"`
	CPUCap         float64 `json:"cpu_cap"`
	ConnOverhead   float64 `json:"conn_overhead,omitempty"`
	MaxDegradation float64 `json:"max_degradation,omitempty"`
}

// Host converts the spec to the simulation struct.
func (h HostSpec) Host() hostsim.Host {
	return hostsim.Host{
		Name:           h.Name,
		NICCap:         h.NICCap,
		CPUCap:         h.CPUCap,
		ConnOverhead:   h.ConnOverhead,
		MaxDegradation: h.MaxDegradation,
	}
}

// EnvSpec mirrors testbed.Config field for field.
type EnvSpec struct {
	Name           string    `json:"name"`
	SrcStore       StoreSpec `json:"src_store"`
	DstStore       StoreSpec `json:"dst_store"`
	SrcHost        HostSpec  `json:"src_host"`
	DstHost        HostSpec  `json:"dst_host"`
	LinkCapacity   float64   `json:"link_capacity"`
	RTT            float64   `json:"rtt"`
	SampleInterval float64   `json:"sample_interval"`
	NoiseStdDev    float64   `json:"noise_std_dev"`
	RampTau        float64   `json:"ramp_tau,omitempty"`
	Bottleneck     string    `json:"bottleneck,omitempty"`
	Congestion     string    `json:"congestion,omitempty"`
}

// Config converts the spec to the simulation struct.
func (e EnvSpec) Config() testbed.Config {
	return testbed.Config{
		Name:           e.Name,
		SrcStore:       e.SrcStore.Store(),
		DstStore:       e.DstStore.Store(),
		SrcHost:        e.SrcHost.Host(),
		DstHost:        e.DstHost.Host(),
		LinkCapacity:   e.LinkCapacity,
		RTT:            e.RTT,
		SampleInterval: e.SampleInterval,
		NoiseStdDev:    e.NoiseStdDev,
		RampTau:        e.RampTau,
		Bottleneck:     e.Bottleneck,
		Congestion:     e.Congestion,
	}
}

// EnvFromConfig converts a testbed.Config into its spec.
func EnvFromConfig(c testbed.Config) EnvSpec {
	return EnvSpec{
		Name: c.Name,
		SrcStore: StoreSpec{Name: c.SrcStore.Name, PerProcCap: c.SrcStore.PerProcCap,
			AggregateCap: c.SrcStore.AggregateCap, ContentionKnee: c.SrcStore.ContentionKnee,
			ContentionRate: c.SrcStore.ContentionRate, MaxDegradation: c.SrcStore.MaxDegradation},
		DstStore: StoreSpec{Name: c.DstStore.Name, PerProcCap: c.DstStore.PerProcCap,
			AggregateCap: c.DstStore.AggregateCap, ContentionKnee: c.DstStore.ContentionKnee,
			ContentionRate: c.DstStore.ContentionRate, MaxDegradation: c.DstStore.MaxDegradation},
		SrcHost: HostSpec{Name: c.SrcHost.Name, NICCap: c.SrcHost.NICCap, CPUCap: c.SrcHost.CPUCap,
			ConnOverhead: c.SrcHost.ConnOverhead, MaxDegradation: c.SrcHost.MaxDegradation},
		DstHost: HostSpec{Name: c.DstHost.Name, NICCap: c.DstHost.NICCap, CPUCap: c.DstHost.CPUCap,
			ConnOverhead: c.DstHost.ConnOverhead, MaxDegradation: c.DstHost.MaxDegradation},
		LinkCapacity:   c.LinkCapacity,
		RTT:            c.RTT,
		SampleInterval: c.SampleInterval,
		NoiseStdDev:    c.NoiseStdDev,
		RampTau:        c.RampTau,
		Bottleneck:     c.Bottleneck,
		Congestion:     c.Congestion,
	}
}

// TopologySpec derives the environment's link capacity and RTT from a
// routed graph: either an explicit node/link list or the Figure 3
// dumbbell shorthand. The route between Src and Dst (minimum latency)
// determines the RTT; the narrowest link along it is the path
// capacity. Link mutations then name topology links, and the compiler
// re-derives the path capacity whenever any route link changes.
type TopologySpec struct {
	// Dumbbell is the shorthand for netsim.Dumbbell. Mutually
	// exclusive with Nodes/Links.
	Dumbbell *DumbbellSpec `json:"dumbbell,omitempty"`
	// Nodes and Links describe an explicit graph.
	Nodes []string   `json:"nodes,omitempty"`
	Links []LinkSpec `json:"links,omitempty"`
	// Src and Dst are the transfer's endpoints. Dumbbell defaults to
	// src0 → dst0.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
}

// LinkSpec is one bidirectional edge.
type LinkSpec struct {
	ID       string  `json:"id"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	Capacity float64 `json:"capacity"`
	// Latency is the one-way latency in seconds.
	Latency float64 `json:"latency"`
}

// DumbbellSpec parameterizes netsim.Dumbbell.
type DumbbellSpec struct {
	Hosts             int     `json:"hosts"`
	AccessCap         float64 `json:"access_cap"`
	BottleneckCap     float64 `json:"bottleneck_cap"`
	BottleneckLatency float64 `json:"bottleneck_latency"`
}

// SettingSpec mirrors transfer.Setting.
type SettingSpec struct {
	Concurrency int `json:"concurrency"`
	Parallelism int `json:"parallelism"`
	Pipelining  int `json:"pipelining"`
}

// DatasetSpec describes a uniform dataset. Agents sharing the same
// fully-specified dataset (label, count, size) share one interned
// dataset in memory, which is what makes 10k-session fleets fit.
type DatasetSpec struct {
	// Label names the dataset; empty means the agent's own ID (a
	// private dataset per agent).
	Label string `json:"label,omitempty"`
	// Count is the number of files. Default 20000.
	Count int `json:"count,omitempty"`
	// Size is the per-file size in bytes. Default 1 GB.
	Size int64 `json:"size,omitempty"`
}

// AgentSpec describes one agent, or Count identical agents expanded
// with a join stagger.
type AgentSpec struct {
	// ID names the agent. Empty means "agent<N>" numbered 1-based
	// across the whole expanded roster. With Count > 1 the expanded
	// agents are "<ID>1", "<ID>2", …
	ID string `json:"id,omitempty"`
	// Count expands this spec into that many sessions. Default 1.
	Count int `json:"count,omitempty"`
	// Algorithm selects the controller: gd, bo, hc, globus, harp, or
	// fixed:N. Default gd.
	Algorithm string `json:"algorithm,omitempty"`
	// JoinAt is when the first expanded agent joins. Default 0.
	JoinAt float64 `json:"join_at,omitempty"`
	// JoinStagger spaces the expanded agents' joins.
	JoinStagger float64 `json:"join_stagger,omitempty"`
	// LeaveAt removes the agent at that time when positive (every
	// expanded agent leaves at the same time).
	LeaveAt float64 `json:"leave_at,omitempty"`
	// Link pins the agent's route through the named topology link:
	// the route becomes the minimum-latency simple path from src to
	// dst that traverses it (netsim.RouteVia), and the agent's shard
	// is keyed by that route. Empty means the default src→dst route.
	// Requires a topology.
	Link string `json:"link,omitempty"`
	// MaxConcurrency bounds the searcher's concurrency domain.
	// Default 64.
	MaxConcurrency int `json:"max_concurrency,omitempty"`
	// SampleInterval overrides the environment's decision cadence
	// when positive.
	SampleInterval float64 `json:"sample_interval,omitempty"`
	// Initial is the starting setting. Default {2,1,1} ({N,1,1} for
	// fixed:N).
	Initial *SettingSpec `json:"initial,omitempty"`
	// Dataset describes the transferred files.
	Dataset *DatasetSpec `json:"dataset,omitempty"`
}

// Mutation kind names accepted in documents.
const (
	KindLinkCapacity = "link-capacity"
	KindCrossTraffic = "cross-traffic"
	KindRTT          = "rtt"
	KindSrcStore     = "src-store"
	KindDstStore     = "dst-store"
	KindGrowDataset  = "grow-dataset"
)

// MutationSpec is one timed environment change.
type MutationSpec struct {
	// At is when the change takes effect, seconds.
	At float64 `json:"at"`
	// Kind is one of the Kind* names.
	Kind string `json:"kind"`
	// Link names the topology link a link-capacity or cross-traffic
	// mutation targets. Required with a topology, forbidden without.
	Link string `json:"link,omitempty"`
	// Capacity is the new capacity in bits/s (link-capacity), or the
	// new aggregate capacity (src-store/dst-store; 0 keeps current).
	Capacity float64 `json:"capacity,omitempty"`
	// PerProc is the new per-process store cap (src-store/dst-store;
	// 0 keeps current).
	PerProc float64 `json:"per_proc,omitempty"`
	// RTT is the new round-trip time in seconds (rtt).
	RTT float64 `json:"rtt,omitempty"`
	// DurationSeconds is a cross-traffic wave's length; the claimed
	// capacity is restored at At+DurationSeconds.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// Rate is the capacity a cross-traffic wave claims, bits/s.
	Rate float64 `json:"rate,omitempty"`
	// Agent targets a grow-dataset mutation.
	Agent string `json:"agent,omitempty"`
	// Grow describes the appended files.
	Grow *GrowSpec `json:"grow,omitempty"`
}

// GrowSpec is the file batch a grow-dataset mutation appends.
type GrowSpec struct {
	Count int   `json:"count"`
	Size  int64 `json:"size"`
}

// Parse decodes, normalises, and validates a scenario document.
// Unknown fields, malformed JSON, and semantically invalid documents
// all return errors; Parse never panics.
func Parse(data []byte) (*Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing garbage after the document is an error, not ignored.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	if err := d.Normalise(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ParseFile reads and parses one scenario file.
func ParseFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	d, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Normalise fills defaults in place and validates the document. A
// normalised document is fully explicit: re-normalising is a no-op,
// and its canonical encoding (Canonical) is the scenario's identity.
func (d *Document) Normalise() error {
	if d.Version == 0 {
		d.Version = Version
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
	if d.DurationSeconds == 0 {
		d.DurationSeconds = 300
	}
	if d.TickSeconds == 0 {
		d.TickSeconds = 0.25
	}
	if d.RecordSeconds == 0 {
		d.RecordSeconds = 1
	}
	if d.Name == "" {
		if d.Preset != "" {
			d.Name = d.Preset
		} else {
			d.Name = "scenario"
		}
	}
	for i := range d.Agents {
		a := &d.Agents[i]
		if a.Count == 0 {
			a.Count = 1
		}
		if a.Algorithm == "" {
			a.Algorithm = "gd"
		}
		if a.MaxConcurrency == 0 {
			a.MaxConcurrency = 64
		}
		if a.Initial == nil {
			ini := SettingSpec{Concurrency: 2, Parallelism: 1, Pipelining: 1}
			if n, ok := fixedConcurrency(a.Algorithm); ok {
				ini.Concurrency = n
			}
			a.Initial = &ini
		}
		if a.Dataset == nil {
			a.Dataset = &DatasetSpec{}
		}
		if a.Dataset.Count == 0 {
			a.Dataset.Count = 20000
		}
		if a.Dataset.Size == 0 {
			a.Dataset.Size = 1e9
		}
	}
	return d.Validate()
}

// fixedConcurrency parses "fixed:N".
func fixedConcurrency(algo string) (int, bool) {
	if !strings.HasPrefix(algo, "fixed:") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(algo, "fixed:"))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// knownAlgorithm reports whether algo names a buildable controller.
func knownAlgorithm(algo string) bool {
	switch algo {
	case "gd", "bo", "hc", "globus", "harp":
		return true
	}
	_, ok := fixedConcurrency(algo)
	return ok
}

// finitePos reports v > 0 and finite.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// finiteNonNeg reports v ≥ 0 and finite.
func finiteNonNeg(v float64) bool {
	return v >= 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Validate checks a (normalised) document without building anything.
func (d *Document) Validate() error {
	if d.Version != Version {
		return fmt.Errorf("scenario: unsupported version %d (want %d)", d.Version, Version)
	}
	if d.Preset != "" && d.Environment != nil {
		return fmt.Errorf("scenario: preset %q and explicit environment are mutually exclusive", d.Preset)
	}
	if d.Preset == "" && d.Environment == nil {
		return fmt.Errorf("scenario: need a preset or an environment")
	}
	if d.Preset != "" {
		if _, ok := PresetConfig(d.Preset); !ok {
			return fmt.Errorf("scenario: unknown preset %q (have %s)", d.Preset, strings.Join(Presets(), ", "))
		}
	}
	if d.Environment != nil {
		cfg := d.Environment.Config()
		if d.Topology != nil {
			// The topology supplies link capacity and RTT; let explicit
			// zeros through by validating with placeholders.
			if cfg.LinkCapacity == 0 {
				cfg.LinkCapacity = 1
			}
			if cfg.RTT == 0 {
				cfg.RTT = 1
			}
		}
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("scenario: environment: %w", err)
		}
	}
	if !finitePos(d.DurationSeconds) {
		return fmt.Errorf("scenario: duration %v must be positive and finite", d.DurationSeconds)
	}
	if !finitePos(d.TickSeconds) || d.TickSeconds > d.DurationSeconds {
		return fmt.Errorf("scenario: tick %v must be positive, finite, and within the duration", d.TickSeconds)
	}
	if !finitePos(d.RecordSeconds) {
		return fmt.Errorf("scenario: record interval %v must be positive and finite", d.RecordSeconds)
	}
	if len(d.Agents) == 0 {
		return fmt.Errorf("scenario: no agents")
	}
	topoLinks, err := d.validateTopology()
	if err != nil {
		return err
	}
	ids, err := d.validateAgents(topoLinks)
	if err != nil {
		return err
	}
	return d.validateMutations(ids, topoLinks)
}

// validateTopology checks the topology spec and returns the set of
// link IDs (nil when the document has no topology).
func (d *Document) validateTopology() (map[string]bool, error) {
	t := d.Topology
	if t == nil {
		return nil, nil
	}
	links := make(map[string]bool)
	if t.Dumbbell != nil {
		if len(t.Nodes) > 0 || len(t.Links) > 0 {
			return nil, fmt.Errorf("scenario: topology: dumbbell and explicit nodes/links are mutually exclusive")
		}
		db := t.Dumbbell
		if db.Hosts < 1 {
			return nil, fmt.Errorf("scenario: topology: dumbbell needs at least one host pair")
		}
		if db.Hosts > 4096 {
			return nil, fmt.Errorf("scenario: topology: dumbbell hosts %d too large", db.Hosts)
		}
		if !finitePos(db.AccessCap) || !finitePos(db.BottleneckCap) {
			return nil, fmt.Errorf("scenario: topology: dumbbell capacities must be positive and finite")
		}
		if !finiteNonNeg(db.BottleneckLatency) {
			return nil, fmt.Errorf("scenario: topology: dumbbell latency %v must be non-negative and finite", db.BottleneckLatency)
		}
		links["bottleneck"] = true
		for i := 0; i < db.Hosts; i++ {
			links[fmt.Sprintf("access-src%d", i)] = true
			links[fmt.Sprintf("access-dst%d", i)] = true
		}
		return links, nil
	}
	if len(t.Nodes) == 0 || len(t.Links) == 0 {
		return nil, fmt.Errorf("scenario: topology: need nodes and links (or a dumbbell)")
	}
	nodes := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n == "" {
			return nil, fmt.Errorf("scenario: topology: empty node name")
		}
		if nodes[n] {
			return nil, fmt.Errorf("scenario: topology: duplicate node %q", n)
		}
		nodes[n] = true
	}
	for _, l := range t.Links {
		if l.ID == "" {
			return nil, fmt.Errorf("scenario: topology: link with empty ID")
		}
		if links[l.ID] {
			return nil, fmt.Errorf("scenario: topology: duplicate link %q", l.ID)
		}
		if !nodes[l.A] || !nodes[l.B] {
			return nil, fmt.Errorf("scenario: topology: link %q references unknown node (%q, %q)", l.ID, l.A, l.B)
		}
		if !finitePos(l.Capacity) {
			return nil, fmt.Errorf("scenario: topology: link %q capacity %v must be positive and finite", l.ID, l.Capacity)
		}
		if !finiteNonNeg(l.Latency) {
			return nil, fmt.Errorf("scenario: topology: link %q latency %v must be non-negative and finite", l.ID, l.Latency)
		}
		links[l.ID] = true
	}
	if t.Src == "" || t.Dst == "" {
		return nil, fmt.Errorf("scenario: topology: explicit graphs need src and dst endpoints")
	}
	if !nodes[t.Src] {
		return nil, fmt.Errorf("scenario: topology: unknown src node %q", t.Src)
	}
	if !nodes[t.Dst] {
		return nil, fmt.Errorf("scenario: topology: unknown dst node %q", t.Dst)
	}
	if t.Src == t.Dst {
		return nil, fmt.Errorf("scenario: topology: src and dst are both %q", t.Src)
	}
	return links, nil
}

// maxFleet bounds the expanded roster; a backstop against typo'd
// counts, an order of magnitude above the 100k-session sharded fleet
// workload.
const maxFleet = 1000000

// agentRef names an agent spec in error messages: the field path plus
// the agent's identity — its declared ID, or the first expanded ID
// ("agent<N>") for unnamed specs, so the message always points at a
// concrete agent. firstN is the 1-based roster number of the spec's
// first expanded agent.
func agentRef(i int, a *AgentSpec, firstN int) string {
	id := a.ID
	if id == "" {
		id = fmt.Sprintf("agent%d", firstN)
	}
	return fmt.Sprintf("agents[%d] (id %q)", i, id)
}

// validateAgents checks the roster against the topology's link set and
// returns the expanded agent IDs.
func (d *Document) validateAgents(topoLinks map[string]bool) (map[string]bool, error) {
	total := 0
	ids := make(map[string]bool)
	for i := range d.Agents {
		a := &d.Agents[i]
		firstN := total + 1
		if a.Count < 1 {
			return nil, fmt.Errorf("scenario: agent %d count %d must be ≥ 1", i, a.Count)
		}
		total += a.Count
		if total > maxFleet {
			return nil, fmt.Errorf("scenario: more than %d agents", maxFleet)
		}
		if a.Link != "" {
			if topoLinks == nil {
				return nil, fmt.Errorf("scenario: %s: link %q pinned but the document has no topology",
					agentRef(i, a, firstN), a.Link)
			}
			if !topoLinks[a.Link] {
				return nil, fmt.Errorf("scenario: %s: link %q is not defined in the topology",
					agentRef(i, a, firstN), a.Link)
			}
		}
		if !knownAlgorithm(a.Algorithm) {
			return nil, fmt.Errorf("scenario: agent %d unknown algorithm %q", i, a.Algorithm)
		}
		if !finiteNonNeg(a.JoinAt) {
			return nil, fmt.Errorf("scenario: agent %d join_at %v must be non-negative and finite", i, a.JoinAt)
		}
		if !finiteNonNeg(a.JoinStagger) {
			return nil, fmt.Errorf("scenario: agent %d join_stagger %v must be non-negative and finite", i, a.JoinStagger)
		}
		if a.LeaveAt != 0 {
			lastJoin := a.JoinAt + float64(a.Count-1)*a.JoinStagger
			if !finitePos(a.LeaveAt) || a.LeaveAt <= lastJoin {
				return nil, fmt.Errorf("scenario: agent %d leave_at %v must be after its last join %v", i, a.LeaveAt, lastJoin)
			}
		}
		if a.MaxConcurrency < 2 {
			return nil, fmt.Errorf("scenario: agent %d max_concurrency %d must be ≥ 2", i, a.MaxConcurrency)
		}
		if a.SampleInterval < 0 || math.IsNaN(a.SampleInterval) || math.IsInf(a.SampleInterval, 0) {
			return nil, fmt.Errorf("scenario: agent %d sample_interval %v must be non-negative and finite", i, a.SampleInterval)
		}
		if a.Initial != nil {
			s := a.Initial
			if s.Concurrency < 1 || s.Parallelism < 1 || s.Pipelining < 1 {
				return nil, fmt.Errorf("scenario: agent %d initial setting cc=%d p=%d q=%d must be ≥ 1 each",
					i, s.Concurrency, s.Parallelism, s.Pipelining)
			}
		}
		if ds := a.Dataset; ds != nil {
			if ds.Count < 1 {
				return nil, fmt.Errorf("scenario: agent %d dataset count %d must be ≥ 1", i, ds.Count)
			}
			if ds.Size < 1 {
				return nil, fmt.Errorf("scenario: agent %d dataset size %d must be ≥ 1", i, ds.Size)
			}
		}
	}
	// Expansion assigns final IDs; collect them for mutation refs and
	// duplicate detection.
	for _, id := range d.AgentIDs() {
		if ids[id] {
			return nil, fmt.Errorf("scenario: duplicate agent ID %q", id)
		}
		ids[id] = true
	}
	return ids, nil
}

// AgentIDs returns the expanded roster's IDs in join-spec order:
// unnamed specs number "agent<N>" 1-based across the document; named
// specs use their ID, suffixed 1..Count when Count > 1.
func (d *Document) AgentIDs() []string {
	out := make([]string, 0, len(d.Agents))
	n := 0
	for i := range d.Agents {
		a := &d.Agents[i]
		count := a.Count
		if count < 1 {
			count = 1
		}
		for j := 0; j < count; j++ {
			n++
			switch {
			case a.ID == "":
				out = append(out, fmt.Sprintf("agent%d", n))
			case count == 1:
				out = append(out, a.ID)
			default:
				out = append(out, fmt.Sprintf("%s%d", a.ID, j+1))
			}
		}
	}
	return out
}

// mutKey returns the resource-conflict key of a mutation: two
// mutations with the same key touch the same knob, so their times may
// not coincide (and cross-traffic windows may not overlap anything on
// the key).
func (m *MutationSpec) mutKey() string {
	switch m.Kind {
	case KindLinkCapacity, KindCrossTraffic:
		return "link:" + m.Link
	case KindRTT:
		return "rtt"
	case KindSrcStore:
		return "src-store"
	case KindDstStore:
		return "dst-store"
	case KindGrowDataset:
		return "grow:" + m.Agent
	}
	return "?" + m.Kind
}

// validateMutations checks kinds, fields, references, and overlap.
func (d *Document) validateMutations(agentIDs, topoLinks map[string]bool) error {
	type span struct {
		key      string
		from, to float64
		idx      int
	}
	spans := make([]span, 0, len(d.Mutations))
	for i := range d.Mutations {
		m := &d.Mutations[i]
		if !finiteNonNeg(m.At) {
			return fmt.Errorf("scenario: mutation %d at %v must be non-negative and finite", i, m.At)
		}
		if m.At >= d.DurationSeconds {
			return fmt.Errorf("scenario: mutation %d at %v is past the %v s horizon", i, m.At, d.DurationSeconds)
		}
		switch m.Kind {
		case KindLinkCapacity:
			if !finitePos(m.Capacity) {
				return fmt.Errorf("scenario: mutation %d (%s) capacity %v must be positive and finite", i, m.Kind, m.Capacity)
			}
		case KindCrossTraffic:
			if !finitePos(m.Rate) {
				return fmt.Errorf("scenario: mutation %d (%s) rate %v must be positive and finite", i, m.Kind, m.Rate)
			}
			if !finitePos(m.DurationSeconds) {
				return fmt.Errorf("scenario: mutation %d (%s) duration %v must be positive and finite", i, m.Kind, m.DurationSeconds)
			}
		case KindRTT:
			if !finitePos(m.RTT) {
				return fmt.Errorf("scenario: mutation %d (%s) rtt %v must be positive and finite", i, m.Kind, m.RTT)
			}
		case KindSrcStore, KindDstStore:
			if m.Capacity == 0 && m.PerProc == 0 {
				return fmt.Errorf("scenario: mutation %d (%s) changes nothing", i, m.Kind)
			}
			if !finiteNonNeg(m.Capacity) || !finiteNonNeg(m.PerProc) {
				return fmt.Errorf("scenario: mutation %d (%s) capacities must be non-negative and finite", i, m.Kind)
			}
		case KindGrowDataset:
			if m.Agent == "" {
				return fmt.Errorf("scenario: mutation %d (%s) names no agent", i, m.Kind)
			}
			if !agentIDs[m.Agent] {
				return fmt.Errorf("scenario: mutation %d (%s) references unknown agent %q", i, m.Kind, m.Agent)
			}
			if m.Grow == nil || m.Grow.Count < 1 || m.Grow.Size < 1 {
				return fmt.Errorf("scenario: mutation %d (%s) needs grow.count ≥ 1 and grow.size ≥ 1", i, m.Kind)
			}
		default:
			return fmt.Errorf("scenario: mutation %d unknown kind %q", i, m.Kind)
		}
		switch m.Kind {
		case KindLinkCapacity, KindCrossTraffic:
			if topoLinks == nil && m.Link != "" {
				return fmt.Errorf("scenario: mutation %d names link %q but the document has no topology", i, m.Link)
			}
			if topoLinks != nil && !topoLinks[m.Link] {
				return fmt.Errorf("scenario: mutation %d references unknown link %q", i, m.Link)
			}
		default:
			if m.Link != "" {
				return fmt.Errorf("scenario: mutation %d (%s) does not take a link", i, m.Kind)
			}
		}
		to := m.At
		if m.Kind == KindCrossTraffic {
			to = m.At + m.DurationSeconds
		}
		spans = append(spans, span{key: m.mutKey(), from: m.At, to: to, idx: i})
	}
	// Overlap: same-key point mutations may not share a time, and a
	// cross-traffic window conflicts with anything on its key inside
	// [At, At+Duration] — a simultaneous or mid-wave change has no
	// well-defined order.
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].key != spans[b].key {
			return spans[a].key < spans[b].key
		}
		if spans[a].from != spans[b].from {
			return spans[a].from < spans[b].from
		}
		return spans[a].idx < spans[b].idx
	})
	for i := 1; i < len(spans); i++ {
		p, q := &spans[i-1], &spans[i]
		if p.key == q.key && q.from <= p.to {
			return fmt.Errorf("scenario: mutations %d and %d overlap on %s", p.idx, q.idx, p.key)
		}
	}
	return nil
}

// Canonical returns the normalised document's canonical JSON encoding:
// deterministic field order with every default made explicit. Two
// scenarios are the same run if and only if their canonical encodings
// are equal, which is what the webservice result cache keys on — a
// document differing only in its mutation schedule encodes differently
// and can never alias.
func (d *Document) Canonical() ([]byte, error) {
	if err := d.Normalise(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// Hash returns the hex SHA-256 of the canonical encoding, or an error
// for invalid documents.
func (d *Document) Hash() (string, error) {
	b, err := d.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
