package trace

import (
	"strings"
	"testing"
)

func TestSeriesAppendAndStats(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(0, 1)
	s.Append(1, 3)
	s.Append(2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := s.MeanAfter(1); got != 4 {
		t.Fatalf("MeanAfter(1) = %v, want 4", got)
	}
	if got := s.MeanAfter(99); got != 0 {
		t.Fatalf("MeanAfter(99) = %v, want 0", got)
	}
	if got := s.Values(); len(got) != 3 || got[2] != 5 {
		t.Fatalf("Values = %v", got)
	}
	if got := (&Series{}).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestSeriesAppendOutOfOrderPanics(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order append did not panic")
		}
	}()
	s.Append(4, 1)
}

func TestSeriesBetween(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	sub := s.Between(3, 6)
	if sub.Len() != 3 || sub.Points[0].Time != 3 || sub.Points[2].Time != 5 {
		t.Fatalf("Between = %+v", sub.Points)
	}
}

func TestConvergenceTime(t *testing.T) {
	s := &Series{Name: "cc"}
	// Climbs to 10 at t=5, stays.
	for i := 0; i <= 20; i++ {
		v := float64(i * 2)
		if v > 10 {
			v = 10
		}
		s.Append(float64(i), v)
	}
	if got := s.ConvergenceTime(10, 0.05, 5); got != 5 {
		t.Fatalf("ConvergenceTime = %v, want 5", got)
	}
	if got := s.ConvergenceTime(50, 0.05, 5); got != -1 {
		t.Fatalf("unreached target = %v, want -1", got)
	}
	if got := s.ConvergenceTime(0, 0.05, 5); got != -1 {
		t.Fatalf("zero target = %v, want -1", got)
	}
}

func TestConvergenceTimeResetsOnDeparture(t *testing.T) {
	s := &Series{Name: "cc"}
	s.Append(0, 10)
	s.Append(1, 10)
	s.Append(2, 3) // leaves the band
	for i := 3; i <= 12; i++ {
		s.Append(float64(i), 10)
	}
	if got := s.ConvergenceTime(10, 0.05, 5); got != 3 {
		t.Fatalf("ConvergenceTime = %v, want 3 (after the excursion)", got)
	}
}

func TestTimeSetGetLookupNames(t *testing.T) {
	ts := &TimeSet{}
	a := ts.Get("b-series")
	if ts.Get("b-series") != a {
		t.Fatal("Get created a duplicate")
	}
	ts.Get("a-series")
	if ts.Lookup("ghost") != nil {
		t.Fatal("Lookup of unknown name returned non-nil")
	}
	names := ts.Names()
	if len(names) != 2 || names[0] != "a-series" || names[1] != "b-series" {
		t.Fatalf("Names = %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	ts := &TimeSet{}
	ts.Get("x").Append(0, 1)
	ts.Get("x").Append(1, 2)
	ts.Get("y").Append(1, 5)
	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "time,x,y\n0,1,\n1,2,5\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestASCIIChart(t *testing.T) {
	ts := &TimeSet{}
	for i := 0; i < 10; i++ {
		ts.Get("ramp").Append(float64(i), float64(i))
	}
	chart := ts.ASCIIChart(20, 6)
	if !strings.Contains(chart, "a = ramp") {
		t.Fatalf("chart missing legend:\n%s", chart)
	}
	if !strings.Contains(chart, "a") {
		t.Fatal("chart missing data marks")
	}
	if got := (&TimeSet{}).ASCIIChart(20, 6); got != "(empty chart)\n" {
		t.Fatalf("empty chart = %q", got)
	}
}
