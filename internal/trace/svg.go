package trace

import (
	"fmt"
	"io"
	"math"
)

// svgPalette holds the line colours used for successive series.
var svgPalette = []string{
	"#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c",
	"#0891b2", "#be185d", "#4d7c0f",
}

// WriteSVG renders the set as a standalone SVG line chart: one polyline
// per series, axes with min/max labels, and a legend. Used by the
// falconweb service (§6's "cloud-based web service" future work) and by
// cmd/reproduce -svg.
func (ts *TimeSet) WriteSVG(w io.Writer, width, height int, title string) error {
	if width < 160 {
		width = 160
	}
	if height < 120 {
		height = 120
	}
	const (
		padL, padR = 56, 16
		padT, padB = 32, 36
	)
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)

	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range ts.Series {
		for _, p := range s.Points {
			minT, maxT = math.Min(minT, p.Time), math.Max(maxT, p.Time)
			minV, maxV = math.Min(minV, p.Value), math.Max(maxV, p.Value)
			total++
		}
	}
	if total == 0 {
		_, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d"><text x="10" y="20">no data</text></svg>`, width, height)
		return err
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == minV {
		maxV = minV + 1
	}
	if minV > 0 && minV < 0.2*maxV {
		minV = 0 // anchor near-zero baselines at zero for readability
	}

	x := func(t float64) float64 { return float64(padL) + (t-minT)/(maxT-minT)*plotW }
	y := func(v float64) float64 { return float64(padT) + (1-(v-minV)/(maxV-minV))*plotH }

	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`, width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(w, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`, padL, xmlEscape(title))
	// Axes.
	fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999"/>`, padL, y(minV), width-padR, y(minV))
	fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999"/>`, padL, y(minV), padL, y(maxV))
	fmt.Fprintf(w, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`, padL-4, y(maxV)+4, maxV)
	fmt.Fprintf(w, `<text x="%d" y="%.1f" text-anchor="end">%.3g</text>`, padL-4, y(minV)+4, minV)
	fmt.Fprintf(w, `<text x="%d" y="%d">%.3gs</text>`, padL, height-padB+16, minT)
	fmt.Fprintf(w, `<text x="%d" y="%d" text-anchor="end">%.3gs</text>`, width-padR, height-padB+16, maxT)

	// Series.
	for i, s := range ts.Series {
		color := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(w, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="`, color)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%.1f,%.1f ", x(p.Time), y(p.Value))
		}
		fmt.Fprint(w, `"/>`)
		// Legend entry.
		lx := padL + i*130
		ly := height - 8
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, lx, ly-4, lx+16, ly-4, color)
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`, lx+20, ly, xmlEscape(s.Name))
	}
	_, err := fmt.Fprint(w, `</svg>`)
	return err
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		case '\'':
			out = append(out, "&apos;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
