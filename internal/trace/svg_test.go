package trace

import (
	"strings"
	"testing"
)

func TestWriteSVGBasics(t *testing.T) {
	ts := &TimeSet{}
	for i := 0; i < 20; i++ {
		ts.Get("alpha").Append(float64(i), float64(i*i))
		ts.Get("beta").Append(float64(i), float64(20-i))
	}
	var b strings.Builder
	if err := ts.WriteSVG(&b, 640, 320, "demo <chart>"); err != nil {
		t.Fatal(err)
	}
	svg := b.String()
	for _, want := range []string{
		"<svg", "</svg>",
		"polyline",
		"alpha", "beta",
		"demo &lt;chart&gt;", // escaped title
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%.300s", want, svg)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("polyline count = %d, want 2", got)
	}
}

func TestWriteSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := (&TimeSet{}).WriteSVG(&b, 640, 320, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty SVG missing placeholder")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	// Single constant point: ranges collapse; must not divide by zero.
	ts := &TimeSet{}
	ts.Get("flat").Append(5, 7)
	var b strings.Builder
	if err := ts.WriteSVG(&b, 200, 150, "flat"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Fatal("SVG contains NaN coordinates")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a&b<c>d"e'f`); got != "a&amp;b&lt;c&gt;d&quot;e&apos;f" {
		t.Fatalf("xmlEscape = %q", got)
	}
}
