// Package trace records and renders time series produced by
// experiments: per-task throughput, concurrency, and loss over time.
// Output targets are CSV (for external plotting) and compact ASCII
// charts (for terminal inspection of figure shapes).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one time-stamped observation.
type Point struct {
	Time  float64
	Value float64
}

// Series is a named, time-ordered sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Append adds an observation. Points must be appended in
// non-decreasing time order; Append panics otherwise, as out-of-order
// recording indicates a scheduling bug.
func (s *Series) Append(t, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].Time {
		panic(fmt.Sprintf("trace: out-of-order append to %q: %v after %v", s.Name, t, s.Points[n-1].Time))
	}
	s.Points = append(s.Points, Point{Time: t, Value: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Grow ensures capacity for at least n more points without further
// reallocation. Recorders that know their horizon (a scheduler run of
// fixed length and sampling cadence) call it once so the append path
// stays allocation-free.
func (s *Series) Grow(n int) {
	if n <= 0 || cap(s.Points)-len(s.Points) >= n {
		return
	}
	pts := make([]Point, len(s.Points), len(s.Points)+n)
	copy(pts, s.Points)
	s.Points = pts
}

// Values returns the values as a slice.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.Value
	}
	return vs
}

// Mean returns the time-unweighted mean value, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// MeanAfter returns the mean of values at times ≥ t0 — used to measure
// post-convergence throughput. Returns 0 when no points qualify.
func (s *Series) MeanAfter(t0 float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.Time >= t0 {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Between returns the sub-series with t0 ≤ time < t1.
func (s *Series) Between(t0, t1 float64) *Series {
	out := &Series{Name: s.Name}
	for _, p := range s.Points {
		if p.Time >= t0 && p.Time < t1 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// ConvergenceTime returns the first time from which the series stays
// within ±tol (relative) of target for at least `hold` seconds, or -1
// if it never converges. It is how experiments measure "time to reach
// the optimal concurrency".
func (s *Series) ConvergenceTime(target, tol, hold float64) float64 {
	if target == 0 {
		return -1
	}
	start := -1.0
	for _, p := range s.Points {
		if math.Abs(p.Value-target) <= tol*math.Abs(target) {
			if start < 0 {
				start = p.Time
			}
			if p.Time-start >= hold {
				return start
			}
		} else {
			start = -1
		}
	}
	// Converged at the tail but held less than `hold`: accept if the
	// series simply ended while converged.
	if start >= 0 && len(s.Points) > 0 && s.Points[len(s.Points)-1].Time-start >= hold/2 {
		return start
	}
	return -1
}

// TimeSet is a collection of named series sharing a time axis.
type TimeSet struct {
	Series []*Series

	// index maps name → series so Get/Lookup stay O(1) at fleet scale
	// (tens of thousands of series). Small sets — the common
	// few-task experiment — stay on the linear scan and never pay the
	// map allocations; the index is built when the set outgrows
	// smallSetScan (or a Reserve announces fleet scale) and rebuilt
	// lazily whenever the exported Series slice was mutated directly
	// (struct literals, hand appends). Series remains the source of
	// truth.
	index map[string]*Series
}

// smallSetScan is the series count below which a TimeSet keeps linear
// lookups instead of building its name index.
const smallSetScan = 16

// Reserve pre-sizes the series slice for n additional series, so
// recorders that know their fleet size up front keep the creation path
// free of incremental growth. The name index is deliberately left to
// Get's own threshold: index state stays a pure function of the
// series-creation sequence, so runs that build identical series
// compare deeply equal however the recorder was sized.
func (ts *TimeSet) Reserve(n int) {
	if cap(ts.Series)-len(ts.Series) < n {
		grown := make([]*Series, len(ts.Series), len(ts.Series)+n)
		copy(grown, ts.Series)
		ts.Series = grown
	}
}

// buildIndex (re)builds the name index with room for n series.
// Duplicate names resolve to the first occurrence, as the linear scan
// does.
func (ts *TimeSet) buildIndex(n int) {
	ts.index = make(map[string]*Series, n)
	for _, s := range ts.Series {
		if _, ok := ts.index[s.Name]; !ok {
			ts.index[s.Name] = s
		}
	}
}

// lookup returns the named series or nil, via the index when one
// exists (syncing it first if Series was modified behind its back) and
// the linear scan otherwise.
func (ts *TimeSet) lookup(name string) *Series {
	if ts.index == nil {
		for _, s := range ts.Series {
			if s.Name == name {
				return s
			}
		}
		return nil
	}
	if len(ts.index) != len(ts.Series) {
		ts.buildIndex(len(ts.Series))
	}
	return ts.index[name]
}

// Get returns the series with the given name, creating it if needed.
func (ts *TimeSet) Get(name string) *Series {
	if s := ts.lookup(name); s != nil {
		return s
	}
	s := &Series{Name: name}
	ts.Series = append(ts.Series, s)
	if ts.index != nil {
		ts.index[name] = s
	} else if len(ts.Series) > smallSetScan {
		ts.buildIndex(2 * len(ts.Series))
	}
	return s
}

// Append adds an observation to the named series, creating it if
// needed — the one-line form event consumers use when recording.
func (ts *TimeSet) Append(name string, t, v float64) {
	ts.Get(name).Append(t, v)
}

// Lookup returns the series with the given name, or nil.
func (ts *TimeSet) Lookup(name string) *Series {
	return ts.lookup(name)
}

// Names returns the sorted series names.
func (ts *TimeSet) Names() []string {
	names := make([]string, len(ts.Series))
	for i, s := range ts.Series {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// WriteCSV emits the set as CSV with a shared time column. Series are
// aligned by exact timestamps; missing values are left empty.
func (ts *TimeSet) WriteCSV(w io.Writer) error {
	names := ts.Names()
	times := map[float64]bool{}
	bySeries := make(map[string]map[float64]float64, len(names))
	for _, s := range ts.Series {
		m := make(map[float64]float64, len(s.Points))
		for _, p := range s.Points {
			times[p.Time] = true
			m[p.Time] = p.Value
		}
		bySeries[s.Name] = m
	}
	sorted := make([]float64, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Float64s(sorted)

	if _, err := fmt.Fprintf(w, "time,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for _, t := range sorted {
		row := make([]string, 0, len(names)+1)
		row = append(row, fmt.Sprintf("%g", t))
		for _, n := range names {
			if v, ok := bySeries[n][t]; ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIChart renders the series as a fixed-size ASCII chart, one
// letter per series (a, b, c, …), with min/max annotations. Intended
// for eyeballing figure shapes in terminal output.
func (ts *TimeSet) ASCIIChart(width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range ts.Series {
		for _, p := range s.Points {
			minT, maxT = math.Min(minT, p.Time), math.Max(maxT, p.Time)
			minV, maxV = math.Min(minV, p.Value), math.Max(maxV, p.Value)
			total++
		}
	}
	if total == 0 {
		return "(empty chart)\n"
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range ts.Series {
		mark := byte('a' + si%26)
		for _, p := range s.Points {
			x := int((p.Time - minT) / (maxT - minT) * float64(width-1))
			y := int((p.Value - minV) / (maxV - minV) * float64(height-1))
			row := height - 1 - y
			grid[row][x] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.4g\n", maxV)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%.4g  t=[%.4g, %.4g]\n", minV, minT, maxT)
	for si, s := range ts.Series {
		fmt.Fprintf(&b, "  %c = %s\n", 'a'+si%26, s.Name)
	}
	return b.String()
}
