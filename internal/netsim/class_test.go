package netsim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// randomScenario builds a deterministic pseudo-random network and
// demand set from the seed: up to 6 resources of mixed kinds, up to 40
// demands drawn from a small pool of signatures so multi-member
// classes appear alongside degenerate single-flow classes, with mixed
// weights (multi-connection demands).
func randomScenario(seed uint32) (*Network, []Demand) {
	x := uint64(seed)*2654435761 + 1
	next := func(mod uint64) uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return (x >> 33) % mod
	}
	n := New()
	nres := int(next(6)) + 1
	resIDs := make([]string, nres)
	for i := 0; i < nres; i++ {
		id := fmt.Sprintf("r%d", i)
		resIDs[i] = id
		n.AddResource(Resource{ID: id, Kind: ResourceKind(next(4)), Capacity: float64(next(1000)+1) * mbps})
	}
	// A small signature pool makes repeated (path, cap, RTT) tuples
	// likely; some demands still draw fresh tuples and stay singletons.
	type sig struct {
		rs  []string
		cap float64
		rtt float64
	}
	nsig := int(next(5)) + 1
	sigs := make([]sig, nsig)
	for i := range sigs {
		nr := int(next(uint64(nres))) + 1
		rs := make([]string, 0, nr)
		seen := map[string]bool{}
		for len(rs) < nr {
			id := resIDs[next(uint64(nres))]
			if !seen[id] {
				seen[id] = true
				rs = append(rs, id)
			}
		}
		sigs[i] = sig{rs: rs, cap: float64(next(500)+1) * mbps, rtt: 0.01 + float64(next(100))/1000}
	}
	nflows := int(next(40)) + 1
	ds := make([]Demand, nflows)
	for i := range ds {
		s := sigs[next(uint64(nsig))]
		ds[i] = Demand{
			FlowID:    fmt.Sprintf("f%d", i),
			Resources: s.rs,
			Cap:       s.cap,
			RTT:       s.rtt,
			Weight:    int(next(4)), // 0 (=1) through 3 connections
		}
	}
	return n, ds
}

// sameAlloc reports whether two allocations are bitwise identical.
func sameAlloc(a, b *Allocation) error {
	if len(a.Rate) != len(b.Rate) {
		return fmt.Errorf("rate sizes %d vs %d", len(a.Rate), len(b.Rate))
	}
	for id, r := range a.Rate {
		if br, ok := b.Rate[id]; !ok || br != r {
			return fmt.Errorf("Rate[%s] = %x vs %x", id, r, b.Rate[id])
		}
	}
	for id, l := range a.Loss {
		if bl, ok := b.Loss[id]; !ok || bl != l {
			return fmt.Errorf("Loss[%s] = %x vs %x", id, l, b.Loss[id])
		}
	}
	if fmt.Sprint(a.Saturated) != fmt.Sprint(b.Saturated) {
		return fmt.Errorf("Saturated %v vs %v", a.Saturated, b.Saturated)
	}
	return nil
}

// TestClassAggregationTransparencyProperty is the tentpole's pin:
// across seeded random topologies, caps, RTTs, weights, and flow
// counts, the class-aggregated allocation is bitwise identical to the
// naive one-class-per-flow water-fill. Every float must match exactly
// — the weighted fill charges each resource once per level with exact
// integer weight sums, so no tolerance is needed or allowed.
func TestClassAggregationTransparencyProperty(t *testing.T) {
	f := func(seed uint32) bool {
		nAgg, ds := randomScenario(seed)
		nFlat, _ := randomScenario(seed) // identical network, fresh arena
		nFlat.SetClassAggregation(false)
		if nAgg.ClassAggregation() == nFlat.ClassAggregation() {
			t.Fatal("toggle did not take effect")
		}
		aggAlloc, err := nAgg.Allocate(ds)
		if err != nil {
			t.Fatalf("seed %d: aggregated: %v", seed, err)
		}
		flatAlloc, err := nFlat.Allocate(ds)
		if err != nil {
			t.Fatalf("seed %d: per-flow: %v", seed, err)
		}
		if err := sameAlloc(aggAlloc, flatAlloc); err != nil {
			t.Fatalf("seed %d: aggregated vs per-flow: %v", seed, err)
		}
		if nAgg.Classes() > len(ds) || nAgg.Classes() < 1 {
			t.Fatalf("seed %d: Classes() = %d with %d demands", seed, nAgg.Classes(), len(ds))
		}
		// The dense (positional) form must carry the same values as the
		// map form.
		nDense, _ := randomScenario(seed)
		var dense DenseAllocation
		if err := nDense.AllocateDense(&dense, ds); err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		for i := range ds {
			if dense.Rate[i] != aggAlloc.Rate[ds[i].FlowID] || dense.Loss[i] != aggAlloc.Loss[ds[i].FlowID] {
				t.Fatalf("seed %d: dense[%d] = (%v, %v), map = (%v, %v)", seed, i,
					dense.Rate[i], dense.Loss[i], aggAlloc.Rate[ds[i].FlowID], aggAlloc.Loss[ds[i].FlowID])
			}
		}
		if fmt.Sprint(dense.Saturated) != fmt.Sprint(aggAlloc.Saturated) {
			t.Fatalf("seed %d: dense Saturated %v vs %v", seed, dense.Saturated, aggAlloc.Saturated)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestClassCacheAcrossCalls exercises the partition cache's dirty-
// suffix path: joins append demands, leaves truncate, a retune changes
// one demand's cap mid-list. After every mutation the cached Network's
// allocation must remain bitwise identical to a fresh per-flow
// computation, including while stale zero-member classes linger in the
// table.
func TestClassCacheAcrossCalls(t *testing.T) {
	build := func() *Network {
		n := New()
		n.AddResource(Resource{ID: "link", Kind: Link, Capacity: 10 * gbps})
		n.AddResource(Resource{ID: "store", Kind: Storage, Capacity: 8 * gbps})
		n.AddResource(Resource{ID: "nic", Kind: NIC, Capacity: 40 * gbps})
		return n
	}
	cached := build()
	var got Allocation

	mk := func(i int, cap float64, w int) Demand {
		return Demand{
			FlowID:    fmt.Sprintf("t%d", i),
			Resources: []string{"store", "nic", "link"},
			Cap:       cap,
			RTT:       0.03,
			Weight:    w,
		}
	}
	ds := []Demand{mk(0, 500*mbps, 4), mk(1, 500*mbps, 4), mk(2, 250*mbps, 2)}

	check := func(step string) {
		t.Helper()
		if err := cached.AllocateInto(&got, ds); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		fresh := build()
		fresh.SetClassAggregation(false)
		want, err := fresh.Allocate(ds)
		if err != nil {
			t.Fatalf("%s: fresh: %v", step, err)
		}
		if err := sameAlloc(&got, want); err != nil {
			t.Fatalf("%s: cached vs fresh: %v", step, err)
		}
	}

	check("initial")
	if cached.Classes() != 2 {
		t.Fatalf("initial Classes() = %d, want 2 (two caps)", cached.Classes())
	}

	// Join: a new task appends a demand in an existing class.
	ds = append(ds, mk(3, 250*mbps, 2))
	check("join existing class")
	if cached.Classes() != 2 {
		t.Fatalf("after join Classes() = %d, want 2", cached.Classes())
	}

	// Join with a fresh signature: a third class appears.
	ds = append(ds, mk(4, 100*mbps, 1))
	check("join new class")
	if cached.Classes() != 3 {
		t.Fatalf("after new-class join Classes() = %d, want 3", cached.Classes())
	}

	// Retune: task 1 changes concurrency, moving it to the 250 Mbps
	// class; its old class keeps one member.
	ds[1] = mk(1, 250*mbps, 2)
	check("retune")

	// Leave: the last two tasks finish. The 100 Mbps class goes stale
	// (zero members) but stays cached.
	ds = ds[:3]
	check("leave")
	if cached.Classes() != 2 {
		t.Fatalf("after leave Classes() = %d, want 2 live", cached.Classes())
	}

	// Rejoin after staleness: the cached 100 Mbps class is revived.
	ds = append(ds, mk(5, 100*mbps, 3))
	check("rejoin stale class")
	if cached.Classes() != 3 {
		t.Fatalf("after rejoin Classes() = %d, want 3", cached.Classes())
	}

	// Toggling aggregation off and on mid-stream resets the cache and
	// must not change results.
	cached.SetClassAggregation(false)
	check("aggregation off")
	cached.SetClassAggregation(true)
	check("aggregation back on")
}

// fleetDemands builds the acceptance-criteria demand set: 1000 flows
// sharing one bottleneck path with four distinct per-flow caps, the
// shape a 1000-session fleet presents to the allocator (4 classes).
func fleetDemands() (*Network, []Demand) {
	n := New()
	n.AddResource(Resource{ID: "link", Kind: Link, Capacity: 10 * gbps})
	n.AddResource(Resource{ID: "store", Kind: Storage, Capacity: 8 * gbps})
	n.AddResource(Resource{ID: "nic", Kind: NIC, Capacity: 40 * gbps})
	caps := []float64{100 * mbps, 200 * mbps, 400 * mbps, 800 * mbps}
	ds := make([]Demand, 1000)
	for i := range ds {
		ds[i] = Demand{
			FlowID:    fmt.Sprintf("f%d", i),
			Resources: []string{"store", "nic", "link"},
			Cap:       caps[i%len(caps)],
			RTT:       0.03,
			Weight:    1 + i%4,
		}
	}
	return n, ds
}

// TestFleetDemandsTransparency pins the benchmark configuration itself:
// the 1000-flow fleet set collapses to 4 classes and matches the
// per-flow path bitwise.
func TestFleetDemandsTransparency(t *testing.T) {
	nAgg, ds := fleetDemands()
	aggAlloc, err := nAgg.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if nAgg.Classes() != 4 {
		t.Fatalf("Classes() = %d, want 4", nAgg.Classes())
	}
	nFlat, _ := fleetDemands()
	nFlat.SetClassAggregation(false)
	flatAlloc, err := nFlat.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameAlloc(aggAlloc, flatAlloc); err != nil {
		t.Fatal(err)
	}
	if nFlat.Classes() != 1000 {
		t.Fatalf("per-flow Classes() = %d, want 1000", nFlat.Classes())
	}
}

// BenchmarkAllocate1kFlows is the fleet-scale allocation through the
// engine's entry point (AllocateDense): 1000 flows in 4 classes over a
// three-resource bottleneck path. The class water-fill plus the
// partition cache make the steady-state call O(classes × resources)
// with one cheap compare pass over the demands; the benchmark asserts
// the arena keeps it allocation-free.
func BenchmarkAllocate1kFlows(b *testing.B) {
	n, ds := fleetDemands()
	var alloc DenseAllocation
	if err := n.AllocateDense(&alloc, ds); err != nil {
		b.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := n.AllocateDense(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}); avg != 0 {
		b.Fatalf("AllocateDense allocated %.1f times per call, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.AllocateDense(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocate1kFlowsPerFlow is the same demand set and entry
// point through the naive one-class-per-flow path (full revalidation
// and a 1000-class water-fill every call, as the pre-aggregation
// allocator did) — the baseline the class aggregation's ≥5x
// acceptance criterion is measured against.
func BenchmarkAllocate1kFlowsPerFlow(b *testing.B) {
	n, ds := fleetDemands()
	n.SetClassAggregation(false)
	var alloc DenseAllocation
	if err := n.AllocateDense(&alloc, ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.AllocateDense(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}
}
