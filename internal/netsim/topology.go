package netsim

import (
	"fmt"
	"math"
	"sort"
)

// Topology is a named graph of nodes connected by capacity/latency
// edges, with shortest-latency routing. It builds the Resource set and
// per-flow paths for Network.Allocate, so experiments can express
// multi-site layouts (the paper's Figure 3 dumbbell, cross-traffic
// scenarios) instead of a single hardcoded path.
type Topology struct {
	nodes map[string]bool
	edges map[string]*edge // by edge ID
	adj   map[string][]*edge
}

type edge struct {
	id       string
	a, b     string
	capacity float64
	latency  float64 // one-way, seconds
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes: make(map[string]bool),
		edges: make(map[string]*edge),
		adj:   make(map[string][]*edge),
	}
}

// AddNode registers a node. Adding an existing node is a no-op.
func (t *Topology) AddNode(name string) {
	if name == "" {
		panic("netsim: empty node name")
	}
	t.nodes[name] = true
}

// AddLink connects two existing nodes with a bidirectional link of the
// given capacity (bits/s) and one-way latency (seconds). The edge ID
// must be unique. It panics on unknown nodes or bad parameters —
// topology construction errors are programming errors.
func (t *Topology) AddLink(id, a, b string, capacity, latency float64) {
	if id == "" {
		panic("netsim: empty link ID")
	}
	if _, dup := t.edges[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", id))
	}
	if !t.nodes[a] || !t.nodes[b] {
		panic(fmt.Sprintf("netsim: link %q references unknown node (%q, %q)", id, a, b))
	}
	if capacity <= 0 || latency < 0 {
		panic(fmt.Sprintf("netsim: link %q bad parameters cap=%v lat=%v", id, capacity, latency))
	}
	e := &edge{id: id, a: a, b: b, capacity: capacity, latency: latency}
	t.edges[id] = e
	t.adj[a] = append(t.adj[a], e)
	t.adj[b] = append(t.adj[b], e)
}

// Nodes returns the sorted node names.
func (t *Topology) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resources returns one Link resource per edge, for Network construction.
func (t *Topology) Resources() []Resource {
	ids := make([]string, 0, len(t.edges))
	for id := range t.edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Resource, 0, len(ids))
	for _, id := range ids {
		e := t.edges[id]
		out = append(out, Resource{ID: e.id, Kind: Link, Capacity: e.capacity})
	}
	return out
}

// Route returns the minimum-latency path between two nodes as edge IDs
// plus the path's round-trip time (2× the summed one-way latencies).
// It returns an error when either node is unknown or no path exists.
func (t *Topology) Route(from, to string) (links []string, rtt float64, err error) {
	if !t.nodes[from] {
		return nil, 0, fmt.Errorf("netsim: unknown node %q", from)
	}
	if !t.nodes[to] {
		return nil, 0, fmt.Errorf("netsim: unknown node %q", to)
	}
	if from == to {
		return nil, 0, nil
	}
	// Dijkstra over latency; topologies are small (tens of nodes), so
	// a linear-scan priority selection is fine.
	dist := map[string]float64{from: 0}
	prevEdge := map[string]*edge{}
	visited := map[string]bool{}
	for {
		cur, best := "", math.Inf(1)
		for n, d := range dist {
			if !visited[n] && d < best {
				cur, best = n, d
			}
		}
		if cur == "" {
			break
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, e := range t.adj[cur] {
			next := e.b
			if next == cur {
				next = e.a
			}
			if nd := best + e.latency; nd < distOr(dist, next) {
				dist[next] = nd
				prevEdge[next] = e
			}
		}
	}
	if _, ok := dist[to]; !ok {
		return nil, 0, fmt.Errorf("netsim: no path from %q to %q", from, to)
	}
	// Walk back.
	for n := to; n != from; {
		e := prevEdge[n]
		links = append(links, e.id)
		if e.a == n {
			n = e.b
		} else {
			n = e.a
		}
	}
	// Reverse into from→to order.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return links, 2 * dist[to], nil
}

func distOr(m map[string]float64, k string) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return math.Inf(1)
}

// BuildNetwork constructs a Network containing every edge as a Link
// resource.
func (t *Topology) BuildNetwork() *Network {
	n := New()
	for _, r := range t.Resources() {
		n.AddResource(r)
	}
	return n
}

// Dumbbell returns the paper's Figure 3 topology: sender-side hosts and
// receiver-side hosts on fast access links joined by one bottleneck
// link, plus the route helper outputs for a transfer between the first
// host pair.
//
//	senders → [access 1G] → switchA —[bottleneck]— switchB → receivers
func Dumbbell(hosts int, accessCap, bottleneckCap, bottleneckLatency float64) *Topology {
	if hosts < 1 {
		panic("netsim: dumbbell needs at least one host pair")
	}
	t := NewTopology()
	t.AddNode("switchA")
	t.AddNode("switchB")
	t.AddLink("bottleneck", "switchA", "switchB", bottleneckCap, bottleneckLatency)
	for i := 0; i < hosts; i++ {
		src := fmt.Sprintf("src%d", i)
		dst := fmt.Sprintf("dst%d", i)
		t.AddNode(src)
		t.AddNode(dst)
		t.AddLink("access-"+src, src, "switchA", accessCap, 0.0005)
		t.AddLink("access-"+dst, dst, "switchB", accessCap, 0.0005)
	}
	return t
}
