package netsim

import (
	"fmt"
	"math"
	"sort"
)

// Topology is a named graph of nodes connected by capacity/latency
// edges, with shortest-latency routing. It builds the Resource set and
// per-flow paths for Network.Allocate, so experiments can express
// multi-site layouts (the paper's Figure 3 dumbbell, cross-traffic
// scenarios) instead of a single hardcoded path.
type Topology struct {
	nodes map[string]bool
	edges map[string]*edge // by edge ID
	adj   map[string][]*edge
}

type edge struct {
	id       string
	a, b     string
	capacity float64
	latency  float64 // one-way, seconds
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes: make(map[string]bool),
		edges: make(map[string]*edge),
		adj:   make(map[string][]*edge),
	}
}

// AddNode registers a node. Adding an existing node is a no-op.
func (t *Topology) AddNode(name string) {
	if name == "" {
		panic("netsim: empty node name")
	}
	t.nodes[name] = true
}

// AddLink connects two existing nodes with a bidirectional link of the
// given capacity (bits/s) and one-way latency (seconds). The edge ID
// must be unique. It panics on unknown nodes or bad parameters —
// topology construction errors are programming errors.
func (t *Topology) AddLink(id, a, b string, capacity, latency float64) {
	if id == "" {
		panic("netsim: empty link ID")
	}
	if _, dup := t.edges[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate link %q", id))
	}
	if !t.nodes[a] || !t.nodes[b] {
		panic(fmt.Sprintf("netsim: link %q references unknown node (%q, %q)", id, a, b))
	}
	if capacity <= 0 || latency < 0 {
		panic(fmt.Sprintf("netsim: link %q bad parameters cap=%v lat=%v", id, capacity, latency))
	}
	e := &edge{id: id, a: a, b: b, capacity: capacity, latency: latency}
	t.edges[id] = e
	t.adj[a] = append(t.adj[a], e)
	t.adj[b] = append(t.adj[b], e)
}

// Nodes returns the sorted node names.
func (t *Topology) Nodes() []string {
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resources returns one Link resource per edge, for Network construction.
func (t *Topology) Resources() []Resource {
	ids := make([]string, 0, len(t.edges))
	for id := range t.edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Resource, 0, len(ids))
	for _, id := range ids {
		e := t.edges[id]
		out = append(out, Resource{ID: e.id, Kind: Link, Capacity: e.capacity})
	}
	return out
}

// Route returns the minimum-latency path between two nodes as edge IDs
// plus the path's round-trip time (2× the summed one-way latencies).
// It returns an error when either node is unknown or no path exists.
func (t *Topology) Route(from, to string) (links []string, rtt float64, err error) {
	if !t.nodes[from] {
		return nil, 0, fmt.Errorf("netsim: unknown node %q", from)
	}
	if !t.nodes[to] {
		return nil, 0, fmt.Errorf("netsim: unknown node %q", to)
	}
	if from == to {
		return nil, 0, nil
	}
	// Dijkstra over latency; topologies are small (tens of nodes), so
	// a linear-scan priority selection is fine. Equal-latency candidates
	// tie-break on node name so the chosen route is a pure function of
	// the topology — parallel equal-latency paths must route (and
	// therefore shard) identically on every run.
	dist := map[string]float64{from: 0}
	prevEdge := map[string]*edge{}
	visited := map[string]bool{}
	for {
		cur, best := "", math.Inf(1)
		for n, d := range dist {
			if visited[n] {
				continue
			}
			if d < best || (d == best && (cur == "" || n < cur)) {
				cur, best = n, d
			}
		}
		if cur == "" {
			break
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for _, e := range t.adj[cur] {
			next := e.b
			if next == cur {
				next = e.a
			}
			if nd := best + e.latency; nd < distOr(dist, next) {
				dist[next] = nd
				prevEdge[next] = e
			}
		}
	}
	if _, ok := dist[to]; !ok {
		return nil, 0, fmt.Errorf("netsim: no path from %q to %q", from, to)
	}
	// Walk back.
	for n := to; n != from; {
		e := prevEdge[n]
		links = append(links, e.id)
		if e.a == n {
			n = e.b
		} else {
			n = e.a
		}
	}
	// Reverse into from→to order.
	for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
		links[i], links[j] = links[j], links[i]
	}
	return links, 2 * dist[to], nil
}

// RouteVia returns the minimum-latency path from `from` to `to` that
// traverses the named link, as edge IDs plus the path round-trip time.
// Both orientations of the pinned link are considered; the cheaper one
// wins, ties preferring the link's declared a→b orientation. A
// candidate whose approach or departure legs already cross the pinned
// link (a non-simple path) is discarded. It returns an error for
// unknown nodes or links, or when no simple path through the link
// exists.
func (t *Topology) RouteVia(from, to, via string) (links []string, rtt float64, err error) {
	e, ok := t.edges[via]
	if !ok {
		return nil, 0, fmt.Errorf("netsim: unknown link %q", via)
	}
	bestLinks, bestRTT := []string(nil), math.Inf(1)
	for _, orient := range [2][2]string{{e.a, e.b}, {e.b, e.a}} {
		head, tail := orient[0], orient[1]
		l1, r1, err1 := t.Route(from, head)
		if err1 != nil {
			if !t.nodes[from] {
				return nil, 0, err1
			}
			continue
		}
		l2, r2, err2 := t.Route(tail, to)
		if err2 != nil {
			if !t.nodes[to] {
				return nil, 0, err2
			}
			continue
		}
		simple := true
		for _, id := range l1 {
			if id == via {
				simple = false
			}
		}
		for _, id := range l2 {
			if id == via {
				simple = false
			}
		}
		if !simple {
			continue
		}
		if total := r1 + 2*e.latency + r2; total < bestRTT {
			bestRTT = total
			bestLinks = make([]string, 0, len(l1)+1+len(l2))
			bestLinks = append(bestLinks, l1...)
			bestLinks = append(bestLinks, via)
			bestLinks = append(bestLinks, l2...)
		}
	}
	if bestLinks == nil {
		return nil, 0, fmt.Errorf("netsim: no simple path from %q to %q via link %q", from, to, via)
	}
	return bestLinks, bestRTT, nil
}

func distOr(m map[string]float64, k string) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return math.Inf(1)
}

// BuildNetwork constructs a Network containing every edge as a Link
// resource.
func (t *Topology) BuildNetwork() *Network {
	n := New()
	for _, r := range t.Resources() {
		n.AddResource(r)
	}
	return n
}

// Dumbbell returns the paper's Figure 3 topology: sender-side hosts and
// receiver-side hosts on fast access links joined by one bottleneck
// link, plus the route helper outputs for a transfer between the first
// host pair.
//
//	senders → [access 1G] → switchA —[bottleneck]— switchB → receivers
func Dumbbell(hosts int, accessCap, bottleneckCap, bottleneckLatency float64) *Topology {
	if hosts < 1 {
		panic("netsim: dumbbell needs at least one host pair")
	}
	t := NewTopology()
	t.AddNode("switchA")
	t.AddNode("switchB")
	t.AddLink("bottleneck", "switchA", "switchB", bottleneckCap, bottleneckLatency)
	for i := 0; i < hosts; i++ {
		src := fmt.Sprintf("src%d", i)
		dst := fmt.Sprintf("dst%d", i)
		t.AddNode(src)
		t.AddNode(dst)
		t.AddLink("access-"+src, src, "switchA", accessCap, 0.0005)
		t.AddLink("access-"+dst, dst, "switchB", accessCap, 0.0005)
	}
	return t
}
