// Package netsim implements the fluid network model underlying every
// simulated testbed: a set of capacity-constrained resources (network
// links, NICs, storage servers, host CPUs) shared by TCP-like flows.
//
// Two mechanisms give the model its fidelity to the paper's testbeds:
//
//  1. Max-min fair allocation. The paper's footnote 1 observes that
//     concurrent TCP streams with the same RTT obtain near-identical
//     throughput under the common congestion-control variants; the
//     progressive-filling (water-filling) algorithm computes exactly
//     that equilibrium, honouring per-flow caps (per-process I/O
//     limits) and every shared resource along each flow's path.
//
//  2. Mathis-model loss. At a saturated link, TCP's steady-state loss
//     rate follows p ≈ (MSS·√1.5 / (RTT·r))² for per-flow rate r, so
//     halving the per-flow share quadruples the loss rate — the
//     quadratic growth of packet loss with concurrency shown in the
//     paper's Figure 4.
//
// The model is stateless in its observable behaviour: Allocate maps a
// set of flow demands to rates and loss estimates, and the same inputs
// always produce the same outputs. Internally the Network owns a
// scratch arena of integer-indexed buffers reused across calls, so the
// steady-state allocation path performs no heap allocations; a Network
// is therefore not safe for concurrent use. Time dynamics (slow-start
// ramping, measurement noise, task arrival/departure) live in package
// testbed.
package netsim

import (
	"fmt"
	"math"
	"sort"
)

// ResourceKind classifies a capacity constraint. Only Link resources
// produce packet loss; the others merely cap throughput (the paper's
// "sender-limited" case where loss stays zero, §3.1).
type ResourceKind int

const (
	// Link is a shared network link with an RTT and a loss response.
	Link ResourceKind = iota
	// NIC is a network interface card at an end host.
	NIC
	// Storage is a disk array or parallel file system server.
	Storage
	// CPU is end-host processing capacity.
	CPU
)

// String returns the kind's name.
func (k ResourceKind) String() string {
	switch k {
	case Link:
		return "link"
	case NIC:
		return "nic"
	case Storage:
		return "storage"
	case CPU:
		return "cpu"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource is a single capacity constraint, in bits per second.
type Resource struct {
	ID       string
	Kind     ResourceKind
	Capacity float64 // bits/s
}

// Demand describes one flow (one TCP connection) requesting bandwidth.
type Demand struct {
	// FlowID identifies the flow in the returned Allocation.
	FlowID string
	// Resources lists the IDs of every resource the flow traverses.
	Resources []string
	// Cap is the flow's intrinsic rate limit in bits/s (per-process
	// I/O throttle divided across the file's streams, TCP window
	// limit, …). Use math.Inf(1) or a huge value for "unlimited".
	Cap float64
	// RTT is the flow's end-to-end round-trip time in seconds, used by
	// the loss model. Must be positive for flows crossing Link
	// resources.
	RTT float64
	// Weight is the number of identical flows this demand represents
	// (a task's n×p connections share one demand). Zero means 1. The
	// returned Rate and Loss are per individual flow.
	Weight int
}

// weight returns the effective flow multiplicity.
func (d *Demand) weight() float64 {
	if d.Weight <= 0 {
		return 1
	}
	return float64(d.Weight)
}

// Allocation is the result of a max-min computation.
type Allocation struct {
	// Rate maps FlowID to the allocated rate in bits/s.
	Rate map[string]float64
	// Loss maps FlowID to the estimated packet-loss fraction in [0,1].
	Loss map[string]float64
	// Saturated lists the IDs of resources whose capacity is fully
	// consumed, in sorted order.
	Saturated []string
}

// LossModel parameterises the Mathis loss response at saturated links.
type LossModel struct {
	// MSSBits is the TCP maximum segment size in bits (default 12000,
	// i.e. 1500 bytes).
	MSSBits float64
	// Scale multiplies the Mathis loss estimate; it absorbs constants
	// (queue behaviour, AIMD variant). Default 2.
	Scale float64
	// Base is the floor loss rate applied to every flow crossing a
	// Link, saturated or not (line noise). Default 1e-4.
	Base float64
	// Max clamps the loss estimate. Default 0.2.
	Max float64
}

// DefaultLossModel returns the loss parameters used by all testbeds:
// the equilibrium of loss-based congestion control (Reno/Cubic/HSTCP),
// whose fairness and loss response the paper's evaluation assumes.
func DefaultLossModel() LossModel {
	return LossModel{MSSBits: 12000, Scale: 2, Base: 1e-4, Max: 0.2}
}

// BBRLossModel returns loss parameters approximating BBR (the paper's
// §6 future work): a model-based controller probes the bottleneck
// bandwidth instead of filling queues until drop, so packet loss at a
// saturated link stays near the floor rather than growing with the
// flow count. Bandwidth sharing remains near max-min for equal-RTT
// flows, which BBRv2 approximates.
func BBRLossModel() LossModel {
	return LossModel{MSSBits: 12000, Scale: 0.15, Base: 1e-4, Max: 0.02}
}

// scratch is the Network-owned arena of reusable buffers for
// Allocate/waterFill. Buffers indexed by resource have length
// len(resList); buffers indexed by demand are resized per call. The
// arena makes the steady-state allocation path allocation-free at the
// cost of making Network unsafe for concurrent use.
type scratch struct {
	// Per-demand buffers.
	rates  []float64
	frozen []bool
	// resIdx holds every demand's resource indices flattened;
	// demand i's indices are resIdx[offsets[i]:offsets[i+1]].
	resIdx  []int
	offsets []int

	// Per-resource buffers.
	remaining []float64
	weight    []float64
	exhausted []bool
	used      []float64
	sat       []bool
	fairShare []float64

	// Validation set, cleared on every call.
	seen map[string]bool
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// Network is a set of resources plus a loss model.
type Network struct {
	index   map[string]int // resource ID → index into resList
	resList []Resource
	loss    LossModel
	scr     scratch
}

// New returns an empty network with the default loss model.
func New() *Network {
	return &Network{
		index: make(map[string]int),
		loss:  DefaultLossModel(),
		scr:   scratch{seen: make(map[string]bool)},
	}
}

// SetLossModel replaces the loss model.
func (n *Network) SetLossModel(m LossModel) { n.loss = m }

// LossModel returns the current loss model.
func (n *Network) LossModel() LossModel { return n.loss }

// AddResource registers a resource. It panics on duplicate IDs or
// non-positive capacity, both of which are programming errors in
// testbed construction.
func (n *Network) AddResource(r Resource) {
	if r.ID == "" {
		panic("netsim: resource with empty ID")
	}
	if r.Capacity <= 0 {
		panic(fmt.Sprintf("netsim: resource %q has non-positive capacity %v", r.ID, r.Capacity))
	}
	if _, dup := n.index[r.ID]; dup {
		panic(fmt.Sprintf("netsim: duplicate resource %q", r.ID))
	}
	n.index[r.ID] = len(n.resList)
	n.resList = append(n.resList, r)
}

// SetCapacity adjusts a resource's capacity (used by testbeds to model
// contention-dependent storage capacity). It panics if the resource
// does not exist or capacity is not positive.
func (n *Network) SetCapacity(id string, capacity float64) {
	i, ok := n.index[id]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown resource %q", id))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: resource %q capacity %v must be positive", id, capacity))
	}
	n.resList[i].Capacity = capacity
}

// Resource returns a copy of the resource with the given ID.
func (n *Network) Resource(id string) (Resource, bool) {
	i, ok := n.index[id]
	if !ok {
		return Resource{}, false
	}
	return n.resList[i], true
}

// Allocate computes the max-min fair allocation for the given demands
// and estimates per-flow loss. It returns an error if any demand
// references an unknown resource, duplicates a FlowID, or has a
// non-positive cap.
func (n *Network) Allocate(demands []Demand) (*Allocation, error) {
	alloc := &Allocation{
		Rate: make(map[string]float64, len(demands)),
		Loss: make(map[string]float64, len(demands)),
	}
	if err := n.AllocateInto(alloc, demands); err != nil {
		return nil, err
	}
	return alloc, nil
}

// AllocateInto is Allocate writing its result into a caller-owned
// Allocation whose maps and slice are reused across calls, so the
// steady-state path allocates nothing. The result is valid until the
// next AllocateInto with the same receiver. A nil-map Allocation is
// initialised on first use.
func (n *Network) AllocateInto(alloc *Allocation, demands []Demand) error {
	if alloc.Rate == nil {
		alloc.Rate = make(map[string]float64, len(demands))
	} else {
		clear(alloc.Rate)
	}
	if alloc.Loss == nil {
		alloc.Loss = make(map[string]float64, len(demands))
	} else {
		clear(alloc.Loss)
	}
	alloc.Saturated = alloc.Saturated[:0]
	if len(demands) == 0 {
		return nil
	}

	// Validate and translate resource IDs to indices into the flattened
	// scratch index buffer.
	s := &n.scr
	clear(s.seen)
	s.resIdx = s.resIdx[:0]
	s.offsets = s.offsets[:0]
	if cap(s.offsets) < len(demands)+1 {
		s.offsets = make([]int, 0, len(demands)+1)
	}
	s.offsets = append(s.offsets, 0)
	for i := range demands {
		d := &demands[i]
		if d.FlowID == "" {
			return fmt.Errorf("netsim: demand %d has empty FlowID", i)
		}
		if s.seen[d.FlowID] {
			return fmt.Errorf("netsim: duplicate FlowID %q", d.FlowID)
		}
		s.seen[d.FlowID] = true
		if d.Cap <= 0 {
			return fmt.Errorf("netsim: flow %q has non-positive cap %v", d.FlowID, d.Cap)
		}
		if d.Weight < 0 {
			return fmt.Errorf("netsim: flow %q has negative weight %d", d.FlowID, d.Weight)
		}
		for _, rid := range d.Resources {
			ri, ok := n.index[rid]
			if !ok {
				return fmt.Errorf("netsim: flow %q references unknown resource %q", d.FlowID, rid)
			}
			s.resIdx = append(s.resIdx, ri)
		}
		s.offsets = append(s.offsets, len(s.resIdx))
	}

	rates := n.waterFill(demands)
	for i := range demands {
		alloc.Rate[demands[i].FlowID] = rates[i]
	}

	// Determine saturated resources from the final allocation.
	nr := len(n.resList)
	s.used = growFloats(s.used, nr)
	for i := range demands {
		w := demands[i].weight()
		for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
			s.used[ri] += rates[i] * w
		}
	}
	const satTol = 1e-6
	s.sat = growBools(s.sat, nr)
	for ri, u := range s.used {
		if u >= n.resList[ri].Capacity*(1-satTol) {
			s.sat[ri] = true
			alloc.Saturated = append(alloc.Saturated, n.resList[ri].ID)
		}
	}
	sort.Strings(alloc.Saturated)

	// Per saturated link, the fair share is the largest per-flow rate
	// among the flows crossing it: the rate the link's own congestion
	// feedback imposes on flows it actually limits.
	s.fairShare = growFloats(s.fairShare, nr)
	for i := range demands {
		for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
			if s.sat[ri] && rates[i] > s.fairShare[ri] {
				s.fairShare[ri] = rates[i]
			}
		}
	}

	// Loss: flows pushing a saturated Link at its fair share experience
	// Mathis-model loss for their allocated rate; flows that are
	// rate-limited elsewhere (rate strictly below the link fair share)
	// do not fill the queue and see only the base loss floor, as do all
	// flows on unsaturated links.
	const fsTol = 1e-6
	for i := range demands {
		d := &demands[i]
		loss := 0.0
		crossesLink := false
		for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
			r := &n.resList[ri]
			if r.Kind != Link {
				continue
			}
			crossesLink = true
			if !s.sat[ri] {
				continue
			}
			if rates[i] < s.fairShare[ri]*(1-fsTol) {
				// Cap-limited below the link's fair share: only base
				// loss from this link.
				continue
			}
			if l := n.mathisLoss(d.RTT, rates[i]); l > loss {
				loss = l
			}
		}
		if crossesLink {
			loss += n.loss.Base
		}
		if loss > n.loss.Max {
			loss = n.loss.Max
		}
		alloc.Loss[d.FlowID] = loss
	}
	return nil
}

// mathisLoss inverts the Mathis throughput relation
// r = MSS/RTT · √(1.5/p) to estimate the equilibrium loss probability a
// TCP flow sustains while obtaining rate r across a saturated link.
func (n *Network) mathisLoss(rtt, rate float64) float64 {
	if rtt <= 0 || rate <= 0 {
		return n.loss.Max
	}
	x := n.loss.Scale * n.loss.MSSBits * math.Sqrt(1.5) / (rtt * rate)
	p := x * x
	if p > n.loss.Max {
		p = n.loss.Max
	}
	return p
}

// waterFill runs progressive filling: raise all unfrozen flows' rates
// in lockstep until a resource saturates or a flow hits its cap; freeze
// the affected flows; repeat. It requires the scratch resIdx/offsets
// buffers to be populated for demands, and returns a scratch-owned rate
// slice valid until the next call.
func (n *Network) waterFill(demands []Demand) []float64 {
	nf := len(demands)
	nr := len(n.resList)
	s := &n.scr
	s.rates = growFloats(s.rates, nf)
	s.frozen = growBools(s.frozen, nf)
	s.remaining = growFloats(s.remaining, nr)
	s.weight = growFloats(s.weight, nr)
	s.exhausted = growBools(s.exhausted, nr)
	for ri := range n.resList {
		s.remaining[ri] = n.resList[ri].Capacity
	}

	for iter := 0; iter < nf+nr+1; iter++ {
		// Active weight per resource.
		for ri := range s.weight {
			s.weight[ri] = 0
		}
		for i := range demands {
			if s.frozen[i] {
				continue
			}
			w := demands[i].weight()
			for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
				s.weight[ri] += w
			}
		}
		// Smallest headroom increment across resources and caps.
		inc := math.Inf(1)
		for ri, w := range s.weight {
			if w == 0 {
				continue
			}
			if h := s.remaining[ri] / w; h < inc {
				inc = h
			}
		}
		anyActive := false
		for i := range demands {
			if s.frozen[i] {
				continue
			}
			anyActive = true
			if h := demands[i].Cap - s.rates[i]; h < inc {
				inc = h
			}
		}
		if !anyActive {
			break
		}
		if inc < 0 {
			inc = 0
		}
		// Raise all active flows by inc and charge the resources.
		for i := range demands {
			if s.frozen[i] {
				continue
			}
			s.rates[i] += inc
			w := demands[i].weight()
			for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
				s.remaining[ri] -= inc * w
			}
		}
		// Freeze flows that hit their cap or traverse an exhausted
		// resource.
		const tol = 1e-9
		for ri, w := range s.weight {
			s.exhausted[ri] = w > 0 && s.remaining[ri] <= tol*n.resList[ri].Capacity
		}
		progressed := false
		for i := range demands {
			if s.frozen[i] {
				continue
			}
			if s.rates[i] >= demands[i].Cap-tol*demands[i].Cap {
				s.frozen[i] = true
				progressed = true
				continue
			}
			for _, ri := range s.resIdx[s.offsets[i]:s.offsets[i+1]] {
				if s.exhausted[ri] {
					s.frozen[i] = true
					progressed = true
					break
				}
			}
		}
		if !progressed && inc == 0 {
			// Nothing can advance: freeze everything still active to
			// guarantee termination (degenerate zero-headroom state).
			for i := range s.frozen {
				s.frozen[i] = true
			}
		}
	}
	return s.rates
}
