// Package netsim implements the fluid network model underlying every
// simulated testbed: a set of capacity-constrained resources (network
// links, NICs, storage servers, host CPUs) shared by TCP-like flows.
//
// Two mechanisms give the model its fidelity to the paper's testbeds:
//
//  1. Max-min fair allocation. The paper's footnote 1 observes that
//     concurrent TCP streams with the same RTT obtain near-identical
//     throughput under the common congestion-control variants; the
//     progressive-filling (water-filling) algorithm computes exactly
//     that equilibrium, honouring per-flow caps (per-process I/O
//     limits) and every shared resource along each flow's path.
//
//  2. Mathis-model loss. At a saturated link, TCP's steady-state loss
//     rate follows p ≈ (MSS·√1.5 / (RTT·r))² for per-flow rate r, so
//     halving the per-flow share quadruples the loss rate — the
//     quadratic growth of packet loss with concurrency shown in the
//     paper's Figure 4.
//
// Allocation runs over flow *classes*, not individual flows: flows
// with an identical (resource path, cap, RTT) signature receive
// identical max-min shares and identical Mathis loss, so water-filling
// raises one rate per class weighted by the class's total flow count —
// O(distinct classes × resources) instead of O(flows × resources) —
// and the class results expand back to per-flow rates only at the
// boundary. Every arithmetic step is independent of how flows are
// grouped (weights are integer counts, so weight sums are exact, and
// per-resource charging happens once per fill level), which makes the
// aggregated allocation bit-identical to the degenerate one-flow-per-
// class computation; SetClassAggregation(false) forces that per-flow
// path for A/B verification.
//
// The model is stateless in its observable behaviour: Allocate maps a
// set of flow demands to rates and loss estimates, and the same inputs
// always produce the same outputs. Internally the Network owns a
// scratch arena of integer-indexed buffers reused across calls — and a
// partition cache that survives across calls, revalidating and
// reassigning only the demands whose signature changed since the
// previous call (a join appends, a leave truncates, a retune adjusts
// one class's weight in place) — so the steady-state allocation path
// performs no heap allocations and no per-flow map operations; a
// Network is therefore not safe for concurrent use. Time dynamics
// (slow-start ramping, measurement noise, task arrival/departure) live
// in package testbed.
package netsim

import (
	"fmt"
	"math"
	"sort"
)

// ResourceKind classifies a capacity constraint. Only Link resources
// produce packet loss; the others merely cap throughput (the paper's
// "sender-limited" case where loss stays zero, §3.1).
type ResourceKind int

const (
	// Link is a shared network link with an RTT and a loss response.
	Link ResourceKind = iota
	// NIC is a network interface card at an end host.
	NIC
	// Storage is a disk array or parallel file system server.
	Storage
	// CPU is end-host processing capacity.
	CPU
)

// String returns the kind's name.
func (k ResourceKind) String() string {
	switch k {
	case Link:
		return "link"
	case NIC:
		return "nic"
	case Storage:
		return "storage"
	case CPU:
		return "cpu"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource is a single capacity constraint, in bits per second.
type Resource struct {
	ID       string
	Kind     ResourceKind
	Capacity float64 // bits/s
}

// Demand describes one flow (one TCP connection) requesting bandwidth.
type Demand struct {
	// FlowID identifies the flow in the returned Allocation.
	FlowID string
	// Resources lists the IDs of every resource the flow traverses.
	Resources []string
	// Cap is the flow's intrinsic rate limit in bits/s (per-process
	// I/O throttle divided across the file's streams, TCP window
	// limit, …). Use math.Inf(1) or a huge value for "unlimited".
	Cap float64
	// RTT is the flow's end-to-end round-trip time in seconds, used by
	// the loss model. Must be positive for flows crossing Link
	// resources.
	RTT float64
	// Weight is the number of identical flows this demand represents
	// (a task's n×p connections share one demand). Zero means 1. The
	// returned Rate and Loss are per individual flow.
	Weight int
}

// weight returns the effective flow multiplicity.
func (d *Demand) weight() float64 {
	if d.Weight <= 0 {
		return 1
	}
	return float64(d.Weight)
}

// Allocation is the result of a max-min computation.
type Allocation struct {
	// Rate maps FlowID to the allocated rate in bits/s.
	Rate map[string]float64
	// Loss maps FlowID to the estimated packet-loss fraction in [0,1].
	Loss map[string]float64
	// Saturated lists the IDs of resources whose capacity is fully
	// consumed, in sorted order.
	Saturated []string
}

// DenseAllocation is the slice-indexed form of Allocation: Rate[i] and
// Loss[i] correspond to the i-th demand of the AllocateDense call that
// produced it. It skips the map materialisation entirely, which
// matters at fleet scale where writing thousands of map entries per
// step would dwarf the class water-fill itself.
type DenseAllocation struct {
	Rate      []float64
	Loss      []float64
	Saturated []string
}

// LossModel parameterises the Mathis loss response at saturated links.
type LossModel struct {
	// MSSBits is the TCP maximum segment size in bits (default 12000,
	// i.e. 1500 bytes).
	MSSBits float64
	// Scale multiplies the Mathis loss estimate; it absorbs constants
	// (queue behaviour, AIMD variant). Default 2.
	Scale float64
	// Base is the floor loss rate applied to every flow crossing a
	// Link, saturated or not (line noise). Default 1e-4.
	Base float64
	// Max clamps the loss estimate. Default 0.2.
	Max float64
}

// DefaultLossModel returns the loss parameters used by all testbeds:
// the equilibrium of loss-based congestion control (Reno/Cubic/HSTCP),
// whose fairness and loss response the paper's evaluation assumes.
func DefaultLossModel() LossModel {
	return LossModel{MSSBits: 12000, Scale: 2, Base: 1e-4, Max: 0.2}
}

// BBRLossModel returns loss parameters approximating BBR (the paper's
// §6 future work): a model-based controller probes the bottleneck
// bandwidth instead of filling queues until drop, so packet loss at a
// saturated link stays near the floor rather than growing with the
// flow count. Bandwidth sharing remains near max-min for equal-RTT
// flows, which BBRv2 approximates.
func BBRLossModel() LossModel {
	return LossModel{MSSBits: 12000, Scale: 0.15, Base: 1e-4, Max: 0.02}
}

// scratch is the Network-owned arena of reusable buffers for the
// allocation path. Buffers indexed by resource have length
// len(resList); buffers indexed by demand or class are resized per
// call. The arena makes the steady-state allocation path
// allocation-free at the cost of making Network unsafe for concurrent
// use.
type scratch struct {
	// Per-demand buffers.
	// resIdx holds every demand's resource indices flattened;
	// demand i's indices are resIdx[offsets[i]:offsets[i+1]].
	// Rebuilt only when the demand list's shape (IDs or paths)
	// changes; retunes reuse the previous call's translation.
	resIdx  []int
	offsets []int
	// classOf maps demand index → class index.
	classOf []int

	// Per-class buffers (parallel slices; lengths track clsCap). A
	// class is one distinct (resource path, cap, RTT) signature;
	// clsRes/clsOff hold each class's own copy of its path span, so
	// cached classes stay valid after the demand list they were
	// discovered from changes.
	clsCap   []float64
	clsRTT   []float64
	clsRes   []int
	clsOff   []int
	clsW     []float64 // Σ member weights (exact: weights are integers)
	clsCount []int     // member demand count (0 = stale cached class)
	rates    []float64 // water-fill output, one rate per class
	frozen   []bool
	clsLoss  []float64

	// Class hash table: open addressing, linear probing, power-of-two
	// size. tab holds class index + 1 (0 = empty slot).
	tab     []int32
	tabHash []uint64

	// Partition cache: the previous successful call's demand list. A
	// demand whose (FlowID, path, cap, RTT, weight) tuple matches its
	// previous-call counterpart needs no revalidation, no class
	// lookup, and no weight accounting — its contribution is already
	// in clsW. Only the changed suffix is reprocessed: the departed
	// demands' weights are subtracted (exact, integer-valued) and the
	// new ones added. Classes orphaned by a change stay in the table
	// with zero weight — harmless to the arithmetic — and are swept
	// out when they outnumber the live demand set.
	prevIDs    []string
	prevCaps   []uint64 // math.Float64bits of each demand's Cap
	prevRTTs   []uint64
	prevWI     []int
	prevResStr []string // flattened Resources, indexed by prevOff
	prevOff    []int
	prevN      int
	prevOK     bool

	// Per-resource buffers.
	remaining []float64
	weight    []float64
	exhausted []bool
	used      []float64
	sat       []bool
	fairShare []float64

	// Validation set, cleared on every full-validation call.
	seen map[string]bool
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// grow resizes s to n elements preserving existing content (unlike the
// zeroing grow* helpers above); elements beyond the preserved prefix
// are unspecified and must be overwritten by the caller.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		g := make([]T, n)
		copy(g, s)
		return g
	}
	return s[:n]
}

// resizeFloats resizes without zeroing, for buffers the caller fully
// overwrites.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Network is a set of resources plus a loss model.
type Network struct {
	index    map[string]int // resource ID → index into resList
	resList  []Resource
	loss     LossModel
	scr      scratch
	classOff bool // true forces the per-flow (one class per demand) path
	classes  int  // live class count of the most recent allocation
	// capGen counts capacity changes (SetCapacity calls that alter a
	// resource's capacity; idempotent sets don't count). Allocation
	// itself reads capacities fresh on every call — the partition cache
	// keys on demand signatures only, never on capacities — but callers
	// that memoize whole allocations (the testbed engine) fold this
	// counter into their memo key so a mid-run capacity mutation
	// deterministically invalidates the cached fill.
	capGen uint64
}

// New returns an empty network with the default loss model.
func New() *Network {
	// Presized for the 7-resource end-to-end path every testbed engine
	// builds, so short-lived engines (sweep points, benchmark bodies)
	// construct without incremental growth.
	return &Network{
		index:   make(map[string]int, 8),
		resList: make([]Resource, 0, 8),
		loss:    DefaultLossModel(),
		scr:     scratch{seen: make(map[string]bool, 8)},
	}
}

// SetLossModel replaces the loss model.
func (n *Network) SetLossModel(m LossModel) { n.loss = m }

// LossModel returns the current loss model.
func (n *Network) LossModel() LossModel { return n.loss }

// SetClassAggregation enables or disables flow-class aggregation
// (enabled by default). Disabling forces the degenerate one-class-per-
// flow partition — the naive per-flow water-fill, with full
// revalidation on every call — which produces bit-identical results;
// the transparency tests pin that equivalence.
func (n *Network) SetClassAggregation(enabled bool) {
	n.classOff = !enabled
	n.resetClasses()
}

// ClassAggregation reports whether flow-class aggregation is enabled.
func (n *Network) ClassAggregation() bool { return !n.classOff }

// Classes returns the number of distinct flow classes in the most
// recent allocation (0 before any allocation call).
func (n *Network) Classes() int { return n.classes }

// AddResource registers a resource. It panics on duplicate IDs or
// non-positive capacity, both of which are programming errors in
// testbed construction.
func (n *Network) AddResource(r Resource) {
	if r.ID == "" {
		panic("netsim: resource with empty ID")
	}
	if r.Capacity <= 0 {
		panic(fmt.Sprintf("netsim: resource %q has non-positive capacity %v", r.ID, r.Capacity))
	}
	if _, dup := n.index[r.ID]; dup {
		panic(fmt.Sprintf("netsim: duplicate resource %q", r.ID))
	}
	n.index[r.ID] = len(n.resList)
	n.resList = append(n.resList, r)
}

// SetCapacity adjusts a resource's capacity (used by testbeds to model
// contention-dependent storage capacity). It panics if the resource
// does not exist or capacity is not positive.
func (n *Network) SetCapacity(id string, capacity float64) {
	i, ok := n.index[id]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown resource %q", id))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("netsim: resource %q capacity %v must be positive", id, capacity))
	}
	if n.resList[i].Capacity != capacity {
		n.resList[i].Capacity = capacity
		n.capGen++
	}
}

// CapacityGeneration returns a counter incremented by every
// SetCapacity call that changes a capacity. Two allocations bracketing
// an unchanged counter saw identical capacities, so allocation memos
// keyed on demands plus this counter can never replay a fill across a
// capacity mutation. Idempotent sets don't bump it, so per-tick
// refreshes of unchanged contention capacities keep memos live.
func (n *Network) CapacityGeneration() uint64 { return n.capGen }

// Resource returns a copy of the resource with the given ID.
func (n *Network) Resource(id string) (Resource, bool) {
	i, ok := n.index[id]
	if !ok {
		return Resource{}, false
	}
	return n.resList[i], true
}

// Allocate computes the max-min fair allocation for the given demands
// and estimates per-flow loss. It returns an error if any demand
// references an unknown resource, duplicates a FlowID, or has a
// non-positive cap.
func (n *Network) Allocate(demands []Demand) (*Allocation, error) {
	alloc := &Allocation{
		Rate: make(map[string]float64, len(demands)),
		Loss: make(map[string]float64, len(demands)),
	}
	if err := n.AllocateInto(alloc, demands); err != nil {
		return nil, err
	}
	return alloc, nil
}

// AllocateInto is Allocate writing its result into a caller-owned
// Allocation whose maps and slice are reused across calls, so the
// steady-state path allocates nothing. The result is valid until the
// next AllocateInto with the same receiver. A nil-map Allocation is
// initialised on first use.
func (n *Network) AllocateInto(alloc *Allocation, demands []Demand) error {
	if alloc.Rate == nil {
		alloc.Rate = make(map[string]float64, len(demands))
	} else {
		clear(alloc.Rate)
	}
	if alloc.Loss == nil {
		alloc.Loss = make(map[string]float64, len(demands))
	} else {
		clear(alloc.Loss)
	}
	alloc.Saturated = alloc.Saturated[:0]
	if len(demands) == 0 {
		n.classes = 0
		return nil
	}
	if err := n.allocateCore(demands, &alloc.Saturated); err != nil {
		return err
	}
	s := &n.scr
	for i := range demands {
		c := s.classOf[i]
		alloc.Rate[demands[i].FlowID] = s.rates[c]
		alloc.Loss[demands[i].FlowID] = s.clsLoss[c]
	}
	return nil
}

// AllocateDense is AllocateInto without the per-flow maps: results are
// written positionally, Rate[i]/Loss[i] for demands[i]. This is the
// engine's hot path — expanding class results to per-flow values is
// two float stores per flow instead of two map insertions.
func (n *Network) AllocateDense(d *DenseAllocation, demands []Demand) error {
	d.Saturated = d.Saturated[:0]
	if len(demands) == 0 {
		d.Rate = d.Rate[:0]
		d.Loss = d.Loss[:0]
		n.classes = 0
		return nil
	}
	if err := n.allocateCore(demands, &d.Saturated); err != nil {
		return err
	}
	s := &n.scr
	d.Rate = resizeFloats(d.Rate, len(demands))
	d.Loss = resizeFloats(d.Loss, len(demands))
	for i := range demands {
		c := s.classOf[i]
		d.Rate[i] = s.rates[c]
		d.Loss[i] = s.clsLoss[c]
	}
	return nil
}

// allocateCore validates the demands, partitions them into flow
// classes (reusing the previous call's work for every unchanged
// demand), water-fills over the classes, and leaves per-class rates
// and losses in the scratch arena for the caller to expand. Saturated
// resource IDs are appended to satOut in sorted order.
func (n *Network) allocateCore(demands []Demand, satOut *[]string) error {
	s := &n.scr
	nd := len(demands)

	// Stage 1: longest unchanged prefix against the previous call.
	// Demands in the prefix are already validated, already assigned to
	// their class, and their weight contributions are already in clsW.
	wasOK := s.prevOK && !n.classOff
	s.prevOK = false
	k := 0
	if wasOK {
		maxK := nd
		if s.prevN < maxK {
			maxK = s.prevN
		}
	prefix:
		for k < maxK {
			d := &demands[k]
			if d.FlowID != s.prevIDs[k] ||
				math.Float64bits(d.Cap) != s.prevCaps[k] ||
				math.Float64bits(d.RTT) != s.prevRTTs[k] ||
				d.Weight != s.prevWI[k] {
				break
			}
			span := s.prevResStr[s.prevOff[k]:s.prevOff[k+1]]
			if len(d.Resources) != len(span) {
				break
			}
			for j := range span {
				if d.Resources[j] != span[j] {
					break prefix
				}
			}
			k++
		}
	}

	// Stage 2: validate the changed suffix. A retune (same IDs and
	// paths, only caps/RTTs/weights changed) inherits the previous
	// call's duplicate check and resource translation; any shape
	// change (join, leave, reorder) rebuilds resIdx with full
	// validation.
	retune := wasOK && nd == s.prevN
	if retune {
	suffix:
		for i := k; i < nd; i++ {
			d := &demands[i]
			if d.FlowID != s.prevIDs[i] {
				retune = false
				break
			}
			span := s.prevResStr[s.prevOff[i]:s.prevOff[i+1]]
			if len(d.Resources) != len(span) {
				retune = false
				break
			}
			for j := range span {
				if d.Resources[j] != span[j] {
					retune = false
					break suffix
				}
			}
		}
	}
	if retune {
		for i := k; i < nd; i++ {
			d := &demands[i]
			if d.Cap <= 0 {
				return fmt.Errorf("netsim: flow %q has non-positive cap %v", d.FlowID, d.Cap)
			}
			if d.Weight < 0 {
				return fmt.Errorf("netsim: flow %q has negative weight %d", d.FlowID, d.Weight)
			}
		}
	} else {
		clear(s.seen)
		s.resIdx = s.resIdx[:0]
		s.offsets = s.offsets[:0]
		if cap(s.offsets) < nd+1 {
			s.offsets = make([]int, 0, nd+1)
		}
		s.offsets = append(s.offsets, 0)
		for i := range demands {
			d := &demands[i]
			if d.FlowID == "" {
				return fmt.Errorf("netsim: demand %d has empty FlowID", i)
			}
			if s.seen[d.FlowID] {
				return fmt.Errorf("netsim: duplicate FlowID %q", d.FlowID)
			}
			s.seen[d.FlowID] = true
			if d.Cap <= 0 {
				return fmt.Errorf("netsim: flow %q has non-positive cap %v", d.FlowID, d.Cap)
			}
			if d.Weight < 0 {
				return fmt.Errorf("netsim: flow %q has negative weight %d", d.FlowID, d.Weight)
			}
			for _, rid := range d.Resources {
				ri, ok := n.index[rid]
				if !ok {
					return fmt.Errorf("netsim: flow %q references unknown resource %q", d.FlowID, rid)
				}
				s.resIdx = append(s.resIdx, ri)
			}
			s.offsets = append(s.offsets, len(s.resIdx))
		}
	}

	// Stage 3: partition bookkeeping.
	var nc int
	if n.classOff {
		// Per-flow path: the degenerate one-class-per-demand partition,
		// rebuilt in full every call like the pre-aggregation allocator.
		s.classOf = growInts(s.classOf, nd)
		s.clsCap = growFloats(s.clsCap, nd)
		s.clsRTT = growFloats(s.clsRTT, nd)
		s.clsRes = append(s.clsRes[:0], s.resIdx...)
		s.clsOff = append(s.clsOff[:0], s.offsets...)
		s.clsW = growFloats(s.clsW, nd)
		s.clsCount = growInts(s.clsCount, nd)
		for i := range demands {
			s.classOf[i] = i
			s.clsCap[i] = demands[i].Cap
			s.clsRTT[i] = demands[i].RTT
			s.clsW[i] = demands[i].weight()
			s.clsCount[i] = 1
		}
		nc = nd
	} else {
		// Sweep stale classes once they outnumber the live demand set;
		// the rebuild below then reassigns every demand.
		if len(s.clsCap) > 2*nd+16 {
			n.resetClasses()
			wasOK = false
			k = 0
		}
		n.ensureTable(len(s.clsCap) + (nd - k))
		if wasOK {
			// Subtract the departed/changed demands' contributions
			// before their classOf entries are overwritten. Weights
			// are integer-valued, so subtract-then-add reproduces the
			// from-scratch sums exactly.
			for i := k; i < s.prevN; i++ {
				c := s.classOf[i]
				w := 1.0
				if s.prevWI[i] > 0 {
					w = float64(s.prevWI[i])
				}
				s.clsW[c] -= w
				s.clsCount[c]--
			}
		} else {
			s.clsW = growFloats(s.clsW, len(s.clsCap))
			s.clsCount = growInts(s.clsCount, len(s.clsCap))
			k = 0
		}
		s.classOf = grow(s.classOf, nd)
		for i := k; i < nd; i++ {
			d := &demands[i]
			c := n.classFor(d, i)
			s.classOf[i] = c
			s.clsW[c] += d.weight()
			s.clsCount[c]++
		}
		nc = len(s.clsCap)

		// Stage 4: snapshot the changed suffix for the next call's
		// prefix comparison (the prefix entries are already equal).
		s.prevIDs = grow(s.prevIDs, nd)
		s.prevCaps = grow(s.prevCaps, nd)
		s.prevRTTs = grow(s.prevRTTs, nd)
		s.prevWI = grow(s.prevWI, nd)
		for i := k; i < nd; i++ {
			d := &demands[i]
			s.prevIDs[i] = d.FlowID
			s.prevCaps[i] = math.Float64bits(d.Cap)
			s.prevRTTs[i] = math.Float64bits(d.RTT)
			s.prevWI[i] = d.Weight
		}
		if !retune {
			s.prevResStr = s.prevResStr[:0]
			for i := range demands {
				s.prevResStr = append(s.prevResStr, demands[i].Resources...)
			}
			s.prevOff = append(s.prevOff[:0], s.offsets...)
		}
		s.prevN = nd
		s.prevOK = true
	}

	n.classWaterFill(nc)

	live := 0
	for c := 0; c < nc; c++ {
		if s.clsCount[c] > 0 {
			live++
		}
	}
	n.classes = live

	// Determine saturated resources from the final allocation. Usage is
	// derived from the water-fill's remaining headroom, which was
	// charged once per resource per fill level, so the computation is
	// independent of how flows are grouped into classes.
	nr := len(n.resList)
	s.used = growFloats(s.used, nr)
	for ri := range s.used {
		s.used[ri] = n.resList[ri].Capacity - s.remaining[ri]
	}
	const satTol = 1e-6
	s.sat = growBools(s.sat, nr)
	for ri, u := range s.used {
		if u >= n.resList[ri].Capacity*(1-satTol) {
			s.sat[ri] = true
			*satOut = append(*satOut, n.resList[ri].ID)
		}
	}
	sort.Strings(*satOut)

	// Per saturated link, the fair share is the largest per-flow rate
	// among the flows crossing it: the rate the link's own congestion
	// feedback imposes on flows it actually limits.
	s.fairShare = growFloats(s.fairShare, nr)
	for c := 0; c < nc; c++ {
		if s.clsCount[c] == 0 {
			continue
		}
		for _, ri := range s.clsRes[s.clsOff[c]:s.clsOff[c+1]] {
			if s.sat[ri] && s.rates[c] > s.fairShare[ri] {
				s.fairShare[ri] = s.rates[c]
			}
		}
	}

	// Loss, once per class: flows pushing a saturated Link at its fair
	// share experience Mathis-model loss for their allocated rate;
	// flows that are rate-limited elsewhere (rate strictly below the
	// link fair share) do not fill the queue and see only the base loss
	// floor, as do all flows on unsaturated links.
	const fsTol = 1e-6
	s.clsLoss = growFloats(s.clsLoss, nc)
	for c := 0; c < nc; c++ {
		if s.clsCount[c] == 0 {
			continue
		}
		loss := 0.0
		crossesLink := false
		for _, ri := range s.clsRes[s.clsOff[c]:s.clsOff[c+1]] {
			r := &n.resList[ri]
			if r.Kind != Link {
				continue
			}
			crossesLink = true
			if !s.sat[ri] {
				continue
			}
			if s.rates[c] < s.fairShare[ri]*(1-fsTol) {
				// Cap-limited below the link's fair share: only base
				// loss from this link.
				continue
			}
			if l := n.mathisLoss(s.clsRTT[c], s.rates[c]); l > loss {
				loss = l
			}
		}
		if crossesLink {
			loss += n.loss.Base
		}
		if loss > n.loss.Max {
			loss = n.loss.Max
		}
		s.clsLoss[c] = loss
	}
	return nil
}

// resetClasses drops every cached class and invalidates the partition
// cache, forcing the next allocation to rebuild from scratch.
func (n *Network) resetClasses() {
	s := &n.scr
	s.clsCap = s.clsCap[:0]
	s.clsRTT = s.clsRTT[:0]
	s.clsRes = s.clsRes[:0]
	s.clsOff = s.clsOff[:0]
	s.clsW = s.clsW[:0]
	s.clsCount = s.clsCount[:0]
	for i := range s.tab {
		s.tab[i] = 0
	}
	s.prevOK = false
}

// sigHash hashes one demand signature (path span, cap bits, RTT bits)
// with FNV-1a over 64-bit words.
func sigHash(span []int, capBits, rttBits uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, ri := range span {
		h ^= uint64(ri)
		h *= prime64
	}
	h ^= capBits
	h *= prime64
	h ^= rttBits
	h *= prime64
	return h
}

// ensureTable (re)builds the class hash table when it cannot hold need
// classes at ≤50% load, reinserting the cached classes.
func (n *Network) ensureTable(need int) {
	s := &n.scr
	if len(s.tab) >= 2*(need+1) {
		return
	}
	size := 16
	for size < 4*(need+1) {
		size *= 2
	}
	if cap(s.tab) >= size {
		s.tab = s.tab[:size]
		for i := range s.tab {
			s.tab[i] = 0
		}
		s.tabHash = s.tabHash[:size]
	} else {
		s.tab = make([]int32, size)
		s.tabHash = make([]uint64, size)
	}
	mask := uint64(size - 1)
	for c := range s.clsCap {
		h := sigHash(s.clsRes[s.clsOff[c]:s.clsOff[c+1]], math.Float64bits(s.clsCap[c]), math.Float64bits(s.clsRTT[c]))
		j := h & mask
		for s.tab[j] != 0 {
			j = (j + 1) & mask
		}
		s.tab[j] = int32(c + 1)
		s.tabHash[j] = h
	}
}

// classFor returns the class index for demand i, appending a new class
// when its signature is unseen. The table must have headroom for one
// insertion (ensured by partition stage 3).
func (n *Network) classFor(d *Demand, i int) int {
	s := &n.scr
	span := s.resIdx[s.offsets[i]:s.offsets[i+1]]
	capBits := math.Float64bits(d.Cap)
	rttBits := math.Float64bits(d.RTT)
	h := sigHash(span, capBits, rttBits)
	mask := uint64(len(s.tab) - 1)
	j := h & mask
	for s.tab[j] != 0 {
		if s.tabHash[j] == h {
			c := int(s.tab[j]) - 1
			if math.Float64bits(s.clsCap[c]) == capBits && math.Float64bits(s.clsRTT[c]) == rttBits {
				cspan := s.clsRes[s.clsOff[c]:s.clsOff[c+1]]
				if len(cspan) == len(span) {
					match := true
					for k := range span {
						if cspan[k] != span[k] {
							match = false
							break
						}
					}
					if match {
						return c
					}
				}
			}
		}
		j = (j + 1) & mask
	}
	c := len(s.clsCap)
	s.clsCap = append(s.clsCap, d.Cap)
	s.clsRTT = append(s.clsRTT, d.RTT)
	if len(s.clsOff) == 0 {
		s.clsOff = append(s.clsOff, 0)
	}
	s.clsRes = append(s.clsRes, span...)
	s.clsOff = append(s.clsOff, len(s.clsRes))
	s.clsW = append(s.clsW, 0)
	s.clsCount = append(s.clsCount, 0)
	s.tab[j] = int32(c + 1)
	s.tabHash[j] = h
	return c
}

// classWaterFill runs progressive filling over the nc flow classes:
// raise all unfrozen classes' rates in lockstep until a resource
// saturates or a class hits its cap; freeze the affected classes;
// repeat. Each resource is charged once per fill level with the exact
// integer sum of its active flow weights, so the computation — and
// every float it produces — is identical whether flows arrive as
// aggregated classes or one class each. Stale cached classes (zero
// members) start frozen and contribute nothing. Results land in the
// scratch rates/remaining buffers.
func (n *Network) classWaterFill(nc int) {
	nr := len(n.resList)
	s := &n.scr
	s.rates = growFloats(s.rates, nc)
	s.frozen = growBools(s.frozen, nc)
	for c := 0; c < nc; c++ {
		s.frozen[c] = s.clsCount[c] == 0
	}
	s.remaining = growFloats(s.remaining, nr)
	s.weight = growFloats(s.weight, nr)
	s.exhausted = growBools(s.exhausted, nr)
	for ri := range n.resList {
		s.remaining[ri] = n.resList[ri].Capacity
	}

	for iter := 0; iter < nc+nr+1; iter++ {
		// Active weight per resource.
		for ri := range s.weight {
			s.weight[ri] = 0
		}
		for c := 0; c < nc; c++ {
			if s.frozen[c] {
				continue
			}
			w := s.clsW[c]
			for _, ri := range s.clsRes[s.clsOff[c]:s.clsOff[c+1]] {
				s.weight[ri] += w
			}
		}
		// Smallest headroom increment across resources and caps.
		inc := math.Inf(1)
		for ri, w := range s.weight {
			if w == 0 {
				continue
			}
			if h := s.remaining[ri] / w; h < inc {
				inc = h
			}
		}
		anyActive := false
		for c := 0; c < nc; c++ {
			if s.frozen[c] {
				continue
			}
			anyActive = true
			if h := s.clsCap[c] - s.rates[c]; h < inc {
				inc = h
			}
		}
		if !anyActive {
			break
		}
		if inc < 0 {
			inc = 0
		}
		// Raise all active classes by inc and charge the resources.
		for c := 0; c < nc; c++ {
			if !s.frozen[c] {
				s.rates[c] += inc
			}
		}
		for ri, w := range s.weight {
			if w > 0 {
				s.remaining[ri] -= inc * w
			}
		}
		// Freeze classes that hit their cap or traverse an exhausted
		// resource.
		const tol = 1e-9
		for ri, w := range s.weight {
			s.exhausted[ri] = w > 0 && s.remaining[ri] <= tol*n.resList[ri].Capacity
		}
		progressed := false
		for c := 0; c < nc; c++ {
			if s.frozen[c] {
				continue
			}
			if s.rates[c] >= s.clsCap[c]-tol*s.clsCap[c] {
				s.frozen[c] = true
				progressed = true
				continue
			}
			for _, ri := range s.clsRes[s.clsOff[c]:s.clsOff[c+1]] {
				if s.exhausted[ri] {
					s.frozen[c] = true
					progressed = true
					break
				}
			}
		}
		if !progressed && inc == 0 {
			// Nothing can advance: freeze everything still active to
			// guarantee termination (degenerate zero-headroom state).
			for c := range s.frozen {
				s.frozen[c] = true
			}
		}
	}
}

// mathisLoss inverts the Mathis throughput relation
// r = MSS/RTT · √(1.5/p) to estimate the equilibrium loss probability a
// TCP flow sustains while obtaining rate r across a saturated link.
func (n *Network) mathisLoss(rtt, rate float64) float64 {
	if rtt <= 0 || rate <= 0 {
		return n.loss.Max
	}
	x := n.loss.Scale * n.loss.MSSBits * math.Sqrt(1.5) / (rtt * rate)
	p := x * x
	if p > n.loss.Max {
		p = n.loss.Max
	}
	return p
}
