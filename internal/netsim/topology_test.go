package netsim

import (
	"math"
	"testing"
)

func TestTopologyConstructionPanics(t *testing.T) {
	tp := NewTopology()
	tp.AddNode("a")
	tp.AddNode("b")
	tp.AddLink("l1", "a", "b", 1e9, 0.01)
	cases := []func(){
		func() { tp.AddNode("") },
		func() { tp.AddLink("", "a", "b", 1, 0) },
		func() { tp.AddLink("l1", "a", "b", 1, 0) },     // duplicate
		func() { tp.AddLink("l2", "a", "ghost", 1, 0) }, // unknown node
		func() { tp.AddLink("l3", "a", "b", 0, 0) },     // zero capacity
		func() { tp.AddLink("l4", "a", "b", 1, -1) },    // negative latency
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

func TestRouteShortestLatency(t *testing.T) {
	// a—b direct (slow) vs a—c—b (two fast hops): routing must take
	// the lower-latency two-hop path.
	tp := NewTopology()
	for _, n := range []string{"a", "b", "c"} {
		tp.AddNode(n)
	}
	tp.AddLink("direct", "a", "b", 1e9, 0.100)
	tp.AddLink("ac", "a", "c", 1e9, 0.010)
	tp.AddLink("cb", "c", "b", 1e9, 0.010)
	links, rtt, err := tp.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 || links[0] != "ac" || links[1] != "cb" {
		t.Fatalf("route = %v, want [ac cb]", links)
	}
	if math.Abs(rtt-0.040) > 1e-9 {
		t.Fatalf("rtt = %v, want 40 ms", rtt)
	}
}

func TestRouteErrors(t *testing.T) {
	tp := NewTopology()
	tp.AddNode("a")
	tp.AddNode("b")
	tp.AddNode("island")
	tp.AddLink("ab", "a", "b", 1e9, 0.01)
	if _, _, err := tp.Route("ghost", "a"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, _, err := tp.Route("a", "ghost"); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, _, err := tp.Route("a", "island"); err == nil {
		t.Error("disconnected route accepted")
	}
	if links, rtt, err := tp.Route("a", "a"); err != nil || len(links) != 0 || rtt != 0 {
		t.Errorf("self route = (%v, %v, %v)", links, rtt, err)
	}
}

func TestDumbbellCrossTraffic(t *testing.T) {
	// Two host pairs share the dumbbell bottleneck: flows on separate
	// pairs contend only on the bottleneck link, and max-min splits it
	// evenly — the Figure 3 scenario expressed through the topology
	// layer.
	tp := Dumbbell(2, 1e9, 100e6, 0.015)
	net := tp.BuildNetwork()

	path0, rtt0, err := tp.Route("src0", "dst0")
	if err != nil {
		t.Fatal(err)
	}
	path1, _, err := tp.Route("src1", "dst1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rtt0-0.032) > 1e-9 {
		t.Fatalf("dumbbell rtt = %v, want 32 ms", rtt0)
	}
	alloc, err := net.Allocate([]Demand{
		{FlowID: "f0", Resources: path0, Cap: 1e9, RTT: rtt0, Weight: 5},
		{FlowID: "f1", Resources: path1, Cap: 1e9, RTT: rtt0, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 flows across a 100 Mbps bottleneck: 10 Mbps each.
	for _, id := range []string{"f0", "f1"} {
		if got := alloc.Rate[id]; math.Abs(got-10e6) > 1e5 {
			t.Fatalf("rate[%s] = %v, want 10 Mbps", id, got)
		}
	}
	found := false
	for _, s := range alloc.Saturated {
		if s == "bottleneck" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bottleneck not saturated: %v", alloc.Saturated)
	}
}

func TestDumbbellAccessLinkBinds(t *testing.T) {
	// With a huge bottleneck, the access links bind instead.
	tp := Dumbbell(1, 100e6, 10e9, 0.015)
	net := tp.BuildNetwork()
	path, rtt, err := tp.Route("src0", "dst0")
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := net.Allocate([]Demand{{FlowID: "f", Resources: path, Cap: 1e9, RTT: rtt}})
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.Rate["f"]; math.Abs(got-100e6) > 1e5 {
		t.Fatalf("rate = %v, want 100 Mbps (access-bound)", got)
	}
}

func TestTopologyNodesAndResources(t *testing.T) {
	tp := Dumbbell(2, 1e9, 100e6, 0.015)
	nodes := tp.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("nodes = %v, want 6", nodes)
	}
	res := tp.Resources()
	if len(res) != 5 {
		t.Fatalf("resources = %d, want 5 (4 access + bottleneck)", len(res))
	}
	for _, r := range res {
		if r.Kind != Link || r.Capacity <= 0 {
			t.Fatalf("bad resource %+v", r)
		}
	}
}

func TestDumbbellPanicsOnZeroHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dumbbell(0, ...) did not panic")
		}
	}()
	Dumbbell(0, 1e9, 1e8, 0.01)
}
