package netsim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

const (
	mbps = 1e6
	gbps = 1e9
)

func singleLinkNet(capacity float64) *Network {
	n := New()
	n.AddResource(Resource{ID: "link", Kind: Link, Capacity: capacity})
	return n
}

func demand(id string, cap float64, rtt float64, res ...string) Demand {
	return Demand{FlowID: id, Resources: res, Cap: cap, RTT: rtt}
}

func TestResourceKindString(t *testing.T) {
	cases := map[ResourceKind]string{Link: "link", NIC: "nic", Storage: "storage", CPU: "cpu", ResourceKind(9): "ResourceKind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestAddResourceValidation(t *testing.T) {
	n := New()
	n.AddResource(Resource{ID: "a", Capacity: 1})
	for _, r := range []Resource{
		{ID: "", Capacity: 1},
		{ID: "b", Capacity: 0},
		{ID: "a", Capacity: 1}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddResource(%+v) did not panic", r)
				}
			}()
			n.AddResource(r)
		}()
	}
}

func TestSetCapacity(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	n.SetCapacity("link", 50*mbps)
	r, ok := n.Resource("link")
	if !ok || r.Capacity != 50*mbps {
		t.Fatalf("capacity = %v, want 50 Mbps", r.Capacity)
	}
	if _, ok := n.Resource("nope"); ok {
		t.Fatal("Resource returned ok for unknown ID")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetCapacity on unknown resource did not panic")
			}
		}()
		n.SetCapacity("nope", 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetCapacity zero did not panic")
			}
		}()
		n.SetCapacity("link", 0)
	}()
}

func TestAllocateEmptyDemands(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	a, err := n.Allocate(nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(a.Rate) != 0 || len(a.Saturated) != 0 {
		t.Fatal("empty allocation not empty")
	}
}

func TestAllocateValidation(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	cases := []struct {
		name string
		d    []Demand
	}{
		{"empty id", []Demand{demand("", 1, 0.03, "link")}},
		{"dup id", []Demand{demand("f", 1, 0.03, "link"), demand("f", 1, 0.03, "link")}},
		{"zero cap", []Demand{{FlowID: "f", Resources: []string{"link"}, Cap: 0, RTT: 0.03}}},
		{"unknown resource", []Demand{demand("f", 1, 0.03, "ghost")}},
	}
	for _, c := range cases {
		if _, err := n.Allocate(c.d); err == nil {
			t.Errorf("%s: Allocate did not error", c.name)
		}
	}
}

func TestSingleFlowCappedByOwnLimit(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	a, err := n.Allocate([]Demand{demand("f", 10*mbps, 0.03, "link")})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate["f"]; math.Abs(got-10*mbps) > 1 {
		t.Fatalf("rate = %v, want 10 Mbps", got)
	}
	if len(a.Saturated) != 0 {
		t.Fatalf("saturated = %v, want none", a.Saturated)
	}
	// Unsaturated link: only base loss.
	if l := a.Loss["f"]; l > 1e-3 {
		t.Fatalf("loss = %v, want ≈ base", l)
	}
}

func TestSingleFlowCappedByLink(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	a, err := n.Allocate([]Demand{demand("f", 1*gbps, 0.03, "link")})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate["f"]; math.Abs(got-100*mbps) > 100 {
		t.Fatalf("rate = %v, want 100 Mbps", got)
	}
	if len(a.Saturated) != 1 || a.Saturated[0] != "link" {
		t.Fatalf("saturated = %v, want [link]", a.Saturated)
	}
}

func TestEqualSharingOnSaturatedLink(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	var ds []Demand
	for i := 0; i < 4; i++ {
		ds = append(ds, demand(fmt.Sprintf("f%d", i), 1*gbps, 0.03, "link"))
	}
	a, err := n.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if got := a.Rate[d.FlowID]; math.Abs(got-25*mbps) > 1e3 {
			t.Fatalf("rate[%s] = %v, want 25 Mbps", d.FlowID, got)
		}
	}
}

func TestMaxMinWithHeterogeneousCaps(t *testing.T) {
	// One flow capped at 10 Mbps; remaining 90 Mbps split between two.
	n := singleLinkNet(100 * mbps)
	ds := []Demand{
		demand("small", 10*mbps, 0.03, "link"),
		demand("big1", 1*gbps, 0.03, "link"),
		demand("big2", 1*gbps, 0.03, "link"),
	}
	a, err := n.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate["small"]; math.Abs(got-10*mbps) > 1e3 {
		t.Fatalf("small = %v, want 10 Mbps", got)
	}
	for _, id := range []string{"big1", "big2"} {
		if got := a.Rate[id]; math.Abs(got-45*mbps) > 1e3 {
			t.Fatalf("%s = %v, want 45 Mbps", id, got)
		}
	}
}

func TestMultiResourcePath(t *testing.T) {
	// Flow limited by the narrowest resource along its path.
	n := New()
	n.AddResource(Resource{ID: "store", Kind: Storage, Capacity: 30 * mbps})
	n.AddResource(Resource{ID: "link", Kind: Link, Capacity: 100 * mbps})
	n.AddResource(Resource{ID: "nic", Kind: NIC, Capacity: 1 * gbps})
	a, err := n.Allocate([]Demand{demand("f", 1*gbps, 0.03, "store", "link", "nic")})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Rate["f"]; math.Abs(got-30*mbps) > 100 {
		t.Fatalf("rate = %v, want 30 Mbps (storage-bound)", got)
	}
	// Storage saturated, link not: sender-limited flows see no Mathis
	// loss (§3.1: L returns 0 when transfer bottleneck is I/O).
	if l := a.Loss["f"]; l > 1e-3 {
		t.Fatalf("loss = %v, want ≈ base only", l)
	}
}

func TestLossGrowsQuadraticallyWithFlows(t *testing.T) {
	// Figure 4's mechanism: at a saturated link, per-flow share halves
	// as the flow count doubles, and Mathis loss quadruples.
	n := singleLinkNet(100 * mbps)
	lossAt := func(k int) float64 {
		var ds []Demand
		for i := 0; i < k; i++ {
			ds = append(ds, demand(fmt.Sprintf("f%d", i), 1*gbps, 0.03, "link"))
		}
		a, err := n.Allocate(ds)
		if err != nil {
			t.Fatal(err)
		}
		return a.Loss["f0"]
	}
	l10, l20, l32 := lossAt(10), lossAt(20), lossAt(32)
	if !(l10 < l20 && l20 < l32) {
		t.Fatalf("loss not increasing: %v %v %v", l10, l20, l32)
	}
	ratio := (l20 - 1e-4) / (l10 - 1e-4) // subtract base loss
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("doubling flows should ≈4x the loss, got ratio %v", ratio)
	}
	// The paper's Figure 4: ≈10% loss at concurrency 32 on the 100 Mbps
	// Emulab link, <2% below 10.
	if l32 < 0.05 || l32 > 0.2 {
		t.Fatalf("loss at 32 flows = %v, want ≈0.1", l32)
	}
	if l10 > 0.02 {
		t.Fatalf("loss at 10 flows = %v, want <2%%", l10)
	}
}

func TestLossClampedAtMax(t *testing.T) {
	n := singleLinkNet(1 * mbps)
	var ds []Demand
	for i := 0; i < 64; i++ {
		ds = append(ds, demand(fmt.Sprintf("f%d", i), 1*gbps, 0.2, "link"))
	}
	a, err := n.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	max := n.LossModel().Max
	for id, l := range a.Loss {
		if l > max {
			t.Fatalf("loss[%s] = %v exceeds max %v", id, l, max)
		}
	}
}

func TestSetLossModel(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	m := LossModel{MSSBits: 12000, Scale: 1, Base: 0, Max: 0.5}
	n.SetLossModel(m)
	if got := n.LossModel(); got != m {
		t.Fatalf("LossModel = %+v, want %+v", got, m)
	}
}

func TestTwoTasksShareBottleneckFairly(t *testing.T) {
	// Two tasks with different connection counts sharing one link:
	// per-connection rates are equal, so the task with more connections
	// gets proportionally more — the raw TCP behaviour that Falcon's
	// utility function must counteract.
	n := singleLinkNet(1 * gbps)
	var ds []Demand
	for i := 0; i < 10; i++ {
		ds = append(ds, demand(fmt.Sprintf("a%d", i), 1*gbps, 0.03, "link"))
	}
	for i := 0; i < 30; i++ {
		ds = append(ds, demand(fmt.Sprintf("b%d", i), 1*gbps, 0.03, "link"))
	}
	a, err := n.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	var taskA, taskB float64
	for id, r := range a.Rate {
		if id[0] == 'a' {
			taskA += r
		} else {
			taskB += r
		}
	}
	if math.Abs(taskA-0.25*gbps) > 1e6 || math.Abs(taskB-0.75*gbps) > 1e6 {
		t.Fatalf("taskA = %v, taskB = %v; want 250/750 Mbps", taskA, taskB)
	}
}

// Property: allocations never violate resource capacities or flow caps,
// and total allocated rate is maximal in the sense that at least one
// resource on an unsatisfied flow's path is saturated.
func TestAllocationInvariantsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Deterministic pseudo-random scenario from the seed.
		x := uint64(seed)*2654435761 + 1
		next := func(mod uint64) uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return (x >> 33) % mod
		}
		n := New()
		nres := int(next(4)) + 1
		resIDs := make([]string, nres)
		for i := 0; i < nres; i++ {
			id := fmt.Sprintf("r%d", i)
			resIDs[i] = id
			n.AddResource(Resource{ID: id, Kind: ResourceKind(next(4)), Capacity: float64(next(1000)+1) * mbps})
		}
		nflows := int(next(12)) + 1
		ds := make([]Demand, nflows)
		for i := range ds {
			nr := int(next(uint64(nres))) + 1
			rs := make([]string, 0, nr)
			seen := map[string]bool{}
			for len(rs) < nr {
				id := resIDs[next(uint64(nres))]
				if !seen[id] {
					seen[id] = true
					rs = append(rs, id)
				}
			}
			ds[i] = Demand{
				FlowID:    fmt.Sprintf("f%d", i),
				Resources: rs,
				Cap:       float64(next(500)+1) * mbps,
				RTT:       0.01 + float64(next(100))/1000,
			}
		}
		a, err := n.Allocate(ds)
		if err != nil {
			return false
		}
		// Capacity invariant.
		used := map[string]float64{}
		for i := range ds {
			r := a.Rate[ds[i].FlowID]
			if r < -1e-6 || r > ds[i].Cap*(1+1e-6) {
				return false
			}
			for _, rid := range ds[i].Resources {
				used[rid] += r
			}
		}
		for rid, u := range used {
			res, _ := n.Resource(rid)
			if u > res.Capacity*(1+1e-6) {
				return false
			}
		}
		// Pareto condition: every flow is either at its cap or crosses
		// a saturated resource.
		sat := map[string]bool{}
		for _, s := range a.Saturated {
			sat[s] = true
		}
		for i := range ds {
			r := a.Rate[ds[i].FlowID]
			if r >= ds[i].Cap*(1-1e-6) {
				continue
			}
			onSat := false
			for _, rid := range ds[i].Resources {
				if sat[rid] {
					onSat = true
					break
				}
			}
			if !onSat {
				return false
			}
		}
		// Loss sanity.
		for _, l := range a.Loss {
			if l < 0 || l > n.LossModel().Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCapLimitedFlowSeesOnlyBaseLoss is the regression test for loss
// attribution: a flow whose cap holds it strictly below a saturated
// link's fair share never fills the queue, so it must see only the
// base loss floor while the flows actually pushing the link get the
// Mathis-model loss (§3.1's sender-limited case).
func TestCapLimitedFlowSeesOnlyBaseLoss(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	a, err := n.Allocate([]Demand{
		demand("small", 5*mbps, 0.03, "link"), // capped far below fair share
		demand("big", 1*gbps, 0.03, "link"),   // link-limited at 95 Mbps
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Saturated) != 1 || a.Saturated[0] != "link" {
		t.Fatalf("saturated = %v, want [link]", a.Saturated)
	}
	base := n.LossModel().Base
	if l := a.Loss["small"]; math.Abs(l-base) > base/10 {
		t.Fatalf("cap-limited flow loss = %v, want ≈ base %v", l, base)
	}
	if l := a.Loss["big"]; l <= base*2 {
		t.Fatalf("link-limited flow loss = %v, want Mathis loss above base", l)
	}
}

// TestAllocateIntoReusesResult checks that AllocateInto reuses the
// caller's Allocation and matches Allocate exactly.
func TestAllocateIntoReusesResult(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	ds := []Demand{
		demand("a", 1*gbps, 0.03, "link"),
		demand("b", 10*mbps, 0.03, "link"),
	}
	want, err := n.Allocate(ds)
	if err != nil {
		t.Fatal(err)
	}
	var got Allocation
	for i := 0; i < 3; i++ { // repeated calls must not accumulate state
		if err := n.AllocateInto(&got, ds); err != nil {
			t.Fatal(err)
		}
	}
	if len(got.Rate) != len(want.Rate) || len(got.Loss) != len(want.Loss) {
		t.Fatalf("sizes differ: got %d/%d want %d/%d", len(got.Rate), len(got.Loss), len(want.Rate), len(want.Loss))
	}
	for id, r := range want.Rate {
		if got.Rate[id] != r {
			t.Fatalf("Rate[%s] = %v, want %v", id, got.Rate[id], r)
		}
	}
	for id, l := range want.Loss {
		if got.Loss[id] != l {
			t.Fatalf("Loss[%s] = %v, want %v", id, got.Loss[id], l)
		}
	}
	if fmt.Sprint(got.Saturated) != fmt.Sprint(want.Saturated) {
		t.Fatalf("Saturated = %v, want %v", got.Saturated, want.Saturated)
	}
}

// BenchmarkAllocate measures the steady-state allocation path: 64 flows
// over a two-resource path with the result written into a reused
// Allocation, exercising the Network's scratch arena. This is the
// configuration the allocs/op CI baseline tracks.
func BenchmarkAllocate(b *testing.B) {
	n := New()
	n.AddResource(Resource{ID: "link", Kind: Link, Capacity: 10 * gbps})
	n.AddResource(Resource{ID: "store", Kind: Storage, Capacity: 8 * gbps})
	ds := make([]Demand, 64)
	for i := range ds {
		ds[i] = demand(fmt.Sprintf("f%d", i), 500*mbps, 0.03, "store", "link")
	}
	var alloc Allocation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.AllocateInto(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocate64Flows is the ≥64-flow steady-state path through
// the scratch arena. It asserts zero allocations per call: the large
// case must ride the same reuse as the small one.
func BenchmarkAllocate64Flows(b *testing.B) {
	n := New()
	n.AddResource(Resource{ID: "link", Kind: Link, Capacity: 10 * gbps})
	n.AddResource(Resource{ID: "store", Kind: Storage, Capacity: 8 * gbps})
	ds := make([]Demand, 64)
	for i := range ds {
		ds[i] = demand(fmt.Sprintf("f%d", i), 500*mbps, 0.03, "store", "link")
	}
	var alloc Allocation
	if err := n.AllocateInto(&alloc, ds); err != nil { // warm the arena
		b.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := n.AllocateInto(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}); avg != 0 {
		b.Fatalf("AllocateInto allocated %.1f times per call, want 0", avg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.AllocateInto(&alloc, ds); err != nil {
			b.Fatal(err)
		}
	}
}
