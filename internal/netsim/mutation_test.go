package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestCapacityGeneration pins the generation counter's contract: it
// bumps on every capacity-changing SetCapacity and stays put on
// idempotent sets. The testbed engine re-asserts unchanged contention
// caps every tick and folds the generation into its allocator memo, so
// an idempotent bump would silently disable memoization.
func TestCapacityGeneration(t *testing.T) {
	n := singleLinkNet(100 * mbps)
	g0 := n.CapacityGeneration()
	n.SetCapacity("link", 100*mbps) // idempotent
	if n.CapacityGeneration() != g0 {
		t.Fatal("idempotent SetCapacity bumped the generation")
	}
	n.SetCapacity("link", 50*mbps)
	if n.CapacityGeneration() != g0+1 {
		t.Fatalf("generation = %d after a change, want %d", n.CapacityGeneration(), g0+1)
	}
	n.SetCapacity("link", 50*mbps) // idempotent again
	n.SetCapacity("link", 100*mbps)
	if n.CapacityGeneration() != g0+2 {
		t.Fatalf("generation = %d after change/idempotent/change, want %d", n.CapacityGeneration(), g0+2)
	}
}

// TestMutatedAllocationMatchesFreshNetwork is the seeded property test
// for mid-run capacity mutation: a long-lived network that interleaves
// SetCapacity with AllocateDense (exercising the incremental class
// partition and cached tables) must allocate exactly like a network
// freshly built at the current capacities every round. If a stale
// memoized fill or class table survived a capacity change, the two
// would diverge.
func TestMutatedAllocationMatchesFreshNetwork(t *testing.T) {
	const (
		resources = 4
		flows     = 24
		rounds    = 60
	)
	rng := rand.New(rand.NewSource(42))
	kinds := []ResourceKind{Storage, NIC, Link, Storage}
	baseCaps := []float64{8 * gbps, 40 * gbps, 10 * gbps, 30 * gbps}
	ids := make([]string, resources)
	caps := make([]float64, resources)
	live := New()
	for i := range ids {
		ids[i] = fmt.Sprintf("r%d", i)
		caps[i] = baseCaps[i]
		live.AddResource(Resource{ID: ids[i], Kind: kinds[i], Capacity: caps[i]})
	}

	mkDemands := func() []Demand {
		ds := make([]Demand, flows)
		for f := range ds {
			// A few distinct (cap, rtt, route) shapes so flows land in
			// classes; identical shapes collapse together.
			shape := f % 4
			route := []string{"r0", "r1", "r2"}
			if shape == 3 {
				route = []string{"r0", "r1", "r2", "r3"}
			}
			ds[f] = Demand{
				FlowID:    fmt.Sprintf("f%02d", f),
				Resources: route,
				Cap:       []float64{400 * mbps, 2 * gbps, math.Inf(1), 1 * gbps}[shape],
				RTT:       []float64{0.03, 0.03, 0.06, 0.01}[shape],
			}
		}
		return ds
	}

	var gotLive, gotFresh DenseAllocation
	for round := 0; round < rounds; round++ {
		// Mutate one resource (sometimes idempotently, like the
		// engine's per-tick contention-cap refresh).
		idx := rng.Intn(resources)
		if rng.Intn(3) > 0 {
			caps[idx] = baseCaps[idx] * (0.25 + rng.Float64()*1.5)
		}
		live.SetCapacity(ids[idx], caps[idx])

		fresh := New()
		for i := range ids {
			fresh.AddResource(Resource{ID: ids[i], Kind: kinds[i], Capacity: caps[i]})
		}

		demands := mkDemands()
		if err := live.AllocateDense(&gotLive, demands); err != nil {
			t.Fatalf("round %d: live: %v", round, err)
		}
		if err := fresh.AllocateDense(&gotFresh, demands); err != nil {
			t.Fatalf("round %d: fresh: %v", round, err)
		}
		if !reflect.DeepEqual(gotLive, gotFresh) {
			t.Fatalf("round %d: mutated network diverged from fresh oracle\nlive:  %+v\nfresh: %+v",
				round, gotLive, gotFresh)
		}
	}
}

// TestTopologyRouteUnderMutation covers Route and SetCapacity on a
// built topology network: the route is stable under capacity changes
// (routing is latency-based), while the path's bottleneck value moves
// with the narrowest link — the contract the scenario compiler's
// link-mutation lowering depends on.
func TestTopologyRouteUnderMutation(t *testing.T) {
	topo := NewTopology()
	for _, n := range []string{"src", "a", "b", "dst"} {
		topo.AddNode(n)
	}
	topo.AddLink("l0", "src", "a", 40*gbps, 0.0005)
	topo.AddLink("l1", "a", "b", 10*gbps, 0.015)
	topo.AddLink("l2", "b", "dst", 40*gbps, 0.0005)
	// A shorter-hop but higher-latency detour that must not be chosen.
	topo.AddLink("slow", "src", "dst", 100*gbps, 0.2)

	route, rtt, err := topo.Route("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"l0", "l1", "l2"}; !reflect.DeepEqual(route, want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	if want := 2 * (0.0005 + 0.015 + 0.0005); math.Abs(rtt-want) > 1e-12 {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
	if _, _, err := topo.Route("src", "ghost"); err == nil {
		t.Fatal("Route to unknown node did not error")
	}

	net := topo.BuildNetwork()
	bottleneck := func() float64 {
		min := math.Inf(1)
		for _, id := range route {
			r, ok := net.Resource(id)
			if !ok {
				t.Fatalf("route link %q missing from built network", id)
			}
			if r.Capacity < min {
				min = r.Capacity
			}
		}
		return min
	}
	if got := bottleneck(); got != 10*gbps {
		t.Fatalf("initial bottleneck = %v, want 10 Gbps", got)
	}
	// Narrow an access link below the middle hop: the bottleneck moves.
	net.SetCapacity("l0", 5*gbps)
	if got := bottleneck(); got != 5*gbps {
		t.Fatalf("bottleneck after narrowing l0 = %v, want 5 Gbps", got)
	}
	// The route itself is unchanged by capacity mutation.
	r2, rtt2, err := topo.Route("src", "dst")
	if err != nil || !reflect.DeepEqual(r2, route) || rtt2 != rtt {
		t.Fatalf("route changed under capacity mutation: %v %v %v", r2, rtt2, err)
	}
	// Allocation on the mutated network respects the new bottleneck.
	var alloc DenseAllocation
	demands := []Demand{
		{FlowID: "x", Resources: route, Cap: math.Inf(1), RTT: rtt},
		{FlowID: "y", Resources: route, Cap: math.Inf(1), RTT: rtt},
	}
	if err := net.AllocateDense(&alloc, demands); err != nil {
		t.Fatal(err)
	}
	if total := alloc.Rate[0] + alloc.Rate[1]; math.Abs(total-5*gbps) > 1 {
		t.Fatalf("aggregate %v on a 5 Gbps bottleneck", total)
	}
}
