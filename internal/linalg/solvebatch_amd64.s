//go:build amd64 && !purego

#include "textflag.h"

// func hasAVX2() bool
//
// CPUID feature probe: max leaf >= 7, CPUID.1:ECX OSXSAVE(27)+AVX(28),
// XCR0 low bits 0x6 (XMM+YMM state enabled by the OS), CPUID.7:EBX
// AVX2(5).
TEXT ·hasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JLT  novec
	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  novec
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  novec
	MOVL $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1 << 5), BX
	JZ   novec
	MOVB $1, ret+0(FP)
	RET

novec:
	MOVB $0, ret+0(FP)
	RET

// func solveLowerBatchAVX2(l *float64, b *float64, n, m int)
//
// Forward substitution over the packed lower triangle at l for m
// interleaved right-hand sides (i-major: b[i*m+c]). Uses only
// VMULPD/VSUBPD/VDIVPD (no FMA), so each lane's arithmetic is bitwise
// identical to solveLowerBatchGeneric's scalar loop: per column the
// updates apply in ascending-k order followed by one divide, exactly
// the scalar sequence, and the scalar tail uses MULSD/SUBSD/DIVSD,
// which round the same way.
//
// The column loop is blocked so a 16-, 8-, or 4-column slice of row i
// lives in ymm accumulators across the whole k loop — row i is loaded
// and stored once per block instead of once per (k, block), and the
// four independent accumulator chains hide the VSUBPD latency.
//
// Register plan:
//	SI = l base     DI = b base     CX = n       R8 = m (elements)
//	R9 = packed offset of row i     R10 = i      R11 = c (column)
//	R12 = &b[i*m]   R13 = &b[i*m+c] R14 = &b[k*m+c] (steps R15 = 8m)
//	BX = &l[off+k]  DX = k / remaining-column scratch   AX = scratch
TEXT ·solveLowerBatchAVX2(SB), NOSPLIT, $0-32
	MOVQ l+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ m+24(FP), R8
	MOVQ R8, R15
	SHLQ $3, R15
	XORQ R9, R9
	XORQ R10, R10

loop_i:
	CMPQ R10, CX
	JGE  done
	MOVQ R10, AX
	IMULQ R8, AX
	LEAQ (DI)(AX*8), R12
	XORQ R11, R11

col16:
	MOVQ R8, DX
	SUBQ R11, DX
	CMPQ DX, $16
	JLT  col8
	LEAQ (R12)(R11*8), R13
	VMOVUPD (R13), Y2
	VMOVUPD 32(R13), Y3
	VMOVUPD 64(R13), Y5
	VMOVUPD 96(R13), Y6
	LEAQ (SI)(R9*8), BX
	LEAQ (DI)(R11*8), R14
	XORQ DX, DX

k16:
	CMPQ DX, R10
	JGE  k16_done
	VBROADCASTSD (BX), Y0
	VMOVUPD (R14), Y1
	VMULPD  Y0, Y1, Y1
	VSUBPD  Y1, Y2, Y2
	VMOVUPD 32(R14), Y4
	VMULPD  Y0, Y4, Y4
	VSUBPD  Y4, Y3, Y3
	VMOVUPD 64(R14), Y7
	VMULPD  Y0, Y7, Y7
	VSUBPD  Y7, Y5, Y5
	VMOVUPD 96(R14), Y8
	VMULPD  Y0, Y8, Y8
	VSUBPD  Y8, Y6, Y6
	ADDQ $8, BX
	ADDQ R15, R14
	INCQ DX
	JMP  k16

k16_done:
	// BX has walked to &l[off+i]: the diagonal.
	VBROADCASTSD (BX), Y0
	VDIVPD Y0, Y2, Y2
	VDIVPD Y0, Y3, Y3
	VDIVPD Y0, Y5, Y5
	VDIVPD Y0, Y6, Y6
	VMOVUPD Y2, (R13)
	VMOVUPD Y3, 32(R13)
	VMOVUPD Y5, 64(R13)
	VMOVUPD Y6, 96(R13)
	ADDQ $16, R11
	JMP  col16

col8:
	CMPQ DX, $8
	JLT  col4
	LEAQ (R12)(R11*8), R13
	VMOVUPD (R13), Y2
	VMOVUPD 32(R13), Y3
	LEAQ (SI)(R9*8), BX
	LEAQ (DI)(R11*8), R14
	XORQ DX, DX

k8:
	CMPQ DX, R10
	JGE  k8_done
	VBROADCASTSD (BX), Y0
	VMOVUPD (R14), Y1
	VMULPD  Y0, Y1, Y1
	VSUBPD  Y1, Y2, Y2
	VMOVUPD 32(R14), Y4
	VMULPD  Y0, Y4, Y4
	VSUBPD  Y4, Y3, Y3
	ADDQ $8, BX
	ADDQ R15, R14
	INCQ DX
	JMP  k8

k8_done:
	VBROADCASTSD (BX), Y0
	VDIVPD Y0, Y2, Y2
	VDIVPD Y0, Y3, Y3
	VMOVUPD Y2, (R13)
	VMOVUPD Y3, 32(R13)
	ADDQ $8, R11
	MOVQ R8, DX
	SUBQ R11, DX

col4:
	CMPQ DX, $4
	JLT  col1
	LEAQ (R12)(R11*8), R13
	VMOVUPD (R13), Y2
	LEAQ (SI)(R9*8), BX
	LEAQ (DI)(R11*8), R14
	XORQ DX, DX

k4:
	CMPQ DX, R10
	JGE  k4_done
	VBROADCASTSD (BX), Y0
	VMOVUPD (R14), Y1
	VMULPD  Y0, Y1, Y1
	VSUBPD  Y1, Y2, Y2
	ADDQ $8, BX
	ADDQ R15, R14
	INCQ DX
	JMP  k4

k4_done:
	VBROADCASTSD (BX), Y0
	VDIVPD Y0, Y2, Y2
	VMOVUPD Y2, (R13)
	ADDQ $4, R11
	MOVQ R8, DX
	SUBQ R11, DX
	JMP  col4

col1:
	CMPQ R11, R8
	JGE  advance
	LEAQ (R12)(R11*8), R13
	MOVSD (R13), X2
	LEAQ (SI)(R9*8), BX
	LEAQ (DI)(R11*8), R14
	XORQ DX, DX

k1:
	CMPQ DX, R10
	JGE  k1_done
	MOVSD (BX), X0
	MOVSD (R14), X1
	MULSD X0, X1
	SUBSD X1, X2
	ADDQ  $8, BX
	ADDQ  R15, R14
	INCQ  DX
	JMP   k1

k1_done:
	MOVSD (BX), X0
	DIVSD X0, X2
	MOVSD X2, (R13)
	INCQ  R11
	JMP   col1

advance:
	// off += i+1; i++
	LEAQ 1(R9)(R10*1), R9
	INCQ R10
	JMP  loop_i

done:
	VZEROUPPER
	RET

// func axpyAVX2(dst, src *float64, n int, a float64)
//
// dst[i] += a*src[i], multiply and add separately rounded (no FMA) so
// every lane matches the scalar loop bitwise.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y0

axpy_vec:
	CMPQ CX, $4
	JLT  axpy_sc
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  axpy_vec

axpy_sc:
	TESTQ CX, CX
	JZ    axpy_done
	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JMP   axpy_sc

axpy_done:
	VZEROUPPER
	RET

// func addSqAVX2(dst, src *float64, n int)
//
// dst[i] += src[i]*src[i], same rounding guarantee as axpyAVX2.
TEXT ·addSqAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

sq_vec:
	CMPQ CX, $4
	JLT  sq_sc
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y1, Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  sq_vec

sq_sc:
	TESTQ CX, CX
	JZ    sq_done
	MOVSD (SI), X1
	MULSD X1, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)
	ADDQ  $8, SI
	ADDQ  $8, DI
	DECQ  CX
	JMP   sq_sc

sq_done:
	VZEROUPPER
	RET
