package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// TestSolveLowerBatchMatchesScalar: the batched forward solve must be
// bitwise identical to SolveLowerInto run column by column — the GP
// candidate sweep relies on this to keep reproduce output
// byte-identical. Exercised across sizes that hit the vector kernel,
// its scalar tail (m not a multiple of 4), and the generic path
// (m < 4).
func TestSolveLowerBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 20} {
		for _, m := range []int{1, 2, 3, 4, 5, 8, 31, 64} {
			a := randSPD(n, rng)
			c := buildChol(t, a)
			// Column c's right-hand side is rhs[c] spread across rows.
			b := make([]float64, n*m)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want := make([]float64, n*m)
			col := make([]float64, n)
			rhs := make([]float64, n)
			for cc := 0; cc < m; cc++ {
				for i := 0; i < n; i++ {
					rhs[i] = b[i*m+cc]
				}
				c.SolveLowerInto(col, rhs)
				for i := 0; i < n; i++ {
					want[i*m+cc] = col[i]
				}
			}
			got := append([]float64(nil), b...)
			c.SolveLowerBatchInto(got, m)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d m=%d: batch[%d] = %v, want %v (not bit-identical)", n, m, i, got[i], want[i])
				}
			}
			// The portable loop must agree with whatever kernel
			// SolveLowerBatchInto dispatched to.
			gen := append([]float64(nil), b...)
			solveLowerBatchGeneric(c.data, gen, n, m)
			for i := range gen {
				if math.Float64bits(gen[i]) != math.Float64bits(got[i]) {
					t.Fatalf("n=%d m=%d: generic[%d] = %v, dispatched %v (kernel mismatch)", n, m, i, gen[i], got[i])
				}
			}
		}
	}
}

func BenchmarkSolveLowerBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 20, 64
	a := randSPD(n, rng)
	c := NewChol(n)
	row := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j <= i; j++ {
			row = append(row, a.At(i, j))
		}
		if err := c.AppendRow(row); err != nil {
			b.Fatal(err)
		}
	}
	rhs := make([]float64, n*m)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	buf := make([]float64, n*m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, rhs)
		c.SolveLowerBatchInto(buf, m)
	}
}
