package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD builds a random n×n SPD matrix A = BᵀB + n·I.
func randSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.Transpose().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

// buildChol factors a via successive AppendRow calls.
func buildChol(t *testing.T, a *Matrix) *Chol {
	t.Helper()
	n := a.Rows()
	c := NewChol(n)
	row := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j <= i; j++ {
			row = append(row, a.At(i, j))
		}
		if err := c.AppendRow(row); err != nil {
			t.Fatalf("AppendRow %d: %v", i, err)
		}
	}
	return c
}

// TestAppendRowMatchesDenseCholesky: building the factor row by row is
// bit-identical to the dense factorisation — the invariant that makes
// the GP's incremental fit produce the same numbers as a full refit.
func TestAppendRowMatchesDenseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 12, 20} {
		a := randSPD(n, rng)
		want, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		c := buildChol(t, a)
		if c.Size() != n {
			t.Fatalf("size = %d, want %d", c.Size(), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if got := c.At(i, j); got != want.At(i, j) {
					t.Fatalf("n=%d: L[%d][%d] = %v, want %v (not bit-identical)", n, i, j, got, want.At(i, j))
				}
			}
		}
	}
}

func TestAppendRowRejectsNonPD(t *testing.T) {
	c := NewChol(2)
	if err := c.AppendRow([]float64{1}); err != nil {
		t.Fatal(err)
	}
	// Second row makes the matrix singular: [[1,1],[1,1]].
	if err := c.AppendRow([]float64{1, 1}); err == nil {
		t.Fatal("AppendRow accepted a singular matrix")
	}
	if c.Size() != 1 {
		t.Fatalf("failed append mutated the factor: size %d", c.Size())
	}
}

// TestDropFirstMatchesRefactorisation: dropping the first row/column
// must agree with factoring the trailing submatrix from scratch (up to
// rank-1-update rounding).
func TestDropFirstMatchesRefactorisation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 8, 20} {
		a := randSPD(n, rng)
		c := buildChol(t, a)
		c.DropFirst()

		sub := NewMatrix(n-1, n-1)
		for i := 1; i < n; i++ {
			for j := 1; j < n; j++ {
				sub.Set(i-1, j-1, a.At(i, j))
			}
		}
		want, err := Cholesky(sub)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n-1; i++ {
			for j := 0; j <= i; j++ {
				if got := c.At(i, j); math.Abs(got-want.At(i, j)) > 1e-9*(1+math.Abs(want.At(i, j))) {
					t.Fatalf("n=%d: L[%d][%d] = %v, want %v", n, i, j, got, want.At(i, j))
				}
			}
		}
	}
}

func TestDropFirstToEmpty(t *testing.T) {
	c := NewChol(1)
	if err := c.AppendRow([]float64{4}); err != nil {
		t.Fatal(err)
	}
	c.DropFirst()
	if c.Size() != 0 {
		t.Fatalf("size = %d, want 0", c.Size())
	}
}

func TestCholSolveMatchesSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	a := randSPD(n, rng)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := SolveCholesky(l, b)

	c := buildChol(t, a)
	got := make([]float64, n)
	c.SolveInto(got, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Forward solve only.
	wantLower := SolveLower(l, b)
	gotLower := make([]float64, n)
	c.SolveLowerInto(gotLower, b)
	for i := range wantLower {
		if gotLower[i] != wantLower[i] {
			t.Fatalf("lower x[%d] = %v, want %v", i, gotLower[i], wantLower[i])
		}
	}

	if got, want := c.LogDet(), LogDetFromCholesky(l); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

// TestSlidingWindowSequence simulates the GP's window: append to 20,
// then repeatedly drop-and-append, checking solves stay close to a
// from-scratch factorisation throughout.
func TestSlidingWindowSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const window = 20
	kernel := func(a, b float64) float64 {
		d := (a - b) / 4
		v := math.Exp(-0.5 * d * d)
		if a == b {
			v += 0.02
		}
		return v
	}
	var xs []float64
	c := NewChol(window)
	row := make([]float64, 0, window)
	for step := 0; step < 60; step++ {
		x := float64(step) + 0.1*rng.Float64()
		if len(xs) == window {
			xs = xs[1:]
			c.DropFirst()
		}
		xs = append(xs, x)
		row = row[:0]
		for _, xi := range xs {
			row = append(row, kernel(x, xi))
		}
		if err := c.AppendRow(row); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		if step%10 != 9 {
			continue
		}
		n := len(xs)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, kernel(xs[i], xs[j]))
			}
		}
		want, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(float64(i))
		}
		wantX := SolveCholesky(want, b)
		gotX := make([]float64, n)
		c.SolveInto(gotX, b)
		for i := range wantX {
			if math.Abs(gotX[i]-wantX[i]) > 1e-8*(1+math.Abs(wantX[i])) {
				t.Fatalf("step %d: x[%d] = %v, want %v", step, i, gotX[i], wantX[i])
			}
		}
	}
}
