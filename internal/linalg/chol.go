package linalg

import (
	"fmt"
	"math"
)

// Chol is a growable Cholesky factorisation of a symmetric
// positive-definite matrix, stored as a row-major packed lower
// triangle: row i occupies data[i(i+1)/2 : i(i+1)/2+i+1]. It is built
// for the Gaussian Process surrogate's sliding observation window:
//
//   - AppendRow extends an n×n factor to (n+1)×(n+1) given the new
//     bordering row of the underlying matrix, in O(n²) — the bordered
//     recurrence is exactly the inner loop of a full factorisation, so
//     building a factor row by row is bit-identical to factorising the
//     full matrix at once.
//   - DropFirst deletes the first row/column of the underlying matrix
//     in O(n²) via a positive rank-1 update, instead of the O(n³)
//     refactorisation a fresh fit would need.
//
// The packed layout touches n(n+1)/2 floats with direct indexing, so
// solves run without the bounds checks and zero upper triangle of the
// dense Matrix representation.
type Chol struct {
	n    int
	data []float64
	xbuf []float64 // DropFirst update-vector scratch
}

// NewChol returns an empty factor with capacity reserved for an n×n
// matrix.
func NewChol(n int) *Chol {
	if n < 0 {
		n = 0
	}
	return &Chol{data: make([]float64, 0, n*(n+1)/2)}
}

// Size returns the current dimension of the factored matrix.
func (c *Chol) Size() int { return c.n }

// Reset empties the factor, keeping its storage.
func (c *Chol) Reset() {
	c.n = 0
	c.data = c.data[:0]
}

// At returns L[i][j] for j ≤ i. It is meant for tests and diagnostics;
// hot paths index the packed triangle directly.
func (c *Chol) At(i, j int) float64 {
	if i < 0 || i >= c.n || j < 0 || j > i {
		panic(fmt.Sprintf("linalg: Chol index (%d,%d) out of range for size %d", i, j, c.n))
	}
	return c.data[i*(i+1)/2+j]
}

// AppendRow grows the factor from n×n to (n+1)×(n+1). row holds the
// new bordering row of the underlying matrix A: row[j] = A[n][j] for
// j ≤ n, with row[n] the new diagonal element. It returns
// ErrNotPositiveDefinite (leaving the factor unchanged) if the bordered
// matrix is not numerically positive-definite.
func (c *Chol) AppendRow(row []float64) error {
	n := c.n
	if len(row) != n+1 {
		panic(fmt.Sprintf("linalg: AppendRow length %d != %d", len(row), n+1))
	}
	base := len(c.data)
	c.data = append(c.data, row...)
	out := c.data[base : base+n+1]
	data := c.data
	// Forward-substitute: L[n][j] = (A[n][j] − Σ_{k<j} L[n][k]·L[j][k]) / L[j][j].
	joff := 0 // j*(j+1)/2, advanced incrementally
	for j := 0; j < n; j++ {
		lrow := data[joff : joff+j+1]
		s := out[j]
		for k := 0; k < j; k++ {
			s -= out[k] * lrow[k]
		}
		out[j] = s / lrow[j]
		joff += j + 1
	}
	d := out[n]
	for k := 0; k < n; k++ {
		d -= out[k] * out[k]
	}
	if d <= 0 || math.IsNaN(d) {
		c.data = c.data[:base]
		return ErrNotPositiveDefinite
	}
	out[n] = math.Sqrt(d)
	c.n = n + 1
	return nil
}

// DropFirst removes the first row and column of the underlying matrix:
// if A = L·Lᵀ then A[1:,1:] = L₂₂·L₂₂ᵀ + l₂₁·l₂₁ᵀ, so the new factor is
// the positive rank-1 update of the trailing submatrix's factor by the
// first column — numerically stable (LINPACK dchud) and O(n²).
// Dropping from an empty factor panics.
func (c *Chol) DropFirst() {
	if c.n == 0 {
		panic("linalg: DropFirst on empty factor")
	}
	n := c.n - 1
	if n == 0 {
		c.Reset()
		return
	}
	// x = l21: the first column below the diagonal, consumed in place
	// as the update vector while rows compact forward.
	if cap(c.xbuf) < n {
		c.xbuf = make([]float64, n)
	}
	x := c.xbuf[:n]
	for i := 0; i < n; i++ {
		x[i] = c.data[(i+1)*(i+2)/2]
	}
	// Compact the trailing factor L22 into rows 0..n-1.
	for i := 0; i < n; i++ {
		src := c.data[(i+1)*(i+2)/2+1 : (i+1)*(i+2)/2+i+2]
		dst := c.data[i*(i+1)/2 : i*(i+1)/2+i+1]
		copy(dst, src)
	}
	c.n = n
	c.data = c.data[:n*(n+1)/2]
	// Rank-1 update: L22·L22ᵀ += x·xᵀ column by column.
	data := c.data
	doff := 0 // k*(k+1)/2, advanced incrementally
	for k := 0; k < n; k++ {
		diag := data[doff+k]
		r := math.Hypot(diag, x[k])
		cos := r / diag
		sin := x[k] / diag
		data[doff+k] = r
		off := doff + 2*k + 1 // (k+1)*(k+2)/2 + k: column k entry of row k+1
		for i := k + 1; i < n; i++ {
			v := data[off]
			v = (v + sin*x[i]) / cos
			data[off] = v
			x[i] = cos*x[i] - sin*v
			off += i + 1
		}
		doff += k + 1
	}
}

// SolveLowerInto solves L·x = b by forward substitution, writing into
// x (which may alias b). It panics on length mismatches.
func (c *Chol) SolveLowerInto(x, b []float64) {
	n := c.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("linalg: SolveLowerInto lengths %d,%d != %d", len(x), len(b), n))
	}
	data := c.data
	ioff := 0 // i*(i+1)/2, advanced incrementally
	for i := 0; i < n; i++ {
		row := data[ioff : ioff+i+1]
		s := b[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
		ioff += i + 1
	}
}

// SolveInto solves A·x = b (A = L·Lᵀ) via forward then backward
// substitution, writing into x (which may alias b).
func (c *Chol) SolveInto(x, b []float64) {
	n := c.n
	c.SolveLowerInto(x, b)
	data := c.data
	doff := n*(n+1)/2 - 1 // i*(i+1)/2 + i for i = n-1, decremented incrementally
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		off := doff + i + 1 // k*(k+1)/2 + i for k = i+1
		for k := i + 1; k < n; k++ {
			s -= data[off] * x[k]
			off += k + 1
		}
		x[i] = s / data[doff]
		doff -= i + 1
	}
}

// SolveInto3 runs three independent SolveInto solves — one per factor,
// which must share a dimension — with their loops interleaved. Each
// stream performs exactly the operations its own SolveInto would, in
// the same order, so results are bitwise identical; interleaving only
// overlaps the three sequential dependency chains (each forward or
// backward step waits on the previous row's divide), which is where a
// lone triangular solve stalls. The GP model-selection refit, which
// solves one alpha per length-scale candidate per decision, is the
// intended caller.
func SolveInto3(c0, c1, c2 *Chol, x0, b0, x1, b1, x2, b2 []float64) {
	n := c0.n
	if c1.n != n || c2.n != n {
		panic(fmt.Sprintf("linalg: SolveInto3 sizes %d,%d,%d differ", c0.n, c1.n, c2.n))
	}
	if len(x0) != n || len(b0) != n || len(x1) != n || len(b1) != n || len(x2) != n || len(b2) != n {
		panic("linalg: SolveInto3 length mismatch")
	}
	d0, d1, d2 := c0.data, c1.data, c2.data
	ioff := 0
	for i := 0; i < n; i++ {
		r0 := d0[ioff : ioff+i+1]
		r1 := d1[ioff : ioff+i+1]
		r2 := d2[ioff : ioff+i+1]
		s0, s1, s2 := b0[i], b1[i], b2[i]
		for k := 0; k < i; k++ {
			s0 -= r0[k] * x0[k]
			s1 -= r1[k] * x1[k]
			s2 -= r2[k] * x2[k]
		}
		x0[i] = s0 / r0[i]
		x1[i] = s1 / r1[i]
		x2[i] = s2 / r2[i]
		ioff += i + 1
	}
	doff := n*(n+1)/2 - 1
	for i := n - 1; i >= 0; i-- {
		s0, s1, s2 := x0[i], x1[i], x2[i]
		off := doff + i + 1
		for k := i + 1; k < n; k++ {
			s0 -= d0[off] * x0[k]
			s1 -= d1[off] * x1[k]
			s2 -= d2[off] * x2[k]
			off += k + 1
		}
		x0[i] = s0 / d0[doff]
		x1[i] = s1 / d1[doff]
		x2[i] = s2 / d2[doff]
		doff -= i + 1
	}
}

// CopyFrom makes c a deep copy of o, reusing c's storage when it is
// large enough. The copy reproduces o's packed factor verbatim, so
// subsequent AppendRow/DropFirst/solve sequences on the copy are
// bitwise identical to running them on o. The bayesopt fit memo uses
// this to checkpoint and restore GP factor state across sessions.
func (c *Chol) CopyFrom(o *Chol) {
	c.n = o.n
	c.data = append(c.data[:0], o.data...)
}

// Raw exposes the packed lower triangle (row-major, n(n+1)/2 entries
// for an n×n factor) for hashing and comparison. The slice aliases the
// factor's live storage: callers must treat it as read-only and must
// not retain it across factor mutations.
func (c *Chol) Raw() []float64 { return c.data }

// EqualBits reports whether two factors hold bitwise-identical state
// (same dimension, same packed entries — compared by bit pattern, so
// 0 ≠ −0 and NaNs compare by payload). Scratch buffers are ignored.
func (c *Chol) EqualBits(o *Chol) bool {
	if c.n != o.n || len(c.data) != len(o.data) {
		return false
	}
	for i, v := range c.data {
		if math.Float64bits(v) != math.Float64bits(o.data[i]) {
			return false
		}
	}
	return true
}

// LogDet returns log|A| = 2·Σ log L[i][i].
func (c *Chol) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.data[i*(i+1)/2+i])
	}
	return 2 * s
}
