//go:build amd64 && !purego

package linalg

// useBatchAVX2 gates the vectorised batch forward-substitution kernel.
// The kernel uses only VMULPD/VSUBPD/VDIVPD — no FMA — so every lane
// performs the same individually rounded IEEE-754 operations as the
// scalar loop and the results are bitwise identical; AVX2 is required
// only for the 256-bit integer-free dataflow being profitable.
var useBatchAVX2 = hasAVX2()

// hasAVX2 reports CPU and OS support for 256-bit AVX2 execution
// (CPUID OSXSAVE+AVX, XCR0 XMM+YMM state, CPUID.7 AVX2).
// Implemented in solvebatch_amd64.s.
func hasAVX2() bool

// solveLowerBatchAVX2 is the assembly batch forward substitution over
// the packed lower triangle at l and the n×m i-major right-hand-side
// block at b. Requires n ≥ 1, m ≥ 1 and useBatchAVX2.
// Implemented in solvebatch_amd64.s.
//
//go:noescape
func solveLowerBatchAVX2(l *float64, b *float64, n, m int)

// axpyAVX2 computes dst[i] += a·src[i] with VMULPD/VADDPD (no FMA).
// Implemented in solvebatch_amd64.s.
//
//go:noescape
func axpyAVX2(dst, src *float64, n int, a float64)

// addSqAVX2 computes dst[i] += src[i]·src[i] with VMULPD/VADDPD.
// Implemented in solvebatch_amd64.s.
//
//go:noescape
func addSqAVX2(dst, src *float64, n int)
