//go:build !amd64 || purego

package linalg

// useBatchAVX2 is false without the amd64 assembly kernel; the batch
// solve always takes the portable path.
const useBatchAVX2 = false

// The assembly kernels are never called when useBatchAVX2 is false.
func solveLowerBatchAVX2(l *float64, b *float64, n, m int) {
	panic("linalg: solveLowerBatchAVX2 without assembly kernel")
}

func axpyAVX2(dst, src *float64, n int, a float64) {
	panic("linalg: axpyAVX2 without assembly kernel")
}

func addSqAVX2(dst, src *float64, n int) {
	panic("linalg: addSqAVX2 without assembly kernel")
}
