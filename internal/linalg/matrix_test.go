package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMatrix(dims[0], dims[1])
		}()
	}
}

func TestNewMatrixFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrixFrom with wrong length did not panic")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity At(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := a.Mul(b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul At(%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims did not panic")
		}
	}()
	a.Mul(b)
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,12,-16],[12,37,-43],[-16,-43,98]] has Cholesky factor
	// L = [[2,0,0],[6,1,0],[-8,5,3]].
	a := NewMatrixFrom(3, 3, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(l.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("L(%d,%d) = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // indefinite
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky on non-square matrix did not error")
	}
}

func TestSolveSPD(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 1, 1, 3})
	b := []float64{1, 2}
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	// Verify A·x = b.
	got := a.MulVec(x)
	for i := range b {
		if !almostEqual(got[i], b[i], 1e-10) {
			t.Fatalf("A·x = %v, want %v", got, b)
		}
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := NewMatrixFrom(2, 2, []float64{2, 0, 1, 3})
	// L·x = [2, 7] → x = [1, 2]
	x := SolveLower(l, []float64{2, 7})
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("SolveLower = %v, want [1 2]", x)
	}
	// Lᵀ·y = [4, 6] → y solves [[2,1],[0,3]]·y = [4,6] → y = [1, 2]
	y := SolveUpper(l, []float64{4, 6})
	if !almostEqual(y[0], 1, 1e-12) || !almostEqual(y[1], 2, 1e-12) {
		t.Fatalf("SolveUpper = %v, want [1 2]", y)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestLogDetFromCholesky(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9}) // |A| = 36
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	if got := LogDetFromCholesky(l); !almostEqual(got, math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want %v", got, math.Log(36))
	}
}

// randomSPD builds an SPD matrix A = Mᵀ·M + n·I from a random M.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	a := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

// Property: for random SPD A, Cholesky succeeds and L·Lᵀ reconstructs A.
func TestCholeskyReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, sz uint8) bool {
		n := int(sz%8) + 1
		_ = seed
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		recon := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEqual(recon.At(i, j), a.At(i, j), 1e-8*float64(n)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveSPD solutions satisfy A·x = b for random SPD systems.
func TestSolveSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(sz uint8) bool {
		n := int(sz%8) + 1
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		got := a.MulVec(x)
		for i := range b {
			if !almostEqual(got[i], b[i], 1e-7*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 4 {
			return true
		}
		vals = vals[:4]
		m := NewMatrixFrom(2, 2, vals)
		tt := m.Transpose().Transpose()
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
