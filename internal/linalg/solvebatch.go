package linalg

import "fmt"

// SolveLowerBatchInto solves L·X = B by forward substitution for m
// right-hand sides at once, in place. b holds B in row-major "i-major"
// layout: b[i*m+c] is row i of column c, so the m right-hand sides are
// interleaved and each substitution step streams contiguous memory.
//
// Per column the arithmetic is exactly SolveLowerInto's — the same
// multiplies, subtracts and divides in the same order — so batch and
// scalar solves are bitwise identical; batching only amortises the
// factor traversal (each L entry is loaded once for all m columns
// instead of once per column). The GP candidate sweep depends on this
// equivalence to keep reproduce output byte-identical.
func (c *Chol) SolveLowerBatchInto(b []float64, m int) {
	n := c.n
	if m < 0 {
		panic(fmt.Sprintf("linalg: SolveLowerBatchInto m %d < 0", m))
	}
	if len(b) != n*m {
		panic(fmt.Sprintf("linalg: SolveLowerBatchInto length %d != %d*%d", len(b), n, m))
	}
	if n == 0 || m == 0 {
		return
	}
	if useBatchAVX2 && m >= 4 {
		solveLowerBatchAVX2(&c.data[0], &b[0], n, m)
		return
	}
	solveLowerBatchGeneric(c.data, b, n, m)
}

// AxpyInto adds a·src into dst elementwise: dst[i] += a·src[i]. The
// vector kernel multiplies and adds with separate individually rounded
// instructions (no FMA), so it is bitwise identical to the scalar
// loop.
func AxpyInto(dst, src []float64, a float64) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("linalg: AxpyInto lengths %d != %d", len(dst), len(src)))
	}
	n := len(dst)
	if n == 0 {
		return
	}
	if useBatchAVX2 && n >= 4 {
		axpyAVX2(&dst[0], &src[0], n, a)
		return
	}
	for i, v := range src {
		dst[i] += a * v
	}
}

// AddSqInto adds src² into dst elementwise: dst[i] += src[i]·src[i],
// with the same bitwise guarantee as AxpyInto.
func AddSqInto(dst, src []float64) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("linalg: AddSqInto lengths %d != %d", len(dst), len(src)))
	}
	n := len(dst)
	if n == 0 {
		return
	}
	if useBatchAVX2 && n >= 4 {
		addSqAVX2(&dst[0], &src[0], n)
		return
	}
	for i, v := range src {
		dst[i] += v * v
	}
}

// solveLowerBatchGeneric is the portable batch forward substitution.
// The assembly kernel must match it bitwise (multiply, subtract and
// divide are individually rounded in both).
func solveLowerBatchGeneric(l, b []float64, n, m int) {
	off := 0 // i*(i+1)/2, advanced incrementally
	for i := 0; i < n; i++ {
		row := l[off : off+i+1]
		bi := b[i*m : i*m+m]
		for k := 0; k < i; k++ {
			lik := row[k]
			bk := b[k*m : k*m+m]
			for cc, v := range bk {
				bi[cc] -= lik * v
			}
		}
		d := row[i]
		for cc := range bi {
			bi[cc] /= d
		}
		off += i + 1
	}
}
