// Package linalg provides small dense linear-algebra primitives used by
// the Gaussian Process surrogate in package bayesopt: symmetric
// positive-definite (SPD) matrices, Cholesky factorisation, and
// triangular solves.
//
// The matrices involved in Falcon's Bayesian optimizer are tiny (the
// observation window is capped at 20 points, so kernels are at most
// 20×20). The implementation therefore favours clarity and numerical
// robustness over blocked/cache-aware performance.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued rows×cols matrix.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a rows×cols matrix from data given in row-major
// order. The slice is copied. It panics if len(data) != rows*cols.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols reports the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·other.
// It panics on a dimension mismatch.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.data[k*other.cols+j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
// It panics if len(v) != m.Cols().
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("linalg: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix
// is not (numerically) symmetric positive-definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of an SPD matrix A so
// that A = L·Lᵀ. The returned matrix has its strictly-upper triangle
// zeroed. It returns ErrNotPositiveDefinite if a non-positive pivot is
// encountered.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for x, where L is lower triangular with a
// non-zero diagonal (forward substitution).
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLower vector length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveUpper solves U·x = b for x, where U is upper triangular with a
// non-zero diagonal (backward substitution). The matrix is addressed as
// the transpose of a lower-triangular factor: U[i][j] = L[j][i].
func SolveUpper(l *Matrix, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveUpper vector length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for SPD A via Cholesky factorisation.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveUpper(l, SolveLower(l, b)), nil
}

// SolveCholesky solves A·x = b given a precomputed Cholesky factor L of
// A (A = L·Lᵀ).
func SolveCholesky(l *Matrix, b []float64) []float64 {
	return SolveUpper(l, SolveLower(l, b))
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// LogDetFromCholesky returns log|A| given the Cholesky factor L of A:
// log|A| = 2·Σ log L[i][i].
func LogDetFromCholesky(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
