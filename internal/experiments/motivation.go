package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// Table1 reports the specifications of the four evaluation testbeds and
// the capacities profiling tools would measure on them ("true"
// capacities, as the paper determines with Iperf and bonnie++).
func Table1(seed int64) (*Result, error) {
	r := &Result{
		ID:     "table1",
		Title:  "Specifications of test environments",
		Header: []string{"Testbed", "Storage", "Bandwidth", "RTT", "Bottleneck", "E2E capacity (Gbps)", "Saturation cc"},
	}
	for _, cfg := range testbed.Table1() {
		eng, err := testbed.NewEngine(cfg, seed)
		if err != nil {
			return nil, err
		}
		r.AddRow(
			cfg.Name,
			cfg.SrcStore.Name+" → "+cfg.DstStore.Name,
			gbps(cfg.LinkCapacity)+"G",
			fmt.Sprintf("%.1fms", cfg.RTT*1000),
			cfg.Bottleneck,
			gbps(eng.EndToEndCapacity()),
			fmt.Sprintf("%d", eng.SaturationConcurrency()),
		)
	}
	r.AddNote("bottlenecks follow the paper's Table 1: Network, Disk Read, Disk Write, NIC")
	return r, nil
}

// Fig1a sweeps concurrency for HPCLab and XSEDE transfers of 1 GiB
// files, reproducing the 3–15× gain over concurrency 1.
func Fig1a(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig1a",
		Title:  "Impact of concurrency on throughput (500×1 GiB)",
		Header: []string{"Concurrency", "HPCLab (Gbps)", "XSEDE (Gbps)"},
	}
	values := []int{1, 2, 4, 8, 12, 16, 24, 32}
	mk := func() *transfer.Task { return endlessTask("sweep", 1) }
	hpclab, _, err := testbed.SweepConcurrency(testbed.HPCLab(), seed, mk, values, 15, 6)
	if err != nil {
		return nil, err
	}
	xsede, _, err := testbed.SweepConcurrency(testbed.XSEDE(), seed, mk, values, 15, 6)
	if err != nil {
		return nil, err
	}
	for i, n := range values {
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", hpclab[i]), fmt.Sprintf("%.2f", xsede[i]))
	}
	r.AddNote("gain over cc=1: HPCLab %.1fx, XSEDE %.1fx (paper: 3-15x)",
		maxOf(hpclab)/hpclab[0], maxOf(xsede)/xsede[0])
	return r, nil
}

// Fig1b profiles the optimal concurrency in each environment — the
// value depends on the testbed, motivating an adaptive solution.
func Fig1b(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig1b",
		Title:  "Optimal concurrency depends on the environment",
		Header: []string{"Environment", "Optimal concurrency", "Throughput at optimum (Gbps)"},
	}
	type env struct {
		name string
		cfg  testbed.Config
		maxN int
	}
	envs := []env{
		{"emulab (10M/proc)", testbed.Emulab(10e6), 16},
		{"emulab-1g (20.8M/proc)", testbed.EmulabGigabit(20.83e6), 56},
		{"xsede", testbed.XSEDE(), 16},
		{"hpclab", testbed.HPCLab(), 16},
		{"campus", testbed.CampusCluster(), 16},
	}
	for _, e := range envs {
		mk := func() *transfer.Task { return endlessTask("opt", 1) }
		opt, err := testbed.OptimalConcurrency(e.cfg, seed, mk, e.maxN, 0.03)
		if err != nil {
			return nil, err
		}
		tputs, _, err := testbed.SweepConcurrency(e.cfg, seed, mk, []int{opt}, 15, 6)
		if err != nil {
			return nil, err
		}
		r.AddRow(e.name, fmt.Sprintf("%d", opt), fmt.Sprintf("%.2f", tputs[0]))
	}
	r.AddNote("no single concurrency value is optimal everywhere — the paper's case for online adaptation")
	return r, nil
}

// Fig2a runs Globus and HARP alone on the HPCLab-class fast network.
// Globus's fixed conservative setting and HARP's wrong-network history
// both leave throughput on the table.
func Fig2a(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig2a",
		Title:  "State-of-the-art single-transfer performance (fast network)",
		Header: []string{"System", "Mean throughput (Gbps)", "Limit"},
	}
	cfg := testbed.HPCLab()
	ds := dataset.Main()

	globus, err := baselines.NewGlobus(ds)
	if err != nil {
		return nil, err
	}
	gt := mustTask("globus", dataset.Uniform("g", 20000, int64(dataset.GB)), globus.Setting())
	tlG, err := runScenario(cfg, seed, 180, testbed.Participant{Task: gt, Controller: globus})
	if err != nil {
		return nil, err
	}
	gTput := tlG.MeanThroughputGbps("globus", 60, 180)

	// HARP trained in a 10 Gbps network (Figure 2a's premise).
	harp, err := baselines.NewHARP(baselines.SyntheticHistory(1.2e9, 9.5e9, 16), 64)
	if err != nil {
		return nil, err
	}
	ht := mustTask("harp", dataset.Uniform("h", 20000, int64(dataset.GB)), harp.Setting())
	tlH, err := runScenario(cfg, seed, 180, testbed.Participant{Task: ht, Controller: harp})
	if err != nil {
		return nil, err
	}
	hTput := tlH.MeanThroughputGbps("harp", 60, 180)

	eng, err := testbed.NewEngine(cfg, seed)
	if err != nil {
		return nil, err
	}
	maxTput := eng.EndToEndCapacity() / 1e9

	r.AddRow("Globus", fmt.Sprintf("%.2f", gTput), "fixed cc=2, never adapts")
	r.AddRow("HARP", fmt.Sprintf("%.2f", hTput), "history from a 10G network caps its belief")
	r.AddRow("(capacity)", fmt.Sprintf("%.2f", maxTput), "")
	r.AddNote("HARP at %.0f%% of capacity (paper: ~50%%); Globus lower still", 100*hTput/maxTput)
	copyChart(r.Chart("throughput"), &tlG.Throughput)
	copyChart(r.Chart("throughput"), &tlH.Throughput)
	return r, nil
}

// Fig2b staggers two HARP transfers: the late-comer observes depressed
// per-process throughput, compensates with more concurrency, and takes
// an unfair share.
func Fig2b(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig2b",
		Title:  "HARP late-comer advantage",
		Header: []string{"Transfer", "Mean throughput while sharing (Gbps)", "Concurrency"},
	}
	cfg := testbed.HPCLab()
	hist := baselines.SyntheticHistory(1.2e9, 9.5e9, 16)
	h1, err := baselines.NewHARP(hist, 64)
	if err != nil {
		return nil, err
	}
	h2, err := baselines.NewHARP(hist, 64)
	if err != nil {
		return nil, err
	}
	// The incumbent recalibrates only once at the start (tune-once), so
	// it cannot respond to the late-comer; the late-comer calibrates
	// *while sharing* and over-provisions.
	h1.Recalibrate = 0
	h2.Recalibrate = 0
	t1 := mustTask("harp-first", dataset.Uniform("h1", 20000, int64(dataset.GB)), h1.Setting())
	t2 := mustTask("harp-second", dataset.Uniform("h2", 20000, int64(dataset.GB)), h2.Setting())
	tl, err := runScenario(cfg, seed, 360,
		testbed.Participant{Task: t1, Controller: h1},
		testbed.Participant{Task: t2, Controller: h2, JoinAt: 120},
	)
	if err != nil {
		return nil, err
	}
	first := tl.MeanThroughputGbps("harp-first", 200, 360)
	second := tl.MeanThroughputGbps("harp-second", 200, 360)
	r.AddRow("first", fmt.Sprintf("%.2f", first), fmt.Sprintf("%d", t1.Setting().Concurrency))
	r.AddRow("second (late-comer)", fmt.Sprintf("%.2f", second), fmt.Sprintf("%d", t2.Setting().Concurrency))
	r.AddNote("late-comer/incumbent throughput ratio %.2fx (paper: ~2x)", second/first)
	copyChart(r.Chart("throughput"), &tl.Throughput)
	return r, nil
}

// Fig4 sweeps concurrency on the Emulab topology of Figure 3 (10 Mbps
// per-process I/O, 100 Mbps bottleneck link) and reports throughput and
// packet loss: loss stays below ~2 % up to the saturating concurrency
// of 10, then grows steeply toward ~10 % at 32.
func Fig4(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig4",
		Title:  "Concurrency vs throughput and packet loss (Emulab)",
		Header: []string{"Concurrency", "Throughput (Mbps)", "Packet loss"},
	}
	cfg := testbed.Emulab(10e6)
	cfg.NoiseStdDev = 0
	values := []int{1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32}
	mk := func() *transfer.Task { return endlessTask("sweep", 1) }
	tputs, losses, err := testbed.SweepConcurrency(cfg, seed, mk, values, 15, 6)
	if err != nil {
		return nil, err
	}
	knee := -1
	for i, n := range values {
		r.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", tputs[i]*1000), pct(losses[i]))
		if knee < 0 && losses[i] > 0.02 {
			knee = n
		}
	}
	r.AddNote("loss exceeds 2%% first at cc=%d (paper: just past 10); loss at 32 = %s (paper: ~10%%)",
		knee, pct(losses[len(losses)-1]))
	return r, nil
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
