package experiments

import (
	"testing"

	"repro/internal/parallel"
	"repro/internal/testbed"
)

// TestParallelRunMatchesSerial: the worker-pool harness must be
// invisible in the output — running a mix of experiments (including
// sweep-based fig1a and the internally-parallel fig9) across several
// workers yields renders byte-identical to a fully serial run with the
// same seed.
func TestParallelRunMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	ids := []string{"fig1a", "fig9", "abl-window"}
	runners := make([]Runner, 0, len(ids))
	for _, id := range ids {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		runners = append(runners, r)
	}
	const seed = 1

	render := func(workers int) []string {
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		outs := Run(runners, seed, workers)
		strs := make([]string, len(outs))
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("%s (workers=%d): %v", out.Runner.ID, workers, out.Err)
			}
			strs[i] = out.Result.String()
		}
		return strs
	}

	serial := render(1)
	for _, workers := range []int{2, 4} {
		got := render(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("%s: workers=%d output differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
					runners[i].ID, workers, serial[i], workers, got[i])
			}
		}
	}
}

// TestExactSteppingMatchesBatched: the engine's event-horizon stepping
// (the default) must render every experiment byte-identically to the
// exact always-tick path (-exact on the cmds), serial and parallel
// alike — the end-to-end form of the ISSUE's bit-exactness guarantee.
func TestExactSteppingMatchesBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiments")
	}
	ids := []string{"fig1a", "fig9", "abl-window"}
	runners := make([]Runner, 0, len(ids))
	for _, id := range ids {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		runners = append(runners, r)
	}
	const seed = 1

	render := func(exact bool, workers int) []string {
		testbed.SetDefaultExact(exact)
		defer testbed.SetDefaultExact(false)
		old := parallel.Workers()
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		outs := Run(runners, seed, workers)
		strs := make([]string, len(outs))
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("%s (exact=%v workers=%d): %v", out.Runner.ID, exact, workers, out.Err)
			}
			strs[i] = out.Result.String()
		}
		return strs
	}

	exact := render(true, 1)
	for _, workers := range []int{1, 4} {
		got := render(false, workers)
		for i := range exact {
			if got[i] != exact[i] {
				t.Errorf("%s: batched (workers=%d) output differs from exact:\n--- exact ---\n%s\n--- batched ---\n%s",
					runners[i].ID, workers, exact[i], got[i])
			}
		}
	}
}
