package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// fleetStats is the distilled measurement a fleet run's metrics are
// rendered from, produced identically by the full-fidelity timeline
// path and the streaming aggregate recorder: the fleet-wide convergence
// time and each session's equilibrium mean throughput (Gbps, session
// index order).
type fleetStats struct {
	converged float64
	eqMeans   []float64
}

// fleetRecorder is the testbed.Recorder behind RecordAggregate fleet
// runs. Instead of materializing per-session throughput series —
// O(sessions × samples) memory, ~GBs at a million sessions — it folds
// every recording point into per-session per-window (sum, count)
// accumulators: the overlapping convergence windows the full-fidelity
// path slides from the last join, plus the equilibrium quarter.
// That is constant space per session per window, and because each
// window's sum accumulates in the same time order the timeline's
// Between(t0,t1).Mean() would sum, the resulting means — and every
// metric derived from them — are bitwise identical to full mode.
//
// Concurrency: Attach and Record are called from shard worker
// goroutines, never for the same session from two goroutines. The
// handle is parsed from the session ID, and every write lands in the
// session's own slots, so there is no shared mutable state.
type fleetRecorder struct {
	sessions int
	slots    int // len(winStart) convergence windows + 1 equilibrium slot

	// winStart is built by the same repeated t += window/2 additions
	// the full-fidelity convergence scan performs, and winEnd[j] is the
	// single add winStart[j]+window it passes to Between — so every
	// boundary comparison is bit-identical across modes.
	winStart []float64
	winEnd   []float64
	halfWin  float64
	lastJoin float64
	eq0, eq1 float64

	sum []float64 // sessions × slots
	cnt []int32   // sessions × slots
}

// newFleetRecorder sizes the accumulators for a fleet of the given
// shape. Windows replicate fleetStatsFromTimeline: width duration/10,
// slid from lastJoin in half-window steps while they fit the horizon,
// and the equilibrium slot covers [duration·3/4, duration).
func newFleetRecorder(sessions int, duration, lastJoin float64) *fleetRecorder {
	window := duration / 10
	r := &fleetRecorder{
		sessions: sessions,
		halfWin:  window / 2,
		lastJoin: lastJoin,
		eq0:      duration * 3 / 4,
		eq1:      duration,
	}
	for t := lastJoin; t+window <= duration; t += window / 2 {
		r.winStart = append(r.winStart, t)
		r.winEnd = append(r.winEnd, t+window)
	}
	r.slots = len(r.winStart) + 1
	r.sum = make([]float64, sessions*r.slots)
	r.cnt = make([]int32, sessions*r.slots)
	return r
}

// Attach recovers the session index from its fleet ID ("s<index>-…").
func (r *fleetRecorder) Attach(id string) int32 {
	if len(id) < 2 || id[0] != 's' {
		panic(fmt.Sprintf("experiments: fleet recorder attached to non-fleet session %q", id))
	}
	i := 0
	k := 1
	for ; k < len(id) && id[k] != '-'; k++ {
		c := id[k]
		if c < '0' || c > '9' {
			panic(fmt.Sprintf("experiments: fleet recorder attached to non-fleet session %q", id))
		}
		i = i*10 + int(c-'0')
	}
	if k == 1 || i >= r.sessions {
		panic(fmt.Sprintf("experiments: fleet session %q out of range (%d sessions)", id, r.sessions))
	}
	return int32(i)
}

// Record folds one recording point into every window containing its
// time. Half-overlapping windows mean a point lands in at most two; the
// float-division locator only narrows the candidates, membership itself
// is decided against the exact winStart/winEnd bounds.
func (r *fleetRecorder) Record(h int32, t, gbps float64) {
	base := int(h) * r.slots
	if n := len(r.winStart); n > 0 && t >= r.winStart[0] {
		j0 := int((t - r.lastJoin) / r.halfWin)
		lo, hi := j0-1, j0+1
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			if t >= r.winStart[j] && t < r.winEnd[j] {
				r.sum[base+j] += gbps
				r.cnt[base+j]++
			}
		}
	}
	if t >= r.eq0 && t < r.eq1 {
		r.sum[base+r.slots-1] += gbps
		r.cnt[base+r.slots-1]++
	}
}

// stats distills the accumulators into fleetStats, replaying the
// full-fidelity path's arithmetic: per-window per-session means in
// session index order, first window whose Jain index reaches 0.9.
func (r *fleetRecorder) stats() *fleetStats {
	mean := func(i, j int) float64 {
		c := r.cnt[i*r.slots+j]
		if c == 0 {
			return 0
		}
		return r.sum[i*r.slots+j] / float64(c)
	}
	converged := -1.0
	means := make([]float64, r.sessions)
	for j := range r.winStart {
		for i := 0; i < r.sessions; i++ {
			means[i] = mean(i, j)
		}
		if stats.JainIndex(means) >= 0.9 {
			converged = r.winStart[j]
			break
		}
	}
	eqMeans := make([]float64, r.sessions)
	for i := range eqMeans {
		eqMeans[i] = mean(i, r.slots-1)
	}
	return &fleetStats{converged: converged, eqMeans: eqMeans}
}
