package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

// Fig14 compares Falcon (GD and BO) against Globus and HARP for the
// 1 TB dataset on the three real-cluster testbeds.
func Fig14(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig14",
		Title:  "Falcon vs state-of-the-art (1 TB dataset)",
		Header: []string{"Testbed", "Globus (Gbps)", "HARP (Gbps)", "Falcon-GD (Gbps)", "Falcon-BO (Gbps)", "Falcon/Globus"},
	}
	ds := dataset.Main()
	// HARP history: trained on a 10 Gbps-class network, as the paper's
	// deployments were.
	hist := baselines.SyntheticHistory(1.2e9, 9.5e9, 16)
	for _, cfg := range []testbed.Config{testbed.HPCLab(), testbed.XSEDE(), testbed.CampusCluster()} {
		horizon := 300.0
		run := func(name string, ctrl testbed.Controller, initial transfer.Setting) (float64, error) {
			task := mustTask(name, dataset.Uniform(name, 20000, int64(dataset.GB)), initial)
			tl, err := runScenario(cfg, seed, horizon, testbed.Participant{Task: task, Controller: ctrl})
			if err != nil {
				return 0, err
			}
			return tl.MeanThroughputGbps(name, horizon*0.4, horizon), nil
		}
		globus, err := baselines.NewGlobus(ds)
		if err != nil {
			return nil, err
		}
		gT, err := run("globus", globus, globus.Setting())
		if err != nil {
			return nil, err
		}
		harp, err := baselines.NewHARP(hist, 64)
		if err != nil {
			return nil, err
		}
		hT, err := run("harp", harp, harp.Setting())
		if err != nil {
			return nil, err
		}
		start := transfer.DefaultSetting()
		start.Concurrency = 2
		gdT, err := run("falcon-gd", core.NewGDAgent(32), start)
		if err != nil {
			return nil, err
		}
		boT, err := run("falcon-bo", core.NewBOAgent(32, seed), start)
		if err != nil {
			return nil, err
		}
		r.AddRow(cfg.Name,
			fmt.Sprintf("%.2f", gT), fmt.Sprintf("%.2f", hT),
			fmt.Sprintf("%.2f", gdT), fmt.Sprintf("%.2f", boT),
			fmt.Sprintf("%.1fx", gdT/gT))
		r.AddNote("%s: Falcon over Globus %.1fx (paper: 2-6x), over HARP %.1fx (paper: 1.3-1.5x on HPCLab/XSEDE)",
			cfg.Name, gdT/gT, gdT/hT)
	}
	return r, nil
}

// Fig15 compares single-parameter Falcon (concurrency only) with
// multi-parameter Falcon_MP (concurrency, parallelism, pipelining) on
// the Stampede2–Comet WAN for the small, large, and mixed datasets.
func Fig15(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig15",
		Title:  "Single- vs multi-parameter Falcon (Stampede2–Comet WAN)",
		Header: []string{"Dataset", "Falcon (Gbps)", "Falcon_MP (Gbps)", "MP gain"},
	}
	cfg := testbed.StampedeCometWAN()
	sets := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"small", dataset.Small(seed)},
		{"large", dataset.Large(seed)},
		{"mixed", dataset.Mixed(seed)},
	}
	horizon := 420.0
	for _, s := range sets {
		start := transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}
		single := core.NewGDAgent(32)
		tl1, err := runScenario(cfg, seed, horizon,
			testbed.Participant{Task: mustTask("falcon", s.ds, start), Controller: single})
		if err != nil {
			return nil, err
		}
		t1 := tl1.MeanThroughputGbps("falcon", horizon*0.3, horizon)

		multi := core.NewDefaultMultiAgent(32, 8, 32)
		startMP := transfer.Setting{Concurrency: 2, Parallelism: 2, Pipelining: 2}
		tl2, err := runScenario(cfg, seed, horizon,
			testbed.Participant{Task: mustTask("falcon-mp", s.ds, startMP), Controller: multi})
		if err != nil {
			return nil, err
		}
		t2 := tl2.MeanThroughputGbps("falcon-mp", horizon*0.3, horizon)
		r.AddRow(s.name, fmt.Sprintf("%.2f", t1), fmt.Sprintf("%.2f", t2), fmt.Sprintf("%+.0f%%", 100*(t2/t1-1)))
	}
	r.AddNote("paper: MP up to +30%% for small/mixed (pipelining), −18%% for large (slower convergence, non-concave Eq 7)")
	return r, nil
}

// Fig16 measures Falcon's friendliness toward Globus and HARP: on the
// WAN, Globus starts first, HARP second, then a Falcon agent joins.
// GD utilises the spare capacity with only marginal impact; BO probes
// high concurrency and is markedly more aggressive.
func Fig16(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig16",
		Title:  "Friendliness toward non-Falcon transfers (Stampede2–Comet WAN)",
		Header: []string{"Scenario", "Globus (Gbps)", "HARP (Gbps)", "Falcon (Gbps)", "Steady impact", "Worst 30s dip"},
	}
	cfg := testbed.StampedeCometWAN()
	ds := dataset.Friendliness(seed)
	horizon := 600.0

	run := func(label, algo string) error {
		globus, err := baselines.NewGlobus(ds)
		if err != nil {
			return err
		}
		harp, err := baselines.NewHARP(baselines.SyntheticHistory(1.1e9, 10.5e9, 16), 64)
		if err != nil {
			return err
		}
		falcon, err := core.NewAgentByName(algo, 64, seed)
		if err != nil {
			return err
		}
		start := transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}
		tl, err := runScenario(cfg, seed, horizon,
			testbed.Participant{Task: mustTask("globus", dataset.Uniform("g", 20000, int64(dataset.GB)), globus.Setting()), Controller: globus},
			testbed.Participant{Task: mustTask("harp", dataset.Uniform("h", 20000, int64(dataset.GB)), harp.Setting()), Controller: harp, JoinAt: 60},
			testbed.Participant{Task: mustTask("falcon", dataset.Uniform("f", 20000, int64(dataset.GB)), start), Controller: falcon, JoinAt: 120},
		)
		if err != nil {
			return err
		}
		// Throughput of the incumbents before vs after Falcon joins:
		// steady-state impact plus the worst 30 s window (BO's
		// high-concurrency probing shows up as a transient dip even
		// when its equilibrium is polite).
		gBefore := tl.MeanThroughputGbps("globus", 80, 120)
		hBefore := tl.MeanThroughputGbps("harp", 90, 120)
		gAfter := tl.MeanThroughputGbps("globus", 300, horizon)
		hAfter := tl.MeanThroughputGbps("harp", 300, horizon)
		fT := tl.MeanThroughputGbps("falcon", 300, horizon)
		worst := gBefore + hBefore
		for t0 := 130.0; t0+30 <= horizon; t0 += 10 {
			if v := tl.MeanThroughputGbps("globus", t0, t0+30) + tl.MeanThroughputGbps("harp", t0, t0+30); v < worst {
				worst = v
			}
		}
		impact := 100 * (1 - (gAfter+hAfter)/(gBefore+hBefore))
		dip := 100 * (1 - worst/(gBefore+hBefore))
		r.AddRow(label,
			fmt.Sprintf("%.2f→%.2f", gBefore, gAfter),
			fmt.Sprintf("%.2f→%.2f", hBefore, hAfter),
			fmt.Sprintf("%.2f", fT),
			fmt.Sprintf("%.0f%%", impact),
			fmt.Sprintf("%.0f%%", dip))
		copyChart(r.Chart("throughput-"+label), &tl.Throughput)
		return nil
	}
	if err := run("Falcon-GD joins", core.AlgoGradient); err != nil {
		return nil, err
	}
	if err := run("Falcon-BO joins", core.AlgoBayesian); err != nil {
		return nil, err
	}
	r.AddNote("paper: GD affects incumbents only 15-20%%; BO is aggressive (up to ~70%% degradation)")
	return r, nil
}
