package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Fig7 compares the convergence speed of Hill Climbing, Gradient
// Descent, and Bayesian Optimization when the optimal concurrency is
// ≈48 (Emulab, 1 Gbps link, ≈20.8 Mbps per process).
func Fig7(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig7",
		Title:  "Convergence to the optimal concurrency (≈48) by search algorithm",
		Header: []string{"Algorithm", "Time to reach ≥43 (s)", "Throughput after convergence (Mbps)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	type res struct {
		name  string
		reach float64
		tput  float64
	}
	var results []res
	for _, algo := range []string{core.AlgoHillClimbing, core.AlgoGradient, core.AlgoBayesian} {
		agent, err := core.NewAgentByName(algo, 100, seed)
		if err != nil {
			return nil, err
		}
		tl, err := runScenario(cfg, seed, 900, testbed.Participant{Task: endlessTask(algo, 2), Controller: agent})
		if err != nil {
			return nil, err
		}
		reach := -1.0
		for _, p := range tl.Concurrency.Lookup(algo).Points {
			if p.Value >= 43 {
				reach = p.Time
				break
			}
		}
		tput := tl.MeanThroughputGbps(algo, 700, 900)
		results = append(results, res{algo, reach, tput})
		copyChart(r.Chart("concurrency"), &tl.Concurrency)
	}
	for _, x := range results {
		reachStr := "never"
		if x.reach >= 0 {
			reachStr = fmt.Sprintf("%.0f", x.reach)
		}
		r.AddRow(x.name, reachStr, fmt.Sprintf("%.0f", x.tput*1000))
	}
	if results[0].reach > 0 && results[1].reach > 0 {
		r.AddNote("HC/GD convergence-time ratio %.1fx (paper: ~7x; GD+BO <30s, HC >250s)",
			results[0].reach/results[1].reach)
	}
	return r, nil
}

// Fig8 runs two Hill Climbing Falcon agents against each other: unit
// steps make both convergence and fairness painfully slow compared to
// GD/BO (reported alongside for contrast).
func Fig8(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig8",
		Title:  "Competing transfers under Hill Climbing vs Gradient Descent",
		Header: []string{"Algorithm pair", "Jain index (mid-run)", "Jain index (late)", "Aggregate (Mbps, late)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	run := func(mk func() testbed.Controller, label string) error {
		tl, err := runScenario(cfg, seed, 900,
			testbed.Participant{Task: endlessTask(label+"-a", 2), Controller: mk()},
			testbed.Participant{Task: endlessTask(label+"-b", 2), Controller: mk(), JoinAt: 120},
		)
		if err != nil {
			return err
		}
		midA := tl.MeanThroughputGbps(label+"-a", 240, 420)
		midB := tl.MeanThroughputGbps(label+"-b", 240, 420)
		lateA := tl.MeanThroughputGbps(label+"-a", 700, 900)
		lateB := tl.MeanThroughputGbps(label+"-b", 700, 900)
		r.AddRow(label,
			fmt.Sprintf("%.3f", stats.JainIndex([]float64{midA, midB})),
			fmt.Sprintf("%.3f", stats.JainIndex([]float64{lateA, lateB})),
			fmt.Sprintf("%.0f", (lateA+lateB)*1000))
		copyChart(r.Chart("throughput-"+label), &tl.Throughput)
		return nil
	}
	if err := run(func() testbed.Controller { return core.NewHCAgent(100) }, "hc"); err != nil {
		return nil, err
	}
	if err := run(func() testbed.Controller { return core.NewGDAgent(100) }, "gd"); err != nil {
		return nil, err
	}
	r.AddNote("HC reaches fairness eventually but far more slowly than GD (paper Figure 8)")
	return r, nil
}
