package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// FleetConfig parameterizes a fleet-scale contention run: many
// concurrent Falcon sessions optimizing independently against one
// shared bottleneck. It is the workload the flow-class aggregated
// allocator exists for — hundreds of flows collapsing to a handful of
// classes.
type FleetConfig struct {
	// Sessions is the number of concurrent transfer sessions.
	Sessions int
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Stagger is the join spacing in seconds: session i joins at
	// i*Stagger, so the fleet ramps up instead of thundering in at t=0.
	Stagger float64
	// MaxN bounds each agent's concurrency search domain.
	MaxN int
	// Seed is the base seed; session i's agent is seeded Seed+i.
	Seed int64
	// Algorithms are cycled across sessions by index. Empty means
	// the hc/gd/bo mix.
	Algorithms []string
	// Links is the number of independent 10 Gbps bottleneck links.
	// Session i routes over link i mod Links, and each link runs as
	// its own shard (testbed.ShardSet) because its sessions never
	// contend with the others'. Default 1 — the classic single
	// shared bottleneck, executed exactly as before.
	Links int
	// Workers bounds how many shards step concurrently (≤1 serial,
	// 0 the parallel harness default). Never affects output.
	Workers int
}

// withDefaults fills zero fields with the standard fleet shape:
// 500 sessions for 600 s on one 10 Gbps bottleneck.
func (c FleetConfig) withDefaults() FleetConfig {
	if c.Sessions <= 0 {
		c.Sessions = 500
	}
	if c.Duration <= 0 {
		c.Duration = 600
	}
	if c.Stagger < 0 {
		c.Stagger = 0
	}
	if c.MaxN <= 0 {
		c.MaxN = 8
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{core.AlgoHillClimbing, core.AlgoGradient, core.AlgoBayesian}
	}
	if c.Links <= 0 {
		c.Links = 1
	}
	return c
}

// FleetSummary is the machine-readable distillation of a fleet run,
// for cmd/fleet -json and the benchmark harness.
type FleetSummary struct {
	Sessions        int     `json:"sessions"`
	Links           int     `json:"links"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ConvergedAtSeconds is the earliest window start at which the
	// fleet-wide Jain index reached 0.9, or -1 when it never did.
	ConvergedAtSeconds float64 `json:"converged_at_seconds"`
	EquilibriumJain    float64 `json:"equilibrium_jain"`
	AggregateGbps      float64 `json:"aggregate_gbps"`
}

// FleetTestbed returns the shared-bottleneck environment for fleet
// runs: a 10 Gbps WAN-ish path (30 ms RTT) whose storage and hosts are
// provisioned far above the link, so every session contends for the
// same network resource. Per-process storage caps are loose enough
// that the per-connection cap is the stream cap, identical across the
// fleet — with one parallelism setting in play, every flow lands in a
// handful of classes regardless of session count. The environment
// itself is the scenario subsystem's "fleet" preset; this is a thin
// wrapper so fleet experiments, scenario documents, and the cmds all
// resolve the same config.
func FleetTestbed() testbed.Config {
	cfg, ok := scenario.PresetConfig("fleet")
	if !ok {
		panic("experiments: scenario preset \"fleet\" missing")
	}
	return cfg
}

// Fleet runs cfg.Sessions concurrent Falcon sessions (HC/GD/BO mix by
// default) against the shared FleetTestbed bottleneck and reports
// convergence time, Jain's fairness index, and aggregate throughput.
//
// Convergence time is the earliest window start t ≥ the last join at
// which Jain's index over per-session mean throughputs in [t, t+W]
// reaches 0.9 (W is a tenth of the horizon, slid in half-window
// steps). Equilibrium metrics are taken over the final quarter of the
// run.
//
// Fleet is intentionally NOT registered in All(): it is a scale/stress
// workload driven by cmd/fleet, not a paper figure, and adding it to
// the registry would change reproduce output.
func Fleet(cfg FleetConfig) (*Result, *FleetSummary, error) {
	cfg = cfg.withDefaults()
	bottle := fmt.Sprintf("one %.0f Gbps bottleneck", FleetTestbed().LinkCapacity/1e9)
	if cfg.Links > 1 {
		bottle = fmt.Sprintf("%d × %.0f Gbps bottlenecks", cfg.Links, FleetTestbed().LinkCapacity/1e9)
	}
	r := &Result{
		ID: "fleet",
		Title: fmt.Sprintf("Fleet contention: %d sessions (%s) on %s",
			cfg.Sessions, strings.Join(cfg.Algorithms, "/"), bottle),
		Header: []string{"Algorithm", "Sessions", "Mean per-session (Mbps, equilibrium)", "Jain (within algo)"},
	}

	parts := make([]testbed.Participant, cfg.Sessions)
	ids := make([]string, cfg.Sessions)
	algoOf := make([]string, cfg.Sessions)
	for i := range parts {
		algo := cfg.Algorithms[i%len(cfg.Algorithms)]
		agent, err := core.NewAgentByName(algo, cfg.MaxN, cfg.Seed+int64(i))
		if err != nil {
			return nil, nil, err
		}
		id := fmt.Sprintf("s%04d-%s", i, algo)
		ids[i] = id
		algoOf[i] = algo
		parts[i] = testbed.Participant{
			Task:       fleetTask(id, 2),
			Controller: agent,
			JoinAt:     float64(i) * cfg.Stagger,
		}
	}
	var tl *testbed.Timeline
	if cfg.Links == 1 {
		// The classic single shared bottleneck, on the exact code path
		// fleet runs have always used.
		var err error
		tl, err = runScenario(FleetTestbed(), cfg.Seed, cfg.Duration, parts...)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Session i routes over link i mod Links; each link's sessions
		// form an independent contention domain, so each runs as its
		// own shard and the shards step in parallel.
		shards := make([]testbed.ShardSpec, cfg.Links)
		for k := range shards {
			shards[k] = testbed.ShardSpec{
				Key:    fmt.Sprintf("lnk%d", k),
				Config: FleetTestbed(),
				Seed:   cfg.Seed + int64(k),
			}
		}
		for i := range parts {
			k := i % cfg.Links
			shards[k].Parts = append(shards[k].Parts, parts[i])
		}
		ss, err := testbed.NewShardSet(shards, 1)
		if err != nil {
			return nil, nil, err
		}
		ss.SetWorkers(cfg.Workers)
		tl, err = ss.Run(cfg.Duration, 0.25)
		if err != nil {
			return nil, nil, err
		}
	}

	lastJoin := float64(cfg.Sessions-1) * cfg.Stagger
	if lastJoin >= cfg.Duration {
		return nil, nil, fmt.Errorf("fleet: last join %.0fs is past the %.0fs horizon", lastJoin, cfg.Duration)
	}

	// Convergence: slide a window of a tenth of the horizon from the
	// last join forward in half-window steps until the fleet-wide Jain
	// index over per-session means reaches 0.9.
	window := cfg.Duration / 10
	fleetJain := func(t0, t1 float64) float64 {
		means := make([]float64, cfg.Sessions)
		for i, id := range ids {
			means[i] = tl.MeanThroughputGbps(id, t0, t1)
		}
		return stats.JainIndex(means)
	}
	converged := -1.0
	for t := lastJoin; t+window <= cfg.Duration; t += window / 2 {
		if fleetJain(t, t+window) >= 0.9 {
			converged = t
			break
		}
	}

	// Equilibrium: final quarter of the run.
	eq0, eq1 := cfg.Duration*3/4, cfg.Duration
	eqMeans := make([]float64, cfg.Sessions)
	aggregate := 0.0
	perAlgo := map[string][]float64{}
	for i, id := range ids {
		m := tl.MeanThroughputGbps(id, eq0, eq1)
		eqMeans[i] = m
		aggregate += m
		perAlgo[algoOf[i]] = append(perAlgo[algoOf[i]], m)
	}
	eqJain := stats.JainIndex(eqMeans)

	algos := make([]string, 0, len(perAlgo))
	for a := range perAlgo {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	for _, a := range algos {
		ms := perAlgo[a]
		sum := 0.0
		for _, m := range ms {
			sum += m
		}
		r.AddRow(a, fmt.Sprintf("%d", len(ms)),
			fmt.Sprintf("%.1f", sum/float64(len(ms))*1000),
			fmt.Sprintf("%.3f", stats.JainIndex(ms)))
	}
	if converged >= 0 {
		r.AddNote("fleet Jain ≥0.9 from t=%.0fs (last join %.0fs, window %.0fs)", converged, lastJoin, window)
	} else {
		r.AddNote("fleet Jain never reached 0.9 after the last join at %.0fs", lastJoin)
	}
	if cfg.Links == 1 {
		r.AddNote("equilibrium [%.0fs, %.0fs]: Jain %.3f, aggregate %.2f Gbps (link %.0f Gbps)",
			eq0, eq1, eqJain, aggregate, FleetTestbed().LinkCapacity/1e9)
	} else {
		r.AddNote("equilibrium [%.0fs, %.0fs]: Jain %.3f, aggregate %.2f Gbps (%d × %.0f Gbps links)",
			eq0, eq1, eqJain, aggregate, cfg.Links, FleetTestbed().LinkCapacity/1e9)
	}
	sum := &FleetSummary{
		Sessions:           cfg.Sessions,
		Links:              cfg.Links,
		DurationSeconds:    cfg.Duration,
		ConvergedAtSeconds: converged,
		EquilibriumJain:    eqJain,
		AggregateGbps:      aggregate,
	}
	return r, sum, nil
}
