package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bayesopt"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// FleetConfig parameterizes a fleet-scale contention run: many
// concurrent Falcon sessions optimizing independently against one
// shared bottleneck. It is the workload the flow-class aggregated
// allocator exists for — hundreds of flows collapsing to a handful of
// classes.
type FleetConfig struct {
	// Sessions is the number of concurrent transfer sessions.
	Sessions int
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Stagger is the join spacing in seconds: session i joins at
	// i*Stagger, so the fleet ramps up instead of thundering in at t=0.
	Stagger float64
	// MaxN bounds each agent's concurrency search domain.
	MaxN int
	// Seed is the base seed; session i's agent is seeded Seed+i
	// (Seed + i mod SeedGroups when SeedGroups > 0).
	Seed int64
	// Algorithms are cycled across sessions by index. Empty means
	// the hc/gd/bo mix.
	Algorithms []string
	// Links is the number of independent 10 Gbps bottleneck links.
	// Session i routes over link i mod Links, and each link runs as
	// its own shard (testbed.ShardSet) because its sessions never
	// contend with the others'. Default 1 — the classic single
	// shared bottleneck.
	Links int
	// Workers bounds how many shards step concurrently (≤1 serial,
	// 0 the parallel harness default). Never affects output.
	Workers int
	// RecordMode selects the run's recording fidelity: "full" (the
	// default) keeps per-session throughput/concurrency/loss series,
	// "aggregate" streams recording points into constant-space
	// per-window accumulators (the million-session memory diet), and
	// "off" records nothing. Every reported metric is bitwise
	// identical between full and aggregate; off skips metrics
	// entirely.
	RecordMode string
	// Memo enables cross-session decision memoization: agents in the
	// same shard share per-algorithm decision caches, so identically-
	// seeded sessions in identical states reuse each other's search
	// work instead of re-running it. Decisions are bitwise identical
	// with the memo on or off; it only pays off when sessions actually
	// coincide (NoNoise plus SeedGroups).
	Memo bool
	// NoNoise zeroes the environment's measurement noise, making
	// same-seed sessions on the same link exact twins — the setting
	// under which memoization hits.
	NoNoise bool
	// SeedGroups, when positive, seeds session i's agent with
	// Seed + i mod SeedGroups instead of Seed + i, creating
	// SeedGroups distinct agent populations whose members are
	// identical — the fleet-scale workload memoization collapses.
	// Join times then cycle with period lcm(Links, SeedGroups,
	// len(Algorithms)) instead of growing without bound, so sessions
	// with identical (link, seed, algorithm) join at the same instant:
	// joined together on one link with equal settings, such twins
	// receive bitwise-equal samples forever and the shared decision
	// caches hit. Staggered twins would interleave with evolving
	// contention and never coincide.
	SeedGroups int
}

// withDefaults fills zero fields with the standard fleet shape:
// 500 sessions for 600 s on one 10 Gbps bottleneck.
func (c FleetConfig) withDefaults() FleetConfig {
	if c.Sessions <= 0 {
		c.Sessions = 500
	}
	if c.Duration <= 0 {
		c.Duration = 600
	}
	if c.Stagger < 0 {
		c.Stagger = 0
	}
	if c.MaxN <= 0 {
		c.MaxN = 8
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{core.AlgoHillClimbing, core.AlgoGradient, core.AlgoBayesian}
	}
	if c.Links <= 0 {
		c.Links = 1
	}
	if c.RecordMode == "" {
		c.RecordMode = testbed.RecordFull.String()
	}
	return c
}

// FleetSummary is the machine-readable distillation of a fleet run,
// for cmd/fleet -json and the benchmark harness.
type FleetSummary struct {
	Sessions        int     `json:"sessions"`
	Links           int     `json:"links"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ConvergedAtSeconds is the earliest window start at which the
	// fleet-wide Jain index reached 0.9, or -1 when it never did.
	ConvergedAtSeconds float64 `json:"converged_at_seconds"`
	EquilibriumJain    float64 `json:"equilibrium_jain"`
	AggregateGbps      float64 `json:"aggregate_gbps"`
	// RecordMode is the recording fidelity the run used.
	RecordMode string `json:"record_mode"`
	// Decision/sweep memo counters aggregate across shards; rates are
	// hits/lookups, or 0 when the memo was off (no lookups).
	DecisionMemoHits    uint64  `json:"decision_memo_hits"`
	DecisionMemoLookups uint64  `json:"decision_memo_lookups"`
	DecisionMemoHitRate float64 `json:"decision_memo_hit_rate"`
	SweepMemoHits       uint64  `json:"sweep_memo_hits"`
	SweepMemoLookups    uint64  `json:"sweep_memo_lookups"`
	SweepMemoHitRate    float64 `json:"sweep_memo_hit_rate"`
}

// FleetTestbed returns the shared-bottleneck environment for fleet
// runs: a 10 Gbps WAN-ish path (30 ms RTT) whose storage and hosts are
// provisioned far above the link, so every session contends for the
// same network resource. Per-process storage caps are loose enough
// that the per-connection cap is the stream cap, identical across the
// fleet — with one parallelism setting in play, every flow lands in a
// handful of classes regardless of session count. The environment
// itself is the scenario subsystem's "fleet" preset; this is a thin
// wrapper so fleet experiments, scenario documents, and the cmds all
// resolve the same config.
func FleetTestbed() testbed.Config {
	cfg, ok := scenario.PresetConfig("fleet")
	if !ok {
		panic("experiments: scenario preset \"fleet\" missing")
	}
	return cfg
}

// Fleet runs cfg.Sessions concurrent Falcon sessions (HC/GD/BO mix by
// default) against the shared FleetTestbed bottleneck and reports
// convergence time, Jain's fairness index, and aggregate throughput.
//
// Convergence time is the earliest window start t ≥ the last join at
// which Jain's index over per-session mean throughputs in [t, t+W]
// reaches 0.9 (W is a tenth of the horizon, slid in half-window
// steps). Equilibrium metrics are taken over the final quarter of the
// run.
//
// Fleet is intentionally NOT registered in All(): it is a scale/stress
// workload driven by cmd/fleet, not a paper figure, and adding it to
// the registry would change reproduce output.
func Fleet(cfg FleetConfig) (*Result, *FleetSummary, error) {
	cfg = cfg.withDefaults()
	mode, err := testbed.ParseRecordMode(cfg.RecordMode)
	if err != nil {
		return nil, nil, err
	}
	env := FleetTestbed()
	if cfg.NoNoise {
		env.NoiseStdDev = 0
	}
	bottle := fmt.Sprintf("one %.0f Gbps bottleneck", env.LinkCapacity/1e9)
	if cfg.Links > 1 {
		bottle = fmt.Sprintf("%d × %.0f Gbps bottlenecks", cfg.Links, env.LinkCapacity/1e9)
	}
	r := &Result{
		ID: "fleet",
		Title: fmt.Sprintf("Fleet contention: %d sessions (%s) on %s",
			cfg.Sessions, strings.Join(cfg.Algorithms, "/"), bottle),
		Header: []string{"Algorithm", "Sessions", "Mean ± σ (Mbps, equilibrium)", "p50/p90/p99 (Mbps)", "Jain (within algo)"},
	}

	// Join times: session i joins at (i mod joinPeriod)·Stagger. With
	// all-distinct seeds the period is the whole fleet (the classic
	// ramp); with seed groups it is the twin-class period, so exact
	// twins join together (see SeedGroups).
	joinPeriod := cfg.Sessions
	if cfg.SeedGroups > 0 {
		joinPeriod = lcm(cfg.Links, lcm(cfg.SeedGroups, len(cfg.Algorithms)))
	}
	lastSlot := cfg.Sessions - 1
	if joinPeriod < cfg.Sessions {
		lastSlot = joinPeriod - 1
	}
	lastJoin := float64(lastSlot) * cfg.Stagger
	if lastJoin >= cfg.Duration {
		return nil, nil, fmt.Errorf("fleet: last join %.0fs is past the %.0fs horizon", lastJoin, cfg.Duration)
	}

	// Per-shard decision caches. Sessions never migrate between shards,
	// and each shard steps on one goroutine, so the memos need no
	// locking; agents of the snapshot-able searchers share the shard's
	// DecisionMemo and BO agents its SweepMemo.
	var dms []*core.DecisionMemo
	var sms []*bayesopt.SweepMemo
	if cfg.Memo {
		dms = make([]*core.DecisionMemo, cfg.Links)
		sms = make([]*bayesopt.SweepMemo, cfg.Links)
		for k := range dms {
			dms[k] = core.NewDecisionMemo(0)
			sms[k] = bayesopt.NewSweepMemo(0)
		}
	}

	shards := make([]testbed.ShardSpec, cfg.Links)
	for k := range shards {
		shards[k] = testbed.ShardSpec{
			Key:    fmt.Sprintf("lnk%d", k),
			Config: env,
			Seed:   cfg.Seed + int64(k),
		}
	}
	ids := make([]string, cfg.Sessions)
	algoOf := make([]string, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		algo := cfg.Algorithms[i%len(cfg.Algorithms)]
		seed := cfg.Seed + int64(i)
		if cfg.SeedGroups > 0 {
			seed = cfg.Seed + int64(i%cfg.SeedGroups)
		}
		agent, err := core.NewFleetAgent(algo, cfg.MaxN, seed)
		if err != nil {
			return nil, nil, err
		}
		k := i % cfg.Links
		if cfg.Memo {
			if !agent.SetDecisionMemo(dms[k]) {
				agent.SetSweepMemo(sms[k])
			}
		}
		id := fmt.Sprintf("s%04d-%s", i, algo)
		ids[i] = id
		algoOf[i] = algo
		shards[k].Parts = append(shards[k].Parts, testbed.Participant{
			Task:       fleetTask(id, 2),
			Controller: agent,
			JoinAt:     float64(i%joinPeriod) * cfg.Stagger,
		})
	}

	ss, err := testbed.NewShardSet(shards, 1)
	if err != nil {
		return nil, nil, err
	}
	ss.SetWorkers(cfg.Workers)
	var rec *fleetRecorder
	switch mode {
	case testbed.RecordAggregate:
		rec = newFleetRecorder(cfg.Sessions, cfg.Duration, lastJoin)
		ss.SetRecording(mode, rec)
	case testbed.RecordOff:
		ss.SetRecording(mode, nil)
	}
	tl, err := ss.Run(cfg.Duration, 0.25)
	if err != nil {
		return nil, nil, err
	}

	sum := &FleetSummary{
		Sessions:           cfg.Sessions,
		Links:              cfg.Links,
		DurationSeconds:    cfg.Duration,
		ConvergedAtSeconds: -1,
		RecordMode:         mode.String(),
	}
	for k := range dms {
		h, l := dms[k].Stats()
		sum.DecisionMemoHits += h
		sum.DecisionMemoLookups += l
		h, l = sms[k].Stats()
		sum.SweepMemoHits += h
		sum.SweepMemoLookups += l
	}
	if sum.DecisionMemoLookups > 0 {
		sum.DecisionMemoHitRate = float64(sum.DecisionMemoHits) / float64(sum.DecisionMemoLookups)
	}
	if sum.SweepMemoLookups > 0 {
		sum.SweepMemoHitRate = float64(sum.SweepMemoHits) / float64(sum.SweepMemoLookups)
	}

	if mode == testbed.RecordOff {
		r.AddNote("record mode off: per-session metrics not recorded")
		return r, sum, nil
	}
	var fs *fleetStats
	if mode == testbed.RecordAggregate {
		fs = rec.stats()
	} else {
		fs = fleetStatsFromTimeline(tl, cfg, ids, lastJoin)
	}

	aggregate := 0.0
	perAlgo := map[string][]float64{}
	for i, m := range fs.eqMeans {
		aggregate += m
		perAlgo[algoOf[i]] = append(perAlgo[algoOf[i]], m)
	}
	eqJain := stats.JainIndex(fs.eqMeans)
	eq0, eq1 := cfg.Duration*3/4, cfg.Duration
	window := cfg.Duration / 10

	algos := make([]string, 0, len(perAlgo))
	for a := range perAlgo {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	for _, a := range algos {
		ms := perAlgo[a]
		var st stats.Streaming
		for _, m := range ms {
			st.Add(m)
		}
		r.AddRow(a, fmt.Sprintf("%d", len(ms)),
			fmt.Sprintf("%.1f ± %.1f", st.Mean()*1000, st.StdDev()*1000),
			fmt.Sprintf("%.1f/%.1f/%.1f",
				stats.Percentile(ms, 50)*1000, stats.Percentile(ms, 90)*1000, stats.Percentile(ms, 99)*1000),
			fmt.Sprintf("%.3f", stats.JainIndex(ms)))
	}
	if fs.converged >= 0 {
		r.AddNote("fleet Jain ≥0.9 from t=%.0fs (last join %.0fs, window %.0fs)", fs.converged, lastJoin, window)
	} else {
		r.AddNote("fleet Jain never reached 0.9 after the last join at %.0fs", lastJoin)
	}
	if cfg.Links == 1 {
		r.AddNote("equilibrium [%.0fs, %.0fs]: Jain %.3f, aggregate %.2f Gbps (link %.0f Gbps)",
			eq0, eq1, eqJain, aggregate, env.LinkCapacity/1e9)
	} else {
		r.AddNote("equilibrium [%.0fs, %.0fs]: Jain %.3f, aggregate %.2f Gbps (%d × %.0f Gbps links)",
			eq0, eq1, eqJain, aggregate, cfg.Links, env.LinkCapacity/1e9)
	}
	sum.ConvergedAtSeconds = fs.converged
	sum.EquilibriumJain = eqJain
	sum.AggregateGbps = aggregate
	return r, sum, nil
}

// gcd and lcm for the twin-class join period.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// fleetStatsFromTimeline computes the fleet metrics from full-fidelity
// per-session series — the reference arithmetic the streaming
// fleetRecorder replicates bitwise.
func fleetStatsFromTimeline(tl *testbed.Timeline, cfg FleetConfig, ids []string, lastJoin float64) *fleetStats {
	// Convergence: slide a window of a tenth of the horizon from the
	// last join forward in half-window steps until the fleet-wide Jain
	// index over per-session means reaches 0.9.
	window := cfg.Duration / 10
	fleetJain := func(t0, t1 float64) float64 {
		means := make([]float64, cfg.Sessions)
		for i, id := range ids {
			means[i] = tl.MeanThroughputGbps(id, t0, t1)
		}
		return stats.JainIndex(means)
	}
	converged := -1.0
	for t := lastJoin; t+window <= cfg.Duration; t += window / 2 {
		if fleetJain(t, t+window) >= 0.9 {
			converged = t
			break
		}
	}

	// Equilibrium: final quarter of the run.
	eq0, eq1 := cfg.Duration*3/4, cfg.Duration
	eqMeans := make([]float64, cfg.Sessions)
	for i, id := range ids {
		eqMeans[i] = tl.MeanThroughputGbps(id, eq0, eq1)
	}
	return &fleetStats{converged: converged, eqMeans: eqMeans}
}
