package experiments

import "testing"

func TestAblationKShape(t *testing.T) {
	r, err := AblationK(1)
	if err != nil {
		t.Fatal(err)
	}
	var k102, k110 float64
	for _, row := range r.Rows {
		switch row[0] {
		case "1.020":
			k102 = parse(t, row[2])
		case "1.100":
			k110 = parse(t, row[2])
		}
	}
	if k102 < 38 || k102 > 56 {
		t.Fatalf("K=1.02 converged cc = %v, want ≈48", k102)
	}
	// §3.1: large K converges to suboptimal results when the optimum
	// is high (the concave region ends at 2/ln 1.1 ≈ 21).
	if k110 > 0.75*k102 {
		t.Fatalf("K=1.10 cc = %v should sit well below K=1.02's %v", k110, k102)
	}
}

func TestAblationBShape(t *testing.T) {
	r, err := AblationB(1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows ordered B = 0, 1, 10, 100.
	lossB0 := parse(t, r.Rows[0][3])
	lossB10 := parse(t, r.Rows[2][3])
	utilB10 := parse(t, r.Rows[2][2])
	ccB0 := parse(t, r.Rows[0][1])
	ccB10 := parse(t, r.Rows[2][1])
	if ccB0 <= ccB10 {
		t.Fatalf("B=0 cc %v should exceed B=10 cc %v (nothing punishes loss)", ccB0, ccB10)
	}
	if lossB0 <= lossB10 {
		t.Fatalf("B=0 loss %v%% should exceed B=10 loss %v%%", lossB0, lossB10)
	}
	// The paper's claim for B=10: loss below 1%, utilization over 95%.
	if lossB10 > 1.0 {
		t.Fatalf("B=10 loss = %v%%, want <1%%", lossB10)
	}
	if utilB10 < 85 {
		t.Fatalf("B=10 utilization = %v%%, want high", utilB10)
	}
}

func TestAblationWarmupShape(t *testing.T) {
	r, err := AblationWarmup(1)
	if err != nil {
		t.Fatal(err)
	}
	none := parse(t, r.Rows[0][1])
	with := parse(t, r.Rows[1][1])
	if with <= none {
		t.Fatalf("warm-up exclusion should let HC climb higher: none=%v, 1s=%v", none, with)
	}
}

func TestAblationDynamicsShape(t *testing.T) {
	r, err := AblationDynamics(1)
	if err != nil {
		t.Fatal(err)
	}
	alone := parse(t, r.Rows[0][1])
	contested := parse(t, r.Rows[1][1])
	recovered := parse(t, r.Rows[2][1])
	if contested >= alone {
		t.Fatalf("Falcon should shed concurrency under background traffic: alone %v, contested %v", alone, contested)
	}
	if recovered <= contested {
		t.Fatalf("Falcon should re-expand after the background leaves: contested %v, recovered %v", contested, recovered)
	}
}

func TestAblationWindowRuns(t *testing.T) {
	r, err := AblationWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 window sizes", len(r.Rows))
	}
	for _, row := range r.Rows {
		if after := parse(t, row[2]); after <= 0 {
			t.Fatalf("window %s: post-change throughput %v must be positive", row[0], after)
		}
	}
}

func TestAblationBBRShape(t *testing.T) {
	r, err := AblationBBR(1)
	if err != nil {
		t.Fatal(err)
	}
	cubicCC := parse(t, r.Rows[0][1])
	bbrCC := parse(t, r.Rows[1][1])
	cubicLoss := parse(t, r.Rows[0][3])
	bbrLoss := parse(t, r.Rows[1][3])
	// Same "just enough" concurrency under both congestion models.
	if d := cubicCC - bbrCC; d > 4 || d < -4 {
		t.Fatalf("converged cc differs too much: cubic %v vs bbr %v", cubicCC, bbrCC)
	}
	if bbrLoss >= cubicLoss {
		t.Fatalf("BBR loss %v%% should sit below Cubic's %v%%", bbrLoss, cubicLoss)
	}
}

func TestAblationIntervalRuns(t *testing.T) {
	r, err := AblationInterval(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 intervals", len(r.Rows))
	}
	// With the paper's 3 s interval the transfer must converge.
	if r.Rows[1][1] == "never" {
		t.Fatal("3s interval never converged")
	}
}
