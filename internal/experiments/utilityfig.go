package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/utility"
)

// Fig6a tabulates the analytical utility curves of Figure 6(a): with
// the optimum at 48, linear regret C=0.02 peaks near 25 (premature),
// C=0.01 peaks at the optimum, and the nonlinear K=1.02 form peaks at
// the optimum.
func Fig6a(int64) (*Result, error) {
	r := &Result{
		ID:     "fig6a",
		Title:  "Estimated utility: linear vs nonlinear concurrency regret (optimum 48)",
		Header: []string{"Form", "Peak concurrency", "Utility at peak", "Utility at 48"},
	}
	thr := utility.SaturatingThroughput(1, 48) // unit per-process rate
	forms := []struct {
		name string
		u    func(n int, agg float64) float64
	}{
		{"linear C=0.01", func(n int, agg float64) float64 {
			return utility.LinearPenalty(n, agg/float64(n), 0, utility.DefaultB, 0.01)
		}},
		{"linear C=0.02", func(n int, agg float64) float64 {
			return utility.LinearPenalty(n, agg/float64(n), 0, utility.DefaultB, 0.02)
		}},
		{"nonlinear K=1.02", func(n int, agg float64) float64 {
			return utility.Nonlinear(n, agg/float64(n), 0, utility.DefaultB, utility.DefaultK)
		}},
	}
	for _, f := range forms {
		curve := utility.Curve(100, thr, f.u)
		peak := utility.ArgmaxCurve(curve)
		r.AddRow(f.name, fmt.Sprintf("%d", peak),
			fmt.Sprintf("%.2f", curve[peak-1]), fmt.Sprintf("%.2f", curve[47]))
	}
	r.AddNote("linear C=0.02 peaks well below the optimum of 48; nonlinear peaks at it (paper Figure 6a)")
	return r, nil
}

// linearUtilityFunc builds a core.UtilityFunc for Eq 3 with the given C.
func linearUtilityFunc(c float64) core.UtilityFunc {
	return func(n, p int, agg, loss float64) float64 {
		if n < 1 {
			return 0
		}
		return utility.LinearPenalty(n, agg/float64(n), loss, utility.DefaultB, c)
	}
}

// Fig6b runs single Falcon-GD transfers on the 48-optimum Emulab
// environment under the three utility forms and reports where each
// converges: the linear C=0.02 agent settles near half the optimal
// concurrency and loses throughput.
func Fig6b(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig6b",
		Title:  "Empirical convergence under each utility form (optimum ≈48)",
		Header: []string{"Form", "Converged concurrency", "Throughput (Mbps)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	run := func(name string, fn core.UtilityFunc) error {
		agent := core.NewGDAgent(100)
		agent.SetUtilityFunc(fn)
		tl, err := runScenario(cfg, seed, 480, testbed.Participant{Task: endlessTask(name, 2), Controller: agent})
		if err != nil {
			return err
		}
		cc := tl.Concurrency.Lookup(name).MeanAfter(300)
		tput := tl.MeanThroughputGbps(name, 300, 480)
		r.AddRow(name, fmt.Sprintf("%.0f", cc), fmt.Sprintf("%.0f", tput*1000))
		copyChart(r.Chart("concurrency"), &tl.Concurrency)
		return nil
	}
	if err := run("linear C=0.01", linearUtilityFunc(0.01)); err != nil {
		return nil, err
	}
	if err := run("linear C=0.02", linearUtilityFunc(0.02)); err != nil {
		return nil, err
	}
	if err := run("nonlinear K=1.02", nil); err != nil {
		return nil, err
	}
	r.AddNote("paper: C=0.02 converges to ~26 with ~45%% lower throughput; C=0.01 and nonlinear reach ~48")
	return r, nil
}

// Fig6c runs two competing agents with the linear C=0.01 utility: the
// pair overshoots the per-agent fair optimum (24 each when the joint
// optimum is 48), overburdening the system, while nonlinear agents
// settle near the fair split.
func Fig6c(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig6c",
		Title:  "Competing transfers: linear C=0.01 vs nonlinear utility",
		Header: []string{"Form", "Agent A cc (±σ)", "Agent B cc (±σ)", "Total (fair optimum ≈48-50)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	type agentStats struct{ mean, sd float64 }
	run := func(name string, fn core.UtilityFunc) (agentStats, agentStats, error) {
		a1 := core.NewGDAgent(100)
		a2 := core.NewGDAgent(100)
		if fn != nil {
			a1.SetUtilityFunc(fn)
			a2.SetUtilityFunc(fn)
		}
		tl, err := runScenario(cfg, seed, 700,
			testbed.Participant{Task: endlessTask(name+"-a", 2), Controller: a1},
			testbed.Participant{Task: endlessTask(name+"-b", 2), Controller: a2, JoinAt: 120},
		)
		if err != nil {
			return agentStats{}, agentStats{}, err
		}
		tail := func(id string) agentStats {
			s := tl.Concurrency.Lookup(id).Between(450, 700)
			return agentStats{mean: s.Mean(), sd: stats.StdDev(s.Values())}
		}
		return tail(name + "-a"), tail(name + "-b"), nil
	}
	la, lb, err := run("linear", linearUtilityFunc(0.01))
	if err != nil {
		return nil, err
	}
	na, nb, err := run("nonlinear", nil)
	if err != nil {
		return nil, err
	}
	fmtA := func(a agentStats) string { return fmt.Sprintf("%.0f ±%.1f", a.mean, a.sd) }
	r.AddRow("linear C=0.01", fmtA(la), fmtA(lb), fmt.Sprintf("%.0f", la.mean+lb.mean))
	r.AddRow("nonlinear K=1.02", fmtA(na), fmtA(nb), fmt.Sprintf("%.0f", na.mean+nb.mean))
	r.AddNote("paper: linear agents drift to 36-38 each (overshoot); here the linear pair equilibrates at a similar total but wanders a wide utility plateau (higher σ) — the same 'sensitivity to measurement jitters' expressed by our noise model")
	return r, nil
}
