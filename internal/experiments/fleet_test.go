package experiments

import (
	"strings"
	"testing"
)

// TestFleetSmall runs a scaled-down fleet and checks the scenario's
// core promises: the run is deterministic for a fixed config, the
// fleet reaches a fair equilibrium, and the shared bottleneck is well
// utilized. The full 500-session acceptance run lives in cmd/fleet.
func TestFleetSmall(t *testing.T) {
	cfg := FleetConfig{Sessions: 45, Duration: 300, Stagger: 0.5, Seed: 3}
	render := func() string {
		res, _, err := Fleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	out := render()
	if out != render() {
		t.Fatal("same FleetConfig produced different output across runs")
	}
	if !strings.Contains(out, "fleet Jain ≥0.9") {
		t.Fatalf("fleet never reached Jain 0.9:\n%s", out)
	}
	for _, algo := range []string{"hc", "gd", "bo"} {
		if !strings.Contains(out, algo) {
			t.Fatalf("missing %s row:\n%s", algo, out)
		}
	}
}

// TestFleetNotRegistered pins that the fleet workload stays out of the
// reproduce registry: it is a stress driver, and registering it would
// change reproduce's byte-exact output.
func TestFleetNotRegistered(t *testing.T) {
	if _, ok := ByID("fleet"); ok {
		t.Fatal("fleet must not be registered in All()/ByID — it would change reproduce output")
	}
}
