package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestFleetFlapFileMatchesDoc pins the checked-in scenario to the
// in-code document: examples/scenarios/fleet-flap.json and
// FleetFlapDoc() must canonicalise identically, so the file run by
// `falconsim -scenario`, `fleet -scenario`, and the webservice is
// exactly the experiment registered as fleet-flap.
func TestFleetFlapFileMatchesDoc(t *testing.T) {
	parsed, err := scenario.ParseFile(filepath.Join("..", "..", "examples", "scenarios", "fleet-flap.json"))
	if err != nil {
		t.Fatal(err)
	}
	fileCanon, err := parsed.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	docCanon, err := FleetFlapDoc().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(fileCanon) != string(docCanon) {
		t.Fatalf("fleet-flap.json diverged from FleetFlapDoc():\nfile: %s\ncode: %s", fileCanon, docCanon)
	}
}

// TestDynamicFleetSmoke runs a scaled-down capacity-flap fleet end to
// end and checks the report shape: one row per compiled link horizon
// (wave start + restore), and the fleet's Jain index re-converges
// above 0.95 after each.
func TestDynamicFleetSmoke(t *testing.T) {
	doc := &scenario.Document{
		Version:         scenario.Version,
		Name:            "fleet-flap-smoke",
		Preset:          "fleet",
		Seed:            1,
		DurationSeconds: 240,
		Agents: []scenario.AgentSpec{
			{ID: "hc", Count: 4, Algorithm: "hc", JoinStagger: 2, MaxConcurrency: 8,
				Dataset: &scenario.DatasetSpec{Label: "fleet"}},
			{ID: "gd", Count: 4, Algorithm: "gd", JoinAt: 1, JoinStagger: 2, MaxConcurrency: 8,
				Dataset: &scenario.DatasetSpec{Label: "fleet"}},
		},
		Mutations: []scenario.MutationSpec{
			{At: 120, Kind: scenario.KindCrossTraffic, Rate: 7.5e9, DurationSeconds: 60},
		},
	}
	res, err := DynamicFleet(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (wave start + restore): %v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row[4] == "never" {
			t.Errorf("fleet never re-converged to Jain ≥ 0.95 after the t=%s horizon", row[0])
		}
	}

	// A schedule with no link mutations is an error, not a silent
	// empty report.
	still := &scenario.Document{Preset: "fleet", Agents: []scenario.AgentSpec{{Count: 2}},
		Mutations: []scenario.MutationSpec{{At: 100, Kind: scenario.KindRTT, RTT: 0.05}}}
	if _, err := DynamicFleet(still); err == nil || !strings.Contains(err.Error(), "no link mutations") {
		t.Fatalf("DynamicFleet without link mutations: err = %v", err)
	}
}

// TestFleetFlapRegistered: the experiment resolves through ByID (for
// `reproduce -only fleet-flap`) but stays outside All(), keeping the
// default reproduce output unchanged.
func TestFleetFlapRegistered(t *testing.T) {
	if _, ok := ByID("fleet-flap"); !ok {
		t.Fatal("fleet-flap not resolvable via ByID")
	}
	for _, r := range All() {
		if r.ID == "fleet-flap" {
			t.Fatal("fleet-flap leaked into All(); default reproduce output would change")
		}
	}
}
