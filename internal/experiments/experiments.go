// Package experiments reproduces every table and figure of the paper's
// evaluation (§2, §3.1, §4). Each Fig*/Table* function runs the
// corresponding experiment end-to-end on the simulated testbeds and
// returns a Result whose rows mirror what the paper plots; the
// root-level bench_test.go and cmd/reproduce expose them as benchmarks
// and CLI reports. Absolute numbers come from our simulator, so the
// comparisons of interest are the *shapes*: who wins, by what rough
// factor, and where knees and crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/parallel"
	"repro/internal/trace"
)

// Result is one experiment's reproducible output.
type Result struct {
	// ID is the experiment identifier ("fig4", "table1", …).
	ID string
	// Title describes what the paper's figure/table shows.
	Title string
	// Header and Rows form the printable table (Rows[i] aligns with
	// Header).
	Header []string
	Rows   [][]string
	// Charts holds named time series for timeline figures.
	Charts map[string]*trace.TimeSet
	// Notes carries shape observations computed by the experiment
	// (e.g. "loss knee at n=10") for EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Chart registers a named chart, creating the map lazily.
func (r *Result) Chart(name string) *trace.TimeSet {
	if r.Charts == nil {
		r.Charts = make(map[string]*trace.TimeSet)
	}
	ts, ok := r.Charts[name]
	if !ok {
		ts = &trace.TimeSet{}
		r.Charts[name] = ts
	}
	return ts
}

// Render writes the result as an aligned text report.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := len(c)
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if len(r.Header) > 0 {
		if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
			return err
		}
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// String renders the result to a string.
func (r *Result) String() string {
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Name string
	// Run executes the experiment with the given base seed.
	Run func(seed int64) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Testbed specifications and probed capacities", Table1},
		{"fig1a", "Impact of concurrency on throughput", Fig1a},
		{"fig1b", "Optimal concurrency across environments", Fig1b},
		{"fig2a", "Globus and HARP single-transfer performance", Fig2a},
		{"fig2b", "HARP unfairness to the first transfer", Fig2b},
		{"fig4", "Throughput and packet loss vs concurrency", Fig4},
		{"fig6a", "Analytic utility curves: linear vs nonlinear regret", Fig6a},
		{"fig6b", "Empirical convergence: linear vs nonlinear regret", Fig6b},
		{"fig6c", "Linear regret under competition", Fig6c},
		{"fig7", "Convergence speed of HC, GD, and BO", Fig7},
		{"fig8", "Hill Climbing with competing transfers", Fig8},
		{"fig9", "Falcon-GD in all four networks", Fig9},
		{"fig10", "Falcon-BO in all four networks", Fig10},
		{"fig11", "Falcon-GD stability under competition", Fig11},
		{"fig12", "Falcon-BO stability under competition", Fig12},
		{"fig13", "Concurrency adaptation on join/leave", Fig13},
		{"fig14", "Falcon vs Globus vs HARP", Fig14},
		{"fig15", "Single- vs multi-parameter optimization", Fig15},
		{"fig16", "Friendliness toward non-Falcon transfers", Fig16},
		{"abl-k", "Ablation: concurrency-regret base K", AblationK},
		{"abl-b", "Ablation: loss-regret coefficient B", AblationB},
		{"abl-interval", "Ablation: sample-transfer duration", AblationInterval},
		{"abl-window", "Ablation: BO observation-window size", AblationWindow},
		{"abl-warmup", "Ablation: measurement warm-up exclusion", AblationWarmup},
		{"abl-bbr", "Ablation: loss-based vs model-based congestion control", AblationBBR},
		{"abl-search", "Ablation: all search algorithms incl. related work", AblationSearch},
		{"abl-noise", "Ablation: measurement-noise sensitivity", AblationNoise},
		{"abl-dynamics", "Ablation: adaptation to background traffic", AblationDynamics},
	}
}

// registry is the lazily-built ID → Runner index behind ByID, so
// repeated lookups (bench helpers, CLI argument parsing) don't rebuild
// and rescan the full runner list.
var (
	registryOnce sync.Once
	registry     map[string]Runner
)

// ByID returns the runner with the given ID, searching All() and the
// registered-but-not-default Extra() runners.
func ByID(id string) (Runner, bool) {
	registryOnce.Do(func() {
		all := All()
		extra := Extra()
		registry = make(map[string]Runner, len(all)+len(extra))
		for _, r := range all {
			registry[r.ID] = r
		}
		for _, r := range extra {
			registry[r.ID] = r
		}
	})
	r, ok := registry[id]
	return r, ok
}

// Outcome is one runner's completed execution.
type Outcome struct {
	Runner Runner
	Result *Result
	Err    error
}

// Run executes the given runners across at most workers goroutines and
// returns their outcomes in input order. Every runner receives the
// same base seed it would receive from a serial loop and builds its
// own engines, so the assembled outcomes are byte-identical to serial
// execution regardless of worker count (workers ≤ 1 runs inline).
func Run(runners []Runner, seed int64, workers int) []Outcome {
	out := make([]Outcome, len(runners))
	parallel.ForEachN(len(runners), workers, func(i int) {
		res, err := runners[i].Run(seed)
		out[i] = Outcome{Runner: runners[i], Result: res, Err: err}
	})
	return out
}

// gbps formats a bits/s value in Gbps.
func gbps(bits float64) string { return fmt.Sprintf("%.2f", bits/1e9) }

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }
