package experiments

import (
	"fmt"

	"repro/internal/bayesopt"
	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
	"repro/internal/utility"
)

// AblationK sweeps the nonlinear regret base K (§3.1): small K raises
// the concave-region limit but amplifies sensitivity to throughput
// jitter; large K is robust but caps the reachable optimum (K=1.10's
// concave region ends below a 48-optimum).
func AblationK(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-k",
		Title:  "Sensitivity to the concurrency-regret base K (optimum ≈48)",
		Header: []string{"K", "Concave limit 2/ln K", "Converged cc", "Throughput (Mbps)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	for _, k := range []float64{1.005, 1.01, 1.02, 1.05, 1.10} {
		params := utility.Params{B: utility.DefaultB, K: k}
		agent, err := core.NewAgent(optimizer.NewGradientDescent(100), params)
		if err != nil {
			return nil, err
		}
		tl, err := runScenario(cfg, seed, 480, testbed.Participant{Task: endlessTask("t", 2), Controller: agent})
		if err != nil {
			return nil, err
		}
		cc := tl.Concurrency.Lookup("t").MeanAfter(300)
		tput := tl.MeanThroughputGbps("t", 300, 480)
		r.AddRow(fmt.Sprintf("%.3f", k),
			fmt.Sprintf("%.0f", utility.ConcaveLimit(k)),
			fmt.Sprintf("%.0f", cc),
			fmt.Sprintf("%.0f", tput*1000))
	}
	r.AddNote("paper §3.1: K=1.02 balances stability and reach; K=1.10 converges below the optimum when the optimum is high")
	return r, nil
}

// AblationB sweeps the loss-regret coefficient B on the lossy Emulab
// link: B=0 tolerates heavy loss for marginal throughput; B=10 (the
// paper's default) keeps loss below ~1 % at near-full utilization;
// very large B sacrifices utilization to avoid any loss.
func AblationB(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-b",
		Title:  "Sensitivity to the loss-regret coefficient B (Emulab, optimum 10)",
		Header: []string{"B", "Converged cc", "Utilization", "Mean loss"},
	}
	cfg := testbed.Emulab(10e6)
	for _, b := range []float64{0, 1, 10, 100} {
		params := utility.Params{B: b, K: utility.DefaultK}
		agent, err := core.NewAgent(optimizer.NewGradientDescent(32), params)
		if err != nil {
			return nil, err
		}
		tl, err := runScenario(cfg, seed, 300, testbed.Participant{Task: endlessTask("t", 2), Controller: agent})
		if err != nil {
			return nil, err
		}
		cc := tl.Concurrency.Lookup("t").MeanAfter(150)
		tput := tl.MeanThroughputGbps("t", 150, 300)
		loss := tl.Loss.Lookup("t").MeanAfter(150)
		r.AddRow(fmt.Sprintf("%.0f", b),
			fmt.Sprintf("%.1f", cc),
			fmt.Sprintf("%.0f%%", tput*1e9/cfg.LinkCapacity*100),
			pct(loss))
	}
	r.AddNote("paper §3.1: B=10 keeps loss below 1%% while achieving over 95%% utilization")
	return r, nil
}

// AblationInterval sweeps the sample-transfer duration: short samples
// converge faster on the wall clock but carry more ramp/noise bias;
// long samples are clean but slow (the paper uses 3 s LAN, 5 s WAN).
func AblationInterval(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-interval",
		Title:  "Sensitivity to sample-transfer duration (Emulab, optimum 10)",
		Header: []string{"Interval (s)", "Time to 90% utilization (s)", "Converged throughput (Mbps)"},
	}
	for _, interval := range []float64{1, 3, 5, 10} {
		cfg := testbed.Emulab(10e6)
		eng, err := testbed.NewEngine(cfg, seed)
		if err != nil {
			return nil, err
		}
		sched := testbed.NewScheduler(eng, 1)
		// Warm-up cannot consume the whole window on short intervals.
		if interval <= 1 {
			sched.Warmup = 0.5
		}
		agent := core.NewGDAgent(32)
		if err := sched.Add(testbed.Participant{
			Task: endlessTask("t", 2), Controller: agent, SampleInterval: interval,
		}); err != nil {
			return nil, err
		}
		tl := sched.Run(300, 0.25)
		// First time the 30 s rolling mean reaches 88 % of the link:
		// GD's continuous ±1 probing keeps instantaneous throughput
		// bouncing, so a band-hold criterion never triggers.
		conv := -1.0
		series := tl.Throughput.Lookup("t")
		for t0 := 0.0; t0+30 <= 300; t0 += 5 {
			if series.Between(t0, t0+30).Mean() >= 0.88*cfg.LinkCapacity/1e9 {
				conv = t0
				break
			}
		}
		convStr := "never"
		if conv >= 0 {
			convStr = fmt.Sprintf("%.0f", conv)
		}
		r.AddRow(fmt.Sprintf("%.0f", interval), convStr,
			fmt.Sprintf("%.0f", tl.MeanThroughputGbps("t", 150, 300)*1000))
	}
	r.AddNote("the paper's 3-5 s choice trades convergence speed against measurement fidelity (§3.2: each sample takes at least 3-5 s to be accurate)")
	return r, nil
}

// AblationWindow sweeps Bayesian Optimization's observation window on a
// testbed whose conditions change mid-run (a fixed background transfer
// joins at t=300 s, shrinking Falcon's available share): small windows
// forget fast and re-converge quickly; a large window anchors the
// surrogate to stale observations (§3.2's rationale for capping at 20).
func AblationWindow(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-window",
		Title:  "BO observation-window size under changing conditions",
		Header: []string{"Window", "Throughput before change (Gbps)", "Throughput after change (Gbps)", "Share of post-change optimum"},
	}
	cfg := testbed.HPCLab()
	for _, window := range []int{5, 20, 100} {
		bo := bayesopt.New(32, seed)
		bo.Window = window
		agent, err := core.NewAgent(bo, utility.DefaultParams())
		if err != nil {
			return nil, err
		}
		// Background: a fixed 12-way transfer takes roughly half the
		// store's capacity from t=300.
		bg := transfer.Setting{Concurrency: 12, Parallelism: 1, Pipelining: 1}
		tl, err := runScenario(cfg, seed, 600,
			testbed.Participant{Task: endlessTask("falcon", 2), Controller: agent},
			testbed.Participant{Task: endlessTask("bg", 12), Controller: testbed.FixedController{S: bg}, JoinAt: 300},
		)
		if err != nil {
			return nil, err
		}
		before := tl.MeanThroughputGbps("falcon", 150, 300)
		after := tl.MeanThroughputGbps("falcon", 420, 600)
		// Post-change fair share ≈ half of the 27 Gbps write capacity.
		r.AddRow(fmt.Sprintf("%d", window),
			fmt.Sprintf("%.2f", before), fmt.Sprintf("%.2f", after),
			fmt.Sprintf("%.0f%%", after/13.5*100))
	}
	r.AddNote("paper §3.2: limiting past observations to 20 forces periodic exploration and quick discovery of a new optimum")
	return r, nil
}

// AblationWarmup toggles the measurement warm-up exclusion: without it,
// every sample mixes the TCP ramp transient into the throughput
// estimate, biasing upward probes low — enough to stall Hill Climbing's
// unit steps far below a distant optimum.
func AblationWarmup(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-warmup",
		Title:  "Measurement warm-up exclusion (HC on the 48-optimum Emulab)",
		Header: []string{"Warm-up", "Concurrency reached by 900 s", "Throughput (Mbps, late)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	for _, warmup := range []float64{-1, 1} {
		eng, err := testbed.NewEngine(cfg, seed)
		if err != nil {
			return nil, err
		}
		sched := testbed.NewScheduler(eng, 1)
		sched.Warmup = warmup
		agent := core.NewHCAgent(100)
		if err := sched.Add(testbed.Participant{Task: endlessTask("t", 2), Controller: agent}); err != nil {
			return nil, err
		}
		tl := sched.Run(900, 0.25)
		cc := tl.Concurrency.Lookup("t").MeanAfter(700)
		tput := tl.MeanThroughputGbps("t", 700, 900)
		label := "none"
		if warmup > 0 {
			label = fmt.Sprintf("%.0f s", warmup)
		}
		r.AddRow(label, fmt.Sprintf("%.0f", cc), fmt.Sprintf("%.0f", tput*1000))
	}
	r.AddNote("the paper measures samples only after the transfer has run 'for a sufficient amount of time' (§3) — this ablation shows why")
	return r, nil
}

// AblationSearch races all five search algorithms — Falcon's three
// plus the §5 related-work comparators (direct search à la Balaprakash
// et al., and ProbData-style SPSA) — on the 48-optimum environment.
// The related methods find the optimum but converge far more slowly,
// the paper's argument for online convex optimization and surrogate
// models over derivative-free and stochastic-approximation search.
func AblationSearch(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-search",
		Title:  "All search algorithms on the 48-optimum environment",
		Header: []string{"Algorithm", "Time to reach ≥43 (s)", "Throughput (Mbps, late)"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	for _, algo := range []string{core.AlgoHillClimbing, core.AlgoGradient, core.AlgoBayesian, core.AlgoDirectSearch, core.AlgoSPSA} {
		agent, err := core.NewAgentByName(algo, 100, seed)
		if err != nil {
			return nil, err
		}
		tl, err := runScenario(cfg, seed, 900, testbed.Participant{Task: endlessTask(algo, 2), Controller: agent})
		if err != nil {
			return nil, err
		}
		reach := "never"
		for _, p := range tl.Concurrency.Lookup(algo).Points {
			if p.Value >= 43 {
				reach = fmt.Sprintf("%.0f", p.Time)
				break
			}
		}
		tput := tl.MeanThroughputGbps(algo, 700, 900)
		r.AddRow(algo, reach, fmt.Sprintf("%.0f", tput*1000))
	}
	r.AddNote("gd/bo converge fastest; hc, direct search, and SPSA trail — §5's case against derivative-free and stochastic-approximation methods")
	return r, nil
}

// AblationBBR runs Falcon-GD on the lossy Emulab path under the
// loss-based (Cubic) and model-based (BBR) congestion models — the
// paper's §6 future work on congestion-control-agnostic operation.
// Under BBR the loss-regret term barely fires (near-zero loss at
// saturation), yet the nonlinear concurrency regret alone still stops
// the search at "just enough" concurrency — the sender-limited argument
// of §3.1 applied to the network-limited case.
func AblationBBR(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-bbr",
		Title:  "Falcon under loss-based vs model-based congestion control (Emulab, optimum 10)",
		Header: []string{"Congestion", "Converged cc", "Utilization", "Mean loss"},
	}
	for _, cc := range []string{"cubic", "bbr"} {
		cfg := testbed.Emulab(10e6)
		cfg.Congestion = cc
		agent := core.NewGDAgent(32)
		tl, err := runScenario(cfg, seed, 300, testbed.Participant{Task: endlessTask("t", 2), Controller: agent})
		if err != nil {
			return nil, err
		}
		conv := tl.Concurrency.Lookup("t").MeanAfter(150)
		tput := tl.MeanThroughputGbps("t", 150, 300)
		loss := tl.Loss.Lookup("t").MeanAfter(150)
		r.AddRow(cc, fmt.Sprintf("%.1f", conv),
			fmt.Sprintf("%.0f%%", tput*1e9/cfg.LinkCapacity*100), pct(loss))
	}
	r.AddNote("Falcon converges to the same concurrency either way: the Kⁿ regret is congestion-control-agnostic (§6)")
	return r, nil
}

// AblationNoise sweeps measurement noise and compares GD and BO
// convergence robustness — §4.6's "Search Phase Stability" discussion:
// GD's systematic probing degrades gracefully, while BO leans on its
// surrogate to average noise but wanders more during exploration.
func AblationNoise(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-noise",
		Title:  "Measurement-noise sensitivity (Emulab, optimum 10)",
		Header: []string{"Noise σ", "GD throughput (Mbps)", "GD cc σ", "BO throughput (Mbps)", "BO cc σ"},
	}
	for _, noise := range []float64{0, 0.01, 0.03, 0.06} {
		row := []string{fmt.Sprintf("%.0f%%", noise*100)}
		for _, algo := range []string{core.AlgoGradient, core.AlgoBayesian} {
			cfg := testbed.Emulab(10e6)
			cfg.NoiseStdDev = noise
			agent, err := core.NewAgentByName(algo, 32, seed)
			if err != nil {
				return nil, err
			}
			tl, err := runScenario(cfg, seed, 300, testbed.Participant{Task: endlessTask(algo, 2), Controller: agent})
			if err != nil {
				return nil, err
			}
			tput := tl.MeanThroughputGbps(algo, 150, 300)
			ccSD := stats.StdDev(tl.Concurrency.Lookup(algo).Between(150, 300).Values())
			row = append(row, fmt.Sprintf("%.0f", tput*1000), fmt.Sprintf("%.1f", ccSD))
		}
		r.AddRow(row...)
	}
	r.AddNote("both algorithms hold near-optimal throughput through realistic noise; concurrency wander grows with σ (§4.6)")
	return r, nil
}

// AblationDynamics demonstrates online adaptation to drifting
// conditions — the paper's core motivation that "the optimal solution
// can be different for identical transfers over time due to change in
// background traffic" (§1). A fixed background transfer occupies the
// Emulab link for the middle third of the run; Falcon-GD sheds
// concurrency while it is present and re-expands afterwards.
func AblationDynamics(seed int64) (*Result, error) {
	r := &Result{
		ID:     "abl-dynamics",
		Title:  "Online adaptation to background traffic (Emulab, optimum 10)",
		Header: []string{"Phase", "Falcon cc", "Falcon throughput (Mbps)"},
	}
	cfg := testbed.Emulab(10e6)
	bg := transfer.Setting{Concurrency: 5, Parallelism: 1, Pipelining: 1}
	agent := core.NewGDAgent(32)
	tl, err := runScenario(cfg, seed, 720,
		testbed.Participant{Task: endlessTask("falcon", 2), Controller: agent},
		testbed.Participant{Task: endlessTask("bg", 5), Controller: testbed.FixedController{S: bg}, JoinAt: 240, LeaveAt: 480},
	)
	if err != nil {
		return nil, err
	}
	phase := func(name string, t0, t1 float64) {
		cc := tl.Concurrency.Lookup("falcon").Between(t0, t1).Mean()
		tput := tl.MeanThroughputGbps("falcon", t0, t1)
		r.AddRow(name, fmt.Sprintf("%.1f", cc), fmt.Sprintf("%.1f", tput*1000))
	}
	phase("alone [120,240)", 120, 240)
	phase("background active [360,480)", 360, 480)
	phase("background gone [600,720)", 600, 720)
	copyChart(r.Chart("throughput"), &tl.Throughput)
	r.AddNote("Falcon tracks the moving optimum without restarts — the online property heuristic/supervised approaches lack")
	return r, nil
}
