package experiments

import (
	"testing"
)

// fleetOut renders a fleet run to the exact string cmd/fleet would
// print, plus its summary.
func fleetOut(t *testing.T, cfg FleetConfig) (string, *FleetSummary) {
	t.Helper()
	res, sum, err := Fleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.String(), sum
}

// TestFleetAggregateMatchesFull pins the streaming-aggregate memory
// diet's transparency: a fleet run in RecordMode "aggregate" must
// produce byte-identical report output — convergence time, equilibrium
// Jain, aggregate throughput, per-algorithm rows — to the same run in
// "full", whose metrics are recomputed from complete per-session
// series. Covered single- and multi-link, since each exercises a
// different recording path (plain scheduler vs sharded workers).
func TestFleetAggregateMatchesFull(t *testing.T) {
	for _, links := range []int{1, 4} {
		cfg := FleetConfig{Sessions: 60, Duration: 300, Stagger: 0.5, Seed: 3, Links: links}
		full, fullSum := fleetOut(t, cfg)
		cfg.RecordMode = "aggregate"
		agg, aggSum := fleetOut(t, cfg)
		if full != agg {
			t.Errorf("links=%d: aggregate-mode output differs from full:\n--- full ---\n%s\n--- aggregate ---\n%s", links, full, agg)
		}
		if fullSum.ConvergedAtSeconds != aggSum.ConvergedAtSeconds ||
			fullSum.EquilibriumJain != aggSum.EquilibriumJain ||
			fullSum.AggregateGbps != aggSum.AggregateGbps {
			t.Errorf("links=%d: summaries differ: full %+v, aggregate %+v", links, fullSum, aggSum)
		}
	}
}

// TestFleetMemoTransparent pins cross-session decision memoization's
// transparency: with measurement noise off and the fleet collapsed
// into seed groups (so twin sessions actually exist), the rendered
// report must be byte-identical with the memo on and off, while the
// memoized run reports a substantial hit rate — the cached decisions
// are reused, not merely stored.
func TestFleetMemoTransparent(t *testing.T) {
	base := FleetConfig{
		Sessions: 60, Duration: 300, Stagger: 0.05, Seed: 3,
		Links: 4, NoNoise: true, SeedGroups: 4, RecordMode: "aggregate",
	}
	plain, plainSum := fleetOut(t, base)
	memo := base
	memo.Memo = true
	warm, warmSum := fleetOut(t, memo)
	if plain != warm {
		t.Errorf("memoized output differs from unmemoized:\n--- memo off ---\n%s\n--- memo on ---\n%s", plain, warm)
	}
	if plainSum.DecisionMemoLookups != 0 || plainSum.SweepMemoLookups != 0 {
		t.Errorf("memo-off run performed lookups: %+v", plainSum)
	}
	if warmSum.DecisionMemoLookups == 0 || warmSum.SweepMemoLookups == 0 {
		t.Fatalf("memo-on run performed no lookups: %+v", warmSum)
	}
	// With 4 links × 4 seed groups the fleet is 16-way redundant per
	// (link, seed, algo); most decisions should be cache hits.
	if warmSum.DecisionMemoHitRate < 0.5 {
		t.Errorf("decision memo hit rate %.3f, want ≥ 0.5 (%d/%d)",
			warmSum.DecisionMemoHitRate, warmSum.DecisionMemoHits, warmSum.DecisionMemoLookups)
	}
	if warmSum.SweepMemoHitRate < 0.5 {
		t.Errorf("sweep memo hit rate %.3f, want ≥ 0.5 (%d/%d)",
			warmSum.SweepMemoHitRate, warmSum.SweepMemoHits, warmSum.SweepMemoLookups)
	}
}

// TestFleetMemoTransparentNoisy pins the harder half of the memo
// contract: even on the default noisy environment with all-distinct
// seeds — where states essentially never repeat and the caches buy
// nothing — the memoized run must still render byte-identically.
func TestFleetMemoTransparentNoisy(t *testing.T) {
	base := FleetConfig{Sessions: 45, Duration: 300, Stagger: 0.5, Seed: 3, Links: 3}
	plain, _ := fleetOut(t, base)
	memo := base
	memo.Memo = true
	warm, _ := fleetOut(t, memo)
	if plain != warm {
		t.Errorf("memoized output differs from unmemoized on the noisy fleet:\n--- memo off ---\n%s\n--- memo on ---\n%s", plain, warm)
	}
}

// TestFleetRecordOff pins the off mode's contract: the run completes,
// reports no metrics, and the summary carries the mode.
func TestFleetRecordOff(t *testing.T) {
	out, sum := fleetOut(t, FleetConfig{Sessions: 20, Duration: 120, Stagger: 0.5, Seed: 3, RecordMode: "off"})
	if sum.RecordMode != "off" {
		t.Fatalf("summary record mode = %q", sum.RecordMode)
	}
	if sum.ConvergedAtSeconds != -1 || sum.AggregateGbps != 0 {
		t.Fatalf("off mode computed metrics: %+v", sum)
	}
	if out == "" {
		t.Fatal("off mode rendered nothing")
	}
}

// TestFleetRejectsBadRecordMode pins flag validation.
func TestFleetRejectsBadRecordMode(t *testing.T) {
	if _, _, err := Fleet(FleetConfig{Sessions: 5, Duration: 60, RecordMode: "bogus"}); err == nil {
		t.Fatal("Fleet accepted record mode \"bogus\"")
	}
}
