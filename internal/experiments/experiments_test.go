package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a float cell, tolerating arrow pairs ("1.00→0.80" → last).
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	if i := strings.LastIndex(cell, "→"); i >= 0 {
		cell = cell[i+len("→"):]
	}
	cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
	cell = strings.TrimPrefix(cell, "+")
	cell = strings.TrimPrefix(cell, "−")
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("registry has %d entries, want 28 (Table 1 + 18 figure panels + 9 ablations)", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment ID %q", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("experiment %q incomplete", r.ID)
		}
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("ByID(fig4) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found something")
	}
}

// TestEveryExperimentRuns executes every registered runner end-to-end
// and checks structural invariants of the results: non-empty tables
// whose rows match the header width. This is the repository's
// regression net for the full evaluation.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation suite")
	}
	for _, runner := range All() {
		runner := runner
		t.Run(runner.ID, func(t *testing.T) {
			t.Parallel()
			res, err := runner.Run(2) // a seed the shape tests don't use
			if err != nil {
				t.Fatalf("%s: %v", runner.ID, err)
			}
			if res.ID != runner.ID {
				t.Fatalf("result ID %q != runner ID %q", res.ID, runner.ID)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range res.Rows {
				if len(row) != len(res.Header) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(res.Header))
				}
			}
			if res.String() == "" {
				t.Fatal("empty render")
			}
		})
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddNote("hello %d", 5)
	out := r.String()
	for _, want := range []string{"== x: T ==", "a", "bb", "hello 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if r.Chart("c") != r.Chart("c") {
		t.Fatal("Chart not idempotent")
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 testbeds", len(r.Rows))
	}
	bottlenecks := map[string]bool{}
	for _, row := range r.Rows {
		bottlenecks[row[4]] = true
	}
	for _, want := range []string{"Network", "Disk Read", "Disk Write", "NIC"} {
		if !bottlenecks[want] {
			t.Errorf("missing bottleneck %q", want)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	r, err := Fig1a(1)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrency must raise HPCLab throughput by ≥3x (paper: 3-15x).
	first := parse(t, r.Rows[0][1])
	best := 0.0
	for _, row := range r.Rows {
		if v := parse(t, row[1]); v > best {
			best = v
		}
	}
	if best < 3*first {
		t.Fatalf("HPCLab gain %v/%v < 3x", best, first)
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	var at10, at32 float64
	for _, row := range r.Rows {
		if row[0] == "10" {
			at10 = parse(t, row[2])
		}
		if row[0] == "32" {
			at32 = parse(t, row[2])
		}
	}
	if at10 > 2.0 {
		t.Fatalf("loss at 10 = %v%%, want <2%%", at10)
	}
	if at32 < 5.0 {
		t.Fatalf("loss at 32 = %v%%, want ≥5%%", at32)
	}
}

func TestFig6aShape(t *testing.T) {
	r, err := Fig6a(1)
	if err != nil {
		t.Fatal(err)
	}
	peaks := map[string]float64{}
	for _, row := range r.Rows {
		peaks[row[0]] = parse(t, row[1])
	}
	if p := peaks["linear C=0.02"]; p < 20 || p > 30 {
		t.Fatalf("C=0.02 peak = %v, want ≈25", p)
	}
	if p := peaks["nonlinear K=1.02"]; p < 44 || p > 52 {
		t.Fatalf("nonlinear peak = %v, want ≈48", p)
	}
}

func TestFig2bLateComerAdvantage(t *testing.T) {
	r, err := Fig2b(1)
	if err != nil {
		t.Fatal(err)
	}
	first := parse(t, r.Rows[0][1])
	second := parse(t, r.Rows[1][1])
	if second < 1.3*first {
		t.Fatalf("late-comer %v vs incumbent %v: want clear advantage (paper ~2x)", second, first)
	}
}

func TestFig7Ordering(t *testing.T) {
	r, err := Fig7(1)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, row := range r.Rows {
		if row[1] == "never" {
			t.Fatalf("%s never converged", row[0])
		}
		times[row[0]] = parse(t, row[1])
	}
	if times["hc"] < 2*times["gd"] {
		t.Fatalf("HC (%v s) should be much slower than GD (%v s)", times["hc"], times["gd"])
	}
}

func TestFig9Utilization(t *testing.T) {
	r, err := Fig9(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		tput := parse(t, row[1])
		capacity := parse(t, row[3])
		if tput < 0.7*capacity {
			t.Fatalf("%s: Falcon-GD at %v of %v Gbps (<70%% utilization)", row[0], tput, capacity)
		}
	}
}

func TestFig14FalconWins(t *testing.T) {
	r, err := Fig14(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		globus := parse(t, row[1])
		gd := parse(t, row[3])
		if gd < 1.5*globus {
			t.Fatalf("%s: Falcon-GD %v vs Globus %v, want ≥1.5x (paper 2-6x)", row[0], gd, globus)
		}
	}
}
