package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// allNetworks runs one Falcon agent per Table 1 testbed and reports the
// converged throughput and concurrency — the content of Figures 9 (GD)
// and 10 (BO). The four testbeds share no engine, so they run across
// the parallel worker pool into per-network slots that are assembled in
// Table 1 order — byte-identical to a serial loop.
func allNetworks(id, title, algo string, seed int64) (*Result, error) {
	r := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"Testbed", "Converged throughput (Gbps)", "Converged concurrency", "Capacity (Gbps)"},
	}
	cfgs := testbed.Table1()
	type slot struct {
		tl       *testbed.Timeline
		capacity float64
		err      error
	}
	slots := make([]slot, len(cfgs))
	parallel.ForEach(len(cfgs), func(i int) {
		cfg := cfgs[i]
		agent, err := core.NewAgentByName(algo, 32, seed)
		if err != nil {
			slots[i].err = err
			return
		}
		tl, err := runScenario(cfg, seed, 300, testbed.Participant{Task: endlessTask(cfg.Name, 2), Controller: agent})
		if err != nil {
			slots[i].err = err
			return
		}
		eng, err := testbed.NewEngine(cfg, seed)
		if err != nil {
			slots[i].err = err
			return
		}
		slots[i] = slot{tl: tl, capacity: eng.EndToEndCapacity()}
	})
	const horizon = 300.0
	for i, cfg := range cfgs {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		tl := slots[i].tl
		tput := tl.MeanThroughputGbps(cfg.Name, horizon*0.5, horizon)
		cc := tl.Concurrency.Lookup(cfg.Name).MeanAfter(horizon * 0.5)
		r.AddRow(cfg.Name, fmt.Sprintf("%.2f", tput), fmt.Sprintf("%.1f", cc), gbps(slots[i].capacity))
		copyChart(r.Chart("throughput"), &tl.Throughput)
		copyChart(r.Chart("concurrency"), &tl.Concurrency)
		r.AddNote("%s: %.0f%% of end-to-end capacity", cfg.Name, 100*tput*1e9/slots[i].capacity)
	}
	return r, nil
}

// Fig9 evaluates Falcon with Gradient Descent in all four networks.
func Fig9(seed int64) (*Result, error) {
	return allNetworks("fig9", "Falcon-GD in all four networks", core.AlgoGradient, seed)
}

// Fig10 evaluates Falcon with Bayesian Optimization in all four
// networks.
func Fig10(seed int64) (*Result, error) {
	return allNetworks("fig10", "Falcon-BO in all four networks", core.AlgoBayesian, seed)
}

// competing runs three staggered Falcon agents on HPCLab and reports
// per-phase shares and fairness — Figures 11 (GD) and 12 (BO).
func competing(id, title, algo string, seed int64) (*Result, error) {
	r := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"Phase", "Agent 1 (Gbps)", "Agent 2 (Gbps)", "Agent 3 (Gbps)", "Jain"},
	}
	cfg := testbed.HPCLab()
	mk := func() (testbed.Controller, error) { return core.NewAgentByName(algo, 32, seed) }
	a1, err := mk()
	if err != nil {
		return nil, err
	}
	a2, err := mk()
	if err != nil {
		return nil, err
	}
	a3, err := mk()
	if err != nil {
		return nil, err
	}
	tl, err := runScenario(cfg, seed, 720,
		testbed.Participant{Task: endlessTask("t1", 2), Controller: a1},
		testbed.Participant{Task: endlessTask("t2", 2), Controller: a2, JoinAt: 180},
		testbed.Participant{Task: endlessTask("t3", 2), Controller: a3, JoinAt: 360, LeaveAt: 560},
	)
	if err != nil {
		return nil, err
	}
	phase := func(name string, t0, t1 float64, ids ...string) {
		var vals []float64
		cells := []string{name}
		for _, id := range []string{"t1", "t2", "t3"} {
			active := false
			for _, want := range ids {
				if want == id {
					active = true
				}
			}
			if !active {
				cells = append(cells, "-")
				continue
			}
			v := tl.MeanThroughputGbps(id, t0, t1)
			vals = append(vals, v)
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		cells = append(cells, fmt.Sprintf("%.3f", stats.JainIndex(vals)))
		r.AddRow(cells...)
	}
	phase("solo [60,180)", 60, 180, "t1")
	phase("two agents [260,360)", 260, 360, "t1", "t2")
	phase("three agents [440,560)", 440, 560, "t1", "t2", "t3")
	phase("after departure [620,720)", 620, 720, "t1", "t2")
	copyChart(r.Chart("throughput"), &tl.Throughput)
	copyChart(r.Chart("concurrency"), &tl.Concurrency)
	r.AddNote("paper: 12-13 Gbps each with two transfers, 7-8 Gbps each with three; remaining agents reclaim bandwidth on departure")
	return r, nil
}

// Fig11 analyses Falcon-GD stability when multiple agents compete.
func Fig11(seed int64) (*Result, error) {
	return competing("fig11", "Falcon-GD under competition (HPCLab)", core.AlgoGradient, seed)
}

// Fig12 analyses Falcon-BO stability when multiple agents compete.
func Fig12(seed int64) (*Result, error) {
	return competing("fig12", "Falcon-BO under competition (HPCLab)", core.AlgoBayesian, seed)
}

// Fig13 tracks the concurrency values of three staggered Falcon-GD
// agents on the 48-optimum Emulab environment: the incumbent reduces
// its concurrency when competitors join and reclaims it when they
// leave.
func Fig13(seed int64) (*Result, error) {
	r := &Result{
		ID:     "fig13",
		Title:  "Concurrency adaptation as Falcon-GD agents join and leave (optimum ≈48)",
		Header: []string{"Phase", "Agent 1 cc", "Agent 2 cc", "Agent 3 cc", "Total cc"},
	}
	cfg := testbed.EmulabGigabit(20.83e6)
	tl, err := runScenario(cfg, seed, 1100,
		testbed.Participant{Task: endlessTask("t1", 2), Controller: core.NewGDAgent(100)},
		testbed.Participant{Task: endlessTask("t2", 2), Controller: core.NewGDAgent(100), JoinAt: 250, LeaveAt: 900},
		testbed.Participant{Task: endlessTask("t3", 2), Controller: core.NewGDAgent(100), JoinAt: 500, LeaveAt: 750},
	)
	if err != nil {
		return nil, err
	}
	cc := func(id string, t0, t1 float64) float64 {
		s := tl.Concurrency.Lookup(id)
		if s == nil {
			return 0
		}
		return s.Between(t0, t1).Mean()
	}
	phase := func(name string, t0, t1 float64, ids ...string) {
		cells := []string{name}
		total := 0.0
		for _, id := range []string{"t1", "t2", "t3"} {
			active := false
			for _, want := range ids {
				if want == id {
					active = true
				}
			}
			if !active {
				cells = append(cells, "-")
				continue
			}
			v := cc(id, t0, t1)
			total += v
			cells = append(cells, fmt.Sprintf("%.0f", v))
		}
		cells = append(cells, fmt.Sprintf("%.0f", total))
		r.AddRow(cells...)
	}
	phase("solo [150,250)", 150, 250, "t1")
	phase("two agents [380,500)", 380, 500, "t1", "t2")
	phase("three agents [620,750)", 620, 750, "t1", "t2", "t3")
	phase("back to two [800,900)", 800, 900, "t1", "t2")
	phase("solo again [1000,1100)", 1000, 1100, "t1")
	copyChart(r.Chart("concurrency"), &tl.Concurrency)
	r.AddNote("paper: solo agent ≈48; with two, incumbent drops to 20-33; with three, all in 10-23; departures reclaimed quickly")
	return r, nil
}
