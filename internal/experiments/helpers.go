package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/transfer"
)

// endlessTask builds a task over a dataset big enough not to drain
// within experiment horizons (timeline figures end by the clock, not by
// completion).
func endlessTask(id string, n int) *transfer.Task {
	return mustTask(id, dataset.Uniform(id, 20000, int64(dataset.GB)),
		transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1})
}

// fleetTask is endlessTask over one dataset shared by the whole fleet:
// tasks never mutate their (sealed) dataset and track progress in
// their own counters, while per-session labels would intern a distinct
// 20000-file dataset per session — hundreds of MB at 10k sessions.
// File names are unobservable in simulator output, so results are
// unchanged.
func fleetTask(id string, n int) *transfer.Task {
	return mustTask(id, dataset.Uniform("fleet", 20000, int64(dataset.GB)),
		transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1})
}

// mustTask wraps transfer.NewTask for internally-constructed inputs.
func mustTask(id string, ds *dataset.Dataset, s transfer.Setting) *transfer.Task {
	t, err := transfer.NewTask(id, ds, s)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return t
}

// runScenario runs a set of participants on a testbed and returns the
// timeline. Each participant runs as one session loop on the engine's
// virtual clock; the timeline is recorded by consuming the sessions'
// event streams (testbed.Timeline.Sink).
func runScenario(cfg testbed.Config, seed int64, horizon float64, parts ...testbed.Participant) (*testbed.Timeline, error) {
	eng, err := testbed.NewEngine(cfg, seed)
	if err != nil {
		return nil, err
	}
	s := testbed.NewScheduler(eng, 1)
	for _, p := range parts {
		if err := s.Add(p); err != nil {
			return nil, err
		}
	}
	return s.Run(horizon, 0.25), nil
}

// copyChart copies a timeline TimeSet series into a Result chart under
// the given name.
func copyChart(dst *trace.TimeSet, src *trace.TimeSet) {
	if src == nil {
		return
	}
	for _, s := range src.Series {
		d := dst.Get(s.Name)
		d.Points = append(d.Points, s.Points...)
	}
}
