package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// FleetFlapDoc returns the canonical dynamic-network scenario: a
// mixed hc/gd/bo fleet on the shared "fleet" bottleneck, disturbed by
// a cross-traffic wave that claims three quarters of the 10 Gbps link
// mid-run. The same document is checked in as
// examples/scenarios/fleet-flap.json (a test pins the two equal), so
// `falconsim -scenario`, `fleet -scenario`, the webservice POST API,
// and the fleet-flap experiment all run the identical scenario.
func FleetFlapDoc() *scenario.Document {
	return &scenario.Document{
		Version:         scenario.Version,
		Name:            "fleet-flap",
		Preset:          "fleet",
		Seed:            1,
		DurationSeconds: 600,
		Agents: []scenario.AgentSpec{
			{ID: "hc", Count: 20, Algorithm: "hc", JoinStagger: 3, MaxConcurrency: 8,
				Dataset: &scenario.DatasetSpec{Label: "fleet"}},
			{ID: "gd", Count: 20, Algorithm: "gd", JoinAt: 1, JoinStagger: 3, MaxConcurrency: 8,
				Dataset: &scenario.DatasetSpec{Label: "fleet"}},
			{ID: "bo", Count: 20, Algorithm: "bo", JoinAt: 2, JoinStagger: 3, MaxConcurrency: 8,
				Dataset: &scenario.DatasetSpec{Label: "fleet"}},
		},
		Mutations: []scenario.MutationSpec{
			{At: 300, Kind: scenario.KindCrossTraffic, Rate: 7.5e9, DurationSeconds: 120},
		},
	}
}

// DynamicFleet executes a scenario document with link mutations and
// reports time-to-refairness: for every compiled link-capacity
// horizon, the fleet-wide Jain index immediately before the change,
// the deepest dip after it, and when (and whether) the fleet
// re-converges to Jain ≥ 0.95 — the paper's online-tuning argument
// quantified under a non-stationary network.
func DynamicFleet(doc *scenario.Document) (*Result, error) {
	run, err := doc.Build()
	if err != nil {
		return nil, err
	}
	// Gather the link-capacity horizons from the per-shard schedules:
	// a mutation on a pinned route compiles only into the shard it
	// touches, so the legacy default-route schedule alone would miss
	// it. Shard order breaks same-time ties deterministically.
	var events []testbed.Mutation
	for _, sp := range run.Shards {
		for _, m := range sp.Mutations {
			if m.Kind == testbed.MutLinkCapacity {
				events = append(events, m)
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	if len(events) == 0 {
		return nil, fmt.Errorf("dynamicfleet: scenario %q has no link mutations", doc.Name)
	}
	tl, err := run.Execute(scenario.ExecOptions{})
	if err != nil {
		return nil, err
	}

	r := &Result{
		ID: "fleet-flap",
		Title: fmt.Sprintf("Dynamic fleet: %d sessions under link mutations (%s)",
			len(run.AgentIDs), doc.Name),
		Header: []string{"t (s)", "Link (Gbps)", "Jain before", "Jain dip", "Refair t (s)", "Refair (s)"},
	}

	// Fleet-wide Jain over a sliding window of per-session means.
	const window = 20.0
	jain := func(t0 float64) float64 {
		means := make([]float64, len(run.AgentIDs))
		for i, id := range run.AgentIDs {
			means[i] = tl.MeanThroughputGbps(id, t0, t0+window)
		}
		return stats.JainIndex(means)
	}

	horizon := doc.DurationSeconds
	for i, ev := range events {
		before := jain(math.Max(0, ev.At-window))
		// Dip: the minimum windowed Jain between this event and the
		// next (or the horizon), slid in half-window steps.
		end := horizon
		if i+1 < len(events) {
			end = events[i+1].At
		}
		dip := math.Inf(1)
		refair := -1.0
		for t := ev.At; t+window <= end; t += window / 2 {
			j := jain(t)
			if j < dip {
				dip = j
			}
			if refair < 0 && j >= 0.95 {
				refair = t
			}
		}
		if math.IsInf(dip, 1) {
			dip = jain(ev.At)
		}
		refairCell, deltaCell := "never", "—"
		if refair >= 0 {
			refairCell = fmt.Sprintf("%.0f", refair)
			deltaCell = fmt.Sprintf("%.0f", refair-ev.At)
		}
		r.AddRow(fmt.Sprintf("%.0f", ev.At), fmt.Sprintf("%.1f", ev.Capacity/1e9),
			fmt.Sprintf("%.3f", before), fmt.Sprintf("%.3f", dip), refairCell, deltaCell)
		r.AddNote("t=%.0fs link→%.1f Gbps: Jain %.3f → dip %.3f, refair(0.95) %s",
			ev.At, ev.Capacity/1e9, before, dip, refairCell)
	}

	// Equilibrium sanity over the final window. The capacity label sums
	// the shard bottlenecks (a single-shard run is just its one link).
	finalJ := jain(horizon - window)
	agg := 0.0
	for _, id := range run.AgentIDs {
		agg += tl.MeanThroughputGbps(id, horizon-window, horizon)
	}
	capacity := 0.0
	for _, sp := range run.Shards {
		capacity += sp.Config.LinkCapacity
	}
	r.AddNote("final window [%.0fs, %.0fs]: Jain %.3f, aggregate %.2f Gbps (link %.1f Gbps)",
		horizon-window, horizon, finalJ, agg, capacity/1e9)
	return r, nil
}

// Extra returns experiments that are registered (resolvable by ID via
// ByID and cmd/reproduce -only) but deliberately outside All():
// running the default suite stays byte-identical while dynamic and
// scale workloads remain one -only flag away.
func Extra() []Runner {
	return []Runner{
		{"fleet-flap", "Dynamic fleet: capacity flap on the shared bottleneck", func(seed int64) (*Result, error) {
			doc := FleetFlapDoc()
			doc.Seed = seed
			return DynamicFleet(doc)
		}},
	}
}
