package bayesopt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/optimizer"
)

// Search is Falcon's Bayesian Optimization concurrency searcher. It
// satisfies optimizer.Search: every Next call folds the latest
// observation into a sliding window, refits the GP surrogate, lets the
// GP-Hedge portfolio pick an acquisition function, and proposes the
// integer concurrency that maximises it.
type Search struct {
	// MaxN bounds the search space [1, MaxN].
	MaxN int
	// Window is the maximum number of past observations retained in
	// the surrogate (the paper uses 20: cheap GP solves and forced
	// re-exploration under drift).
	Window int
	// InitSamples is the length of the uniform random sampling phase
	// (the paper uses 3).
	InitSamples int

	gp    *GP
	hedge *Hedge
	rng   *rand.Rand
	xs    []float64
	ys    []float64
	seen  int
}

var _ optimizer.Search = (*Search)(nil)

// New returns a BO searcher over [1, maxN] with the paper's defaults
// and a deterministic seed. It panics if maxN < 1.
func New(maxN int, seed int64) *Search {
	if maxN < 1 {
		panic(fmt.Sprintf("bayesopt: maxN %d must be ≥ 1", maxN))
	}
	rng := rand.New(rand.NewSource(seed))
	// Length scale relative to the domain keeps the surrogate smooth
	// without washing out the peak.
	ls := float64(maxN) / 6
	if ls < 1 {
		ls = 1
	}
	return &Search{
		MaxN:        maxN,
		Window:      20,
		InitSamples: 3,
		gp:          NewGP(ls, 1.0, 0.02),
		hedge:       NewHedge(DefaultPortfolio(), 0.5, rand.New(rand.NewSource(seed+1))),
		rng:         rng,
	}
}

// Name implements optimizer.Search.
func (s *Search) Name() string { return "bayesian-optimization" }

// Next implements optimizer.Search.
func (s *Search) Next(obs optimizer.Observation) int {
	s.observe(float64(obs.N), obs.Utility)
	if s.seen < s.InitSamples {
		// Uniform random sampling phase (uniform prior, no bias).
		return 1 + s.rng.Intn(s.MaxN)
	}
	if err := s.fitWithModelSelection(); err != nil {
		// Degenerate window (should not happen with noise+jitter):
		// fall back to random exploration rather than halting.
		return 1 + s.rng.Intn(s.MaxN)
	}
	best := math.Inf(-1)
	for _, y := range s.ys {
		if y > best {
			best = y
		}
	}
	// Standardised "best" consistent with Score inputs: Predict returns
	// original units, so pass best in original units too.
	n := s.hedge.Propose(s.gp, 1, s.MaxN, best)
	return n
}

// fitWithModelSelection refits the surrogate, choosing the kernel
// length scale by log marginal likelihood over a small grid — the
// hyperparameter tuning §3.2 delegates to the BO layer. The grid stays
// tiny (3 candidates over a ≤20-point window) so refits remain
// milliseconds-cheap.
func (s *Search) fitWithModelSelection() error {
	base := float64(s.MaxN) / 6
	if base < 1 {
		base = 1
	}
	bestLML := math.Inf(-1)
	bestLS := s.gp.LengthScale
	fitted := false
	for _, ls := range []float64{base / 2, base, base * 2} {
		s.gp.LengthScale = ls
		if err := s.gp.Fit(s.xs, s.ys); err != nil {
			continue
		}
		if lml := s.gp.LogMarginalLikelihood(); lml > bestLML {
			bestLML = lml
			bestLS = ls
		}
		fitted = true
	}
	if !fitted {
		return fmt.Errorf("bayesopt: no length scale produced a valid fit")
	}
	s.gp.LengthScale = bestLS
	return s.gp.Fit(s.xs, s.ys)
}

// observe appends an observation, evicting the oldest beyond Window.
func (s *Search) observe(x, y float64) {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	if len(s.xs) > s.Window {
		s.xs = s.xs[1:]
		s.ys = s.ys[1:]
	}
	s.seen++
}

// Observations returns copies of the current window (for tests and
// diagnostics).
func (s *Search) Observations() ([]float64, []float64) {
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// Hedge is the GP-Hedge acquisition portfolio: each round every
// acquisition nominates its argmax candidate; one nominee is drawn with
// probability softmax(η·gains); afterwards every acquisition's gain is
// incremented by the posterior mean at its own nominee. Exploration-
// exploitation balance is thereby tuned online, as §3.2 describes.
type Hedge struct {
	acqs  []Acquisition
	eta   float64
	gains []float64
	rng   *rand.Rand

	// nominees of the current round, kept to update gains next round.
	lastNominees []int
	hasNominees  bool
}

// NewHedge builds a portfolio with learning rate eta. It panics on an
// empty portfolio or non-positive eta.
func NewHedge(acqs []Acquisition, eta float64, rng *rand.Rand) *Hedge {
	if len(acqs) == 0 {
		panic("bayesopt: empty acquisition portfolio")
	}
	if eta <= 0 {
		panic(fmt.Sprintf("bayesopt: eta %v must be positive", eta))
	}
	return &Hedge{acqs: acqs, eta: eta, gains: make([]float64, len(acqs)), rng: rng}
}

// Propose returns the next integer point in [lo, hi] chosen by the
// portfolio against the fitted GP.
func (h *Hedge) Propose(gp *GP, lo, hi int, best float64) int {
	// Update gains with the posterior means at last round's nominees —
	// the Hedge reward signal, normalised by the observed utility scale
	// so units cannot destabilise the weights.
	scale := math.Abs(best)
	if scale < 1e-12 {
		scale = 1e-12
	}
	if h.hasNominees {
		for i, x := range h.lastNominees {
			mu, _ := gp.Predict(float64(x))
			h.gains[i] += math.Tanh(mu / scale)
		}
	}

	// Each acquisition nominates its argmax over the integer grid.
	nominees := make([]int, len(h.acqs))
	for i, a := range h.acqs {
		bestScore := math.Inf(-1)
		bestX := lo
		for x := lo; x <= hi; x++ {
			mu, sd := gp.Predict(float64(x))
			if sc := a.Score(mu, sd, best); sc > bestScore {
				bestScore, bestX = sc, x
			}
		}
		nominees[i] = bestX
	}
	h.lastNominees = nominees
	h.hasNominees = true

	// Softmax draw over gains.
	maxG := h.gains[0]
	for _, g := range h.gains[1:] {
		if g > maxG {
			maxG = g
		}
	}
	weights := make([]float64, len(h.gains))
	sum := 0.0
	for i, g := range h.gains {
		w := math.Exp(h.eta * (g - maxG))
		weights[i] = w
		sum += w
	}
	r := h.rng.Float64() * sum
	for i, w := range weights {
		if r < w {
			return nominees[i]
		}
		r -= w
	}
	return nominees[len(nominees)-1]
}

// Gains returns a copy of the portfolio gains (diagnostics).
func (h *Hedge) Gains() []float64 { return append([]float64(nil), h.gains...) }
