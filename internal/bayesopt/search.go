package bayesopt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/optimizer"
)

// Search is Falcon's Bayesian Optimization concurrency searcher. It
// satisfies optimizer.Search: every Next call folds the latest
// observation into a sliding window, refits the GP surrogate, lets the
// GP-Hedge portfolio pick an acquisition function, and proposes the
// integer concurrency that maximises it.
type Search struct {
	// MaxN bounds the search space [1, MaxN].
	MaxN int
	// Window is the maximum number of past observations retained in
	// the surrogate (the paper uses 20: cheap GP solves and forced
	// re-exploration under drift).
	Window int
	// InitSamples is the length of the uniform random sampling phase
	// (the paper uses 3).
	InitSamples int

	gp    *GP
	cands []*GP
	hedge *Hedge
	rng   *rand.Rand
	xs    []float64
	ys    []float64
	seen  int
}

var _ optimizer.Search = (*Search)(nil)

// New returns a BO searcher over [1, maxN] with the paper's defaults
// and a deterministic seed. It panics if maxN < 1.
func New(maxN int, seed int64) *Search {
	if maxN < 1 {
		panic(fmt.Sprintf("bayesopt: maxN %d must be ≥ 1", maxN))
	}
	rng := rand.New(rand.NewSource(seed))
	// Length scale relative to the domain keeps the surrogate smooth
	// without washing out the peak. Model selection at each refit picks
	// among {base/2, base, base·2} by log marginal likelihood; each
	// candidate is a persistent GP so its Cholesky factor updates
	// incrementally as the window slides instead of refitting from
	// scratch.
	base := float64(maxN) / 6
	if base < 1 {
		base = 1
	}
	cands := []*GP{
		NewGP(base/2, 1.0, 0.02),
		NewGP(base, 1.0, 0.02),
		NewGP(base*2, 1.0, 0.02),
	}
	return &Search{
		MaxN:        maxN,
		Window:      20,
		InitSamples: 3,
		gp:          cands[1],
		cands:       cands,
		hedge:       NewHedge(DefaultPortfolio(), 0.5, rand.New(rand.NewSource(seed+1))),
		rng:         rng,
	}
}

// Name implements optimizer.Search.
func (s *Search) Name() string { return "bayesian-optimization" }

// Next implements optimizer.Search.
func (s *Search) Next(obs optimizer.Observation) int {
	s.observe(float64(obs.N), obs.Utility)
	if s.seen < s.InitSamples {
		// Uniform random sampling phase (uniform prior, no bias).
		return 1 + s.rng.Intn(s.MaxN)
	}
	if err := s.fitWithModelSelection(); err != nil {
		// Degenerate window (should not happen with noise+jitter):
		// fall back to random exploration rather than halting.
		return 1 + s.rng.Intn(s.MaxN)
	}
	best := math.Inf(-1)
	for _, y := range s.ys {
		if y > best {
			best = y
		}
	}
	// Standardised "best" consistent with Score inputs: Predict returns
	// original units, so pass best in original units too.
	n := s.hedge.Propose(s.gp, 1, s.MaxN, best)
	return n
}

// fitWithModelSelection refits the surrogate, choosing the kernel
// length scale by log marginal likelihood over a small grid — the
// hyperparameter tuning §3.2 delegates to the BO layer. Each grid
// point is a persistent GP whose hyperparameters never change, so
// every refit takes the incremental O(n²) Cholesky path and the winner
// is already fitted — no final refit needed.
func (s *Search) fitWithModelSelection() error {
	bestLML := math.Inf(-1)
	var bestGP *GP
	for _, g := range s.cands {
		if err := g.Fit(s.xs, s.ys); err != nil {
			continue
		}
		if lml := g.LogMarginalLikelihood(); lml > bestLML {
			bestLML = lml
			bestGP = g
		}
	}
	if bestGP == nil {
		return fmt.Errorf("bayesopt: no length scale produced a valid fit")
	}
	s.gp = bestGP
	return nil
}

// observe appends an observation, evicting the oldest beyond Window.
// Eviction shifts in place (rather than reslicing) so the window
// buffers are allocated once; the shifted prefix is what lets the GP
// recognise the slide and update its factor incrementally. A Window
// shrunk between calls (ablations mutate it) evicts more than one
// point, which the GPs handle by refactoring.
func (s *Search) observe(x, y float64) {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	if drop := len(s.xs) - s.Window; drop > 0 {
		copy(s.xs, s.xs[drop:])
		copy(s.ys, s.ys[drop:])
		s.xs = s.xs[:s.Window]
		s.ys = s.ys[:s.Window]
	}
	s.seen++
}

// Observations returns copies of the current window (for tests and
// diagnostics).
func (s *Search) Observations() ([]float64, []float64) {
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// Hedge is the GP-Hedge acquisition portfolio: each round every
// acquisition nominates its argmax candidate; one nominee is drawn with
// probability softmax(η·gains); afterwards every acquisition's gain is
// incremented by the posterior mean at its own nominee. Exploration-
// exploitation balance is thereby tuned online, as §3.2 describes.
type Hedge struct {
	acqs  []Acquisition
	eta   float64
	gains []float64
	rng   *rand.Rand

	// nominees of the current round, kept to update gains next round
	// (and reused as the next round's scratch once consumed).
	lastNominees []int
	weights      []float64
	hasNominees  bool
}

// NewHedge builds a portfolio with learning rate eta. It panics on an
// empty portfolio or non-positive eta.
func NewHedge(acqs []Acquisition, eta float64, rng *rand.Rand) *Hedge {
	if len(acqs) == 0 {
		panic("bayesopt: empty acquisition portfolio")
	}
	if eta <= 0 {
		panic(fmt.Sprintf("bayesopt: eta %v must be positive", eta))
	}
	return &Hedge{
		acqs:         acqs,
		eta:          eta,
		gains:        make([]float64, len(acqs)),
		rng:          rng,
		lastNominees: make([]int, len(acqs)),
		weights:      make([]float64, len(acqs)),
	}
}

// Propose returns the next integer point in [lo, hi] chosen by the
// portfolio against the fitted GP.
func (h *Hedge) Propose(gp *GP, lo, hi int, best float64) int {
	// Update gains with the posterior means at last round's nominees —
	// the Hedge reward signal, normalised by the observed utility scale
	// so units cannot destabilise the weights.
	scale := math.Abs(best)
	if scale < 1e-12 {
		scale = 1e-12
	}
	if h.hasNominees {
		for i, x := range h.lastNominees {
			mu, _ := gp.Predict(float64(x))
			h.gains[i] += math.Tanh(mu / scale)
		}
	}

	// Each acquisition nominates its argmax over the integer grid. The
	// previous nominees were consumed above, so their slice is reused.
	// One posterior evaluation per grid point serves every acquisition.
	nominees := h.lastNominees[:len(h.acqs)]
	scores := h.weights[:len(h.acqs)]
	for i := range scores {
		scores[i] = math.Inf(-1)
		nominees[i] = lo
	}
	for x := lo; x <= hi; x++ {
		mu, sd := gp.Predict(float64(x))
		for i, a := range h.acqs {
			if sc := a.Score(mu, sd, best); sc > scores[i] {
				scores[i], nominees[i] = sc, x
			}
		}
	}
	h.lastNominees = nominees
	h.hasNominees = true

	// Softmax draw over gains.
	maxG := h.gains[0]
	for _, g := range h.gains[1:] {
		if g > maxG {
			maxG = g
		}
	}
	weights := h.weights[:len(h.gains)]
	sum := 0.0
	for i, g := range h.gains {
		w := math.Exp(h.eta * (g - maxG))
		weights[i] = w
		sum += w
	}
	r := h.rng.Float64() * sum
	for i, w := range weights {
		if r < w {
			return nominees[i]
		}
		r -= w
	}
	return nominees[len(nominees)-1]
}

// Gains returns a copy of the portfolio gains (diagnostics).
func (h *Hedge) Gains() []float64 { return append([]float64(nil), h.gains...) }
