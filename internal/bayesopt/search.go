package bayesopt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/optimizer"
)

// Search is Falcon's Bayesian Optimization concurrency searcher. It
// satisfies optimizer.Search: every Next call folds the latest
// observation into a sliding window, refits the GP surrogate, lets the
// GP-Hedge portfolio pick an acquisition function, and proposes the
// integer concurrency that maximises it.
type Search struct {
	// MaxN bounds the search space [1, MaxN].
	MaxN int
	// Window is the maximum number of past observations retained in
	// the surrogate (the paper uses 20: cheap GP solves and forced
	// re-exploration under drift).
	Window int
	// InitSamples is the length of the uniform random sampling phase
	// (the paper uses 3).
	InitSamples int

	gp    *GP
	cands []*GP
	hedge *Hedge
	rng   *rand.Rand
	xs    []float64
	ys    []float64
	seen  int

	// Batched decision-path buffers: the integer candidate grid
	// [1, MaxN] and the posterior sweep over it. One set, owned here,
	// shared by whichever length-scale candidate wins model selection —
	// the steady-state decision allocates nothing.
	grid  []float64
	means []float64
	stds  []float64

	// memo, when attached, shares the fit+sweep stage across twin
	// searchers within a scheduling shard (see SweepMemo).
	memo *SweepMemo
}

var _ optimizer.Search = (*Search)(nil)

// New returns a BO searcher over [1, maxN] with the paper's defaults
// and a deterministic seed. It panics if maxN < 1.
func New(maxN int, seed int64) *Search {
	return NewWithSources(maxN, rand.NewSource(seed), rand.NewSource(seed+1))
}

// NewWithSources is New with caller-supplied random sources for the
// sampling phase and the Hedge portfolio. The pinned experiments go
// through New (math/rand's default source, byte-frozen outputs); fleet
// runs pass compact fastrand sources, whose ~8-byte state is what
// makes a million seeded searchers affordable. It panics if maxN < 1.
func NewWithSources(maxN int, src, hedgeSrc rand.Source) *Search {
	if maxN < 1 {
		panic(fmt.Sprintf("bayesopt: maxN %d must be ≥ 1", maxN))
	}
	rng := rand.New(src)
	// Length scale relative to the domain keeps the surrogate smooth
	// without washing out the peak. Model selection at each refit picks
	// among {base/2, base, base·2} by log marginal likelihood; each
	// candidate is a persistent GP so its Cholesky factor updates
	// incrementally as the window slides instead of refitting from
	// scratch.
	base := float64(maxN) / 6
	if base < 1 {
		base = 1
	}
	cands := []*GP{
		NewGP(base/2, 1.0, 0.02),
		NewGP(base, 1.0, 0.02),
		NewGP(base*2, 1.0, 0.02),
	}
	return &Search{
		MaxN:        maxN,
		Window:      20,
		InitSamples: 3,
		gp:          cands[1],
		cands:       cands,
		hedge:       NewHedge(DefaultPortfolio(), 0.5, rand.New(hedgeSrc)),
		rng:         rng,
	}
}

// Name implements optimizer.Search.
func (s *Search) Name() string { return "bayesian-optimization" }

// Next implements optimizer.Search.
func (s *Search) Next(obs optimizer.Observation) int {
	s.observe(float64(obs.N), obs.Utility)
	if s.seen < s.InitSamples {
		// Uniform random sampling phase (uniform prior, no bias).
		return 1 + s.rng.Intn(s.MaxN)
	}
	if s.memo != nil {
		// Shared fit/sweep memo: a hit restores the complete post-fit
		// state (factors, alphas, winner, posterior sweep) captured
		// from a twin searcher, bitwise equal to running the fit below.
		// The portfolio draw stays local either way.
		s.ensureSweepBuffers()
		if s.memo.fetch(s) {
			return s.hedge.ProposeSweep(s.gp, 1, s.bestY(), s.means, s.stds)
		}
	}
	if err := s.fitWithModelSelection(); err != nil {
		// Degenerate window (should not happen with noise+jitter):
		// fall back to random exploration rather than halting.
		return 1 + s.rng.Intn(s.MaxN)
	}
	best := s.bestY()
	// Standardised "best" consistent with Score inputs: the posterior
	// sweep is in original units, so pass best in original units too.
	// One batched PredictInto over the whole grid replaces MaxN scalar
	// Predict calls; the portfolio then scores every acquisition from
	// this single (mean, std) sweep.
	s.ensureSweepBuffers()
	s.gp.PredictInto(s.grid, s.means, s.stds)
	if s.memo != nil {
		s.memo.store(s)
	}
	return s.hedge.ProposeSweep(s.gp, 1, best, s.means, s.stds)
}

// bestY returns the best utility in the current window (original
// units), the incumbent the acquisition functions improve upon.
func (s *Search) bestY() float64 {
	best := math.Inf(-1)
	for _, y := range s.ys {
		if y > best {
			best = y
		}
	}
	return best
}

// ensureSweepBuffers sizes the candidate grid and sweep buffers to the
// current MaxN (ablations mutate it between calls).
func (s *Search) ensureSweepBuffers() {
	if len(s.grid) == s.MaxN {
		return
	}
	s.grid = make([]float64, s.MaxN)
	for i := range s.grid {
		s.grid[i] = float64(i + 1)
	}
	s.means = make([]float64, s.MaxN)
	s.stds = make([]float64, s.MaxN)
}

// PosteriorSweep writes the fitted surrogate's posterior over the
// integer grid [1, MaxN] into means and stds (each must have length
// MaxN) and reports whether a fitted surrogate exists yet. It exposes
// the batched decision-path primitive to callers above the optimizer
// interface — a multi-agent server can amortise one sweep across its
// own scoring instead of issuing MaxN scalar Predicts.
func (s *Search) PosteriorSweep(means, stds []float64) bool {
	if s.gp == nil || !s.gp.Fitted() {
		return false
	}
	if len(means) != s.MaxN || len(stds) != s.MaxN {
		panic(fmt.Sprintf("bayesopt: PosteriorSweep lengths %d,%d != MaxN %d", len(means), len(stds), s.MaxN))
	}
	s.ensureSweepBuffers()
	s.gp.PredictInto(s.grid, means, stds)
	return true
}

// fitWithModelSelection refits the surrogate, choosing the kernel
// length scale by log marginal likelihood over a small grid — the
// hyperparameter tuning §3.2 delegates to the BO layer. Each grid
// point is a persistent GP whose hyperparameters never change, so
// every refit takes the incremental O(n²) Cholesky path and the winner
// is already fitted — no final refit needed. With the usual three
// candidates, the factors are prepared first and the three alpha
// solves run as one interleaved pass (linalg.SolveInto3): each
// candidate's solve is a sequential dependency chain, and overlapping
// the three chains hides most of that latency. Per candidate the
// arithmetic is identical to a plain Fit.
func (s *Search) fitWithModelSelection() error {
	bestLML := math.Inf(-1)
	var bestGP *GP
	if len(s.cands) == 3 {
		c0, c1, c2 := s.cands[0], s.cands[1], s.cands[2]
		ok := [3]bool{
			c0.fitPrepare(s.xs, s.ys) == nil,
			c1.fitPrepare(s.xs, s.ys) == nil,
			c2.fitPrepare(s.xs, s.ys) == nil,
		}
		if ok[0] && ok[1] && ok[2] {
			linalg.SolveInto3(c0.chol, c1.chol, c2.chol,
				c0.alpha, c0.yStd, c1.alpha, c1.yStd, c2.alpha, c2.yStd)
		} else {
			for i, g := range s.cands {
				if ok[i] {
					g.solveAlpha()
				}
			}
		}
		for i, g := range s.cands {
			if !ok[i] {
				continue
			}
			if lml := g.LogMarginalLikelihood(); lml > bestLML {
				bestLML = lml
				bestGP = g
			}
		}
	} else {
		for _, g := range s.cands {
			if err := g.Fit(s.xs, s.ys); err != nil {
				continue
			}
			if lml := g.LogMarginalLikelihood(); lml > bestLML {
				bestLML = lml
				bestGP = g
			}
		}
	}
	if bestGP == nil {
		return fmt.Errorf("bayesopt: no length scale produced a valid fit")
	}
	s.gp = bestGP
	return nil
}

// observe appends an observation, evicting the oldest beyond Window.
// Eviction shifts in place (rather than reslicing) so the window
// buffers are allocated once; the shifted prefix is what lets the GP
// recognise the slide and update its factor incrementally. A Window
// shrunk between calls (ablations mutate it) evicts more than one
// point, which the GPs handle by refactoring.
func (s *Search) observe(x, y float64) {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
	if drop := len(s.xs) - s.Window; drop > 0 {
		copy(s.xs, s.xs[drop:])
		copy(s.ys, s.ys[drop:])
		s.xs = s.xs[:s.Window]
		s.ys = s.ys[:s.Window]
	}
	s.seen++
}

// Observations returns copies of the current window (for tests and
// diagnostics).
func (s *Search) Observations() ([]float64, []float64) {
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// Hedge is the GP-Hedge acquisition portfolio: each round every
// acquisition nominates its argmax candidate; one nominee is drawn with
// probability softmax(η·gains); afterwards every acquisition's gain is
// incremented by the posterior mean at its own nominee. Exploration-
// exploitation balance is thereby tuned online, as §3.2 describes.
type Hedge struct {
	acqs  []Acquisition
	eta   float64
	gains []float64
	rng   *rand.Rand

	// nominees of the current round, kept to update gains next round
	// (and reused as the next round's scratch once consumed).
	lastNominees []int
	weights      []float64
	hasNominees  bool

	// stats shares per-point transcendental work across the portfolio
	// when scoring a sweep; muBuf/sdBuf are Propose's scalar-path
	// scratch for building one.
	stats sweepStats
	muBuf []float64
	sdBuf []float64
}

// NewHedge builds a portfolio with learning rate eta. It panics on an
// empty portfolio or non-positive eta.
func NewHedge(acqs []Acquisition, eta float64, rng *rand.Rand) *Hedge {
	if len(acqs) == 0 {
		panic("bayesopt: empty acquisition portfolio")
	}
	if eta <= 0 {
		panic(fmt.Sprintf("bayesopt: eta %v must be positive", eta))
	}
	return &Hedge{
		acqs:         acqs,
		eta:          eta,
		gains:        make([]float64, len(acqs)),
		rng:          rng,
		lastNominees: make([]int, len(acqs)),
		weights:      make([]float64, len(acqs)),
	}
}

// Propose returns the next integer point in [lo, hi] chosen by the
// portfolio against the fitted GP. It is the scalar-path entry: it
// evaluates the posterior point by point and delegates to
// ProposeSweep, so both paths share one scoring implementation.
func (h *Hedge) Propose(gp *GP, lo, hi int, best float64) int {
	m := hi - lo + 1
	if m < 0 {
		m = 0
	}
	if cap(h.muBuf) < m {
		h.muBuf = make([]float64, m)
		h.sdBuf = make([]float64, m)
	}
	mus, sds := h.muBuf[:m], h.sdBuf[:m]
	for x := lo; x <= hi; x++ {
		mus[x-lo], sds[x-lo] = gp.Predict(float64(x))
	}
	return h.ProposeSweep(gp, lo, best, mus, sds)
}

// ProposeSweep returns the next integer point in [lo, lo+len(means)−1]
// chosen by the portfolio from a precomputed posterior sweep: means[j]
// and stds[j] are the posterior at integer point lo+j, as produced by
// GP.PredictInto over the candidate grid. The gp is consulted only for
// last-round nominees that fall outside the sweep (the domain shrank
// between rounds); everything else — gain updates, every acquisition's
// argmax — reads the sweep, with transcendentals shared across
// acquisitions via sweepStats. Selection is bitwise identical to the
// scalar path: same scores, same first-strict-max tie-breaking over x
// ascending.
func (h *Hedge) ProposeSweep(gp *GP, lo int, best float64, means, stds []float64) int {
	// Update gains with the posterior means at last round's nominees —
	// the Hedge reward signal, normalised by the observed utility scale
	// so units cannot destabilise the weights.
	scale := math.Abs(best)
	if scale < 1e-12 {
		scale = 1e-12
	}
	if h.hasNominees {
		for i, x := range h.lastNominees {
			var mu float64
			if j := x - lo; j >= 0 && j < len(means) {
				mu = means[j]
			} else {
				mu, _ = gp.Predict(float64(x))
			}
			h.gains[i] += math.Tanh(mu / scale)
		}
	}

	// Each acquisition nominates its argmax over the sweep. The
	// previous nominees were consumed above, so their slice is reused.
	h.stats.reset(means, stds, best)
	nominees := h.lastNominees[:len(h.acqs)]
	for i, a := range h.acqs {
		var j int
		if ss, ok := a.(sweepScorer); ok {
			j = ss.argmaxSweep(&h.stats)
		} else {
			j = argmaxScore(a, means, stds, best)
		}
		nominees[i] = lo + j
	}
	h.lastNominees = nominees
	h.hasNominees = true

	// Softmax draw over gains.
	maxG := h.gains[0]
	for _, g := range h.gains[1:] {
		if g > maxG {
			maxG = g
		}
	}
	weights := h.weights[:len(h.gains)]
	sum := 0.0
	for i, g := range h.gains {
		w := math.Exp(h.eta * (g - maxG))
		weights[i] = w
		sum += w
	}
	r := h.rng.Float64() * sum
	for i, w := range weights {
		if r < w {
			return nominees[i]
		}
		r -= w
	}
	return nominees[len(nominees)-1]
}

// Gains returns a copy of the portfolio gains (diagnostics).
func (h *Hedge) Gains() []float64 { return append([]float64(nil), h.gains...) }
