package bayesopt

import "math"

// sweepStats carries one posterior sweep — means[j], stds[j] at grid
// point j and the incumbent best — plus lazily computed per-point
// statistics shared across the portfolio's acquisitions. EI and PI
// with the same margin Xi score from the same z = (mean−best−Xi)/std,
// Φ(z) and φ(z); computing each of those once per sweep instead of
// once per acquisition halves the Erfc work of the default portfolio.
// Every cached entry is produced by the exact expression the
// corresponding Score method evaluates, so argmax selection over the
// cache is bitwise identical to scoring point by point.
type sweepStats struct {
	means, stds []float64
	best        float64

	// z/cdf (and pdf) are valid for margin xi when zValid (pdfValid).
	xi       float64
	zValid   bool
	pdfValid bool
	z        []float64
	cdf      []float64
	pdf      []float64
}

// reset points the stats at a new sweep and drops all cached columns.
func (st *sweepStats) reset(means, stds []float64, best float64) {
	st.means, st.stds, st.best = means, stds, best
	st.zValid, st.pdfValid = false, false
	if cap(st.z) < len(means) {
		st.z = make([]float64, len(means))
		st.cdf = make([]float64, len(means))
		st.pdf = make([]float64, len(means))
	}
}

// ensureCDF fills z and Φ(z) for margin xi. Points with std ≤ 0 get
// whatever ±Inf/NaN the division produces; their scores never read it
// (the Score methods branch before dividing, and so do the argmax
// loops below).
func (st *sweepStats) ensureCDF(xi float64) {
	if st.zValid && xi == st.xi {
		return
	}
	st.xi = xi
	st.zValid, st.pdfValid = true, false
	z := st.z[:len(st.means)]
	cdf := st.cdf[:len(st.means)]
	for j, mu := range st.means {
		d := mu - st.best - xi
		zj := d / st.stds[j]
		z[j] = zj
		cdf[j] = normCDF(zj)
	}
}

// ensurePDF fills φ(z) on top of ensureCDF.
func (st *sweepStats) ensurePDF(xi float64) {
	st.ensureCDF(xi)
	if st.pdfValid {
		return
	}
	st.pdfValid = true
	pdf := st.pdf[:len(st.means)]
	for j, zj := range st.z[:len(st.means)] {
		pdf[j] = normPDF(zj)
	}
}

// sweepScorer is the fast path an acquisition can implement to pick
// its argmax directly from a sweep's cached statistics. The selection
// must match argmaxScore over Score exactly, including first-strict-max
// tie-breaking.
type sweepScorer interface {
	argmaxSweep(st *sweepStats) int
}

// argmaxScore is the generic fallback for acquisitions outside the
// default portfolio: score every point, keep the first strict maximum.
func argmaxScore(a Acquisition, means, stds []float64, best float64) int {
	bestSc, idx := math.Inf(-1), 0
	for j := range means {
		if sc := a.Score(means[j], stds[j], best); sc > bestSc {
			bestSc, idx = sc, j
		}
	}
	return idx
}

// argmaxSweep implements sweepScorer for EI: d·Φ(z) + σ·φ(z), the same
// expression as Score with z, Φ and φ read from the shared cache.
func (a EI) argmaxSweep(st *sweepStats) int {
	st.ensurePDF(a.Xi)
	bestSc, idx := math.Inf(-1), 0
	for j, sd := range st.stds {
		var sc float64
		if sd <= 0 {
			if d := st.means[j] - st.best - a.Xi; d > 0 {
				sc = d
			}
		} else {
			d := st.means[j] - st.best - a.Xi
			sc = d*st.cdf[j] + sd*st.pdf[j]
		}
		if sc > bestSc {
			bestSc, idx = sc, j
		}
	}
	return idx
}

// argmaxSweep implements sweepScorer for PI: Φ(z) from the shared
// cache.
func (a PI) argmaxSweep(st *sweepStats) int {
	st.ensureCDF(a.Xi)
	bestSc, idx := math.Inf(-1), 0
	for j, sd := range st.stds {
		var sc float64
		if sd <= 0 {
			if st.means[j] > st.best+a.Xi {
				sc = 1
			}
		} else {
			sc = st.cdf[j]
		}
		if sc > bestSc {
			bestSc, idx = sc, j
		}
	}
	return idx
}

// argmaxSweep implements sweepScorer for UCB: μ + κσ needs no cached
// transcendentals at all.
func (a UCB) argmaxSweep(st *sweepStats) int {
	bestSc, idx := math.Inf(-1), 0
	for j, sd := range st.stds {
		if sc := st.means[j] + a.Kappa*sd; sc > bestSc {
			bestSc, idx = sc, j
		}
	}
	return idx
}
