package bayesopt

import (
	"math"
	"testing"

	"repro/internal/optimizer"
)

// BenchmarkGPFitWindow20 measures the cost of refitting the surrogate
// at the paper's 20-observation cap — the bound that keeps Gaussian
// Process processing "in the order of milliseconds" (§3.2).
func BenchmarkGPFitWindow20(b *testing.B) {
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = math.Sin(float64(i) / 3)
	}
	gp := NewGP(4, 1, 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := gp.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPFitSliding measures the steady-state refit when the
// 20-point window slides by one per observation — the incremental
// O(n²) Cholesky path (DropFirst + AppendRow) that every Search.Next
// takes once the window is full.
func BenchmarkGPFitSliding(b *testing.B) {
	const window = 20
	xs := make([]float64, window)
	ys := make([]float64, window)
	for i := range xs {
		xs[i] = float64(i%32) + 1
		ys[i] = math.Sin(float64(i) / 3)
	}
	gp := NewGP(4, 1, 0.02)
	if err := gp.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(xs, xs[1:])
		copy(ys, ys[1:])
		xs[window-1] = float64((window+i)%32) + 1
		ys[window-1] = math.Sin(float64(window+i) / 3)
		if err := gp.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPPredict measures a single posterior evaluation.
func BenchmarkGPPredict(b *testing.B) {
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = math.Sin(float64(i) / 3)
	}
	gp := NewGP(4, 1, 0.02)
	if err := gp.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gp.Predict(float64(i%32) + 0.5)
	}
}

// benchmarkSearchNext measures one full BO decision at the given
// domain size: window update, GP refit with model selection, batched
// posterior sweep, portfolio proposal.
func benchmarkSearchNext(b *testing.B, maxN int) {
	s := New(maxN, 1)
	n := 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n = s.Next(optimizer.Observation{N: n, Utility: float64(n % 13)})
	}
}

// BenchmarkSearchNext uses the 32-point grid the experiments search
// (Emulab scenarios cap concurrency at 32).
func BenchmarkSearchNext(b *testing.B) { benchmarkSearchNext(b, 32) }

// BenchmarkSearchNextLargeDomain doubles the grid to 64 points to
// track how the decision path scales with the domain.
func BenchmarkSearchNextLargeDomain(b *testing.B) { benchmarkSearchNext(b, 64) }

// BenchmarkGPPredictInto measures the batched posterior sweep over a
// 64-point grid — the decision path's replacement for 64 scalar
// Predicts.
func BenchmarkGPPredictInto(b *testing.B) {
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = math.Sin(float64(i) / 3)
	}
	gp := NewGP(4, 1, 0.02)
	if err := gp.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	const m = 64
	grid := make([]float64, m)
	for i := range grid {
		grid[i] = float64(i + 1)
	}
	means := make([]float64, m)
	stds := make([]float64, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gp.PredictInto(grid, means, stds)
	}
}
