package bayesopt

import "math"

// Acquisition scores a candidate point from its posterior mean and
// standard deviation and the best utility observed so far. Higher is
// better.
type Acquisition interface {
	Score(mean, std, best float64) float64
	Name() string
}

// normPDF and normCDF are the standard normal density and distribution.
func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// EI is Expected Improvement with an exploration margin Xi.
type EI struct{ Xi float64 }

// Name implements Acquisition.
func (EI) Name() string { return "ei" }

// Score implements Acquisition.
func (a EI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if d := mean - best - a.Xi; d > 0 {
			return d
		}
		return 0
	}
	d := mean - best - a.Xi
	z := d / std
	return d*normCDF(z) + std*normPDF(z)
}

// PI is Probability of Improvement with an exploration margin Xi.
type PI struct{ Xi float64 }

// Name implements Acquisition.
func (PI) Name() string { return "pi" }

// Score implements Acquisition.
func (a PI) Score(mean, std, best float64) float64 {
	if std <= 0 {
		if mean > best+a.Xi {
			return 1
		}
		return 0
	}
	return normCDF((mean - best - a.Xi) / std)
}

// UCB is the Upper Confidence Bound acquisition with exploration
// weight Kappa.
type UCB struct{ Kappa float64 }

// Name implements Acquisition.
func (UCB) Name() string { return "ucb" }

// Score implements Acquisition.
func (a UCB) Score(mean, std, _ float64) float64 { return mean + a.Kappa*std }

// DefaultPortfolio returns the acquisition set used by GP-Hedge: EI and
// PI with small margins plus UCB at two exploration weights.
func DefaultPortfolio() []Acquisition {
	return []Acquisition{EI{Xi: 0.01}, PI{Xi: 0.01}, UCB{Kappa: 1.0}, UCB{Kappa: 2.5}}
}
