package bayesopt

import (
	"math"
	"testing"
)

func TestLogMarginalLikelihoodBeforeFitPanics(t *testing.T) {
	gp := NewGP(1, 1, 0.01)
	defer func() {
		if recover() == nil {
			t.Error("LML before Fit did not panic")
		}
	}()
	gp.LogMarginalLikelihood()
}

func TestLogMarginalLikelihoodPrefersMatchingLengthScale(t *testing.T) {
	// Data generated from a smooth function with characteristic scale
	// ~4: the LML at ℓ=4 should beat a wildly mismatched ℓ=0.2.
	xs := make([]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Sin(float64(i) / 4)
	}
	fit := func(ls float64) float64 {
		gp := NewGP(ls, 1, 0.01)
		if err := gp.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		return gp.LogMarginalLikelihood()
	}
	good := fit(4)
	bad := fit(0.2)
	if good <= bad {
		t.Fatalf("LML(ℓ=4) = %v should exceed LML(ℓ=0.2) = %v on smooth data", good, bad)
	}
}

func TestLMLFiniteForConstantData(t *testing.T) {
	gp := NewGP(2, 1, 0.01)
	if err := gp.Fit([]float64{1, 2, 3}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if lml := gp.LogMarginalLikelihood(); math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Fatalf("LML = %v, want finite", lml)
	}
}

func TestFitWithModelSelectionKeepsWorking(t *testing.T) {
	s := New(32, 3)
	for i := 0; i < 10; i++ {
		s.observe(float64(i+1), float64(i%5))
	}
	if err := s.fitWithModelSelection(); err != nil {
		t.Fatal(err)
	}
	if !s.gp.Fitted() {
		t.Fatal("model selection left the GP unfitted")
	}
	if s.gp.LengthScale <= 0 {
		t.Fatalf("length scale = %v", s.gp.LengthScale)
	}
}
