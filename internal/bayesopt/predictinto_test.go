package bayesopt

import (
	"math"
	"math/rand"
	"testing"
)

// checkPredictIntoMatches pins PredictInto bitwise-equal to a Predict
// loop over the same grid: the batched sweep must be the same
// arithmetic in the same order, not merely close — reproduce's
// byte-identical output depends on it.
func checkPredictIntoMatches(t *testing.T, gp *GP, grid []float64, stage string) {
	t.Helper()
	m := len(grid)
	means := make([]float64, m)
	stds := make([]float64, m)
	gp.PredictInto(grid, means, stds)
	for j, x := range grid {
		mu, sd := gp.Predict(x)
		if math.Float64bits(mu) != math.Float64bits(means[j]) {
			t.Fatalf("%s: mean[%d] (x=%v) = %v, Predict %v (not bit-identical)", stage, j, x, means[j], mu)
		}
		if math.Float64bits(sd) != math.Float64bits(stds[j]) {
			t.Fatalf("%s: std[%d] (x=%v) = %v, Predict %v (not bit-identical)", stage, j, x, stds[j], sd)
		}
	}
}

// TestPredictIntoMatchesPredict drives a GP through every fit path the
// searcher exercises — fresh refactor fits, incremental AppendRow fits
// while the window grows, and sliding DropFirst fits once it is full —
// and checks the batched sweep against scalar Predict after each fit.
// Both integer grids (the kernel-table fast path) and fractional grids
// (the generic path) are pinned.
func TestPredictIntoMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const window = 12

	intGrid := make([]float64, 32)
	fracGrid := make([]float64, 17)
	for i := range intGrid {
		intGrid[i] = float64(i + 1)
	}
	for i := range fracGrid {
		fracGrid[i] = 0.75 + 2.3*float64(i)
	}

	t.Run("fresh", func(t *testing.T) {
		gp := NewGP(3, 1, 0.02)
		for n := 1; n <= window; n += 3 {
			xs := make([]float64, n)
			ys := make([]float64, n)
			for i := range xs {
				// Shuffled integer inputs: a fresh refactor each call
				// (the previous window is not a prefix).
				xs[i] = float64(1 + rng.Intn(32))
				ys[i] = rng.NormFloat64()
			}
			if err := gp.Fit(xs, ys); err != nil {
				t.Fatal(err)
			}
			checkPredictIntoMatches(t, gp, intGrid, "fresh int grid")
			checkPredictIntoMatches(t, gp, fracGrid, "fresh frac grid")
		}
	})

	t.Run("append", func(t *testing.T) {
		gp := NewGP(3, 1, 0.02)
		var xs, ys []float64
		for n := 1; n <= window; n++ {
			// Extends the previous window by one: the AppendRow path.
			xs = append(xs, float64(1+rng.Intn(32)))
			ys = append(ys, rng.NormFloat64())
			if err := gp.Fit(xs, ys); err != nil {
				t.Fatal(err)
			}
			checkPredictIntoMatches(t, gp, intGrid, "append int grid")
			checkPredictIntoMatches(t, gp, fracGrid, "append frac grid")
		}
	})

	t.Run("slide", func(t *testing.T) {
		gp := NewGP(3, 1, 0.02)
		xs := make([]float64, window)
		ys := make([]float64, window)
		for i := range xs {
			xs[i] = float64(1 + rng.Intn(32))
			ys[i] = rng.NormFloat64()
		}
		if err := gp.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 2*window; step++ {
			// Slides the full window by one: the DropFirst path.
			copy(xs, xs[1:])
			copy(ys, ys[1:])
			xs[window-1] = float64(1 + rng.Intn(32))
			ys[window-1] = rng.NormFloat64()
			if err := gp.Fit(xs, ys); err != nil {
				t.Fatal(err)
			}
			checkPredictIntoMatches(t, gp, intGrid, "slide int grid")
			checkPredictIntoMatches(t, gp, fracGrid, "slide frac grid")
		}
	})

	t.Run("fractional-inputs", func(t *testing.T) {
		// Non-integral training inputs defeat the kernel table on the
		// training side as well; the generic build path must match too.
		gp := NewGP(1.7, 1, 0.02)
		xs := make([]float64, window)
		ys := make([]float64, window)
		for i := range xs {
			xs[i] = rng.Float64() * 32
			ys[i] = rng.NormFloat64()
		}
		if err := gp.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		checkPredictIntoMatches(t, gp, intGrid, "fractional-inputs int grid")
		checkPredictIntoMatches(t, gp, fracGrid, "fractional-inputs frac grid")
	})
}

// TestProposeSweepMatchesPropose pins the sweep-scoring decision path
// against the scalar Propose path: same GP, same state, same rng seed
// must pick the same point, because ProposeSweep's shared-transcendental
// scoring is the same arithmetic Score evaluates point by point.
func TestProposeSweepMatchesPropose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const lo, hi = 1, 32
	m := hi - lo + 1

	gp := NewGP(3, 1, 0.02)
	xs := make([]float64, 15)
	ys := make([]float64, 15)
	for i := range xs {
		xs[i] = float64(1 + rng.Intn(hi))
		ys[i] = rng.NormFloat64() * 5
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for _, y := range ys {
		if y > best {
			best = y
		}
	}

	grid := make([]float64, m)
	for i := range grid {
		grid[i] = float64(lo + i)
	}
	means := make([]float64, m)
	stds := make([]float64, m)

	hA := NewHedge(DefaultPortfolio(), 0.5, rand.New(rand.NewSource(77)))
	hB := NewHedge(DefaultPortfolio(), 0.5, rand.New(rand.NewSource(77)))
	for round := 0; round < 20; round++ {
		a := hA.Propose(gp, lo, hi, best)
		gp.PredictInto(grid, means, stds)
		b := hB.ProposeSweep(gp, lo, best, means, stds)
		if a != b {
			t.Fatalf("round %d: Propose picked %d, ProposeSweep picked %d", round, a, b)
		}
		ga, gb := hA.Gains(), hB.Gains()
		for i := range ga {
			if math.Float64bits(ga[i]) != math.Float64bits(gb[i]) {
				t.Fatalf("round %d: gains[%d] diverged: %v vs %v", round, i, ga[i], gb[i])
			}
		}
	}
}
