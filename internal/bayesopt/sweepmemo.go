package bayesopt

import (
	"math"

	"repro/internal/linalg"
)

// SweepMemo caches the BO decision path's expensive middle — the
// three-candidate GP refit plus the batched posterior sweep — across
// searchers that have reached identical states. Staggered fleet
// sessions running BO with the same seed and bounds walk identical
// state trajectories once measurement noise is off; each epoch's fit
// is then computed once per shard and replayed for every twin.
//
// Unlike the hc/gd decision memo, the key cannot be the observation
// window alone: the GP's Cholesky factor is updated incrementally as
// the window slides, and the slide path (DropFirst's rank-1 rotation)
// is not bitwise identical to refactorisation — the factor depends on
// the fit *history*, not just the current window. The memo therefore
// keys on the complete pre-fit state (window + every candidate's
// factor, fit flags and hyperparameters, compared bitwise) and a hit
// restores the complete post-fit state (factors, alphas, standardised
// targets, model-selection winner, posterior sweep). Replay is
// consequently indistinguishable from running the fit: future
// incremental updates start from bit-identical factors.
//
// The acquisition portfolio (Hedge) and its rng draw stay local to
// each searcher — only the state-pure fit/sweep stage is shared. A
// memo must only be shared by searchers stepped from one goroutine
// (one memo per fleet shard); it performs no locking.
type SweepMemo struct {
	entries []sweepEntry
	index   map[uint64][]int32
	limit   int

	hits    uint64
	lookups uint64

	// staged holds the pre-fit key captured on a miss, committed by
	// store once the live fit succeeds.
	staged     sweepKey
	stagedHash uint64
	hasStaged  bool
}

// sweepKey is the complete pre-fit state: the observation window, the
// domain bound, and each length-scale candidate's factor state.
type sweepKey struct {
	maxN  int32
	xs    []float64
	ys    []float64
	cands [3]candKey
}

type candKey struct {
	hyper    [3]float64 // LengthScale, SignalVar, NoiseVar
	fitHyper [3]float64
	fitted   bool
	xs       []float64
	chol     *linalg.Chol
}

// sweepEntry adds the post-fit state. Only fully successful fits are
// stored (all three candidates fitted on the current window), so the
// post-state is compact: every candidate's xs equals the window,
// fitHyper equals its hyper, and the standardised targets are shared.
type sweepEntry struct {
	key    sweepKey
	chol   [3]*linalg.Chol
	alpha  [3][]float64
	yStd   []float64
	meanY  float64
	stdY   float64
	winner int32
	means  []float64
	stds   []float64
}

// DefaultSweepMemoEntries bounds a memo built with size ≤ 0. An entry
// is ~14 KiB at the fleet's MaxN=32/Window=20, so the default costs at
// most ~2 MiB per shard.
const DefaultSweepMemoEntries = 128

// NewSweepMemo returns a memo holding at most size entries
// (DefaultSweepMemoEntries if size ≤ 0), cleared wholesale when full —
// twin trajectories revisit states within an epoch, so a cleared memo
// repopulates immediately.
func NewSweepMemo(size int) *SweepMemo {
	if size <= 0 {
		size = DefaultSweepMemoEntries
	}
	return &SweepMemo{index: make(map[uint64][]int32), limit: size}
}

// Stats returns the number of cache hits and total lookups so far.
func (m *SweepMemo) Stats() (hits, lookups uint64) { return m.hits, m.lookups }

// SetSweepMemo attaches a shared fit/sweep memo (nil detaches). The
// memo engages only for the standard three-candidate model-selection
// portfolio; ablations with a different candidate set run unmemoized.
func (s *Search) SetSweepMemo(m *SweepMemo) { s.memo = m }

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

func mixFloats(h uint64, vs []float64) uint64 {
	h = mix(h, uint64(len(vs)))
	for _, v := range vs {
		h = mix(h, math.Float64bits(v))
	}
	return h
}

// hashState folds the live pre-fit state of s into a bucket hash.
// Matching is decided by the exact bitwise comparison in matches; the
// hash only routes.
func (m *SweepMemo) hashState(s *Search) uint64 {
	h := mix(fnvOffset64, uint64(s.MaxN))
	h = mixFloats(h, s.xs)
	h = mixFloats(h, s.ys)
	for _, g := range s.cands {
		h = mix(h, math.Float64bits(g.LengthScale))
		h = mix(h, math.Float64bits(g.SignalVar))
		h = mix(h, math.Float64bits(g.NoiseVar))
		var f uint64
		if g.fitted {
			f = 1
			for _, v := range g.fitHyper {
				h = mix(h, math.Float64bits(v))
			}
		}
		h = mix(h, f)
		h = mixFloats(h, g.xs)
		h = mixFloats(h, g.chol.Raw())
	}
	return h
}

func eqBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// matches reports whether the entry's pre-fit key equals s's live
// state bitwise.
func (e *sweepEntry) matches(s *Search) bool {
	k := &e.key
	if int(k.maxN) != s.MaxN || !eqBits(k.xs, s.xs) || !eqBits(k.ys, s.ys) {
		return false
	}
	for i, g := range s.cands {
		ck := &k.cands[i]
		if ck.hyper != [3]float64{g.LengthScale, g.SignalVar, g.NoiseVar} {
			return false
		}
		if ck.fitted != g.fitted {
			return false
		}
		if g.fitted && ck.fitHyper != g.fitHyper {
			return false
		}
		if !eqBits(ck.xs, g.xs) || !ck.chol.EqualBits(g.chol) {
			return false
		}
	}
	return true
}

// restore replays the entry's post-fit state into s: candidate
// factors, alphas, standardised targets, the model-selection winner,
// and the posterior sweep (into s.means/s.stds, which ensureSweepBuffers
// has sized). Buffers are reused; nothing allocates in steady state.
func (e *sweepEntry) restore(s *Search) {
	hyper := [3]float64{}
	for i, g := range s.cands {
		g.chol.CopyFrom(e.chol[i])
		g.xs = append(g.xs[:0], e.key.xs...)
		g.alpha = append(g.alpha[:0], e.alpha[i]...)
		g.yStd = append(g.yStd[:0], e.yStd...)
		g.meanY = e.meanY
		g.stdY = e.stdY
		hyper[0], hyper[1], hyper[2] = g.LengthScale, g.SignalVar, g.NoiseVar
		g.fitHyper = hyper
		g.fitted = true
	}
	s.gp = s.cands[e.winner]
	copy(s.means, e.means)
	copy(s.stds, e.stds)
}

// fetch looks the searcher's pre-fit state up, restoring and reporting
// true on a hit. On a miss it stages a copy of the pre-fit state so a
// subsequent store can commit it after the live fit runs.
func (m *SweepMemo) fetch(s *Search) bool {
	m.hasStaged = false
	if len(s.cands) != 3 {
		return false
	}
	m.lookups++
	h := m.hashState(s)
	for _, idx := range m.index[h] {
		e := &m.entries[idx]
		if e.matches(s) {
			e.restore(s)
			m.hits++
			return true
		}
	}
	m.stage(s, h)
	return false
}

// stage snapshots the pre-fit state before the live fit overwrites it.
func (m *SweepMemo) stage(s *Search, h uint64) {
	k := &m.staged
	k.maxN = int32(s.MaxN)
	k.xs = append(k.xs[:0], s.xs...)
	k.ys = append(k.ys[:0], s.ys...)
	for i, g := range s.cands {
		ck := &k.cands[i]
		ck.hyper = [3]float64{g.LengthScale, g.SignalVar, g.NoiseVar}
		ck.fitHyper = g.fitHyper
		ck.fitted = g.fitted
		ck.xs = append(ck.xs[:0], g.xs...)
		if ck.chol == nil {
			ck.chol = linalg.NewChol(0)
		}
		ck.chol.CopyFrom(g.chol)
	}
	m.stagedHash = h
	m.hasStaged = true
}

// store commits the staged key with s's post-fit state. It only stores
// clean fits — every candidate fitted on the current window — so
// restore can assume the compact all-success shape; anything else
// (partial candidate failures) simply stays unmemoized.
func (m *SweepMemo) store(s *Search) {
	if !m.hasStaged {
		return
	}
	m.hasStaged = false
	for _, g := range s.cands {
		if !g.fitted || g.fitHyper != [3]float64{g.LengthScale, g.SignalVar, g.NoiseVar} || !eqBits(g.xs, m.staged.xs) {
			return
		}
	}
	winner := int32(-1)
	for i, g := range s.cands {
		if s.gp == g {
			winner = int32(i)
		}
	}
	if winner < 0 {
		return
	}
	if len(m.entries) >= m.limit {
		m.entries = m.entries[:0]
		clear(m.index)
	}
	var e sweepEntry
	e.key.maxN = m.staged.maxN
	e.key.xs = append([]float64(nil), m.staged.xs...)
	e.key.ys = append([]float64(nil), m.staged.ys...)
	for i := range e.key.cands {
		sk := &m.staged.cands[i]
		ck := &e.key.cands[i]
		ck.hyper = sk.hyper
		ck.fitHyper = sk.fitHyper
		ck.fitted = sk.fitted
		ck.xs = append([]float64(nil), sk.xs...)
		ck.chol = linalg.NewChol(0)
		ck.chol.CopyFrom(sk.chol)
	}
	for i, g := range s.cands {
		e.chol[i] = linalg.NewChol(0)
		e.chol[i].CopyFrom(g.chol)
		e.alpha[i] = append([]float64(nil), g.alpha...)
	}
	g := s.cands[0]
	e.yStd = append([]float64(nil), g.yStd...)
	e.meanY = g.meanY
	e.stdY = g.stdY
	e.winner = winner
	e.means = append([]float64(nil), s.means...)
	e.stds = append([]float64(nil), s.stds...)
	m.entries = append(m.entries, e)
	m.index[m.stagedHash] = append(m.index[m.stagedHash], int32(len(m.entries)-1))
}
