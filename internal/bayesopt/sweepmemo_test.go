package bayesopt

import (
	"math"
	"testing"

	"repro/internal/optimizer"
)

// utilityLike mimics the fleet's concave utility shape with a peak
// inside the domain, deterministic in n so twin searchers observe
// identical sequences.
func utilityLike(n int) float64 {
	x := float64(n)
	return math.Log(x+1) - 0.08*x
}

// TestSweepMemoTransparent drives two identically-seeded searchers —
// one memoized, one not — through the same observation sequence and
// requires bitwise-identical proposals. A third searcher shares the
// memo at a staggered offset (joining later, like a staggered fleet
// twin) and must also match, with the memo reporting hits for it.
func TestSweepMemoTransparent(t *testing.T) {
	const maxN = 32
	// Sized to hold the whole trajectory: the twin below replays all
	// 300 steps after the fact, so every entry must survive (fleet
	// twins run near-lockstep and need far less).
	memo := NewSweepMemo(512)
	plain := New(maxN, 7)
	warm := New(maxN, 7)
	warm.SetSweepMemo(memo)

	var trace []int
	n1, n2 := 1, 1
	for step := 0; step < 300; step++ {
		a := plain.Next(optimizer.Observation{N: n1, Utility: utilityLike(n1)})
		b := warm.Next(optimizer.Observation{N: n2, Utility: utilityLike(n2)})
		if a != b {
			t.Fatalf("step %d: plain proposed %d, memoized %d", step, a, b)
		}
		trace = append(trace, a)
		n1, n2 = a, b
	}

	// Staggered twin: same seed, joins now, replays the same sequence
	// against the warm memo. Proposals must replay the recorded trace.
	twin := New(maxN, 7)
	twin.SetSweepMemo(memo)
	h0, l0 := memo.Stats()
	n := 1
	for step := 0; step < 300; step++ {
		got := twin.Next(optimizer.Observation{N: n, Utility: utilityLike(n)})
		if got != trace[step] {
			t.Fatalf("twin step %d: proposed %d, trace has %d", step, got, trace[step])
		}
		n = got
	}
	h1, l1 := memo.Stats()
	if h1 == h0 {
		t.Fatalf("twin replay produced no memo hits (lookups %d→%d)", l0, l1)
	}
	// Past the init phase every twin step should hit.
	if hits := h1 - h0; hits < 250 {
		t.Fatalf("twin replay hit only %d/300 steps", hits)
	}
}

// TestSweepMemoDistinctSeedsNoCorruption runs two differently-seeded
// searchers against one shared memo and checks each still matches its
// own unmemoized twin — restores must not leak one searcher's state
// into another's trajectory.
func TestSweepMemoDistinctSeedsNoCorruption(t *testing.T) {
	const maxN = 24
	memo := NewSweepMemo(0)
	mA, mB := New(maxN, 3), New(maxN, 4)
	mA.SetSweepMemo(memo)
	mB.SetSweepMemo(memo)
	pA, pB := New(maxN, 3), New(maxN, 4)

	nA, nB, rA, rB := 1, 1, 1, 1
	for step := 0; step < 200; step++ {
		a := mA.Next(optimizer.Observation{N: nA, Utility: utilityLike(nA)})
		b := mB.Next(optimizer.Observation{N: nB, Utility: utilityLike(nB)})
		wa := pA.Next(optimizer.Observation{N: rA, Utility: utilityLike(rA)})
		wb := pB.Next(optimizer.Observation{N: rB, Utility: utilityLike(rB)})
		if a != wa {
			t.Fatalf("step %d: seed-3 memoized %d != plain %d", step, a, wa)
		}
		if b != wb {
			t.Fatalf("step %d: seed-4 memoized %d != plain %d", step, b, wb)
		}
		nA, nB, rA, rB = a, b, wa, wb
	}
}

// TestSweepMemoEviction fills a tiny memo past its limit and checks it
// keeps answering correctly (wholesale clear, then repopulate).
func TestSweepMemoEviction(t *testing.T) {
	const maxN = 16
	memo := NewSweepMemo(4)
	warm := New(maxN, 9)
	warm.SetSweepMemo(memo)
	plain := New(maxN, 9)
	n1, n2 := 1, 1
	for step := 0; step < 120; step++ {
		a := plain.Next(optimizer.Observation{N: n1, Utility: utilityLike(n1)})
		b := warm.Next(optimizer.Observation{N: n2, Utility: utilityLike(n2)})
		if a != b {
			t.Fatalf("step %d: plain %d != memoized %d after evictions", step, a, b)
		}
		n1, n2 = a, b
	}
	if len(memo.entries) > 4 {
		t.Fatalf("memo grew to %d entries, limit 4", len(memo.entries))
	}
}

// TestNewWithSourcesMatchesNew pins the delegation: New(maxN, seed)
// must stay bitwise equivalent to NewWithSources with math/rand
// sources, since the pinned experiments rely on that stream.
func TestNewWithSourcesMatchesNew(t *testing.T) {
	a := New(16, 5)
	b := New(16, 5)
	n1, n2 := 1, 1
	for step := 0; step < 50; step++ {
		x, y := a.Next(optimizer.Observation{N: n1, Utility: utilityLike(n1)}),
			b.Next(optimizer.Observation{N: n2, Utility: utilityLike(n2)})
		if x != y {
			t.Fatalf("step %d: %d != %d", step, x, y)
		}
		n1, n2 = x, y
	}
}
