package bayesopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/optimizer"
	"repro/internal/utility"
)

func TestNewGPPanicsOnBadHyperparameters(t *testing.T) {
	cases := [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGP(%v) did not panic", c)
				}
			}()
			NewGP(c[0], c[1], c[2])
		}()
	}
}

func TestGPFitValidation(t *testing.T) {
	gp := NewGP(1, 1, 0.01)
	if err := gp.Fit(nil, nil); err == nil {
		t.Error("Fit with no data did not error")
	}
	if err := gp.Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("Fit with mismatched lengths did not error")
	}
	if gp.Fitted() {
		t.Error("failed fits should not mark the GP as fitted")
	}
}

func TestGPPredictBeforeFitPanics(t *testing.T) {
	gp := NewGP(1, 1, 0.01)
	defer func() {
		if recover() == nil {
			t.Error("Predict before Fit did not panic")
		}
	}()
	gp.Predict(1)
}

func TestGPInterpolatesSmoothFunction(t *testing.T) {
	gp := NewGP(2, 1, 1e-4)
	xs := []float64{0, 2, 4, 6, 8, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Sin(x / 3)
	}
	if err := gp.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	// At training points the posterior mean must be close to the data.
	for i, x := range xs {
		mu, _ := gp.Predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Fatalf("Predict(%v) = %v, want ≈%v", x, mu, ys[i])
		}
	}
	// Between points, prediction should be plausible.
	mu, _ := gp.Predict(5)
	if math.Abs(mu-math.Sin(5.0/3)) > 0.15 {
		t.Fatalf("Predict(5) = %v, want ≈%v", mu, math.Sin(5.0/3))
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	gp := NewGP(1.5, 1, 1e-4)
	if err := gp.Fit([]float64{5}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	_, sdNear := gp.Predict(5)
	_, sdFar := gp.Predict(15)
	if sdNear >= sdFar {
		t.Fatalf("sd near data (%v) should be below sd far away (%v)", sdNear, sdFar)
	}
}

func TestGPConstantTargets(t *testing.T) {
	gp := NewGP(1, 1, 0.01)
	if err := gp.Fit([]float64{1, 2, 3}, []float64{7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	mu, sd := gp.Predict(2)
	if math.Abs(mu-7) > 0.5 {
		t.Fatalf("constant-target mean = %v, want ≈7", mu)
	}
	if math.IsNaN(sd) {
		t.Fatal("sd is NaN")
	}
}

// Property: GP posterior mean at a training point approaches the target
// as noise shrinks, for random smooth data.
func TestGPTrainingFitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		n := 5 + rng.Intn(10)
		xs := make([]float64, n)
		ys := make([]float64, n)
		a, b := rng.NormFloat64(), rng.NormFloat64()
		for i := range xs {
			xs[i] = float64(i) * 2
			ys[i] = a*math.Sin(xs[i]/4) + b
		}
		gp := NewGP(3, 1, 1e-5)
		if err := gp.Fit(xs, ys); err != nil {
			return false
		}
		for i := range xs {
			mu, _ := gp.Predict(xs[i])
			if math.Abs(mu-ys[i]) > 0.1*(math.Abs(a)+1) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 30; i++ {
		if !f() {
			t.Fatal("GP failed to fit random smooth data")
		}
	}
}

func TestAcquisitionNames(t *testing.T) {
	if (EI{}).Name() != "ei" || (PI{}).Name() != "pi" || (UCB{}).Name() != "ucb" {
		t.Fatal("wrong acquisition names")
	}
}

func TestEIProperties(t *testing.T) {
	a := EI{Xi: 0}
	// Mean far above best with no uncertainty → improvement itself.
	if got := a.Score(10, 0, 5); got != 5 {
		t.Fatalf("EI certain improvement = %v, want 5", got)
	}
	// Mean below best with no uncertainty → zero.
	if got := a.Score(1, 0, 5); got != 0 {
		t.Fatalf("EI certain non-improvement = %v, want 0", got)
	}
	// Uncertainty adds value even below best.
	if got := a.Score(4.9, 1, 5); got <= 0 {
		t.Fatalf("EI with uncertainty = %v, want > 0", got)
	}
	// EI grows with std at equal mean.
	if a.Score(5, 2, 5) <= a.Score(5, 1, 5) {
		t.Fatal("EI should increase with uncertainty")
	}
}

func TestPIProperties(t *testing.T) {
	a := PI{Xi: 0}
	if got := a.Score(10, 0, 5); got != 1 {
		t.Fatalf("PI certain improvement = %v, want 1", got)
	}
	if got := a.Score(1, 0, 5); got != 0 {
		t.Fatalf("PI certain non-improvement = %v, want 0", got)
	}
	if got := a.Score(5, 1, 5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("PI at the boundary = %v, want 0.5", got)
	}
}

func TestUCBProperties(t *testing.T) {
	a := UCB{Kappa: 2}
	if got := a.Score(3, 1.5, 0); got != 6 {
		t.Fatalf("UCB = %v, want 6", got)
	}
}

func TestNewSearchPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 1) did not panic")
		}
	}()
	New(0, 1)
}

func TestHedgeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty portfolio did not panic")
			}
		}()
		NewHedge(nil, 0.5, rng)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero eta did not panic")
			}
		}()
		NewHedge(DefaultPortfolio(), 0, rng)
	}()
}

// driveBO runs the BO search against a deterministic utility oracle.
func driveBO(s *Search, util func(int) float64, steps int) []int {
	n := 2
	visited := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		n = s.Next(optimizer.Observation{N: n, Utility: util(n)})
		visited = append(visited, n)
	}
	return visited
}

func emulabUtility(perProc, capacity float64) func(n int) float64 {
	thr := utility.SaturatingThroughput(perProc, capacity)
	return func(n int) float64 {
		return utility.Nonlinear(n, thr(n)/float64(n), 0, utility.DefaultB, utility.DefaultK)
	}
}

func TestBOFindsOptimumQuickly(t *testing.T) {
	// Figure 7: BO converges to the optimum (48) within a handful of
	// samples after the random phase.
	util := emulabUtility(20.83e6, 1e9)
	s := New(100, 42)
	visited := driveBO(s, util, 40)
	// Count how many of the last 20 proposals are near the optimum.
	near := 0
	for _, v := range visited[20:] {
		if v >= 42 && v <= 56 {
			near++
		}
	}
	if near < 12 {
		t.Fatalf("only %d/20 late proposals near 48: %v", near, visited[20:])
	}
}

func TestBOFindsSmallOptimum(t *testing.T) {
	util := emulabUtility(10e6, 100e6) // optimum 10
	s := New(32, 7)
	visited := driveBO(s, util, 40)
	near := 0
	for _, v := range visited[20:] {
		if v >= 7 && v <= 14 {
			near++
		}
	}
	if near < 12 {
		t.Fatalf("only %d/20 late proposals near 10: %v", near, visited[20:])
	}
}

func TestBOKeepsExploringAfterConvergence(t *testing.T) {
	// The 20-observation window forces periodic exploration: late
	// proposals must not collapse onto a single value forever.
	util := emulabUtility(10e6, 100e6)
	s := New(32, 3)
	visited := driveBO(s, util, 80)
	tail := visited[40:]
	distinct := map[int]bool{}
	for _, v := range tail {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("BO stopped exploring: tail %v", tail)
	}
}

func TestBOWindowEviction(t *testing.T) {
	s := New(32, 1)
	util := emulabUtility(10e6, 100e6)
	driveBO(s, util, 50)
	xs, ys := s.Observations()
	if len(xs) != s.Window || len(ys) != s.Window {
		t.Fatalf("window size %d/%d, want %d", len(xs), len(ys), s.Window)
	}
}

func TestBOIgnoresNonFiniteUtilities(t *testing.T) {
	s := New(16, 1)
	s.Next(optimizer.Observation{N: 2, Utility: math.NaN()})
	s.Next(optimizer.Observation{N: 2, Utility: math.Inf(1)})
	xs, _ := s.Observations()
	if len(xs) != 0 {
		t.Fatalf("non-finite observations stored: %v", xs)
	}
}

func TestBODeterministicPerSeed(t *testing.T) {
	util := emulabUtility(10e6, 100e6)
	a := driveBO(New(32, 11), util, 30)
	b := driveBO(New(32, 11), util, 30)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: BO proposals always stay in bounds for arbitrary bounded
// utility streams.
func TestBOBoundsProperty(t *testing.T) {
	f := func(utils []float64, maxN8 uint8) bool {
		maxN := int(maxN8%40) + 1
		s := New(maxN, 5)
		n := 1
		for _, u := range utils {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				u = 0
			}
			n = s.Next(optimizer.Observation{N: n, Utility: u})
			if n < 1 || n > maxN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBOCanProbeHighValuesEarly(t *testing.T) {
	// §4.5: BO's random phase can probe very high concurrency — the
	// behaviour that makes it aggressive against non-Falcon transfers.
	// With a full search space of 100, at least one early proposal
	// across seeds should exceed 40.
	util := emulabUtility(20.83e6, 1e9)
	sawHigh := false
	for seed := int64(0); seed < 10; seed++ {
		s := New(100, seed)
		visited := driveBO(s, util, 4)
		for _, v := range visited[:3] {
			if v > 40 {
				sawHigh = true
			}
		}
	}
	if !sawHigh {
		t.Fatal("random phase never probed high concurrency across 10 seeds")
	}
}

func TestHedgeGainsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHedge(DefaultPortfolio(), 0.5, rng)
	gp := NewGP(2, 1, 0.01)
	if err := gp.Fit([]float64{1, 5, 9}, []float64{1, 5, 2}); err != nil {
		t.Fatal(err)
	}
	h.Propose(gp, 1, 10, 5)
	if g := h.Gains(); len(g) != 4 {
		t.Fatalf("gains len = %d", len(g))
	}
	before := h.Gains()
	h.Propose(gp, 1, 10, 5)
	after := h.Gains()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("second Propose did not update gains")
	}
}
