// Package bayesopt implements Falcon's Bayesian Optimization search
// (§3.2): a Gaussian Process surrogate over the utility-vs-concurrency
// function, standard acquisition functions (Expected Improvement,
// Probability of Improvement, Upper Confidence Bound), and the
// GP-Hedge portfolio [13 — Auer et al.; Hoffman et al.] that picks
// among them online.
//
// Per the paper's design choices, the optimizer starts with a short
// random sampling phase (3 samples), keeps only the most recent 20
// observations in the surrogate — bounding Gaussian Process cost and
// forcing periodic re-exploration when conditions change — and uses a
// uniform prior over the search space.
package bayesopt

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// GP is a one-dimensional Gaussian Process regressor with an RBF
// kernel:
//
//	k(x, x') = SignalVar·exp(−(x−x')²/(2·LengthScale²)) + NoiseVar·δ(x,x')
//
// Targets are standardised internally, so hyperparameters are relative
// to unit-variance data.
//
// Fit recognises the sliding-window access pattern of the searcher:
// when the new observation set extends the previous one by a single
// point (or slides the window by one), the Cholesky factor is updated
// incrementally in O(n²) instead of refactorised in O(n³). The
// append-only update is bit-identical to a full refit; the
// window-slide update differs only by rank-1-update rounding.
type GP struct {
	// LengthScale is the RBF kernel length scale in input units.
	LengthScale float64
	// SignalVar is the kernel signal variance (of standardised targets).
	SignalVar float64
	// NoiseVar is the observation noise variance (of standardised
	// targets).
	NoiseVar float64

	xs    []float64
	alpha []float64
	chol  *linalg.Chol
	meanY float64
	stdY  float64
	// yStd caches the standardised targets from Fit so
	// LogMarginalLikelihood's yᵀα term is a dot product instead of a
	// kernel-matrix reconstruction.
	yStd   []float64
	fitted bool
	// fitHyper records the hyperparameters the current factor was
	// built with; the incremental paths require them unchanged.
	fitHyper [3]float64

	// Scratch buffers (kernel rows, Predict k* and solve vectors,
	// PredictInto's cross-covariance block).
	rowBuf []float64
	kstar  []float64
	vbuf   []float64
	bbuf   []float64

	// kTab memoises the RBF kernel over integer input distances: the
	// searcher's inputs are integer concurrencies, so almost every
	// kernel evaluation — fits and candidate sweeps alike — has an
	// integral distance and resolves to a table lookup instead of a
	// math.Exp call. Entry d is built with the same expression the
	// direct path evaluates, so lookups are bitwise identical.
	// kTabHyper records the (LengthScale, SignalVar) the table was
	// built with; syncKTab drops it when they change.
	kTab     []float64
	kTabHyper [2]float64
}

// NewGP returns a GP with the given hyperparameters. It panics on
// non-positive values, which are configuration errors.
func NewGP(lengthScale, signalVar, noiseVar float64) *GP {
	if lengthScale <= 0 || signalVar <= 0 || noiseVar <= 0 {
		panic(fmt.Sprintf("bayesopt: invalid GP hyperparameters ℓ=%v σf²=%v σn²=%v", lengthScale, signalVar, noiseVar))
	}
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar, chol: linalg.NewChol(24)}
}

// maxKernelTable bounds the integer-distance kernel table (64 KiB of
// float64 at most); larger distances take the direct math.Exp path.
const maxKernelTable = 8192

// syncKTab invalidates the integer-distance kernel table if the kernel
// hyperparameters changed since it was built. Fit/Predict/PredictInto
// call it on entry so kernel() can trust the table unconditionally.
func (g *GP) syncKTab() {
	if g.kTabHyper[0] != g.LengthScale || g.kTabHyper[1] != g.SignalVar {
		g.kTab = g.kTab[:0]
		g.kTabHyper = [2]float64{g.LengthScale, g.SignalVar}
	}
}

// growKTab extends the table through distance di. Kept out of kernel's
// inlining budget: it runs a handful of times per hyperparameter set.
//
//go:noinline
func (g *GP) growKTab(di int) {
	for d := len(g.kTab); d <= di; d++ {
		z := float64(d) / g.LengthScale
		g.kTab = append(g.kTab, g.SignalVar*math.Exp(-0.5*z*z))
	}
}

// sweepTablePrepared reports whether the query grid xs is consecutive
// integers and every training input is integral, in which case it
// grows the kernel table to cover every query↔training distance and
// returns the grid's integer origin. PredictInto's fast path then
// reads every kernel value straight out of the table.
func (g *GP) sweepTablePrepared(xs []float64, m int) (int, bool) {
	x0 := xs[0]
	x0i := int(x0)
	if float64(x0i) != x0 {
		return 0, false
	}
	for j, x := range xs {
		if x != x0+float64(j) {
			return 0, false
		}
	}
	maxIdx := 0
	for _, xi := range g.xs {
		p := int(xi)
		if float64(p) != xi {
			return 0, false
		}
		rel := p - x0i
		if rel > maxIdx {
			maxIdx = rel
		}
		if d := (m - 1) - rel; d > maxIdx {
			maxIdx = d
		}
	}
	if maxIdx > maxKernelTable {
		return 0, false
	}
	if maxIdx >= len(g.kTab) {
		g.growKTab(maxIdx)
	}
	return x0i, true
}

// kernel evaluates the RBF kernel without the noise term. Integral
// input distances — the only kind the integer concurrency grid
// produces — come from kTab; the table entry is σf²·exp(−½(d/ℓ)²)
// with d the exact distance, bitwise equal to the direct expression
// below because negating an exact difference and squaring it round
// identically.
func (g *GP) kernel(a, b float64) float64 {
	d := a - b
	if di := int(d); float64(di) == d {
		if di < 0 {
			di = -di
		}
		if di >= 0 && di <= maxKernelTable {
			if di >= len(g.kTab) {
				g.growKTab(di)
			}
			return g.kTab[di]
		}
	}
	z := d / g.LengthScale
	return g.SignalVar * math.Exp(-0.5*z*z)
}

// kernelRow fills g.rowBuf with k(xs[n], xs[0..n]) including the noise
// jitter on the diagonal — the bordering row AppendRow consumes.
func (g *GP) kernelRow(xs []float64, n int) []float64 {
	if cap(g.rowBuf) < n+1 {
		g.rowBuf = make([]float64, n+1)
	}
	row := g.rowBuf[:n+1]
	for j := 0; j <= n; j++ {
		v := g.kernel(xs[n], xs[j])
		if j == n {
			v += g.NoiseVar + 1e-9 // jitter for numerical safety
		}
		row[j] = v
	}
	return row
}

// refactor builds the Cholesky factor from scratch.
func (g *GP) refactor(xs []float64) error {
	g.chol.Reset()
	for i := range xs {
		if err := g.chol.AppendRow(g.kernelRow(xs, i)); err != nil {
			g.chol.Reset()
			g.fitted = false
			return fmt.Errorf("bayesopt: kernel matrix not PD: %w", err)
		}
	}
	return nil
}

// extendsByOne reports whether xs equals g.xs plus one appended point.
func (g *GP) extendsByOne(xs []float64) bool {
	if len(xs) != len(g.xs)+1 {
		return false
	}
	for i := range g.xs {
		if xs[i] != g.xs[i] {
			return false
		}
	}
	return true
}

// slidesByOne reports whether xs equals g.xs shifted left by one with
// one appended point (the full-window case).
func (g *GP) slidesByOne(xs []float64) bool {
	if len(xs) != len(g.xs) || len(xs) == 0 {
		return false
	}
	for i := 1; i < len(g.xs); i++ {
		if xs[i-1] != g.xs[i] {
			return false
		}
	}
	return true
}

// Fit conditions the GP on the observations. It returns an error when
// called with mismatched or empty slices or when the kernel matrix is
// numerically singular (which the noise term should prevent).
func (g *GP) Fit(xs, ys []float64) error {
	if err := g.fitPrepare(xs, ys); err != nil {
		return err
	}
	g.solveAlpha()
	return nil
}

// fitPrepare is Fit minus the alpha solve: it updates the Cholesky
// factor, standardises the targets and records the fit state, leaving
// g.alpha sized but stale. Search's model selection prepares all three
// length-scale candidates first and then solves their alphas in one
// interleaved pass (linalg.SolveInto3); single-GP callers use Fit,
// which is fitPrepare plus solveAlpha.
func (g *GP) fitPrepare(xs, ys []float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("bayesopt: Fit with no observations")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("bayesopt: Fit length mismatch %d != %d", len(xs), len(ys))
	}
	n := len(xs)
	g.syncKTab()

	// Standardise targets.
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	variance := 0.0
	for _, y := range ys {
		variance += (y - mean) * (y - mean)
	}
	variance /= float64(n)
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1 // constant targets: leave them centred at zero
	}

	// Update the factor: incrementally when the window grew or slid by
	// one under unchanged hyperparameters, from scratch otherwise. A
	// failed incremental update falls back to refactoring.
	hyper := [3]float64{g.LengthScale, g.SignalVar, g.NoiseVar}
	switch {
	case g.fitted && hyper == g.fitHyper && g.extendsByOne(xs):
		if err := g.chol.AppendRow(g.kernelRow(xs, n-1)); err != nil {
			if err := g.refactor(xs); err != nil {
				return err
			}
		}
	case g.fitted && hyper == g.fitHyper && g.slidesByOne(xs):
		g.chol.DropFirst()
		if err := g.chol.AppendRow(g.kernelRow(xs, n-1)); err != nil {
			if err := g.refactor(xs); err != nil {
				return err
			}
		}
	default:
		if err := g.refactor(xs); err != nil {
			return err
		}
	}

	if cap(g.yStd) < n {
		g.yStd = make([]float64, n)
	}
	g.yStd = g.yStd[:n]
	for i, y := range ys {
		g.yStd[i] = (y - mean) / std
	}
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.xs = append(g.xs[:0], xs...)
	g.meanY = mean
	g.stdY = std
	g.fitHyper = hyper
	g.fitted = true
	return nil
}

// solveAlpha computes alpha = K⁻¹·yStd against the prepared factor.
func (g *GP) solveAlpha() {
	g.chol.SolveInto(g.alpha, g.yStd)
}

// Fitted reports whether Fit has succeeded at least once (and the
// factor survives — a failed refit invalidates it).
func (g *GP) Fitted() bool { return g.fitted }

// Predict returns the posterior mean and standard deviation at x, in
// the original target units. Predicting before a successful Fit panics
// — a sequencing bug in the caller.
func (g *GP) Predict(x float64) (mean, std float64) {
	if !g.Fitted() {
		panic("bayesopt: Predict before Fit")
	}
	g.syncKTab()
	n := len(g.xs)
	if cap(g.kstar) < n {
		g.kstar = make([]float64, n)
		g.vbuf = make([]float64, n)
	}
	kstar := g.kstar[:n]
	v := g.vbuf[:n]
	for i, xi := range g.xs {
		kstar[i] = g.kernel(x, xi)
	}
	mu := linalg.Dot(kstar, g.alpha)
	g.chol.SolveLowerInto(v, kstar)
	varStar := g.SignalVar - linalg.Dot(v, v)
	if varStar < 0 {
		varStar = 0
	}
	return mu*g.stdY + g.meanY, math.Sqrt(varStar) * g.stdY
}

// PredictInto evaluates the posterior at every query point in one
// batched pass, writing the means and standard deviations (original
// target units) into means and stds. It is bitwise identical to
// calling Predict once per point — the same individually rounded
// operations in the same per-point order — but touches the Cholesky
// factor once for all points instead of once per point and reuses one
// flat scratch block, so a full candidate-grid sweep is a single
// cache-friendly kernel. The alpha vector (K⁻¹y) is already cached by
// Fit; no per-call factor work happens here. It panics before a
// successful Fit or on length mismatches.
func (g *GP) PredictInto(xs, means, stds []float64) {
	if !g.Fitted() {
		panic("bayesopt: PredictInto before Fit")
	}
	m := len(xs)
	if len(means) != m || len(stds) != m {
		panic(fmt.Sprintf("bayesopt: PredictInto lengths %d,%d != %d", len(means), len(stds), m))
	}
	if m == 0 {
		return
	}
	g.syncKTab()
	n := len(g.xs)
	// B is the n×m cross-covariance block in i-major layout:
	// B[i*m+j] = k(xs[j], X[i]) — column j is Predict's k* vector.
	if cap(g.bbuf) < n*m {
		g.bbuf = make([]float64, n*m)
	}
	b := g.bbuf[:n*m]
	// The means accumulate during the build in ascending-i order, so
	// each is bitwise linalg.Dot(k*, alpha).
	for j := range means {
		means[j] = 0
	}
	if x0, ok := g.sweepTablePrepared(xs, m); ok {
		// Fast path: consecutive-integer query grid over integral
		// training inputs — the searcher's candidate sweep. Every
		// kernel value is kTab[|j−p|], so each row is two strided
		// table walks with no per-element kernel call; the table was
		// grown to cover every distance above.
		ktab := g.kTab
		for i, xi := range g.xs {
			row := b[i*m : i*m+m]
			p := int(xi) - x0
			down := p // row[j] = ktab[p−j] for j < p
			if down > m {
				down = m
			}
			for j := 0; j < down; j++ {
				row[j] = ktab[p-j]
			}
			if p < m {
				up := p // row[j] = ktab[j−p] for j ≥ p
				if up < 0 {
					up = 0
				}
				copy(row[up:], ktab[up-p:m-p])
			}
			linalg.AxpyInto(means, row, g.alpha[i])
		}
	} else {
		for i, xi := range g.xs {
			ai := g.alpha[i]
			row := b[i*m : i*m+m]
			for j, x := range xs {
				kv := g.kernel(x, xi)
				row[j] = kv
				means[j] += kv * ai
			}
		}
	}
	// One forward solve for all points: column j becomes Predict's v.
	g.chol.SolveLowerBatchInto(b, m)
	// stds[j] accumulates Σᵢ vᵢ² in ascending-i order, matching
	// linalg.Dot(v, v).
	for j := range stds {
		stds[j] = 0
	}
	for i := 0; i < n; i++ {
		linalg.AddSqInto(stds, b[i*m:i*m+m])
	}
	for j := range stds {
		varStar := g.SignalVar - stds[j]
		if varStar < 0 {
			varStar = 0
		}
		means[j] = means[j]*g.stdY + g.meanY
		stds[j] = math.Sqrt(varStar) * g.stdY
	}
}

// LogMarginalLikelihood returns the log evidence of the fitted model,
//
//	log p(y|X) = −½·yᵀα − Σᵢ log Lᵢᵢ − n/2·log 2π
//
// (in standardised target units). Higher is better; Search uses it to
// select the kernel length scale at each refit. It panics before a
// successful Fit. The yᵀα quadratic term uses the standardised targets
// cached by Fit, so no kernel evaluation happens here.
func (g *GP) LogMarginalLikelihood() float64 {
	if !g.Fitted() {
		panic("bayesopt: LogMarginalLikelihood before Fit")
	}
	n := len(g.xs)
	quad := linalg.Dot(g.yStd, g.alpha)
	return -0.5*quad - 0.5*g.chol.LogDet() - float64(n)/2*math.Log(2*math.Pi)
}
