// Package bayesopt implements Falcon's Bayesian Optimization search
// (§3.2): a Gaussian Process surrogate over the utility-vs-concurrency
// function, standard acquisition functions (Expected Improvement,
// Probability of Improvement, Upper Confidence Bound), and the
// GP-Hedge portfolio [13 — Auer et al.; Hoffman et al.] that picks
// among them online.
//
// Per the paper's design choices, the optimizer starts with a short
// random sampling phase (3 samples), keeps only the most recent 20
// observations in the surrogate — bounding Gaussian Process cost and
// forcing periodic re-exploration when conditions change — and uses a
// uniform prior over the search space.
package bayesopt

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// GP is a one-dimensional Gaussian Process regressor with an RBF
// kernel:
//
//	k(x, x') = SignalVar·exp(−(x−x')²/(2·LengthScale²)) + NoiseVar·δ(x,x')
//
// Targets are standardised internally, so hyperparameters are relative
// to unit-variance data.
type GP struct {
	// LengthScale is the RBF kernel length scale in input units.
	LengthScale float64
	// SignalVar is the kernel signal variance (of standardised targets).
	SignalVar float64
	// NoiseVar is the observation noise variance (of standardised
	// targets).
	NoiseVar float64

	xs    []float64
	alpha []float64
	chol  *linalg.Matrix
	meanY float64
	stdY  float64
}

// NewGP returns a GP with the given hyperparameters. It panics on
// non-positive values, which are configuration errors.
func NewGP(lengthScale, signalVar, noiseVar float64) *GP {
	if lengthScale <= 0 || signalVar <= 0 || noiseVar <= 0 {
		panic(fmt.Sprintf("bayesopt: invalid GP hyperparameters ℓ=%v σf²=%v σn²=%v", lengthScale, signalVar, noiseVar))
	}
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar}
}

// kernel evaluates the RBF kernel without the noise term.
func (g *GP) kernel(a, b float64) float64 {
	d := (a - b) / g.LengthScale
	return g.SignalVar * math.Exp(-0.5*d*d)
}

// Fit conditions the GP on the observations. It returns an error when
// called with mismatched or empty slices or when the kernel matrix is
// numerically singular (which the noise term should prevent).
func (g *GP) Fit(xs, ys []float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("bayesopt: Fit with no observations")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("bayesopt: Fit length mismatch %d != %d", len(xs), len(ys))
	}
	n := len(xs)

	// Standardise targets.
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	variance := 0.0
	for _, y := range ys {
		variance += (y - mean) * (y - mean)
	}
	variance /= float64(n)
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1 // constant targets: leave them centred at zero
	}

	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(xs[i], xs[j])
			if i == j {
				v += g.NoiseVar + 1e-9 // jitter for numerical safety
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := linalg.Cholesky(k)
	if err != nil {
		return fmt.Errorf("bayesopt: kernel matrix not PD: %w", err)
	}
	yStd := make([]float64, n)
	for i, y := range ys {
		yStd[i] = (y - mean) / std
	}
	g.xs = append(g.xs[:0], xs...)
	g.alpha = linalg.SolveCholesky(chol, yStd)
	g.chol = chol
	g.meanY = mean
	g.stdY = std
	return nil
}

// Fitted reports whether Fit has succeeded at least once.
func (g *GP) Fitted() bool { return g.chol != nil }

// Predict returns the posterior mean and standard deviation at x, in
// the original target units. Predicting before a successful Fit panics
// — a sequencing bug in the caller.
func (g *GP) Predict(x float64) (mean, std float64) {
	if !g.Fitted() {
		panic("bayesopt: Predict before Fit")
	}
	n := len(g.xs)
	kstar := make([]float64, n)
	for i, xi := range g.xs {
		kstar[i] = g.kernel(x, xi)
	}
	mu := linalg.Dot(kstar, g.alpha)
	v := linalg.SolveLower(g.chol, kstar)
	varStar := g.SignalVar - linalg.Dot(v, v)
	if varStar < 0 {
		varStar = 0
	}
	return mu*g.stdY + g.meanY, math.Sqrt(varStar) * g.stdY
}

// LogMarginalLikelihood returns the log evidence of the fitted model,
//
//	log p(y|X) = −½·yᵀα − Σᵢ log Lᵢᵢ − n/2·log 2π
//
// (in standardised target units). Higher is better; Search uses it to
// select the kernel length scale at each refit. It panics before a
// successful Fit.
func (g *GP) LogMarginalLikelihood() float64 {
	if !g.Fitted() {
		panic("bayesopt: LogMarginalLikelihood before Fit")
	}
	n := len(g.xs)
	// Recover standardised targets from alpha: y = K·alpha, but we can
	// use the identity yᵀα directly by recomputing y from stored data.
	// Cheaper: yᵀα = αᵀKα; K·α = y. We stored neither y nor K, so
	// reconstruct yᵀα via K: yᵀα = Σᵢ yᵢαᵢ with yᵢ = (K·α)ᵢ.
	quad := 0.0
	for i := 0; i < n; i++ {
		ki := 0.0
		for j := 0; j < n; j++ {
			v := g.kernel(g.xs[i], g.xs[j])
			if i == j {
				v += g.NoiseVar + 1e-9
			}
			ki += v * g.alpha[j]
		}
		quad += ki * g.alpha[i]
	}
	return -0.5*quad - 0.5*linalg.LogDetFromCholesky(g.chol) - float64(n)/2*math.Log(2*math.Pi)
}
