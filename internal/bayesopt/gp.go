// Package bayesopt implements Falcon's Bayesian Optimization search
// (§3.2): a Gaussian Process surrogate over the utility-vs-concurrency
// function, standard acquisition functions (Expected Improvement,
// Probability of Improvement, Upper Confidence Bound), and the
// GP-Hedge portfolio [13 — Auer et al.; Hoffman et al.] that picks
// among them online.
//
// Per the paper's design choices, the optimizer starts with a short
// random sampling phase (3 samples), keeps only the most recent 20
// observations in the surrogate — bounding Gaussian Process cost and
// forcing periodic re-exploration when conditions change — and uses a
// uniform prior over the search space.
package bayesopt

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// GP is a one-dimensional Gaussian Process regressor with an RBF
// kernel:
//
//	k(x, x') = SignalVar·exp(−(x−x')²/(2·LengthScale²)) + NoiseVar·δ(x,x')
//
// Targets are standardised internally, so hyperparameters are relative
// to unit-variance data.
//
// Fit recognises the sliding-window access pattern of the searcher:
// when the new observation set extends the previous one by a single
// point (or slides the window by one), the Cholesky factor is updated
// incrementally in O(n²) instead of refactorised in O(n³). The
// append-only update is bit-identical to a full refit; the
// window-slide update differs only by rank-1-update rounding.
type GP struct {
	// LengthScale is the RBF kernel length scale in input units.
	LengthScale float64
	// SignalVar is the kernel signal variance (of standardised targets).
	SignalVar float64
	// NoiseVar is the observation noise variance (of standardised
	// targets).
	NoiseVar float64

	xs    []float64
	alpha []float64
	chol  *linalg.Chol
	meanY float64
	stdY  float64
	// yStd caches the standardised targets from Fit so
	// LogMarginalLikelihood's yᵀα term is a dot product instead of a
	// kernel-matrix reconstruction.
	yStd   []float64
	fitted bool
	// fitHyper records the hyperparameters the current factor was
	// built with; the incremental paths require them unchanged.
	fitHyper [3]float64

	// Scratch buffers (kernel rows, Predict k* and solve vectors).
	rowBuf []float64
	kstar  []float64
	vbuf   []float64
}

// NewGP returns a GP with the given hyperparameters. It panics on
// non-positive values, which are configuration errors.
func NewGP(lengthScale, signalVar, noiseVar float64) *GP {
	if lengthScale <= 0 || signalVar <= 0 || noiseVar <= 0 {
		panic(fmt.Sprintf("bayesopt: invalid GP hyperparameters ℓ=%v σf²=%v σn²=%v", lengthScale, signalVar, noiseVar))
	}
	return &GP{LengthScale: lengthScale, SignalVar: signalVar, NoiseVar: noiseVar, chol: linalg.NewChol(24)}
}

// kernel evaluates the RBF kernel without the noise term.
func (g *GP) kernel(a, b float64) float64 {
	d := (a - b) / g.LengthScale
	return g.SignalVar * math.Exp(-0.5*d*d)
}

// kernelRow fills g.rowBuf with k(xs[n], xs[0..n]) including the noise
// jitter on the diagonal — the bordering row AppendRow consumes.
func (g *GP) kernelRow(xs []float64, n int) []float64 {
	if cap(g.rowBuf) < n+1 {
		g.rowBuf = make([]float64, n+1)
	}
	row := g.rowBuf[:n+1]
	for j := 0; j <= n; j++ {
		v := g.kernel(xs[n], xs[j])
		if j == n {
			v += g.NoiseVar + 1e-9 // jitter for numerical safety
		}
		row[j] = v
	}
	return row
}

// refactor builds the Cholesky factor from scratch.
func (g *GP) refactor(xs []float64) error {
	g.chol.Reset()
	for i := range xs {
		if err := g.chol.AppendRow(g.kernelRow(xs, i)); err != nil {
			g.chol.Reset()
			g.fitted = false
			return fmt.Errorf("bayesopt: kernel matrix not PD: %w", err)
		}
	}
	return nil
}

// extendsByOne reports whether xs equals g.xs plus one appended point.
func (g *GP) extendsByOne(xs []float64) bool {
	if len(xs) != len(g.xs)+1 {
		return false
	}
	for i := range g.xs {
		if xs[i] != g.xs[i] {
			return false
		}
	}
	return true
}

// slidesByOne reports whether xs equals g.xs shifted left by one with
// one appended point (the full-window case).
func (g *GP) slidesByOne(xs []float64) bool {
	if len(xs) != len(g.xs) || len(xs) == 0 {
		return false
	}
	for i := 1; i < len(g.xs); i++ {
		if xs[i-1] != g.xs[i] {
			return false
		}
	}
	return true
}

// Fit conditions the GP on the observations. It returns an error when
// called with mismatched or empty slices or when the kernel matrix is
// numerically singular (which the noise term should prevent).
func (g *GP) Fit(xs, ys []float64) error {
	if len(xs) == 0 {
		return fmt.Errorf("bayesopt: Fit with no observations")
	}
	if len(xs) != len(ys) {
		return fmt.Errorf("bayesopt: Fit length mismatch %d != %d", len(xs), len(ys))
	}
	n := len(xs)

	// Standardise targets.
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	variance := 0.0
	for _, y := range ys {
		variance += (y - mean) * (y - mean)
	}
	variance /= float64(n)
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1 // constant targets: leave them centred at zero
	}

	// Update the factor: incrementally when the window grew or slid by
	// one under unchanged hyperparameters, from scratch otherwise. A
	// failed incremental update falls back to refactoring.
	hyper := [3]float64{g.LengthScale, g.SignalVar, g.NoiseVar}
	switch {
	case g.fitted && hyper == g.fitHyper && g.extendsByOne(xs):
		if err := g.chol.AppendRow(g.kernelRow(xs, n-1)); err != nil {
			if err := g.refactor(xs); err != nil {
				return err
			}
		}
	case g.fitted && hyper == g.fitHyper && g.slidesByOne(xs):
		g.chol.DropFirst()
		if err := g.chol.AppendRow(g.kernelRow(xs, n-1)); err != nil {
			if err := g.refactor(xs); err != nil {
				return err
			}
		}
	default:
		if err := g.refactor(xs); err != nil {
			return err
		}
	}

	if cap(g.yStd) < n {
		g.yStd = make([]float64, n)
	}
	g.yStd = g.yStd[:n]
	for i, y := range ys {
		g.yStd[i] = (y - mean) / std
	}
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n)
	}
	g.alpha = g.alpha[:n]
	g.chol.SolveInto(g.alpha, g.yStd)
	g.xs = append(g.xs[:0], xs...)
	g.meanY = mean
	g.stdY = std
	g.fitHyper = hyper
	g.fitted = true
	return nil
}

// Fitted reports whether Fit has succeeded at least once (and the
// factor survives — a failed refit invalidates it).
func (g *GP) Fitted() bool { return g.fitted }

// Predict returns the posterior mean and standard deviation at x, in
// the original target units. Predicting before a successful Fit panics
// — a sequencing bug in the caller.
func (g *GP) Predict(x float64) (mean, std float64) {
	if !g.Fitted() {
		panic("bayesopt: Predict before Fit")
	}
	n := len(g.xs)
	if cap(g.kstar) < n {
		g.kstar = make([]float64, n)
		g.vbuf = make([]float64, n)
	}
	kstar := g.kstar[:n]
	v := g.vbuf[:n]
	for i, xi := range g.xs {
		kstar[i] = g.kernel(x, xi)
	}
	mu := linalg.Dot(kstar, g.alpha)
	g.chol.SolveLowerInto(v, kstar)
	varStar := g.SignalVar - linalg.Dot(v, v)
	if varStar < 0 {
		varStar = 0
	}
	return mu*g.stdY + g.meanY, math.Sqrt(varStar) * g.stdY
}

// LogMarginalLikelihood returns the log evidence of the fitted model,
//
//	log p(y|X) = −½·yᵀα − Σᵢ log Lᵢᵢ − n/2·log 2π
//
// (in standardised target units). Higher is better; Search uses it to
// select the kernel length scale at each refit. It panics before a
// successful Fit. The yᵀα quadratic term uses the standardised targets
// cached by Fit, so no kernel evaluation happens here.
func (g *GP) LogMarginalLikelihood() float64 {
	if !g.Fitted() {
		panic("bayesopt: LogMarginalLikelihood before Fit")
	}
	n := len(g.xs)
	quad := linalg.Dot(g.yStd, g.alpha)
	return -0.5*quad - 0.5*g.chol.LogDet() - float64(n)/2*math.Log(2*math.Pi)
}
