package webservice

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the request-latency histogram bounds in seconds.
// The low end resolves cache/coalesce hits served from pre-rendered
// snapshots (tens of microseconds); the high end covers queued
// simulations and long-held SSE streams (which carry their own route
// label, so they do not pollute the short-request percentiles).
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram maintained with
// atomics: per-bucket non-cumulative counts (accumulated at render
// time), a total count, and the sum in nanoseconds.
type histogram struct {
	buckets [len(latencyBuckets) + 1]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], sec)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// metricsRegistry is the service's instrumentation state. Counters and
// gauges are atomics so the serving hot path never takes a lock to
// record; the label-keyed request counters live in a sync.Map keyed
// "route|status".
type metricsRegistry struct {
	requests sync.Map // "route|status" -> *atomic.Uint64
	latency  histogram

	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	coalesceHits atomic.Uint64
	simulations  atomic.Uint64
	evictions    atomic.Uint64

	queueDepth  atomic.Int64
	workersBusy atomic.Int64
	sseClients  atomic.Int64
	workerLimit int64
}

func (m *metricsRegistry) observeRequest(route string, status int, d time.Duration) {
	key := route + "|" + strconv.Itoa(status)
	c, ok := m.requests.Load(key)
	if !ok {
		c, _ = m.requests.LoadOrStore(key, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
	m.latency.observe(d)
}

// statusWriter captures the response status for the request counter
// while passing Flush through, so instrumented handlers can still
// stream (SSE needs the Flusher).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-route request counting and
// latency observation. route is the mux pattern, so the label set is
// small and fixed.
func (s *Service) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.met.observeRequest(route, sw.code, time.Since(start))
	}
}

// handleMetrics renders the Prometheus text exposition format
// (version 0.0.4) from the registry — counters and gauges from
// atomics, scenario-status gauges from a brief scan of the store
// order. No client library is linked; the format is a few fixed
// families written by hand.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.met
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprint(w, "# HELP falcon_http_requests_total HTTP requests served, by route pattern and status code.\n")
	fmt.Fprint(w, "# TYPE falcon_http_requests_total counter\n")
	type labeled struct {
		route, status string
		n             uint64
	}
	var rows []labeled
	m.requests.Range(func(k, v any) bool {
		key := k.(string)
		i := len(key) - 1
		for key[i] != '|' {
			i--
		}
		rows = append(rows, labeled{route: key[:i], status: key[i+1:], n: v.(*atomic.Uint64).Load()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].route != rows[j].route {
			return rows[i].route < rows[j].route
		}
		return rows[i].status < rows[j].status
	})
	for _, r := range rows {
		fmt.Fprintf(w, "falcon_http_requests_total{route=%q,status=%q} %d\n", r.route, r.status, r.n)
	}

	fmt.Fprint(w, "# HELP falcon_http_request_seconds HTTP request latency.\n")
	fmt.Fprint(w, "# TYPE falcon_http_request_seconds histogram\n")
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.latency.buckets[i].Load()
		fmt.Fprintf(w, "falcon_http_request_seconds_bucket{le=%q} %d\n", formatFloat(le), cum)
	}
	cum += m.latency.buckets[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "falcon_http_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "falcon_http_request_seconds_sum %s\n", formatFloat(float64(m.latency.sumNs.Load())/1e9))
	fmt.Fprintf(w, "falcon_http_request_seconds_count %d\n", m.latency.count.Load())

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("falcon_cache_hits_total", "Scenario submissions answered from the content-addressed result cache.", m.cacheHits.Load())
	counter("falcon_cache_misses_total", "Scenario submissions that missed the result cache.", m.cacheMisses.Load())
	counter("falcon_coalesce_hits_total", "Scenario submissions coalesced onto an in-flight identical simulation.", m.coalesceHits.Load())
	counter("falcon_simulations_total", "Simulations actually executed (cache and coalesce hits excluded).", m.simulations.Load())
	counter("falcon_store_evictions_total", "Completed scenarios evicted from the bounded store.", m.evictions.Load())

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("falcon_queue_depth", "Accepted scenarios waiting for a worker-pool slot.", m.queueDepth.Load())
	gauge("falcon_workers_busy", "Worker-pool slots currently running a simulation.", m.workersBusy.Load())
	gauge("falcon_worker_limit", "Worker-pool size (maximum concurrent simulations).", m.workerLimit)
	gauge("falcon_sse_clients", "Open server-sent-event streams.", m.sseClients.Load())

	s.mu.Lock()
	scs := append([]*Scenario(nil), s.order...)
	s.mu.Unlock()
	byStatus := map[string]int64{"queued": 0, "running": 0, "done": 0, "failed": 0}
	for _, sc := range scs {
		byStatus[sc.snap().Status]++
	}
	fmt.Fprint(w, "# HELP falcon_scenarios Scenarios retained in the store, by status.\n")
	fmt.Fprint(w, "# TYPE falcon_scenarios gauge\n")
	statuses := make([]string, 0, len(byStatus))
	for st := range byStatus {
		statuses = append(statuses, st)
	}
	sort.Strings(statuses)
	for _, st := range statuses {
		fmt.Fprintf(w, "falcon_scenarios{status=%q} %d\n", st, byStatus[st])
	}
	gauge("falcon_store_size", "Total scenarios retained in the store.", int64(len(scs)))
}

// formatFloat renders a float the way Prometheus expects bucket bounds
// and sums: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
