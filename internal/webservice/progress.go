package webservice

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/session"
)

// AgentProgress is the live state of one session inside a running
// scenario, maintained from the scheduler's event stream.
type AgentProgress struct {
	ID          string  `json:"id"`
	Joined      bool    `json:"joined"`
	Finished    bool    `json:"finished"`
	Epochs      int     `json:"epochs"`
	LastGbps    float64 `json:"last_gbps"`
	LastLoss    float64 `json:"last_loss"`
	Concurrency int     `json:"concurrency"`
}

// Progress is the GET /api/scenarios/{id}/progress payload.
type Progress struct {
	Status string `json:"status"`
	// Cached reports that the scenario was answered from the
	// content-addressed result cache: the agent view below is the
	// final state of the original run, not a live stream.
	Cached  bool            `json:"cached"`
	SimTime float64         `json:"sim_time"`
	Agents  []AgentProgress `json:"agents"`
}

// progressTracker is a session event consumer that folds the stream
// into a queryable per-agent view — the live counterpart of the
// Timeline sink, for scenarios still in flight.
type progressTracker struct {
	mu      sync.Mutex
	simTime float64
	order   []string
	agents  map[string]*AgentProgress
}

func newProgressTracker() *progressTracker {
	return &progressTracker{agents: make(map[string]*AgentProgress)}
}

// Sink returns the event consumer to install on the scheduler.
func (p *progressTracker) Sink() session.Sink {
	return func(e session.Event) {
		p.mu.Lock()
		defer p.mu.Unlock()
		a, ok := p.agents[e.Session]
		if !ok {
			a = &AgentProgress{ID: e.Session}
			p.agents[e.Session] = a
			p.order = append(p.order, e.Session)
		}
		if e.Time > p.simTime {
			p.simTime = e.Time
		}
		switch e.Kind {
		case session.Join:
			a.Joined = true
			a.Concurrency = e.Setting.Concurrency
		case session.Sample:
			a.Epochs++
			a.LastGbps = round3(e.Sample.Throughput / 1e9)
			a.LastLoss = round3(e.Sample.Loss)
		case session.Decision:
			a.Concurrency = e.Setting.Concurrency
		case session.Finish, session.Leave:
			a.Finished = true
		}
	}
}

// snapshot returns the agents in join order.
func (p *progressTracker) snapshot() (float64, []AgentProgress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]AgentProgress, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, *p.agents[id])
	}
	return p.simTime, out
}

// handleProgress serves the live view of a scenario: its status plus
// per-agent epoch counts and last-sample metrics, available while the
// run is still in progress (unlike results and charts).
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	sc := s.lookup(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	status := sc.Status
	cached := sc.Cached
	tracker := sc.progress
	s.mu.Unlock()
	var simTime float64
	var agents []AgentProgress
	if tracker != nil {
		simTime, agents = tracker.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Progress{Status: status, Cached: cached, SimTime: simTime, Agents: agents})
}
