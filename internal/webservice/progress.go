package webservice

import (
	"net/http"
	"sync"

	"repro/internal/session"
)

// AgentProgress is the live state of one session inside a running
// scenario, maintained from the scheduler's event stream.
type AgentProgress struct {
	ID          string  `json:"id"`
	Joined      bool    `json:"joined"`
	Finished    bool    `json:"finished"`
	Epochs      int     `json:"epochs"`
	LastGbps    float64 `json:"last_gbps"`
	LastLoss    float64 `json:"last_loss"`
	Concurrency int     `json:"concurrency"`
}

// Progress is the GET /api/scenarios/{id}/progress payload.
type Progress struct {
	Status string `json:"status"`
	// Cached reports that the scenario was answered from the
	// content-addressed result cache: the agent view below is the
	// final state of the original run, not a live stream.
	Cached bool `json:"cached"`
	// Coalesced reports that the scenario attached to another
	// request's in-flight simulation; the agent view is that shared
	// run's live stream.
	Coalesced bool            `json:"coalesced,omitempty"`
	SimTime   float64         `json:"sim_time"`
	Agents    []AgentProgress `json:"agents"`
}

// EventRecord is one entry of a scenario's event feed — the session
// event stream re-expressed as a JSON-serialisable record. The polled
// progress view is a pure fold over the record sequence (apply), and
// the SSE endpoint streams the records themselves, so the two
// endpoints agree event for event by construction.
type EventRecord struct {
	Kind  string  `json:"kind"`
	Agent string  `json:"agent"`
	Time  float64 `json:"time"`
	// Gbps and Loss carry the observation for sample records.
	Gbps float64 `json:"gbps,omitempty"`
	Loss float64 `json:"loss,omitempty"`
	// Concurrency carries the setting for join/decision/apply records.
	Concurrency int `json:"concurrency,omitempty"`
}

// recordOf lowers a session event onto its feed record.
func recordOf(e session.Event) EventRecord {
	rec := EventRecord{Kind: string(e.Kind), Agent: e.Session, Time: e.Time}
	switch e.Kind {
	case session.Join, session.Decision, session.Apply:
		rec.Concurrency = e.Setting.Concurrency
	case session.Sample:
		rec.Gbps = round3(e.Sample.Throughput / 1e9)
		rec.Loss = round3(e.Sample.Loss)
	}
	return rec
}

// progressTracker is a session event consumer that retains the event
// feed and folds it into a queryable per-agent view — the live
// counterpart of the Timeline sink, for scenarios still in flight. SSE
// clients replay the retained records and then follow live appends via
// the broadcast channel.
type progressTracker struct {
	mu      sync.Mutex
	simTime float64
	order   []string
	agents  map[string]*AgentProgress
	records []EventRecord
	// finished is set once the run's event stream is complete.
	finished bool
	// signal is closed and replaced on every append and on finish, so
	// streaming clients can wait for feed growth without polling.
	signal chan struct{}
}

func newProgressTracker() *progressTracker {
	return &progressTracker{agents: make(map[string]*AgentProgress), signal: make(chan struct{})}
}

// Sink returns the event consumer to install on the scheduler.
func (p *progressTracker) Sink() session.Sink {
	return func(e session.Event) {
		rec := recordOf(e)
		p.mu.Lock()
		p.records = append(p.records, rec)
		p.apply(rec)
		p.broadcastLocked()
		p.mu.Unlock()
	}
}

// apply folds one record into the per-agent view. Every consumer of
// the feed — the polled snapshot and any client replaying the SSE
// stream — sees the same fold, so the views cannot drift.
func (p *progressTracker) apply(rec EventRecord) {
	a, ok := p.agents[rec.Agent]
	if !ok {
		a = &AgentProgress{ID: rec.Agent}
		p.agents[rec.Agent] = a
		p.order = append(p.order, rec.Agent)
	}
	if rec.Time > p.simTime {
		p.simTime = rec.Time
	}
	switch session.Kind(rec.Kind) {
	case session.Join:
		a.Joined = true
		a.Concurrency = rec.Concurrency
	case session.Sample:
		a.Epochs++
		a.LastGbps = rec.Gbps
		a.LastLoss = rec.Loss
	case session.Decision:
		a.Concurrency = rec.Concurrency
	case session.Finish, session.Leave:
		a.Finished = true
	}
}

// foldRecords replays a record sequence through a fresh fold — the
// reference implementation the SSE transparency test holds the polled
// snapshot to.
func foldRecords(recs []EventRecord) (float64, []AgentProgress) {
	t := newProgressTracker()
	for _, r := range recs {
		t.apply(r)
	}
	out := make([]AgentProgress, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, *t.agents[id])
	}
	return t.simTime, out
}

// finish marks the feed complete and wakes streaming clients.
func (p *progressTracker) finish() {
	p.mu.Lock()
	p.finished = true
	p.broadcastLocked()
	p.mu.Unlock()
}

func (p *progressTracker) broadcastLocked() {
	close(p.signal)
	p.signal = make(chan struct{})
}

// tail returns a copy of the records from index from onward. When the
// feed has not grown past from, it instead returns a channel that is
// closed on the next append or on finish.
func (p *progressTracker) tail(from int) (recs []EventRecord, finished bool, wait <-chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.records) > from {
		return append([]EventRecord(nil), p.records[from:]...), p.finished, nil
	}
	return nil, p.finished, p.signal
}

// snapshot returns the agents in join order.
func (p *progressTracker) snapshot() (float64, []AgentProgress) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]AgentProgress, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, *p.agents[id])
	}
	return p.simTime, out
}

// handleProgress serves the live view of a scenario: its status plus
// per-agent epoch counts and last-sample metrics, available while the
// run is still in progress (unlike results and charts). The state read
// is a lock-free snapshot load; only the tracker fold takes its own
// (per-scenario) lock.
func (s *Service) handleProgress(w http.ResponseWriter, r *http.Request) {
	sc := s.lookup(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	st := sc.snap()
	var simTime float64
	var agents []AgentProgress
	if sc.progress != nil {
		simTime, agents = sc.progress.snapshot()
	}
	writeJSON(w, http.StatusOK, Progress{
		Status: st.Status, Cached: st.Cached, Coalesced: st.Coalesced,
		SimTime: simTime, Agents: agents,
	})
}
