package webservice

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleEvents streams a scenario's event feed as server-sent events
// (GET /api/scenarios/{id}/events): the retained records are replayed,
// live appends follow as they happen, and a terminal "done" event
// carries the scenario's final published body before the stream
// closes. Live clients hold one connection instead of polling the
// progress endpoint; the record sequence is exactly the feed the
// polled view folds, so the two endpoints agree event for event.
//
// Wire shape:
//
//	event: session
//	data: {"kind":"sample","agent":"agent1","time":35,"gbps":0.097,...}
//
//	event: done
//	data: {"id":"s0001","status":"done","results":[...],...}
//
// On service drain the stream ends with an empty "shutdown" event so
// clients can distinguish a clean server shutdown from a drop.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	sc := s.lookup(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	s.met.sseClients.Add(1)
	defer s.met.sseClients.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	idx := 0
	for {
		recs, _, wait := sc.progress.tail(idx)
		if len(recs) > 0 {
			for _, rec := range recs {
				data, err := json.Marshal(rec)
				if err != nil {
					return
				}
				if !writeSSE(w, "session", data) {
					return
				}
			}
			idx += len(recs)
			flusher.Flush()
			continue
		}
		// Feed is drained. A terminal snapshot means no further records
		// can arrive (runs finish their feed before publishing, and
		// waiters resolve after their leader), so the stream completes
		// with the final body.
		if st := sc.snap(); st.terminal() {
			writeSSE(w, "done", st.body)
			flusher.Flush()
			return
		}
		select {
		case <-wait:
		case <-sc.done:
		case <-r.Context().Done():
			return
		case <-s.draining:
			writeSSE(w, "shutdown", []byte("{}"))
			flusher.Flush()
			return
		}
	}
}

// writeSSE emits one server-sent event, reporting write failure so the
// stream loop can stop on a gone client.
func writeSSE(w http.ResponseWriter, event string, data []byte) bool {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err == nil
}
