package webservice

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
)

// TestCoalescedWaitersMatchSoloRun is the single-flight contract:
// N identical submissions while the first is still in flight run
// exactly one simulation, every waiter observes byte-identical results
// (the same published Results/Jain as the leader), and those results
// equal a solo run of the same request on a fresh service.
func TestCoalescedWaitersMatchSoloRun(t *testing.T) {
	const req = `{"testbed":"emulab","algorithm":"gd","duration_seconds":60}`

	// Solo reference run on its own service.
	soloSvc := New()
	soloTS := httptest.NewServer(soloSvc.Handler())
	defer func() {
		soloTS.Close()
		soloSvc.Close()
	}()
	_, soloOut := postScenario(t, soloTS.URL, req)
	solo := waitDone(t, soloTS.URL, soloOut["id"])
	if solo.Status != "done" || solo.Cached || solo.Coalesced {
		t.Fatalf("solo run: %+v", solo)
	}

	// Coalescing service: gate the runner so the leader stays in
	// flight while the waiters attach. Attachment is deterministic —
	// submissions are sequential and the flight cannot resolve while
	// the gate is closed.
	svc := NewWithLimit(1)
	gate := make(chan struct{})
	runs := 0
	svc.runFn = func(sc *Scenario) {
		<-gate
		runs++ // single worker: no data race
		svc.run(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	const width = 5
	var ids []string
	for i := 0; i < width; i++ {
		code, out := postScenario(t, ts.URL, req)
		if code != 202 {
			t.Fatalf("submission %d: status %d", i, code)
		}
		ids = append(ids, out["id"])
	}
	// Waiters report coalesced (and non-terminal) while the leader is
	// still gated.
	for _, id := range ids[1:] {
		st := svc.lookup(id).snap()
		if !st.Coalesced || st.terminal() {
			t.Fatalf("waiter %s before resolution: %+v", id, st)
		}
	}
	close(gate)

	var views []*scenarioView
	for _, id := range ids {
		views = append(views, waitDone(t, ts.URL, id))
	}
	if runs != 1 {
		t.Fatalf("simulation ran %d times for %d identical submissions, want exactly 1", runs, width)
	}
	if got := svc.met.coalesceHits.Load(); got != width-1 {
		t.Fatalf("coalesce hits = %d, want %d", got, width-1)
	}
	if got := svc.met.simulations.Load(); got != 1 {
		t.Fatalf("simulations counter = %d, want 1", got)
	}

	leader, waiters := views[0], views[1:]
	if leader.Cached || leader.Coalesced {
		t.Fatalf("leader flags: %+v", leader)
	}
	// The waiters' rendered result bytes must be identical to the
	// leader's — they share the very same published Results slice.
	leaderResults := resultsJSON(t, svc, ids[0])
	for i, wv := range waiters {
		if !wv.Coalesced || wv.Cached {
			t.Fatalf("waiter %d flags: %+v", i, wv)
		}
		if got := resultsJSON(t, svc, ids[i+1]); got != leaderResults {
			t.Fatalf("waiter %d results bytes %s ≠ leader %s", i, got, leaderResults)
		}
		if wv.JainIndex != leader.JainIndex {
			t.Fatalf("waiter %d Jain %v ≠ leader %v", i, wv.JainIndex, leader.JainIndex)
		}
	}
	// And the shared result equals the solo run bit for bit.
	if !reflect.DeepEqual(leader.Results, solo.Results) || leader.JainIndex != solo.JainIndex {
		t.Fatalf("coalesced result %+v (Jain %v) ≠ solo %+v (Jain %v)",
			leader.Results, leader.JainIndex, solo.Results, solo.JainIndex)
	}

	// A submission arriving after resolution is a plain cache hit, not
	// a coalesce.
	_, lateOut := postScenario(t, ts.URL, req)
	late := waitDone(t, ts.URL, lateOut["id"])
	if !late.Cached || late.Coalesced {
		t.Fatalf("post-resolution submission: %+v, want cached", late)
	}
}

// resultsJSON extracts the raw rendered "results" bytes from a
// scenario's published body.
func resultsJSON(t *testing.T, svc *Service, id string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(svc.lookup(id).snap().body, &m); err != nil {
		t.Fatal(err)
	}
	return string(m["results"])
}

// TestCoalescedFailurePropagates: when the leader fails, every waiter
// observes the same failure instead of hanging or re-running.
func TestCoalescedFailurePropagates(t *testing.T) {
	svc := NewWithLimit(1)
	gate := make(chan struct{})
	svc.runFn = func(sc *Scenario) {
		<-gate
		svc.fail(sc, fmt.Errorf("injected failure"))
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	var ids []string
	for i := 0; i < 3; i++ {
		_, out := postScenario(t, ts.URL, `{"testbed":"emulab","seed":77}`)
		ids = append(ids, out["id"])
	}
	close(gate)
	for _, id := range ids {
		sc := waitDone(t, ts.URL, id)
		if sc.Status != "failed" || sc.Error != "injected failure" {
			t.Fatalf("scenario %s: %+v, want propagated failure", id, sc)
		}
	}
	// Failures must not be cached: a retry after resolution runs again.
	if _, ok := svc.cache.get(svc.lookup(ids[0]).key); ok {
		t.Fatal("failed result landed in the cache")
	}
}
