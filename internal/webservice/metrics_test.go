package webservice

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the parsed single-value series
// (histogram buckets and labeled counters keyed by their full series
// string).
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("unparsable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint drives a small workload and checks the exposed
// families: request counters by route/status, the latency histogram's
// internal consistency, cache/coalesce/simulation counters, and the
// scenario-status gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startService(t)
	req := `{"testbed":"emulab","algorithm":"gd","duration_seconds":60}`
	_, first := postScenario(t, ts.URL, req)
	waitDone(t, ts.URL, first["id"])
	_, second := postScenario(t, ts.URL, req) // cache hit
	waitDone(t, ts.URL, second["id"])
	postScenario(t, ts.URL, `{"testbed":"atlantis"}`) // 400

	m := scrape(t, ts.URL)

	if got := m[`falcon_http_requests_total{route="POST /api/scenarios",status="202"}`]; got != 2 {
		t.Fatalf("202 creates = %v, want 2", got)
	}
	if got := m[`falcon_http_requests_total{route="POST /api/scenarios",status="400"}`]; got != 1 {
		t.Fatalf("400 creates = %v, want 1", got)
	}
	if m[`falcon_http_requests_total{route="GET /api/scenarios/{id}",status="200"}`] < 2 {
		t.Fatal("scenario GETs unaccounted")
	}
	if got := m["falcon_cache_hits_total"]; got != 1 {
		t.Fatalf("cache hits = %v, want 1", got)
	}
	if got := m["falcon_cache_misses_total"]; got != 1 {
		t.Fatalf("cache misses = %v, want 1", got)
	}
	if got := m["falcon_simulations_total"]; got != 1 {
		t.Fatalf("simulations = %v, want 1", got)
	}
	if got := m["falcon_worker_limit"]; got < 1 {
		t.Fatalf("worker limit = %v", got)
	}
	if got := m[`falcon_scenarios{status="done"}`]; got != 2 {
		t.Fatalf("done scenarios gauge = %v, want 2", got)
	}
	if got := m["falcon_store_size"]; got != 2 {
		t.Fatalf("store size = %v, want 2", got)
	}

	// Histogram consistency: +Inf bucket equals the count, buckets are
	// cumulative (non-decreasing), and the count covers every request
	// made before the scrape (the scrape itself is not yet recorded —
	// its observation happens after the handler returns).
	count := m["falcon_http_request_seconds_count"]
	if inf := m[`falcon_http_request_seconds_bucket{le="+Inf"}`]; inf != count {
		t.Fatalf("+Inf bucket %v ≠ count %v", inf, count)
	}
	if count < 5 {
		t.Fatalf("histogram count %v, want ≥5 requests", count)
	}
	if m["falcon_http_request_seconds_sum"] <= 0 {
		t.Fatal("histogram sum not positive")
	}
	// Check the checked-in bucket bounds appear and are cumulative.
	cum := -1.0
	for _, le := range latencyBuckets {
		series := `falcon_http_request_seconds_bucket{le="` + formatFloat(le) + `"}`
		v, ok := m[series]
		if !ok {
			t.Fatalf("missing bucket %s", series)
		}
		if v < cum {
			t.Fatalf("bucket %s = %v below previous %v (not cumulative)", series, v, cum)
		}
		cum = v
	}
}
