package webservice

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestScenarioResultCacheHit: resubmitting a byte-identical scenario
// must be answered from the content-addressed cache — no second
// simulation, results served verbatim under a fresh id with the cached
// flag set in both the scenario and progress payloads.
func TestScenarioResultCacheHit(t *testing.T) {
	svc := NewWithLimit(1)
	var mu sync.Mutex
	runs := 0
	svc.runFn = func(sc *Scenario) {
		mu.Lock()
		runs++
		mu.Unlock()
		svc.run(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	req := `{"testbed":"emulab","algorithm":"gd","duration_seconds":60}`
	_, first := postScenario(t, ts.URL, req)
	orig := waitDone(t, ts.URL, first["id"])
	if orig.Status != "done" {
		t.Fatalf("first run status = %s (%s)", orig.Status, orig.Error)
	}
	if orig.Cached {
		t.Fatal("first run must not be marked cached")
	}

	_, second := postScenario(t, ts.URL, req)
	if second["id"] == first["id"] {
		t.Fatal("cache hit must still mint a fresh scenario id")
	}
	hit := waitDone(t, ts.URL, second["id"])
	if !hit.Cached {
		t.Fatal("identical resubmission not served from the cache")
	}
	if fmt.Sprint(hit.Results) != fmt.Sprint(orig.Results) || hit.JainIndex != orig.JainIndex {
		t.Fatalf("cached results differ: %+v vs %+v", hit.Results, orig.Results)
	}
	mu.Lock()
	if runs != 1 {
		t.Fatalf("simulation ran %d times, want 1", runs)
	}
	mu.Unlock()

	// The progress API reports the cached flag and the original run's
	// final agent state.
	resp, err := http.Get(ts.URL + "/api/scenarios/" + second["id"] + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if !p.Cached || p.Status != "done" || len(p.Agents) != 1 {
		t.Fatalf("cached progress = %+v, want cached done view with 1 agent", p)
	}

	// A different seed is a different content address: it must run.
	_, third := postScenario(t, ts.URL, `{"testbed":"emulab","algorithm":"gd","duration_seconds":60,"seed":2}`)
	if sc := waitDone(t, ts.URL, third["id"]); sc.Cached {
		t.Fatal("different request must not hit the cache")
	}
	mu.Lock()
	if runs != 2 {
		t.Fatalf("simulation ran %d times after distinct request, want 2", runs)
	}
	mu.Unlock()
}

// TestResultCacheLRU pins the eviction policy: the cache holds at most
// its capacity of distinct results and drops the least recently used.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	mk := func(seed int64) (string, *resultValue) {
		r := ScenarioRequest{Testbed: "emulab", Algorithm: "gd", Agents: 1,
			StaggerSeconds: 120, DurationSeconds: 60, Seed: seed, MaxConcurrency: 64}
		if err := r.normalise(); err != nil {
			t.Fatal(err)
		}
		k, err := cacheKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return k, &resultValue{jain: float64(seed)}
	}
	k1, s1 := mk(1)
	k2, s2 := mk(2)
	k3, s3 := mk(3)
	c.put(k1, s1)
	c.put(k2, s2)
	if _, ok := c.get(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.put(k3, s3)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 should have been evicted as least recently used")
	}
	if _, ok := c.get(k1); !ok {
		t.Fatal("k1 evicted despite recent use")
	}
	if got, ok := c.get(k3); !ok || got != s3 {
		t.Fatal("k3 missing after insert")
	}
}
