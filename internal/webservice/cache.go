package webservice

import (
	"container/list"
	"fmt"

	"repro/internal/testbed"
)

// defaultCacheSize bounds the number of completed scenarios kept for
// content-addressed reuse.
const defaultCacheSize = 64

// cacheKey content-addresses a scenario by the SHA-256 of its full
// normalised document — topology, environment, agent roster, AND the
// mutation schedule — so every field that influences the run is part
// of the address and nothing else is. Two requests with the same key
// are the same deterministic simulation, so a completed result can be
// served verbatim; scenarios differing only in their mutation schedule
// hash apart and never alias. Flat legacy requests are lowered onto
// documents by normalise, so both request shapes share one key space
// (a flat request and its equivalent document deduplicate).
func cacheKey(r ScenarioRequest) (string, error) {
	if r.doc == nil {
		return "", fmt.Errorf("webservice: request was not normalised")
	}
	h, err := r.doc.Hash()
	if err != nil {
		return "", err
	}
	return "doc|" + h, nil
}

// resultValue is the immutable outcome of one completed simulation,
// stored for content-addressed reuse: the published result fields plus
// the timeline (for charts) and the original run's event feed (so
// cache hits can replay progress and SSE).
type resultValue struct {
	results  []AgentResult
	jain     float64
	timeline *testbed.Timeline
	progress *progressTracker
}

// resultCache is an LRU map from cacheKey to a completed result.
// Callers synchronise access (the service holds its mutex around every
// cache call).
type resultCache struct {
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	val *resultValue
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached completed result for key, refreshing its
// recency.
func (c *resultCache) get(key string) (*resultValue, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores a completed result under key, evicting the least
// recently used entry past capacity.
func (c *resultCache) put(key string, val *resultValue) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }
