package webservice

import (
	"container/list"
	"fmt"
)

// defaultCacheSize bounds the number of completed scenarios kept for
// content-addressed reuse.
const defaultCacheSize = 64

// cacheKey content-addresses a scenario: every field of the normalised
// request that influences the run is part of the address, and nothing
// else is. Two requests with the same key are the same deterministic
// simulation, so a completed result can be served verbatim.
func cacheKey(r ScenarioRequest) string {
	return fmt.Sprintf("%s|%s|%d|%g|%g|%d|%d",
		r.Testbed, r.Algorithm, r.Agents, r.StaggerSeconds, r.DurationSeconds, r.Seed, r.MaxConcurrency)
}

// resultCache is an LRU map from cacheKey to a completed scenario.
// Callers synchronise access (the service holds its mutex around every
// cache call).
type resultCache struct {
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	sc  *Scenario
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached completed scenario for key, refreshing its
// recency.
func (c *resultCache) get(key string) (*Scenario, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).sc, true
}

// put stores a completed scenario under key, evicting the least
// recently used entry past capacity.
func (c *resultCache) put(key string, sc *Scenario) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).sc = sc
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, sc: sc})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int { return c.order.Len() }
